// Memory-constrained reconstruction (paper §5.1): the ADMM variables of a
// 2K^3 problem exceed a 512 GB node, so ψ, λ and g are offloaded to SSD
// between the phases that use them. Compares no offload / greedy offload /
// planned ADMM-Offload on peak memory, stalls and the MT metric.
#include <cstdio>

#include "core/mlr.hpp"

int main(int argc, char** argv) {
  const mlr::i64 n = argc > 1 ? std::atoll(argv[1]) : 14;
  const unsigned threads = argc > 2 ? unsigned(std::max(0, std::atoi(argv[2]))) : 0;
  const mlr::i64 overlap = argc > 3 ? std::max(0, std::atoi(argv[3])) : 4;
  const mlr::i64 pipeline = argc > 4 ? std::max(0, std::atoi(argv[4])) : 2;

  std::printf("memory-constrained reconstruction — %lld^3 volume timed as 2K^3\n\n",
              (long long)n);
  struct Row {
    const char* name;
    mlr::OffloadMode mode;
  } rows[] = {{"no offload", mlr::OffloadMode::None},
              {"greedy offload", mlr::OffloadMode::Greedy},
              {"ADMM-Offload", mlr::OffloadMode::Planned}};

  double base_time = 0, base_peak = 0;
  std::printf("%-16s %-12s %-14s %-12s %-8s\n", "policy", "vtime(s)",
              "peak RSS (GB)", "stall (s)", "MT");
  for (const auto& row : rows) {
    mlr::ReconstructionConfig cfg;
    cfg.dataset = mlr::Dataset::large(n);
    cfg.iters = 6;
    cfg.memoize = false;
    cfg.offload = row.mode;
    cfg.threads = threads;
    cfg.overlap_slices = overlap;
    cfg.pipeline_depth = pipeline;
    mlr::Reconstructor rec(cfg);
    auto rep = rec.run();
    if (row.mode == mlr::OffloadMode::None) {
      base_time = rep.vtime_s;
      base_peak = rep.peak_rss_bytes;
    }
    // Measured MT: memory-saving fraction over measured performance loss.
    const double saved =
        (base_peak - rep.peak_rss_bytes) / std::max(base_peak, 1.0);
    const double t_loss = (rep.vtime_s - base_time) / std::max(base_time, 1e-9);
    const double mt = row.mode == mlr::OffloadMode::None
                          ? 0.0
                          : saved / std::max(t_loss, 1e-3);
    std::printf("%-16s %-12.2f %-14.1f %-12.2f %-8.2f\n", row.name,
                rep.vtime_s, rep.peak_rss_bytes / mlr::kGiB,
                rep.exposed_stall_s, mt);
  }
  std::printf("\nADMM-Offload hides prefetches behind compute; greedy pays for\n"
              "every on-demand fetch on the critical path (Fig 13).\n");
  return 0;
}
