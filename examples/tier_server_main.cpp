// tier_server_main — a standalone shared-memo tier server speaking the memo
// wire protocol over TCP (the deployment shape of net/tier_server.hpp: one
// long-lived tier process, many ReconService clients connecting with
// `--transport socket`).
//
//   ./tier_server_main [host:]port [shards] [max_entries]
//     host:port    IPv4 literal + port to bind (default 127.0.0.1; port 0
//                  picks an ephemeral port, printed once bound)
//     shards       memory-node shard count of the tier (default 1)
//     max_entries  tier capacity before cap drops (default 1<<20)
//
// Runs until stdin closes or SIGINT/SIGTERM, then stops the acceptor and
// dumps the obs metrics registry (per-verb frame/byte/handle-time
// instruments, "net.server.*") as JSON on stdout — the same snapshot shape
// the benches embed, so a served session can be profiled from either side
// of the wire.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"

#ifdef MLR_HAS_NET

#include <csignal>
#include <unistd.h>

#include "net/tier_server.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (argc > 1) {
    std::string addr = argv[1];
    const auto colon = addr.rfind(':');
    if (colon != std::string::npos) {
      host = addr.substr(0, colon);
      addr = addr.substr(colon + 1);
    }
    port = std::uint16_t(std::atoi(addr.c_str()));
  }
  mlr::serve::SharedTierConfig cfg;
  if (argc > 2) cfg.shard_count = std::max(1, std::atoi(argv[2]));
  if (argc > 3) cfg.max_entries = std::size_t(std::atoll(argv[3]));

  mlr::net::TierServer server(cfg);
  std::uint16_t bound = 0;
  try {
    bound = server.listen_and_serve(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tier_server: %s\n", e.what());
    return 1;
  }
  std::printf("tier server listening on %s:%u (%d shard(s), capacity %zu)\n",
              host.c_str(), unsigned(bound), cfg.shard_count, cfg.max_entries);
  std::printf("stop with Ctrl-C or by closing stdin\n");
  std::fflush(stdout);

  // No SA_RESTART: a signal must interrupt the blocking stdin read below so
  // Ctrl-C falls through to the shutdown path instead of restarting it.
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // A client vanishing mid-reply is that connection's problem (send fails
  // with EPIPE and the handler drops it), never a reason to kill the tier.
  std::signal(SIGPIPE, SIG_IGN);

  char buf[256];
  while (g_stop == 0) {
    const ssize_t r = read(STDIN_FILENO, buf, sizeof buf);
    if (r <= 0) break;  // EOF, or EINTR from a handled signal
  }

  server.stop();
  std::printf("\nnet metrics snapshot (%zu tier entries at shutdown):\n",
              server.tier().size());
  std::printf("%s\n", mlr::obs::metrics().snapshot().to_json().c_str());
  return 0;
}

#else  // !MLR_HAS_NET

int main() {
  std::fprintf(stderr,
               "tier_server_main: built with MLR_BUILD_NET=OFF — the wire "
               "transport is unavailable\n");
  return 2;
}

#endif
