// Multi-tenant serving: three tenants share one ReconService — one cross-job
// encoder, one shared memo tier (sharded across memory nodes, reached over
// the contended fabric), two execution slots — under weighted fair share.
// Shows the serving lifecycle (prime → submit → drain), how a small tenant
// with a big weight keeps its queue waits short, how much of each job is
// served by other jobs' work (the cross-job memoization economics), and how
// the tier stays compact (promotion dedup) and spread (key-hash shards).
//   ./multi_tenant_service [n] [jobs] [threads] [shards]
#include <cstdio>

#include "serve/service.hpp"
#include "serve/workload.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  const i64 n = argc > 1 ? std::atoll(argv[1]) : 12;
  const i64 jobs = argc > 2 ? std::atoll(argv[2]) : 12;
  const unsigned threads =
      argc > 3 ? unsigned(std::max(0, std::atoi(argv[3]))) : 0;
  const int shards = argc > 4 ? std::max(1, std::atoi(argv[4])) : 2;

  serve::ServiceConfig sc;
  sc.n = n;
  sc.slots = 2;
  sc.threads = threads;
  sc.iters_cap = 4;
  sc.policy = serve::SchedulerPolicy::FairShare;
  sc.shard_count = shards;
  serve::ReconService svc(sc);

  serve::WorkloadConfig wc;
  wc.jobs = std::size_t(jobs);
  wc.mean_interarrival = 120.0;
  wc.tenants = {{"lab-a", 1.0, 1, 2.0},    // bulk traffic, weight 1
                {"lab-b", 2.0, 1, 1.0},
                {"urgent", 4.0, 2, 0.5}};  // rare jobs, weight 4
  wc.mix = {{serve::Scenario::PcbInspection, 1.0},
            {serve::Scenario::IcInspection, 1.0},
            {serve::Scenario::BrainScan, 1.0}};
  serve::WorkloadGenerator gen(wc);

  std::printf("multi-tenant service — %lld jobs on %lld^3, fair-share\n\n",
              (long long)jobs, (long long)n);
  auto warm = gen.priming_set();
  svc.prime(warm);
  std::printf("primed: %zu warm jobs -> %zu shared-tier entries, encoder "
              "trained once\n\n",
              warm.size(), svc.shared_entries());

  for (const auto& j : gen.generate()) svc.submit(j);
  const auto stats = svc.drain();

  std::printf("%-4s %-7s %-7s %9s %9s %9s %7s\n", "job", "tenant", "scen",
              "wait(s)", "run(s)", "turn(s)", "xjob%");
  for (const auto& st : stats) {
    const double xjob =
        st.memo.lookups() > 0
            ? 100.0 * double(st.memo.db_hit_shared) / double(st.memo.lookups())
            : 0.0;
    std::printf("%-4llu %-7s %-7s %9.0f %9.0f %9.0f %6.1f%%\n",
                (unsigned long long)st.id, st.tenant.c_str(),
                serve::scenario_name(st.scenario), st.queue_wait(),
                st.run_vtime, st.turnaround(), xjob);
  }

  const auto& ss = svc.stats();
  std::printf("\nper-tenant (weights 1/2/4):\n");
  for (const auto& [tenant, ts] : ss.tenants)
    std::printf("  %-7s jobs=%2llu busy=%8.0f s  median wait=%7.0f s\n",
                tenant.c_str(), (unsigned long long)ts.jobs, ts.busy_s,
                ts.queue_wait.count() > 0 ? ts.queue_wait.percentile(0.5)
                                          : 0.0);
  std::printf(
      "\ncross-job hit rate %.1f%% of %llu lookups; utilization %.0f%%; "
      "shared tier now %zu entries\n",
      100.0 * ss.cross_job_hit_rate(), (unsigned long long)ss.lookups,
      100.0 * ss.utilization(sc.slots), svc.shared_entries());
  const auto& tier = svc.tier();
  std::printf("tier shards (%d):", tier.shard_count());
  for (int s = 0; s < tier.shard_count(); ++s)
    std::printf(" %zu", tier.shard_entries(s));
  std::printf(
      "; promotion dedup dropped %llu, cap dropped %llu\n"
      "fabric: %llu transfers, fetch %.0f s + promote %.0f s charged, "
      "%.0f s waited on the shared uplink\n",
      (unsigned long long)ss.shared_dedup_drops,
      (unsigned long long)ss.shared_cap_drops,
      (unsigned long long)tier.fabric().transfers(), ss.fabric_fetch_s,
      ss.fabric_promote_s, tier.fabric().contention_wait_s());
  return 0;
}
