// IC inspection scenario (paper §1, §4.5): laminography of an integrated
// circuit — Manhattan metal layers and vias inside a flat die. High-density
// fine structure calls for the strict similarity threshold τ = 0.95 the
// paper recommends for "signal traces between 10 and 100 µm".
//
// Reports per-layer reconstruction fidelity: mean intensity recovered on the
// metal voxels vs background leakage.
#include <cstdio>

#include "core/mlr.hpp"

int main(int argc, char** argv) {
  const mlr::i64 n = argc > 1 ? std::atoll(argv[1]) : 20;
  const unsigned threads = argc > 2 ? unsigned(std::max(0, std::atoi(argv[2]))) : 0;
  const mlr::i64 overlap = argc > 3 ? std::max(0, std::atoi(argv[3])) : 4;
  const mlr::i64 pipeline = argc > 4 ? std::max(0, std::atoi(argv[4])) : 2;
  mlr::ReconstructionConfig cfg;
  cfg.threads = threads;
  cfg.overlap_slices = overlap;
  cfg.pipeline_depth = pipeline;
  cfg.dataset = mlr::Dataset::small(n);
  cfg.dataset.kind = mlr::lamino::PhantomKind::IntegratedCircuit;
  cfg.dataset.label = "IC die";
  cfg.dataset.noise = 0.01;
  cfg.iters = 12;
  cfg.tau = 0.95;  // fine features: strict threshold (paper §4.5)
  cfg.memoize = true;

  std::printf("IC inspection — %lld^3 die, tau=%.2f\n", (long long)n, cfg.tau);
  mlr::Reconstructor rec(cfg);
  auto rep = rec.run();

  // Feature-level fidelity: compare recovered intensity on metal voxels
  // (truth > 0.6) against background voxels.
  const auto& truth = rec.ground_truth();
  const auto& u = rep.result.u;
  double metal_sum = 0, metal_n = 0, bg_sum = 0, bg_n = 0;
  for (mlr::i64 i = 0; i < truth.size(); ++i) {
    const float t = truth.data()[i].real();
    const float v = u.data()[i].real();
    if (t > 0.6f) {
      metal_sum += v;
      ++metal_n;
    } else if (t < 0.01f) {
      bg_sum += std::abs(v);
      ++bg_n;
    }
  }
  const double metal = metal_n ? metal_sum / metal_n : 0;
  const double bg = bg_n ? bg_sum / bg_n : 0;
  std::printf("\nvirtual time            %.2f s (paper-scale)\n", rep.vtime_s);
  std::printf("error vs ground truth   %.4f\n", rep.error_vs_truth);
  std::printf("metal voxels recovered  %.3f mean intensity (truth ~0.85)\n",
              metal);
  std::printf("background leakage      %.3f\n", bg);
  std::printf("trace/background contrast %.1fx\n", metal / std::max(bg, 1e-9));
  std::printf("memo: miss=%llu db=%llu cache=%llu (hit rate %.0f%%)\n",
              (unsigned long long)rep.memo.miss,
              (unsigned long long)rep.memo.db_hit,
              (unsigned long long)rep.memo.cache_hit,
              100.0 * rep.cache_hit_rate);
  return 0;
}
