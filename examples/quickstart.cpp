// Quickstart: reconstruct a small mouse-brain-like laminography scan twice —
// once with the original ADMM-FFT pipeline and once with mLR (memoization +
// operation cancellation/fusion) — and compare time and fidelity.
//
//   ./quickstart [n] [threads] [overlap] [pipeline]
//     n        volume edge (default 16; volume is n³)
//     threads  engine workers (0 shares the process pool, 1 runs serial)
//     overlap  DB/compute overlap slices (default 4; 0 = barriered path)
//     pipeline cross-stage pipeline depth (default 2; 0/1 = per-stage
//              barrier)
// The reconstruction is bit-identical for every `threads`, `overlap` and
// `pipeline` value — only host wall time changes (the StageExecutor
// schedules the virtual clock deterministically).
#include <cstdio>
#include <cstdlib>

#include "core/mlr.hpp"

int main(int argc, char** argv) {
  const mlr::i64 n = argc > 1 ? std::atoll(argv[1]) : 16;
  const unsigned threads = argc > 2 ? unsigned(std::max(0, std::atoi(argv[2]))) : 0;
  const mlr::i64 overlap = argc > 3 ? std::max(0, std::atoi(argv[3])) : 4;
  const mlr::i64 pipeline = argc > 4 ? std::max(0, std::atoi(argv[4])) : 2;

  mlr::ReconstructionConfig base;
  base.dataset = mlr::Dataset::small(n);
  base.iters = 10;
  base.memoize = false;
  base.cancellation = false;
  base.fusion = false;
  base.threads = threads;
  base.overlap_slices = overlap;
  base.pipeline_depth = pipeline;

  std::printf("mLR quickstart — %s phantom, volume %lld^3 (stands in for "
              "%lld^3), %u engine threads\n\n",
              "brain-tissue", (long long)n, (long long)base.dataset.paper_n,
              threads);

  std::printf("[1/2] original ADMM-FFT ...\n");
  mlr::Reconstructor baseline(base);
  auto rb = baseline.run();

  auto opt = base;
  opt.memoize = true;
  opt.cancellation = true;
  opt.fusion = true;
  opt.tau = 0.92;
  std::printf("[2/2] mLR (memoization + cancellation + fusion, tau=%.2f) ...\n\n",
              opt.tau);
  mlr::Reconstructor accelerated(opt);
  auto rm = accelerated.run();

  const double speedup = rb.vtime_s / rm.vtime_s;
  const double acc = 1.0 - mlr::relative_error<mlr::cfloat>(
                               rb.result.u.span(), rm.result.u.span());
  std::printf("                       original        mLR\n");
  std::printf("virtual time (s)     %9.2f   %9.2f   (%.2fx faster)\n",
              rb.vtime_s, rm.vtime_s, speedup);
  std::printf("error vs truth       %9.4f   %9.4f\n", rb.error_vs_truth,
              rm.error_vs_truth);
  std::printf("memo outcomes                    miss=%llu db=%llu cache=%llu\n",
              (unsigned long long)rm.memo.miss,
              (unsigned long long)rm.memo.db_hit,
              (unsigned long long)rm.memo.cache_hit);
  std::printf("reconstruction accuracy (Eq 5)   %.4f\n", acc);
  std::printf("\nhost time: baseline %.1fs, mLR %.1fs\n", rb.real_seconds,
              rm.real_seconds);
  return 0;
}
