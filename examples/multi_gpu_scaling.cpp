// Multi-GPU scaling demo (paper §5.2): distribute the chunked FFT stages of
// one forward+adjoint pass across simulated A100s (4 per node) and watch
// the within-node speedup and the cross-node plateau.
#include <cstdio>
#include <memory>

#include "cluster/cluster.hpp"
#include "common/parallel.hpp"
#include "lamino/phantom.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  const i64 n = argc > 1 ? std::atoll(argv[1]) : 16;
  const unsigned threads = argc > 2 ? unsigned(std::max(0, std::atoi(argv[2]))) : 0;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  auto geom = lamino::Geometry::cube(n);
  lamino::Operators ops(geom);
  auto u = lamino::to_complex(lamino::make_phantom(
      geom.object_shape(), lamino::PhantomKind::BrainTissue, 5));
  Array3D<cfloat> dhat(geom.data_shape());
  ops.forward_freq(u, dhat);
  const double ws = 1024.0 / double(n);
  const double work_scale = ws * ws * ws;

  std::printf("multi-GPU scaling — %lld^3 volume timed as 1K^3, 4 GPUs/node\n\n",
              (long long)n);
  std::printf("%-6s %-7s %-12s %-9s %-10s\n", "GPUs", "nodes", "pass (s)",
              "speedup", "fabric util");
  double t1 = 0;
  for (int gpus : {1, 2, 4, 8, 16}) {
    cluster::ClusterSpec spec;
    spec.gpus = gpus;
    cluster::Cluster c(ops, spec, {.enable = false, .work_scale = work_scale});
    if (pool) c.executor().set_pool(pool.get());
    const double t = c.forward_adjoint_pass(u, dhat, 1, 0.0);
    if (gpus == 1) t1 = t;
    std::printf("%-6d %-7d %-12.2f %-9.2f %.0f%%\n", gpus, c.num_nodes(), t,
                t1 / t, 100.0 * c.fabric().utilization(t));
  }
  std::printf("\nCrossing the 4-GPU node boundary moves the ũ1 redistribution\n"
              "onto the shared Slingshot fabric — the Fig 14 plateau.\n");
  return 0;
}
