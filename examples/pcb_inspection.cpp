// PCB inspection scenario: large-scale, low-density composite structure.
// Coarse features (0.15–0.3 mm pads and traces) tolerate the looser
// τ = 0.90 the paper recommends for PCBs, which raises the memoization hit
// rate and the speedup.
#include <cstdio>

#include "core/mlr.hpp"

int main(int argc, char** argv) {
  const mlr::i64 n = argc > 1 ? std::atoll(argv[1]) : 20;
  const unsigned threads = argc > 2 ? unsigned(std::max(0, std::atoi(argv[2]))) : 0;
  const mlr::i64 overlap = argc > 3 ? std::max(0, std::atoi(argv[3])) : 4;
  const mlr::i64 pipeline = argc > 4 ? std::max(0, std::atoi(argv[4])) : 2;

  std::printf("PCB inspection — %lld^3 board, comparing tau choices\n\n",
              (long long)n);
  std::printf("%-8s %-12s %-12s %-10s\n", "tau", "vtime(s)", "error", "hits");
  double err_ref = 0;
  for (double tau : {0.99, 0.96, 0.93}) {
    mlr::ReconstructionConfig cfg;
    cfg.dataset = mlr::Dataset::small(n);
    cfg.dataset.kind = mlr::lamino::PhantomKind::Pcb;
    cfg.dataset.label = "PCB";
    cfg.iters = 10;
    cfg.tau = tau;
    cfg.threads = threads;
    cfg.overlap_slices = overlap;
    cfg.pipeline_depth = pipeline;
    mlr::Reconstructor rec(cfg);
    auto rep = rec.run();
    if (tau == 0.99) err_ref = rep.error_vs_truth;
    std::printf("%-8.2f %-12.2f %-12.4f %llu\n", tau, rep.vtime_s,
                rep.error_vs_truth,
                (unsigned long long)(rep.memo.db_hit + rep.memo.cache_hit));
  }
  std::printf(
      "\nLoose tau trades a little fidelity (vs %.4f at tau=0.99) for more\n"
      "reuse — the right trade for coarse PCB features (paper 4.5; thresholds\n"
      "recalibrated to this repo's oracle similarity gate).\n",
      err_ref);
  return 0;
}
