// FNV-1a — the one byte-hash the codebase fingerprints with (cache FIFO
// fingerprints, serving-job output identity). Chainable: fold multiple
// fields into one digest by passing the running value back in.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace mlr {

inline constexpr u64 kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// Fold `len` bytes into running digest `h`.
inline u64 fnv1a(u64 h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// One-shot digest of a byte range.
inline u64 fnv1a_bytes(const void* data, std::size_t len) {
  return fnv1a(kFnvOffsetBasis, data, len);
}

}  // namespace mlr
