// Dense row-major tensors with 64-byte-aligned storage.
//
// Array2D / Array3D are the workhorse containers of the reconstruction stack.
// They are value types (deep copy, cheap move) with contiguous storage so FFT
// kernels can operate on raw spans.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlr {

namespace detail {

/// Allocator returning 64-byte aligned memory (cache line / AVX-512 friendly).
template <typename T>
struct AlignedDeleter {
  void operator()(T* p) const noexcept { std::free(p); }
};

template <typename T>
std::unique_ptr<T[], AlignedDeleter<T>> aligned_array(std::size_t count) {
  if (count == 0) return nullptr;
  std::size_t bytes = count * sizeof(T);
  // aligned_alloc requires size to be a multiple of alignment.
  bytes = (bytes + 63) / 64 * 64;
  void* p = std::aligned_alloc(64, bytes);
  MLR_CHECK_MSG(p != nullptr, "allocation failed");
  return std::unique_ptr<T[], AlignedDeleter<T>>(static_cast<T*>(p));
}

}  // namespace detail

/// Dense 2-D row-major array.
template <typename T>
class Array2D {
 public:
  Array2D() = default;
  Array2D(i64 rows, i64 cols)
      : shape_{rows, cols}, data_(detail::aligned_array<T>(size_t(rows * cols))) {
    MLR_CHECK(rows >= 0 && cols >= 0);
    zero();
  }
  explicit Array2D(Shape2 s) : Array2D(s.rows, s.cols) {}

  Array2D(const Array2D& o) : Array2D(o.shape_.rows, o.shape_.cols) {
    std::copy(o.begin(), o.end(), begin());
  }
  Array2D& operator=(const Array2D& o) {
    if (this != &o) {
      Array2D tmp(o);
      *this = std::move(tmp);
    }
    return *this;
  }
  Array2D(Array2D&&) noexcept = default;
  Array2D& operator=(Array2D&&) noexcept = default;

  [[nodiscard]] i64 rows() const { return shape_.rows; }
  [[nodiscard]] i64 cols() const { return shape_.cols; }
  [[nodiscard]] Shape2 shape() const { return shape_; }
  [[nodiscard]] i64 size() const { return shape_.volume(); }
  [[nodiscard]] std::size_t bytes() const { return size_t(size()) * sizeof(T); }

  T& operator()(i64 r, i64 c) { return data_[size_t(r * shape_.cols + c)]; }
  const T& operator()(i64 r, i64 c) const {
    return data_[size_t(r * shape_.cols + c)];
  }
  T& at(i64 r, i64 c) {
    MLR_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return (*this)(r, c);
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T* begin() { return data(); }
  T* end() { return data() + size(); }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<T> span() { return {data(), size_t(size())}; }
  std::span<const T> span() const { return {data(), size_t(size())}; }
  /// Mutable view of one row.
  std::span<T> row(i64 r) { return {data() + r * cols(), size_t(cols())}; }
  std::span<const T> row(i64 r) const {
    return {data() + r * cols(), size_t(cols())};
  }

  void zero() { std::fill(begin(), end(), T{}); }
  void fill(T v) { std::fill(begin(), end(), v); }

 private:
  Shape2 shape_{};
  std::unique_ptr<T[], detail::AlignedDeleter<T>> data_;
};

/// Dense 3-D row-major array indexed (i1, i0, i2) per the paper's u[n1,n0,n2].
template <typename T>
class Array3D {
 public:
  Array3D() = default;
  Array3D(i64 n1, i64 n0, i64 n2)
      : shape_{n1, n0, n2},
        data_(detail::aligned_array<T>(size_t(n1 * n0 * n2))) {
    MLR_CHECK(n1 >= 0 && n0 >= 0 && n2 >= 0);
    zero();
  }
  explicit Array3D(Shape3 s) : Array3D(s.n1, s.n0, s.n2) {}

  Array3D(const Array3D& o) : Array3D(o.shape_) {
    std::copy(o.begin(), o.end(), begin());
  }
  Array3D& operator=(const Array3D& o) {
    if (this != &o) {
      Array3D tmp(o);
      *this = std::move(tmp);
    }
    return *this;
  }
  Array3D(Array3D&&) noexcept = default;
  Array3D& operator=(Array3D&&) noexcept = default;

  [[nodiscard]] Shape3 shape() const { return shape_; }
  [[nodiscard]] i64 n1() const { return shape_.n1; }
  [[nodiscard]] i64 n0() const { return shape_.n0; }
  [[nodiscard]] i64 n2() const { return shape_.n2; }
  [[nodiscard]] i64 size() const { return shape_.volume(); }
  [[nodiscard]] std::size_t bytes() const { return size_t(size()) * sizeof(T); }

  T& operator()(i64 i1, i64 i0, i64 i2) {
    return data_[size_t((i1 * shape_.n0 + i0) * shape_.n2 + i2)];
  }
  const T& operator()(i64 i1, i64 i0, i64 i2) const {
    return data_[size_t((i1 * shape_.n0 + i0) * shape_.n2 + i2)];
  }
  T& at(i64 i1, i64 i0, i64 i2) {
    MLR_CHECK(i1 >= 0 && i1 < n1() && i0 >= 0 && i0 < n0() && i2 >= 0 &&
              i2 < n2());
    return (*this)(i1, i0, i2);
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T* begin() { return data(); }
  T* end() { return data() + size(); }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<T> span() { return {data(), size_t(size())}; }
  std::span<const T> span() const { return {data(), size_t(size())}; }

  /// Contiguous slab of `count` slices starting at slice `i1`.
  std::span<T> slices(i64 i1, i64 count) {
    MLR_CHECK(i1 >= 0 && i1 + count <= n1());
    return {data() + i1 * n0() * n2(), size_t(count * n0() * n2())};
  }
  std::span<const T> slices(i64 i1, i64 count) const {
    MLR_CHECK(i1 >= 0 && i1 + count <= n1());
    return {data() + i1 * n0() * n2(), size_t(count * n0() * n2())};
  }
  /// One slice as a span (n0 * n2 elements).
  std::span<T> slice(i64 i1) { return slices(i1, 1); }
  std::span<const T> slice(i64 i1) const { return slices(i1, 1); }

  void zero() { std::fill(begin(), end(), T{}); }
  void fill(T v) { std::fill(begin(), end(), v); }

 private:
  Shape3 shape_{};
  std::unique_ptr<T[], detail::AlignedDeleter<T>> data_;
};

/// L2 norm of a span of real or complex values.
template <typename T>
double l2_norm(std::span<const T> v) {
  double s = 0;
  for (const auto& x : v) {
    if constexpr (std::is_same_v<T, cfloat> || std::is_same_v<T, cdouble>) {
      s += double(x.real()) * x.real() + double(x.imag()) * x.imag();
    } else {
      s += double(x) * double(x);
    }
  }
  return std::sqrt(s);
}

/// Frobenius-norm relative error ‖a−b‖_F / ‖a‖_F (Eq. 4 in the paper).
template <typename T>
double relative_error(std::span<const T> a, std::span<const T> b) {
  MLR_CHECK(a.size() == b.size());
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if constexpr (std::is_same_v<T, cfloat> || std::is_same_v<T, cdouble>) {
      auto d = a[i] - b[i];
      num += double(d.real()) * d.real() + double(d.imag()) * d.imag();
      den += double(a[i].real()) * a[i].real() +
             double(a[i].imag()) * a[i].imag();
    } else {
      double d = double(a[i]) - double(b[i]);
      num += d * d;
      den += double(a[i]) * double(a[i]);
    }
  }
  if (den == 0) return num == 0 ? 0.0 : 1.0;
  return std::sqrt(num / den);
}

/// Cosine similarity of two equally-sized vectors (Eq. 3 in the paper).
template <typename T>
double cosine_similarity(std::span<const T> a, std::span<const T> b) {
  MLR_CHECK(a.size() == b.size());
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if constexpr (std::is_same_v<T, cfloat> || std::is_same_v<T, cdouble>) {
      dot += double(a[i].real()) * b[i].real() +
             double(a[i].imag()) * b[i].imag();
      na += double(a[i].real()) * a[i].real() +
            double(a[i].imag()) * a[i].imag();
      nb += double(b[i].real()) * b[i].real() +
            double(b[i].imag()) * b[i].imag();
    } else {
      dot += double(a[i]) * double(b[i]);
      na += double(a[i]) * double(a[i]);
      nb += double(b[i]) * double(b[i]);
    }
  }
  if (na == 0 || nb == 0) return na == nb ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace mlr
