// Error handling primitives shared by every mlr module.
//
// The library throws `mlr::Error` (a std::runtime_error subclass carrying the
// failing expression and source location) instead of aborting, so host
// applications — and the test suite — can recover from misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace mlr {

/// Exception type thrown by all mlr precondition / invariant failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::string full = std::string("MLR_CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace mlr

/// Precondition check that throws mlr::Error on failure. Always enabled —
/// reconstruction jobs run for hours and silent corruption is worse than the
/// branch cost.
#define MLR_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::mlr::detail::raise_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MLR_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::mlr::detail::raise_check_failure(#expr, __FILE__, __LINE__, msg); \
  } while (0)
