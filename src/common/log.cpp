#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mlr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mu;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard lk(g_io_mu);
  std::fprintf(stderr, "[mlr %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace mlr
