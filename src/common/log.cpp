#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/thread_id.hpp"

namespace mlr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mu;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
// Seconds since the first log line of the process (steady clock), so lines
// can be lined up against a trace recorded in the same run.
std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  const double t =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  // thread_index() matches the tid tracks in the trace JSON, so a log tag
  // [tN] and a Perfetto thread row name the same thread.
  std::lock_guard lk(g_io_mu);
  std::fprintf(stderr, "[mlr %10.6f t%02u %s] %s\n", t, thread_index(),
               level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace mlr
