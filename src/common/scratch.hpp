// Per-owner, per-thread scratch arenas for allocation-free hot loops.
//
// The FFT/NUFFT kernels (and the operator layer driving them) used to
// heap-allocate their working buffers on every call — pure overhead on the
// miss-compute path the stage-execution engine tries to keep busy. A
// PerThreadScratch<T> gives its owner (an FFT plan, an Operators instance)
// one reusable buffer *per calling thread*:
//
//   * buffer(n) returns a span of n elements private to the calling thread.
//     Contents are whatever the last use on this thread left behind — the
//     caller zeroes/fills what it needs (exactly the work the old
//     value-initializing std::vector constructor did, minus the heap trip).
//   * Thread safety is by construction: threads never share a buffer, so
//     concurrent execute() calls on one plan (the ThreadPool fan-out) need
//     no locks and results stay bit-identical to the allocating version.
//   * Storage lives in thread-local slots keyed by a small arena id. Ids are
//     recycled through a free list when an arena dies, so the per-thread
//     footprint is bounded by the peak number of live arenas, not by the
//     total ever constructed (plans created in a loop reuse the same slot).
//
// scratch_heap_allocs() counts every time any arena actually touched the
// heap (fresh slot or capacity growth). Steady-state hot loops must keep it
// flat — bench_fft_micro reports it as an allocs-per-op column.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace mlr {

namespace scratch_detail {

inline std::atomic<u64>& heap_alloc_counter() {
  static std::atomic<u64> count{0};
  return count;
}

struct IdPool {
  std::mutex mu;
  std::vector<u64> free;
  u64 next = 0;
};

inline IdPool& id_pool() {
  static IdPool pool;
  return pool;
}

inline u64 acquire_id() {
  auto& p = id_pool();
  std::lock_guard lk(p.mu);
  if (!p.free.empty()) {
    const u64 id = p.free.back();
    p.free.pop_back();
    return id;
  }
  return p.next++;
}

inline void release_id(u64 id) {
  auto& p = id_pool();
  std::lock_guard lk(p.mu);
  p.free.push_back(id);
}

}  // namespace scratch_detail

/// Process-wide count of scratch-arena heap allocations (see header comment).
inline u64 scratch_heap_allocs() {
  return scratch_detail::heap_alloc_counter().load(std::memory_order_relaxed);
}

template <typename T>
class PerThreadScratch {
 public:
  PerThreadScratch() : id_(scratch_detail::acquire_id()) {}
  ~PerThreadScratch() { scratch_detail::release_id(id_); }

  PerThreadScratch(const PerThreadScratch&) = delete;
  PerThreadScratch& operator=(const PerThreadScratch&) = delete;

  /// Borrow the calling thread's buffer for this arena, grown (never shrunk)
  /// to at least n elements. Contents are unspecified; the span stays valid
  /// until the same thread calls buffer() on the same arena again.
  std::span<T> buffer(std::size_t n) const {
    thread_local std::unordered_map<u64, std::vector<T>> slots;
    auto [it, fresh] = slots.try_emplace(id_);
    auto& buf = it->second;
    if (buf.size() < n) {
      buf.resize(n);
      fresh = true;
    }
    if (fresh)
      scratch_detail::heap_alloc_counter().fetch_add(
          1, std::memory_order_relaxed);
    return {buf.data(), n};
  }

 private:
  u64 id_;
};

}  // namespace mlr
