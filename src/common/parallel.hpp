// Shared-memory parallel-for over a lazily constructed process-wide thread
// pool, in the spirit of an OpenMP `parallel for` but with scoped C++ RAII.
//
// The pool sizes itself to std::thread::hardware_concurrency(); on a 1-core
// host parallel_for degrades gracefully to a serial loop with no thread
// round-trips.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace mlr {

/// Fixed-size worker pool executing void() jobs.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job; wait_idle() blocks until all enqueued jobs finished.
  void submit(std::function<void()> job);
  void wait_idle();

  [[nodiscard]] unsigned size() const { return unsigned(workers_.size()); }

  /// Process-wide pool (hardware_concurrency workers, min 1).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  unsigned in_flight_ = 0;
  bool stop_ = false;
};

/// Parallel loop over [begin, end), chunked across the global pool.
/// `fn` receives a single index. Exceptions inside fn propagate to the caller
/// of parallel_for (first one wins).
void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn);

/// Parallel loop receiving [chunk_begin, chunk_end) ranges, letting the body
/// amortize per-chunk setup (the OpenMP `schedule(static)` idiom).
void parallel_for_ranges(i64 begin, i64 end,
                         const std::function<void(i64, i64)>& fn);

/// Pool-scoped variants: run the loop on an explicit pool instead of the
/// process-global one (the StageExecutor's `threads` knob). A one-worker
/// pool degrades to a serial loop on the calling thread — same numerics,
/// no handoff.
void parallel_for(ThreadPool& pool, i64 begin, i64 end,
                  const std::function<void(i64)>& fn);
void parallel_for_ranges(ThreadPool& pool, i64 begin, i64 end,
                         const std::function<void(i64, i64)>& fn);

}  // namespace mlr
