// Small stable per-thread index, assigned on first use. Shared by the
// logger (line tags) and the trace recorder (Perfetto tid) so a log line
// and a trace track with the same index are the same OS thread.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace mlr {

namespace detail {
inline std::atomic<u32>& thread_index_counter() {
  static std::atomic<u32> c{0};
  return c;
}
}  // namespace detail

/// Index 0 is whichever thread asks first (normally main); pool workers
/// pick up 1..N in creation order. Never reused within a process.
inline u32 thread_index() {
  thread_local const u32 idx =
      detail::thread_index_counter().fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace mlr
