// Streaming statistics, percentiles and CDF export used by the benchmark
// harness (latency distributions, bandwidth utilization, hit rates).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mlr {

/// Welford running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Reservoir of raw samples supporting exact percentiles and CDF dumps.
/// Stores every sample (experiments here are small enough), so percentiles
/// are exact rather than sketched.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;  // a percentile may already have sorted the reservoir
  }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double mean() const;
  /// Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  /// Evenly spaced (value, cumulative fraction) points for plotting a CDF.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t points = 32) const;
  [[nodiscard]] const std::vector<double>& raw() const { return xs_; }
  /// Append every sample of `other` (distribution union, order-insensitive
  /// for every accessor here since percentiles sort).
  void merge(const Samples& other);
  void clear() { xs_.clear(); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram for quick textual plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  [[nodiscard]] const std::vector<u64>& bins() const { return counts_; }
  [[nodiscard]] double bin_lo(std::size_t i) const { return lo_ + i * width_; }
  [[nodiscard]] u64 total() const { return total_; }

 private:
  double lo_, width_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

/// Render a simple ASCII bar, used by bench binaries to sketch figures.
std::string ascii_bar(double fraction, std::size_t width = 40);

/// Compact percentile summary of a sample set — the row format of the
/// serving-latency tables (queue wait / turnaround CDF tails).
struct SampleSummary {
  std::size_t n = 0;
  double mean = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;
};
SampleSummary summarize(const Samples& s);

}  // namespace mlr
