// Deterministic random number generation.
//
// Every stochastic component (phantom noise, ANN k-means seeding, encoder
// initialization, simulated network jitter) takes an explicit Rng so runs are
// reproducible; nothing in the library reads a global RNG.
#pragma once

#include <cstdint>
#include <random>

#include "common/types.hpp"

namespace mlr {

/// Thin deterministic wrapper over a 64-bit Mersenne twister with the helper
/// distributions the codebase needs.
class Rng {
 public:
  explicit Rng(u64 seed = 0x6d4c5200u) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }
  /// Standard normal (or scaled).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  i64 uniform_int(i64 lo, i64 hi) {
    return std::uniform_int_distribution<i64>(lo, hi)(gen_);
  }
  /// Bernoulli draw.
  bool flip(double p = 0.5) {
    return std::bernoulli_distribution(p)(gen_);
  }
  /// Exponentially distributed value with the given mean (network jitter).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Derive an independent child stream (stable across platforms).
  Rng fork() { return Rng(gen_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mlr
