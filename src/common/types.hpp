// Fundamental scalar and shape types used across mlr.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mlr {

/// COMPLEX64 in the paper's terminology: 32-bit real + 32-bit imaginary.
using cfloat = std::complex<float>;
/// Double-precision complex, used by reference DFTs in tests.
using cdouble = std::complex<double>;

using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Shape of a 3-D array in (n1, n0, n2) order following the paper:
/// u ∈ R^(n1, n0, n2), where n1 indexes slices (the chunked dimension).
struct Shape3 {
  i64 n1 = 0;  ///< slowest dimension (chunked / slice axis)
  i64 n0 = 0;  ///< middle dimension
  i64 n2 = 0;  ///< fastest dimension

  [[nodiscard]] i64 volume() const { return n1 * n0 * n2; }
  bool operator==(const Shape3&) const = default;
  [[nodiscard]] std::string str() const {
    return std::to_string(n1) + "x" + std::to_string(n0) + "x" +
           std::to_string(n2);
  }
};

/// Shape of a 2-D array (rows, cols).
struct Shape2 {
  i64 rows = 0;
  i64 cols = 0;
  [[nodiscard]] i64 volume() const { return rows * cols; }
  bool operator==(const Shape2&) const = default;
};

/// Bytes in a mebibyte / gibibyte, used by the memory accounting throughout.
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace mlr
