// Wall-clock timing helpers (real host time, as opposed to sim::Clock which
// models the virtual Polaris timeline).
#pragma once

#include <chrono>

namespace mlr {

/// Monotonic stopwatch measuring real host seconds.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mlr
