#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mlr {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double q) const {
  MLR_CHECK(!xs_.empty());
  MLR_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double pos = q * double(xs_.size() - 1);
  const std::size_t lo = std::size_t(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - double(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0;
  for (double x : xs_) s += x;
  return s / double(xs_.size());
}

void Samples::merge(const Samples& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_ = false;
}

SampleSummary summarize(const Samples& s) {
  SampleSummary out;
  out.n = s.count();
  if (out.n == 0) return out;
  out.mean = s.mean();
  out.p50 = s.percentile(0.50);
  out.p90 = s.percentile(0.90);
  out.p99 = s.percentile(0.99);
  out.max = s.percentile(1.0);
  return out;
}

double Samples::cdf_at(double x) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return double(it - xs_.begin()) / double(xs_.size());
}

std::vector<std::pair<double, double>> Samples::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (xs_.empty()) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = double(i) / double(points - 1);
    out.emplace_back(percentile(q), q);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / double(bins)), counts_(bins, 0) {
  MLR_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  auto idx = i64((x - lo_) / width_);
  idx = std::clamp<i64>(idx, 0, i64(counts_.size()) - 1);
  ++counts_[std::size_t(idx)];
  ++total_;
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled = std::size_t(fraction * double(width) + 0.5);
  std::string s(filled, '#');
  s.append(width - filled, '.');
  return s;
}

}  // namespace mlr
