// Fused-elementwise substrate: deterministic tiling for single-pass host
// kernels (ROADMAP item 4 — the Dali expression-fusion model).
//
// The ADMM solver's RSP/λ/ρ/TV update chains used to run one full memory
// pass per elementwise operation on the caller thread. The fused kernel
// layer (admm/kernels.hpp) rewrites every chain as ONE pass; this header
// supplies the two things every fused kernel needs:
//
//   * a deterministic size-based tile partition — tile boundaries depend
//     only on the array length (kEwTileElems), never on the pool width, so
//     a tile's work is identical no matter which worker runs it;
//   * tile-ordered reduction combining — per-tile double partials are
//     written into caller-provided slots and summed serially in fixed tile
//     order, making every reduction bit-identical for any ThreadPool size
//     (the same contract the StageExecutor keeps for virtual time).
//
// EwStats is the measurement side: each fused kernel records the passes it
// actually made and the passes the unfused chain would have made, so the
// fusion win is observable deterministically even on a 1-core host where
// wall time cannot shrink (a "pass" = one full streaming sweep over one
// operand array; a stencil read or a scatter read-modify-write counts as
// one sweep of that operand).
#pragma once

#include <algorithm>

#include "common/parallel.hpp"
#include "common/types.hpp"

namespace mlr {

/// Fixed tile size of the deterministic partition (elements, not bytes).
/// Small enough to load-balance a pool on realistic volumes, large enough
/// that per-tile bookkeeping is noise.
inline constexpr i64 kEwTileElems = 16384;

[[nodiscard]] inline i64 ew_num_tiles(i64 n) {
  return n <= 0 ? 0 : (n + kEwTileElems - 1) / kEwTileElems;
}

/// Pass/byte counters for the fused kernel layer. `passes`/`bytes` are what
/// the fused kernels streamed; `naive_passes`/`naive_bytes` are what the
/// pre-fusion loop chains would have streamed for the same work. The ratio
/// naive/fused is the deterministic fusion win.
struct EwStats {
  u64 kernels = 0;        ///< fused kernel invocations
  u64 passes = 0;         ///< full-array sweeps actually performed
  u64 naive_passes = 0;   ///< sweeps of the equivalent unfused chain
  double bytes = 0;       ///< bytes streamed by the fused form
  double naive_bytes = 0; ///< bytes the unfused chain would have streamed

  EwStats& operator+=(const EwStats& o) {
    kernels += o.kernels;
    passes += o.passes;
    naive_passes += o.naive_passes;
    bytes += o.bytes;
    naive_bytes += o.naive_bytes;
    return *this;
  }
  [[nodiscard]] EwStats operator-(const EwStats& o) const {
    return {kernels - o.kernels, passes - o.passes,
            naive_passes - o.naive_passes, bytes - o.bytes,
            naive_bytes - o.naive_bytes};
  }
  /// naive_passes / passes — the deterministic measure of the fusion win.
  [[nodiscard]] double fusion_ratio() const {
    return passes > 0 ? double(naive_passes) / double(passes) : 0.0;
  }
};

/// Run `f(begin, end, tile)` over the deterministic partition of [0, n).
/// Tiles fan out across `pool` when it has workers; a null or one-worker
/// pool runs them serially on the caller — same tiles, same numerics.
template <typename F>
void ew_for_tiles(ThreadPool* pool, i64 n, F&& f) {
  const i64 tiles = ew_num_tiles(n);
  if (tiles <= 1 || pool == nullptr || pool->size() <= 1) {
    for (i64 t = 0; t < tiles; ++t)
      f(t * kEwTileElems, std::min(n, (t + 1) * kEwTileElems), t);
    return;
  }
  parallel_for(*pool, 0, tiles,
               [&](i64 t) { f(t * kEwTileElems, std::min(n, (t + 1) * kEwTileElems), t); });
}

/// Row-partitioned variant for stencil kernels over an (n1, n0, n2) volume:
/// tiles are whole rows of n2 contiguous elements, `rows_per_tile` chosen so
/// a tile stays near kEwTileElems. `f(row_begin, row_end, tile)` receives
/// flat row indices (row r = (i1, i0) with i1 = r / n0, i0 = r % n0). The
/// partition depends only on the array shape — never on the pool.
template <typename F>
void ew_for_row_tiles(ThreadPool* pool, i64 rows, i64 row_len, F&& f) {
  const i64 rows_per_tile = std::max<i64>(1, kEwTileElems / std::max<i64>(1, row_len));
  const i64 tiles = rows <= 0 ? 0 : (rows + rows_per_tile - 1) / rows_per_tile;
  if (tiles <= 1 || pool == nullptr || pool->size() <= 1) {
    for (i64 t = 0; t < tiles; ++t)
      f(t * rows_per_tile, std::min(rows, (t + 1) * rows_per_tile), t);
    return;
  }
  parallel_for(*pool, 0, tiles, [&](i64 t) {
    f(t * rows_per_tile, std::min(rows, (t + 1) * rows_per_tile), t);
  });
}

[[nodiscard]] inline i64 ew_num_row_tiles(i64 rows, i64 row_len) {
  const i64 rows_per_tile = std::max<i64>(1, kEwTileElems / std::max<i64>(1, row_len));
  return rows <= 0 ? 0 : (rows + rows_per_tile - 1) / rows_per_tile;
}

/// Combine per-tile partials serially in tile order — the one place every
/// reduction's floating-point order is decided, independent of pool width.
[[nodiscard]] inline double ew_combine(std::span<const double> partials) {
  double s = 0;
  for (const double p : partials) s += p;
  return s;
}

}  // namespace mlr
