#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace mlr {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  // Hard cap: a garbage count (e.g. unsigned(-1) from a CLI parse) must not
  // try to spawn billions of workers. 256 still allows deliberate
  // oversubscription for determinism tests on small hosts.
  threads = std::min(threads, 256u);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_job_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void parallel_for_ranges(ThreadPool& pool, i64 begin, i64 end,
                         const std::function<void(i64, i64)>& fn) {
  const i64 total = end - begin;
  if (total <= 0) return;
  const i64 workers = i64(pool.size());
  if (workers <= 1 || total == 1) {  // serial fast path, no thread handoff
    fn(begin, end);
    return;
  }
  const i64 chunks = std::min(total, workers * 4);
  const i64 step = (total + chunks - 1) / chunks;
  std::exception_ptr first_error;
  std::mutex err_mu;
  i64 done = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  i64 launched = 0;
  for (i64 lo = begin; lo < end; lo += step) {
    const i64 hi = std::min(end, lo + step);
    ++launched;
    pool.submit([&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard lk(done_mu);
      ++done;
      done_cv.notify_all();
    });
  }
  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return done == launched; });
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, i64 begin, i64 end,
                  const std::function<void(i64)>& fn) {
  parallel_for_ranges(pool, begin, end, [&](i64 lo, i64 hi) {
    for (i64 i = lo; i < hi; ++i) fn(i);
  });
}

void parallel_for_ranges(i64 begin, i64 end,
                         const std::function<void(i64, i64)>& fn) {
  parallel_for_ranges(ThreadPool::global(), begin, end, fn);
}

void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn) {
  parallel_for(ThreadPool::global(), begin, end, fn);
}

}  // namespace mlr
