// Minimal leveled logger. Bench binaries set the level from --verbose; tests
// keep it at Warn so output stays readable.
#pragma once

#include <sstream>
#include <string>

namespace mlr {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: MLR_LOG(Info) << "x=" << x;
#define MLR_LOG(level_name)                                        \
  for (bool mlr_once = ::mlr::log_level() <= ::mlr::LogLevel::level_name; \
       mlr_once; mlr_once = false)                                 \
  ::mlr::detail::LogLine(::mlr::LogLevel::level_name)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace mlr
