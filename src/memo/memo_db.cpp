#include "memo/memo_db.hpp"

#include <algorithm>
#include <cmath>

#include "common/array.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"

namespace mlr::memo {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::Fu1D: return "Fu1D";
    case OpKind::Fu1DAdj: return "F*u1D";
    case OpKind::Fu2D: return "Fu2D";
    case OpKind::Fu2DAdj: return "F*u2D";
  }
  return "?";
}

double key_cosine(std::span<const float> a, std::span<const float> b) {
  MLR_CHECK(a.size() == b.size());
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += double(a[i]) * b[i];
    na += double(a[i]) * a[i];
    nb += double(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return na == nb ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double estimated_chunk_cosine(std::span<const float> key_q,
                              std::span<const float> key_db, double norm_q,
                              double norm_db) {
  MLR_CHECK(key_q.size() == key_db.size());
  if (norm_q <= 0 || norm_db <= 0) return norm_q == norm_db ? 1.0 : -1.0;
  double dz2 = 0;
  for (std::size_t i = 0; i < key_q.size(); ++i) {
    const double d = double(key_q[i]) - key_db[i];
    dz2 += d * d;
  }
  const double cs =
      (norm_q * norm_q + norm_db * norm_db - dz2) / (2.0 * norm_q * norm_db);
  return std::clamp(cs, -1.0, 1.0);
}

int entry_shard(const MemoDb::Entry& e, int shard_count) {
  MLR_CHECK(shard_count >= 1);
  if (shard_count == 1) return 0;
  u64 h = fnv1a(kFnvOffsetBasis, &e.kind, sizeof e.kind);
  h = fnv1a(h, e.key.data(), e.key.size() * sizeof(float));
  return int(h % u64(shard_count));
}

std::size_t entry_bytes(const MemoDb::Entry& e) {
  // Logical footprint: an index-only entry (empty value, value_cf set)
  // still stands for its full payload — charging and shard occupancy must
  // not depend on whether the bytes happen to be local.
  const std::size_t vcf = e.value.empty() ? e.value_cf : e.value.size();
  return e.key.size() * sizeof(float) + vcf * sizeof(cfloat) +
         e.probe.size() * sizeof(cfloat) + sizeof e.norm;
}

double entry_similarity(const MemoDb::Entry& a, const MemoDb::Entry& b) {
  if (a.kind != b.kind || a.value.size() != b.value.size()) return -1.0;
  const double lo = std::min(a.norm, b.norm), hi = std::max(a.norm, b.norm);
  const double scale = hi > 0 ? lo / hi : (a.norm == b.norm ? 1.0 : 0.0);
  double cs;
  if (!a.probe.empty() && a.probe.size() == b.probe.size()) {
    cs = cosine_similarity<cfloat>(a.probe, b.probe);
  } else {
    cs = std::min(key_cosine(a.key, b.key),
                  estimated_chunk_cosine(a.key, b.key, a.norm, b.norm));
  }
  return std::min(cs, scale);
}

MemoDb::MemoDb(MemoDbConfig cfg, sim::Interconnect* net,
               sim::MemoryNode* node)
    : cfg_(cfg), net_(net), node_(node) {
  MLR_CHECK(net != nullptr && node != nullptr);
  MLR_CHECK(cfg.key_dim >= 1 && cfg.tau > 0.0 && cfg.tau <= 1.0);
  for (int k = 0; k < kNumOpKinds; ++k) {
    index_.push_back(
        std::make_unique<ann::IvfFlatIndex>(cfg.key_dim, cfg.ivf));
  }
}

void MemoDb::score_requests(std::span<const QueryRequest> reqs,
                            std::span<QueryReply> replies,
                            ThreadPool* pool) const {
  MLR_CHECK(reqs.size() == replies.size());
  if (reqs.empty()) return;
  // 1) ANN search, batched per operator kind (requests of one stage share a
  //    kind, so this is normally a single search_batch fanned across the
  //    pool).
  std::vector<std::optional<ann::Neighbor>> nn(reqs.size());
  for (int k = 0; k < kNumOpKinds; ++k) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < reqs.size(); ++i)
      if (int(reqs[i].kind) == k) members.push_back(i);
    if (members.empty()) continue;
    std::vector<float> flat;
    flat.reserve(members.size() * size_t(cfg_.key_dim));
    for (const auto i : members)
      flat.insert(flat.end(), reqs[i].key.begin(), reqs[i].key.end());
    auto found = index_[size_t(k)]->search_batch(flat, 1, pool);
    for (std::size_t m = 0; m < members.size(); ++m)
      if (!found[m].empty()) nn[members[m]] = found[m].front();
  }

  // 2) Value fetch + τ gate per request. Pure reads of the value store and
  //    the norm/probe maps — insertions are deferred until the round closes.
  auto gate_one = [&](i64 ii) {
    const auto i = size_t(ii);
    const auto& rq = reqs[i];
    auto& rp = replies[i];
    rp = QueryReply{};
    if (!nn[i].has_value()) return;
    // Re-fetching the stored key via id is not needed: IVF gives distance;
    // we accept by cosine, which requires the stored key — the value blob
    // stores key+value together.
    auto blob = values_.get(nn[i]->id);
    if (!blob.has_value()) return;
    auto stored = kvstore::from_blob(*blob);
    // Layout: first ceil(key_dim/2) cfloats hold the key (2 floats each).
    const std::size_t key_cf = (size_t(cfg_.key_dim) + 1) / 2;
    // A remote-seeded entry stores a key-only blob; its full value length
    // (and its fetch address — the snapshot position) live in the per-kind
    // seed tables. Hit decisions need only the length, so scoring is
    // bit-identical whether the payload is local or still on the tier.
    std::size_t vlen = stored.size() - key_cf;
    u64 remote_pos = QueryReply::kNoRemote;
    if (vlen == 0 && fetcher_ != nullptr) {
      const auto k2 = size_t(int(rq.kind));
      const u64 seq = nn[i]->id & kSeqMask;
      if (seq < seed_vlen_[k2].size() && seed_vlen_[k2][size_t(seq)] > 0) {
        vlen = seed_vlen_[k2][size_t(seq)];
        remote_pos = seed_pos_[k2][size_t(seq)];
      }
    }
    if (rq.value_size != 0 && vlen != rq.value_size)
      return;  // shape mismatch: not a valid answer for this chunk
    std::vector<float> stored_key(static_cast<size_t>(cfg_.key_dim));
    for (i64 d = 0; d < cfg_.key_dim; ++d) {
      const auto c = stored[size_t(d / 2)];
      stored_key[size_t(d)] = (d % 2 == 0) ? c.real() : c.imag();
    }
    const auto& norms = norms_[size_t(int(rq.kind))];
    const auto& probes = probes_[size_t(int(rq.kind))];
    const auto nit = norms.find(nn[i]->id);
    const double ndb = nit != norms.end() ? nit->second : rq.norm;
    const double tau = rq.tau > 0.0 ? rq.tau : cfg_.tau;
    double cs;
    const auto pit = probes.find(nn[i]->id);
    if (cfg_.oracle_similarity && !rq.probe.empty() && pit != probes.end() &&
        pit->second.size() == rq.probe.size()) {
      // Oracle: true cosine of the pooled input planes (Eq. 3 computed on
      // the chunks the keys stand for).
      cs = cosine_similarity<cfloat>(rq.probe, pit->second);
      // Scale gate: cosine is magnitude-blind.
      const double lo = std::min(rq.norm, ndb), hi = std::max(rq.norm, ndb);
      if (hi > 0 && lo / hi <= tau) cs = -1.0;
    } else {
      // Encoder proxy: key cosine AND the chunk-cosine estimate from the
      // distance-preserving embedding must both clear τ.
      cs = std::min(key_cosine(rq.key, stored_key),
                    estimated_chunk_cosine(rq.key, stored_key, rq.norm, ndb));
    }
    if (cs > tau) {
      rp.hit = true;
      rp.match_id = nn[i]->id;
      rp.cosine = cs;
      rp.value_cf = vlen;
      if (remote_pos != QueryReply::kNoRemote) {
        // Payload still on the tier: note interest now (the slice flush
        // below ships one coalesced GET_BATCH per shard) and let the engine
        // harvest with materialize() once its miss FFTs are in flight.
        rp.remote_pos = remote_pos;
        fetcher_->request(remote_pos);
      } else {
        rp.value.assign(stored.begin() + i64(key_cf), stored.end());
      }
    }
  };
  if (pool != nullptr) {
    parallel_for(*pool, 0, i64(reqs.size()), gate_one);
  } else {
    for (i64 i = 0; i < i64(reqs.size()); ++i) gate_one(i);
  }
  // One wire flush per scored slice: every remote hit of this slice rides
  // one GET_BATCH per shard, in flight while the caller computes.
  if (fetcher_ != nullptr) fetcher_->flush();
}

void MemoDb::schedule_replies(std::span<QueryReply> replies, sim::VTime ready) {
  if (replies.empty()) return;
  const double key_bytes = double(cfg_.key_dim) * sizeof(float);

  // 1) Ship the keys to the memory node. Coalescing packs keys until the
  //    payload reaches coalesce_bytes; without it every key is one message.
  sim::VTime keys_arrived = ready;
  const sim::VTime comm_start = ready;
  if (cfg_.coalesce) {
    const i64 keys_per_msg =
        std::max<i64>(1, i64(double(cfg_.coalesce_bytes) / key_bytes));
    for (std::size_t off = 0; off < replies.size();
         off += std::size_t(keys_per_msg)) {
      const auto cnt = std::min<std::size_t>(std::size_t(keys_per_msg),
                                             replies.size() - off);
      keys_arrived = net_->transfer(ready, double(cnt) * key_bytes);
      ++messages_;
    }
  } else {
    for (std::size_t i = 0; i < replies.size(); ++i) {
      keys_arrived = net_->transfer(ready, key_bytes);
      ++messages_;
    }
  }

  // 2) Index lookup on the memory node. Coalescing enables *batched* lookup
  // (one multi-threaded DRAM sweep amortizes the traversal, §4.3.3); without
  // it every key pays the full per-query cost.
  sim::VTime searched;
  if (cfg_.coalesce) {
    searched = node_->serve_index_query(keys_arrived, i64(replies.size()));
  } else {
    searched = keys_arrived;
    for (std::size_t i = 0; i < replies.size(); ++i)
      searched = node_->serve_index_query(searched, 1);
  }
  timing_.search_s += searched - keys_arrived;

  // 3) Hits fetch their value: value DB service + transfer back over the
  //    link, in request order.
  double value_comm = 0.0;
  for (auto& rp : replies) {
    rp.value_ready = searched;  // miss: the caller waited for the lookup
    if (rp.hit) {
      // Charge from the scored value length, not the payload buffer: a
      // remote hit's payload may still be in flight on the wall clock, and
      // virtual charging must neither wait for it nor depend on it.
      const double vbytes =
          double(rp.value_cf) * sizeof(cfloat) * cfg_.value_scale;
      const sim::VTime served = node_->serve_value(searched, vbytes);
      timing_.value_serve_s += served - searched;
      rp.value_ready = net_->transfer(served, vbytes);
      value_comm += rp.value_ready - served;
    }
    timing_.query_latency_us.add(
        (std::max(rp.hit ? rp.value_ready : searched, searched) - ready) *
        1e6);
  }
  timing_.comm_s += (keys_arrived - comm_start) + value_comm;
}

std::vector<QueryReply> MemoDb::query_batch(
    std::span<const QueryRequest> reqs, sim::VTime ready, ThreadPool* pool) {
  MLR_CHECK_MSG(!round_open_, "query_batch inside an open async round");
  std::vector<QueryReply> replies(reqs.size());
  if (reqs.empty()) return replies;
  // Guard the scored kinds against concurrent pipelined stores for the
  // duration of the scoring read.
  u32 kinds = 0;
  for (const auto& r : reqs) kinds |= u32(1) << int(r.kind);
  round_kinds_.store(kinds, std::memory_order_release);
  // Asynchronous insertions complete before the next round of queries (they
  // overlap the intervening iteration's compute).
  values_.drain();
  score_requests(reqs, replies, pool);
  round_kinds_.store(0, std::memory_order_release);
  schedule_replies(replies, ready);
  return replies;
}

void MemoDb::begin_batch() {
  MLR_CHECK_MSG(!round_open_, "begin_batch while a round is already open");
  values_.drain();
  slices_.clear();
  round_kinds_.store(0, std::memory_order_release);
  round_open_ = true;
}

MemoDb::SliceTicket MemoDb::submit_slice(std::vector<QueryRequest> reqs,
                                         ThreadPool* pool) {
  MLR_CHECK_MSG(round_open_, "submit_slice outside begin_batch/finalize");
  u32 kinds = 0;
  for (const auto& r : reqs) kinds |= u32(1) << int(r.kind);
  round_kinds_.fetch_or(kinds, std::memory_order_acq_rel);
  auto s = std::make_shared<Slice>();
  s->reqs = std::move(reqs);
  s->scored.resize(s->reqs.size());
  // The job shares ownership of its slice and signals completion under the
  // slice lock, so the collector can neither miss the wakeup nor destroy
  // the slice while the worker still touches it. Scoring errors are stashed
  // for collect() — thrown from a pool job they would std::terminate the
  // worker loop.
  auto score = [this, s] {
    try {
      // Intra-slice scoring stays serial: the overlap is across slices, and
      // a slice job must not re-enter the pool it runs on.
      score_requests(s->reqs, s->scored, nullptr);
    } catch (...) {
      s->error = std::current_exception();
    }
    std::lock_guard lk(s->mu);
    s->done = true;
    s->cv.notify_all();
  };
  // Register the slice only once nothing else can throw, and deregister if
  // the pool handoff itself fails — a registered slice whose job never runs
  // would hang collect()/abort_round() on the done flag.
  slices_.push_back(s);
  if (pool != nullptr && pool->size() > 1) {
    try {
      pool->submit(score);
    } catch (...) {
      slices_.pop_back();
      throw;
    }
  } else {
    score();
  }
  return slices_.size() - 1;
}

std::span<QueryReply> MemoDb::collect(SliceTicket t) {
  MLR_CHECK(round_open_ && t < slices_.size());
  Slice& s = *slices_[t];
  std::unique_lock lk(s.mu);
  s.cv.wait(lk, [&] { return s.done; });
  if (s.error) std::rethrow_exception(s.error);
  return s.scored;
}

std::vector<QueryReply> MemoDb::finalize(sim::VTime ready) {
  MLR_CHECK_MSG(round_open_, "finalize without begin_batch");
  try {
    std::vector<QueryReply> replies;
    for (SliceTicket t = 0; t < slices_.size(); ++t) {
      (void)collect(t);  // ensure scoring finished; rethrows scoring errors
      auto& scored = slices_[t]->scored;
      replies.insert(replies.end(), std::make_move_iterator(scored.begin()),
                     std::make_move_iterator(scored.end()));
    }
    schedule_replies(replies, ready);
    slices_.clear();
    round_kinds_.store(0, std::memory_order_release);
    round_open_ = false;
    return replies;
  } catch (...) {
    // One failed round must not wedge the database: close it, then let the
    // caller see the original error.
    abort_round();
    throw;
  }
}

void MemoDb::abort_round() {
  if (!round_open_) return;
  // Drain in-flight scoring first so no worker still references slice
  // state, then discard the round.
  for (auto& s : slices_) {
    std::unique_lock lk(s->mu);
    s->cv.wait(lk, [&] { return s->done; });
  }
  slices_.clear();
  round_kinds_.store(0, std::memory_order_release);
  round_open_ = false;
}

u64 MemoDb::store_entry(OpKind kind, std::span<const float> key,
                        std::span<const cfloat> value, double norm,
                        std::vector<cfloat> probe, bool async) {
  MLR_CHECK(i64(key.size()) == cfg_.key_dim);
  const auto k = size_t(int(kind));
  // Per-kind lock: stores of different kinds (different tail lanes) proceed
  // concurrently; stores within a kind serialize, so the kind's sequence
  // numbers follow its lane's FIFO order.
  std::lock_guard store_lk(store_mu_[k]);
  const u64 seq = next_seq_[k].fetch_add(1, std::memory_order_acq_rel);
  const u64 id = (u64(kind) << 56) | seq;
  index_[k]->add(id, key);
  norms_[k][id] = norm;
  if (!probe.empty()) probes_[k][id] = std::move(probe);
  // Pack key + value into one blob (key padded into cfloat pairs).
  const std::size_t key_cf = (key.size() + 1) / 2;
  std::vector<cfloat> packed(key_cf + value.size());
  for (std::size_t d = 0; d < key.size(); ++d) {
    auto& c = packed[d / 2];
    c = (d % 2 == 0) ? cfloat(key[d], c.imag()) : cfloat(c.real(), key[d]);
  }
  std::copy(value.begin(), value.end(), packed.begin() + i64(key_cf));
  if (async) {
    values_.put_async(id, kvstore::to_blob(packed));
  } else {
    values_.put(id, kvstore::to_blob(packed));
  }
  return id;
}

void MemoDb::insert(OpKind kind, std::span<const float> key,
                    std::span<const cfloat> value, sim::VTime ready,
                    double norm, std::vector<cfloat> probe) {
  // Service contract: a round's scoring must never observe the insertions
  // its caller is about to make (slice boundaries would leak into results).
  MLR_CHECK_MSG(!round_open_, "insert inside an open async query round");
  (void)store_insert(kind, key, value, norm, std::move(probe));
  charge_insert(key.size(), value.size(), ready);
}

u64 MemoDb::store_insert(OpKind kind, std::span<const float> key,
                         std::span<const cfloat> value, double norm,
                         std::vector<cfloat> probe) {
  // The engine's same-kind settle rule makes this impossible; assert it so
  // a future caller cannot silently leak stores into a round that scores
  // the same key space.
  MLR_CHECK_MSG((round_kinds_.load(std::memory_order_acquire) &
                 (u32(1) << int(kind))) == 0,
                "store_insert for a kind the open round is scoring");
  return store_entry(kind, key, value, norm, std::move(probe), /*async=*/true);
}

void MemoDb::charge_insert(std::size_t key_floats, std::size_t value_floats,
                           sim::VTime ready) {
  // Virtual-time: the store travels over the link and lands in DRAM, but
  // asynchronously — nothing waits on the returned completion time. DRAM
  // growth is accounted in charge order (not from values_.bytes(), which
  // trails the async writer and any deferred pipelined stores), so the
  // footprint curve is deterministic for every depth/slices/threads setting.
  const std::size_t key_cf = (key_floats + 1) / 2;
  const double blob_bytes = double(key_cf + value_floats) * sizeof(cfloat);
  const double wire_bytes = blob_bytes * cfg_.value_scale;
  const sim::VTime arrived = net_->transfer(ready, wire_bytes);
  (void)node_->serve_value(arrived, wire_bytes);
  node_->dram().alloc("memo_values", accounted_store_bytes_ + wire_bytes,
                      arrived);
  accounted_store_bytes_ += blob_bytes;
}

std::vector<MemoDb::Entry> MemoDb::export_entries(bool session_only) {
  MLR_CHECK_MSG(!round_open_, "export_entries inside an open async round");
  // A remote-seeded session may hold key-only blobs for payloads it never
  // fetched — a full export would silently produce empty values.
  MLR_CHECK_MSG(session_only || fetcher_ == nullptr,
                "full export of a remote-seeded session");
  values_.drain();  // pending async insertions become part of the snapshot
  // Canonical kind-major order: each kind's entries in its own insertion
  // order. Per-kind sequencing makes this order independent of how the tail
  // lanes interleaved stores of different kinds.
  std::scoped_lock store_lk(store_mu_[0], store_mu_[1], store_mu_[2],
                            store_mu_[3]);
  static_assert(kNumOpKinds == 4);
  std::vector<Entry> out;
  for (int k = 0; k < kNumOpKinds; ++k) {
    const OpKind kind = OpKind(k);
    const u64 from_seq = session_only ? shared_boundary_[size_t(k)] : 0;
    const u64 end_seq = next_seq_[size_t(k)].load(std::memory_order_acquire);
    for (u64 seq = from_seq; seq < end_seq; ++seq) {
      const u64 id = (u64(kind) << 56) | seq;
      auto blob = values_.get(id);
      MLR_CHECK(blob.has_value());
      auto stored = kvstore::from_blob(*blob);
      const std::size_t key_cf = (size_t(cfg_.key_dim) + 1) / 2;
      Entry e;
      e.kind = kind;
      e.key.resize(size_t(cfg_.key_dim));
      for (i64 d = 0; d < cfg_.key_dim; ++d) {
        const auto c = stored[size_t(d / 2)];
        e.key[size_t(d)] = (d % 2 == 0) ? c.real() : c.imag();
      }
      e.value.assign(stored.begin() + i64(key_cf), stored.end());
      e.value_cf = e.value.size();
      const auto& norms = norms_[size_t(k)];
      const auto& probes = probes_[size_t(k)];
      const auto nit = norms.find(id);
      e.norm = nit != norms.end() ? nit->second : 1.0;
      const auto pit = probes.find(id);
      if (pit != probes.end()) e.probe = pit->second;
      out.push_back(std::move(e));
    }
  }
  return out;
}

void MemoDb::import_entries(std::span<const Entry> entries,
                            ValueFetcher* values) {
  MLR_CHECK_MSG(total_entries() == 0 && !round_open_,
                "import_entries requires a fresh database");
  fetcher_ = values;
  // Replay in snapshot order: per-kind ids (and therefore the IVF training
  // set and every downstream hit decision) come out identical for every
  // session seeded from the same snapshot — and identical whether the seed
  // carries value payloads inline or index-only records (the remote form).
  const std::size_t key_cf = (size_t(cfg_.key_dim) + 1) / 2;
  double logical_bytes = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const auto k = size_t(int(e.kind));
    const std::size_t vcf = e.value.empty() ? e.value_cf : e.value.size();
    const bool remote = e.value.empty() && e.value_cf > 0;
    MLR_CHECK_MSG(!remote || values != nullptr,
                  "index-only seed entry without a value fetcher");
    if (values != nullptr) {
      // Per-kind seq the entry is about to get == the kind's current count.
      const u64 seq = next_seq_[k].load(std::memory_order_acquire);
      seed_vlen_[k].resize(size_t(seq) + 1, 0);
      seed_pos_[k].resize(size_t(seq) + 1, 0);
      if (remote) {
        seed_vlen_[k][size_t(seq)] = u32(vcf);
        seed_pos_[k][size_t(seq)] = u64(i);
      }
    }
    (void)store_entry(e.kind, e.key, e.value, e.norm, e.probe,
                      /*async=*/false);
    logical_bytes += double(key_cf + vcf) * sizeof(cfloat);
  }
  for (int k = 0; k < kNumOpKinds; ++k)
    shared_boundary_[size_t(k)] = next_seq_[size_t(k)].load();
  // Seed blobs are (logically) resident before the session runs; account
  // them so the first pipelined charge continues from the real footprint.
  // The *logical* footprint — key + full value per entry — is what the
  // paper-scale DRAM curve means, and for an index-only seed it is what the
  // resident bytes become once payloads land; using it keeps the accounting
  // identical to a value-carrying seed of the same snapshot.
  accounted_store_bytes_ = logical_bytes;
}

void MemoDb::restore_session_entries(std::span<const Entry> entries) {
  MLR_CHECK_MSG(!round_open_, "restore_session_entries inside an open round");
  for (int k = 0; k < kNumOpKinds; ++k)
    MLR_CHECK_MSG(
        next_seq_[size_t(k)].load() == shared_boundary_[size_t(k)],
        "restore_session_entries must run on a seed-only database");
  const std::size_t key_cf = (size_t(cfg_.key_dim) + 1) / 2;
  for (const auto& e : entries) {
    // Own entries always carry their payload inline: the session stored
    // them locally even when its *seed* was index-only.
    MLR_CHECK(!e.value.empty() || e.value_cf == 0);
    (void)store_entry(e.kind, e.key, e.value, e.norm, e.probe,
                      /*async=*/false);
    accounted_store_bytes_ +=
        double(key_cf + e.value.size()) * sizeof(cfloat);
  }
}

void MemoDb::materialize(QueryReply& rp) {
  if (!rp.hit || rp.remote_pos == QueryReply::kNoRemote) return;
  const std::size_t key_cf = (size_t(cfg_.key_dim) + 1) / 2;
  // Another harvest of the same entry may already have cached the payload.
  auto blob = values_.get(rp.match_id);
  MLR_CHECK(blob.has_value());
  auto stored = kvstore::from_blob(*blob);
  if (stored.size() > key_cf) {
    rp.value.assign(stored.begin() + i64(key_cf), stored.end());
  } else {
    MLR_CHECK(fetcher_ != nullptr);
    auto v = fetcher_->fetch(rp.remote_pos);
    MLR_CHECK_MSG(v.size() == rp.value_cf,
                  "fetched payload length disagrees with the seed index");
    // Upgrade the key-only blob so later rounds (and the dedup/export
    // paths) serve this entry locally. Concurrent upgrades write identical
    // bytes; KvStore::put is atomic per key.
    stored.insert(stored.end(), v.begin(), v.end());
    values_.put(rp.match_id, kvstore::to_blob(stored));
    rp.value = std::move(v);
  }
  rp.remote_pos = QueryReply::kNoRemote;
}

std::size_t MemoDb::entries(OpKind kind) const {
  return index_[size_t(int(kind))]->size();
}

std::size_t MemoDb::total_entries() const {
  std::size_t n = 0;
  for (const auto& idx : index_) n += idx->size();
  return n;
}

}  // namespace mlr::memo
