// The memoization cache (paper §4.4).
//
// Two designs are implemented because the paper evaluates both:
//   * PrivateCache — one single-entry FIFO cache *per chunk location* (mLR's
//     choice): a lookup does exactly one similarity comparison, total cache
//     capacity equals one FFT output per location.
//   * GlobalCache  — one shared pool over all locations: a lookup compares
//     against every resident entry (64 for the paper's 1K³ case), which is
//     where the 85 % extra comparison cost comes from. The pool can be
//     *sharded* by (kind, location) hash so concurrent lookups stop scanning
//     (and serializing on) one global FIFO under a single lock — cross-
//     location sharing is then confined to a shard, the classic
//     concurrency/recall trade-off.
// Both accept a hit only when key cosine similarity exceeds τ.
//
// Thread safety: the batched StageExecutor probes the cache from many worker
// threads at once, so every implementation must tolerate concurrent
// lookup/lookup and lookup/insert. Stats counters are atomic; entry state is
// guarded by striped (PrivateCache) or per-shard (GlobalCache) mutexes.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "memo/memo_db.hpp"

namespace mlr::memo {

/// Snapshot of the cache counters (values are copied out of the atomics).
struct CacheStats {
  u64 lookups = 0;
  u64 hits = 0;
  u64 comparisons = 0;  ///< similarity evaluations performed
  [[nodiscard]] double hit_rate() const {
    return lookups ? double(hits) / double(lookups) : 0.0;
  }
};

struct CacheEntry {
  std::vector<float> key;
  std::vector<cfloat> value;
  double norm = 1.0;  ///< raw chunk L2 norm (scale gate, see MemoDb)
  std::vector<cfloat> probe;  ///< pooled input plane (oracle mode)
};

/// Deep copy of a cache's resident entries + counters, in the cache's own
/// canonical iteration order (slot-major for PrivateCache, shard-then-FIFO
/// for GlobalCache). Restoring an image onto a freshly constructed cache of
/// the same geometry reproduces lookup results, eviction behaviour and
/// fingerprint() bit-identically — the serve layer checkpoints a preempted
/// session's cache through this.
struct CacheImage {
  struct Item {
    i64 slot = 0;  ///< PrivateCache slot index / GlobalCache shard index
    OpKind kind = OpKind(0);
    CacheEntry entry;
  };
  std::vector<Item> items;
  CacheStats stats;
};

/// Abstract cache over (op kind, chunk location) → FFT result.
/// Implementations must be safe under concurrent lookup and insert.
class MemoCache {
 public:
  virtual ~MemoCache() = default;
  /// Returns the cached value when a τ-similar key is resident.
  virtual std::optional<std::vector<cfloat>> lookup(
      OpKind kind, i64 location, std::span<const float> key, double tau,
      double norm = 1.0, std::span<const cfloat> probe = {}) = 0;
  /// FIFO insert of a freshly retrieved/computed value.
  virtual void insert(OpKind kind, i64 location, std::span<const float> key,
                      std::span<const cfloat> value, double norm = 1.0,
                      std::span<const cfloat> probe = {}) = 0;
  [[nodiscard]] CacheStats stats() const {
    return {lookups_.load(std::memory_order_relaxed),
            hits_.load(std::memory_order_relaxed),
            comparisons_.load(std::memory_order_relaxed)};
  }
  /// Total resident bytes.
  [[nodiscard]] virtual std::size_t bytes() const = 0;
  /// True when entries of different OpKinds can never interact — neither
  /// matching nor evicting one another. The cross-stage pipeline may then
  /// run kind-A inserts under kind-B probes without changing any outcome,
  /// and the engine may shard its deferred tails across per-kind drainer
  /// lanes; a kind-coupled cache forces the engine to settle every pending
  /// tail at stage entry AND pins every tail to one lane (its cross-kind
  /// FIFO order must match the enqueue order) instead.
  [[nodiscard]] virtual bool kind_isolated() const = 0;
  /// Order-sensitive digest of the resident entries (keys, values, norms,
  /// FIFO order). Two caches that went through the same insert sequence
  /// produce the same fingerprint — the determinism tests compare the
  /// engine's cache contents across thread counts and overlap settings.
  [[nodiscard]] virtual u64 fingerprint() const = 0;
  /// Checkpoint/restore of resident entries + counters (see CacheImage).
  /// restore() replaces the current contents; call it only on a cache of the
  /// same geometry (same locations/capacity/shards) as the image's source.
  [[nodiscard]] virtual CacheImage image() const = 0;
  virtual void restore(const CacheImage& img) = 0;

 protected:
  void restore_stats(const CacheStats& s) {
    lookups_.store(s.lookups, std::memory_order_relaxed);
    hits_.store(s.hits, std::memory_order_relaxed);
    comparisons_.store(s.comparisons, std::memory_order_relaxed);
  }

  std::atomic<u64> lookups_{0};
  std::atomic<u64> hits_{0};
  std::atomic<u64> comparisons_{0};
};

/// mLR's private cache: slot per (kind, location), one entry per slot.
/// Concurrency: slot mutexes are striped — distinct locations almost never
/// contend, same-location lookups serialize only on their own stripe.
class PrivateCache : public MemoCache {
 public:
  explicit PrivateCache(i64 num_locations);

  std::optional<std::vector<cfloat>> lookup(OpKind kind, i64 location,
                                            std::span<const float> key,
                                            double tau, double norm = 1.0,
                                            std::span<const cfloat> probe = {})
      override;
  void insert(OpKind kind, i64 location, std::span<const float> key,
              std::span<const cfloat> value, double norm = 1.0,
              std::span<const cfloat> probe = {}) override;
  [[nodiscard]] std::size_t bytes() const override;
  [[nodiscard]] u64 fingerprint() const override;
  [[nodiscard]] CacheImage image() const override;
  void restore(const CacheImage& img) override;
  /// One single-entry slot per (kind, location): kinds never interact.
  [[nodiscard]] bool kind_isolated() const override { return true; }

 private:
  static constexpr std::size_t kLockStripes = 64;

  i64 slot(OpKind kind, i64 location) const;
  std::mutex& stripe(i64 s) const { return locks_[std::size_t(s) % kLockStripes]; }

  i64 num_locations_;
  std::vector<std::optional<CacheEntry>> slots_;
  mutable std::unique_ptr<std::mutex[]> locks_;
};

/// Baseline: a shared FIFO pool over all locations, lookup scans every
/// resident entry of the matching kind. With `shards > 1` the pool is split
/// by (kind, location) hash: each shard holds capacity/shards entries behind
/// its own mutex, so concurrent lookups of different shards proceed without
/// contention and each scan touches only its shard's residents.
class GlobalCache : public MemoCache {
 public:
  explicit GlobalCache(i64 capacity, i64 shards = 1);

  std::optional<std::vector<cfloat>> lookup(OpKind kind, i64 location,
                                            std::span<const float> key,
                                            double tau, double norm = 1.0,
                                            std::span<const cfloat> probe = {})
      override;
  void insert(OpKind kind, i64 location, std::span<const float> key,
              std::span<const cfloat> value, double norm = 1.0,
              std::span<const cfloat> probe = {}) override;
  [[nodiscard]] std::size_t bytes() const override;
  [[nodiscard]] u64 fingerprint() const override;
  [[nodiscard]] CacheImage image() const override;
  void restore(const CacheImage& img) override;

  [[nodiscard]] i64 shards() const { return i64(shards_.size()); }
  /// Shards mix kinds and FIFO eviction crosses them, so a kind-A insert
  /// can evict a kind-B resident: kinds are coupled.
  [[nodiscard]] bool kind_isolated() const override { return false; }

 private:
  struct Tagged {
    OpKind kind;
    CacheEntry entry;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Tagged> pool;  // FIFO order
  };

  Shard& shard_of(OpKind kind, i64 location);
  const Shard& shard_of(OpKind kind, i64 location) const;

  i64 shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace mlr::memo
