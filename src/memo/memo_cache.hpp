// The memoization cache (paper §4.4).
//
// Two designs are implemented because the paper evaluates both:
//   * PrivateCache — one single-entry FIFO cache *per chunk location* (mLR's
//     choice): a lookup does exactly one similarity comparison, total cache
//     capacity equals one FFT output per location.
//   * GlobalCache  — one shared pool over all locations: a lookup compares
//     against every resident entry (64 for the paper's 1K³ case), which is
//     where the 85 % extra comparison cost comes from.
// Both accept a hit only when key cosine similarity exceeds τ.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "memo/memo_db.hpp"

namespace mlr::memo {

struct CacheStats {
  u64 lookups = 0;
  u64 hits = 0;
  u64 comparisons = 0;  ///< similarity evaluations performed
  [[nodiscard]] double hit_rate() const {
    return lookups ? double(hits) / double(lookups) : 0.0;
  }
};

struct CacheEntry {
  std::vector<float> key;
  std::vector<cfloat> value;
  double norm = 1.0;  ///< raw chunk L2 norm (scale gate, see MemoDb)
  std::vector<cfloat> probe;  ///< pooled input plane (oracle mode)
};

/// Abstract cache over (op kind, chunk location) → FFT result.
class MemoCache {
 public:
  virtual ~MemoCache() = default;
  /// Returns the cached value when a τ-similar key is resident.
  virtual std::optional<std::vector<cfloat>> lookup(
      OpKind kind, i64 location, std::span<const float> key, double tau,
      double norm = 1.0, std::span<const cfloat> probe = {}) = 0;
  /// FIFO insert of a freshly retrieved/computed value.
  virtual void insert(OpKind kind, i64 location, std::span<const float> key,
                      std::span<const cfloat> value, double norm = 1.0,
                      std::span<const cfloat> probe = {}) = 0;
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  /// Total resident bytes.
  [[nodiscard]] virtual std::size_t bytes() const = 0;

 protected:
  CacheStats stats_;
};

/// mLR's private cache: slot per (kind, location), one entry per slot.
class PrivateCache : public MemoCache {
 public:
  explicit PrivateCache(i64 num_locations);

  std::optional<std::vector<cfloat>> lookup(OpKind kind, i64 location,
                                            std::span<const float> key,
                                            double tau, double norm = 1.0,
                                            std::span<const cfloat> probe = {})
      override;
  void insert(OpKind kind, i64 location, std::span<const float> key,
              std::span<const cfloat> value, double norm = 1.0,
              std::span<const cfloat> probe = {}) override;
  [[nodiscard]] std::size_t bytes() const override;

 private:
  i64 slot(OpKind kind, i64 location) const;
  i64 num_locations_;
  std::vector<std::optional<CacheEntry>> slots_;
};

/// Baseline: one shared pool, capacity = num_locations entries, FIFO
/// eviction, lookup scans every resident entry.
class GlobalCache : public MemoCache {
 public:
  explicit GlobalCache(i64 capacity);

  std::optional<std::vector<cfloat>> lookup(OpKind kind, i64 location,
                                            std::span<const float> key,
                                            double tau, double norm = 1.0,
                                            std::span<const cfloat> probe = {})
      override;
  void insert(OpKind kind, i64 location, std::span<const float> key,
              std::span<const cfloat> value, double norm = 1.0,
              std::span<const cfloat> probe = {}) override;
  [[nodiscard]] std::size_t bytes() const override;

 private:
  struct Tagged {
    OpKind kind;
    CacheEntry entry;
  };
  i64 capacity_;
  std::vector<Tagged> pool_;  // FIFO order
};

}  // namespace mlr::memo
