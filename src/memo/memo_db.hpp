// The distributed memoization database (paper §4.3).
//
// Architecture mirrors Fig 6: the *memory node* hosts an index database
// (ANN over encoder keys — Faiss IVF in the paper, our IvfFlatIndex here)
// and a value database (Redis in the paper, our KvStore here). The compute
// node reaches it over the shared interconnect. Queries are optionally
// *coalesced* into ≥4 KB payloads (§4.3.3) and looked up as a batch.
//
// All timing flows through the virtual clock: key transfer on the
// Interconnect timeline, batched lookup + value serve on the MemoryNode
// timeline, value transfer back on the Interconnect. Insertions are
// asynchronous — they occupy the link/node timelines but never gate the
// caller's ready time (the paper hides insertion behind the next iteration).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ann/ann.hpp"
#include "common/stats.hpp"
#include "kvstore/kvstore.hpp"
#include "sim/device.hpp"

namespace mlr::memo {

/// Distinct FFT operators have distinct key/value spaces (an F_u1D result is
/// never a valid answer for an F_u2D query).
enum class OpKind : int { Fu1D = 0, Fu1DAdj = 1, Fu2D = 2, Fu2DAdj = 3 };
inline constexpr int kNumOpKinds = 4;
const char* op_kind_name(OpKind k);

/// One pending lookup in a coalescing batch. `norm` is the L2 norm of the
/// raw chunk: because the ReLU encoder is nearly positively homogeneous,
/// key *cosine* alone cannot distinguish a chunk from a rescaled copy, so a
/// match additionally requires the stored/query norm ratio to exceed τ.
struct QueryRequest {
  OpKind kind;
  std::vector<float> key;
  double norm = 1.0;
  /// Pooled input plane for oracle similarity (empty in encoder mode).
  std::vector<cfloat> probe;
  /// Per-query acceptance threshold; 0 → use the DB's configured τ.
  double tau = 0.0;
  /// Expected value length in cfloats; 0 → any. A stored result for a
  /// different chunk shape is never a valid answer (tail chunks are smaller
  /// than interior chunks).
  std::size_t value_size = 0;
};

/// Outcome of one lookup.
struct QueryReply {
  bool hit = false;
  u64 match_id = 0;
  double cosine = 0.0;           ///< similarity of matched key
  std::vector<cfloat> value;     ///< retrieved FFT result when hit
  sim::VTime value_ready = 0.0;  ///< virtual time the value is on the compute node
};

struct MemoDbConfig {
  i64 key_dim = 60;
  double tau = 0.92;            ///< cosine threshold for accepting a match
  i64 coalesce_bytes = 4096;    ///< payload target for key coalescing
  bool coalesce = true;
  /// Virtual-clock multiplier applied to value-payload bytes so a scaled-
  /// down volume is *timed* as its paper-scale counterpart (keys are tiny
  /// at any scale and are not multiplied).
  double value_scale = 1.0;
  /// Oracle similarity: accept by the true cosine of pooled input planes
  /// instead of the encoder-key proxy. The paper's encoder is trained at
  /// dataset scale and approximates exactly this quantity; at this repo's
  /// reduced scale the oracle removes encoder fidelity as a confounder for
  /// the accuracy/convergence experiments (see DESIGN.md). Keys are still
  /// encoded and timed for the performance path either way.
  bool oracle_similarity = true;
  ann::IvfParams ivf{};         ///< index database parameters
};

/// Timing breakdown accumulated across queries (Fig 10 / Fig 11 components).
struct DbTiming {
  double comm_s = 0;         ///< key+value transfer time on the critical path
  double search_s = 0;       ///< index lookup time
  double value_serve_s = 0;  ///< value database service time
  Samples query_latency_us;  ///< end-to-end per-query latency samples
};

class MemoDb {
 public:
  MemoDb(MemoDbConfig cfg, sim::Interconnect* net, sim::MemoryNode* node);

  /// Batched lookup: all requests travel together (coalesced into
  /// ceil(batch·key_bytes / coalesce_bytes) messages when enabled, one
  /// message per key otherwise). Returns one reply per request; replies for
  /// hits include the value and its arrival time.
  std::vector<QueryReply> query_batch(std::span<const QueryRequest> reqs,
                                      sim::VTime ready);

  /// Asynchronous insertion of (key, value): charged to the link/node
  /// timelines, never blocks the caller. `norm` is the raw chunk L2 norm.
  void insert(OpKind kind, std::span<const float> key,
              std::span<const cfloat> value, sim::VTime ready,
              double norm = 1.0, std::vector<cfloat> probe = {});

  [[nodiscard]] std::size_t entries(OpKind kind) const;
  [[nodiscard]] std::size_t total_entries() const;
  [[nodiscard]] std::size_t value_bytes() const { return values_.bytes(); }
  [[nodiscard]] const DbTiming& timing() const { return timing_; }
  [[nodiscard]] const MemoDbConfig& config() const { return cfg_; }
  /// Number of coalesced wire messages sent so far for queries.
  [[nodiscard]] u64 messages_sent() const { return messages_; }

 private:
  u64 make_id(OpKind kind) { return (u64(kind) << 56) | next_id_++; }

  MemoDbConfig cfg_;
  sim::Interconnect* net_;
  sim::MemoryNode* node_;
  std::vector<std::unique_ptr<ann::IvfFlatIndex>> index_;  // one per OpKind
  kvstore::KvStore values_;
  std::unordered_map<u64, double> norms_;  // id → stored chunk norm
  std::unordered_map<u64, std::vector<cfloat>> probes_;  // id → pooled input
  u64 next_id_ = 0;
  u64 messages_ = 0;
  DbTiming timing_;
};

/// Cosine similarity between two float keys.
double key_cosine(std::span<const float> a, std::span<const float> b);

/// Estimated cosine similarity between the two *chunks* behind a pair of
/// keys (Eq. 3 of the paper). The contrastive encoder preserves chunk L2
/// distances (‖za−zb‖ ≈ ‖Cha−Chb‖), and chunk norms are known exactly, so
///   cos χ = (nq² + ndb² − ‖za−zb‖²) / (2·nq·ndb),
/// clamped to [−1, 1].
double estimated_chunk_cosine(std::span<const float> key_q,
                              std::span<const float> key_db, double norm_q,
                              double norm_db);

}  // namespace mlr::memo
