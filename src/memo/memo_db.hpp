// The distributed memoization database (paper §4.3), exposed as an
// asynchronous batch-query service.
//
// Architecture mirrors Fig 6: the *memory node* hosts an index database
// (ANN over encoder keys — Faiss IVF in the paper, our IvfFlatIndex here)
// and a value database (Redis in the paper, our KvStore here). The compute
// node reaches it over the shared interconnect. Queries are optionally
// *coalesced* into ≥4 KB payloads (§4.3.3) and looked up as a batch.
//
// The service splits every lookup round into two halves:
//
//   * scoring — the real work: ANN search (fanned across a ThreadPool via
//     ann::Index::search_batch), value fetch and the τ similarity gate.
//     Scoring touches no virtual timeline, so slices of one round can run
//     concurrently with the caller's other work (the StageExecutor overlaps
//     slice k+1's scoring with slice k's miss FFTs).
//   * scheduling — a deterministic serial pass over the round's requests in
//     submission order that charges key transfer (Interconnect), batched
//     lookup + value serve (MemoryNode) and value transfer back
//     (Interconnect) to the virtual clock. Because scheduling never depends
//     on how scoring was sliced or which worker ran it, reported virtual
//     times are bit-identical for any overlap_slices / pool-width setting.
//
// Two entry points drive the service:
//
//   * query_batch() — the one-shot form: score (optionally on a pool) then
//     schedule, all before returning. Equivalent to a round with one slice.
//   * begin_batch() / submit_slice() / collect() / finalize() — the async
//     form. begin_batch opens a round (draining pending insertions, exactly
//     like the head of query_batch); each submit_slice enqueues one slice's
//     scoring on the pool and returns a ticket; collect blocks until that
//     slice's scoring finished and exposes timing-free replies (hit, value);
//     finalize runs the serial scheduling pass over every slice in
//     submission order and returns the completed replies — bit-identical to
//     one query_batch over the concatenated requests.
//
// Multi-stage (pipelined) round lifecycle: an insertion is two halves that
// the engine may split across threads —
//
//   * charge_insert() — the virtual-clock half: link/node charges and the
//     deterministic DRAM accounting. Always called on the scheduling thread,
//     in insertion order, so the virtual timelines replay the barriered
//     schedule exactly.
//   * store_insert() — the data half: index add, norm/probe bookkeeping and
//     the packed key+value blob. The cross-stage pipeline runs stage s's
//     stores on a worker while stage s+1 is already encoding, probing its
//     cache and scoring its own round. That is safe because key/value spaces
//     are partitioned by OpKind end to end (per-kind ANN index AND per-kind
//     norm/probe maps, thread-safe KvStore): a store of kind A can neither
//     change nor tear the scoring of a round that only queries kind B.
//
// Service contract: a round must never score requests of a kind that still
// has stores in flight — the StageExecutor enforces this by settling
// same-kind tail work before a stage touches the DB, and store_insert
// asserts the open round queries no request of its kind. The plain
// insert() (= charge + store on one thread) keeps the stricter legacy
// contract: never inside an open round. Slices own their requests (moved
// in), so in-flight scoring never references caller storage; if
// collect()/finalize() rethrow a scoring error, call abort_round() before
// reusing the database.
//
// Insertions are asynchronous — they occupy the link/node timelines but
// never gate the caller's ready time (the paper hides insertion behind the
// next iteration); they become visible to queries at the next round's
// begin_batch()/query_batch() (for a pipelined caller: at the engine's
// same-kind settle point, which precedes that round by construction).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ann/ann.hpp"
#include "common/stats.hpp"
#include "kvstore/kvstore.hpp"
#include "sim/device.hpp"

namespace mlr {
class ThreadPool;
}

namespace mlr::memo {

/// Distinct FFT operators have distinct key/value spaces (an F_u1D result is
/// never a valid answer for an F_u2D query).
enum class OpKind : int { Fu1D = 0, Fu1DAdj = 1, Fu2D = 2, Fu2DAdj = 3 };
inline constexpr int kNumOpKinds = 4;
const char* op_kind_name(OpKind k);

/// One pending lookup in a coalescing batch. `norm` is the L2 norm of the
/// raw chunk: because the ReLU encoder is nearly positively homogeneous,
/// key *cosine* alone cannot distinguish a chunk from a rescaled copy, so a
/// match additionally requires the stored/query norm ratio to exceed τ.
struct QueryRequest {
  OpKind kind;
  std::vector<float> key;
  double norm = 1.0;
  /// Pooled input plane for oracle similarity (empty in encoder mode).
  std::vector<cfloat> probe;
  /// Per-query acceptance threshold; 0 → use the DB's configured τ.
  double tau = 0.0;
  /// Expected value length in cfloats; 0 → any. A stored result for a
  /// different chunk shape is never a valid answer (tail chunks are smaller
  /// than interior chunks).
  std::size_t value_size = 0;
};

/// Outcome of one lookup.
struct QueryReply {
  /// remote_pos value meaning "the payload is local (in `value`)".
  static constexpr u64 kNoRemote = ~u64(0);

  bool hit = false;
  u64 match_id = 0;
  double cosine = 0.0;           ///< similarity of matched key
  std::vector<cfloat> value;     ///< retrieved FFT result when hit
  /// cfloat length of the matched value — set for every hit, even while the
  /// payload is still remote. The virtual clock charges from this length,
  /// so charging never waits on (or varies with) the wall-clock transport.
  std::size_t value_cf = 0;
  /// Seed-snapshot position of a hit whose value payload is still remote
  /// (in flight on the tier transport); kNoRemote once the payload is in
  /// `value`. Resolve with MemoDb::materialize() before reading `value`.
  u64 remote_pos = kNoRemote;
  sim::VTime value_ready = 0.0;  ///< virtual time the value is on the compute node
};

/// Lazy value-payload source for a remote-seeded session (implemented by
/// net::TierClient over the tier transport). The scoring phase calls
/// request() per remote hit (non-blocking — just notes interest) and
/// flush() once per scored slice (ships one coalesced GET_BATCH per shard);
/// the engine harvests with fetch() at value-copy time, after the slice's
/// miss FFTs were issued — the cache_request/cache_sync split that lets a
/// remote round-trip hide under local compute. Implementations must be
/// thread-safe: scoring and harvesting run on pool workers.
class ValueFetcher {
 public:
  virtual ~ValueFetcher() = default;
  /// Note interest in snapshot position `pos` (idempotent, non-blocking).
  virtual void request(u64 pos) = 0;
  /// Ship every noted request that is not already in flight.
  virtual void flush() = 0;
  /// Block until `pos`'s payload arrived and return it. Throws on transport
  /// failure (sticky — see net/request_table.hpp).
  virtual std::vector<cfloat> fetch(u64 pos) = 0;
};

struct MemoDbConfig {
  i64 key_dim = 60;
  double tau = 0.92;            ///< cosine threshold for accepting a match
  i64 coalesce_bytes = 4096;    ///< payload target for key coalescing
  bool coalesce = true;
  /// Virtual-clock multiplier applied to value-payload bytes so a scaled-
  /// down volume is *timed* as its paper-scale counterpart (keys are tiny
  /// at any scale and are not multiplied).
  double value_scale = 1.0;
  /// Oracle similarity: accept by the true cosine of pooled input planes
  /// instead of the encoder-key proxy. The paper's encoder is trained at
  /// dataset scale and approximates exactly this quantity; at this repo's
  /// reduced scale the oracle removes encoder fidelity as a confounder for
  /// the accuracy/convergence experiments (see DESIGN.md). Keys are still
  /// encoded and timed for the performance path either way.
  bool oracle_similarity = true;
  /// Number of slices the StageExecutor cuts a stage's DB round into so
  /// slice k+1's scoring overlaps slice k's miss FFTs. 0 (or 1) = the
  /// legacy barriered path: one query_batch, then all miss compute.
  /// Results, records and virtual times are bit-identical either way.
  i64 overlap_slices = 4;
  ann::IvfParams ivf{};         ///< index database parameters
};

/// Timing breakdown accumulated across queries (Fig 10 / Fig 11 components).
struct DbTiming {
  double comm_s = 0;         ///< key+value transfer time on the critical path
  double search_s = 0;       ///< index lookup time
  double value_serve_s = 0;  ///< value database service time
  Samples query_latency_us;  ///< end-to-end per-query latency samples
};

class MemoDb {
 public:
  MemoDb(MemoDbConfig cfg, sim::Interconnect* net, sim::MemoryNode* node);

  /// One-shot batched lookup: all requests travel together (coalesced into
  /// ceil(batch·key_bytes / coalesce_bytes) messages when enabled, one
  /// message per key otherwise). Returns one reply per request; replies for
  /// hits include the value and its arrival time. ANN scoring fans out
  /// across `pool` when given (timing is unaffected — see the header
  /// comment's scoring/scheduling split).
  std::vector<QueryReply> query_batch(std::span<const QueryRequest> reqs,
                                      sim::VTime ready,
                                      ThreadPool* pool = nullptr);

  // --- Asynchronous batch-query service ------------------------------------
  // begin_batch → submit_slice* → collect* → finalize. See header comment.

  using SliceTicket = std::size_t;

  /// Open an async round: pending asynchronous insertions become visible
  /// (as at the head of query_batch) and slice state resets. Must not be
  /// called while a round is in flight.
  void begin_batch();
  /// Enqueue one slice's scoring on `pool` (scored inline when `pool` is
  /// null or single-threaded). The slice takes ownership of its requests.
  SliceTicket submit_slice(std::vector<QueryRequest> reqs, ThreadPool* pool);
  /// Block until slice `t` finished scoring; rethrows a stashed scoring
  /// error. The returned replies carry hit/match/cosine/value but no timing
  /// — value_ready is assigned by finalize(). The span is valid until
  /// finalize()/abort_round(); it is mutable so the caller can
  /// materialize() remote hits in place (finalize moves the same objects
  /// into the completed round).
  std::span<QueryReply> collect(SliceTicket t);
  /// Deterministic serial scheduling pass over every submitted slice in
  /// submission order; returns the round's completed replies, bit-identical
  /// (values, hits, virtual times, wire messages, timing stats) to one
  /// query_batch over the concatenated requests. Closes the round — on a
  /// scoring error too (the error is rethrown after the round resets).
  std::vector<QueryReply> finalize(sim::VTime ready);
  /// Abandon an open round after an error: drains in-flight slice scoring,
  /// then discards all slice state without touching the virtual clock.
  /// No-op when no round is open.
  void abort_round();

  /// Asynchronous insertion of (key, value): charged to the link/node
  /// timelines, never blocks the caller. `norm` is the raw chunk L2 norm.
  /// Equivalent to charge_insert() + store_insert() back to back; must not
  /// be called inside an open async round.
  void insert(OpKind kind, std::span<const float> key,
              std::span<const cfloat> value, sim::VTime ready,
              double norm = 1.0, std::vector<cfloat> probe = {});

  // --- Split insertion (cross-stage pipelining) ----------------------------
  // See the header comment's multi-stage round lifecycle. charge_insert
  // calls must happen in insertion order on the scheduling thread; each must
  // be paired with exactly one store_insert (same order) before the next
  // same-kind round scores.

  /// Virtual-clock half of one insertion of a `key_floats`-float key and a
  /// `value_floats`-cfloat value: link transfer, value-node service and the
  /// deterministic DRAM accounting. Never blocks and never touches entry
  /// data.
  void charge_insert(std::size_t key_floats, std::size_t value_floats,
                     sim::VTime ready);
  /// Data half: store the entry (index add, norm/probe, packed blob),
  /// assigning the next insertion sequence number. Safe on a worker thread
  /// while a round of a *different* kind is in flight (asserted).
  u64 store_insert(OpKind kind, std::span<const float> key,
                   std::span<const cfloat> value, double norm = 1.0,
                   std::vector<cfloat> probe = {});

  // --- Snapshots / shared-memo sessions / the sharded tier ------------------
  // The serving layer (serve::ReconService) keeps one *shared memo tier* per
  // service — a snapshot of promoted entries, stored across N memory-node
  // shards (serve::SharedTier) — and seeds every job's session database from
  // it. The lifecycle, and who pays for what on the virtual clock:
  //
  //   * export — after a session settles its pipeline tails and drains the
  //     async writer, export_entries(/*session_only=*/true) yields "what this
  //     job inserted on top of its seed", in canonical kind-major order.
  //     Exporting is free: the entries' link/node/DRAM traffic was charged
  //     when they were first inserted inside the session.
  //   * promote — the service ships those entries to the tier in job-id
  //     order (policy-invariant tier evolution) and charges the transfer to
  //     the shared fabric (sim::Fabric) at the job's finish time: per-shard
  //     links stream concurrently, the shared uplink serializes sessions.
  //     At the tier, a *dedup probe* rejects near-duplicates: the candidate
  //     is the entry's nearest tier neighbour in key space (the same ANN
  //     machinery the live DB queries with), gated by entry_similarity()
  //     above τ_dedup; survivors then meet the max-entries cap. Both drop
  //     classes are counted separately (MemoCounters::shared_dedup_drops /
  //     shared_cap_drops).
  //   * fetch/import — when a job is dispatched, the service charges the
  //     fabric for fetching the whole tier (per-shard byte split by
  //     entry_shard()), and the session's compute begins only when the fetch
  //     completes. import_entries() then replays the snapshot in its
  //     canonical order — identical for every shard count, since sharding
  //     decides placement (which link carries which bytes), never ordering —
  //     so ids, the IVF training set and every downstream hit decision are
  //     bit-identical for shards ∈ {1, 2, 4, …}. Ids are per-kind sequences,
  //     so the replayed ids are also independent of how the producing
  //     session's tail lanes interleaved stores of different kinds.
  //
  // Entries below the shared boundary were produced by other jobs (or the
  // priming pass), so a hit on one of them is cross-job reuse — the effect
  // the paper's economics depend on and MemoCounters::db_hit_shared
  // measures.

  /// One exported (key, value) record — the unit a snapshot is made of.
  /// `kind` partitions the key/value space exactly as the live index does.
  struct Entry {
    OpKind kind{};
    std::vector<float> key;
    double norm = 1.0;
    std::vector<cfloat> probe;
    std::vector<cfloat> value;
    /// Full value length in cfloats. Equals value.size() when the payload
    /// is present; an *index-only* entry (net wire format's seed form) has
    /// an empty `value` with value_cf > 0 — the payload stays on the tier
    /// server and sessions fetch it lazily (ValueFetcher).
    std::size_t value_cf = 0;
  };

  /// Export entries in canonical kind-major order (all of kind 0 in
  /// insertion order, then kind 1, …); pending async insertions are drained
  /// first. Insertion sequences are per kind, so the order is identical no
  /// matter how tail lanes interleaved stores of different kinds. With
  /// `session_only`, only entries above the per-kind shared boundary — what
  /// this session inserted on top of its seed — are exported. Must not be
  /// called inside an open async round.
  [[nodiscard]] std::vector<Entry> export_entries(bool session_only = false);
  /// Seed an EMPTY database from a snapshot: entries replay synchronously in
  /// order (no virtual-clock charges — the snapshot's traffic was paid when
  /// the entries were first inserted) and the per-kind shared boundaries are
  /// set to the seed sizes so seeded hits are distinguishable from hits on
  /// this session's own insertions.
  ///
  /// With a non-null `values` fetcher, *index-only* entries (empty value,
  /// value_cf > 0) are accepted: the session stores a key-only blob plus the
  /// value length, scores hits exactly as if the payload were local (hit
  /// decisions need key/norm/probe/length only), and resolves the payload
  /// lazily — score_requests batches fetcher->request() calls per slice and
  /// the engine harvests via materialize(). A fetched payload is cached
  /// into the value store, so later rounds serve it locally.
  void import_entries(std::span<const Entry> entries,
                      ValueFetcher* values = nullptr);

  /// Re-install a preempted session's *own* insertions on top of a freshly
  /// imported seed (serve-layer checkpoint/resume). Entries replay through
  /// the synchronous store path in snapshot order, continuing the per-kind
  /// sequences exactly where the seed left them — so the restored entries
  /// get the ids they had in the original session and stay *above* the
  /// shared boundary (a hit on one remains db_hit, not db_hit_shared). No
  /// virtual-clock charges: their traffic was paid when first inserted;
  /// their logical bytes are folded into the store accounting so later
  /// pipelined charges continue from the real footprint. Call once, right
  /// after import_entries(), before any query round.
  void restore_session_entries(std::span<const Entry> entries);

  /// Resolve a remote hit in place: fetch the value payload (blocking — the
  /// engine calls this after the slice's miss FFTs were issued), cache it
  /// into the value store, and clear remote_pos. No-op for local replies.
  /// Never touches a virtual timeline. Safe on pool workers.
  void materialize(QueryReply& rp);
  /// True when `match_id` (a QueryReply::match_id) refers to a seeded —
  /// i.e. cross-job — entry (its per-kind sequence is below that kind's
  /// shared boundary).
  [[nodiscard]] bool is_shared_entry(u64 id) const {
    return (id & kSeqMask) < shared_boundary_[std::size_t(id >> 56)];
  }

  /// Low 56 bits of an entry id hold the entry's *per-kind* insertion
  /// sequence number (the high byte is the OpKind). Per-kind sequencing is
  /// what lets tails of different kinds drain on independent lanes: a kind's
  /// ids stay in its own total store order no matter how the lanes
  /// interleave globally.
  static constexpr u64 kSeqMask = (u64(1) << 56) - 1;

  [[nodiscard]] std::size_t entries(OpKind kind) const;
  [[nodiscard]] std::size_t total_entries() const;
  [[nodiscard]] std::size_t value_bytes() const { return values_.bytes(); }
  [[nodiscard]] const DbTiming& timing() const { return timing_; }
  [[nodiscard]] const MemoDbConfig& config() const { return cfg_; }
  /// Number of coalesced wire messages sent so far for queries.
  [[nodiscard]] u64 messages_sent() const { return messages_; }

 private:
  /// Store one entry (index add, norm/probe bookkeeping, packed value blob)
  /// without touching any virtual timeline. insert() layers the async write
  /// and the link/node charges on top; import_entries() replays a snapshot
  /// through the synchronous write path.
  u64 store_entry(OpKind kind, std::span<const float> key,
                  std::span<const cfloat> value, double norm,
                  std::vector<cfloat> probe, bool async);

  /// Scoring half: ANN search (search_batch on `pool`), value fetch and the
  /// τ gate for every request. Touches no timeline and mutates no DB state,
  /// so it is safe on pool workers while the index is not being inserted to.
  void score_requests(std::span<const QueryRequest> reqs,
                      std::span<QueryReply> replies, ThreadPool* pool) const;
  /// Scheduling half: charge key transfer, batched lookup and hit value
  /// serve/transfer for `replies` (in order) to the virtual timelines,
  /// filling in value_ready and the timing/message counters.
  void schedule_replies(std::span<QueryReply> replies, sim::VTime ready);

  /// One slice of an in-flight async round. Held by shared_ptr and owning
  /// its requests: the pool job keeps its slice (and the request storage it
  /// scores) alive, so neither finalize()/abort_round() clearing the round
  /// nor the caller unwinding can free memory a worker still touches. An
  /// exception thrown while scoring is stashed and rethrown from collect()
  /// — it must not escape into the pool's worker loop.
  struct Slice {
    std::vector<QueryRequest> reqs;
    std::vector<QueryReply> scored;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };

  MemoDbConfig cfg_;
  sim::Interconnect* net_;
  sim::MemoryNode* node_;
  std::vector<std::unique_ptr<ann::IvfFlatIndex>> index_;  // one per OpKind
  kvstore::KvStore values_;
  // Norm/probe bookkeeping is sharded by OpKind, mirroring the per-kind ANN
  // indexes: a pipelined store of kind A mutates only shard A while a round
  // of kind B reads shard B — no shared map to rehash under a reader.
  std::array<std::unordered_map<u64, double>, kNumOpKinds> norms_;
  std::array<std::unordered_map<u64, std::vector<cfloat>>, kNumOpKinds>
      probes_;
  /// Per-kind store serialization, mirroring the per-kind indexes: one tail
  /// lane's stores of kind A never contend with another lane's stores of
  /// kind B, while stores *within* a kind stay in total insertion order
  /// (each lane drains one kind's tails FIFO). export_entries locks all
  /// kinds for a consistent snapshot.
  std::array<std::mutex, kNumOpKinds> store_mu_;
  /// Per-kind insertion-sequence counters (the low 56 bits of an id).
  std::array<std::atomic<u64>, kNumOpKinds> next_seq_{};
  /// Per-kind sequence below which entries came from import_entries().
  std::array<u64, kNumOpKinds> shared_boundary_{};
  /// Lazy value source for an index-only seed (null for local seeds).
  ValueFetcher* fetcher_ = nullptr;
  /// Remote-seed bookkeeping, indexed by per-kind seq (only filled when the
  /// seed is index-only): the full value length and the entry's snapshot
  /// position (the fetch key — snapshot order is what GET addresses).
  std::array<std::vector<u32>, kNumOpKinds> seed_vlen_;
  std::array<std::vector<u64>, kNumOpKinds> seed_pos_;
  u64 messages_ = 0;
  /// Store bytes accounted in charge order — the DRAM footprint the virtual
  /// clock sees. Decoupled from values_.bytes() (which trails the async
  /// writer and, under pipelining, the deferred stores) so the accounting is
  /// deterministic for every depth/slices/threads setting.
  double accounted_store_bytes_ = 0;
  DbTiming timing_;
  /// Kinds the open round queries (bitmask by OpKind); store_insert asserts
  /// its kind is not among them. Atomic: stores run on worker threads.
  std::atomic<u32> round_kinds_{0};
  std::vector<std::shared_ptr<Slice>> slices_;  // current async round
  bool round_open_ = false;
};

// --- Sharded-tier helpers ----------------------------------------------------
// Free functions on snapshot entries, shared by serve::SharedTier: stable
// key-hash shard placement, wire footprint, and the promotion dedup probe.

/// Stable shard placement of a snapshot entry: FNV-1a over (kind, key bytes)
/// mod `shard_count`. Content-addressed — independent of insertion order and
/// of which session produced the entry, so the same chunk always lands on
/// the same memory-node shard.
int entry_shard(const MemoDb::Entry& e, int shard_count);

/// Wire footprint of one snapshot entry (key + value + oracle probe): the
/// bytes a fetch or promotion moves across the fabric for it.
std::size_t entry_bytes(const MemoDb::Entry& e);

/// The dedup probe: how interchangeable two snapshot entries are, in the
/// same units as the query-time τ gate. Entries of different kinds or value
/// sizes are never interchangeable (−1). With oracle probes present on both
/// sides it is the true pooled-plane cosine; otherwise the encoder proxy
/// (min of key cosine and the norm-aware chunk-cosine estimate). Either way
/// the min with the norm ratio lo/hi guards against rescaled copies, as the
/// live scale gate does.
double entry_similarity(const MemoDb::Entry& a, const MemoDb::Entry& b);

/// Cosine similarity between two float keys.
double key_cosine(std::span<const float> a, std::span<const float> b);

/// Estimated cosine similarity between the two *chunks* behind a pair of
/// keys (Eq. 3 of the paper). The contrastive encoder preserves chunk L2
/// distances (‖za−zb‖ ≈ ‖Cha−Chb‖), and chunk norms are known exactly, so
///   cos χ = (nq² + ndb² − ‖za−zb‖²) / (2·nq·ndb),
/// clamped to [−1, 1].
double estimated_chunk_cosine(std::span<const float> key_q,
                              std::span<const float> key_db, double norm_q,
                              double norm_db);

}  // namespace mlr::memo
