#include "memo/stage_executor.hpp"

#include <algorithm>
#include <cmath>

#include "common/array.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "encoder/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mlr::memo {

namespace {

/// Per-phase wall-clock histograms and outcome counters. Cached references:
/// after the first stage, each event is one relaxed atomic op.
struct StageMetrics {
  obs::Histogram& sync_wait_s;
  obs::Histogram& encode_probe_s;
  obs::Histogram& score_s;
  obs::Histogram& miss_fft_s;
  obs::Histogram& tail_drain_s;
  obs::Counter& stages;
  obs::Counter& chunks;
  obs::Counter& cache_hit;
  obs::Counter& db_hit;
  obs::Counter& db_hit_shared;
  obs::Counter& miss;
  obs::Counter& computed;
  obs::Counter& tail_items;
  static StageMetrics& get() {
    static StageMetrics m{
        obs::metrics().histogram("stage.sync_wait_s", obs::latency_edges_s()),
        obs::metrics().histogram("stage.encode_probe_s",
                                 obs::latency_edges_s()),
        obs::metrics().histogram("stage.score_s", obs::latency_edges_s()),
        obs::metrics().histogram("stage.miss_fft_s", obs::latency_edges_s()),
        obs::metrics().histogram("stage.tail_drain_s",
                                 obs::latency_edges_s()),
        obs::metrics().counter("stage.stages"),
        obs::metrics().counter("stage.chunks"),
        obs::metrics().counter("memo.cache_hit"),
        obs::metrics().counter("memo.db_hit"),
        obs::metrics().counter("memo.db_hit_shared"),
        obs::metrics().counter("memo.miss"),
        obs::metrics().counter("memo.computed"),
        obs::metrics().counter("stage.tail_items"),
    };
    return m;
  }
};

}  // namespace

StageExecutor::StageExecutor(MemoizedLamino& ml) : wrappers_{&ml} {}

StageExecutor::StageExecutor(std::vector<MemoizedLamino*> wrappers)
    : wrappers_(std::move(wrappers)) {
  MLR_CHECK(!wrappers_.empty());
  for (auto* w : wrappers_) MLR_CHECK(w != nullptr);
}

StageExecutor::~StageExecutor() {
  // A dangling drainer job captures `this`; never let the engine die with
  // tails in flight. Errors were already lost to the caller at this point.
  try {
    settle();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

// --- Cross-stage data tails --------------------------------------------------

void StageExecutor::run_tail_items(StageTail& tail) {
  MLR_TRACE_SPAN("stage.tail_drain", "engine", u64(tail.items.size()));
  auto& sm = StageMetrics::get();
  sm.tail_items.add(tail.items.size());
  const WallTimer wt;
  MemoizedLamino& ml = *tail.ml;
  for (auto& it : tail.items) {
    // Cache refill first (it copies from the item), then the DB store moves
    // the buffers out. Within one item the order is unobservable; across
    // items the serial drainer replays the exact barriered sequence.
    if (ml.cache_ != nullptr)
      ml.cache_->insert(tail.kind, it.location, it.key, it.value, it.norm,
                        it.probe);
    if (it.store)
      (void)ml.db_->store_insert(tail.kind, it.key, it.value, it.norm,
                                 std::move(it.probe));
  }
  tail.items.clear();
  tail.items.shrink_to_fit();
  sm.tail_drain_s.observe(wt.seconds());
}

std::size_t StageExecutor::lane_for(const MemoizedLamino& ml,
                                    OpKind kind) const {
  // A kind-coupled cache (GlobalCache: one FIFO spanning kinds) needs its
  // wrapper's refills in total cross-kind order — pin to lane 0. Otherwise
  // the kind picks its lane; same kind → same lane keeps per-kind FIFO
  // order, which is all a kind-isolated cache and the per-kind DB sequences
  // require.
  if (ml.cache_ != nullptr && !ml.cache_->kind_isolated()) return 0;
  return std::size_t(int(kind) % int(tail_lanes_));
}

i64 StageExecutor::default_tail_lanes() {
  const auto hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min<i64>(kNumOpKinds, i64(hw));
}

void StageExecutor::set_tail_lanes(i64 lanes) {
  // Re-sharding while tails are in flight would let one kind's tails land
  // on two lanes (order break); settle first.
  settle();
  tail_lanes_ =
      lanes <= 0 ? default_tail_lanes() : std::clamp<i64>(lanes, 1, kNumOpKinds);
}

void StageExecutor::drain_lane(std::size_t lane) {
  Lane& L = lanes_[lane];
  for (;;) {
    std::shared_ptr<StageTail> t;
    {
      std::lock_guard lk(tails_mu_);
      if (L.tails.empty()) {
        L.runner_active = false;
        tails_cv_.notify_all();
        return;
      }
      t = L.tails.front();
    }
    std::exception_ptr err;
    try {
      run_tail_items(*t);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(tails_mu_);
      if (err != nullptr && tail_error_ == nullptr) tail_error_ = err;
      L.tails.pop_front();
      tails_cv_.notify_all();
    }
  }
}

void StageExecutor::enqueue_tail(MemoizedLamino& ml, OpKind kind,
                                 std::vector<TailItem> items) {
  if (items.empty()) return;
  auto tail = std::make_shared<StageTail>();
  tail->ml = &ml;
  tail->kind = kind;
  tail->items = std::move(items);
  if (pipeline_depth_ <= 1 || pool().size() <= 1) {
    run_tail_items(*tail);  // the legacy per-stage barrier, inline
    return;
  }
  const std::size_t lane = lane_for(ml, kind);
  Lane& L = lanes_[lane];
  bool start_runner = false;
  {
    std::unique_lock lk(tails_mu_);
    // Depth bound: at most depth − 1 stages may have tails in flight on one
    // lane (with one lane this is exactly the legacy global bound).
    tails_cv_.wait(lk, [&] {
      return i64(L.tails.size()) < pipeline_depth_ - 1;
    });
    L.tails.push_back(tail);
    if (!L.runner_active) {
      L.runner_active = true;
      start_runner = true;
    }
  }
  if (start_runner) {
    try {
      pool().submit([this, lane] { drain_lane(lane); });
    } catch (...) {
      drain_lane(lane);  // pool handoff failed: drain on the caller instead
    }
  }
}

void StageExecutor::sync_tails(const MemoizedLamino& ml, OpKind kind) {
  // Same-kind tails must land before this stage probes or queries (their
  // entries are visible in the barriered schedule); a kind-coupled cache
  // additionally couples eviction across kinds, so everything must land.
  // A kind's tails all live on one lane, but scanning every lane keeps the
  // predicate independent of the sharding.
  const bool all =
      ml.cache_ != nullptr && !ml.cache_->kind_isolated();
  std::unique_lock lk(tails_mu_);
  tails_cv_.wait(lk, [&] {
    for (const auto& L : lanes_)
      for (const auto& t : L.tails)
        if (all || t->kind == kind) return false;
    return true;
  });
  if (tail_error_ != nullptr) {
    auto err = tail_error_;
    tail_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void StageExecutor::settle() {
  std::unique_lock lk(tails_mu_);
  tails_cv_.wait(lk, [&] {
    for (const auto& L : lanes_)
      if (!L.tails.empty() || L.runner_active) return false;
    return true;
  });
  if (tail_error_ != nullptr) {
    auto err = tail_error_;
    tail_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

MemoCounters StageExecutor::counters() const {
  MemoCounters total;
  for (const auto* w : wrappers_) {
    const auto& c = w->counters();
    total.computed += c.computed;
    total.miss += c.miss;
    total.db_hit += c.db_hit;
    total.cache_hit += c.cache_hit;
    total.db_hit_shared += c.db_hit_shared;
  }
  return total;
}

CacheStats StageExecutor::cache_stats() const {
  CacheStats total;
  for (const auto* w : wrappers_) {
    if (w->cache() == nullptr) continue;
    const auto s = w->cache()->stats();
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.comparisons += s.comparisons;
  }
  return total;
}

void StageExecutor::set_bypass(bool bypass) {
  for (auto* w : wrappers_) w->set_bypass(bypass);
}

void StageExecutor::set_collect_samples(bool collect,
                                        std::size_t cap_per_kind) {
  for (auto* w : wrappers_) w->set_collect_samples(collect, cap_per_kind);
}

double StageExecutor::train_encoder_from_collected(int steps) {
  // A registry shared by several wrappers is trained exactly once.
  std::vector<const encoder::EncoderRegistry*> seen;
  double loss = 0;
  for (auto* w : wrappers_) {
    const auto* r = &w->registry();
    if (std::find(seen.begin(), seen.end(), r) != seen.end()) continue;
    seen.push_back(r);
    loss += w->train_encoder_from_collected(steps);
  }
  return loss / double(seen.size());
}

double StageExecutor::device_transfer_busy() const {
  double busy = 0;
  for (const auto* w : wrappers_) busy += w->device_transfer_busy();
  return busy;
}

StageReport StageExecutor::run_stage(OpKind kind,
                                     std::span<StageChunk> chunks,
                                     sim::VTime ready) {
  StageReport report;
  report.records.resize(chunks.size());
  report.done = ready;
  const std::size_t G = wrappers_.size();
  // Encoder-training sample collection runs above the device distribution,
  // serial in global chunk order: wrappers sharing one EncoderRegistry
  // deposit exactly the training set a single-GPU run collects, so the
  // trained encoder — and every downstream hit pattern — matches.
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    MemoizedLamino& ml = *wrappers_[c % G];
    if (ml.cfg_.enable && !ml.bypass_) continue;  // collection is a bypass-
                                                  // path (warmup) activity
    if (!ml.registry_->wants_samples()) continue;
    const auto [rows, cols] = ml.chunk_plane_dims(kind);
    ml.registry_->add_sample(
        encoder::average_slab(chunks[c].in, chunks[c].spec.count, rows, cols),
        rows, cols);
  }
  if (G == 1) {
    run_wrapper_stage(*wrappers_[0], kind, chunks, ready, report.records,
                      &report.done);
    return report;
  }
  // Round-robin distribution: GPU g takes chunks g, g+G, g+2G, … Wrappers
  // execute their sub-batches in device order so the shared DB / link
  // timelines are scheduled deterministically.
  std::vector<StageChunk> mine;
  std::vector<ChunkRecord> recs;
  for (std::size_t g = 0; g < G; ++g) {
    mine.clear();
    std::vector<std::size_t> idx;
    for (std::size_t c = g; c < chunks.size(); c += G) {
      mine.push_back(chunks[c]);
      idx.push_back(c);
    }
    if (mine.empty()) continue;
    recs.assign(mine.size(), ChunkRecord{});
    sim::VTime done = ready;
    run_wrapper_stage(*wrappers_[g], kind, mine, ready, recs, &done);
    report.done = std::max(report.done, done);
    for (std::size_t i = 0; i < idx.size(); ++i)
      report.records[idx[i]] = recs[i];
  }
  return report;
}

void StageExecutor::run_wrapper_stage(MemoizedLamino& ml, OpKind kind,
                                      std::span<StageChunk> chunks,
                                      sim::VTime ready,
                                      std::span<ChunkRecord> records,
                                      sim::VTime* done) {
  if (!ml.cfg_.enable || ml.bypass_) {
    run_bypass(ml, kind, chunks, ready, records, done);
  } else {
    run_memoized(ml, kind, chunks, ready, records, done);
  }
  if (ml.sink_ != nullptr)
    ml.sink_->insert(ml.sink_->end(), records.begin(), records.end());
}

void StageExecutor::run_bypass(MemoizedLamino& ml, OpKind kind,
                               std::span<StageChunk> chunks, sim::VTime ready,
                               std::span<ChunkRecord> records,
                               sim::VTime* done) {
  // Fast path: memoization disabled or bypassed (warmup) — the Fig 1
  // pipeline (H2D / kernel / D2H with copy-compute overlap). Encoder sample
  // collection already happened in run_stage's global-chunk-order pass.
  MLR_TRACE_SPAN(op_kind_name(kind), "engine", u64(chunks.size()));
  auto& sm = StageMetrics::get();
  sm.stages.add();
  sm.chunks.add(chunks.size());
  sm.computed.add(chunks.size());
  // Parallel phase: the real FFT numerics of every chunk at once.
  std::vector<double> flops(chunks.size(), 0.0);
  {
    MLR_TRACE_SPAN("stage.bypass_compute", "engine");
    parallel_for(pool(), 0, i64(chunks.size()), [&](i64 i) {
      ml.compute_chunk(kind, chunks[size_t(i)], &flops[size_t(i)]);
    });
  }
  // Serial phase: deterministic virtual-clock scheduling in chunk order.
  sim::VTime stage_done = ready;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    auto& c = chunks[i];
    auto& rec = records[i];
    rec.kind = kind;
    rec.outcome = MemoOutcome::Computed;
    rec.location = c.spec.index;
    double f = flops[i] * ml.cfg_.kernel_cost_factor * ml.cfg_.work_scale;
    if (kind == OpKind::Fu1D || kind == OpKind::Fu1DAdj)
      f *= ml.cfg_.fu1d_extra_derate;
    const double in_bytes = double(c.in.size() + c.ref.size()) *
                            sizeof(cfloat) * ml.cfg_.work_scale;
    const double out_bytes =
        double(c.out.size()) * sizeof(cfloat) * ml.cfg_.work_scale;
    const sim::VTime t0 = ml.device_->compute().busy_until();
    const sim::VTime in_ready = ml.device_->h2d(ready, in_bytes);
    const sim::VTime k_done = ml.device_->run_kernel(in_ready, f);
    const sim::VTime c_done = ml.device_->d2h(k_done, out_bytes);
    rec.compute_s = c_done - std::max(ready, t0);
    ++ml.counters_.computed;
    stage_done = std::max(stage_done, c_done);
  }
  *done = stage_done;
}

void StageExecutor::run_memoized(MemoizedLamino& ml, OpKind kind,
                                 std::span<StageChunk> chunks,
                                 sim::VTime ready,
                                 std::span<ChunkRecord> records,
                                 sim::VTime* done) {
  MLR_TRACE_SPAN(op_kind_name(kind), "engine", u64(chunks.size()));
  auto& sm = StageMetrics::get();
  sm.stages.add();
  sm.chunks.add(chunks.size());
  // Cross-stage handoff barrier: previous stages' tails that this stage's
  // probes/queries must observe have to land first. An adjacent stage of a
  // different kind (the ADMM sequence always alternates kinds) sails
  // through — its encode/probe/score phases are what the previous stage's
  // tail hides under.
  {
    MLR_TRACE_SPAN("stage.sync_tails", "engine");
    const WallTimer wt;
    sync_tails(ml, kind);
    sm.sync_wait_s.observe(wt.seconds());
  }
  const std::size_t n = chunks.size();
  const double encode_s =
      ml.registry_->encoder().encode_flops() / ml.cfg_.host_flops;
  std::vector<std::vector<float>> keys(n);
  std::vector<double> norms(n, 1.0);
  std::vector<std::vector<cfloat>> probes(n);
  // 0=pending, 1=cache hit, 2=db hit, 3=miss
  std::vector<int> state(n, 0);

  // Phase 1+2 (parallel): encode every key, compute the pooled probes, and
  // probe the thread-safe local cache; a hit copies its stored value
  // straight into the chunk output. No inserts happen concurrently, so the
  // lookup results are independent of evaluation order.
  {
    MLR_TRACE_SPAN("stage.encode_probe", "engine", u64(n));
    const WallTimer wt;
    parallel_for(pool(), 0, i64(n), [&](i64 ii) {
      const auto i = size_t(ii);
      auto& c = chunks[i];
      auto& rec = records[i];
      rec.kind = kind;
      rec.location = c.spec.index;
      keys[i] = ml.encode_chunk(kind, c.spec, c.in);
      norms[i] = l2_norm<cfloat>(c.in);
      probes[i] = ml.pooled_probe(kind, c.spec, c.in);
      if (ml.cache_ != nullptr) {
        auto hit = ml.cache_->lookup(kind, c.spec.index, keys[i], ml.cfg_.tau,
                                     norms[i], probes[i]);
        if (hit.has_value()) {
          MLR_CHECK(hit->size() == c.out.size());
          std::copy(hit->begin(), hit->end(), c.out.begin());
          state[i] = 1;
        }
      }
    });
    sm.encode_probe_s.observe(wt.seconds());
  }

  // Serial accounting pass: the host encodes keys and copies reused values
  // one after another (the paper's single host thread of control), so the
  // virtual clock advances in chunk order regardless of pool width.
  sim::VTime stage_done = ready;
  sim::VTime host_t = ready;
  std::vector<QueryRequest> reqs;
  std::vector<std::size_t> req_chunk;  // request → chunk index
  for (std::size_t i = 0; i < n; ++i) {
    auto& c = chunks[i];
    auto& rec = records[i];
    rec.encode_s = encode_s;
    host_t += encode_s;
    if (state[i] == 1) {
      rec.outcome = MemoOutcome::CacheHit;
      rec.copy_s = double(c.out.size()) * sizeof(cfloat) *
                   ml.cfg_.work_scale / ml.cfg_.host_mem_bw;
      host_t += rec.copy_s;
      ++ml.counters_.cache_hit;
      sm.cache_hit.add();
      continue;
    }
    reqs.push_back(
        {kind, keys[i], norms[i], probes[i], ml.cfg_.tau, c.out.size()});
    req_chunk.push_back(i);
  }
  stage_done = std::max(stage_done, host_t);

  // Phase 3+4: resolve everything the cache could not serve against the
  // memoization DB. With overlap_slices ≥ 2 the request batch drives the
  // DB's async service in slices: slice k+1's ANN scoring runs on the pool
  // (submit_slice) while slice k's hits copy their values and slice k's
  // misses compute their real FFTs — the DB round-trip hides behind local
  // work. Slicing never touches the virtual clock: finalize() replays the
  // exact schedule of the barriered single-batch path.
  std::vector<QueryReply> replies;
  std::vector<double> flops(n, 0.0);
  const i64 cfg_slices =
      ml.db_ != nullptr ? ml.db_->config().overlap_slices : 0;
  const std::size_t nslices = std::min<std::size_t>(
      std::size_t(std::max<i64>(cfg_slices, 0)), reqs.size());
  const bool sliced = nslices >= 2;
  if (sliced) {
    ml.db_->begin_batch();
    const std::size_t per = (reqs.size() + nslices - 1) / nslices;
    // Rounding per up can leave trailing slices empty (e.g. 5 requests in 4
    // slices → 2+2+1): the real slice count is how many `per`-sized cuts the
    // batch actually fills.
    const std::size_t cuts = (reqs.size() + per - 1) / per;
    // Each slice takes ownership of its requests (the post-round accounting
    // below only reads replies/req_chunk, never reqs).
    auto slice_reqs = [&](std::size_t s) {
      const std::size_t off = s * per;
      const std::size_t len = std::min(per, reqs.size() - off);
      return std::vector<QueryRequest>(
          std::make_move_iterator(reqs.begin() + i64(off)),
          std::make_move_iterator(reqs.begin() + i64(off + len)));
    };
    std::vector<MemoDb::SliceTicket> tickets(cuts);
    try {
      tickets[0] = ml.db_->submit_slice(slice_reqs(0), &pool());
      for (std::size_t s = 0; s < cuts; ++s) {
        if (s + 1 < cuts)
          tickets[s + 1] = ml.db_->submit_slice(slice_reqs(s + 1), &pool());
        const WallTimer score_wt;
        const auto scored = [&] {
          MLR_TRACE_SPAN("stage.score", "engine", u64(s));
          return ml.db_->collect(tickets[s]);
        }();
        sm.score_s.observe(score_wt.seconds());
        const std::size_t off = s * per;
        // Misses first: a remote-seeded DB issued its slice's GET_BATCH
        // fetches at the end of scoring, so running every miss FFT before
        // any hit materializes leaves the round-trips fully covered by
        // local compute (in-process seeds: materialize is a no-op and the
        // order is irrelevant — outputs never depend on it either way).
        std::vector<std::size_t> order;
        order.reserve(scored.size());
        for (std::size_t q = 0; q < scored.size(); ++q)
          if (!scored[q].hit) order.push_back(q);
        for (std::size_t q = 0; q < scored.size(); ++q)
          if (scored[q].hit) order.push_back(q);
        // Covers the slice's miss FFTs (ordered first) plus its hit
        // materialization — the local work the GET_BATCH round trip hides
        // under, so this is the span net spans should overlap in a trace.
        std::size_t slice_misses = 0;
        for (std::size_t q = 0; q < scored.size(); ++q)
          if (!scored[q].hit) ++slice_misses;
        MLR_TRACE_SPAN("stage.miss_fft", "engine", u64(slice_misses));
        const WallTimer miss_wt;
        parallel_for(pool(), 0, i64(order.size()), [&](i64 oo) {
          const std::size_t q = order[std::size_t(oo)];
          const std::size_t r = off + q;
          auto& c = chunks[req_chunk[r]];
          if (scored[q].hit) {
            ml.db_->materialize(scored[q]);
            MLR_CHECK(scored[q].value.size() == c.out.size());
            std::copy(scored[q].value.begin(), scored[q].value.end(),
                      c.out.begin());
          } else {
            ml.compute_chunk(kind, c, &flops[req_chunk[r]]);
          }
        });
        sm.miss_fft_s.observe(miss_wt.seconds());
      }
      replies = ml.db_->finalize(host_t);
    } catch (...) {
      ml.db_->abort_round();  // drain workers, close the round, keep the DB usable
      throw;
    }
  } else if (!reqs.empty()) {
    // Barriered path (overlap_slices ≤ 1): ONE coalesced batch query for
    // everything at once — scored serially, the legacy behaviour — with all
    // miss FFTs afterwards.
    {
      const WallTimer score_wt;
      MLR_TRACE_SPAN("stage.score", "engine", u64(reqs.size()));
      replies = ml.db_->query_batch(reqs, host_t);
      sm.score_s.observe(score_wt.seconds());
    }
    // Copy retrieved values into their chunk outputs in parallel
    // (materialize first: a remote-seeded hit carries only its value
    // length until its GET_BATCH reply is harvested).
    MLR_TRACE_SPAN("stage.hit_copy", "engine");
    parallel_for(pool(), 0, i64(replies.size()), [&](i64 rr) {
      const auto r = size_t(rr);
      if (!replies[r].hit) return;
      auto& c = chunks[req_chunk[r]];
      ml.db_->materialize(replies[r]);
      MLR_CHECK(replies[r].value.size() == c.out.size());
      std::copy(replies[r].value.begin(), replies[r].value.end(),
                c.out.begin());
    });
  }
  // Account timing serially, in chunk order. Cache refills and DB stores
  // happen in barriered order either way — hits in request order, then
  // misses in chunk order. When the tail is deferred (pipeline_depth ≥ 2
  // with a real pool) they are collected into the stage's data tail and
  // drain on the serial tail runner under the next stage's local phases;
  // otherwise they run right here, straight from the chunk spans (the
  // legacy barriered path, no extra value copies).
  const bool defer = pipeline_depth_ > 1 && pool().size() > 1;
  std::vector<TailItem> tail_items;
  for (std::size_t r = 0; r < replies.size(); ++r) {
    const std::size_t i = req_chunk[r];
    auto& c = chunks[i];
    auto& rec = records[i];
    if (replies[r].hit) {
      rec.outcome = MemoOutcome::DbHit;
      rec.db_s = replies[r].value_ready - host_t;
      rec.copy_s = double(c.out.size()) * sizeof(cfloat) *
                   ml.cfg_.work_scale / ml.cfg_.host_mem_bw;
      if (ml.cache_ != nullptr) {
        if (defer) {
          tail_items.push_back({/*store=*/false, c.spec.index,
                                std::move(keys[i]),
                                std::move(replies[r].value), norms[i],
                                std::move(probes[i])});
        } else {
          ml.cache_->insert(kind, c.spec.index, keys[i], c.out, norms[i],
                            probes[i]);
        }
      }
      ++ml.counters_.db_hit;
      sm.db_hit.add();
      if (ml.db_->is_shared_entry(replies[r].match_id)) {
        ++ml.counters_.db_hit_shared;
        sm.db_hit_shared.add();
      }
      state[i] = 2;
      stage_done = std::max(stage_done, replies[r].value_ready + rec.copy_s);
    } else {
      // Failed lookup: its latency stays on the critical path (case 1).
      rec.db_s = replies[r].value_ready - host_t;
      state[i] = 3;
    }
  }

  // Every miss computes its real FFT in parallel (already done slice by
  // slice on the overlapped path)…
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < n; ++i)
    if (state[i] == 3) misses.push_back(i);
  if (!sliced && !misses.empty()) {
    MLR_TRACE_SPAN("stage.miss_fft", "engine", u64(misses.size()));
    const WallTimer wt;
    parallel_for(pool(), 0, i64(misses.size()), [&](i64 mm) {
      const std::size_t i = misses[size_t(mm)];
      ml.compute_chunk(kind, chunks[i], &flops[i]);
    });
    sm.miss_fft_s.observe(wt.seconds());
  }
  // …and is scheduled on the simulated GPU in chunk order. The insertion's
  // virtual charge (link + node + DRAM accounting) stays right here — the
  // clock replays the barriered schedule — while the data store joins the
  // stage tail (async insertion never gates the caller; deferring the
  // stores past the round also guarantees its scoring never saw them,
  // matching the barriered path's semantics).
  for (const std::size_t i : misses) {
    auto& c = chunks[i];
    auto& rec = records[i];
    double f = flops[i] * ml.cfg_.kernel_cost_factor * ml.cfg_.work_scale;
    if (kind == OpKind::Fu1D || kind == OpKind::Fu1DAdj)
      f *= ml.cfg_.fu1d_extra_derate;
    const double in_bytes = double(c.in.size() + c.ref.size()) *
                            sizeof(cfloat) * ml.cfg_.work_scale;
    const double out_bytes =
        double(c.out.size()) * sizeof(cfloat) * ml.cfg_.work_scale;
    const sim::VTime t0 = std::max(host_t, ml.device_->compute().busy_until());
    const sim::VTime in_ready = ml.device_->h2d(host_t, in_bytes);
    const sim::VTime k_done = ml.device_->run_kernel(in_ready, f);
    const sim::VTime c_done = ml.device_->d2h(k_done, out_bytes);
    rec.outcome = MemoOutcome::Miss;
    rec.compute_s = c_done - t0;
    ml.db_->charge_insert(keys[i].size(), c.out.size(), c_done);
    if (defer) {
      tail_items.push_back({/*store=*/true, c.spec.index, std::move(keys[i]),
                            std::vector<cfloat>(c.out.begin(), c.out.end()),
                            norms[i], std::move(probes[i])});
    } else {
      // Cache refill first (it copies the probe), then the store moves it.
      if (ml.cache_ != nullptr)
        ml.cache_->insert(kind, c.spec.index, keys[i], c.out, norms[i],
                          probes[i]);
      (void)ml.db_->store_insert(kind, keys[i], c.out, norms[i],
                                 std::move(probes[i]));
    }
    ++ml.counters_.miss;
    sm.miss.add();
    sm.computed.add();
    stage_done = std::max(stage_done, c_done);
  }
  *done = stage_done;
  if (defer) enqueue_tail(ml, kind, std::move(tail_items));
}

}  // namespace mlr::memo
