// MemoizedLamino — the memoized FFT operator layer of mLR (paper §4).
//
// Wraps lamino::Operators so every chunk-level FFT call follows Fig 3's
// pipeline:
//   encode key (INT8 CNN on the host CPU)
//     → private-cache lookup (1 similarity comparison)
//       → coalesced query to the distributed memoization DB
//         → hit: reuse the stored FFT result (case 2/3 of Fig 10)
//         → miss: H2D, real FFT kernel on the simulated GPU, D2H, async
//                 insert of (key, result) (case 1)
// Real numerics run underneath; hits genuinely substitute results from prior
// iterations, so approximation error, accuracy (Table 1) and convergence
// (Fig 17) are measured, not modelled.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "encoder/encoder.hpp"
#include "lamino/operators.hpp"
#include "memo/memo_cache.hpp"
#include "memo/memo_db.hpp"
#include "sim/device.hpp"

namespace mlr::memo {

enum class CacheKind { None, Private, Global };

struct MemoConfig {
  bool enable = true;          ///< memoization on/off (off = plain pipeline)
  double tau = 0.92;           ///< similarity threshold (paper default)
  CacheKind cache = CacheKind::Private;
  /// GlobalCache shard count — the pool is split by (kind, location) hash so
  /// concurrent lookups stop scanning (and serializing on) one global FIFO.
  /// ≤1 keeps the classic single shared pool; PrivateCache is per-location
  /// by construction and ignores this.
  i64 cache_shards = 1;
  bool coalesce = true;        ///< 4 KB key coalescing
  i64 key_dim = 60;
  i64 encoder_hw = 32;
  bool quantized_encoder = true;
  double host_flops = 2.0e11;  ///< AVX-512 INT8 CNN throughput on the host
  double host_mem_bw = 20.0e9; ///< host memcpy bandwidth (value reuse path)
  /// Virtual-clock scaling: charge compute/transfer as if the volume were
  /// work_scale× larger (maps a laptop-sized run onto the paper's 1K³–2K³
  /// timings; ratios within a figure are unaffected).
  double work_scale = 1.0;
  /// Sustained-efficiency derating of the USFFT kernels (scattered gather/
  /// spread reaches only ~1 % of A100 peak — calibrated so the Fig 10
  /// compute:retrieval ratios match).
  double kernel_cost_factor = 100.0;
  /// Extra derating of the batched tiny 1-D transforms of F_u1D/F*_u1D —
  /// thousands of short strided FFTs reach far lower sustained throughput
  /// than the dense 2-D gridding kernels (calibrated to Fig 10's
  /// compute:retrieval ratio for F_u1D).
  double fu1d_extra_derate = 4.0;
  /// Oracle similarity (see MemoDbConfig::oracle_similarity). Pooled input
  /// planes accompany keys into the cache/DB for acceptance decisions.
  bool oracle_similarity = true;
  i64 probe_hw = 16;  ///< pooled probe resolution
};

/// How one chunk was satisfied (the four bars of Fig 10).
enum class MemoOutcome {
  Computed,  ///< memoization disabled — plain compute
  Miss,      ///< case 1: no match, computed + inserted
  DbHit,     ///< case 2: served by the remote memoization DB
  CacheHit,  ///< case 3: served by the local memoization cache
};

/// One unit of stage work. `ref` is only used by the fused F_u2D stage.
struct StageChunk {
  lamino::ChunkSpec spec;
  std::span<const cfloat> in;
  std::span<cfloat> out;
  std::span<const cfloat> ref{};
};

/// Per-chunk timing/outcome record (drives the Fig 10 breakdown).
struct ChunkRecord {
  OpKind kind{};
  MemoOutcome outcome{};
  i64 location = 0;
  double encode_s = 0;
  double db_s = 0;       ///< communication + search + value serve
  double compute_s = 0;  ///< transfers + kernel (miss/computed only)
  double copy_s = 0;     ///< host copy of a reused value (hits only)
  [[nodiscard]] double total_s() const {
    return encode_s + db_s + compute_s + copy_s;
  }
};

struct StageReport {
  sim::VTime done = 0;  ///< virtual completion time of the stage
  std::vector<ChunkRecord> records;
};

struct MemoCounters {
  u64 computed = 0, miss = 0, db_hit = 0, cache_hit = 0;
  /// Of db_hit: hits served by entries seeded from a shared snapshot (see
  /// MemoDb::import_entries) — i.e. another job's work. The cross-job reuse
  /// the serving layer (serve::ReconService) charges per job.
  u64 db_hit_shared = 0;
  /// Promotion outcomes for the entries this job exported to the shared
  /// tier, filled in by serve::ReconService after drain(): insertions the
  /// tier rejected as near-duplicates (within τ_dedup of an existing tier
  /// entry) vs. drops at the max_shared_entries cap. Counted separately so
  /// tier compaction is distinguishable from tier overflow.
  u64 shared_dedup_drops = 0;
  u64 shared_cap_drops = 0;
  [[nodiscard]] u64 total() const {
    return computed + miss + db_hit + cache_hit;
  }
  /// Lookups that reached memoization (everything but plain compute).
  [[nodiscard]] u64 lookups() const { return miss + db_hit + cache_hit; }
};

class StageExecutor;

class MemoizedLamino {
 public:
  /// `db` may be null when cfg.enable is false. `registry` is the shared
  /// key-encoder owner (ExecutionContext/Cluster pass one registry to every
  /// device wrapper so multi-GPU runs train a single encoder); when null the
  /// wrapper creates a private registry, so standalone wrappers keep
  /// working unchanged.
  MemoizedLamino(const lamino::Operators& ops, MemoConfig cfg,
                 sim::Device* device, MemoDb* db,
                 std::shared_ptr<encoder::EncoderRegistry> registry = nullptr);
  ~MemoizedLamino();

  /// Execute one operator stage (a set of independent chunks) starting at
  /// virtual time `ready`. Outputs are written into each chunk's `out`.
  /// Delegates to the built-in StageExecutor (batched phases; parallel real
  /// work, deterministic virtual clock).
  StageReport run_stage(OpKind kind, std::span<StageChunk> chunks,
                        sim::VTime ready);

  /// The wrapper's own single-device engine. Callers wanting a dedicated
  /// worker pool or multi-device distribution build their own StageExecutor
  /// over one or more wrappers instead.
  [[nodiscard]] StageExecutor& executor() { return *exec_; }

  /// Train the key encoder on sample chunks (contrastive pairs) and freeze
  /// it to INT8 — done once before reconstruction starts.
  double train_encoder(const std::vector<std::vector<cfloat>>& samples,
                       i64 rows, i64 cols, int steps);

  /// Calibration flow: while bypass is on, stages run the plain compute path
  /// and (optionally) record their chunk planes as encoder training samples
  /// — the warmup iteration mLR uses to train the CNN on real data. Samples
  /// land in the shared registry in global chunk order (see StageExecutor).
  void set_bypass(bool bypass) { bypass_ = bypass; }
  [[nodiscard]] bool bypass() const { return bypass_; }
  void set_collect_samples(bool collect, std::size_t cap_per_kind = 128) {
    registry_->set_collect(collect, cap_per_kind * kNumOpKinds);
  }
  /// Contrastive-train on everything collected so far and freeze to INT8.
  /// Returns tail loss; no-op (returns 0) when fewer than 2 samples exist.
  double train_encoder_from_collected(int steps);
  [[nodiscard]] std::size_t collected_samples() const;

  [[nodiscard]] const lamino::Operators& ops() const { return ops_; }
  [[nodiscard]] const MemoConfig& config() const { return cfg_; }
  [[nodiscard]] const MemoCounters& counters() const { return counters_; }
  [[nodiscard]] const MemoCache* cache() const { return cache_.get(); }
  /// Checkpoint/resume surface (serve-layer stage-boundary preemption): a
  /// resumed session restores the wrapper's cache contents and outcome
  /// counters so the continuation is indistinguishable from never pausing.
  [[nodiscard]] CacheImage cache_image() const {
    return cache_ ? cache_->image() : CacheImage{};
  }
  void restore_cache(const CacheImage& img) {
    if (cache_) cache_->restore(img);
  }
  void set_counters(const MemoCounters& c) { counters_ = c; }
  [[nodiscard]] const encoder::CnnEncoder& key_encoder() const {
    return registry_->encoder();
  }
  /// The shared (or private) encoder owner backing this wrapper.
  [[nodiscard]] encoder::EncoderRegistry& registry() { return *registry_; }
  [[nodiscard]] MemoDb* db() const { return db_; }

  /// Encode a chunk into a key (exposed for characterization benches).
  std::vector<float> encode_chunk(OpKind kind, const lamino::ChunkSpec& spec,
                                  std::span<const cfloat> in) const;
  /// Pooled input plane used by oracle similarity (empty in encoder mode).
  std::vector<cfloat> pooled_probe(OpKind kind, const lamino::ChunkSpec& spec,
                                   std::span<const cfloat> in) const;

  /// Optional sink receiving a copy of every ChunkRecord run_stage produces
  /// (characterization benches: Fig 10 breakdown, Fig 12 hit rates).
  void set_record_sink(std::vector<ChunkRecord>* sink) { sink_ = sink; }

  /// Raw device scheduling passthroughs for stages the wrapper does not
  /// memoize (the detector F_2D of Algorithm 1).
  sim::VTime device_h2d(sim::VTime t, double bytes) {
    return device_->h2d(t, bytes);
  }
  sim::VTime device_d2h(sim::VTime t, double bytes) {
    return device_->d2h(t, bytes);
  }
  sim::VTime device_kernel(sim::VTime t, double flops) {
    return device_->run_kernel(t, flops);
  }
  /// Cumulative CPU↔GPU copy-engine busy seconds (transfer-share metric).
  [[nodiscard]] double device_transfer_busy() const {
    return device_->h2d_engine().busy_time() + device_->d2h_engine().busy_time();
  }

 private:
  friend class StageExecutor;  // the engine drives the members below

  double compute_chunk(OpKind kind, const StageChunk& c,
                       double* flops_out) const;
  std::pair<i64, i64> chunk_plane_dims(OpKind kind) const;

  const lamino::Operators& ops_;
  MemoConfig cfg_;
  sim::Device* device_;
  MemoDb* db_;
  // Shared across the run's wrappers (or private to this one); planes of
  // different kinds share the encoder, which pools to a fixed resolution.
  std::shared_ptr<encoder::EncoderRegistry> registry_;
  std::unique_ptr<MemoCache> cache_;
  MemoCounters counters_;
  std::vector<ChunkRecord>* sink_ = nullptr;
  bool bypass_ = false;
  std::unique_ptr<StageExecutor> exec_;
};

}  // namespace mlr::memo
