#include "memo/memo_cache.hpp"

#include <algorithm>

#include "common/array.hpp"
#include "common/error.hpp"

namespace mlr::memo {

PrivateCache::PrivateCache(i64 num_locations)
    : num_locations_(num_locations),
      slots_(size_t(kNumOpKinds * num_locations)) {
  MLR_CHECK(num_locations >= 1);
}

i64 PrivateCache::slot(OpKind kind, i64 location) const {
  MLR_CHECK(location >= 0 && location < num_locations_);
  return i64(int(kind)) * num_locations_ + location;
}

namespace {
// Shared acceptance rule (see MemoDb::query_batch): oracle pooled-plane
// cosine with a norm gate when probes exist, encoder proxy otherwise.
bool accept_entry(const CacheEntry& e, std::span<const float> key, double tau,
                  double norm, std::span<const cfloat> probe) {
  if (!probe.empty() && e.probe.size() == probe.size()) {
    const double lo = std::min(norm, e.norm), hi = std::max(norm, e.norm);
    if (hi > 0 && lo / hi <= tau) return false;
    return cosine_similarity<cfloat>(probe, e.probe) > tau;
  }
  return std::min(key_cosine(key, e.key),
                  estimated_chunk_cosine(key, e.key, norm, e.norm)) > tau;
}
}  // namespace

std::optional<std::vector<cfloat>> PrivateCache::lookup(
    OpKind kind, i64 location, std::span<const float> key, double tau,
    double norm, std::span<const cfloat> probe) {
  ++stats_.lookups;
  const auto& s = slots_[size_t(slot(kind, location))];
  if (!s.has_value()) return std::nullopt;
  ++stats_.comparisons;  // exactly one comparison: the private slot
  if (accept_entry(*s, key, tau, norm, probe)) {
    ++stats_.hits;
    return s->value;
  }
  return std::nullopt;
}

void PrivateCache::insert(OpKind kind, i64 location,
                          std::span<const float> key,
                          std::span<const cfloat> value, double norm,
                          std::span<const cfloat> probe) {
  // FIFO with capacity one == unconditional replacement.
  slots_[size_t(slot(kind, location))] =
      CacheEntry{{key.begin(), key.end()},
                 {value.begin(), value.end()},
                 norm,
                 {probe.begin(), probe.end()}};
}

std::size_t PrivateCache::bytes() const {
  std::size_t b = 0;
  for (const auto& s : slots_) {
    if (s)
      b += s->key.size() * sizeof(float) + s->value.size() * sizeof(cfloat);
  }
  return b;
}

GlobalCache::GlobalCache(i64 capacity) : capacity_(capacity) {
  MLR_CHECK(capacity >= 1);
}

std::optional<std::vector<cfloat>> GlobalCache::lookup(
    OpKind kind, i64 /*location*/, std::span<const float> key, double tau,
    double norm, std::span<const cfloat> probe) {
  ++stats_.lookups;
  // Cross-location sharing: any resident entry of the same operator kind may
  // serve the request, so every one must be compared.
  const Tagged* best = nullptr;
  for (const auto& t : pool_) {
    if (t.kind != kind) continue;
    ++stats_.comparisons;
    if (accept_entry(t.entry, key, tau, norm, probe)) best = &t;
  }
  if (best != nullptr) {
    ++stats_.hits;
    return best->entry.value;
  }
  return std::nullopt;
}

void GlobalCache::insert(OpKind kind, i64 /*location*/,
                         std::span<const float> key,
                         std::span<const cfloat> value, double norm,
                         std::span<const cfloat> probe) {
  if (i64(pool_.size()) >= capacity_) pool_.erase(pool_.begin());  // FIFO
  pool_.push_back({kind, CacheEntry{{key.begin(), key.end()},
                                    {value.begin(), value.end()},
                                    norm,
                                    {probe.begin(), probe.end()}}});
}

std::size_t GlobalCache::bytes() const {
  std::size_t b = 0;
  for (const auto& t : pool_)
    b += t.entry.key.size() * sizeof(float) +
         t.entry.value.size() * sizeof(cfloat);
  return b;
}

}  // namespace mlr::memo
