#include "memo/memo_cache.hpp"

#include <algorithm>

#include "common/array.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace mlr::memo {

PrivateCache::PrivateCache(i64 num_locations)
    : num_locations_(num_locations),
      slots_(size_t(kNumOpKinds * num_locations)),
      locks_(std::make_unique<std::mutex[]>(kLockStripes)) {
  MLR_CHECK(num_locations >= 1);
}

i64 PrivateCache::slot(OpKind kind, i64 location) const {
  MLR_CHECK(location >= 0 && location < num_locations_);
  return i64(int(kind)) * num_locations_ + location;
}

namespace {
// FNV-1a (common/hash.hpp) over an entry's bits; order sensitivity comes
// from folding the running digest into each entry's hash.
u64 hash_entry(u64 h, const CacheEntry& e) {
  h = fnv1a(h, e.key.data(), e.key.size() * sizeof(float));
  h = fnv1a(h, e.value.data(), e.value.size() * sizeof(cfloat));
  h = fnv1a(h, &e.norm, sizeof(e.norm));
  h = fnv1a(h, e.probe.data(), e.probe.size() * sizeof(cfloat));
  return h;
}

// Shared acceptance rule (see MemoDb::query_batch): oracle pooled-plane
// cosine with a norm gate when probes exist, encoder proxy otherwise.
bool accept_entry(const CacheEntry& e, std::span<const float> key, double tau,
                  double norm, std::span<const cfloat> probe) {
  if (!probe.empty() && e.probe.size() == probe.size()) {
    const double lo = std::min(norm, e.norm), hi = std::max(norm, e.norm);
    if (hi > 0 && lo / hi <= tau) return false;
    return cosine_similarity<cfloat>(probe, e.probe) > tau;
  }
  return std::min(key_cosine(key, e.key),
                  estimated_chunk_cosine(key, e.key, norm, e.norm)) > tau;
}
}  // namespace

std::optional<std::vector<cfloat>> PrivateCache::lookup(
    OpKind kind, i64 location, std::span<const float> key, double tau,
    double norm, std::span<const cfloat> probe) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const i64 s = slot(kind, location);
  std::lock_guard lk(stripe(s));
  const auto& e = slots_[size_t(s)];
  if (!e.has_value()) return std::nullopt;
  comparisons_.fetch_add(1, std::memory_order_relaxed);  // the private slot
  if (accept_entry(*e, key, tau, norm, probe)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return e->value;
  }
  return std::nullopt;
}

void PrivateCache::insert(OpKind kind, i64 location,
                          std::span<const float> key,
                          std::span<const cfloat> value, double norm,
                          std::span<const cfloat> probe) {
  // FIFO with capacity one == unconditional replacement. Build the entry
  // outside the lock so the stripe is held only for the swap.
  CacheEntry entry{{key.begin(), key.end()},
                   {value.begin(), value.end()},
                   norm,
                   {probe.begin(), probe.end()}};
  const i64 s = slot(kind, location);
  std::lock_guard lk(stripe(s));
  slots_[size_t(s)] = std::move(entry);
}

std::size_t PrivateCache::bytes() const {
  std::size_t b = 0;
  for (i64 s = 0; s < i64(slots_.size()); ++s) {
    std::lock_guard lk(stripe(s));
    const auto& e = slots_[size_t(s)];
    if (e)
      b += e->key.size() * sizeof(float) + e->value.size() * sizeof(cfloat);
  }
  return b;
}

u64 PrivateCache::fingerprint() const {
  u64 h = kFnvOffsetBasis;
  for (i64 s = 0; s < i64(slots_.size()); ++s) {
    std::lock_guard lk(stripe(s));
    const auto& e = slots_[size_t(s)];
    h = fnv1a(h, &s, sizeof(s));
    if (e) h = hash_entry(h, *e);
  }
  return h;
}

CacheImage PrivateCache::image() const {
  CacheImage img;
  for (i64 s = 0; s < i64(slots_.size()); ++s) {
    std::lock_guard lk(stripe(s));
    const auto& e = slots_[size_t(s)];
    if (e) img.items.push_back({s, OpKind(int(s / num_locations_)), *e});
  }
  img.stats = stats();
  return img;
}

void PrivateCache::restore(const CacheImage& img) {
  for (auto& e : slots_) e.reset();
  for (const auto& it : img.items) {
    MLR_CHECK(it.slot >= 0 && it.slot < i64(slots_.size()));
    std::lock_guard lk(stripe(it.slot));
    slots_[size_t(it.slot)] = it.entry;
  }
  restore_stats(img.stats);
}

GlobalCache::GlobalCache(i64 capacity, i64 shards)
    : shard_capacity_(0), shards_(size_t(std::max<i64>(1, shards))) {
  MLR_CHECK(capacity >= 1);
  const i64 n = i64(shards_.size());
  shard_capacity_ = std::max<i64>(1, (capacity + n - 1) / n);
}

GlobalCache::Shard& GlobalCache::shard_of(OpKind kind, i64 location) {
  const u64 h = u64(int(kind)) * 0x9e3779b97f4a7c15ull + u64(location);
  return shards_[size_t(h % shards_.size())];
}

const GlobalCache::Shard& GlobalCache::shard_of(OpKind kind,
                                                i64 location) const {
  const u64 h = u64(int(kind)) * 0x9e3779b97f4a7c15ull + u64(location);
  return shards_[size_t(h % shards_.size())];
}

std::optional<std::vector<cfloat>> GlobalCache::lookup(
    OpKind kind, i64 location, std::span<const float> key, double tau,
    double norm, std::span<const cfloat> probe) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  // Cross-location sharing: any resident entry of the same operator kind in
  // this shard may serve the request, so every one must be compared.
  auto& sh = shard_of(kind, location);
  std::lock_guard lk(sh.mu);
  const Tagged* best = nullptr;
  u64 compared = 0;
  for (const auto& t : sh.pool) {
    if (t.kind != kind) continue;
    ++compared;
    if (accept_entry(t.entry, key, tau, norm, probe)) best = &t;
  }
  comparisons_.fetch_add(compared, std::memory_order_relaxed);
  if (best != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return best->entry.value;
  }
  return std::nullopt;
}

void GlobalCache::insert(OpKind kind, i64 location,
                         std::span<const float> key,
                         std::span<const cfloat> value, double norm,
                         std::span<const cfloat> probe) {
  Tagged tagged{kind, CacheEntry{{key.begin(), key.end()},
                                 {value.begin(), value.end()},
                                 norm,
                                 {probe.begin(), probe.end()}}};
  auto& sh = shard_of(kind, location);
  std::lock_guard lk(sh.mu);
  if (i64(sh.pool.size()) >= shard_capacity_)
    sh.pool.erase(sh.pool.begin());  // FIFO
  sh.pool.push_back(std::move(tagged));
}

std::size_t GlobalCache::bytes() const {
  std::size_t b = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lk(sh.mu);
    for (const auto& t : sh.pool)
      b += t.entry.key.size() * sizeof(float) +
           t.entry.value.size() * sizeof(cfloat);
  }
  return b;
}

u64 GlobalCache::fingerprint() const {
  u64 h = kFnvOffsetBasis;
  for (const auto& sh : shards_) {
    std::lock_guard lk(sh.mu);
    for (const auto& t : sh.pool) {  // FIFO order within the shard
      const int k = int(t.kind);
      h = fnv1a(h, &k, sizeof(k));
      h = hash_entry(h, t.entry);
    }
  }
  return h;
}

CacheImage GlobalCache::image() const {
  CacheImage img;
  for (i64 i = 0; i < i64(shards_.size()); ++i) {
    const auto& sh = shards_[size_t(i)];
    std::lock_guard lk(sh.mu);
    for (const auto& t : sh.pool)  // preserve FIFO order within the shard
      img.items.push_back({i, t.kind, t.entry});
  }
  img.stats = stats();
  return img;
}

void GlobalCache::restore(const CacheImage& img) {
  for (auto& sh : shards_) {
    std::lock_guard lk(sh.mu);
    sh.pool.clear();
  }
  for (const auto& it : img.items) {
    MLR_CHECK(it.slot >= 0 && it.slot < i64(shards_.size()));
    auto& sh = shards_[size_t(it.slot)];
    std::lock_guard lk(sh.mu);
    sh.pool.push_back({it.kind, it.entry});
  }
  restore_stats(img.stats);
}

}  // namespace mlr::memo
