#include "memo/memoized_ops.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mlr::memo {

MemoizedLamino::MemoizedLamino(const lamino::Operators& ops, MemoConfig cfg,
                               sim::Device* device, MemoDb* db)
    : ops_(ops),
      cfg_(cfg),
      device_(device),
      db_(db),
      enc_({.input_hw = cfg.encoder_hw, .embed_dim = cfg.key_dim}) {
  MLR_CHECK(device != nullptr);
  if (cfg_.enable) {
    MLR_CHECK_MSG(db != nullptr, "memoization enabled but no MemoDb");
    const auto& g = ops_.geometry();
    const i64 locations = std::max(g.n1, g.h);  // covers both chunk axes
    switch (cfg_.cache) {
      case CacheKind::Private:
        cache_ = std::make_unique<PrivateCache>(locations);
        break;
      case CacheKind::Global:
        cache_ = std::make_unique<GlobalCache>(locations);
        break;
      case CacheKind::None:
        break;
    }
  }
}

std::pair<i64, i64> MemoizedLamino::chunk_plane_dims(OpKind kind) const {
  const auto& g = ops_.geometry();
  switch (kind) {
    case OpKind::Fu1D: return {g.n0, g.n2};      // slab of n1 slices
    case OpKind::Fu1DAdj: return {g.h, g.n2};
    case OpKind::Fu2D: return {g.n1, g.n2};      // kv-plane
    case OpKind::Fu2DAdj: return {g.ntheta, g.w};
  }
  return {0, 0};
}

std::vector<cfloat> MemoizedLamino::pooled_probe(
    OpKind kind, const lamino::ChunkSpec& spec,
    std::span<const cfloat> in) const {
  if (!cfg_.oracle_similarity) return {};
  const auto [rows, cols] = chunk_plane_dims(kind);
  const auto plane = encoder::average_slab(in, spec.count, rows, cols);
  const i64 hw = std::min({cfg_.probe_hw, rows, cols});
  std::vector<cfloat> pooled(size_t(hw * hw), cfloat{});
  std::vector<float> cnt(size_t(hw * hw), 0.0f);
  for (i64 y = 0; y < rows; ++y) {
    const i64 ty = std::min(hw - 1, y * hw / rows);
    for (i64 x = 0; x < cols; ++x) {
      const i64 tx = std::min(hw - 1, x * hw / cols);
      pooled[size_t(ty * hw + tx)] += plane[size_t(y * cols + x)];
      cnt[size_t(ty * hw + tx)] += 1.0f;
    }
  }
  for (std::size_t i = 0; i < pooled.size(); ++i)
    pooled[i] /= std::max(1.0f, cnt[i]);
  return pooled;
}

std::vector<float> MemoizedLamino::encode_chunk(
    OpKind kind, const lamino::ChunkSpec& spec,
    std::span<const cfloat> in) const {
  const auto [rows, cols] = chunk_plane_dims(kind);
  MLR_CHECK(i64(in.size()) == spec.count * rows * cols);
  const auto plane = encoder::average_slab(in, spec.count, rows, cols);
  const encoder::ChunkImage img{rows, cols, plane};
  return cfg_.quantized_encoder && enc_.quantized()
             ? enc_.encode_quantized(img)
             : enc_.encode(img);
}

double MemoizedLamino::compute_chunk(OpKind kind, const StageChunk& c,
                                     double* flops_out) const {
  double flops = 0;
  switch (kind) {
    case OpKind::Fu1D:
      ops_.fu1d_chunk(c.spec, c.in, c.out);
      flops = ops_.fu1d_chunk_flops(c.spec.count);
      break;
    case OpKind::Fu1DAdj:
      ops_.fu1d_adj_chunk(c.spec, c.in, c.out);
      flops = ops_.fu1d_chunk_flops(c.spec.count);
      break;
    case OpKind::Fu2D:
      if (!c.ref.empty()) {
        ops_.fu2d_chunk_fused_subtract(c.spec, c.in, c.ref, c.out);
      } else {
        ops_.fu2d_chunk(c.spec, c.in, c.out);
      }
      flops = ops_.fu2d_chunk_flops(c.spec.count);
      break;
    case OpKind::Fu2DAdj:
      ops_.fu2d_adj_chunk(c.spec, c.in, c.out);
      flops = ops_.fu2d_chunk_flops(c.spec.count);
      break;
  }
  if (flops_out != nullptr) *flops_out = flops;
  return flops;
}

StageReport MemoizedLamino::run_stage(OpKind kind,
                                      std::span<StageChunk> chunks,
                                      sim::VTime ready) {
  StageReport report;
  report.records.resize(chunks.size());
  sim::VTime stage_done = ready;

  // Fast path: memoization disabled or bypassed (warmup) — the Fig 1
  // pipeline (H2D / kernel / D2H with copy-compute overlap).
  if (!cfg_.enable || bypass_) {
    if (collect_) {
      const auto [rows, cols] = chunk_plane_dims(kind);
      for (const auto& c : chunks) {
        if (samples_.size() >= sample_cap_ * kNumOpKinds) break;
        samples_.push_back(
            {encoder::average_slab(c.in, c.spec.count, rows, cols), rows,
             cols});
      }
    }
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      auto& c = chunks[i];
      auto& rec = report.records[i];
      rec.kind = kind;
      rec.outcome = MemoOutcome::Computed;
      rec.location = c.spec.index;
      double flops = 0;
      compute_chunk(kind, c, &flops);
      flops *= cfg_.kernel_cost_factor * cfg_.work_scale;
      if (kind == OpKind::Fu1D || kind == OpKind::Fu1DAdj)
        flops *= cfg_.fu1d_extra_derate;
      const double in_bytes =
          double(c.in.size() + c.ref.size()) * sizeof(cfloat) * cfg_.work_scale;
      const double out_bytes =
          double(c.out.size()) * sizeof(cfloat) * cfg_.work_scale;
      const sim::VTime t0 = device_->compute().busy_until();
      const sim::VTime in_ready = device_->h2d(ready, in_bytes);
      const sim::VTime k_done = device_->run_kernel(in_ready, flops);
      const sim::VTime done = device_->d2h(k_done, out_bytes);
      rec.compute_s = done - std::max(ready, t0);
      ++counters_.computed;
      stage_done = std::max(stage_done, done);
    }
    report.done = stage_done;
    if (sink_ != nullptr)
      sink_->insert(sink_->end(), report.records.begin(),
                    report.records.end());
    return report;
  }

  // Memoized path.
  const double encode_s = enc_.encode_flops() / cfg_.host_flops;
  std::vector<std::vector<float>> keys(chunks.size());
  std::vector<double> norms(chunks.size(), 1.0);
  std::vector<std::vector<cfloat>> probes(chunks.size());
  std::vector<int> state(chunks.size(), 0);  // 0=pending, 1=cache, 2=db, 3=miss
  sim::VTime host_t = ready;

  // 1) Encode all keys, then probe the local memoization cache.
  std::vector<QueryRequest> reqs;
  std::vector<std::size_t> req_chunk;  // request → chunk index
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    auto& c = chunks[i];
    auto& rec = report.records[i];
    rec.kind = kind;
    rec.location = c.spec.index;
    keys[i] = encode_chunk(kind, c.spec, c.in);
    rec.encode_s = encode_s;
    host_t += encode_s;
    const double norm = l2_norm<cfloat>(c.in);
    norms[i] = norm;
    probes[i] = pooled_probe(kind, c.spec, c.in);
    if (cache_ != nullptr) {
      auto hit = cache_->lookup(kind, c.spec.index, keys[i], cfg_.tau, norm,
                                probes[i]);
      if (hit.has_value()) {
        MLR_CHECK(hit->size() == c.out.size());
        std::copy(hit->begin(), hit->end(), c.out.begin());
        rec.outcome = MemoOutcome::CacheHit;
        rec.copy_s = double(c.out.size()) * sizeof(cfloat) * cfg_.work_scale /
                     cfg_.host_mem_bw;
        host_t += rec.copy_s;
        ++counters_.cache_hit;
        state[i] = 1;
        continue;
      }
    }
    reqs.push_back(
        {kind, keys[i], norms[i], probes[i], cfg_.tau, c.out.size()});
    req_chunk.push_back(i);
  }
  stage_done = std::max(stage_done, host_t);

  // 2) Coalesced batch query against the memoization database.
  std::vector<QueryReply> replies;
  if (!reqs.empty()) replies = db_->query_batch(reqs, host_t);
  for (std::size_t r = 0; r < replies.size(); ++r) {
    const std::size_t i = req_chunk[r];
    auto& c = chunks[i];
    auto& rec = report.records[i];
    if (replies[r].hit) {
      MLR_CHECK(replies[r].value.size() == c.out.size());
      std::copy(replies[r].value.begin(), replies[r].value.end(),
                c.out.begin());
      rec.outcome = MemoOutcome::DbHit;
      rec.db_s = replies[r].value_ready - host_t;
      rec.copy_s = double(c.out.size()) * sizeof(cfloat) * cfg_.work_scale /
                   cfg_.host_mem_bw;
      if (cache_ != nullptr)
        cache_->insert(kind, c.spec.index, keys[i], c.out, norms[i],
                       probes[i]);
      ++counters_.db_hit;
      state[i] = 2;
      stage_done = std::max(stage_done, replies[r].value_ready + rec.copy_s);
    } else {
      // Failed lookup: its latency stays on the critical path (case 1).
      rec.db_s = replies[r].value_ready - host_t;
      state[i] = 3;
    }
  }

  // 3) Misses: real FFT on the simulated GPU (pipelined), async insertion.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (state[i] != 3) continue;
    auto& c = chunks[i];
    auto& rec = report.records[i];
    double flops = 0;
    compute_chunk(kind, c, &flops);
    flops *= cfg_.kernel_cost_factor * cfg_.work_scale;
    if (kind == OpKind::Fu1D || kind == OpKind::Fu1DAdj)
      flops *= cfg_.fu1d_extra_derate;
    const double in_bytes =
        double(c.in.size() + c.ref.size()) * sizeof(cfloat) * cfg_.work_scale;
    const double out_bytes =
        double(c.out.size()) * sizeof(cfloat) * cfg_.work_scale;
    const sim::VTime t0 = std::max(host_t, device_->compute().busy_until());
    const sim::VTime in_ready = device_->h2d(host_t, in_bytes);
    const sim::VTime k_done = device_->run_kernel(in_ready, flops);
    const sim::VTime done = device_->d2h(k_done, out_bytes);
    rec.outcome = MemoOutcome::Miss;
    rec.compute_s = done - t0;
    db_->insert(kind, keys[i], c.out, done, norms[i], probes[i]);
    if (cache_ != nullptr)
      cache_->insert(kind, c.spec.index, keys[i], c.out, norms[i], probes[i]);
    ++counters_.miss;
    stage_done = std::max(stage_done, done);
  }

  report.done = stage_done;
  if (sink_ != nullptr)
    sink_->insert(sink_->end(), report.records.begin(), report.records.end());
  return report;
}

double MemoizedLamino::train_encoder(
    const std::vector<std::vector<cfloat>>& samples, i64 rows, i64 cols,
    int steps) {
  const double loss = enc_.train(samples, rows, cols, steps);
  if (cfg_.quantized_encoder) enc_.quantize();
  return loss;
}

std::size_t MemoizedLamino::collected_samples() const {
  return samples_.size();
}

double MemoizedLamino::train_encoder_from_collected(int steps) {
  if (samples_.size() < 2) return 0.0;
  Rng rng(97);
  double tail = 0;
  int tail_n = 0;
  for (int s = 0; s < steps; ++s) {
    const auto i = size_t(rng.uniform_int(0, i64(samples_.size()) - 1));
    auto j = size_t(rng.uniform_int(0, i64(samples_.size()) - 2));
    if (j >= i) ++j;
    // Pairs must share a shape for the chunk-L2 ground truth; skip others.
    if (samples_[i].rows != samples_[j].rows ||
        samples_[i].cols != samples_[j].cols)
      continue;
    const double loss = enc_.train_pair(
        {samples_[i].rows, samples_[i].cols, samples_[i].plane},
        {samples_[j].rows, samples_[j].cols, samples_[j].plane});
    if (s >= steps * 3 / 4) {
      tail += loss;
      ++tail_n;
    }
  }
  if (cfg_.quantized_encoder) enc_.quantize();
  return tail_n ? tail / tail_n : 0.0;
}

}  // namespace mlr::memo
