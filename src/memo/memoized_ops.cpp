#include "memo/memoized_ops.hpp"

#include <cmath>

#include "common/error.hpp"
#include "memo/stage_executor.hpp"

namespace mlr::memo {

MemoizedLamino::MemoizedLamino(const lamino::Operators& ops, MemoConfig cfg,
                               sim::Device* device, MemoDb* db,
                               std::shared_ptr<encoder::EncoderRegistry> registry)
    : ops_(ops),
      cfg_(cfg),
      device_(device),
      db_(db),
      registry_(std::move(registry)) {
  MLR_CHECK(device != nullptr);
  if (registry_ == nullptr) {
    registry_ = std::make_shared<encoder::EncoderRegistry>(
        encoder::EncoderConfig{.input_hw = cfg_.encoder_hw,
                               .embed_dim = cfg_.key_dim});
  }
  if (cfg_.enable) {
    MLR_CHECK_MSG(db != nullptr, "memoization enabled but no MemoDb");
    const auto& g = ops_.geometry();
    const i64 locations = std::max(g.n1, g.h);  // covers both chunk axes
    switch (cfg_.cache) {
      case CacheKind::Private:
        cache_ = std::make_unique<PrivateCache>(locations);
        break;
      case CacheKind::Global:
        cache_ = std::make_unique<GlobalCache>(locations,
                                               std::max<i64>(1, cfg_.cache_shards));
        break;
      case CacheKind::None:
        break;
    }
  }
  exec_ = std::make_unique<StageExecutor>(*this);
}

MemoizedLamino::~MemoizedLamino() = default;

std::pair<i64, i64> MemoizedLamino::chunk_plane_dims(OpKind kind) const {
  const auto& g = ops_.geometry();
  switch (kind) {
    case OpKind::Fu1D: return {g.n0, g.n2};      // slab of n1 slices
    case OpKind::Fu1DAdj: return {g.h, g.n2};
    case OpKind::Fu2D: return {g.n1, g.n2};      // kv-plane
    case OpKind::Fu2DAdj: return {g.ntheta, g.w};
  }
  return {0, 0};
}

std::vector<cfloat> MemoizedLamino::pooled_probe(
    OpKind kind, const lamino::ChunkSpec& spec,
    std::span<const cfloat> in) const {
  if (!cfg_.oracle_similarity) return {};
  const auto [rows, cols] = chunk_plane_dims(kind);
  const auto plane = encoder::average_slab(in, spec.count, rows, cols);
  const i64 hw = std::min({cfg_.probe_hw, rows, cols});
  std::vector<cfloat> pooled(size_t(hw * hw), cfloat{});
  std::vector<float> cnt(size_t(hw * hw), 0.0f);
  for (i64 y = 0; y < rows; ++y) {
    const i64 ty = std::min(hw - 1, y * hw / rows);
    for (i64 x = 0; x < cols; ++x) {
      const i64 tx = std::min(hw - 1, x * hw / cols);
      pooled[size_t(ty * hw + tx)] += plane[size_t(y * cols + x)];
      cnt[size_t(ty * hw + tx)] += 1.0f;
    }
  }
  for (std::size_t i = 0; i < pooled.size(); ++i)
    pooled[i] /= std::max(1.0f, cnt[i]);
  return pooled;
}

std::vector<float> MemoizedLamino::encode_chunk(
    OpKind kind, const lamino::ChunkSpec& spec,
    std::span<const cfloat> in) const {
  const auto [rows, cols] = chunk_plane_dims(kind);
  MLR_CHECK(i64(in.size()) == spec.count * rows * cols);
  const auto plane = encoder::average_slab(in, spec.count, rows, cols);
  const encoder::ChunkImage img{rows, cols, plane};
  const auto& enc = registry_->encoder();
  return cfg_.quantized_encoder && enc.quantized() ? enc.encode_quantized(img)
                                                   : enc.encode(img);
}

double MemoizedLamino::compute_chunk(OpKind kind, const StageChunk& c,
                                     double* flops_out) const {
  double flops = 0;
  switch (kind) {
    case OpKind::Fu1D:
      ops_.fu1d_chunk(c.spec, c.in, c.out);
      flops = ops_.fu1d_chunk_flops(c.spec.count);
      break;
    case OpKind::Fu1DAdj:
      ops_.fu1d_adj_chunk(c.spec, c.in, c.out);
      flops = ops_.fu1d_chunk_flops(c.spec.count);
      break;
    case OpKind::Fu2D:
      if (!c.ref.empty()) {
        ops_.fu2d_chunk_fused_subtract(c.spec, c.in, c.ref, c.out);
      } else {
        ops_.fu2d_chunk(c.spec, c.in, c.out);
      }
      flops = ops_.fu2d_chunk_flops(c.spec.count);
      break;
    case OpKind::Fu2DAdj:
      ops_.fu2d_adj_chunk(c.spec, c.in, c.out);
      flops = ops_.fu2d_chunk_flops(c.spec.count);
      break;
  }
  if (flops_out != nullptr) *flops_out = flops;
  return flops;
}

StageReport MemoizedLamino::run_stage(OpKind kind,
                                      std::span<StageChunk> chunks,
                                      sim::VTime ready) {
  return exec_->run_stage(kind, chunks, ready);
}

double MemoizedLamino::train_encoder(
    const std::vector<std::vector<cfloat>>& samples, i64 rows, i64 cols,
    int steps) {
  auto& enc = registry_->encoder();
  const double loss = enc.train(samples, rows, cols, steps);
  if (cfg_.quantized_encoder) enc.quantize();
  return loss;
}

std::size_t MemoizedLamino::collected_samples() const {
  return registry_->collected();
}

double MemoizedLamino::train_encoder_from_collected(int steps) {
  return registry_->train_from_collected(steps, cfg_.quantized_encoder);
}

}  // namespace mlr::memo
