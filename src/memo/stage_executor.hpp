// StageExecutor — the batched, parallel stage-execution engine (the layer
// between the ADMM solver and the memo/device subsystems).
//
// A stage is a set of independent chunks by construction, so the engine
// splits execution into batched phases instead of looping chunk-at-a-time:
//
//   phase 1  encode    all keys + pooled probes, fanned out on the thread
//                      pool (the INT8 CNN forward is pure compute)
//   phase 2  probe     the local memoization cache for every key in
//                      parallel (caches are thread-safe; hits copy their
//                      stored value straight into the chunk output)
//   phase 3+4 resolve  chunks the cache could not serve go to the MemoDb's
//                      async batch-query service in `overlap_slices` slices:
//                      while slice k+1's ANN scoring runs on the pool
//                      (submit_slice), slice k's hits copy their values and
//                      slice k's misses compute their real FFTs — the DB
//                      round-trip hides behind local work. With
//                      overlap_slices ≤ 1 the phases barrier as before
//                      (ONE coalesced query_batch, then all miss FFTs).
//                      Fresh values are inserted into DB + cache only after
//                      the round finalizes.
//
// Cross-stage pipelining (set_pipeline_depth ≥ 2): the engine keeps a
// stage's *data tail* open across consecutive run_stage calls (each DB
// round itself still finalizes inside its stage). The tail — the stage's
// miss insertions into the DB and the cache refills of its hits and
// misses — is deferred onto a serial drainer *lane* on the worker pool, so
// it overlaps the next stage's encode, cache-probe and ANN-scoring phases
// (which, for the adjacent stage of a different OpKind, read disjoint
// key/value spaces). Lanes are sharded per OpKind (set_tail_lanes, lane =
// kind mod lanes): a kind's tails always drain FIFO on its own lane, while
// tails of *different* kinds drain concurrently — the kind-alternating
// Fu1D/Fu1DAdj sequence of the ADMM solver no longer queues one stage's
// tail behind the previous stage's. The handoff epochs:
//
//   stage s   : encode/probe → score+miss-FFT slices → serial schedule
//                                                    → tail(s) enqueued
//   stage s+1 : [tail(s) drains on its lane]  encode/probe → score … ; its
//               own tail lands on a different lane and may still be open
//
// Determinism is preserved by construction: every virtual-clock charge
// (device schedule, MemoDb::charge_insert, MemoDb::finalize) stays on the
// calling thread in barriered order; deferred stores of one kind execute on
// ONE serial lane in enqueue order, and MemoDb ids carry *per-kind*
// insertion sequences, so a kind's ids, its cache FIFO order and the
// canonical export order never depend on how lanes interleave globally; and
// a stage *settles* conflicting tails before touching shared state —
// same-kind tails always (its probes/queries must observe them), every tail
// when the cache is kind-coupled (GlobalCache FIFO eviction crosses kinds,
// so its wrappers' tails are additionally pinned to one lane; see
// MemoCache::kind_isolated). Depth 0/1 runs the tail inline: exactly the
// legacy per-stage barrier. tail_lanes = 1 restores the single global
// drainer ordering.
//
// Wall-clock parallelism never touches the virtual clock: device/link/node
// timelines are scheduled in a deterministic serial pass in chunk order
// (MemoDb::finalize replays the exact schedule of the barriered batch), so
// reported virtual times, ChunkRecords (Fig 10/12), cache FIFO contents and
// DB insertion order are bit-identical for any `threads`, `overlap_slices`
// or `pipeline_depth` setting.
//
// The engine also owns multi-device distribution: constructed over several
// MemoizedLamino wrappers (one per simulated GPU) it round-robins chunks
// across them — the single code path shared by core::Reconstructor and
// cluster::Cluster. Encoder-training samples are collected ABOVE the device
// distribution, in global chunk order, into each wrapper's EncoderRegistry:
// wrappers sharing one registry (multi-GPU) therefore assemble exactly the
// training set a single-GPU run sees and train one shared encoder.
#pragma once

#include <array>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "memo/memoized_ops.hpp"

namespace mlr::memo {

class StageExecutor {
 public:
  /// Single-device engine over one wrapper.
  explicit StageExecutor(MemoizedLamino& ml);
  /// Multi-device engine: chunks are distributed round-robin, wrapper g
  /// taking chunks g, g+G, g+2G, … (the paper's §5.2 distribution).
  explicit StageExecutor(std::vector<MemoizedLamino*> wrappers);
  ~StageExecutor();

  /// Worker pool for the parallel phases; nullptr restores the process-wide
  /// pool. A one-worker pool runs every phase serially on the caller.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool& pool() const {
    return pool_ != nullptr ? *pool_ : ThreadPool::global();
  }

  /// Execute one operator stage starting at virtual time `ready`. Outputs
  /// are written into each chunk's `out`; records come back in chunk order.
  StageReport run_stage(OpKind kind, std::span<StageChunk> chunks,
                        sim::VTime ready);

  /// Cross-stage pipeline depth: the number of consecutive stages that may
  /// be in flight at once (outstanding data tails = depth − 1). 0 or 1
  /// restores today's per-stage barrier. Any depth produces bit-identical
  /// outputs, records, virtual times, cache contents and DB state.
  void set_pipeline_depth(i64 depth) {
    pipeline_depth_ = depth > 1 ? depth : 1;
  }
  [[nodiscard]] i64 pipeline_depth() const { return pipeline_depth_; }
  /// Number of independent tail-drainer lanes (clamped to [1, kNumOpKinds];
  /// 0 restores the automatic default). A tail lands on lane (kind mod
  /// lanes), so same-kind tails keep total order while different kinds
  /// drain concurrently; wrappers with a kind-coupled cache are pinned to
  /// lane 0 regardless. Settles outstanding tails before re-sharding. Any
  /// lane count produces bit-identical outputs, records, virtual times,
  /// cache contents and DB state.
  void set_tail_lanes(i64 lanes);
  [[nodiscard]] i64 tail_lanes() const { return tail_lanes_; }
  /// The automatic lane count: min(kNumOpKinds, hardware_concurrency).
  /// More lanes than cores just oversubscribes the pool with drainer jobs —
  /// on a 1-core host the per-kind lanes cost wall time instead of hiding
  /// it.
  [[nodiscard]] static i64 default_tail_lanes();
  /// Drain every outstanding stage tail (DB stores + cache refills) and
  /// rethrow the first deferred error, if any. Callers reading DB entries
  /// or cache contents directly after run_stage must settle first; the
  /// solver settles at the end of solve() and the destructor settles
  /// unconditionally.
  void settle();

  [[nodiscard]] MemoizedLamino& wrapper(std::size_t gpu = 0) const {
    return *wrappers_[gpu];
  }
  [[nodiscard]] std::size_t num_wrappers() const { return wrappers_.size(); }

  // Aggregates / broadcasts over every wrapper — what a solver driving the
  // engine needs without reaching into individual devices.
  [[nodiscard]] MemoCounters counters() const;
  [[nodiscard]] CacheStats cache_stats() const;
  void set_bypass(bool bypass);
  void set_collect_samples(bool collect, std::size_t cap_per_kind = 128);
  /// Contrastive-train the wrappers' encoders on their collected samples and
  /// freeze to INT8. Wrappers sharing one EncoderRegistry (the multi-GPU
  /// configuration) train it exactly once — one cross-device encoder — and
  /// the mean tail loss across distinct registries is returned.
  double train_encoder_from_collected(int steps);
  /// Cumulative CPU↔GPU copy-engine busy seconds over every device.
  [[nodiscard]] double device_transfer_busy() const;

 private:
  /// One deferred cache refill / DB store of a stage's data tail. `store`
  /// marks misses (DB insertion + cache refill); hits refill the cache only.
  struct TailItem {
    bool store = false;
    i64 location = 0;
    std::vector<float> key;
    std::vector<cfloat> value;
    double norm = 1.0;
    std::vector<cfloat> probe;
  };
  /// One stage's deferred data tail. Items execute in order on the owning
  /// lane's serial drainer; completion is signalled under tails_mu_.
  struct StageTail {
    MemoizedLamino* ml = nullptr;
    OpKind kind{};
    std::vector<TailItem> items;
  };
  /// One serial drainer lane: a FIFO of enqueued, unfinished tails and a
  /// flag for whether a pool job is currently draining it. All lanes share
  /// tails_mu_/tails_cv_ — lane traffic is a handful of tails per stage, so
  /// a single monitor keeps settle/sync logic simple.
  struct Lane {
    std::deque<std::shared_ptr<StageTail>> tails;
    bool runner_active = false;
  };

  /// The batched phases for one wrapper's share of the stage.
  void run_wrapper_stage(MemoizedLamino& ml, OpKind kind,
                         std::span<StageChunk> chunks, sim::VTime ready,
                         std::span<ChunkRecord> records, sim::VTime* done);
  void run_bypass(MemoizedLamino& ml, OpKind kind,
                  std::span<StageChunk> chunks, sim::VTime ready,
                  std::span<ChunkRecord> records, sim::VTime* done);
  void run_memoized(MemoizedLamino& ml, OpKind kind,
                    std::span<StageChunk> chunks, sim::VTime ready,
                    std::span<ChunkRecord> records, sim::VTime* done);

  /// Stage-entry handoff barrier: wait until no outstanding tail can affect
  /// this stage — same-kind tails always, every tail when `ml`'s cache
  /// couples kinds. Rethrows a deferred tail error.
  void sync_tails(const MemoizedLamino& ml, OpKind kind);
  /// Defer (or, below depth 2 / without workers, run inline) one stage's
  /// data tail. Bounds outstanding tails to pipeline_depth − 1 per lane.
  void enqueue_tail(MemoizedLamino& ml, OpKind kind,
                    std::vector<TailItem> items);
  static void run_tail_items(StageTail& tail);
  void drain_lane(std::size_t lane);  // one lane's serial drainer job
  /// Lane a tail of `kind` from `ml` drains on: kind mod tail_lanes_, except
  /// that wrappers with a kind-coupled cache always use lane 0 (their cache
  /// FIFO order spans kinds, so their tails must stay on one serial lane).
  [[nodiscard]] std::size_t lane_for(const MemoizedLamino& ml,
                                     OpKind kind) const;

  std::vector<MemoizedLamino*> wrappers_;
  ThreadPool* pool_ = nullptr;

  i64 pipeline_depth_ = 1;
  i64 tail_lanes_ = default_tail_lanes();
  std::mutex tails_mu_;
  std::condition_variable tails_cv_;
  std::array<Lane, kNumOpKinds> lanes_;
  std::exception_ptr tail_error_;
};

}  // namespace mlr::memo
