// StageExecutor — the batched, parallel stage-execution engine (the layer
// between the ADMM solver and the memo/device subsystems).
//
// A stage is a set of independent chunks by construction, so the engine
// splits execution into batched phases instead of looping chunk-at-a-time:
//
//   phase 1  encode    all keys + pooled probes, fanned out on the thread
//                      pool (the INT8 CNN forward is pure compute)
//   phase 2  probe     the local memoization cache for every key in
//                      parallel (caches are thread-safe; hits copy their
//                      stored value straight into the chunk output)
//   phase 3+4 resolve  chunks the cache could not serve go to the MemoDb's
//                      async batch-query service in `overlap_slices` slices:
//                      while slice k+1's ANN scoring runs on the pool
//                      (submit_slice), slice k's hits copy their values and
//                      slice k's misses compute their real FFTs — the DB
//                      round-trip hides behind local work. With
//                      overlap_slices ≤ 1 the phases barrier as before
//                      (ONE coalesced query_batch, then all miss FFTs).
//                      Fresh values are inserted into DB + cache only after
//                      the round finalizes.
//
// Wall-clock parallelism never touches the virtual clock: device/link/node
// timelines are scheduled in a deterministic serial pass in chunk order
// (MemoDb::finalize replays the exact schedule of the barriered batch), so
// reported virtual times, ChunkRecords (Fig 10/12) and cache FIFO contents
// are bit-identical for any `threads` or `overlap_slices` setting.
//
// The engine also owns multi-device distribution: constructed over several
// MemoizedLamino wrappers (one per simulated GPU) it round-robins chunks
// across them — the single code path shared by core::Reconstructor and
// cluster::Cluster. Encoder-training samples are collected ABOVE the device
// distribution, in global chunk order, into each wrapper's EncoderRegistry:
// wrappers sharing one registry (multi-GPU) therefore assemble exactly the
// training set a single-GPU run sees and train one shared encoder.
#pragma once

#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "memo/memoized_ops.hpp"

namespace mlr::memo {

class StageExecutor {
 public:
  /// Single-device engine over one wrapper.
  explicit StageExecutor(MemoizedLamino& ml);
  /// Multi-device engine: chunks are distributed round-robin, wrapper g
  /// taking chunks g, g+G, g+2G, … (the paper's §5.2 distribution).
  explicit StageExecutor(std::vector<MemoizedLamino*> wrappers);

  /// Worker pool for the parallel phases; nullptr restores the process-wide
  /// pool. A one-worker pool runs every phase serially on the caller.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool& pool() const {
    return pool_ != nullptr ? *pool_ : ThreadPool::global();
  }

  /// Execute one operator stage starting at virtual time `ready`. Outputs
  /// are written into each chunk's `out`; records come back in chunk order.
  StageReport run_stage(OpKind kind, std::span<StageChunk> chunks,
                        sim::VTime ready);

  [[nodiscard]] MemoizedLamino& wrapper(std::size_t gpu = 0) const {
    return *wrappers_[gpu];
  }
  [[nodiscard]] std::size_t num_wrappers() const { return wrappers_.size(); }

  // Aggregates / broadcasts over every wrapper — what a solver driving the
  // engine needs without reaching into individual devices.
  [[nodiscard]] MemoCounters counters() const;
  [[nodiscard]] CacheStats cache_stats() const;
  void set_bypass(bool bypass);
  void set_collect_samples(bool collect, std::size_t cap_per_kind = 128);
  /// Contrastive-train the wrappers' encoders on their collected samples and
  /// freeze to INT8. Wrappers sharing one EncoderRegistry (the multi-GPU
  /// configuration) train it exactly once — one cross-device encoder — and
  /// the mean tail loss across distinct registries is returned.
  double train_encoder_from_collected(int steps);
  /// Cumulative CPU↔GPU copy-engine busy seconds over every device.
  [[nodiscard]] double device_transfer_busy() const;

 private:
  /// The batched phases for one wrapper's share of the stage.
  void run_wrapper_stage(MemoizedLamino& ml, OpKind kind,
                         std::span<StageChunk> chunks, sim::VTime ready,
                         std::span<ChunkRecord> records, sim::VTime* done);
  void run_bypass(MemoizedLamino& ml, OpKind kind,
                  std::span<StageChunk> chunks, sim::VTime ready,
                  std::span<ChunkRecord> records, sim::VTime* done);
  void run_memoized(MemoizedLamino& ml, OpKind kind,
                    std::span<StageChunk> chunks, sim::VTime ready,
                    std::span<ChunkRecord> records, sim::VTime* done);

  std::vector<MemoizedLamino*> wrappers_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace mlr::memo
