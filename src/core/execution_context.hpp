// ExecutionContext — ownership of the execution substrate for one
// reconstruction run.
//
// Wires together everything the StageExecutor engine drives: the simulated
// GPU(s), the interconnect + memory node, the distributed memoization DB,
// one MemoizedLamino wrapper per device, the shared EncoderRegistry (all
// devices key with ONE encoder, so multi-GPU hit patterns match single-GPU
// runs), and the worker pool for the engine's parallel phases. This
// replaces the ad-hoc pointer plumbing that used to live inside
// Reconstructor::prepare(), and gives multi-GPU chunk distribution, offload
// experiments and memoization one shared code path: everything executes
// stages through `executor()`.
#pragma once

#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "memo/memo_db.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"
#include "sim/device.hpp"

namespace mlr {

struct ExecutionOptions {
  /// Worker threads for the engine's parallel phases. 0 = share the
  /// process-global pool (hardware concurrency); 1 = strictly serial
  /// execution on the calling thread; N = a dedicated N-worker pool.
  unsigned threads = 0;
  /// Simulated devices; chunks are distributed round-robin across them.
  int gpus = 1;
  /// Cross-stage pipeline depth for the engine (see
  /// StageExecutor::set_pipeline_depth): stages that may be in flight at
  /// once. 0/1 = per-stage barrier. Bit-identical results for any value.
  i64 pipeline_depth = 2;
  /// Tail-drainer lanes for the engine (see StageExecutor::set_tail_lanes):
  /// tails of different OpKinds drain concurrently. 0 = automatic
  /// (min(kNumOpKinds, hardware cores) — per-kind lanes only up to the
  /// parallelism the host can actually run); 1 = the single global drainer.
  /// Bit-identical results for any value.
  i64 tail_lanes = 0;
  memo::MemoConfig memo{};   ///< wrapper config, shared by every device
  memo::MemoDbConfig db{};   ///< memoization DB config (used when memo.enable)
  sim::DeviceSpec device{};
  sim::LinkSpec link{};
  sim::MemoryNodeSpec memory_node{};

  // --- Shared-memo session wiring (serve::ReconService) -------------------
  // A serving session is an ExecutionContext whose expensive shared state is
  // handed in instead of built: the service's one cross-job encoder, a seed
  // snapshot of the shared memo tier, and the service-wide worker pool.

  /// Use this (typically pre-trained) key-encoder registry instead of
  /// creating a private one, so many contexts key through ONE encoder.
  std::shared_ptr<encoder::EncoderRegistry> registry{};
  /// Seed the context's fresh MemoDb from a snapshot before first use (see
  /// MemoDb::import_entries); only read when memo.enable. The pointee must
  /// outlive construction (the entries are copied into the DB).
  const std::vector<memo::MemoDb::Entry>* db_seed = nullptr;
  /// Lazy value fetcher for an *index-only* seed (entries whose value
  /// payload lives behind a remote tier — empty `value`, `value_cf` set):
  /// the session fetches hit payloads through it while its miss FFTs run.
  /// Must outlive the context. Null requires every seed entry to carry its
  /// value inline.
  memo::ValueFetcher* db_values = nullptr;
  /// Borrow an existing worker pool instead of owning one (all job sessions
  /// of a service share the service pool). Overrides `threads` when set.
  ThreadPool* shared_pool = nullptr;
  /// Enable the process-global trace recorder (obs/trace.hpp) for this run.
  /// Enable-only — a context never turns recording off behind another
  /// context's back; the caller drains via obs::TraceRecorder::write_json.
  /// Tracing never perturbs outputs, records, fingerprints or virtual
  /// times.
  bool trace = false;
};

class ExecutionContext {
 public:
  ExecutionContext(const lamino::Operators& ops, ExecutionOptions opt);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// The stage-execution engine over all devices — the one entry point for
  /// running operator stages.
  [[nodiscard]] memo::StageExecutor& executor() { return *exec_; }

  [[nodiscard]] int num_gpus() const { return int(devices_.size()); }
  [[nodiscard]] memo::MemoizedLamino& wrapper(int gpu = 0) {
    return *wrappers_[std::size_t(gpu)];
  }
  [[nodiscard]] sim::Device& device(int gpu = 0) {
    return *devices_[std::size_t(gpu)];
  }
  [[nodiscard]] sim::Interconnect& network() { return net_; }
  [[nodiscard]] sim::MemoryNode& memory_node() { return memnode_; }
  [[nodiscard]] memo::MemoDb* db() { return db_.get(); }
  /// The cross-device key encoder shared by every wrapper.
  [[nodiscard]] encoder::EncoderRegistry& encoder_registry() {
    return *registry_;
  }
  /// Dedicated pool (null when sharing the process-global one).
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }
  [[nodiscard]] const ExecutionOptions& options() const { return opt_; }

  /// Snapshot of every virtual timeline in the context (per-device compute +
  /// copy engines, the interconnect link, the memory-node CPU). A preempted
  /// serve session checkpoints these and restores them onto the rebuilt
  /// context: async insertion charges can leave link/node busy beyond the
  /// solver's own clock at a yield point, and losing that queueing would
  /// shift every later DB round-trip (and the job's run vtime).
  struct SimClockState {
    std::vector<sim::Device::ClockState> devices;
    sim::Timeline::State link;
    sim::Timeline::State memnode_cpu;
  };
  [[nodiscard]] SimClockState clock_state() const {
    SimClockState s;
    s.devices.reserve(devices_.size());
    for (const auto& d : devices_) s.devices.push_back(d->clock_state());
    s.link = net_.clock_state();
    s.memnode_cpu = memnode_.clock_state();
    return s;
  }
  void restore_clock(const SimClockState& s) {
    MLR_CHECK(s.devices.size() == devices_.size());
    for (std::size_t i = 0; i < devices_.size(); ++i)
      devices_[i]->restore_clock(s.devices[i]);
    net_.restore_clock(s.link);
    memnode_.restore_clock(s.memnode_cpu);
  }

 private:
  ExecutionOptions opt_;
  sim::Interconnect net_;
  sim::MemoryNode memnode_;
  std::unique_ptr<memo::MemoDb> db_;
  std::shared_ptr<encoder::EncoderRegistry> registry_;
  std::vector<std::unique_ptr<sim::Device>> devices_;
  std::vector<std::unique_ptr<memo::MemoizedLamino>> wrappers_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<memo::StageExecutor> exec_;
};

}  // namespace mlr
