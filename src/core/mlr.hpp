// mlr — public facade of the library.
//
// One object, mlr::Reconstructor, wires together every subsystem the paper
// describes: phantom/projection generation, the simulated Polaris node
// (GPU + Slingshot + memory node + SSD), the distributed memoization system,
// the ADMM-FFT solver with operation cancellation/fusion, ADMM-Offload and
// multi-GPU chunk distribution. Examples and benches build on this header.
//
// Quickstart:
//   mlr::ReconstructionConfig cfg;
//   cfg.dataset = mlr::Dataset::small();
//   cfg.memoize = true;
//   mlr::Reconstructor rec(cfg);
//   auto report = rec.run();
//   // report.result.u — the reconstruction; report.speedup_vs_baseline …
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "admm/solver.hpp"
#include "cluster/cluster.hpp"
#include "core/execution_context.hpp"
#include "lamino/phantom.hpp"
#include "memo/memoized_ops.hpp"
#include "offload/offload.hpp"

namespace mlr {

/// A named problem instance. The paper evaluates 1K³ / 1.5K³ / 2K³ volumes;
/// this repo runs the same pipeline on laptop-sized volumes and scales the
/// virtual clock so the reported times correspond to the paper-scale run
/// (work_scale = (paper_n / n)³).
struct Dataset {
  std::string label;
  i64 n = 32;               ///< local cube dimension
  i64 paper_n = 1024;       ///< paper-scale dimension this stands in for
  lamino::PhantomKind kind = lamino::PhantomKind::BrainTissue;
  double noise = 0.01;      ///< detector noise (relative RMS)
  u64 seed = 1;

  [[nodiscard]] double work_scale() const {
    const double s = double(paper_n) / double(n);
    return s * s * s;
  }

  /// Paper's small dataset (1K³), mouse-brain-like phantom.
  static Dataset small(i64 n = 24);
  /// Paper's medium dataset (1.5K³).
  static Dataset medium(i64 n = 32);
  /// Paper's large dataset (2K³).
  static Dataset large(i64 n = 40);
};

enum class OffloadMode { None, Planned, Greedy, Lru };

struct ReconstructionConfig {
  Dataset dataset = Dataset::small();
  int iters = 12;
  int inner_iters = 4;
  i64 chunk_size = 4;
  double alpha = 1e-3;

  // mLR optimizations (all on = full mLR; all off = original ADMM-FFT).
  bool memoize = true;
  double tau = 0.92;
  bool cancellation = true;
  bool fusion = true;
  bool coalesce = true;
  memo::CacheKind cache = memo::CacheKind::Private;
  OffloadMode offload = OffloadMode::None;

  int gpus = 1;  ///< >1 distributes chunks across simulated GPUs

  // Stage-execution engine knobs (see ExecutionOptions/StageExecutor):
  /// Worker threads for the engine's parallel phases. 0 = process-global
  /// pool (hardware concurrency), 1 = serial. Results are bit-identical for
  /// any value — only host wall time changes.
  unsigned threads = 0;
  /// GlobalCache shard count ((kind, location) hash sharding); ≤1 keeps the
  /// single shared pool. Ignored by the Private cache.
  i64 cache_shards = 1;
  /// DB/compute overlap: slices per stage driven through the MemoDb's async
  /// query service (slice k+1's ANN scoring overlaps slice k's miss FFTs).
  /// 0 or 1 = the legacy barriered path. Outputs, records and virtual times
  /// are bit-identical for every value — only host wall time changes.
  i64 overlap_slices = 4;
  /// Cross-stage pipelining: consecutive operator stages that may be in
  /// flight at once — stage s's DB insertions and cache refills drain under
  /// stage s+1's encode/probe/scoring phases. 0 or 1 = per-stage barrier.
  /// Outputs, records, cache contents and virtual times are bit-identical
  /// for every value — only host wall time changes.
  i64 pipeline_depth = 2;
  /// Tail-drainer lanes (per-OpKind sharding of the deferred data tail):
  /// tails of different kinds drain concurrently. 0 = automatic
  /// (min(kNumOpKinds, hardware cores)); 1 = the single global drainer.
  /// Bit-identical results for any value — only host wall time changes.
  i64 tail_lanes = 0;
};

struct Report {
  admm::SolveResult result;
  Array3D<cfloat> ground_truth;
  double vtime_s = 0;             ///< virtual (paper-scale) wall time
  double real_seconds = 0;        ///< host time actually spent
  double error_vs_truth = 0;      ///< ‖u − truth‖/‖truth‖
  memo::MemoCounters memo;
  double cache_hit_rate = 0;
  double peak_rss_bytes = 0;      ///< paper-scale CPU memory peak
  double exposed_stall_s = 0;     ///< offload stalls on the critical path
  offload::Plan offload_plan;     ///< chosen plan (Planned mode)
};

/// End-to-end reconstruction runner — the library's primary entry point.
class Reconstructor {
 public:
  explicit Reconstructor(ReconstructionConfig cfg);
  ~Reconstructor();

  /// Generate the phantom + projections (idempotent; run() calls it).
  void prepare();
  /// Execute the reconstruction and return the full report.
  Report run();

  /// Access to the assembled subsystems for fine-grained experiments.
  [[nodiscard]] const lamino::Operators& ops() const { return *ops_; }
  [[nodiscard]] const Array3D<cfloat>& projections() const { return d_; }
  [[nodiscard]] const Array3D<cfloat>& ground_truth() const { return u_true_; }
  [[nodiscard]] ExecutionContext& context() { return *ctx_; }
  [[nodiscard]] memo::StageExecutor& engine() { return ctx_->executor(); }
  [[nodiscard]] memo::MemoizedLamino& wrapper() { return ctx_->wrapper(); }
  [[nodiscard]] admm::Solver& solver() { return *solver_; }
  [[nodiscard]] sim::Interconnect& network() { return ctx_->network(); }
  [[nodiscard]] sim::MemoryNode& memory_node() { return ctx_->memory_node(); }
  [[nodiscard]] memo::MemoDb* db() { return ctx_->db(); }
  [[nodiscard]] const ReconstructionConfig& config() const { return cfg_; }

 private:
  ReconstructionConfig cfg_;
  std::unique_ptr<lamino::Operators> ops_;
  Array3D<cfloat> u_true_;
  Array3D<cfloat> d_;
  std::unique_ptr<ExecutionContext> ctx_;  ///< devices/pool/cache/DB wiring
  std::unique_ptr<admm::Solver> solver_;
  bool prepared_ = false;
};

/// Paper-scale memory footprint of the ADMM variables for a dataset — the
/// Fig 2 style breakdown, derived from the real allocation sizes times the
/// dataset's work_scale.
struct MemoryBreakdown {
  double psi = 0, lambda = 0, g = 0, g_prev = 0, u = 0, d = 0, other = 0;
  [[nodiscard]] double total() const {
    return psi + lambda + g + g_prev + u + d + other;
  }
};
MemoryBreakdown admm_memory_breakdown(const Dataset& ds);

}  // namespace mlr
