#include "core/execution_context.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace mlr {

ExecutionContext::ExecutionContext(const lamino::Operators& ops,
                                   ExecutionOptions opt)
    : opt_(opt), net_(opt.link), memnode_(opt.memory_node) {
  MLR_CHECK(opt_.gpus >= 1);
  if (opt_.trace) obs::TraceRecorder::instance().enable();
  if (opt_.memo.enable) {
    db_ = std::make_unique<memo::MemoDb>(opt_.db, &net_, &memnode_);
    if (opt_.db_seed != nullptr)
      db_->import_entries(*opt_.db_seed, opt_.db_values);
  }
  // One key encoder for the whole run: every device wrapper keys (and
  // trains) through the same registry, so gpus>1 reproduces the single-GPU
  // hit patterns. A serving session goes one step further and shares the
  // service's registry across every job.
  registry_ = opt_.registry != nullptr
                  ? opt_.registry
                  : std::make_shared<encoder::EncoderRegistry>(
                        encoder::EncoderConfig{.input_hw = opt_.memo.encoder_hw,
                                               .embed_dim = opt_.memo.key_dim});
  for (int g = 0; g < opt_.gpus; ++g) {
    devices_.push_back(std::make_unique<sim::Device>(g, opt_.device));
    wrappers_.push_back(std::make_unique<memo::MemoizedLamino>(
        ops, opt_.memo, devices_.back().get(), db_.get(), registry_));
  }
  std::vector<memo::MemoizedLamino*> ptrs;
  ptrs.reserve(wrappers_.size());
  for (auto& w : wrappers_) ptrs.push_back(w.get());
  exec_ = std::make_unique<memo::StageExecutor>(std::move(ptrs));
  exec_->set_pipeline_depth(opt_.pipeline_depth);
  exec_->set_tail_lanes(opt_.tail_lanes);
  ThreadPool* pool = opt_.shared_pool;
  if (pool == nullptr && opt_.threads > 0) {
    pool_ = std::make_unique<ThreadPool>(opt_.threads);
    pool = pool_.get();
  }
  if (pool != nullptr) {
    exec_->set_pool(pool);
    // The wrappers' built-in engines follow the same pool so direct
    // wrapper.run_stage() calls behave identically.
    for (auto& w : wrappers_) w->executor().set_pool(pool);
  }
}

ExecutionContext::~ExecutionContext() = default;

}  // namespace mlr
