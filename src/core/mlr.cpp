#include "core/mlr.hpp"

#include "common/timer.hpp"

namespace mlr {

Dataset Dataset::small(i64 n) {
  return {"small (1K^3)", n, 1024, lamino::PhantomKind::BrainTissue, 0.01, 11};
}
Dataset Dataset::medium(i64 n) {
  return {"medium (1.5K^3)", n, 1536, lamino::PhantomKind::BrainTissue, 0.01,
          12};
}
Dataset Dataset::large(i64 n) {
  return {"large (2K^3)", n, 2048, lamino::PhantomKind::BrainTissue, 0.01, 13};
}

Reconstructor::Reconstructor(ReconstructionConfig cfg) : cfg_(std::move(cfg)) {
  MLR_CHECK(cfg_.iters >= 1 && cfg_.gpus >= 1);
}

Reconstructor::~Reconstructor() = default;

void Reconstructor::prepare() {
  if (prepared_) return;
  const auto geom = lamino::Geometry::cube(cfg_.dataset.n);
  ops_ = std::make_unique<lamino::Operators>(geom);
  u_true_ = lamino::to_complex(lamino::make_phantom(
      geom.object_shape(), cfg_.dataset.kind, cfg_.dataset.seed));
  d_ = lamino::simulate_projections(*ops_, u_true_, cfg_.dataset.noise,
                                    cfg_.dataset.seed + 1);
  const double ws = cfg_.dataset.work_scale();
  ExecutionOptions eo;
  eo.threads = cfg_.threads;
  eo.gpus = cfg_.gpus;
  eo.db.tau = cfg_.tau;
  eo.db.coalesce = cfg_.coalesce;
  eo.db.value_scale = ws;
  eo.db.overlap_slices = cfg_.overlap_slices;
  eo.pipeline_depth = cfg_.pipeline_depth;
  eo.tail_lanes = cfg_.tail_lanes;
  eo.memo.enable = cfg_.memoize;
  eo.memo.tau = cfg_.tau;
  eo.memo.cache = cfg_.cache;
  eo.memo.cache_shards = cfg_.cache_shards;
  eo.memo.coalesce = cfg_.coalesce;
  eo.memo.work_scale = ws;
  ctx_ = std::make_unique<ExecutionContext>(*ops_, eo);
  admm::AdmmConfig ac;
  ac.outer_iters = cfg_.iters;
  ac.inner_iters = cfg_.inner_iters;
  ac.alpha = cfg_.alpha;
  ac.chunk_size = cfg_.chunk_size;
  ac.use_cancellation = cfg_.cancellation;
  ac.use_fusion = cfg_.fusion;
  ac.work_scale = ws;
  solver_ = std::make_unique<admm::Solver>(ctx_->executor(), ac);
  prepared_ = true;
}

Report Reconstructor::run() {
  prepare();
  WallTimer wall;
  Report rep;
  const double ws = cfg_.dataset.work_scale();

  std::unique_ptr<admm::PhaseObserver> policy;
  offload::Trace trace;
  if (cfg_.offload != OffloadMode::None) {
    // Profile one short run to obtain the access trace (paper: "profiling
    // only a single ADMM-FFT iteration").
    offload::TraceProfiler prof;
    admm::AdmmConfig pc;
    pc.outer_iters = 1;
    pc.inner_iters = cfg_.inner_iters;
    pc.chunk_size = cfg_.chunk_size;
    pc.use_cancellation = cfg_.cancellation;
    pc.use_fusion = cfg_.fusion;
    pc.work_scale = ws;
    sim::Device prof_dev(99);
    memo::MemoizedLamino prof_ml(*ops_, {.enable = false, .work_scale = ws},
                                 &prof_dev, nullptr);
    admm::Solver prof_solver(prof_ml, pc);
    prof_solver.set_observer(&prof);
    (void)prof_solver.solve(d_);
    trace = prof.trace();

    const double vol = double(u_true_.bytes());
    std::vector<offload::VariableInfo> vars{{"psi", 3 * vol * ws},
                                            {"lambda", 3 * vol * ws},
                                            {"g", 3 * vol * ws}};
    switch (cfg_.offload) {
      case OffloadMode::Planned: {
        offload::Planner planner(trace, vars);
        rep.offload_plan = planner.best();
        policy = std::make_unique<offload::AdmmOffloadPolicy>(rep.offload_plan,
                                                              trace);
        break;
      }
      case OffloadMode::Greedy:
        policy = std::make_unique<offload::GreedyOffloadPolicy>(vars);
        break;
      case OffloadMode::Lru:
        policy = std::make_unique<offload::LruOffloadPolicy>(
            vars, 6 * vol * ws);  // budget: two of the three variables
        break;
      case OffloadMode::None: break;
    }
    if (policy) solver_->set_observer(policy.get());
  }

  rep.result = solver_->solve(d_);
  rep.ground_truth = u_true_;
  rep.vtime_s = rep.result.total_vtime;
  rep.error_vs_truth =
      relative_error<cfloat>(u_true_.span(), rep.result.u.span());
  rep.memo = ctx_->executor().counters();
  rep.cache_hit_rate = ctx_->executor().cache_stats().hit_rate();
  // Steady-state peak: skip the Init/first-iteration transient where all
  // variables are co-resident while the policy's initial writes are still in
  // flight (the paper's variables materialize staggered across phases).
  const double steady_from = rep.result.iterations.size() > 1
                                 ? rep.result.iterations.front().t_end
                                 : 0.0;
  auto peak_after = [&](const std::vector<sim::MemoryTracker::Sample>& curve) {
    double pk = 0;
    for (const auto& s2 : curve)
      if (s2.t >= steady_from) pk = std::max(pk, s2.bytes);
    return pk;
  };
  {
    auto base = solver_->memory().timeline();
    for (auto& s2 : base) s2.bytes *= ws;
    rep.peak_rss_bytes = peak_after(base);
  }
  if (policy) {
    const offload::OffloadStats* st = nullptr;
    if (auto* p = dynamic_cast<offload::AdmmOffloadPolicy*>(policy.get()))
      st = &p->stats();
    if (auto* p = dynamic_cast<offload::GreedyOffloadPolicy*>(policy.get()))
      st = &p->stats();
    if (auto* p = dynamic_cast<offload::LruOffloadPolicy*>(policy.get()))
      st = &p->stats();
    if (st != nullptr) {
      rep.exposed_stall_s = st->exposed_stall_s;
      // Offloaded bytes are tracked at paper scale already (the variable
      // registry was built with work_scale applied); the solver tracker is
      // in local bytes, so scale it before combining.
      auto base = solver_->memory().timeline();
      for (auto& s2 : base) s2.bytes *= ws;
      auto rss = offload::apply_offload_to_rss(base, st->offloaded_timeline);
      rep.peak_rss_bytes = peak_after(rss);
    }
  }
  rep.real_seconds = wall.seconds();
  return rep;
}

MemoryBreakdown admm_memory_breakdown(const Dataset& ds) {
  MemoryBreakdown b;
  const double vol =
      double(ds.paper_n) * double(ds.paper_n) * double(ds.paper_n);
  const double c64 = 8.0;  // COMPLEX64 bytes
  b.u = vol * c64;
  b.d = vol * c64;
  b.psi = 3 * vol * c64;
  b.lambda = 3 * vol * c64;
  b.g = 3 * vol * c64;
  b.g_prev = vol * c64;
  b.other = 2 * vol * c64;  // ũ1 + residual workspaces inside LSP
  return b;
}

}  // namespace mlr
