// serve/job — job-level types of the multi-tenant reconstruction service.
//
// A JobRequest is one tenant's reconstruction order: which scenario (the
// object class + solver profile, drawn from the example programs), which
// object (phantom seed), when it arrives on the virtual clock, how urgent it
// is (priority class / deadline) and which tenant to bill. JobStats is the
// service's answer: admission, schedule (queue wait / turnaround on the same
// virtual clock), memoization outcomes including cross-job reuse, and an
// output fingerprint — the bit-level identity the service guarantees across
// scheduling policies and thread counts.
#pragma once

#include <string>
#include <vector>

#include "lamino/phantom.hpp"
#include "memo/memoized_ops.hpp"
#include "sim/clock.hpp"

namespace mlr::serve {

/// Workload scenarios the service accepts — the heterogeneous mix of the
/// repo's example programs (pcb_inspection, ic_inspection, quickstart's
/// brain phantom, memory_constrained's paper-2K³ class).
enum class Scenario : int {
  PcbInspection = 0,     ///< coarse features, loose τ, short jobs
  IcInspection = 1,      ///< fine features, strict τ
  BrainScan = 2,         ///< smooth tissue, paper-1.5K³ timing class
  MemoryConstrained = 3, ///< paper-2K³ timing class: the long-job tail
};
inline constexpr int kNumScenarios = 4;

inline const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::PcbInspection: return "pcb";
    case Scenario::IcInspection: return "ic";
    case Scenario::BrainScan: return "brain";
    case Scenario::MemoryConstrained: return "memcon";
  }
  return "?";
}

/// Per-scenario solver profile. Every job of a service reconstructs on the
/// service's one shared geometry (keys/values of different shapes never
/// alias — the DB's value-size gate would reject them anyway); scenarios
/// differ in object class, similarity threshold, iteration budget and the
/// paper-scale dimension their virtual clock maps onto.
struct ScenarioProfile {
  lamino::PhantomKind phantom{};
  double tau = 0.92;   ///< similarity threshold class (paper §4.5)
  int iters = 10;
  int inner_iters = 4;
  double alpha = 1e-3;
  double noise = 0.01;
  i64 paper_n = 1024;  ///< paper-scale dimension (drives work_scale)
};

inline ScenarioProfile scenario_profile(Scenario s) {
  switch (s) {
    case Scenario::PcbInspection:
      return {lamino::PhantomKind::Pcb, 0.90, 8, 4, 1e-3, 0.01, 1024};
    case Scenario::IcInspection:
      return {lamino::PhantomKind::IntegratedCircuit, 0.95, 10, 4, 1e-3,
              0.01, 1024};
    case Scenario::BrainScan:
      return {lamino::PhantomKind::BrainTissue, 0.92, 10, 4, 1e-3, 0.01,
              1536};
    case Scenario::MemoryConstrained:
      return {lamino::PhantomKind::BrainTissue, 0.92, 6, 3, 2e-3, 0.01,
              2048};
  }
  return {};
}

/// Service-level objective class of a request. Admission may *downgrade* an
/// infeasible Interactive/Standard job to BestEffort instead of rejecting
/// it: the job keeps its deadline for reporting but stops counting against
/// the admitted deadline-hit rate (it was told up front it would be late).
enum class SloClass : int { Interactive = 0, Standard = 1, BestEffort = 2 };
inline constexpr int kNumSloClasses = 3;

inline const char* slo_class_name(SloClass c) {
  switch (c) {
    case SloClass::Interactive: return "interactive";
    case SloClass::Standard: return "standard";
    case SloClass::BestEffort: return "best-effort";
  }
  return "?";
}

/// One tenant's reconstruction order.
struct JobRequest {
  u64 id = 0;                    ///< assigned by ReconService::submit
  std::string tenant = "default";
  double tenant_weight = 1.0;    ///< fair-share weight of the tenant
  int priority = 1;              ///< higher runs first (Priority policy)
  sim::VTime arrival = 0;        ///< virtual arrival time
  sim::VTime deadline = 0;       ///< absolute virtual deadline; 0 = none
  SloClass slo = SloClass::Standard;
  Scenario scenario = Scenario::BrainScan;
  u64 seed = 1;                  ///< object identity (phantom seed)
};

/// How a job left the service. Rejected jobs never ran (admission control);
/// Failed jobs were dispatched but their session threw — the error is
/// preserved in JobStats::failure, the slot was released, and every OTHER
/// job's outputs/records/vtimes are unaffected (per-job failure isolation:
/// sessions are hermetic and the tier folds in job-id order, so a failed
/// job is simply absent from the fold).
enum class JobOutcome : int { Completed = 0, Rejected = 1, Failed = 2 };

inline const char* job_outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::Completed: return "completed";
    case JobOutcome::Rejected: return "rejected";
    case JobOutcome::Failed: return "failed";
  }
  return "?";
}

/// Outcome of one job.
struct JobStats {
  u64 id = 0;
  std::string tenant;
  Scenario scenario{};
  int priority = 1;
  SloClass slo = SloClass::Standard;
  bool admitted = true;          ///< false: rejected at arrival
  /// Why admission said no ("queue-full" / "deadline-infeasible"); empty
  /// for admitted jobs.
  std::string reject_reason;
  /// Admission downgraded the job to SloClass::BestEffort at arrival: its
  /// deadline was estimated infeasible but the job ran anyway.
  bool downgraded = false;
  JobOutcome outcome = JobOutcome::Completed;
  std::string failure;           ///< Failed only: what the session threw
  /// Ran in degraded (cold-session) mode: the shared tier was unreachable,
  /// so no seed was imported and the job's promotion was buffered locally
  /// for re-shipment on recovery.
  bool degraded = false;
  int slot = -1;                 ///< execution slot that ran the job (last)
  /// Stage-boundary preemption: how many times the job yielded its slot and
  /// requeued, and every slot that hosted one of its segments (in order).
  /// Preemption is schedule-shaped only — outputs, records, cache
  /// fingerprints and run_vtime are bit-identical to an uninterrupted run.
  u64 preemptions = 0;
  std::vector<int> slots_visited;
  sim::VTime arrival = 0, start = 0, finish = 0;
  /// Policy-invariant job runtime: sessions are hermetic (seed snapshot +
  /// own insertions), so a job's duration never depends on who else was in
  /// the queue — only queue wait, seed-fetch time and turnaround do.
  double run_vtime = 0;
  /// Virtual seconds between dispatch and compute start, spent fetching the
  /// shared-tier seed over the contended fabric (queueing behind other
  /// sessions' uplink passes included): finish = start + seed_fetch_s +
  /// run_vtime. 0 when the fabric is disabled or the tier is empty.
  double seed_fetch_s = 0;
  /// Entries of this job accepted into the shared tier (its dedup/cap drops
  /// are in memo.shared_dedup_drops / memo.shared_cap_drops).
  u64 promoted = 0;
  bool deadline_met = true;
  double error_vs_truth = 0;
  memo::MemoCounters memo;       ///< incl. db_hit_shared (cross-job reuse)
  double cache_hit_rate = 0;
  u64 output_fingerprint = 0;    ///< FNV-1a over the result bits
  u64 cache_fingerprint = 0;     ///< session cache digest at completion

  [[nodiscard]] double queue_wait() const { return start - arrival; }
  [[nodiscard]] double turnaround() const { return finish - arrival; }
};

}  // namespace mlr::serve
