// serve/shared_tier — the service's shared memo tier, sharded across memory
// nodes and reached over the contended fabric.
//
// One SharedTier holds every entry jobs have promoted, in one *canonical
// insertion order* (promotion order — job-id order within a drain). Sessions
// import exactly that order (MemoDb::import_entries), so the seed snapshot —
// and therefore every id, IVF training set and hit decision downstream — is
// bit-identical for every shard count: sharding decides *placement* (which
// memory-node link carries an entry's bytes, by content hash
// memo::entry_shard), never ordering or membership.
//
// Promotion splits the way an engine insertion does (charge_insert /
// store_insert): the fabric *charge* happens when a shipment enters the
// fabric, the tier *fold* (what the composition becomes) happens in job-id
// order — so the tier is policy-invariant while the clock sees shipments in
// time order. Timelines serialize in call order, so callers must keep
// charge ready-times (approximately) monotone: the service charges fetches
// online in dispatch order and promotion shipments at end-of-drain sorted
// by finish time, and primes entirely off-fabric (an offline warm-up — the
// fabric clock starts with traffic).
//
// What the virtual clock sees (all charged through one sim::Fabric that every
// session of the service shares — the contention surface):
//
//   * charge_fetch(ready, scale) — a dispatched job fetches the whole tier
//     before its compute starts: each shard streams its bytes on its own
//     link while the total funnels through the shared uplink. Concurrent
//     sessions queue on that uplink, so under load dispatch-to-compute gaps
//     grow; with one slot (no concurrency) and the default link ≥ uplink
//     bandwidths the fetch time is shard-count-invariant (see
//     sim/fabric.hpp). `scale` is the session's work_scale: wire bytes are
//     timed as their paper-scale counterparts, exactly like the MemoDb's
//     value_scale charging.
//   * charge_store(entries, ready, scale) — a finished job ships its session
//     insertions back. All offered bytes travel (the tier filters on
//     arrival, not the session).
//   * fold(entries) — entry by entry in insertion order:
//       1. cap: with the tier at max_entries the entry is dropped outright
//          (no probe — the drop is inevitable).
//       2. dedup probe: the entry's nearest tier neighbour in key space
//          (per-kind ANN index — the same index family the live DB scores
//          with) is fetched and memo::entry_similarity() gates it; above
//          τ_dedup the entry is dropped as a near-duplicate. Accepted
//          entries join the index immediately, so a batch dedups against
//          itself too. τ_dedup = 0 disables the probe.
//     The two drop classes are counted separately (dedup = compaction,
//     cap = overflow). Folding is serial on the event-loop thread, so the
//     tier's composition is deterministic — and, because the service folds
//     in job-id order, identical for every scheduling policy.
#pragma once

#include <memory>
#include <vector>

#include "ann/ann.hpp"
#include "memo/memo_db.hpp"
#include "sim/fabric.hpp"

namespace mlr::serve {

struct SharedTierConfig {
  int shard_count = 1;              ///< memory-node shards (≥ 1)
  std::size_t max_entries = 1u << 20;  ///< tier capacity (cap drops beyond)
  /// Promotion near-duplicate threshold: an entry whose similarity to its
  /// nearest tier neighbour exceeds this is dropped. 0 disables dedup.
  double tau_dedup = 0.999;
  i64 key_dim = 60;                 ///< dedup-index dimensionality
  ann::IvfParams ivf{};             ///< dedup-index parameters
  sim::FabricSpec fabric{};         ///< the contended cross-session fabric
};

/// Outcome of one promotion batch.
struct PromotionOutcome {
  u64 promoted = 0;     ///< entries accepted into the tier
  u64 dedup_drops = 0;  ///< rejected: near-duplicate within τ_dedup
  u64 cap_drops = 0;    ///< rejected: tier at max_entries
  sim::VTime done = 0;  ///< fabric completion time of the shipment
};

class SharedTier {
 public:
  explicit SharedTier(SharedTierConfig cfg);

  /// Charge fetching the whole tier (per-shard byte split, timed at `scale`×
  /// the resident bytes) to the fabric; returns the completion time a
  /// dispatched session must wait for. An empty tier (or a disabled fabric)
  /// returns `ready`.
  sim::VTime charge_fetch(sim::VTime ready, double scale = 1.0);

  /// Charge shipping the whole offered batch (drops included — the session
  /// ships first, the tier filters on arrival) at `ready`; returns the
  /// fabric completion time.
  sim::VTime charge_store(const std::vector<memo::MemoDb::Entry>& entries,
                          sim::VTime ready, double scale = 1.0);

  /// Fold `entries` (one session's insertions, in insertion order) into the
  /// tier: cap check, then dedup probe (a tier at capacity drops without
  /// probing — the drop is inevitable either way). Touches no timeline —
  /// see the header comment's charge/fold split.
  PromotionOutcome fold(std::vector<memo::MemoDb::Entry> entries);

  /// charge_store + fold in one call (the outcome carries the charge's
  /// completion time). Pass the session's work_scale as `scale`, exactly as
  /// the split calls would.
  PromotionOutcome promote(std::vector<memo::MemoDb::Entry> entries,
                           sim::VTime ready, double scale = 1.0);

  /// The canonical insertion-ordered snapshot sessions import — identical
  /// for every shard count.
  [[nodiscard]] const std::vector<memo::MemoDb::Entry>& snapshot() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] int shard_count() const { return cfg_.shard_count; }
  [[nodiscard]] std::size_t shard_entries(int shard) const {
    return shard_entries_[std::size_t(shard)];
  }
  [[nodiscard]] double shard_bytes(int shard) const {
    return shard_bytes_[std::size_t(shard)];
  }
  [[nodiscard]] double total_bytes() const { return total_bytes_; }
  [[nodiscard]] const sim::Fabric& fabric() const { return fabric_; }
  [[nodiscard]] const SharedTierConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] bool near_duplicate(const memo::MemoDb::Entry& e) const;

  SharedTierConfig cfg_;
  sim::Fabric fabric_;
  std::vector<memo::MemoDb::Entry> entries_;  ///< canonical snapshot order
  std::vector<std::size_t> shard_entries_;    ///< per-shard entry counts
  std::vector<double> shard_bytes_;           ///< per-shard resident bytes
  /// Resident bytes accumulated in fold order — the canonical (shard-count
  /// independent) uplink total, kept separate from the per-shard sums so
  /// fetch completions are bit-identical across shard splits.
  double total_bytes_ = 0;
  /// Per-kind dedup index over tier keys; ids are snapshot positions.
  std::vector<std::unique_ptr<ann::IvfFlatIndex>> index_;
};

}  // namespace mlr::serve
