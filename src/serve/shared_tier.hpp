// serve/shared_tier — the service's shared memo tier behind a transport
// boundary.
//
// Since the net/ transport landed, the tier is an *interface*
// (serve::TierBackend) with two families of implementations:
//
//   * SharedTier (this file) — the in-process tier: entries live in this
//     address space, seeds are handed out as a borrowed snapshot pointer,
//     and the "network" is purely the virtual-clock fabric model.
//   * net::TierClient — the remote tier: the authoritative entries live in
//     a net::TierServer (same process over the deterministic loopback
//     transport, or another process over TCP), every verb travels as a wire
//     frame (net/wire.hpp), and seeds arrive *index-only* — sessions fetch
//     value payloads lazily with GET/GET_BATCH while their miss FFTs run.
//
// The contract every backend honours:
//
//   * Canonical order. The tier holds promoted entries in ONE canonical
//     insertion order (promotion order — job-id order within a drain).
//     Sessions seed from exactly that order, so ids, IVF training sets and
//     every downstream hit decision are bit-identical no matter which
//     backend (or shard count) serves the seed. Sharding decides
//     *placement* — which memory-node link carries an entry's bytes, by
//     content hash memo::entry_shard — never ordering or membership.
//   * Charge/fold split. fold(entries) mutates the composition (cap check,
//     then the dedup probe) and never touches a clock; charge_fetch /
//     charge_store put the bytes on the virtual fabric. The service folds
//     in job-id order (policy-invariant tier) but charges in time order.
//   * Client-side charging. ALL virtual-clock charging happens in the
//     client process, on the backend's own sim::Fabric, from per-shard byte
//     accounting that a remote backend mirrors bit-exactly from the stats
//     block in every PUT/export reply (doubles travel as their IEEE-754
//     bits). Wire frames themselves charge nothing: the data path is
//     pre-paid by the fetch/store charge model, which is what keeps
//     loopback-transport virtual times bit-identical to the in-process
//     tier. Socket transport adds real wall-clock latency only.
//   * Seed handoff. begin_seed() issues the (possibly remote, non-blocking)
//     snapshot request and end_seed() completes it — the service overlaps
//     the gap with per-job setup work. For the in-process tier the pair
//     degenerates to handing out &entries_.
//
// What the virtual clock sees (unchanged by the transport):
//
//   * charge_fetch(ready, scale) — a dispatched job fetches the whole tier
//     before its compute starts: each shard streams its bytes on its own
//     link while the total funnels through the shared uplink; concurrent
//     sessions queue on that uplink. `scale` is the session's work_scale.
//   * charge_store(entries, ready, scale) — a finished job ships its
//     session insertions back; all offered bytes travel (the tier filters
//     on arrival). The per-shard split both sides compute is
//     promotion_wire() — one function, so in-process and remote mirrors
//     can never drift.
//   * fold(entries) — entry by entry in insertion order: the max_entries
//     cap first (at capacity the drop is inevitable — no probe), then the
//     dedup probe (nearest tier key within τ_dedup ⇒ dropped as a
//     near-duplicate; accepted entries join the index immediately, so a
//     batch dedups against itself). Drop classes are counted separately
//     (dedup = compaction, cap = overflow).
#pragma once

#include <memory>
#include <vector>

#include "ann/ann.hpp"
#include "memo/memo_db.hpp"
#include "sim/fabric.hpp"

namespace mlr::serve {

struct SharedTierConfig {
  int shard_count = 1;              ///< memory-node shards (≥ 1)
  std::size_t max_entries = 1u << 20;  ///< tier capacity (cap drops beyond)
  /// Promotion near-duplicate threshold: an entry whose similarity to its
  /// nearest tier neighbour exceeds this is dropped. 0 disables dedup.
  double tau_dedup = 0.999;
  i64 key_dim = 60;                 ///< dedup-index dimensionality
  ann::IvfParams ivf{};             ///< dedup-index parameters
  sim::FabricSpec fabric{};         ///< the contended cross-session fabric
};

/// Outcome of one promotion batch.
struct PromotionOutcome {
  u64 promoted = 0;     ///< entries accepted into the tier
  u64 dedup_drops = 0;  ///< rejected: near-duplicate within τ_dedup
  u64 cap_drops = 0;    ///< rejected: tier at max_entries
  sim::VTime done = 0;  ///< fabric completion time of the shipment
};

/// What end_seed() hands a session: the snapshot to import and — for a
/// remote backend — the lazy value fetcher (null means every entry carries
/// its value payload inline).
struct TierSeed {
  const std::vector<memo::MemoDb::Entry>* entries = nullptr;
  memo::ValueFetcher* values = nullptr;
};

/// The tier abstraction serve::ReconService runs against — see the header
/// comment for the contract. Implemented in-process by SharedTier and over
/// the wire by net::TierClient.
class TierBackend {
 public:
  virtual ~TierBackend() = default;

  /// Issue the seed-snapshot request (non-blocking for a remote backend);
  /// returns a ticket for end_seed. Call only when size() > 0.
  virtual u64 begin_seed() = 0;
  /// Complete the seed request. `storage` receives the decoded snapshot for
  /// a remote backend (and must outlive the session); the in-process tier
  /// ignores it and returns its own entries.
  virtual TierSeed end_seed(u64 ticket,
                            std::vector<memo::MemoDb::Entry>& storage) = 0;

  virtual sim::VTime charge_fetch(sim::VTime ready, double scale) = 0;
  virtual sim::VTime charge_store(
      const std::vector<memo::MemoDb::Entry>& entries, sim::VTime ready,
      double scale) = 0;
  virtual PromotionOutcome fold(std::vector<memo::MemoDb::Entry> entries) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual int shard_count() const = 0;
  [[nodiscard]] virtual std::size_t shard_entries(int shard) const = 0;
  [[nodiscard]] virtual double shard_bytes(int shard) const = 0;
  [[nodiscard]] virtual double total_bytes() const = 0;
  /// The fabric all of this backend's charges land on (contention stats).
  [[nodiscard]] virtual const sim::Fabric& fabric() const = 0;
  /// Is the tier reachable? The in-process tier always is; a remote client
  /// reports false once its transport's reconnect budget is exhausted — the
  /// signal that flips ReconService into degraded cold-session mode.
  [[nodiscard]] virtual bool healthy() const { return true; }
};

/// Per-shard wire byte split of one offered batch at `scale`, plus (via
/// `total`) the batch-order uplink total. The ONE place the split is
/// computed: SharedTier::charge_store and the remote client's mirror both
/// call it, so their fabric charges are bit-identical by construction.
std::vector<double> promotion_wire(
    const std::vector<memo::MemoDb::Entry>& entries, int shard_count,
    double scale, double* total);

/// The in-process tier (see the header comment).
class SharedTier final : public TierBackend {
 public:
  explicit SharedTier(SharedTierConfig cfg);

  /// In-process seed handoff: nothing to prefetch.
  u64 begin_seed() override { return 0; }
  TierSeed end_seed(u64 /*ticket*/,
                    std::vector<memo::MemoDb::Entry>& /*storage*/) override {
    return {&entries_, nullptr};
  }

  /// Charge fetching the whole tier (per-shard byte split, timed at `scale`×
  /// the resident bytes) to the fabric; returns the completion time a
  /// dispatched session must wait for. An empty tier (or a disabled fabric)
  /// returns `ready`.
  sim::VTime charge_fetch(sim::VTime ready, double scale = 1.0) override;

  /// Charge shipping the whole offered batch (drops included — the session
  /// ships first, the tier filters on arrival) at `ready`; returns the
  /// fabric completion time.
  sim::VTime charge_store(const std::vector<memo::MemoDb::Entry>& entries,
                          sim::VTime ready, double scale = 1.0) override;

  /// Fold `entries` (one session's insertions, in insertion order) into the
  /// tier: cap check, then dedup probe (a tier at capacity drops without
  /// probing — the drop is inevitable either way). Touches no timeline —
  /// see the header comment's charge/fold split.
  PromotionOutcome fold(std::vector<memo::MemoDb::Entry> entries) override;

  /// charge_store + fold in one call (the outcome carries the charge's
  /// completion time). Pass the session's work_scale as `scale`, exactly as
  /// the split calls would.
  PromotionOutcome promote(std::vector<memo::MemoDb::Entry> entries,
                           sim::VTime ready, double scale = 1.0);

  /// Preload an EMPTY tier from a full snapshot, bypassing cap and dedup:
  /// the tier reproduces the snapshot exactly (entry i keeps position i).
  /// The deployment handoff behind the SNAPSHOT_IMPORT wire verb.
  void import_snapshot(std::vector<memo::MemoDb::Entry> entries);

  /// The canonical insertion-ordered snapshot sessions import — identical
  /// for every shard count.
  [[nodiscard]] const std::vector<memo::MemoDb::Entry>& snapshot() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] int shard_count() const override { return cfg_.shard_count; }
  [[nodiscard]] std::size_t shard_entries(int shard) const override {
    return shard_entries_[std::size_t(shard)];
  }
  [[nodiscard]] double shard_bytes(int shard) const override {
    return shard_bytes_[std::size_t(shard)];
  }
  [[nodiscard]] double total_bytes() const override { return total_bytes_; }
  [[nodiscard]] const sim::Fabric& fabric() const override { return fabric_; }
  [[nodiscard]] const SharedTierConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] bool near_duplicate(const memo::MemoDb::Entry& e) const;
  void place(const memo::MemoDb::Entry& e);  ///< shard + byte accounting

  SharedTierConfig cfg_;
  sim::Fabric fabric_;
  std::vector<memo::MemoDb::Entry> entries_;  ///< canonical snapshot order
  std::vector<std::size_t> shard_entries_;    ///< per-shard entry counts
  std::vector<double> shard_bytes_;           ///< per-shard resident bytes
  /// Resident bytes accumulated in fold order — the canonical (shard-count
  /// independent) uplink total, kept separate from the per-shard sums so
  /// fetch completions are bit-identical across shard splits.
  double total_bytes_ = 0;
  /// Per-kind dedup index over tier keys; ids are snapshot positions.
  std::vector<std::unique_ptr<ann::IvfFlatIndex>> index_;
};

}  // namespace mlr::serve
