#include "serve/scheduler.hpp"

#include "common/error.hpp"

namespace mlr::serve {

const char* policy_name(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::Fifo: return "fifo";
    case SchedulerPolicy::Priority: return "priority";
    case SchedulerPolicy::FairShare: return "fair";
  }
  return "?";
}

namespace {

/// Shared (arrival, id) tie-break: true when a should run before b.
bool fifo_before(const JobRequest& a, const JobRequest& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}

}  // namespace

std::size_t FifoScheduler::pick(std::span<const QueuedJob> waiting,
                                sim::VTime) {
  MLR_CHECK(!waiting.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting.size(); ++i)
    if (fifo_before(*waiting[i].req, *waiting[best].req)) best = i;
  return best;
}

std::size_t PriorityScheduler::pick(std::span<const QueuedJob> waiting,
                                    sim::VTime) {
  MLR_CHECK(!waiting.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting.size(); ++i) {
    const auto& a = *waiting[i].req;
    const auto& b = *waiting[best].req;
    if (a.priority != b.priority ? a.priority > b.priority
                                 : fifo_before(a, b))
      best = i;
  }
  return best;
}

std::size_t FairShareScheduler::pick(std::span<const QueuedJob> waiting,
                                     sim::VTime) {
  MLR_CHECK(!waiting.empty());
  auto vrun_of = [&](const JobRequest& j) {
    const auto it = vrun_.find(j.tenant);
    return it != vrun_.end() ? it->second : 0.0;
  };
  std::size_t best = 0;
  double best_v = vrun_of(*waiting[0].req);
  for (std::size_t i = 1; i < waiting.size(); ++i) {
    const double v = vrun_of(*waiting[i].req);
    if (v < best_v ||
        (v == best_v && fifo_before(*waiting[i].req, *waiting[best].req))) {
      best = i;
      best_v = v;
    }
  }
  return best;
}

void FairShareScheduler::on_dispatch(const JobRequest& job, sim::VTime,
                                     double slot_vtime) {
  const double w = job.tenant_weight > 0 ? job.tenant_weight : 1.0;
  vrun_[job.tenant] += slot_vtime / w;
}

double FairShareScheduler::tenant_vruntime(const std::string& tenant) const {
  const auto it = vrun_.find(tenant);
  return it != vrun_.end() ? it->second : 0.0;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::Fifo: return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::Priority:
      return std::make_unique<PriorityScheduler>();
    case SchedulerPolicy::FairShare:
      return std::make_unique<FairShareScheduler>();
  }
  return nullptr;
}

}  // namespace mlr::serve
