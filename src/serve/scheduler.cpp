#include "serve/scheduler.hpp"

#include "common/error.hpp"

namespace mlr::serve {

const char* policy_name(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::Fifo: return "fifo";
    case SchedulerPolicy::Priority: return "priority";
    case SchedulerPolicy::FairShare: return "fair";
  }
  return "?";
}

namespace {

/// Shared (queued_at, id) tie-break: true when a should run before b. A
/// fresh job's queued_at is its arrival, a preempted job's is its yield
/// time, so the order is "who has been waiting longest this round".
bool fifo_before(const QueuedJob& a, const QueuedJob& b) {
  if (a.queued_at != b.queued_at) return a.queued_at < b.queued_at;
  return a.req->id < b.req->id;
}

}  // namespace

std::size_t FifoScheduler::pick(std::span<const QueuedJob> waiting,
                                sim::VTime) {
  MLR_CHECK(!waiting.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting.size(); ++i)
    if (fifo_before(waiting[i], waiting[best])) best = i;
  return best;
}

std::size_t PriorityScheduler::pick(std::span<const QueuedJob> waiting,
                                    sim::VTime) {
  MLR_CHECK(!waiting.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting.size(); ++i) {
    const auto& a = *waiting[i].req;
    const auto& b = *waiting[best].req;
    if (a.priority != b.priority ? a.priority > b.priority
                                 : fifo_before(waiting[i], waiting[best]))
      best = i;
  }
  return best;
}

std::size_t FairShareScheduler::pick(std::span<const QueuedJob> waiting,
                                     sim::VTime) {
  MLR_CHECK(!waiting.empty());
  auto vrun_of = [&](const JobRequest& j) {
    const auto it = vrun_.find(j.tenant);
    return it != vrun_.end() ? it->second : 0.0;
  };
  std::size_t best = 0;
  double best_v = vrun_of(*waiting[0].req);
  for (std::size_t i = 1; i < waiting.size(); ++i) {
    const double v = vrun_of(*waiting[i].req);
    if (v < best_v ||
        (v == best_v && fifo_before(waiting[i], waiting[best]))) {
      best = i;
      best_v = v;
    }
  }
  return best;
}

void FairShareScheduler::on_dispatch(const JobRequest& job, sim::VTime,
                                     double slot_vtime) {
  const double w = job.tenant_weight > 0 ? job.tenant_weight : 1.0;
  vrun_[job.tenant] += slot_vtime / w;
}

double FairShareScheduler::tenant_vruntime(const std::string& tenant) const {
  const auto it = vrun_.find(tenant);
  return it != vrun_.end() ? it->second : 0.0;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::Fifo: return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::Priority:
      return std::make_unique<PriorityScheduler>();
    case SchedulerPolicy::FairShare:
      return std::make_unique<FairShareScheduler>();
  }
  return nullptr;
}

}  // namespace mlr::serve
