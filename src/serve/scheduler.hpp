// serve/scheduler — pluggable dispatch-order policies for the reconstruction
// service's job queue.
//
// The service calls pick() whenever an execution slot frees at virtual time
// `now`, passing every admitted job whose arrival ≤ now; the scheduler
// returns the index to dispatch. Because sessions are hermetic, a job's
// slot occupancy (seed fetch + run vtime) is already known when it starts,
// so on_dispatch() charges usage accounting exactly (no estimates): the
// weighted-fair-share policy is classic stride scheduling over per-tenant
// virtual runtime. Every policy breaks ties by (arrival, id), so schedules
// are deterministic and hand-computable — the property
// tests/serve_test.cpp pins down.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "serve/job.hpp"

namespace mlr::serve {

enum class SchedulerPolicy { Fifo, Priority, FairShare };
inline constexpr int kNumPolicies = 3;

const char* policy_name(SchedulerPolicy p);

/// One waiting (admitted, arrived) job as the scheduler sees it.
struct QueuedJob {
  const JobRequest* req = nullptr;
  /// When the job entered the queue *this time*: the arrival for a fresh
  /// job, the yield time for a preempted one awaiting its next segment.
  /// Every policy tie-breaks on (queued_at, id) — a preempted job re-enters
  /// as if it had just arrived, which turns FIFO into round-robin across
  /// preemption quanta and lets later-arriving short jobs overtake a long
  /// job between its segments.
  sim::VTime queued_at = 0;
  bool resumed = false;  ///< true: a preempted job's continuation
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Choose which of `waiting` (non-empty; all arrived by `now`) to run.
  [[nodiscard]] virtual std::size_t pick(std::span<const QueuedJob> waiting,
                                         sim::VTime now) = 0;
  /// The chosen job starts at `start` and will hold its slot for
  /// `slot_vtime` virtual seconds (seed fetch + run) — exact, not an
  /// estimate (see header comment).
  virtual void on_dispatch(const JobRequest& job, sim::VTime start,
                           double slot_vtime) {}
};

/// First-come-first-served: earliest arrival, ties by id.
class FifoScheduler : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fifo"; }
  [[nodiscard]] std::size_t pick(std::span<const QueuedJob> waiting,
                                 sim::VTime now) override;
};

/// Strict priority classes: highest priority first, FIFO within a class.
class PriorityScheduler : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "priority"; }
  [[nodiscard]] std::size_t pick(std::span<const QueuedJob> waiting,
                                 sim::VTime now) override;
};

/// Weighted fair share via per-tenant virtual-runtime (stride) accounting:
/// dispatching a job advances its tenant's vruntime by slot_vtime / weight;
/// pick() always serves the waiting job whose tenant has the smallest
/// vruntime. A tenant with weight w therefore converges to w× the busy
/// share of a weight-1 tenant under saturation. Tenants start at vruntime 0
/// (documented, hand-computable; a long-idle tenant re-enters with whatever
/// credit it accumulated).
class FairShareScheduler : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fair"; }
  [[nodiscard]] std::size_t pick(std::span<const QueuedJob> waiting,
                                 sim::VTime now) override;
  void on_dispatch(const JobRequest& job, sim::VTime start,
                   double slot_vtime) override;
  /// Accumulated virtual runtime of a tenant (0 when never dispatched).
  [[nodiscard]] double tenant_vruntime(const std::string& tenant) const;

 private:
  std::unordered_map<std::string, double> vrun_;
};

std::unique_ptr<Scheduler> make_scheduler(SchedulerPolicy p);

}  // namespace mlr::serve
