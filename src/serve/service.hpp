// serve/service — ReconService, the multi-tenant reconstruction service.
//
// The serving model (docs/serving.md has the long form):
//
//   * One service = one shared geometry + ONE cross-job key encoder + a
//     *shared memo tier* (serve::SharedTier — promoted MemoDb entries on
//     `shard_count` memory-node shards behind one contended sim::Fabric) +
//     `slots` execution slots (one simulated GPU each, or `gpus_per_job`
//     GPUs via cluster::Cluster) + a host worker pool every session shares.
//   * Lifecycle: configure → prime() → submit()* → drain(). prime() trains
//     the encoder and seeds the shared tier by running a canonical warm-up
//     workload back-to-back; drain() runs the event loop on the sim virtual
//     clock: jobs arrive, pass admission control (waiting jobs beyond
//     max_queue are rejected), wait in the JobQueue, and are dispatched by
//     the pluggable Scheduler whenever a slot frees and an admitted job has
//     arrived.
//   * Who charges fabric time (all of it on the event-loop thread, with
//     monotone ready times — deterministic per policy): at dispatch the
//     service charges the *seed fetch* — the whole tier crosses the fabric
//     (shard links in parallel, shared uplink serialized across sessions),
//     timed at the job's work_scale like every other wire charge — and the
//     session's compute starts only at its completion, so
//     finish = start + seed_fetch_s + run_vtime and concurrent sessions
//     interfere on the virtual clock. Promotion *shipments* are charged in
//     (finish, id) order, interleaved with the fetch charges — a shipment
//     enters the fabric the moment its job finishes, so it contends with
//     every later dispatch's fetch. prime() is an offline warm-up and
//     charges nothing: the fabric clock starts with traffic. The fabric
//     carries over between drains: this epoch's promotion traffic delays
//     the next epoch's fetches.
//   * Promotion order and dedup semantics: separate from the shipment
//     charges, the tier *folds* each job's entries in job-id order (the
//     charge/fold split of serve/shared_tier.hpp), which makes the tier's
//     evolution policy-invariant; each entry meets the max_shared_entries
//     cap first (at capacity it drops unprobed, shared_cap_drops) and the
//     dedup probe second (nearest tier key within τ_dedup ⇒ dropped as a
//     near-duplicate, MemoCounters::shared_dedup_drops).
//   * Cross-drain approximation: shipments still pending when a drain ends
//     are charged then, at their finish times. A later drain whose early
//     dispatches precede those finishes sees that traffic as already
//     queued — an ordering error bounded by the shipments' (small) transfer
//     durations, accepted so every drain leaves the fabric fully charged.
//   * Shared-memo sessions: every dispatched job runs in a hermetic session
//     — a fresh ExecutionContext whose MemoDb is seeded from the tier's
//     canonical insertion-order snapshot and which keys through the
//     service's one encoder. Hits on seeded entries are cross-job reuse
//     (MemoCounters::db_hit_shared). Hermetic sessions are what make
//     serving reproducible: a job's output and run vtime depend only on
//     (request, shared tier) — never on scheduling policy, thread count,
//     pipeline depth, queue neighbours or shard count (sharding moves
//     bytes, not entries) — so latency CDFs are comparable across policies
//     and fabric settings while outputs stay bit-identical.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "admm/solver.hpp"
#include "common/stats.hpp"
#include "core/execution_context.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "serve/shared_tier.hpp"

namespace mlr::net {
class TierServer;
class Transport;
}

namespace mlr::serve {

/// Which carrier serves the shared memo tier (see serve/shared_tier.hpp's
/// backend matrix and src/net/):
///   * Inproc   — the tier lives in this address space; no wire traffic.
///   * Loopback — a net::TierServer in this process behind the deterministic
///     loopback transport: every verb travels as real wire frames
///     (byte-identical to the socket path), sessions seed index-only and
///     fetch values lazily. Outputs, records, fingerprints and virtual
///     times are bit-identical to Inproc.
///   * Socket   — per-shard TCP connections to a TierServer; `tier_address`
///     names it ("host:port"), empty spawns one in-process on a localhost
///     ephemeral port. Outputs identical to Inproc; wall times differ.
/// Loopback/Socket require MLR_BUILD_NET (on by default).
enum class TierTransport { Inproc, Loopback, Socket };

/// Deadline admission (docs/serving.md "Admission and preemption"):
///   * None      — legacy behaviour: only the queue cap rejects.
///   * Reject    — jobs whose estimated finish misses their deadline are
///     rejected at arrival (never touch a slot, never charge the fabric).
///   * Downgrade — infeasible jobs run anyway but are flipped to
///     SloClass::BestEffort at arrival (counted, excluded from the admitted
///     deadline-hit accounting by consumers that honour the class).
/// Decisions are made at the job's *arrival instant on the virtual clock*
/// from policy-invariant inputs only — the arrival-ordered stream, per-
/// scenario run-vtime estimates learned from prime()/previous drains, the
/// uncontended fetch estimate (tier bytes × work_scale over the uplink) and
/// a private model of slot availability advanced by those same estimates —
/// so the admitted/rejected/downgraded id sets are identical across
/// scheduling policies, thread counts and tier transports.
enum class AdmissionMode : int { None = 0, Reject = 1, Downgrade = 2 };

inline const char* admission_mode_name(AdmissionMode m) {
  switch (m) {
    case AdmissionMode::None: return "none";
    case AdmissionMode::Reject: return "reject";
    case AdmissionMode::Downgrade: return "downgrade";
  }
  return "?";
}

struct ServiceConfig {
  // Shared problem geometry: every job of one service reconstructs on the
  // same grid and chunking, so keys/values are comparable across jobs.
  i64 n = 14;
  i64 chunk_size = 4;

  // Capacity.
  int slots = 2;           ///< jobs running concurrently (virtual time)
  int gpus_per_job = 1;    ///< >1: each session is a cluster::Cluster
  unsigned threads = 0;    ///< host worker pool shared by all sessions
  i64 overlap_slices = 4;  ///< DB/compute overlap inside each session
  /// Cross-stage pipeline depth inside each hermetic session (stage s's DB
  /// insertions drain under stage s+1's encode/probe/score). Sessions stay
  /// hermetic: tails settle before a job's insertions are exported, so
  /// promotion ordering — and therefore the shared tier — is unchanged for
  /// every depth.
  i64 pipeline_depth = 2;
  /// Tail-drainer lanes inside each session (per-OpKind tail sharding; see
  /// StageExecutor::set_tail_lanes; 0 = automatic — min(kNumOpKinds,
  /// hardware cores)). Exports are kind-major and ids are per-kind
  /// sequences, so the tier evolution is unchanged for every lane count.
  i64 tail_lanes = 0;

  // Memo tier.
  bool memoize = true;
  memo::CacheKind cache = memo::CacheKind::Private;
  i64 cache_shards = 1;
  int encoder_train_steps = 120;

  // Admission control + shared-tier growth.
  std::size_t max_queue = 64;       ///< waiting jobs beyond this are rejected
  /// Deadline-aware admission at arrival (see AdmissionMode). Requires
  /// run-vtime estimates — scenarios never seen by prime()/a previous drain
  /// are always admitted (no estimate, no grounds to reject).
  AdmissionMode admission = AdmissionMode::None;
  /// Feasibility margin: a job passes when
  ///   est_start + admission_margin × (est_fetch + est_run) ≤ deadline.
  /// >1 rejects more (headroom for estimate error), <1 gambles.
  double admission_margin = 1.0;
  std::size_t max_shared_entries = 1u << 20;  ///< promotion cap
  bool promote_after_drain = true;

  // Stage-boundary preemption (docs/serving.md). Requires gpus_per_job==1.
  /// >0 enables preemption: a running job offers to yield its slot at the
  /// first outer-iteration boundary after this many virtual seconds of
  /// segment service time — and actually yields only when someone is
  /// waiting with no other slot free (otherwise it keeps running in place,
  /// no checkpoint cost). The preempted session checkpoints (solver state +
  /// own DB entries + cache image + counters + virtual clocks), requeues at
  /// its yield time, and a later dispatch rebuilds it bit-identically —
  /// outputs, records, cache fingerprints and run_vtime never change, only
  /// the schedule does. 0 = off.
  double preempt_quantum_s = 0.0;
  /// Test knob: yield at EVERY eligible stage boundary, contended or not —
  /// forces each job through the full checkpoint/resume path.
  bool preempt_force = false;

  // Shared-tier sharding + the cross-session fabric (serve/shared_tier.hpp,
  // sim/fabric.hpp). Sharding never changes outputs — only which link
  // carries which bytes; the fabric moves virtual time only.
  int shard_count = 1;     ///< memory-node shards holding the tier
  /// Promotion near-duplicate threshold (0 disables the dedup probe). The
  /// default only rejects effectively-identical chunks — far above any
  /// scenario's query τ, so dedup compacts the tier without starving reuse.
  double tau_dedup = 0.999;
  /// Fabric the seed fetches and promotions are charged on. Disable to
  /// restore the pre-fabric network-isolated sessions (zero charges). With
  /// a remote transport the fabric still lives client-side — the charge
  /// model is transport-invariant (shared_tier.hpp's client-side charging).
  sim::FabricSpec fabric{};
  /// How the shared tier is reached (see TierTransport above).
  TierTransport transport = TierTransport::Inproc;
  /// Socket transport only: "host:port" of an external net::TierServer;
  /// empty spawns one inside this process on 127.0.0.1.
  std::string tier_address;
  /// Wall-clock bound on every remote-tier wait (seed export, value fetch,
  /// promotion PUT). With net_retry_max == 0 a timeout surfaces as a sticky
  /// net::NetError; with a retry budget it fails per-request and the client
  /// re-issues the read before giving up.
  double net_timeout_s = 30.0;
  /// Reconnect budget of the remote-tier transport: up to this many reopen
  /// attempts per carrier fault, with bounded exponential backoff starting
  /// at net_backoff_ms. 0 (default) preserves the sticky-NetError contract;
  /// > 0 enables the recovery ladder — reconnect + idempotent replay, then
  /// per-job failure isolation, then degraded cold-session mode once the
  /// budget is exhausted (recovery is re-probed at each later dispatch).
  int net_retry_max = 0;
  double net_backoff_ms = 10.0;
  /// Test/chaos hook: called right before each job is dispatched (after
  /// scheduling, before the seed fetch). A throw here fails that one job —
  /// the hook is how chaos benchmarks kill the tier mid-run and how tests
  /// inject arbitrary session failures. Never called for rejected jobs.
  std::function<void(const JobRequest&)> dispatch_hook;

  // Scheduling.
  SchedulerPolicy policy = SchedulerPolicy::Fifo;

  /// >0 caps every scenario's outer iterations (tests / CI smoke).
  int iters_cap = 0;

  /// Non-empty: enable the process-global trace recorder (obs/trace.hpp)
  /// and write the Chrome-trace JSON here at the end of every drain().
  /// Tracing never feeds back into computation, so outputs, records,
  /// fingerprints and virtual times are bit-identical with it on or off.
  std::string trace_path;
};

struct TenantStats {
  u64 jobs = 0;
  double busy_s = 0;   ///< virtual seconds of slot time consumed
  Samples queue_wait;
};

/// Aggregate serving metrics (cumulative across drains).
struct ServiceStats {
  u64 submitted = 0, completed = 0, rejected = 0, deadline_missed = 0;
  /// Deadline admission outcomes (subset of / in addition to `rejected`):
  /// jobs the controller rejected as deadline-infeasible, and jobs it
  /// downgraded to SloClass::BestEffort instead.
  u64 admission_rejected = 0, admission_downgraded = 0;
  /// Stage-boundary yields (each resumed exactly once later).
  u64 preemptions = 0;
  /// Dispatched jobs whose session threw (outcome == JobOutcome::Failed);
  /// the service released their slot and kept running.
  u64 jobs_failed = 0;
  /// Times the service flipped into degraded cold-session mode (tier
  /// declared down after the reconnect budget was exhausted).
  u64 degraded_spans = 0;
  Samples queue_wait, turnaround, run_vtime;  // admitted jobs only
  // Memoization outcomes summed over completed jobs.
  u64 lookups = 0, cache_hits = 0, db_hits = 0, shared_hits = 0, misses = 0;
  sim::VTime makespan = 0;  ///< latest finish seen
  double busy_s = 0;        ///< slot occupancy (seed fetch + run) summed
  u64 promoted = 0;             ///< entries promoted into the shared tier
  u64 shared_dedup_drops = 0;   ///< promotions rejected as near-duplicates
  u64 shared_cap_drops = 0;     ///< promotions dropped at max_shared_entries
  double fabric_fetch_s = 0;    ///< virtual seconds jobs spent fetching seeds
  double fabric_promote_s = 0;  ///< virtual seconds shipping promotions
  std::map<std::string, TenantStats> tenants;

  /// Fraction of memo lookups served by another job's work.
  [[nodiscard]] double cross_job_hit_rate() const {
    return lookups > 0 ? double(shared_hits) / double(lookups) : 0.0;
  }
  [[nodiscard]] double utilization(int slots) const {
    return makespan > 0 ? busy_s / (double(slots) * makespan) : 0.0;
  }
};

class ReconService {
 public:
  explicit ReconService(ServiceConfig cfg);
  ~ReconService();

  ReconService(const ReconService&) = delete;
  ReconService& operator=(const ReconService&) = delete;

  /// Build the shared tier: run `warm` back-to-back (request order, virtual
  /// time 0) with immediate promotion, training the cross-job encoder on
  /// the first job. Required before drain() when memoize is on — otherwise
  /// the first scheduled job would train the encoder and outputs would
  /// depend on dispatch order. Returns the warm jobs' stats (not counted in
  /// stats()).
  std::vector<JobStats> prime(std::span<const JobRequest> warm);

  /// Enqueue a job for the next drain(); assigns and returns its id.
  /// Admission control runs at *arrival* (virtual time) inside drain(), not
  /// here — a submitted job can still be rejected if the queue is full when
  /// it arrives.
  u64 submit(JobRequest req);
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Run the event loop until the queue is empty; returns per-job stats in
  /// id order (rejected jobs included, admitted=false). Session insertions
  /// are promoted into the shared tier afterwards in job-id order —
  /// deterministic for every scheduling policy.
  std::vector<JobStats> drain();

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t shared_entries() const { return tier_->size(); }
  /// The tier backend (shard occupancy, fabric contention counters) —
  /// in-process or a remote client, per ServiceConfig::transport.
  [[nodiscard]] const TierBackend& tier() const { return *tier_; }
  /// Mutable backend access (tests inject transport faults through it).
  [[nodiscard]] TierBackend& tier_mut() { return *tier_; }
  /// In degraded cold-session mode right now (tier declared down; see
  /// ServiceConfig::net_retry_max)?
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] const lamino::Operators& ops() const { return ops_; }
  /// Ground truth for a scenario/seed (error accounting, tests).
  const Array3D<cfloat>& ground_truth(Scenario s, u64 seed);

 private:
  struct Problem {
    Array3D<cfloat> truth;
    Array3D<cfloat> d;  ///< simulated projections
  };
  const Problem& problem_for(Scenario s, u64 seed);

  /// A preempted job between segments: everything needed to rebuild its
  /// hermetic session bit-identically at the next dispatch. The tier is
  /// constant during a drain (folds happen post-drain), so the resumed
  /// session re-fetches the *identical* seed snapshot; on top of it the
  /// checkpoint re-installs the session's own insertions, cache contents,
  /// outcome counters and virtual timelines, and the solver continues from
  /// its saved outer-iteration boundary.
  struct PausedJob {
    JobRequest req;  ///< owned copy (the queue points into this)
    admm::SolverCheckpoint ck;
    std::vector<memo::MemoDb::Entry> own_entries;  ///< session's inserts
    memo::CacheImage cache;
    memo::MemoCounters counters;
    ExecutionContext::SimClockState clocks;
    sim::VTime yield_time = 0;   ///< service-clock instant the slot freed
    sim::VTime first_start = 0;  ///< dispatch time of the first segment
    double seed_fetch_total = 0; ///< fetch seconds across segments so far
    u64 preemptions = 0;
    std::vector<int> slots;      ///< slots visited by earlier segments
  };

  struct RunOutcome {
    JobStats st;          ///< valid when !paused
    bool paused = false;
    PausedJob paused_job; ///< valid when paused
  };

  /// Execute one job segment in a hermetic session: dispatched at `start`,
  /// compute begins at `seed_ready` (the charged fabric fetch completion;
  /// == start when nothing was fetched). `own_entries` (nullable) receives
  /// the session's own DB insertions on completion. `resume` (nullable)
  /// continues a preempted session from its checkpoint. `contended`
  /// (nullable) is consulted at quantum-expired stage boundaries with the
  /// would-be yield instant on the service clock; preemption triggers when
  /// it returns true (or always, under preempt_force).
  RunOutcome run_job(const JobRequest& req, sim::VTime start,
                     sim::VTime seed_ready,
                     std::vector<memo::MemoDb::Entry>* own_entries,
                     bool cold = false, PausedJob* resume = nullptr,
                     const std::function<bool(sim::VTime)>& contended = {});
  /// Build a transport per cfg_.transport (Loopback/Socket). Used at
  /// construction and by the degraded-mode recovery probe.
  std::unique_ptr<net::Transport> make_transport();
  /// Flip into degraded cold-session mode (counted + traced). Idempotent
  /// per span: a second fault while already degraded is not a new span.
  void enter_degraded(const std::string& why);
  /// Degraded-mode recovery probe, run at dispatch time: rebuild the
  /// transport, re-ship buffered promotions through the normal fold path,
  /// and leave degraded mode. A probe that fails leaves everything as it
  /// was — the next dispatch probes again.
  void try_tier_recovery();
  /// Virtual-clock multiplier of a scenario's wire/compute charges.
  [[nodiscard]] double work_scale_for(Scenario s) const;
  /// Admission's uncontended seed-fetch estimate at a scenario's work
  /// scale: fabric latency + tier bytes × scale / uplink bandwidth. 0 when
  /// nothing would be fetched (memoize off, fabric off, or empty tier).
  [[nodiscard]] double estimate_fetch_s(double scale) const;
  /// Charge the seed fetch for a job dispatched at `t`; returns when the
  /// session may start computing.
  sim::VTime charge_seed_fetch(sim::VTime t, double scale);
  /// Fold one job's insertions into the tier (no clock charges — shipments
  /// are charged separately in finish order) and account the outcome into
  /// service stats and — when non-null — the job's own record
  /// (`st->promoted`, `st->memo.shared_*_drops`).
  void fold_promotion(JobStats* st, std::vector<memo::MemoDb::Entry> entries);
  void account(const JobStats& st);

  ServiceConfig cfg_;
  lamino::Geometry geom_;
  lamino::Operators ops_;
  std::shared_ptr<encoder::EncoderRegistry> registry_;
  std::unique_ptr<ThreadPool> pool_;  ///< shared by sessions (null = global)
  /// In-process TierServer backing the Loopback transport (and Socket with
  /// an empty tier_address). Declared before tier_: the client holds a raw
  /// pointer/connection into it and must be destroyed first.
  std::unique_ptr<net::TierServer> server_;
  std::unique_ptr<TierBackend> tier_;  ///< the shared memo tier backend
  /// Degraded cold-session mode: the remote tier is down (reconnect budget
  /// exhausted). Jobs run unseeded, promotions buffer locally in job-id
  /// order and re-ship through the normal fold path on recovery.
  bool degraded_ = false;
  std::vector<std::pair<u64, std::vector<memo::MemoDb::Entry>>>
      cold_promotions_;
  /// Socket-transport dial target (recovery probes re-dial it).
  std::string tier_host_;
  std::uint16_t tier_port_ = 0;
  std::vector<JobRequest> queue_;          ///< submitted, not yet drained
  std::vector<sim::VTime> slot_free_;      ///< per-slot next-free vtime
  /// Admission's *private* model of slot availability — advanced only by
  /// the controller's own estimates at arrival instants, never read from
  /// slot_free_/queue state, so decisions are policy-invariant. Persists
  /// across drains (like slot_free_).
  std::vector<sim::VTime> adm_free_;
  /// Per-scenario run-vtime estimate: the max run_vtime observed across
  /// prime() and completed drains (run vtimes are policy-invariant, so
  /// this is too). 0 = never seen, admission has no grounds to reject.
  std::array<double, std::size_t(kNumScenarios)> est_run_{};
  u64 next_id_ = 1;
  std::unique_ptr<Scheduler> sched_;
  ServiceStats stats_;
  std::map<std::pair<int, u64>, Problem> problems_;  ///< (scenario,seed) →
};

}  // namespace mlr::serve
