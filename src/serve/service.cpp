#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#ifdef MLR_HAS_NET
#include "net/tier_client.hpp"
#include "net/tier_server.hpp"
#endif

namespace mlr::serve {

namespace {

/// Serving metrics, all on the *virtual* clock (the domain jobs queue and
/// run in); the wall-clock side of the same story lives in the stage/net
/// histograms.
struct ServeMetrics {
  obs::Counter& jobs_completed;
  obs::Counter& jobs_rejected;
  obs::Counter& admission_rejected;
  obs::Counter& admission_downgraded;
  obs::Counter& preemptions;
  obs::Counter& tier_promoted;
  obs::Counter& tier_dedup_drops;
  obs::Counter& tier_cap_drops;
  obs::Histogram& queue_wait_vs;
  obs::Histogram& turnaround_vs;
  obs::Histogram& seed_fetch_vs;
  obs::Histogram& slot_busy_vs;
  static ServeMetrics& get() {
    auto& m = obs::metrics();
    static ServeMetrics sm{
        m.counter("serve.jobs_completed"),
        m.counter("serve.jobs_rejected"),
        m.counter("serve.admission_rejected"),
        m.counter("serve.admission_downgraded"),
        m.counter("serve.preemptions"),
        m.counter("tier.promoted"),
        m.counter("tier.dedup_drops"),
        m.counter("tier.cap_drops"),
        m.histogram("serve.queue_wait_vs", obs::vtime_edges_s()),
        m.histogram("serve.turnaround_vs", obs::vtime_edges_s()),
        m.histogram("serve.seed_fetch_vs", obs::vtime_edges_s()),
        m.histogram("serve.slot_busy_vs", obs::vtime_edges_s()),
    };
    return sm;
  }
};

}  // namespace

ReconService::ReconService(ServiceConfig cfg)
    : cfg_(cfg), geom_(lamino::Geometry::cube(cfg.n)), ops_(geom_) {
  MLR_CHECK(cfg_.n >= 8 && cfg_.chunk_size >= 1);
  MLR_CHECK(cfg_.slots >= 1 && cfg_.gpus_per_job >= 1);
  MLR_CHECK_MSG(cfg_.max_queue >= 1, "admission needs room for one waiter");
  MLR_CHECK_MSG(cfg_.gpus_per_job == 1 ||
                    (cfg_.preempt_quantum_s <= 0 && !cfg_.preempt_force),
                "stage-boundary preemption requires gpus_per_job == 1");
  MLR_CHECK(cfg_.admission_margin > 0);
  const memo::MemoConfig mc{};  // encoder geometry defaults (key_dim, hw)
  registry_ = std::make_shared<encoder::EncoderRegistry>(
      encoder::EncoderConfig{.input_hw = mc.encoder_hw,
                             .embed_dim = mc.key_dim});
  if (cfg_.threads > 0) pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  SharedTierConfig tc;
  tc.shard_count = cfg_.shard_count;
  tc.max_entries = cfg_.max_shared_entries;
  tc.tau_dedup = cfg_.tau_dedup;
  tc.key_dim = mc.key_dim;
  tc.fabric = cfg_.fabric;
  if (cfg_.transport == TierTransport::Inproc) {
    tier_ = std::make_unique<SharedTier>(tc);
  } else {
#ifdef MLR_HAS_NET
    // Remote tier: the authoritative entries live in a TierServer (whose
    // own fabric is forced off — all virtual charging happens here, on the
    // client's fabric, so clocks are transport-invariant).
    if (cfg_.transport == TierTransport::Loopback) {
      server_ = std::make_unique<net::TierServer>(tc);
    } else {
      tier_host_ = "127.0.0.1";
      if (cfg_.tier_address.empty()) {
        server_ = std::make_unique<net::TierServer>(tc);
        tier_port_ = server_->listen_and_serve();
      } else {
        const auto colon = cfg_.tier_address.rfind(':');
        MLR_CHECK_MSG(colon != std::string::npos,
                      "tier_address must be host:port");
        tier_host_ = cfg_.tier_address.substr(0, colon);
        const auto port_str = cfg_.tier_address.substr(colon + 1);
        unsigned long parsed = 0;
        const bool digits =
            !port_str.empty() && port_str.size() <= 5 &&
            std::all_of(port_str.begin(), port_str.end(), [](unsigned char c) {
              return c >= '0' && c <= '9';
            });
        if (digits) parsed = std::stoul(port_str);
        MLR_CHECK_MSG(digits && parsed >= 1 && parsed <= 65535,
                      "tier_address port must be 1-65535, got \"" +
                          cfg_.tier_address + "\"");
        tier_port_ = std::uint16_t(parsed);
      }
    }
    tier_ = std::make_unique<net::TierClient>(
        make_transport(), cfg_.fabric, cfg_.shard_count, cfg_.net_timeout_s,
        net::RetrySpec{cfg_.net_retry_max, cfg_.net_backoff_ms});
#else
    MLR_CHECK_MSG(false,
                  "remote tier transport requested but the build has "
                  "MLR_BUILD_NET=OFF");
#endif
  }
  slot_free_.assign(std::size_t(cfg_.slots), 0.0);
  adm_free_.assign(std::size_t(cfg_.slots), 0.0);
  sched_ = make_scheduler(cfg_.policy);
  if (!cfg_.trace_path.empty()) obs::TraceRecorder::instance().enable();
}

ReconService::~ReconService() = default;

std::unique_ptr<net::Transport> ReconService::make_transport() {
#ifdef MLR_HAS_NET
  if (cfg_.transport == TierTransport::Loopback)
    return std::make_unique<net::LoopbackTransport>(server_.get(),
                                                    cfg_.shard_count);
  return net::SocketTransport::connect_tcp(tier_host_, tier_port_,
                                           cfg_.shard_count);
#else
  MLR_CHECK_MSG(false, "no net support in this build");
  return nullptr;
#endif
}

void ReconService::enter_degraded(const std::string& why) {
  if (degraded_) return;
  degraded_ = true;
  ++stats_.degraded_spans;
  obs::metrics().counter("serve.degraded_spans").add();
  obs::trace_instant("serve.degraded", "serve", stats_.degraded_spans);
  (void)why;
}

void ReconService::try_tier_recovery() {
#ifdef MLR_HAS_NET
  auto* client = dynamic_cast<net::TierClient*>(tier_.get());
  if (client == nullptr) {
    degraded_ = false;
    return;
  }
  try {
    client->reconnect(make_transport());
    // Re-ship the promotions buffered while cold, in job-id order — the
    // same fold path (and therefore the same tier evolution) a healthy
    // drain would have used. Entries are copied so a fold interrupted by a
    // relapse keeps its batch buffered for the next probe. Exact duplicates
    // of a PUT that did land before the outage are absorbed by the tier's
    // dedup probe.
    while (!cold_promotions_.empty()) {
      auto& [id, entries] = cold_promotions_.front();
      (void)id;
      fold_promotion(nullptr, entries);
      cold_promotions_.erase(cold_promotions_.begin());
    }
    degraded_ = false;
    obs::trace_instant("serve.recovered", "serve", stats_.degraded_spans);
  } catch (const net::NetError&) {
    // Tier still down (or it relapsed mid-re-ship): stay degraded; the
    // next dispatch probes again.
  }
#else
  degraded_ = false;
#endif
}

const ReconService::Problem& ReconService::problem_for(Scenario s, u64 seed) {
  const auto key = std::make_pair(int(s), seed);
  auto it = problems_.find(key);
  if (it != problems_.end()) return it->second;
  const auto prof = scenario_profile(s);
  Problem pb;
  pb.truth = lamino::to_complex(
      lamino::make_phantom(geom_.object_shape(), prof.phantom, seed));
  pb.d = lamino::simulate_projections(ops_, pb.truth, prof.noise, seed + 1);
  return problems_.emplace(key, std::move(pb)).first->second;
}

const Array3D<cfloat>& ReconService::ground_truth(Scenario s, u64 seed) {
  return problem_for(s, seed).truth;
}

ReconService::RunOutcome ReconService::run_job(
    const JobRequest& req, sim::VTime start, sim::VTime seed_ready,
    std::vector<memo::MemoDb::Entry>* own_entries, bool cold,
    PausedJob* resume, const std::function<bool(sim::VTime)>& contended) {
  // The per-job trace tree: "job" wraps the whole synchronous session;
  // setup/solve/export children plus the net layer's async seed-export and
  // GET_BATCH pairs hang under it on the same track.
  MLR_TRACE_SPAN("job", "serve", req.id);
  // Issue the (possibly remote) seed-snapshot request FIRST: for a wire
  // backend the index-only export round-trip overlaps all the per-job setup
  // below; end_seed() harvests it just before the session is built. The
  // in-process tier's begin/end pair degenerates to a pointer handoff.
  // A cold (degraded-mode) session skips the seed entirely — the tier is
  // unreachable; the job still runs, just without cross-job reuse.
  const bool seeded = cfg_.memoize && !cold && tier_->size() > 0;
  const u64 seed_ticket = seeded ? tier_->begin_seed() : 0;

  const auto prof = scenario_profile(req.scenario);
  const auto& pb = problem_for(req.scenario, req.seed);
  const double ws = work_scale_for(req.scenario);

  memo::MemoConfig mc;
  mc.enable = cfg_.memoize;
  mc.tau = prof.tau;
  mc.cache = cfg_.cache;
  mc.cache_shards = cfg_.cache_shards;
  mc.work_scale = ws;
  memo::MemoDbConfig dbc;
  dbc.tau = prof.tau;
  dbc.value_scale = ws;
  dbc.overlap_slices = cfg_.overlap_slices;

  admm::AdmmConfig ac;
  ac.outer_iters =
      cfg_.iters_cap > 0 ? std::min(prof.iters, cfg_.iters_cap) : prof.iters;
  ac.inner_iters = prof.inner_iters;
  ac.alpha = prof.alpha;
  ac.chunk_size = cfg_.chunk_size;
  ac.work_scale = ws;
  ac.encoder_train_steps = cfg_.encoder_train_steps;

  JobStats st;
  st.id = req.id;
  st.tenant = req.tenant;
  st.scenario = req.scenario;
  st.priority = req.priority;
  st.slo = req.slo;
  st.arrival = req.arrival;
  st.start = start;
  st.seed_fetch_s = seed_ready - start;
  st.degraded = cold;

  // Hermetic session: fresh devices/net/memory node (virtual time starts at
  // 0 inside the session; the service adds `seed_ready`, the charged fabric
  // completion of its seed fetch), the service's one encoder, and a MemoDb
  // seeded from the tier's canonical insertion-order snapshot. A remote
  // backend hands the snapshot over index-only plus a value fetcher.
  std::vector<memo::MemoDb::Entry> seed_storage;
  TierSeed seed{};
  if (seeded) {
    MLR_TRACE_SPAN("job.seed_harvest", "serve", req.id);
    seed = tier_->end_seed(seed_ticket, seed_storage);
  }
  std::unique_ptr<ExecutionContext> ctx;
  std::unique_ptr<cluster::Cluster> clu;
  memo::StageExecutor* exec = nullptr;
  memo::MemoDb* db = nullptr;
  {
    MLR_TRACE_SPAN("job.session_build", "serve", req.id);
    if (cfg_.gpus_per_job <= 1) {
      ExecutionOptions eo;
      eo.gpus = 1;
      eo.memo = mc;
      eo.db = dbc;
      eo.pipeline_depth = cfg_.pipeline_depth;
      eo.tail_lanes = cfg_.tail_lanes;
      eo.registry = registry_;
      eo.db_seed = seed.entries;
      eo.db_values = seed.values;
      eo.shared_pool = pool_.get();
      ctx = std::make_unique<ExecutionContext>(ops_, eo);
      exec = &ctx->executor();
      db = ctx->db();
    } else {
      cluster::ClusterSpec cs;
      cs.gpus = cfg_.gpus_per_job;
      cs.registry = registry_;
      cs.db_seed = seed.entries;
      cs.db_values = seed.values;
      clu = std::make_unique<cluster::Cluster>(ops_, cs, mc, dbc);
      if (pool_ != nullptr) clu->executor().set_pool(pool_.get());
      clu->executor().set_pipeline_depth(cfg_.pipeline_depth);
      clu->executor().set_tail_lanes(cfg_.tail_lanes);
      exec = &clu->executor();
      db = cfg_.memoize ? &clu->db() : nullptr;
    }
  }

  // Resumed segment: re-install the checkpointed session state on top of
  // the freshly seeded context. The tier is constant during a drain (folds
  // are post-drain), so the re-fetched seed is the *identical* snapshot the
  // first segment saw; replaying the session's own insertions above it
  // continues the per-kind id sequences exactly, and restoring the cache
  // image, outcome counters and virtual timelines makes the rebuilt session
  // indistinguishable from one that never yielded.
  if (resume != nullptr) {
    MLR_TRACE_SPAN("job.session_restore", "serve", req.id);
    if (db != nullptr && !resume->own_entries.empty())
      db->restore_session_entries(resume->own_entries);
    if (ctx != nullptr) {
      ctx->wrapper(0).restore_cache(resume->cache);
      ctx->wrapper(0).set_counters(resume->counters);
      ctx->restore_clock(resume->clocks);
    }
  }

  admm::SolverCheckpoint ck;
  if (resume != nullptr) ck = std::move(resume->ck);
  const sim::VTime seg_t0 = ck.valid ? ck.t : 0.0;
  admm::YieldFn yield_fn;
  if ((cfg_.preempt_quantum_s > 0 || cfg_.preempt_force) && contended) {
    yield_fn = [&](int, sim::VTime tn) {
      if (cfg_.preempt_force) return true;
      if (tn - seg_t0 < cfg_.preempt_quantum_s) return false;
      // Map the session-local instant onto the service clock: compute
      // started at seed_ready, this segment's solver clock started at
      // seg_t0.
      return contended(seed_ready + (tn - seg_t0));
    };
  }

  admm::Solver solver(*exec, ac);
  admm::SolveResult res;
  const bool finished = [&] {
    MLR_TRACE_SPAN("job.solve", "serve", req.id);
    return solver.solve_resumable(pb.d, ck, yield_fn, &res);
  }();

  if (!finished) {
    // Yielded at a stage boundary: checkpoint everything needed to rebuild
    // the session bit-identically and hand the slot back.
    RunOutcome ro;
    ro.paused = true;
    auto& pj = ro.paused_job;
    pj.req = req;
    pj.yield_time = seed_ready + (ck.t - seg_t0);
    pj.ck = std::move(ck);
    if (db != nullptr) {
      MLR_TRACE_SPAN("job.export", "serve", req.id);
      pj.own_entries = db->export_entries(/*session_only=*/true);
    }
    if (ctx != nullptr) {
      pj.cache = ctx->wrapper(0).cache_image();
      pj.counters = ctx->wrapper(0).counters();
      pj.clocks = ctx->clock_state();
    }
    return ro;
  }

  st.run_vtime = res.total_vtime;
  st.finish = seed_ready + (res.total_vtime - seg_t0);
  // The session's virtual completion on the service timeline — the second
  // clock domain, exported as a counter track against the wall-clock axis.
  obs::trace_counter("vclock.service", st.finish);
  st.deadline_met = req.deadline <= 0 || st.finish <= req.deadline;
  st.memo = exec->counters();
  st.cache_hit_rate = exec->cache_stats().hit_rate();
  st.error_vs_truth = relative_error<cfloat>(pb.truth.span(), res.u.span());
  st.output_fingerprint = fnv1a_bytes(res.u.data(), std::size_t(res.u.bytes()));
  if (ctx != nullptr && ctx->wrapper(0).cache() != nullptr)
    st.cache_fingerprint = ctx->wrapper(0).cache()->fingerprint();
  if (own_entries != nullptr && db != nullptr) {
    MLR_TRACE_SPAN("job.export", "serve", req.id);
    *own_entries = db->export_entries(/*session_only=*/true);
  }
  return RunOutcome{std::move(st)};
}

double ReconService::work_scale_for(Scenario s) const {
  const double sc = double(scenario_profile(s).paper_n) / double(cfg_.n);
  return sc * sc * sc;
}

sim::VTime ReconService::charge_seed_fetch(sim::VTime t, double scale) {
  const sim::VTime ready = tier_->charge_fetch(t, scale);
  stats_.fabric_fetch_s += ready - t;
  return ready;
}

double ReconService::estimate_fetch_s(double scale) const {
  if (!cfg_.memoize || !cfg_.fabric.enabled || tier_->size() == 0) return 0.0;
  // The uncontended lower bound of charge_fetch: every fetch funnels the
  // whole tier through the shared uplink, so this is exact on an idle
  // fabric and optimistic under contention (admission_margin buys slack).
  return cfg_.fabric.latency +
         tier_->total_bytes() * scale / cfg_.fabric.uplink_bandwidth;
}

void ReconService::fold_promotion(JobStats* st,
                                  std::vector<memo::MemoDb::Entry> entries) {
  if (entries.empty()) return;
  MLR_TRACE_SPAN("job.promote", "serve", st != nullptr ? st->id : 0);
  const PromotionOutcome outcome = tier_->fold(std::move(entries));
  auto& sm = ServeMetrics::get();
  sm.tier_promoted.add(outcome.promoted);
  sm.tier_dedup_drops.add(outcome.dedup_drops);
  sm.tier_cap_drops.add(outcome.cap_drops);
  stats_.promoted += outcome.promoted;
  stats_.shared_dedup_drops += outcome.dedup_drops;
  stats_.shared_cap_drops += outcome.cap_drops;
  if (st != nullptr) {
    st->promoted = outcome.promoted;
    st->memo.shared_dedup_drops = outcome.dedup_drops;
    st->memo.shared_cap_drops = outcome.cap_drops;
  }
}

std::vector<JobStats> ReconService::prime(std::span<const JobRequest> warm) {
  // Offline warm-up: the tier is built before traffic exists, so neither
  // the seed fetches nor the promotions of warm jobs touch the fabric — its
  // clock starts with drain().
  MLR_TRACE_SPAN("service.prime", "serve", u64(warm.size()));
  std::vector<JobStats> out;
  out.reserve(warm.size());
  for (const auto& w : warm) {
    JobRequest req = w;
    req.id = next_id_++;
    try {
      std::vector<memo::MemoDb::Entry> own;
      auto st =
          std::move(run_job(req, 0.0, 0.0, cfg_.memoize ? &own : nullptr).st);
      if (cfg_.memoize) fold_promotion(&st, std::move(own));
      // Teach admission this scenario's runtime class (max across
      // observations: run vtimes are policy-invariant, so this is too).
      auto& est = est_run_[std::size_t(st.scenario)];
      est = std::max(est, st.run_vtime);
      out.push_back(std::move(st));
    } catch (const std::exception& e) {
      // A warm job that throws poisons only itself: later warm jobs (and
      // the drain) still run against whatever tier was built so far.
      JobStats st;
      st.id = req.id;
      st.tenant = req.tenant;
      st.scenario = req.scenario;
      st.priority = req.priority;
      st.arrival = st.start = st.finish = req.arrival;
      st.outcome = JobOutcome::Failed;
      st.failure = e.what();
      ++stats_.jobs_failed;
      obs::metrics().counter("serve.jobs_failed").add();
      obs::trace_instant("job.failed", "serve", req.id);
      out.push_back(std::move(st));
    }
  }
  return out;
}

u64 ReconService::submit(JobRequest req) {
  req.id = next_id_++;
  ++stats_.submitted;
  queue_.push_back(std::move(req));
  return queue_.back().id;
}

void ReconService::account(const JobStats& st) {
  auto& sm = ServeMetrics::get();
  sm.jobs_completed.add();
  sm.queue_wait_vs.observe(st.queue_wait());
  sm.turnaround_vs.observe(st.turnaround());
  sm.seed_fetch_vs.observe(st.seed_fetch_s);
  sm.slot_busy_vs.observe(st.run_vtime + st.seed_fetch_s);
  ++stats_.completed;
  stats_.queue_wait.add(st.queue_wait());
  stats_.turnaround.add(st.turnaround());
  stats_.run_vtime.add(st.run_vtime);
  stats_.lookups += st.memo.lookups();
  stats_.cache_hits += st.memo.cache_hit;
  stats_.db_hits += st.memo.db_hit;
  stats_.shared_hits += st.memo.db_hit_shared;
  stats_.misses += st.memo.miss;
  stats_.makespan = std::max(stats_.makespan, st.finish);
  stats_.busy_s += st.run_vtime + st.seed_fetch_s;
  if (!st.deadline_met) ++stats_.deadline_missed;
  auto& ten = stats_.tenants[st.tenant];
  ++ten.jobs;
  ten.busy_s += st.run_vtime + st.seed_fetch_s;
  ten.queue_wait.add(st.queue_wait());
}

std::vector<JobStats> ReconService::drain() {
  MLR_CHECK_MSG(!cfg_.memoize || registry_->encoder().quantized(),
                "prime() the service before drain(): the cross-job encoder "
                "must be trained once, not by whichever job runs first");
  // Explicit begin/complete instead of a RAII span: the drain span must be
  // flushed into the rings BEFORE write_json() below, or the trace file
  // would miss its own top-level span.
  const u64 drain_t0 =
      obs::trace_enabled() ? obs::TraceRecorder::instance().now_ns() : 0;
  std::vector<JobRequest> arr = std::move(queue_);
  queue_.clear();
  std::sort(arr.begin(), arr.end(),
            [](const JobRequest& a, const JobRequest& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.id < b.id;
            });
  std::vector<JobStats> out;
  out.reserve(arr.size());
  // Session insertions: shipments are charged to the fabric in (finish, id)
  // order, interleaved with the fetch charges so timeline ready times stay
  // monotone — a finished job's promotion traffic contends with every later
  // dispatch's seed fetch. The tier itself *folds* at the end in job-id
  // order: its evolution is identical for every scheduling policy (the
  // charge/fold split of shared_tier.hpp).
  std::map<u64, std::vector<memo::MemoDb::Entry>> own;
  struct Shipment {
    sim::VTime finish;
    u64 id;
    Scenario scenario;
  };
  std::vector<Shipment> pending;
  auto charge_shipments_until = [&](sim::VTime upto) {
    std::sort(pending.begin(), pending.end(),
              [](const Shipment& a, const Shipment& b) {
                return a.finish != b.finish ? a.finish < b.finish
                                            : a.id < b.id;
              });
    std::size_t shipped = 0;
    while (shipped < pending.size() && pending[shipped].finish <= upto) {
      const Shipment& sh = pending[shipped];
      const sim::VTime done = tier_->charge_store(
          own[sh.id], sh.finish, work_scale_for(sh.scenario));
      stats_.fabric_promote_s += done - sh.finish;
      ++shipped;
    }
    pending.erase(pending.begin(), pending.begin() + i64(shipped));
  };
  std::vector<QueuedJob> waiting;
  // Preempted jobs awaiting their next segment, by id. A paused job is
  // always also in `waiting` (as a resumed QueuedJob pointing at the
  // PausedJob's owned request), so the loop condition needs no new term.
  std::map<u64, std::unique_ptr<PausedJob>> paused;
  // Ids admission flipped to best-effort (Downgrade mode) — recorded so the
  // final JobStats can say so even though the request itself was mutated.
  std::set<u64> downgraded_ids;
  const bool preempt_on = cfg_.preempt_quantum_s > 0 || cfg_.preempt_force;
  std::size_t next = 0;
  while (next < arr.size() || !waiting.empty()) {
    // Earliest-free slot (ties: lowest index) sets the dispatch time: a job
    // runs when that slot is free AND a job has arrived, so clamp up to the
    // earliest arrival still on the table — a waiting job's, or the next
    // submission's when it beats them. (Clamping only when the queue was
    // empty used to let a second, idle slot start a queued job before its
    // own arrival instant.)
    std::size_t slot = 0;
    for (std::size_t s2 = 1; s2 < slot_free_.size(); ++s2)
      if (slot_free_[s2] < slot_free_[slot]) slot = s2;
    sim::VTime t = slot_free_[slot];
    sim::VTime earliest = std::numeric_limits<sim::VTime>::infinity();
    for (const auto& w : waiting) earliest = std::min(earliest, w.queued_at);
    if (next < arr.size()) earliest = std::min(earliest, arr[next].arrival);
    t = std::max(t, earliest);
    // Admission at arrival: everything that arrived by t is processed in
    // (arrival, id) order — deadline admission first (policy-invariant: its
    // inputs are the arrival-ordered stream, the learned estimates and the
    // controller's private adm_free_ model, never actual queue/slot state),
    // then the backlog cap (policy-*dependent*, as before: it reads the
    // real queue length).
    while (next < arr.size() && arr[next].arrival <= t) {
      JobRequest& jr = arr[next];  // mutable: Downgrade rewrites jr.slo
      auto reject = [&](const char* why) {
        JobStats rej;
        rej.id = jr.id;
        rej.tenant = jr.tenant;
        rej.scenario = jr.scenario;
        rej.priority = jr.priority;
        rej.slo = jr.slo;
        rej.admitted = false;
        rej.reject_reason = why;
        rej.outcome = JobOutcome::Rejected;
        rej.arrival = rej.start = rej.finish = jr.arrival;
        rej.deadline_met = jr.deadline <= 0;
        ++stats_.rejected;
        ServeMetrics::get().jobs_rejected.add();
        obs::trace_instant("job.rejected", "serve", jr.id);
        out.push_back(std::move(rej));
      };
      bool adm_rejected = false;
      const double er = est_run_[std::size_t(jr.scenario)];
      if (cfg_.admission != AdmissionMode::None && jr.deadline > 0 &&
          er > 0) {
        // Model the earliest start the controller can promise: the least-
        // loaded slot of its own bookkeeping, advanced below by the same
        // estimates. est_fetch is the uncontended uplink pass of the
        // (drain-constant) tier at this scenario's work scale.
        std::size_t am = 0;
        for (std::size_t s2 = 1; s2 < adm_free_.size(); ++s2)
          if (adm_free_[s2] < adm_free_[am]) am = s2;
        const sim::VTime est_start = std::max(jr.arrival, adm_free_[am]);
        const double ef = estimate_fetch_s(work_scale_for(jr.scenario));
        const bool feasible =
            est_start + cfg_.admission_margin * (ef + er) <= jr.deadline;
        if (!feasible && cfg_.admission == AdmissionMode::Reject) {
          ++stats_.admission_rejected;
          ServeMetrics::get().admission_rejected.add();
          reject("deadline-infeasible");
          adm_rejected = true;
        } else {
          if (!feasible) {  // AdmissionMode::Downgrade
            jr.slo = SloClass::BestEffort;
            downgraded_ids.insert(jr.id);
            ++stats_.admission_downgraded;
            ServeMetrics::get().admission_downgraded.add();
            obs::trace_instant("job.downgraded", "serve", jr.id);
          }
          // Book the slot model (margin-free — the margin is headroom for
          // the decision, not a tax on the model).
          adm_free_[am] = est_start + ef + er;
        }
      }
      if (!adm_rejected) {
        if (waiting.size() >= cfg_.max_queue) {
          reject("queue-full");
        } else {
          waiting.push_back({&jr, jr.arrival, false});
        }
      }
      ++next;
    }
    // Admission may have rejected every arrival in the batch, leaving
    // nothing to dispatch: go around again (t then advances to the next
    // pending arrival, so the admission loop always consumes at least one
    // more request — no livelock) or fall out of the drain entirely.
    if (waiting.empty()) continue;
    // Every waiter has arrived by t: t is non-decreasing across iterations
    // (the slot minimum and the earliest-pending-arrival terms both only
    // rise), and each waiter was admitted when its arrival was <= the then-
    // current t.
    const std::size_t pi = sched_->pick(waiting, t);
    const QueuedJob picked = waiting[pi];
    const JobRequest req = *picked.req;
    waiting.erase(waiting.begin() + i64(pi));
    // A resumed pick carries its checkpoint; extract it (the QueuedJob's
    // req pointer aimed into the PausedJob we now own).
    std::unique_ptr<PausedJob> resume;
    if (picked.resumed) {
      const auto it = paused.find(req.id);
      MLR_CHECK(it != paused.end());
      resume = std::move(it->second);
      paused.erase(it);
    }
    // The dispatched session first fetches the shared tier over the fabric
    // — the charge concurrent sessions contend on — and computes only once
    // the seed landed. Dispatch times are non-decreasing across iterations,
    // so charging shipments whose jobs finished by t first, then this fetch,
    // keeps the fabric's ready times in time order.
    charge_shipments_until(t);
    // Virtual dispatch time on the service timeline (counter track pairs
    // with the vclock.service sample run_job emits at job completion).
    obs::trace_counter("vclock.service", t);
    // Per-job failure isolation: ANY throw out of this job's dispatch or
    // session — a NetError whose reconnect budget ran out, a chaos hook, a
    // solver bug — fails only this job. The slot is released, the message
    // preserved, and the loop moves on; sessions are hermetic and the tier
    // folds post-drain in job-id order, so the other jobs' sessions never
    // see a difference.
    try {
      if (cfg_.dispatch_hook) cfg_.dispatch_hook(req);
      // Degraded mode probes recovery once per dispatch: cheap when the
      // tier is still down (one failed connect), and the earliest possible
      // exit from cold sessions when it is back.
      if (degraded_) try_tier_recovery();
      const bool cold = degraded_;
      const sim::VTime seed_ready =
          cfg_.memoize && !cold
              ? charge_seed_fetch(t, work_scale_for(req.scenario))
              : t;
      std::vector<memo::MemoDb::Entry> mine;
      const bool collect = cfg_.memoize && cfg_.promote_after_drain;
      // Yield rule, evaluated at quantum-expired stage boundaries on the
      // service clock: yield only when someone is waiting (or will have
      // arrived by then) AND no other slot could serve them — otherwise
      // keep running in place, no checkpoint cost. Preemption may read
      // live queue state precisely because resume is bit-exact: it shapes
      // the schedule, never the outputs.
      std::function<bool(sim::VTime)> contended;
      if (preempt_on) {
        contended = [&, slot](sim::VTime at) {
          const bool waiter =
              !waiting.empty() ||
              (next < arr.size() && arr[next].arrival <= at);
          if (!waiter) return false;
          for (std::size_t s2 = 0; s2 < slot_free_.size(); ++s2)
            if (s2 != slot && slot_free_[s2] <= at) return false;
          return true;
        };
      }
      if (resume != nullptr)
        obs::trace_instant("job.resume", "serve", req.id);
      RunOutcome ro = run_job(req, t, seed_ready, collect ? &mine : nullptr,
                              cold, resume.get(), contended);
      if (ro.paused) {
        // The job yielded: requeue it (as of its yield time) with the
        // accumulated cross-segment bookkeeping, free the slot, move on.
        auto pj = std::make_unique<PausedJob>(std::move(ro.paused_job));
        if (resume != nullptr) {
          pj->first_start = resume->first_start;
          pj->seed_fetch_total = resume->seed_fetch_total;
          pj->preemptions = resume->preemptions;
          pj->slots = std::move(resume->slots);
        } else {
          pj->first_start = t;
        }
        pj->seed_fetch_total += seed_ready - t;
        ++pj->preemptions;
        pj->slots.push_back(int(slot));
        // Usage accounting bills the segment's slot occupancy now; the
        // later segments bill theirs when they run.
        sched_->on_dispatch(req, t, pj->yield_time - t);
        slot_free_[slot] = pj->yield_time;
        ++stats_.preemptions;
        ServeMetrics::get().preemptions.add();
        obs::trace_instant("job.preempt", "serve", req.id);
        waiting.push_back({&pj->req, pj->yield_time, true});
        paused.emplace(req.id, std::move(pj));
      } else {
        JobStats st = std::move(ro.st);
        st.slot = int(slot);
        if (resume != nullptr) {
          // Stitch the whole-job record across segments: start is the
          // first dispatch, seed_fetch_s sums every segment's re-fetch
          // (turnaround absorbs them; run_vtime never does).
          st.start = resume->first_start;
          st.seed_fetch_s = resume->seed_fetch_total + (seed_ready - t);
          st.preemptions = resume->preemptions;
          st.slots_visited = std::move(resume->slots);
        }
        st.slots_visited.push_back(int(slot));
        st.downgraded = downgraded_ids.count(st.id) > 0;
        // Usage accounting bills this segment's slot occupancy — the seed
        // fetch holds the slot just like the compute does.
        sched_->on_dispatch(req, t, st.finish - t);
        slot_free_[slot] = st.finish;
        if (collect) {
          own.emplace(req.id, std::move(mine));
          pending.push_back({st.finish, req.id, req.scenario});
        }
        account(st);
        out.push_back(std::move(st));
      }
    } catch (const std::exception& e) {
      JobStats st;
      st.id = req.id;
      st.tenant = req.tenant;
      st.scenario = req.scenario;
      st.priority = req.priority;
      st.slo = req.slo;
      st.arrival = req.arrival;
      st.start = st.finish = t;
      st.slot = int(slot);
      st.outcome = JobOutcome::Failed;
      st.failure = e.what();
      st.degraded = degraded_;
      st.downgraded = downgraded_ids.count(st.id) > 0;
      if (resume != nullptr) {
        // A resumed segment that threw fails the whole job; its checkpoint
        // dies with `resume` (per-job failure isolation, as for any other
        // failed session).
        st.preemptions = resume->preemptions;
        st.slots_visited = std::move(resume->slots);
        st.start = resume->first_start;
        st.finish = t;
      }
      ++stats_.jobs_failed;
      obs::metrics().counter("serve.jobs_failed").add();
      obs::trace_instant("job.failed", "serve", req.id);
      slot_free_[slot] = t;  // the slot frees immediately
      out.push_back(std::move(st));
    }
    // A job whose transport faults past the reconnect budget leaves the
    // backend broken; declare the tier down and flip to cold sessions so
    // the queue keeps draining instead of failing job after job.
    if (cfg_.memoize && !degraded_ && !tier_->healthy())
      enter_degraded("tier transport broken (reconnect budget exhausted)");
  }
  MLR_CHECK_MSG(paused.empty(), "drain ended with a job still preempted");
  charge_shipments_until(std::numeric_limits<sim::VTime>::infinity());
  std::sort(out.begin(), out.end(),
            [](const JobStats& a, const JobStats& b) { return a.id < b.id; });
  // Refresh admission's per-scenario runtime estimates (id order — run
  // vtimes are policy-invariant, so the refreshed model is too).
  for (const auto& st : out)
    if (st.outcome == JobOutcome::Completed) {
      auto& est = est_run_[std::size_t(st.scenario)];
      est = std::max(est, st.run_vtime);
    }
  for (auto& st : out) {
    const auto it = own.find(st.id);
    if (it == own.end() || it->second.empty()) continue;
    auto& entries = it->second;
#ifdef MLR_HAS_NET
    if (cfg_.transport != TierTransport::Inproc) {
      if (degraded_) {
        // Tier down: buffer in job-id order (this loop's order) so the
        // recovery re-ship folds exactly as a healthy drain would have.
        cold_promotions_.emplace_back(st.id, std::move(entries));
        continue;
      }
      try {
        // Deliberate copy: a PUT interrupted by a fault is at-most-once —
        // the batch must survive to be re-shipped on recovery (the tier's
        // dedup probe absorbs it if the original did land).
        fold_promotion(&st, entries);
      } catch (const net::NetError&) {
        enter_degraded("promotion PUT failed (tier unreachable)");
        cold_promotions_.emplace_back(st.id, std::move(entries));
      }
      continue;
    }
#endif
    fold_promotion(&st, std::move(entries));
  }
  // Fabric busy/contention gauges: read from sim/ here rather than
  // instrumenting the fabric itself — sim/ stays free of obs dependencies.
  {
    const sim::Fabric& fab = tier_->fabric();
    auto& m = obs::metrics();
    m.gauge("fabric.uplink_busy_vs").set(fab.uplink().busy_time());
    double link_busy = 0;
    for (int i = 0; i < fab.links(); ++i)
      link_busy += fab.link(i).busy_time();
    m.gauge("fabric.links_busy_vs").set(link_busy);
    m.gauge("fabric.contention_vs").set(fab.contention_wait_s());
    m.gauge("fabric.bytes_moved").set(fab.bytes_moved());
    m.gauge("fabric.transfers").set(double(fab.transfers()));
  }
  if (obs::trace_enabled()) {
    auto& tr = obs::TraceRecorder::instance();
    tr.complete("service.drain", "serve", drain_t0, tr.now_ns() - drain_t0, 0);
  }
  if (!cfg_.trace_path.empty())
    obs::TraceRecorder::instance().write_json(cfg_.trace_path);
  return out;
}

}  // namespace mlr::serve
