// serve/workload — deterministic traffic generation for the reconstruction
// service: Poisson or bursty arrivals over a heterogeneous scenario mix and
// a weighted tenant population. Everything derives from one seed, so a
// workload can be replayed against every scheduling policy (the per-policy
// comparison bench_serve_traffic runs) and across processes.
#pragma once

#include <utility>
#include <vector>

#include "serve/job.hpp"

namespace mlr::serve {

struct TenantSpec {
  std::string name = "default";
  double weight = 1.0;        ///< fair-share weight
  int priority = 1;           ///< priority class of this tenant's jobs
  double traffic_share = 1.0; ///< relative share of generated jobs
};

struct WorkloadConfig {
  u64 seed = 7;
  std::size_t jobs = 32;
  /// Mean virtual seconds between arrivals (Poisson rate 1/mean).
  double mean_interarrival = 30.0;
  /// Bursty arrivals: groups of burst_size jobs land at the same instant,
  /// with exponential gaps of mean burst_size·mean_interarrival between
  /// groups (same offered load, spikier queue).
  bool bursty = false;
  std::size_t burst_size = 4;
  /// Deadline = arrival + slack virtual seconds; 0 = no deadlines.
  double deadline_slack = 0.0;
  /// Jobs of one scenario draw their object (phantom seed) from this many
  /// distinct objects — the knob for how much cross-job similarity the
  /// traffic carries.
  std::size_t distinct_objects = 4;
  /// Scenario → relative traffic share. Empty = even mix of all scenarios.
  std::vector<std::pair<Scenario, double>> mix;
  /// Tenant population. Empty = one weight-1 "default" tenant.
  std::vector<TenantSpec> tenants;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig cfg);

  /// The jobs in arrival order (ids left 0 — ReconService::submit assigns).
  [[nodiscard]] std::vector<JobRequest> generate();

  /// Canonical priming set for ReconService::prime(): one job per scenario
  /// in the mix, object seed 0 of each — enough to train the encoder and
  /// seed the shared tier with every scenario's key/value classes.
  [[nodiscard]] std::vector<JobRequest> priming_set() const;

 private:
  WorkloadConfig cfg_;
};

}  // namespace mlr::serve
