// serve/workload — deterministic traffic generation for the reconstruction
// service: Poisson, bursty or diurnally-modulated arrivals over a
// heterogeneous (optionally heavy-tailed) scenario mix and a weighted
// tenant population with per-tenant SLO classes. Everything derives from
// one seed, so a workload can be replayed against every scheduling policy
// (the per-policy comparison bench_serve_traffic runs) and across
// processes — tests/workload_test.cpp pins the reproducibility, mix-
// proportion and SLO-assignment contracts.
#pragma once

#include <utility>
#include <vector>

#include "serve/job.hpp"

namespace mlr::serve {

struct TenantSpec {
  std::string name = "default";
  double weight = 1.0;        ///< fair-share weight
  int priority = 1;           ///< priority class of this tenant's jobs
  double traffic_share = 1.0; ///< relative share of generated jobs
  /// SLO class every job of this tenant carries. Deadlines scale with the
  /// class (see slo_slack_factor): interactive tenants get tight deadlines,
  /// best-effort tenants none at all.
  SloClass slo = SloClass::Standard;
};

/// Class-based deadline slack multiplier: a job's deadline is
/// arrival + deadline_slack × slo_slack_factor(class). BestEffort returns 0
/// — best-effort jobs carry no deadline at all.
inline double slo_slack_factor(SloClass c) {
  switch (c) {
    case SloClass::Interactive: return 0.35;
    case SloClass::Standard: return 1.0;
    case SloClass::BestEffort: return 0.0;
  }
  return 1.0;
}

struct WorkloadConfig {
  u64 seed = 7;
  std::size_t jobs = 32;
  /// Mean virtual seconds between arrivals (Poisson rate 1/mean).
  double mean_interarrival = 30.0;
  /// Bursty arrivals: groups of burst_size jobs land at the same instant,
  /// with exponential gaps of mean burst_size·mean_interarrival between
  /// groups (same offered load, spikier queue).
  bool bursty = false;
  std::size_t burst_size = 4;
  /// Diurnal modulation on top of either arrival process: the instantaneous
  /// arrival rate swings sinusoidally with this period (virtual seconds),
  /// rate(t) = 1 + amplitude·sin(2πt/period) — a "daytime" peak and a
  /// "night" trough per period, same seed → same trace. 0 = off.
  double diurnal_period = 0.0;
  double diurnal_amplitude = 0.75;  ///< 0..1 swing of the rate
  /// Base deadline slack: deadline = arrival + deadline_slack ×
  /// slo_slack_factor(tenant's class); 0 = no deadlines.
  double deadline_slack = 0.0;
  /// Jobs of one scenario draw their object (phantom seed) from this many
  /// distinct objects — the knob for how much cross-job similarity the
  /// traffic carries.
  std::size_t distinct_objects = 4;
  /// Scenario → relative traffic share. Empty = even mix of all scenarios.
  std::vector<std::pair<Scenario, double>> mix;
  /// Tenant population. Empty = one weight-1 "default" tenant.
  std::vector<TenantSpec> tenants;
};

/// The heavy-tailed scenario mix serving benchmarks default to: short
/// interactive inspections dominate the stream while the paper-2K³
/// MemoryConstrained class forms the rare long-job tail (the jobs
/// stage-boundary preemption exists to overtake).
std::vector<std::pair<Scenario, double>> heavy_tail_mix();

/// Canonical scaled serving workload: `jobs` arrivals (hundreds by
/// default) over heavy_tail_mix(), bursty + diurnally modulated, three
/// tenants spanning the SLO classes (interactive / standard / best-effort)
/// with class-scaled deadlines.
WorkloadConfig scaled_workload(std::size_t jobs, u64 seed = 7);

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig cfg);

  /// The jobs in arrival order (ids left 0 — ReconService::submit assigns).
  [[nodiscard]] std::vector<JobRequest> generate();

  /// Canonical priming set for ReconService::prime(): one job per scenario
  /// in the mix, object seed 0 of each — enough to train the encoder and
  /// seed the shared tier with every scenario's key/value classes.
  [[nodiscard]] std::vector<JobRequest> priming_set() const;

 private:
  WorkloadConfig cfg_;
};

}  // namespace mlr::serve
