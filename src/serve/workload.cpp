#include "serve/workload.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mlr::serve {

namespace {

/// Draw an index from a share table (cumulative inversion).
std::size_t draw_share(const std::vector<double>& shares, double total,
                       Rng& rng) {
  const double x = rng.uniform(0.0, total);
  double acc = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    acc += shares[i];
    if (x < acc) return i;
  }
  return shares.size() - 1;
}

std::vector<std::pair<Scenario, double>> effective_mix(
    const WorkloadConfig& cfg) {
  if (!cfg.mix.empty()) return cfg.mix;
  std::vector<std::pair<Scenario, double>> mix;
  for (int s = 0; s < kNumScenarios; ++s) mix.push_back({Scenario(s), 1.0});
  return mix;
}

}  // namespace

std::vector<std::pair<Scenario, double>> heavy_tail_mix() {
  return {{Scenario::PcbInspection, 8.0},
          {Scenario::IcInspection, 4.0},
          {Scenario::BrainScan, 2.0},
          {Scenario::MemoryConstrained, 1.0}};
}

WorkloadConfig scaled_workload(std::size_t jobs, u64 seed) {
  // Sized against the small-n serving benches (job run vtimes of roughly
  // 1–10 thousand virtual seconds on two slots): offered load around 0.8 of
  // capacity with six-job bursts and a diurnal swing on top, so queues
  // spike and drain instead of diverging; the standard-class slack covers a
  // few short runs of backlog while the interactive slack (0.35x) only
  // clears when the queue is short — admission visibly sheds the long-tail
  // scenarios from deadline-carrying tenants under the peaks.
  WorkloadConfig wc;
  wc.seed = seed;
  wc.jobs = jobs;
  wc.mean_interarrival = 900.0;
  wc.bursty = true;
  wc.burst_size = 6;
  wc.diurnal_period = 36000.0;
  wc.diurnal_amplitude = 0.75;
  wc.deadline_slack = 7200.0;
  wc.distinct_objects = 4;
  wc.mix = heavy_tail_mix();
  wc.tenants = {
      {"clinic", 1.0, 3, 3.0, SloClass::Interactive},
      {"fab", 2.0, 2, 5.0, SloClass::Standard},
      {"archive", 1.0, 1, 2.0, SloClass::BestEffort},
  };
  return wc;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg)
    : cfg_(std::move(cfg)) {
  MLR_CHECK(cfg_.jobs >= 1 && cfg_.mean_interarrival > 0);
  MLR_CHECK(cfg_.burst_size >= 1 && cfg_.distinct_objects >= 1);
  MLR_CHECK(cfg_.diurnal_period >= 0);
  MLR_CHECK(cfg_.diurnal_amplitude >= 0 && cfg_.diurnal_amplitude <= 1);
}

std::vector<JobRequest> WorkloadGenerator::generate() {
  Rng rng(cfg_.seed);
  const auto mix = effective_mix(cfg_);
  std::vector<double> mshare;
  double mix_total = 0;
  for (const auto& [s, w] : mix) {
    mshare.push_back(w);
    mix_total += w;
  }
  std::vector<TenantSpec> tenants = cfg_.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{});
  std::vector<double> tshare;
  double tshare_total = 0;
  for (const auto& t : tenants) {
    tshare.push_back(t.traffic_share);
    tshare_total += t.traffic_share;
  }

  // Diurnal modulation: stretch a base exponential gap by the inverse
  // instantaneous rate at the current instant (inhomogeneous-Poisson
  // thinning in closed form) — gaps shrink at the peak, stretch in the
  // trough, same offered load over a full period.
  const auto modulate = [&](double gap, sim::VTime at) {
    if (cfg_.diurnal_period <= 0 || cfg_.diurnal_amplitude <= 0) return gap;
    const double phase = 2.0 * std::acos(-1.0) *
                         std::fmod(at, cfg_.diurnal_period) /
                         cfg_.diurnal_period;
    const double rate = 1.0 + cfg_.diurnal_amplitude * std::sin(phase);
    return gap / std::max(rate, 0.05);
  };
  std::vector<JobRequest> out;
  out.reserve(cfg_.jobs);
  sim::VTime t = 0;
  for (std::size_t j = 0; j < cfg_.jobs; ++j) {
    if (cfg_.bursty) {
      if (j % cfg_.burst_size == 0 && j > 0)
        t += modulate(rng.exponential(cfg_.mean_interarrival *
                                      double(cfg_.burst_size)),
                      t);
    } else if (j > 0) {
      t += modulate(rng.exponential(cfg_.mean_interarrival), t);
    }
    const auto& ten = tenants[draw_share(tshare, tshare_total, rng)];
    const Scenario sc = mix[draw_share(mshare, mix_total, rng)].first;
    JobRequest req;
    req.tenant = ten.name;
    req.tenant_weight = ten.weight;
    req.priority = ten.priority;
    req.slo = ten.slo;
    req.arrival = t;
    const double slack = cfg_.deadline_slack * slo_slack_factor(ten.slo);
    if (slack > 0) req.deadline = t + slack;
    req.scenario = sc;
    // Object identity: a small pool per scenario, so similar jobs recur —
    // the traffic shape the paper's memoization economics assume.
    req.seed = 100 * u64(sc) +
               u64(rng.uniform_int(0, i64(cfg_.distinct_objects) - 1));
    out.push_back(std::move(req));
  }
  return out;
}

std::vector<JobRequest> WorkloadGenerator::priming_set() const {
  const auto mix = effective_mix(cfg_);
  std::vector<JobRequest> out;
  for (const auto& [sc, share] : mix) {
    if (share <= 0) continue;
    JobRequest req;
    req.tenant = "prime";
    req.scenario = sc;
    req.seed = 100 * u64(sc);  // object 0 of the scenario's pool
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace mlr::serve
