#include "serve/workload.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mlr::serve {

namespace {

/// Draw an index from a share table (cumulative inversion).
std::size_t draw_share(const std::vector<double>& shares, double total,
                       Rng& rng) {
  const double x = rng.uniform(0.0, total);
  double acc = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    acc += shares[i];
    if (x < acc) return i;
  }
  return shares.size() - 1;
}

std::vector<std::pair<Scenario, double>> effective_mix(
    const WorkloadConfig& cfg) {
  if (!cfg.mix.empty()) return cfg.mix;
  std::vector<std::pair<Scenario, double>> mix;
  for (int s = 0; s < kNumScenarios; ++s) mix.push_back({Scenario(s), 1.0});
  return mix;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg)
    : cfg_(std::move(cfg)) {
  MLR_CHECK(cfg_.jobs >= 1 && cfg_.mean_interarrival > 0);
  MLR_CHECK(cfg_.burst_size >= 1 && cfg_.distinct_objects >= 1);
}

std::vector<JobRequest> WorkloadGenerator::generate() {
  Rng rng(cfg_.seed);
  const auto mix = effective_mix(cfg_);
  std::vector<double> mshare;
  double mix_total = 0;
  for (const auto& [s, w] : mix) {
    mshare.push_back(w);
    mix_total += w;
  }
  std::vector<TenantSpec> tenants = cfg_.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{});
  std::vector<double> tshare;
  double tshare_total = 0;
  for (const auto& t : tenants) {
    tshare.push_back(t.traffic_share);
    tshare_total += t.traffic_share;
  }

  std::vector<JobRequest> out;
  out.reserve(cfg_.jobs);
  sim::VTime t = 0;
  for (std::size_t j = 0; j < cfg_.jobs; ++j) {
    if (cfg_.bursty) {
      if (j % cfg_.burst_size == 0 && j > 0)
        t += rng.exponential(cfg_.mean_interarrival *
                             double(cfg_.burst_size));
    } else if (j > 0) {
      t += rng.exponential(cfg_.mean_interarrival);
    }
    const auto& ten = tenants[draw_share(tshare, tshare_total, rng)];
    const Scenario sc = mix[draw_share(mshare, mix_total, rng)].first;
    JobRequest req;
    req.tenant = ten.name;
    req.tenant_weight = ten.weight;
    req.priority = ten.priority;
    req.arrival = t;
    if (cfg_.deadline_slack > 0) req.deadline = t + cfg_.deadline_slack;
    req.scenario = sc;
    // Object identity: a small pool per scenario, so similar jobs recur —
    // the traffic shape the paper's memoization economics assume.
    req.seed = 100 * u64(sc) +
               u64(rng.uniform_int(0, i64(cfg_.distinct_objects) - 1));
    out.push_back(std::move(req));
  }
  return out;
}

std::vector<JobRequest> WorkloadGenerator::priming_set() const {
  const auto mix = effective_mix(cfg_);
  std::vector<JobRequest> out;
  for (const auto& [sc, share] : mix) {
    if (share <= 0) continue;
    JobRequest req;
    req.tenant = "prime";
    req.scenario = sc;
    req.seed = 100 * u64(sc);  // object 0 of the scenario's pool
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace mlr::serve
