#include "serve/shared_tier.hpp"

#include <utility>

#include "common/error.hpp"

namespace mlr::serve {

SharedTier::SharedTier(SharedTierConfig cfg)
    : cfg_(cfg),
      fabric_(cfg.fabric, cfg.shard_count),
      shard_entries_(std::size_t(cfg.shard_count), 0),
      shard_bytes_(std::size_t(cfg.shard_count), 0.0) {
  MLR_CHECK(cfg_.shard_count >= 1 && cfg_.max_entries >= 1);
  MLR_CHECK(cfg_.tau_dedup >= 0.0 && cfg_.tau_dedup <= 1.0);
  for (int k = 0; k < memo::kNumOpKinds; ++k)
    index_.push_back(
        std::make_unique<ann::IvfFlatIndex>(cfg_.key_dim, cfg_.ivf));
}

sim::VTime SharedTier::charge_fetch(sim::VTime ready, double scale) {
  std::vector<double> wire(shard_bytes_);
  for (double& b : wire) b *= scale;
  // The uplink total accumulates in fold order — shard-count independent —
  // so completion is bit-identical for every shard split.
  return fabric_.transfer(ready, wire, total_bytes_ * scale);
}

bool SharedTier::near_duplicate(const memo::MemoDb::Entry& e) const {
  const auto& idx = *index_[std::size_t(int(e.kind))];
  const auto nn = idx.nearest(e.key);
  if (!nn.has_value()) return false;
  return memo::entry_similarity(e, entries_[std::size_t(nn->id)]) >
         cfg_.tau_dedup;
}

sim::VTime SharedTier::charge_store(
    const std::vector<memo::MemoDb::Entry>& entries, sim::VTime ready,
    double scale) {
  // The whole batch travels: the session ships first, the tier filters on
  // arrival — a rejected entry still spent its fabric time. The uplink
  // total accumulates in batch order (shard-count independent).
  std::vector<double> wire(std::size_t(cfg_.shard_count), 0.0);
  double total = 0;
  for (const auto& e : entries) {
    const double b = double(memo::entry_bytes(e)) * scale;
    wire[std::size_t(memo::entry_shard(e, cfg_.shard_count))] += b;
    total += b;
  }
  return fabric_.transfer(ready, wire, total);
}

PromotionOutcome SharedTier::promote(std::vector<memo::MemoDb::Entry> entries,
                                     sim::VTime ready, double scale) {
  const sim::VTime done = charge_store(entries, ready, scale);
  PromotionOutcome out = fold(std::move(entries));
  out.done = done;
  return out;
}

PromotionOutcome SharedTier::fold(std::vector<memo::MemoDb::Entry> entries) {
  PromotionOutcome out;
  for (auto& e : entries) {
    // Cap first: at capacity the drop is inevitable, so skip the ANN probe
    // (a full tier would otherwise pay one nearest() scan per offered entry
    // just to label the drop).
    if (entries_.size() >= cfg_.max_entries) {
      ++out.cap_drops;
      continue;
    }
    if (cfg_.tau_dedup > 0.0 && near_duplicate(e)) {
      ++out.dedup_drops;
      continue;
    }
    const int shard = memo::entry_shard(e, cfg_.shard_count);
    shard_entries_[std::size_t(shard)] += 1;
    shard_bytes_[std::size_t(shard)] += double(memo::entry_bytes(e));
    total_bytes_ += double(memo::entry_bytes(e));
    index_[std::size_t(int(e.kind))]->add(u64(entries_.size()), e.key);
    entries_.push_back(std::move(e));
    ++out.promoted;
  }
  return out;
}

}  // namespace mlr::serve
