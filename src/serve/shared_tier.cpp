#include "serve/shared_tier.hpp"

#include <utility>

#include "common/error.hpp"

namespace mlr::serve {

SharedTier::SharedTier(SharedTierConfig cfg)
    : cfg_(cfg),
      fabric_(cfg.fabric, cfg.shard_count),
      shard_entries_(std::size_t(cfg.shard_count), 0),
      shard_bytes_(std::size_t(cfg.shard_count), 0.0) {
  MLR_CHECK(cfg_.shard_count >= 1 && cfg_.max_entries >= 1);
  MLR_CHECK(cfg_.tau_dedup >= 0.0 && cfg_.tau_dedup <= 1.0);
  for (int k = 0; k < memo::kNumOpKinds; ++k)
    index_.push_back(
        std::make_unique<ann::IvfFlatIndex>(cfg_.key_dim, cfg_.ivf));
}

sim::VTime SharedTier::charge_fetch(sim::VTime ready, double scale) {
  std::vector<double> wire(shard_bytes_);
  for (double& b : wire) b *= scale;
  // The uplink total accumulates in fold order — shard-count independent —
  // so completion is bit-identical for every shard split.
  return fabric_.transfer(ready, wire, total_bytes_ * scale);
}

bool SharedTier::near_duplicate(const memo::MemoDb::Entry& e) const {
  const auto& idx = *index_[std::size_t(int(e.kind))];
  const auto nn = idx.nearest(e.key);
  if (!nn.has_value()) return false;
  return memo::entry_similarity(e, entries_[std::size_t(nn->id)]) >
         cfg_.tau_dedup;
}

std::vector<double> promotion_wire(
    const std::vector<memo::MemoDb::Entry>& entries, int shard_count,
    double scale, double* total) {
  std::vector<double> wire(std::size_t(shard_count), 0.0);
  double sum = 0;
  for (const auto& e : entries) {
    const double b = double(memo::entry_bytes(e)) * scale;
    wire[std::size_t(memo::entry_shard(e, shard_count))] += b;
    sum += b;
  }
  if (total != nullptr) *total = sum;
  return wire;
}

sim::VTime SharedTier::charge_store(
    const std::vector<memo::MemoDb::Entry>& entries, sim::VTime ready,
    double scale) {
  // The whole batch travels: the session ships first, the tier filters on
  // arrival — a rejected entry still spent its fabric time. The uplink
  // total accumulates in batch order (shard-count independent).
  double total = 0;
  const auto wire = promotion_wire(entries, cfg_.shard_count, scale, &total);
  return fabric_.transfer(ready, wire, total);
}

PromotionOutcome SharedTier::promote(std::vector<memo::MemoDb::Entry> entries,
                                     sim::VTime ready, double scale) {
  const sim::VTime done = charge_store(entries, ready, scale);
  PromotionOutcome out = fold(std::move(entries));
  out.done = done;
  return out;
}

void SharedTier::place(const memo::MemoDb::Entry& e) {
  const int shard = memo::entry_shard(e, cfg_.shard_count);
  shard_entries_[std::size_t(shard)] += 1;
  shard_bytes_[std::size_t(shard)] += double(memo::entry_bytes(e));
  total_bytes_ += double(memo::entry_bytes(e));
}

PromotionOutcome SharedTier::fold(std::vector<memo::MemoDb::Entry> entries) {
  PromotionOutcome out;
  for (auto& e : entries) {
    // Cap first: at capacity the drop is inevitable, so skip the ANN probe
    // (a full tier would otherwise pay one nearest() scan per offered entry
    // just to label the drop).
    if (entries_.size() >= cfg_.max_entries) {
      ++out.cap_drops;
      continue;
    }
    if (cfg_.tau_dedup > 0.0 && near_duplicate(e)) {
      ++out.dedup_drops;
      continue;
    }
    place(e);
    index_[std::size_t(int(e.kind))]->add(u64(entries_.size()), e.key);
    entries_.push_back(std::move(e));
    ++out.promoted;
  }
  return out;
}

void SharedTier::import_snapshot(std::vector<memo::MemoDb::Entry> entries) {
  MLR_CHECK_MSG(entries_.empty(), "import_snapshot requires an empty tier");
  entries_.reserve(entries.size());
  for (auto& e : entries) {
    MLR_CHECK_MSG(!e.value.empty() || e.value_cf == 0,
                  "import_snapshot needs full value payloads");
    place(e);
    index_[std::size_t(int(e.kind))]->add(u64(entries_.size()), e.key);
    entries_.push_back(std::move(e));
  }
}

}  // namespace mlr::serve
