#include "admm/solver.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"

namespace mlr::admm {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Init: return "init";
    case Phase::Lsp: return "LSP";
    case Phase::Rsp: return "RSP";
    case Phase::LambdaUpdate: return "lambda";
    case Phase::PenaltyUpdate: return "penalty";
  }
  return "?";
}

Solver::Solver(memo::MemoizedLamino& ml, AdmmConfig cfg)
    : Solver(ml.executor(), cfg) {}

Solver::Solver(memo::StageExecutor& exec, AdmmConfig cfg)
    : exec_(exec), ml_(exec.wrapper(0)), cfg_(cfg) {
  MLR_CHECK(cfg.outer_iters >= 1 && cfg.inner_iters >= 1);
  MLR_CHECK(cfg.alpha >= 0 && cfg.rho > 0 && cfg.chunk_size >= 1);
  MLR_CHECK_MSG(!(cfg.use_fusion && !cfg.use_cancellation),
                "fusion requires operation cancellation (Algorithm 2)");
}

double Solver::host_cost(double elems, double passes) const {
  return cfg_.work_scale * (elems * passes * sizeof(cfloat) / cfg_.cpu_mem_bw +
                            elems * passes * 2.0 / cfg_.cpu_flops);
}

double Solver::ew_cost(const EwStats& delta) const {
  return host_cost(delta.bytes / double(sizeof(cfloat)), 1.0);
}

void Solver::end_phase(SolveResult& r, Phase p, const EwStats& ew0,
                       std::chrono::steady_clock::time_point w0,
                       sim::VTime t) {
  auto& prof = r.phases[std::size_t(p)];
  prof.ew += knl_.stats() - ew0;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
          .count();
  prof.wall_s += wall_s;
  if (obs::trace_enabled()) {
    // Reuse the phase's already-measured wall window for the span (end "now"
    // minus the measured duration) — no second clock pair.
    auto& tr = obs::TraceRecorder::instance();
    const u64 dur = u64(wall_s * 1e9);
    const u64 t1 = tr.now_ns();
    tr.complete(phase_name(p), "solver", t1 > dur ? t1 - dur : 0, dur, 0);
    // The session's local virtual clock — the second clock domain as a
    // counter track (service jobs start each session at virtual 0, so the
    // track is a per-job sawtooth).
    tr.counter("vclock.session", t);
  }
}

sim::VTime Solver::stage_fu1d(const Array3D<cfloat>& in, Array3D<cfloat>& out,
                              bool adjoint, sim::VTime t) {
  const auto& g = ml_.ops().geometry();
  auto chunks = lamino::make_chunks(g.n1, cfg_.chunk_size);
  std::vector<memo::StageChunk> work;
  work.reserve(chunks.size());
  for (const auto& spec : chunks) {
    work.push_back({spec, in.slices(spec.begin, spec.count),
                    out.slices(spec.begin, spec.count)});
  }
  auto rep = exec_.run_stage(
      adjoint ? memo::OpKind::Fu1DAdj : memo::OpKind::Fu1D, work, t);
  return rep.done;
}

sim::VTime Solver::stage_fu2d(const Array3D<cfloat>& in, Array3D<cfloat>& out,
                              const Array3D<cfloat>* fused_ref, bool adjoint,
                              sim::VTime t) {
  const auto& ops = ml_.ops();
  const auto& g = ops.geometry();
  auto chunks = lamino::make_chunks(g.h, cfg_.chunk_size);
  const std::size_t n = chunks.size();
  std::vector<std::vector<cfloat>> ins(n), outs(n), refs(n);
  std::vector<memo::StageChunk> work;
  work.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& spec = chunks[i];
    const auto plane = size_t(spec.count * g.n1 * g.n2);
    const auto rows = size_t(spec.count * g.ntheta * g.w);
    if (!adjoint) {
      ins[i].resize(plane);
      outs[i].resize(rows);
      ops.pack_u1_rows(in, spec, ins[i]);
      if (fused_ref != nullptr) {
        refs[i].resize(rows);
        ops.pack_dhat_rows(*fused_ref, spec, refs[i]);
      }
      work.push_back({spec, ins[i], outs[i], refs[i]});
    } else {
      ins[i].resize(rows);
      outs[i].resize(plane);
      ops.pack_dhat_rows(in, spec, ins[i]);
      work.push_back({spec, ins[i], outs[i]});
    }
  }
  auto rep = exec_.run_stage(
      adjoint ? memo::OpKind::Fu2DAdj : memo::OpKind::Fu2D, work, t);
  for (std::size_t i = 0; i < n; ++i) {
    if (!adjoint) {
      ops.unpack_dhat_rows(outs[i], chunks[i], out);
    } else {
      ops.unpack_u1_rows(outs[i], chunks[i], out);
    }
  }
  return rep.done;
}

sim::VTime Solver::stage_f2d(Array3D<cfloat>& d, bool inverse, sim::VTime t) {
  // Algorithm 1 path: every projection is shipped to the GPU, transformed,
  // and shipped back — the transfers the cancellation optimization removes.
  const auto& ops = ml_.ops();
  const auto& g = ops.geometry();
  // Real numerics (all projections at once).
  ops.f2d(d, inverse);
  // Virtual time: chunked by groups of projections.
  sim::VTime done = t;
  auto chunks = lamino::make_chunks(g.ntheta, cfg_.chunk_size);
  for (const auto& spec : chunks) {
    const double bytes =
        double(spec.count * g.h * g.w) * sizeof(cfloat) * cfg_.work_scale;
    const double flops = double(spec.count) * ops.f2d_proj_flops() *
                         cfg_.f2d_cost_factor * cfg_.work_scale;
    done = ml_.device_h2d(t, bytes);
    done = ml_.device_kernel(done, flops);
    done = ml_.device_d2h(done, bytes);
  }
  return done;
}

sim::VTime Solver::data_gradient(const Array3D<cfloat>& u,
                                 const Array3D<cfloat>& dhat_or_d,
                                 Array3D<cfloat>& grad, sim::VTime t,
                                 double* loss_out) {
  const auto& g = ml_.ops().geometry();
  Array3D<cfloat> u1(g.u1_shape());
  Array3D<cfloat> r(g.data_shape());
  mem_.alloc("u1", double(u1.bytes()), t);
  mem_.alloc("residual", double(r.bytes()), t);

  // Forward pass.
  t = stage_fu1d(u, u1, /*adjoint=*/false, t);
  if (cfg_.use_cancellation && cfg_.use_fusion) {
    // Fused GPU kernel computes r̂ = F_u2D(ũ1) − d̂ directly; only the loss
    // reduction remains on the host.
    t = stage_fu2d(u1, r, &dhat_or_d, /*adjoint=*/false, t);
    if (loss_out != nullptr) {
      const EwStats ew0 = knl_.stats();
      *loss_out = 0.5 * knl_.norm_sq(r.span());
      t += ew_cost(knl_.stats() - ew0);
    }
  } else if (cfg_.use_cancellation) {
    // Cancellation without fusion: subtraction on the CPU in the frequency
    // domain — COMPLEX64 arithmetic, the §6.3 regression on small inputs.
    // One fused sweep subtracts and accumulates the loss.
    t = stage_fu2d(u1, r, nullptr, /*adjoint=*/false, t);
    const EwStats ew0 = knl_.stats();
    const double r2 = knl_.residual_norm_sq(r, dhat_or_d);
    if (loss_out != nullptr) *loss_out = 0.5 * r2;
    t += ew_cost(knl_.stats() - ew0) * 2.2;  // complex arithmetic derating
  } else {
    // Algorithm 1: back to the spatial domain, subtract there (cheaper
    // element type), then re-enter the frequency domain.
    t = stage_fu2d(u1, r, nullptr, /*adjoint=*/false, t);
    t = stage_f2d(r, /*inverse=*/true, t);  // F*_2D
    const EwStats ew0 = knl_.stats();
    const double r2 = knl_.residual_norm_sq(r, dhat_or_d);
    if (loss_out != nullptr) *loss_out = 0.5 * r2;
    t += ew_cost(knl_.stats() - ew0);
    t = stage_f2d(r, /*inverse=*/false, t);  // F_2D before the adjoint
  }

  // Adjoint pass.
  Array3D<cfloat> w1(g.u1_shape());
  t = stage_fu2d(r, w1, nullptr, /*adjoint=*/true, t);
  t = stage_fu1d(w1, grad, /*adjoint=*/true, t);
  mem_.release("u1", t);
  mem_.release("residual", t);
  return t;
}

sim::VTime Solver::run_lsp(Array3D<cfloat>& u, const Array3D<cfloat>& dhat_or_d,
                           const VectorField& g, sim::VTime t,
                           double* loss_out, IterationStats* st) {
  const auto& geo = ml_.ops().geometry();
  const Shape3 os = geo.object_shape();
  Array3D<cfloat> grad_data(os), G(os), G_prev(os), p(os);
  mem_.alloc("G_prev", double(G_prev.bytes()), t);
  // Quadratic-safe fixed step: ‖L*L‖ from power iteration (the angular
  // oversampling of low frequencies makes it ≫1) plus the TV Laplacian
  // bound ‖∇ᵀ∇‖ ≤ 12.
  const double step = 1.0 / (1.1 * lip_ + cfg_.rho * 12.0);
  double g_prev_dot = 0;
  for (int k = 0; k < cfg_.inner_iters; ++k) {
    t = observe("u", t);
    double loss = 0;
    t = data_gradient(u, dhat_or_d, grad_data, t, &loss);
    if (loss_out != nullptr) *loss_out = loss;
    const EwStats ew0 = knl_.stats();
    // G = L*(r) + ρ·∇ᵀ(∇u − g) with both CG dot products, one fused sweep —
    // the TV gradient/adjoint run in gather form with no intermediate field.
    const auto dots = knl_.lsp_combine(u, g, grad_data, cfg_.rho, G_prev,
                                       /*has_prev=*/k > 0, G);
    // CG update (Polak–Ribière+ direction, fixed quadratic-safe step).
    double beta = 0;
    if (k > 0) {
      beta = std::max(0.0, (dots.gg - dots.gp) / std::max(g_prev_dot, 1e-30));
    }
    knl_.cg_update(G, /*first=*/k == 0, beta, step, p, u);
    std::swap(G, G_prev);  // replaces the old G_prev = G copy pass
    g_prev_dot = dots.gg;
    t += ew_cost(knl_.stats() - ew0);
    if (st != nullptr) st->rho = cfg_.rho;
  }
  mem_.release("G_prev", t);
  return t;
}

SolveResult Solver::solve(const Array3D<cfloat>& d) {
  SolverCheckpoint ck;
  SolveResult result;
  const bool finished = solve_resumable(d, ck, /*should_yield=*/nullptr,
                                        &result);
  MLR_CHECK(finished);
  return result;
}

bool Solver::solve_resumable(const Array3D<cfloat>& d, SolverCheckpoint& ck,
                             const YieldFn& should_yield, SolveResult* out) {
  const auto& geo = ml_.ops().geometry();
  MLR_CHECK(d.shape() == geo.data_shape());
  MLR_CHECK(out != nullptr);
  const bool resuming = ck.valid;
  SolveResult result;
  sim::VTime t = resuming ? ck.t : 0;
  const double dev_xfer0 = exec_.device_transfer_busy();
  const EwStats solve_ew0 = knl_.stats();
  // The solver's back-to-back run_stage calls form one pipelined round on
  // the engine (pipeline_depth ≥ 2 lets stage s's DB insertions and cache
  // refills drain under stage s+1's encode/probe/score phases). The round
  // must close with the solve: settle on every exit path so callers can
  // read DB entries, cache contents and counters immediately after.
  struct SettleGuard {
    memo::StageExecutor& exec;
    ~SettleGuard() {
      try {
        exec.settle();
      } catch (...) {  // NOLINT(bugprone-empty-catch) — unwinding already
      }
    }
  } settle_guard{exec_};

  // All fused elementwise kernels of this solve tile across the engine's
  // worker pool (deterministic size-based partition — results are
  // bit-identical for any pool width).
  knl_.set_pool(&exec_.pool());
  Array3D<cfloat> u, dref;
  VectorField psi, lambda, gfield(geo.object_shape());
  double rho = cfg_.rho;
  int first_iter = 0;
  if (!resuming) {
    if (obs_ != nullptr) obs_->phase_begin(Phase::Init, t);
    const EwStats init_ew0 = knl_.stats();
    const auto init_w0 = std::chrono::steady_clock::now();
    if (lip_ == 0.0) {
      // Power iteration on L*L (frequency-domain form; F_2D is unitary so
      // the spectrum is identical). Plain operators — a one-off setup cost.
      const auto& ops = ml_.ops();
      Array3D<cfloat> v(geo.object_shape());
      Rng rng(77);
      for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
      Array3D<cfloat> fwd(geo.data_shape()), bwd(geo.object_shape());
      // `nv` carries the norm measured when the iterate was produced, so
      // each iteration is one fused scale pass instead of norm + scale.
      double nv = knl_.l2_norm(v.span());
      for (int it = 0; it < 8; ++it) {
        MLR_CHECK(nv > 0);
        knl_.normalize(v, nv);
        ops.forward_freq(v, fwd);
        ops.adjoint_freq(fwd, bwd);
        nv = lip_ = knl_.l2_norm(bwd.span());
        std::swap(v, bwd);
      }
      MLR_LOG(Debug) << "power iteration: ||L*L|| ~= " << lip_;
    }
    u = Array3D<cfloat>(geo.object_shape());
    dref = d;
    mem_.alloc("u", double(u.bytes()), t);
    mem_.alloc("d", double(dref.bytes()), t);
    if (cfg_.use_cancellation) {
      // Algorithm 2 line 2: d̂ = F_2D·d once, before the iterations.
      t = stage_f2d(dref, /*inverse=*/false, t);
    }
    psi = VectorField(geo.object_shape());
    lambda = VectorField(geo.object_shape());
    mem_.alloc("psi", double(psi.bytes()), t);
    mem_.alloc("lambda", double(lambda.bytes()), t);
    mem_.alloc("g", double(gfield.bytes()), t);
    // Announce the variables' generation to the offload policy (greedy
    // offloads "upon generation", §5.1).
    t = observe("psi", t);
    t = observe("lambda", t);
    t = observe("g", t);
    rho = cfg_.rho;
    end_phase(result, Phase::Init, init_ew0, init_w0, t);
    if (obs_ != nullptr) obs_->phase_end(Phase::Init, t);
  } else {
    // Resume: the init charges were paid in the first segment; restore the
    // iteration-carried variables and continue at the saved boundary.
    lip_ = ck.lip;
    u = std::move(ck.u);
    dref = std::move(ck.dref);
    psi = std::move(ck.psi);
    lambda = std::move(ck.lambda);
    rho = ck.rho;
    first_iter = ck.next_iter;
    MLR_CHECK(first_iter > 0 && first_iter < cfg_.outer_iters);
    mem_.alloc("u", double(u.bytes()), t);
    mem_.alloc("d", double(dref.bytes()), t);
    mem_.alloc("psi", double(psi.bytes()), t);
    mem_.alloc("lambda", double(lambda.bytes()), t);
    mem_.alloc("g", double(gfield.bytes()), t);
  }

  // Encoder calibration: warmup iterations run un-memoized while collecting
  // real chunk samples; the CNN is then contrastive-trained and frozen.
  const bool needs_warmup = ml_.config().enable &&
                            !ml_.key_encoder().quantized() &&
                            cfg_.encoder_warmup_iters > 0;
  MLR_CHECK_MSG(!(resuming && needs_warmup),
                "resume requires a trained (quantized) encoder");
  if (needs_warmup) {
    exec_.set_bypass(true);
    exec_.set_collect_samples(true);
  }

  VectorField gu(geo.object_shape());
  bool paused = false;
  for (int iter = first_iter; iter < cfg_.outer_iters; ++iter) {
    IterationStats st;
    st.iter = iter;
    const auto memo0 = exec_.counters();
    const EwStats iter_ew0 = knl_.stats();
    if (needs_warmup && iter == cfg_.encoder_warmup_iters) {
      exec_.set_collect_samples(false);
      (void)exec_.train_encoder_from_collected(cfg_.encoder_train_steps);
      exec_.set_bypass(false);
      // Training runs on the GPU (paper §4.3.1); charge its kernel time.
      t = ml_.device_kernel(
          t, double(cfg_.encoder_train_steps) * 6.0 *
                 ml_.key_encoder().encode_flops());
    }

    // --- LSP ---------------------------------------------------------
    if (obs_ != nullptr) obs_->phase_begin(Phase::Lsp, t);
    const sim::VTime lsp0 = t;
    const EwStats lsp_ew0 = knl_.stats();
    const auto lsp_w0 = std::chrono::steady_clock::now();
    t = observe("psi", t);
    t = observe("lambda", t);
    {
      const EwStats ew0 = knl_.stats();
      knl_.g_update(gfield, psi, lambda, rho);
      t += ew_cost(knl_.stats() - ew0);
    }
    t = observe("g", t);
    cfg_.rho = rho;  // keep step size consistent with current penalty
    t = run_lsp(u, dref, gfield, t, &st.loss, &st);
    st.lsp_s = t - lsp0;
    end_phase(result, Phase::Lsp, lsp_ew0, lsp_w0, t);
    if (obs_ != nullptr) obs_->phase_end(Phase::Lsp, t);

    // --- RSP: ψ = shrink(∇u + λ/ρ, α/ρ) --------------------------------
    if (obs_ != nullptr) obs_->phase_begin(Phase::Rsp, t);
    const sim::VTime rsp0 = t;
    const EwStats rsp_ew0 = knl_.stats();
    const auto rsp_w0 = std::chrono::steady_clock::now();
    t = observe("lambda", t);
    // One fused sweep: gu = ∇u, ψ = shrink(gu + λ/ρ, α/ρ), and (under
    // adaptive ρ) the penalty residual s² from the in-register old/new ψ —
    // the ψ_prev field and its copy pass are gone.
    const double s2 = knl_.rsp_shrink(u, lambda, rho, cfg_.alpha / rho, psi,
                                      gu, cfg_.adaptive_rho);
    t += ew_cost(knl_.stats() - rsp_ew0);
    t = observe("psi", t);
    st.rsp_s = t - rsp0;
    end_phase(result, Phase::Rsp, rsp_ew0, rsp_w0, t);
    if (obs_ != nullptr) obs_->phase_end(Phase::Rsp, t);

    // --- λ update ------------------------------------------------------
    if (obs_ != nullptr) obs_->phase_begin(Phase::LambdaUpdate, t);
    const sim::VTime lam0 = t;
    const EwStats lam_ew0 = knl_.stats();
    const auto lam_w0 = std::chrono::steady_clock::now();
    t = observe("psi", t);
    t = observe("lambda", t);
    // λ += ρ(∇u − ψ) fused with the r² residual for the ρ update.
    const double r2 =
        knl_.lambda_update(lambda, gu, psi, rho, cfg_.adaptive_rho);
    t += ew_cost(knl_.stats() - lam_ew0);
    st.lambda_s = t - lam0;
    end_phase(result, Phase::LambdaUpdate, lam_ew0, lam_w0, t);
    if (obs_ != nullptr) obs_->phase_end(Phase::LambdaUpdate, t);

    // --- penalty update (residual balancing) ----------------------------
    if (obs_ != nullptr) obs_->phase_begin(Phase::PenaltyUpdate, t);
    const sim::VTime pen0 = t;
    const EwStats pen_ew0 = knl_.stats();
    const auto pen_w0 = std::chrono::steady_clock::now();
    if (cfg_.adaptive_rho) {
      // r²/s² were folded into the λ/RSP sweeps above; only the scalar
      // balancing test remains here.
      const double r = std::sqrt(r2), s = rho * std::sqrt(s2);
      if (r > 10.0 * s) {
        rho *= 2.0;
      } else if (s > 10.0 * r) {
        rho *= 0.5;
      }
    }
    st.loss += cfg_.alpha * knl_.tv_norm(gu);
    t += ew_cost(knl_.stats() - pen_ew0);
    st.penalty_s = t - pen0;
    end_phase(result, Phase::PenaltyUpdate, pen_ew0, pen_w0, t);
    if (obs_ != nullptr) obs_->phase_end(Phase::PenaltyUpdate, t);

    st.t_end = t;
    const auto memo1 = exec_.counters();
    st.memo_delta.computed = memo1.computed - memo0.computed;
    st.memo_delta.miss = memo1.miss - memo0.miss;
    st.memo_delta.db_hit = memo1.db_hit - memo0.db_hit;
    st.memo_delta.cache_hit = memo1.cache_hit - memo0.cache_hit;
    st.memo_delta.db_hit_shared = memo1.db_hit_shared - memo0.db_hit_shared;
    st.ew_delta = knl_.stats() - iter_ew0;
    result.iterations.push_back(st);
    if (hook_) hook_(iter, u);
    MLR_LOG(Debug) << "iter " << iter << " loss " << st.loss << " vtime " << t;

    // Stage-boundary yield point: every variable the next iteration reads
    // is checkpointed above; yielding mid-warmup is excluded (bypass state
    // and collected samples are not part of the checkpoint).
    if (should_yield && !needs_warmup && iter + 1 < cfg_.outer_iters &&
        should_yield(iter + 1, t)) {
      // Close the pipelined round first so the owner can snapshot DB
      // entries, cache contents and virtual clocks (settle never moves t:
      // tail charges use the logical ready times recorded at issue).
      exec_.settle();
      ck.valid = true;
      ck.next_iter = iter + 1;
      ck.rho = rho;
      ck.lip = lip_;
      ck.t = t;
      ck.u = std::move(u);
      ck.dref = std::move(dref);
      ck.psi = std::move(psi);
      ck.lambda = std::move(lambda);
      for (auto& s : result.iterations)
        ck.iterations.push_back(std::move(s));
      for (std::size_t p = 0; p < std::size_t(kNumPhases); ++p) {
        ck.phases[p].ew += result.phases[p].ew;
        ck.phases[p].wall_s += result.phases[p].wall_s;
      }
      ck.ew_total += knl_.stats() - solve_ew0;
      ck.transfer_busy += exec_.device_transfer_busy() - dev_xfer0;
      paused = true;
      break;
    }
  }

  if (paused) {
    mem_.release("psi", ck.t);
    mem_.release("lambda", ck.t);
    mem_.release("g", ck.t);
    mem_.release("u", ck.t);
    mem_.release("d", ck.t);
    return false;
  }

  mem_.release("psi", t);
  mem_.release("lambda", t);
  mem_.release("g", t);
  mem_.release("u", t);
  mem_.release("d", t);
  // Close the pipelined round before reading transfer stats; rethrows any
  // deferred tail error (the guard's settle then finds nothing left).
  exec_.settle();
  // Stitch prior segments' accumulators (empty for an uninterrupted solve)
  // under this segment's totals.
  result.total_vtime = t;
  std::vector<IterationStats> its = std::move(ck.iterations);
  for (auto& s : result.iterations) its.push_back(std::move(s));
  result.iterations = std::move(its);
  for (std::size_t p = 0; p < std::size_t(kNumPhases); ++p) {
    result.phases[p].ew += ck.phases[p].ew;
    result.phases[p].wall_s += ck.phases[p].wall_s;
  }
  result.ew_total = ck.ew_total;
  result.ew_total += knl_.stats() - solve_ew0;
  const double xfer =
      ck.transfer_busy + (exec_.device_transfer_busy() - dev_xfer0);
  result.transfer_share = t > 0 ? xfer / t : 0.0;
  result.u = std::move(u);
  ck = SolverCheckpoint{};  // consumed
  *out = std::move(result);
  return true;
}

double reconstruction_accuracy(const Array3D<cfloat>& reference,
                               const Array3D<cfloat>& candidate) {
  return 1.0 - relative_error<cfloat>(reference.span(), candidate.span());
}

}  // namespace mlr::admm
