// ADMM-FFT laminography solver (paper §2, Algorithms 1 and 2).
//
// Solves  min_u ½‖Lu − d‖² + α‖u‖_TV  by ADMM splitting ψ = ∇u:
//   LSP  — refine u with N_inner conjugate-gradient steps on
//          ½‖Lu−d‖² + ρ/2‖∇u − g‖²,  g = ψ − λ/ρ
//   RSP  — ψ = soft-threshold(∇u + λ/ρ, α/ρ)   (closed form, lightweight)
//   λ    — λ += ρ(∇u − ψ)
//   ρ    — residual-balancing penalty update
//
// Execution styles (the paper's ablation axes):
//   * Algorithm 1 (use_cancellation=false): forward ends with F*_2D, adjoint
//     re-applies F_2D; subtraction happens in the spatial domain on the CPU.
//   * Algorithm 2 (use_cancellation=true): d̂ = F_2D·d precomputed once, the
//     detector transforms cancel; the frequency-domain subtraction runs on
//     the CPU (use_fusion=false) or fused into the F_u2D GPU kernel
//     (use_fusion=true).
// All F_u* chunk work is dispatched through memo::MemoizedLamino, so the
// same solver runs plain, memoized, cached, or coalesced configurations.
#pragma once

#include <array>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "admm/kernels.hpp"
#include "admm/tv.hpp"
#include "lamino/phantom.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"
#include "sim/clock.hpp"

namespace mlr::admm {

/// The four execution phases of one ADMM iteration (paper §5.1) plus setup.
enum class Phase { Init = 0, Lsp = 1, Rsp = 2, LambdaUpdate = 3, PenaltyUpdate = 4 };
const char* phase_name(Phase p);
inline constexpr int kNumPhases = 5;

/// Observer for variable liveness across phases — the hook ADMM-Offload
/// plugs into. `access` may return a later time than `t` when the variable
/// has to be prefetched back from SSD.
class PhaseObserver {
 public:
  virtual ~PhaseObserver() = default;
  virtual void phase_begin(Phase p, sim::VTime t) {}
  virtual sim::VTime on_access(const std::string& var, sim::VTime t) {
    return t;
  }
  virtual void phase_end(Phase p, sim::VTime t) {}
};

struct AdmmConfig {
  int outer_iters = 20;
  int inner_iters = 4;       ///< N_inner CG steps in LSP
  double alpha = 1e-3;       ///< TV weight
  double rho = 0.5;          ///< initial ADMM penalty
  i64 chunk_size = 4;        ///< chunk thickness (paper default 16 at 1K³)
  bool use_cancellation = true;
  bool use_fusion = true;
  bool adaptive_rho = true;
  double cpu_flops = 5.0e10;   ///< host elementwise throughput
  double cpu_mem_bw = 20.0e9;  ///< host streaming bandwidth
  /// Virtual-clock volume scaling (see memo::MemoConfig::work_scale); keep
  /// both equal so host and device stay proportionate.
  double work_scale = 1.0;
  /// Detector-FFT derating: the full-volume F_2D/F*_2D stages run under the
  /// same conditions as the USFFT kernels (strided batched transforms with
  /// staging), so they share the empirical derating.
  double f2d_cost_factor = 100.0;
  /// When memoization is enabled and the encoder is untrained, run this many
  /// leading iterations in bypass mode while collecting encoder training
  /// chunks, then train + INT8-freeze the encoder (mLR's calibration pass).
  int encoder_warmup_iters = 1;
  int encoder_train_steps = 300;
};

struct IterationStats {
  int iter = 0;
  double loss = 0;            ///< ½‖Lu−d‖² + α‖∇u‖₁ (data term in freq domain)
  double rho = 0;
  sim::VTime t_end = 0;       ///< virtual time at end of iteration
  double lsp_s = 0;           ///< virtual seconds in LSP
  double rsp_s = 0, lambda_s = 0, penalty_s = 0;
  memo::MemoCounters memo_delta;  ///< memoization outcomes this iteration
  EwStats ew_delta;               ///< fused-kernel pass/byte counters this iter
};

/// Per-phase profile of the fused kernel layer: which ADMM phase spent which
/// elementwise passes (deterministic) and how much host wall clock (not).
struct PhaseProfile {
  EwStats ew;
  double wall_s = 0;  ///< host wall-clock seconds (diagnostic only)
};

struct SolveResult {
  Array3D<cfloat> u;
  std::vector<IterationStats> iterations;
  sim::VTime total_vtime = 0;
  double transfer_share = 0;  ///< fraction of vtime spent in CPU↔GPU copy
  EwStats ew_total;           ///< all fused-kernel work of the solve
  std::array<PhaseProfile, kNumPhases> phases;  ///< indexed by Phase
};

/// Everything a paused solve carries across a serve-layer preemption: the
/// cross-iteration ADMM state (u, ψ, λ, ρ, the Lipschitz estimate, the
/// pre-transformed data term d̂) plus the partial SolveResult accumulators
/// of the completed segments. Engine-side state (memo DB entries, cache
/// contents, counters, virtual timelines) is checkpointed separately by the
/// owner — the solver's checkpoint is exactly the set of variables its
/// outer loop carries between iterations (gfield/gu are rewritten fresh
/// each iteration), which is why an outer-iteration boundary is an *exact*
/// yield point: resuming reproduces the uninterrupted solve bit for bit.
struct SolverCheckpoint {
  bool valid = false;  ///< a paused solve is stored
  int next_iter = 0;   ///< first outer iteration the resume will run
  double rho = 0;
  double lip = 0;      ///< power-iteration result (not re-run on resume)
  sim::VTime t = 0;    ///< virtual time at the yield point
  Array3D<cfloat> u;
  Array3D<cfloat> dref;  ///< d̂ (Algorithm 2) / the data copy (Algorithm 1)
  VectorField psi, lambda;
  /// Partial SolveResult accumulators from completed segments.
  std::vector<IterationStats> iterations;
  std::array<PhaseProfile, kNumPhases> phases{};
  EwStats ew_total;
  double transfer_busy = 0;  ///< accumulated CPU↔GPU copy busy seconds
  [[nodiscard]] bool started() const { return valid; }
};

/// Yield predicate for preemptible solves, consulted after every completed
/// outer iteration with (next_iter, virtual time now). Returning true pauses
/// the solve at that stage boundary.
using YieldFn = std::function<bool(int, sim::VTime)>;

class Solver {
 public:
  /// `ml` supplies both the real operators and the execution backend (all
  /// chunk stages run through its built-in StageExecutor).
  Solver(memo::MemoizedLamino& ml, AdmmConfig cfg);
  /// Engine injection: chunk stages run through `exec`, which may span
  /// several devices and carry a dedicated worker pool (the
  /// ExecutionContext path). `exec.wrapper(0)` hosts the un-memoized
  /// detector stages and the encoder.
  Solver(memo::StageExecutor& exec, AdmmConfig cfg);

  /// Reconstruct from measured projections `d` (spatial detector domain).
  SolveResult solve(const Array3D<cfloat>& d);

  /// Preemptible solve. With `ck.valid`, resumes a paused solve from its
  /// outer-iteration boundary instead of starting fresh (the owner must have
  /// rebuilt the engine state — DB, cache, counters, virtual clocks — the
  /// checkpoint was taken against; `d` is ignored beyond shape checks since
  /// the checkpoint holds d̂). After each completed iteration `should_yield`
  /// (when set) is consulted; on true the solve settles the pipelined round,
  /// saves its carried state into `ck` and returns false. Returns true when
  /// the solve ran to completion — `*out` then holds the stitched result,
  /// bit-identical to an uninterrupted solve() of the same problem.
  /// Yielding requires a trained encoder (no warmup in flight).
  bool solve_resumable(const Array3D<cfloat>& d, SolverCheckpoint& ck,
                       const YieldFn& should_yield, SolveResult* out);

  /// Per-variable memory accounting (Fig 2 / Fig 13 input).
  [[nodiscard]] const sim::MemoryTracker& memory() const { return mem_; }
  /// Cumulative fused-kernel counters (kernel invocations, elementwise
  /// passes, bytes streamed vs the unfused chains) across all solves.
  [[nodiscard]] const EwStats& ew_stats() const { return knl_.stats(); }
  void set_observer(PhaseObserver* obs) { obs_ = obs; }
  /// Callback fired once per outer iteration with the current u (used by
  /// characterization benches, e.g. the Fig 4 chunk-similarity probe).
  void set_iteration_hook(
      std::function<void(int, const Array3D<cfloat>&)> hook) {
    hook_ = std::move(hook);
  }

 private:
  // One LSP pass: N_inner CG refinements of u. Returns vtime at completion
  // and accumulates the data-fidelity loss of the last inner iteration.
  sim::VTime run_lsp(Array3D<cfloat>& u, const Array3D<cfloat>& dhat_or_d,
                     const VectorField& g, sim::VTime t, double* loss_out,
                     IterationStats* st);

  // Gradient of the data term via the chunked operator stages; result in
  // `grad`. Returns vtime when the gradient is available.
  sim::VTime data_gradient(const Array3D<cfloat>& u,
                           const Array3D<cfloat>& dhat_or_d,
                           Array3D<cfloat>& grad, sim::VTime t,
                           double* loss_out);

  // Stage helpers.
  sim::VTime stage_fu1d(const Array3D<cfloat>& u, Array3D<cfloat>& u1,
                        bool adjoint, sim::VTime t);
  sim::VTime stage_fu2d(const Array3D<cfloat>& u1, Array3D<cfloat>& dhat,
                        const Array3D<cfloat>* fused_ref, bool adjoint,
                        sim::VTime t);
  // Detector-plane FFT stage (Algorithm 1 only): per-θ unitary transform on
  // the simulated GPU, including its CPU↔GPU transfers.
  sim::VTime stage_f2d(Array3D<cfloat>& d, bool inverse, sim::VTime t);

  // Host elementwise op cost: `elems` complex values touched `passes` times.
  double host_cost(double elems, double passes) const;
  // Virtual-time charge for a fused-kernel stats delta: the bytes the fused
  // form actually streamed, priced at the host bandwidth/flops model. The
  // delta is deterministic, so the charge is too.
  double ew_cost(const EwStats& delta) const;
  // Fold the kernel work since `ew0` and the wall clock since `w0` into the
  // phase profile of `r`; emits the phase's trace span and a
  // "vclock.session" counter sample at virtual time `t` when recording.
  void end_phase(SolveResult& r, Phase p, const EwStats& ew0,
                 std::chrono::steady_clock::time_point w0, sim::VTime t);

  sim::VTime observe(const std::string& var, sim::VTime t) {
    return obs_ != nullptr ? obs_->on_access(var, t) : t;
  }

  memo::StageExecutor& exec_;  ///< runs every chunked operator stage
  memo::MemoizedLamino& ml_;   ///< primary wrapper: encoder + detector FFTs
  AdmmConfig cfg_;
  SolverKernels knl_;  ///< fused elementwise kernels (pool set per solve)
  double lip_ = 0.0;  ///< ‖L*L‖ estimate (power iteration, set in solve())
  sim::MemoryTracker mem_;
  PhaseObserver* obs_ = nullptr;
  std::function<void(int, const Array3D<cfloat>&)> hook_;
  double transfer_busy_before_ = 0;
};

/// Reconstruction accuracy between a reference reconstruction and a
/// memoized one: A = 1 − ‖R_ref − R‖_F/‖R_ref‖_F (paper Eq. 4/5).
double reconstruction_accuracy(const Array3D<cfloat>& reference,
                               const Array3D<cfloat>& candidate);

}  // namespace mlr::admm
