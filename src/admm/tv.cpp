#include "admm/tv.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mlr::admm {

void tv_grad(const Array3D<cfloat>& u, VectorField& g) {
  MLR_CHECK(g.shape() == u.shape());
  const i64 n1 = u.n1(), n0 = u.n0(), n2 = u.n2();
  for (i64 i1 = 0; i1 < n1; ++i1)
    for (i64 i0 = 0; i0 < n0; ++i0)
      for (i64 i2 = 0; i2 < n2; ++i2) {
        const cfloat v = u(i1, i0, i2);
        g.c[0](i1, i0, i2) = (i1 + 1 < n1) ? u(i1 + 1, i0, i2) - v : cfloat{};
        g.c[1](i1, i0, i2) = (i0 + 1 < n0) ? u(i1, i0 + 1, i2) - v : cfloat{};
        g.c[2](i1, i0, i2) = (i2 + 1 < n2) ? u(i1, i0, i2 + 1) - v : cfloat{};
      }
}

void tv_grad_adjoint(const VectorField& g, Array3D<cfloat>& out) {
  MLR_CHECK(out.shape() == g.shape());
  const i64 n1 = out.n1(), n0 = out.n0(), n2 = out.n2();
  out.zero();
  // Adjoint of forward difference with Neumann truncation: scatter +v to the
  // shifted cell and −v to the source cell wherever the forward difference
  // was actually formed.
  for (i64 i1 = 0; i1 < n1; ++i1)
    for (i64 i0 = 0; i0 < n0; ++i0)
      for (i64 i2 = 0; i2 < n2; ++i2) {
        const cfloat v0 = g.c[0](i1, i0, i2);
        if (i1 + 1 < n1) {
          out(i1 + 1, i0, i2) += v0;
          out(i1, i0, i2) -= v0;
        }
        const cfloat v1 = g.c[1](i1, i0, i2);
        if (i0 + 1 < n0) {
          out(i1, i0 + 1, i2) += v1;
          out(i1, i0, i2) -= v1;
        }
        const cfloat v2 = g.c[2](i1, i0, i2);
        if (i2 + 1 < n2) {
          out(i1, i0, i2 + 1) += v2;
          out(i1, i0, i2) -= v2;
        }
      }
}

void soft_threshold(VectorField& x, double t) {
  MLR_CHECK(t >= 0.0);
  for (auto& comp : x.c) {
    for (auto& v : comp) {
      const double mag = std::abs(v);
      if (mag <= t) {
        v = cfloat{};
      } else {
        v *= float((mag - t) / mag);
      }
    }
  }
}

double tv_norm(const VectorField& g) {
  double s = 0;
  for (const auto& comp : g.c)
    for (const auto& v : comp) s += std::abs(v);
  return s;
}

void axpy(VectorField& y, double a, const VectorField& x) {
  MLR_CHECK(y.shape() == x.shape());
  for (int k = 0; k < 3; ++k) {
    const auto fa = float(a);
    for (i64 i = 0; i < y.c[k].size(); ++i)
      y.c[k].data()[i] += fa * x.c[k].data()[i];
  }
}

}  // namespace mlr::admm
