// Total-variation operators for the regularization term α‖u‖_TV (paper §2).
//
// Forward-difference gradient ∇: C^(n1,n0,n2) → C^(3,n1,n0,n2) with Neumann
// boundaries, its exact adjoint ∇ᵀ = −div, and the complex soft-thresholding
// proximal step that solves the RSP subproblem in closed form.
//
// These are the NAIVE reference implementations: the solver's hot path runs
// the fused single-pass versions in admm/kernels.hpp, and tests/ew_test.cpp
// pins every fused chain bitwise against the loop chains built from the
// functions below. Keep them straightforward.
#pragma once

#include <array>

#include "common/array.hpp"

namespace mlr::admm {

/// Three-component vector field (the TV gradient of a volume).
struct VectorField {
  std::array<Array3D<cfloat>, 3> c;

  VectorField() = default;
  explicit VectorField(Shape3 s)
      : c{Array3D<cfloat>(s), Array3D<cfloat>(s), Array3D<cfloat>(s)} {}

  [[nodiscard]] Shape3 shape() const { return c[0].shape(); }
  [[nodiscard]] std::size_t bytes() const { return 3 * c[0].bytes(); }
  void zero() {
    for (auto& a : c) a.zero();
  }
};

/// g = ∇u (forward differences, Neumann boundary: last difference is 0).
void tv_grad(const Array3D<cfloat>& u, VectorField& g);

/// out = ∇ᵀg = −div(g) — the exact adjoint of tv_grad:
/// <∇u, g> == <u, ∇ᵀg> for all u, g.
void tv_grad_adjoint(const VectorField& g, Array3D<cfloat>& out);

/// Anisotropic complex soft-threshold: each component value v becomes
/// v·max(0, 1 − t/|v|). Solves min_ψ α‖ψ‖₁ + ρ/2‖ψ − x‖² with t = α/ρ.
void soft_threshold(VectorField& x, double t);

/// TV seminorm Σ|∇u| (anisotropic, complex magnitudes).
double tv_norm(const VectorField& g);

/// y += a·x (vector fields).
void axpy(VectorField& y, double a, const VectorField& x);

}  // namespace mlr::admm
