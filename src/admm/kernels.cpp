#include "admm/kernels.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mlr::admm {

namespace {

// One row of an (n1, n0, n2) volume is its n2 contiguous elements at
// (i1, i0); stencil kernels tile whole rows so neighbour rows are plain
// pointer offsets.
struct RowGeom {
  i64 n1, n0, n2, rows;
  explicit RowGeom(const Shape3& s)
      : n1(s.n1), n0(s.n0), n2(s.n2), rows(s.n1 * s.n0) {}
};

}  // namespace

std::span<double> SolverKernels::partials(i64 tiles, i64 lanes) {
  auto buf = scratch_.buffer(std::size_t(tiles * lanes));
  std::fill(buf.begin(), buf.end(), 0.0);
  return buf;
}

void SolverKernels::bump(u64 fused, u64 naive, double elems_per_pass) {
  ++stats_.kernels;
  stats_.passes += fused;
  stats_.naive_passes += naive;
  stats_.bytes += double(fused) * elems_per_pass * sizeof(cfloat);
  stats_.naive_bytes += double(naive) * elems_per_pass * sizeof(cfloat);
}

void SolverKernels::g_update(VectorField& g, const VectorField& psi,
                             const VectorField& lambda, double rho) {
  MLR_CHECK(g.shape() == psi.shape() && g.shape() == lambda.shape());
  const i64 n = g.c[0].size();
  const auto inv = float(rho);  // divide, matching the pre-fusion loop
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64) {
    for (int c = 0; c < 3; ++c) {
      const cfloat* ps = psi.c[c].data();
      const cfloat* la = lambda.c[c].data();
      cfloat* gd = g.c[c].data();
      for (i64 i = b; i < e; ++i) gd[i] = ps[i] - la[i] / inv;
    }
  });
  bump(9, 9, double(n));
}

SolverKernels::Dots SolverKernels::lsp_combine(
    const Array3D<cfloat>& u, const VectorField& g,
    const Array3D<cfloat>& grad_data, double rho,
    const Array3D<cfloat>& G_prev, bool has_prev, Array3D<cfloat>& G) {
  MLR_CHECK(G.shape() == u.shape() && grad_data.shape() == u.shape());
  const RowGeom rg(u.shape());
  const i64 tiles = ew_num_row_tiles(rg.rows, rg.n2);
  auto parts = partials(tiles, 2);
  const auto frho = float(rho);
  const cfloat* ud = u.data();
  const cfloat* g0 = g.c[0].data();
  const cfloat* g1 = g.c[1].data();
  const cfloat* g2 = g.c[2].data();
  // gu = ∇u − g, evaluated on demand; the forward difference only exists
  // inside the boundary, exactly the cells the scatter adjoint ever read.
  const i64 s1 = rg.n0 * rg.n2, s0 = rg.n2;
  auto gu_at = [&](int c, i64 idx) {
    const i64 stride = c == 0 ? s1 : c == 1 ? s0 : i64(1);
    const cfloat* gc = c == 0 ? g0 : c == 1 ? g1 : g2;
    return (ud[idx + stride] - ud[idx]) - gc[idx];
  };
  ew_for_row_tiles(pool_, rg.rows, rg.n2, [&](i64 rb, i64 re, i64 t) {
    double gg = 0, gp = 0;
    for (i64 r = rb; r < re; ++r) {
      const i64 a = r / rg.n0, b = r % rg.n0;
      const i64 row = r * rg.n2;
      for (i64 c = 0; c < rg.n2; ++c) {
        const i64 idx = row + c;
        // Gather form of tv.cpp's scatter adjoint: contributions accumulate
        // in the scatter's exact temporal order (lex-earlier visits first,
        // then this cell's −v0, −v1, −v2), so the sum is bit-identical.
        cfloat acc{};
        if (a > 0) acc += gu_at(0, idx - s1);
        if (b > 0) acc += gu_at(1, idx - s0);
        if (c > 0) acc += gu_at(2, idx - 1);
        if (a + 1 < rg.n1) acc -= gu_at(0, idx);
        if (b + 1 < rg.n0) acc -= gu_at(1, idx);
        if (c + 1 < rg.n2) acc -= gu_at(2, idx);
        const cfloat Gv = grad_data.data()[idx] + frho * acc;
        G.data()[idx] = Gv;
        gg += double(Gv.real()) * Gv.real() + double(Gv.imag()) * Gv.imag();
        if (has_prev) {
          const cfloat Pv = G_prev.data()[idx];
          gp += double(Gv.real()) * Pv.real() + double(Gv.imag()) * Pv.imag();
        }
      }
    }
    parts[std::size_t(2 * t)] = gg;
    parts[std::size_t(2 * t + 1)] = gp;
  });
  Dots d;
  for (i64 t = 0; t < tiles; ++t) {
    d.gg += parts[std::size_t(2 * t)];
    d.gp += parts[std::size_t(2 * t + 1)];
  }
  // Naive chain: tv_grad(4) + gu−=g(9) + scatter adjoint(6) + combine(3) +
  // Re⟨G,G⟩(1) + Re⟨G,G_prev⟩(2 when taken).
  bump(has_prev ? 7 : 6, has_prev ? 25 : 23, double(u.size()));
  return d;
}

void SolverKernels::cg_update(const Array3D<cfloat>& G, bool first,
                              double beta, double step, Array3D<cfloat>& p,
                              Array3D<cfloat>& u) {
  MLR_CHECK(p.shape() == G.shape() && u.shape() == G.shape());
  const i64 n = G.size();
  const auto fb = float(beta), fs = float(step);
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64) {
    const cfloat* gd = G.data();
    cfloat* pd = p.data();
    cfloat* ud = u.data();
    if (first) {
      for (i64 i = b; i < e; ++i) {
        const cfloat pv = -gd[i];
        pd[i] = pv;
        ud[i] += fs * pv;
      }
    } else {
      for (i64 i = b; i < e; ++i) {
        const cfloat pv = -gd[i] + fb * pd[i];
        pd[i] = pv;
        ud[i] += fs * pv;
      }
    }
  });
  // Naive: p update (2 or 3) + u update (3) + the G_prev = G copy (2) the
  // buffer swap replaced.
  bump(first ? 4 : 5, first ? 7 : 8, double(n));
}

double SolverKernels::rsp_shrink(const Array3D<cfloat>& u,
                                 const VectorField& lambda, double rho,
                                 double thr, VectorField& psi, VectorField& gu,
                                 bool want_s2) {
  MLR_CHECK(psi.shape() == u.shape() && gu.shape() == u.shape());
  MLR_CHECK(thr >= 0.0);
  const RowGeom rg(u.shape());
  const i64 tiles = ew_num_row_tiles(rg.rows, rg.n2);
  auto parts = partials(tiles, 1);
  const auto frho = float(rho);
  const cfloat* ud = u.data();
  const i64 s1 = rg.n0 * rg.n2, s0 = rg.n2;
  ew_for_row_tiles(pool_, rg.rows, rg.n2, [&](i64 rb, i64 re, i64 t) {
    double s2 = 0;
    for (i64 r = rb; r < re; ++r) {
      const i64 a = r / rg.n0, b = r % rg.n0;
      const i64 row = r * rg.n2;
      for (i64 c = 0; c < rg.n2; ++c) {
        const i64 idx = row + c;
        const cfloat v = ud[idx];
        const cfloat d0 = (a + 1 < rg.n1) ? ud[idx + s1] - v : cfloat{};
        const cfloat d1 = (b + 1 < rg.n0) ? ud[idx + s0] - v : cfloat{};
        const cfloat d2 = (c + 1 < rg.n2) ? ud[idx + 1] - v : cfloat{};
        gu.c[0].data()[idx] = d0;
        gu.c[1].data()[idx] = d1;
        gu.c[2].data()[idx] = d2;
        const cfloat grads[3] = {d0, d1, d2};
        for (int k = 0; k < 3; ++k) {
          cfloat* pp = psi.c[k].data() + idx;
          const cfloat old = *pp;
          const cfloat x = grads[k] + lambda.c[k].data()[idx] / frho;
          const double mag = std::abs(x);
          const cfloat nw =
              mag <= thr ? cfloat{} : x * float((mag - thr) / mag);
          *pp = nw;
          if (want_s2) s2 += std::norm(nw - old);
        }
      }
    }
    parts[std::size_t(t)] = s2;
  });
  // Naive: ψ_prev = ψ copy (6) + tv_grad (4) + gu+λ/ρ add (9) +
  // soft_threshold (6) + s2's exclusive ψ_prev reads (3 when taken).
  bump(want_s2 ? 13 : 10, want_s2 ? 28 : 25, double(u.size()));
  return ew_combine(parts.subspan(0, std::size_t(tiles)));
}

double SolverKernels::lambda_update(VectorField& lambda, const VectorField& gu,
                                    const VectorField& psi, double rho,
                                    bool want_r2) {
  MLR_CHECK(lambda.shape() == gu.shape() && lambda.shape() == psi.shape());
  const i64 n = lambda.c[0].size();
  const i64 tiles = ew_num_tiles(n);
  auto parts = partials(tiles, 1);
  const auto frho = float(rho);
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64 t) {
    double r2 = 0;
    for (int c = 0; c < 3; ++c) {
      const cfloat* gd = gu.c[c].data();
      const cfloat* ps = psi.c[c].data();
      cfloat* la = lambda.c[c].data();
      for (i64 i = b; i < e; ++i) {
        const cfloat d = gd[i] - ps[i];
        la[i] += frho * d;
        if (want_r2) r2 += std::norm(d);
      }
    }
    parts[std::size_t(t)] = r2;
  });
  // Naive: the λ loop (12) + r2's share of the old penalty-residual loop
  // (gu + ψ re-reads, 6, when taken).
  bump(12, want_r2 ? 18 : 12, double(n));
  return ew_combine(parts.subspan(0, std::size_t(tiles)));
}

double SolverKernels::residual_norm_sq(Array3D<cfloat>& r,
                                       const Array3D<cfloat>& d) {
  MLR_CHECK(r.shape() == d.shape());
  const i64 n = r.size();
  const i64 tiles = ew_num_tiles(n);
  auto parts = partials(tiles, 1);
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64 t) {
    cfloat* rd = r.data();
    const cfloat* dd = d.data();
    double s = 0;
    for (i64 i = b; i < e; ++i) {
      rd[i] -= dd[i];
      s += std::norm(rd[i]);
    }
    parts[std::size_t(t)] = s;
  });
  bump(3, 4, double(n));
  return ew_combine(parts.subspan(0, std::size_t(tiles)));
}

double SolverKernels::norm_sq(std::span<const cfloat> x) {
  const i64 n = i64(x.size());
  const i64 tiles = ew_num_tiles(n);
  auto parts = partials(tiles, 1);
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64 t) {
    double s = 0;
    for (i64 i = b; i < e; ++i) s += std::norm(x[std::size_t(i)]);
    parts[std::size_t(t)] = s;
  });
  bump(1, 1, double(n));
  return ew_combine(parts.subspan(0, std::size_t(tiles)));
}

double SolverKernels::tv_norm(const VectorField& g) {
  const i64 n = g.c[0].size();
  const i64 tiles = ew_num_tiles(n);
  auto parts = partials(tiles, 1);
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64 t) {
    double s = 0;
    for (int c = 0; c < 3; ++c) {
      const cfloat* gd = g.c[c].data();
      for (i64 i = b; i < e; ++i) s += std::abs(gd[i]);
    }
    parts[std::size_t(t)] = s;
  });
  bump(3, 3, double(n));
  return ew_combine(parts.subspan(0, std::size_t(tiles)));
}

void SolverKernels::normalize(Array3D<cfloat>& v, double prev_norm) {
  MLR_CHECK(prev_norm > 0);
  const i64 n = v.size();
  const auto s = float(1.0 / prev_norm);
  ew_for_tiles(pool_, n, [&](i64 b, i64 e, i64) {
    cfloat* vd = v.data();
    for (i64 i = b; i < e; ++i) vd[i] *= s;
  });
  // Naive: the per-iteration ‖v‖ pass (1) this kernel's reuse of the
  // previous adjoint's measured norm eliminated, plus the scale rw (2).
  bump(2, 3, double(n));
}

double SolverKernels::l2_norm(std::span<const cfloat> x) {
  return std::sqrt(norm_sq(x));
}

}  // namespace mlr::admm
