// Fused elementwise kernels for the ADMM solver's inner phases.
//
// Every RSP/λ/ρ/ψ/TV update chain that used to run as a sequence of
// separate `for (i64 i …)` loops over full volumes — one memory pass per
// operation — is rewritten here as ONE single-pass kernel, tiled across the
// ThreadPool with the deterministic size-based partition of common/ew.hpp.
// The fused chains (old loop chain → kernel):
//
//   g = ψ − λ/ρ                                         → g_update
//   ∇u; gu−=g; ∇ᵀ(gu); G = L*r + ρ·∇ᵀ; G·G; G·G_prev    → lsp_combine
//   p = −G + β·p; u += step·p                           → cg_update
//   ψ_prev = ψ; ∇u; ψ = shrink(∇u + λ/ρ); Σ|ψ−ψ_prev|²  → rsp_shrink
//   λ += ρ(∇u − ψ); Σ|∇u − ψ|²                          → lambda_update
//   r −= d̂;  ½‖r‖²                                      → residual_norm_sq
//   power-iteration norm pass + v *= 1/‖v‖              → normalize
//
// lsp_combine evaluates the TV adjoint in *gather* form, recomputing
// gu = ∇u − g on the fly from u and g neighbours, so the whole
// tv_grad → subtract → tv_grad_adjoint → combine chain needs no
// intermediate field at all; the gather accumulates contributions in the
// exact temporal order of tv.cpp's scatter, so G is bit-identical to the
// naive chain. rsp_shrink likewise folds ∇u into its sweep (gu is still
// materialized — the λ/ρ phases read it) and absorbs the ψ_prev copy and
// the penalty s2 sum, eliminating the ψ_prev field entirely.
//
// Determinism contract: pure maps are bit-identical to the naive loops by
// construction; reductions write per-tile double partials into a
// PerThreadScratch arena (steady-state allocs/op = 0, the bench_fft_micro
// contract) and combine them serially in fixed tile order, so every value
// is bit-identical for ANY pool width — only wall time varies. Reduction
// results differ in final ulps from the old single-accumulator loops; all
// consumers (β, loss, ρ balancing) are tolerance-level quantities.
//
// EwStats accounting: each kernel bumps the passes it made and the passes
// the pre-fusion chain made for the same work (see ew.hpp for the
// convention), so `stats()` deltas measure the fusion win deterministically
// — the acceptance criterion even a 1-core container can check.
#pragma once

#include "admm/tv.hpp"
#include "common/ew.hpp"
#include "common/scratch.hpp"

namespace mlr::admm {

class SolverKernels {
 public:
  SolverKernels() = default;

  /// Pool for the tiled fan-out; null (or one worker) runs tiles serially
  /// on the caller. Results are bit-identical either way.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] const EwStats& stats() const { return stats_; }

  /// g = ψ − λ/ρ (one pass over the three components).
  void g_update(VectorField& g, const VectorField& psi,
                const VectorField& lambda, double rho);

  struct Dots {
    double gg = 0;  ///< Re⟨G, G⟩
    double gp = 0;  ///< Re⟨G, G_prev⟩ (0 when has_prev is false)
  };
  /// G = grad_data + ρ·∇ᵀ(∇u − g), with both CG dot products accumulated in
  /// the same sweep. The TV adjoint is evaluated in gather form with
  /// gu = ∇u − g recomputed on the fly — no intermediate field. `G_prev` is
  /// only read when `has_prev` (CG step k ≥ 1).
  Dots lsp_combine(const Array3D<cfloat>& u, const VectorField& g,
                   const Array3D<cfloat>& grad_data, double rho,
                   const Array3D<cfloat>& G_prev, bool has_prev,
                   Array3D<cfloat>& G);

  /// p = −G + β·p (p = −G when `first`); u += step·p — one sweep. The old
  /// G_prev = G copy pass is gone: the solver swaps the G/G_prev buffers.
  void cg_update(const Array3D<cfloat>& G, bool first, double beta,
                 double step, Array3D<cfloat>& p, Array3D<cfloat>& u);

  /// RSP proximal step, one sweep: gu = ∇u (materialized — the λ/ρ phases
  /// read it), ψ = shrink(gu + λ/ρ, thr), and — with `want_s2` — the
  /// penalty residual Σ|ψ_new − ψ_old|² accumulated from the in-register
  /// old/new values, eliminating the ψ_prev field and its copy pass.
  double rsp_shrink(const Array3D<cfloat>& u, const VectorField& lambda,
                    double rho, double thr, VectorField& psi, VectorField& gu,
                    bool want_s2);

  /// λ += ρ(gu − ψ), with — when `want_r2` — the penalty residual
  /// Σ|gu − ψ|² accumulated in the same sweep.
  double lambda_update(VectorField& lambda, const VectorField& gu,
                       const VectorField& psi, double rho, bool want_r2);

  /// r −= d; returns ‖r‖² (fused residual subtraction + loss reduction —
  /// the CPU-subtraction paths of data_gradient).
  double residual_norm_sq(Array3D<cfloat>& r, const Array3D<cfloat>& d);

  /// ‖x‖² (fusion path: the subtraction already happened in the GPU stage).
  double norm_sq(std::span<const cfloat> x);

  /// TV seminorm Σ|v| over the three components.
  double tv_norm(const VectorField& g);

  /// v *= 1/prev_norm — the power-iteration normalize. `prev_norm` is the
  /// ‖·‖ the caller measured when this buffer was produced (the adjoint of
  /// the previous iteration), so the old per-iteration norm pass is gone.
  void normalize(Array3D<cfloat>& v, double prev_norm);

  /// ‖x‖ with the deterministic tile-ordered reduction.
  double l2_norm(std::span<const cfloat> x);

 private:
  /// Per-tile reduction slots (lanes doubles per tile), zeroed. Backed by a
  /// per-thread arena: steady state never touches the heap.
  std::span<double> partials(i64 tiles, i64 lanes);
  void bump(u64 fused, u64 naive, double elems_per_pass);

  ThreadPool* pool_ = nullptr;
  PerThreadScratch<double> scratch_;
  EwStats stats_;
};

}  // namespace mlr::admm
