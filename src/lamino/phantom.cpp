#include "lamino/phantom.hpp"

#include <algorithm>
#include <cmath>

namespace mlr::lamino {

namespace {

// Add a Gaussian blob at (c1, c0, c2) with per-axis radii and amplitude.
void add_blob(Array3D<float>& v, double c1, double c0, double c2, double r1,
              double r0, double r2, float amp) {
  const i64 n1 = v.n1(), n0 = v.n0(), n2 = v.n2();
  const i64 lo1 = std::max<i64>(0, i64(c1 - 3 * r1));
  const i64 hi1 = std::min<i64>(n1 - 1, i64(c1 + 3 * r1));
  const i64 lo0 = std::max<i64>(0, i64(c0 - 3 * r0));
  const i64 hi0 = std::min<i64>(n0 - 1, i64(c0 + 3 * r0));
  const i64 lo2 = std::max<i64>(0, i64(c2 - 3 * r2));
  const i64 hi2 = std::min<i64>(n2 - 1, i64(c2 + 3 * r2));
  for (i64 i1 = lo1; i1 <= hi1; ++i1)
    for (i64 i0 = lo0; i0 <= hi0; ++i0)
      for (i64 i2 = lo2; i2 <= hi2; ++i2) {
        const double d1 = (double(i1) - c1) / r1;
        const double d0 = (double(i0) - c0) / r0;
        const double d2 = (double(i2) - c2) / r2;
        v(i1, i0, i2) += amp * float(std::exp(-0.5 * (d1 * d1 + d0 * d0 + d2 * d2)));
      }
}

// Axis-aligned box with constant value (metal trace / pad).
void add_box(Array3D<float>& v, i64 b1, i64 e1, i64 b0, i64 e0, i64 b2, i64 e2,
             float val) {
  b1 = std::clamp<i64>(b1, 0, v.n1());
  e1 = std::clamp<i64>(e1, 0, v.n1());
  b0 = std::clamp<i64>(b0, 0, v.n0());
  e0 = std::clamp<i64>(e0, 0, v.n0());
  b2 = std::clamp<i64>(b2, 0, v.n2());
  e2 = std::clamp<i64>(e2, 0, v.n2());
  for (i64 i1 = b1; i1 < e1; ++i1)
    for (i64 i0 = b0; i0 < e0; ++i0)
      for (i64 i2 = b2; i2 < e2; ++i2) v(i1, i0, i2) = val;
}

Array3D<float> brain_phantom(Shape3 s, u64 seed) {
  Array3D<float> v(s);
  Rng rng(seed);
  const double zc = double(s.n0) / 2.0;
  const double slab = double(s.n0) * 0.22;  // thin specimen along z
  // Soft background slab (embedding medium).
  for (i64 i1 = 0; i1 < s.n1; ++i1)
    for (i64 i0 = 0; i0 < s.n0; ++i0)
      for (i64 i2 = 0; i2 < s.n2; ++i2) {
        const double dz = (double(i0) - zc) / slab;
        if (std::abs(dz) < 1.0) v(i1, i0, i2) = 0.08f * float(1.0 - dz * dz);
      }
  // Cell-body sized blobs of varying contrast.
  const int nblobs = int(12 + s.volume() / 4096);
  for (int b = 0; b < nblobs; ++b) {
    const double c1 = rng.uniform(0.1, 0.9) * double(s.n1);
    const double c0 = zc + rng.normal(0.0, slab * 0.45);
    const double c2 = rng.uniform(0.1, 0.9) * double(s.n2);
    const double r = rng.uniform(0.02, 0.08) * double(std::min(s.n1, s.n2));
    add_blob(v, c1, c0, c2, r, r * rng.uniform(0.4, 0.9), r,
             float(rng.uniform(0.25, 0.9)));
  }
  // Fine dendritic texture: a few elongated faint blobs.
  for (int b = 0; b < nblobs / 2; ++b) {
    const double c1 = rng.uniform(0.1, 0.9) * double(s.n1);
    const double c0 = zc + rng.normal(0.0, slab * 0.3);
    const double c2 = rng.uniform(0.1, 0.9) * double(s.n2);
    add_blob(v, c1, c0, c2, rng.uniform(2.0, 10.0), 1.2, rng.uniform(2.0, 10.0),
             float(rng.uniform(0.1, 0.3)));
  }
  for (auto& x : v) x = std::min(x, 1.0f);
  return v;
}

Array3D<float> ic_phantom(Shape3 s, u64 seed) {
  Array3D<float> v(s);
  Rng rng(seed);
  const i64 layer_z[3] = {s.n0 * 2 / 5, s.n0 / 2, s.n0 * 3 / 5};
  const i64 lt = std::max<i64>(1, s.n0 / 32);  // layer thickness
  // Substrate slab.
  add_box(v, 0, s.n1, s.n0 * 2 / 5 - lt, s.n0 * 3 / 5 + 2 * lt, 0, s.n2, 0.05f);
  for (int layer = 0; layer < 3; ++layer) {
    const i64 z0 = layer_z[layer], z1 = z0 + lt;
    const int ntraces = int(6 + s.n1 / 8);
    for (int t = 0; t < ntraces; ++t) {
      const i64 width = rng.uniform_int(1, std::max<i64>(2, s.n2 / 24));
      const float metal = float(rng.uniform(0.7, 1.0));
      if ((layer + t) % 2 == 0) {  // horizontal routing on even layers
        const i64 y = rng.uniform_int(0, s.n1 - width - 1);
        const i64 x0 = rng.uniform_int(0, s.n2 / 2);
        const i64 x1 = rng.uniform_int(s.n2 / 2, s.n2 - 1);
        add_box(v, y, y + width, z0, z1, x0, x1, metal);
      } else {  // vertical routing on odd layers
        const i64 x = rng.uniform_int(0, s.n2 - width - 1);
        const i64 y0 = rng.uniform_int(0, s.n1 / 2);
        const i64 y1 = rng.uniform_int(s.n1 / 2, s.n1 - 1);
        add_box(v, y0, y1, z0, z1, x, x + width, metal);
      }
    }
  }
  // Vias connecting the layers.
  const int nvias = int(4 + s.n1 / 8);
  for (int t = 0; t < nvias; ++t) {
    const i64 y = rng.uniform_int(2, s.n1 - 3);
    const i64 x = rng.uniform_int(2, s.n2 - 3);
    add_box(v, y, y + 1, layer_z[0], layer_z[2] + lt, x, x + 1, 1.0f);
  }
  return v;
}

Array3D<float> pcb_phantom(Shape3 s, u64 seed) {
  Array3D<float> v(s);
  Rng rng(seed);
  const i64 lt = std::max<i64>(1, s.n0 / 16);
  const i64 top = s.n0 / 2 - 2 * lt, bot = s.n0 / 2 + lt;
  // FR4 board.
  add_box(v, 0, s.n1, top, bot + lt, 0, s.n2, 0.12f);
  for (i64 z0 : {top, bot}) {
    const int npads = int(3 + s.n1 / 12);
    for (int p = 0; p < npads; ++p) {
      const i64 sz = rng.uniform_int(s.n1 / 12 + 1, s.n1 / 6 + 2);
      const i64 y = rng.uniform_int(0, std::max<i64>(1, s.n1 - sz - 1));
      const i64 x = rng.uniform_int(0, std::max<i64>(1, s.n2 - sz - 1));
      add_box(v, y, y + sz, z0, z0 + lt, x, x + sz, 0.85f);
    }
    const int ntraces = int(4 + s.n1 / 10);
    for (int t = 0; t < ntraces; ++t) {
      const i64 width = std::max<i64>(2, s.n2 / 16);
      const i64 y = rng.uniform_int(0, s.n1 - width - 1);
      add_box(v, y, y + width, z0, z0 + lt, 0, s.n2, 0.7f);
    }
  }
  return v;
}

}  // namespace

Array3D<float> make_phantom(Shape3 shape, PhantomKind kind, u64 seed) {
  MLR_CHECK(shape.volume() > 0);
  switch (kind) {
    case PhantomKind::BrainTissue: return brain_phantom(shape, seed);
    case PhantomKind::IntegratedCircuit: return ic_phantom(shape, seed);
    case PhantomKind::Pcb: return pcb_phantom(shape, seed);
  }
  MLR_CHECK_MSG(false, "unknown phantom kind");
}

Array3D<cfloat> to_complex(const Array3D<float>& real) {
  Array3D<cfloat> c(real.shape());
  for (i64 i = 0; i < real.size(); ++i) c.data()[i] = cfloat(real.data()[i], 0.0f);
  return c;
}

Array3D<float> real_part(const Array3D<cfloat>& c) {
  Array3D<float> r(c.shape());
  for (i64 i = 0; i < c.size(); ++i) r.data()[i] = c.data()[i].real();
  return r;
}

Array3D<cfloat> simulate_projections(const Operators& ops,
                                     const Array3D<cfloat>& u,
                                     double noise_sigma, u64 seed) {
  Array3D<cfloat> d(ops.geometry().data_shape());
  ops.forward(u, d);
  if (noise_sigma > 0) {
    double rms = l2_norm<cfloat>(d.span()) / std::sqrt(double(d.size()));
    Rng rng(seed);
    for (auto& x : d) {
      x += cfloat(float(rng.normal(0.0, noise_sigma * rms)),
                  float(rng.normal(0.0, noise_sigma * rms)));
    }
  }
  return d;
}

}  // namespace mlr::lamino
