#include "lamino/operators.hpp"

#include <cmath>

#include "common/parallel.hpp"
#include "fft/fft.hpp"

namespace mlr::lamino {

std::vector<ChunkSpec> make_chunks(i64 total, i64 chunk_size) {
  MLR_CHECK(total > 0 && chunk_size > 0);
  std::vector<ChunkSpec> chunks;
  i64 idx = 0;
  for (i64 b = 0; b < total; b += chunk_size) {
    chunks.push_back({idx++, b, std::min(chunk_size, total - b)});
  }
  return chunks;
}

Operators::Operators(Geometry g) : geom_(g) {
  geom_.validate();
  znu_ = geom_.z_frequencies();
  nufft_z_ = std::make_unique<fft::Nufft1D>(geom_.n0);
  nufft_plane_ = std::make_unique<fft::Nufft2D>(geom_.n1, geom_.n2);
  plane_nu_row_.resize(size_t(geom_.h));
  plane_nu_col_.resize(size_t(geom_.h));
  for (i64 kv = 0; kv < geom_.h; ++kv) {
    geom_.plane_frequencies(kv, plane_nu_row_[size_t(kv)],
                            plane_nu_col_[size_t(kv)]);
  }
  // Near-unitary scaling keeps CG well conditioned and forward/adjoint an
  // exact adjoint pair (same scale on both sides).
  scale_1d_ = float(1.0 / std::sqrt(double(geom_.n0)));
  scale_2d_ = float(1.0 / std::sqrt(double(geom_.n1 * geom_.n2)));
}

// --- chunked kernels --------------------------------------------------------

void Operators::fu1d_chunk(const ChunkSpec& spec, std::span<const cfloat> in,
                           std::span<cfloat> out) const {
  const i64 n0 = geom_.n0, n2 = geom_.n2, h = geom_.h;
  MLR_CHECK(i64(in.size()) == spec.count * n0 * n2);
  MLR_CHECK(i64(out.size()) == spec.count * h * n2);
  auto col = col_scratch_.buffer(static_cast<size_t>(n0));
  auto res = res_scratch_.buffer(static_cast<size_t>(h));
  for (i64 s = 0; s < spec.count; ++s) {
    for (i64 i2 = 0; i2 < n2; ++i2) {
      for (i64 i0 = 0; i0 < n0; ++i0)
        col[size_t(i0)] = in[size_t((s * n0 + i0) * n2 + i2)];
      nufft_z_->type2(znu_, col, res, -1);
      for (i64 kv = 0; kv < h; ++kv)
        out[size_t((s * h + kv) * n2 + i2)] = res[size_t(kv)] * scale_1d_;
    }
  }
}

void Operators::fu1d_adj_chunk(const ChunkSpec& spec,
                               std::span<const cfloat> in,
                               std::span<cfloat> out) const {
  const i64 n0 = geom_.n0, n2 = geom_.n2, h = geom_.h;
  MLR_CHECK(i64(in.size()) == spec.count * h * n2);
  MLR_CHECK(i64(out.size()) == spec.count * n0 * n2);
  auto q = col_scratch_.buffer(static_cast<size_t>(h));
  auto res = res_scratch_.buffer(static_cast<size_t>(n0));
  for (i64 s = 0; s < spec.count; ++s) {
    for (i64 i2 = 0; i2 < n2; ++i2) {
      for (i64 kv = 0; kv < h; ++kv)
        q[size_t(kv)] = in[size_t((s * h + kv) * n2 + i2)];
      nufft_z_->type1(znu_, q, res, +1);  // adjoint of type2(−1)
      for (i64 i0 = 0; i0 < n0; ++i0)
        out[size_t((s * n0 + i0) * n2 + i2)] = res[size_t(i0)] * scale_1d_;
    }
  }
}

void Operators::fu2d_chunk(const ChunkSpec& spec, std::span<const cfloat> in,
                           std::span<cfloat> out) const {
  const i64 n1 = geom_.n1, n2 = geom_.n2, nth = geom_.ntheta, w = geom_.w;
  MLR_CHECK(i64(in.size()) == spec.count * n1 * n2);
  MLR_CHECK(i64(out.size()) == spec.count * nth * w);
  for (i64 s = 0; s < spec.count; ++s) {
    const i64 kv = spec.begin + s;
    auto plane = in.subspan(size_t(s * n1 * n2), size_t(n1 * n2));
    auto res = out.subspan(size_t(s * nth * w), size_t(nth * w));
    nufft_plane_->type2(plane_nu_row_[size_t(kv)], plane_nu_col_[size_t(kv)],
                        plane, res, -1);
    for (auto& x : res) x *= scale_2d_;
  }
}

void Operators::fu2d_adj_chunk(const ChunkSpec& spec,
                               std::span<const cfloat> in,
                               std::span<cfloat> out) const {
  const i64 n1 = geom_.n1, n2 = geom_.n2, nth = geom_.ntheta, w = geom_.w;
  MLR_CHECK(i64(in.size()) == spec.count * nth * w);
  MLR_CHECK(i64(out.size()) == spec.count * n1 * n2);
  for (i64 s = 0; s < spec.count; ++s) {
    const i64 kv = spec.begin + s;
    auto q = in.subspan(size_t(s * nth * w), size_t(nth * w));
    auto res = out.subspan(size_t(s * n1 * n2), size_t(n1 * n2));
    nufft_plane_->type1(plane_nu_row_[size_t(kv)], plane_nu_col_[size_t(kv)],
                        q, res, +1);
    for (auto& x : res) x *= scale_2d_;
  }
}

void Operators::fu2d_chunk_fused_subtract(const ChunkSpec& spec,
                                          std::span<const cfloat> in,
                                          std::span<const cfloat> ref,
                                          std::span<cfloat> out) const {
  MLR_CHECK(ref.size() == out.size());
  fu2d_chunk(spec, in, out);
  // Fused epilogue: subtract the pre-mapped measured data in the same
  // "kernel" (paper §4.2 adds the subtraction input as an FFT argument).
  for (std::size_t i = 0; i < out.size(); ++i) out[i] -= ref[i];
}

// --- packing helpers ---------------------------------------------------------

void Operators::pack_u1_rows(const Array3D<cfloat>& u1, const ChunkSpec& spec,
                             std::span<cfloat> out) const {
  const i64 n1 = geom_.n1, n2 = geom_.n2;
  MLR_CHECK(u1.shape() == geom_.u1_shape());
  MLR_CHECK(i64(out.size()) == spec.count * n1 * n2);
  for (i64 s = 0; s < spec.count; ++s) {
    const i64 kv = spec.begin + s;
    for (i64 i1 = 0; i1 < n1; ++i1)
      for (i64 i2 = 0; i2 < n2; ++i2)
        out[size_t((s * n1 + i1) * n2 + i2)] = u1(i1, kv, i2);
  }
}

void Operators::unpack_u1_rows(std::span<const cfloat> in,
                               const ChunkSpec& spec,
                               Array3D<cfloat>& u1) const {
  const i64 n1 = geom_.n1, n2 = geom_.n2;
  MLR_CHECK(u1.shape() == geom_.u1_shape());
  MLR_CHECK(i64(in.size()) == spec.count * n1 * n2);
  for (i64 s = 0; s < spec.count; ++s) {
    const i64 kv = spec.begin + s;
    for (i64 i1 = 0; i1 < n1; ++i1)
      for (i64 i2 = 0; i2 < n2; ++i2)
        u1(i1, kv, i2) = in[size_t((s * n1 + i1) * n2 + i2)];
  }
}

void Operators::pack_dhat_rows(const Array3D<cfloat>& dhat,
                               const ChunkSpec& spec,
                               std::span<cfloat> out) const {
  const i64 nth = geom_.ntheta, w = geom_.w;
  MLR_CHECK(dhat.shape() == geom_.data_shape());
  MLR_CHECK(i64(out.size()) == spec.count * nth * w);
  for (i64 s = 0; s < spec.count; ++s) {
    const i64 kv = spec.begin + s;
    for (i64 t = 0; t < nth; ++t)
      for (i64 ku = 0; ku < w; ++ku)
        out[size_t((s * nth + t) * w + ku)] = dhat(t, kv, ku);
  }
}

void Operators::unpack_dhat_rows(std::span<const cfloat> in,
                                 const ChunkSpec& spec,
                                 Array3D<cfloat>& dhat) const {
  const i64 nth = geom_.ntheta, w = geom_.w;
  MLR_CHECK(dhat.shape() == geom_.data_shape());
  MLR_CHECK(i64(in.size()) == spec.count * nth * w);
  for (i64 s = 0; s < spec.count; ++s) {
    const i64 kv = spec.begin + s;
    for (i64 t = 0; t < nth; ++t)
      for (i64 ku = 0; ku < w; ++ku)
        dhat(t, kv, ku) = in[size_t((s * nth + t) * w + ku)];
  }
}

// --- whole-volume wrappers ----------------------------------------------------

void Operators::fu1d(const Array3D<cfloat>& u, Array3D<cfloat>& u1) const {
  MLR_CHECK(u.shape() == geom_.object_shape());
  MLR_CHECK(u1.shape() == geom_.u1_shape());
  parallel_for(0, geom_.n1, [&](i64 i1) {
    ChunkSpec one{i1, i1, 1};
    fu1d_chunk(one, u.slices(i1, 1),
               u1.slices(i1, 1));
  });
}

void Operators::fu1d_adj(const Array3D<cfloat>& u1, Array3D<cfloat>& u) const {
  MLR_CHECK(u.shape() == geom_.object_shape());
  MLR_CHECK(u1.shape() == geom_.u1_shape());
  parallel_for(0, geom_.n1, [&](i64 i1) {
    ChunkSpec one{i1, i1, 1};
    fu1d_adj_chunk(one, u1.slices(i1, 1), u.slices(i1, 1));
  });
}

void Operators::fu2d(const Array3D<cfloat>& u1, Array3D<cfloat>& u2) const {
  MLR_CHECK(u1.shape() == geom_.u1_shape());
  MLR_CHECK(u2.shape() == geom_.data_shape());
  const i64 n1 = geom_.n1, n2 = geom_.n2, nth = geom_.ntheta, w = geom_.w;
  parallel_for(0, geom_.h, [&](i64 kv) {
    ChunkSpec one{kv, kv, 1};
    std::vector<cfloat> in(static_cast<size_t>(n1 * n2));
    std::vector<cfloat> out(static_cast<size_t>(nth * w));
    pack_u1_rows(u1, one, in);
    fu2d_chunk(one, in, out);
    unpack_dhat_rows(out, one, u2);
  });
}

void Operators::fu2d_adj(const Array3D<cfloat>& u2, Array3D<cfloat>& u1) const {
  MLR_CHECK(u1.shape() == geom_.u1_shape());
  MLR_CHECK(u2.shape() == geom_.data_shape());
  const i64 n1 = geom_.n1, n2 = geom_.n2, nth = geom_.ntheta, w = geom_.w;
  parallel_for(0, geom_.h, [&](i64 kv) {
    ChunkSpec one{kv, kv, 1};
    std::vector<cfloat> in(static_cast<size_t>(nth * w));
    std::vector<cfloat> out(static_cast<size_t>(n1 * n2));
    pack_dhat_rows(u2, one, in);
    fu2d_adj_chunk(one, in, out);
    unpack_u1_rows(out, one, u1);
  });
}

void Operators::f2d(Array3D<cfloat>& d, bool inverse) const {
  MLR_CHECK(d.shape() == geom_.data_shape());
  parallel_for(0, geom_.ntheta, [&](i64 t) {
    fft::fft2d_span(d.slices(t, 1), geom_.h, geom_.w, inverse,
                    /*unitary=*/true);
  });
}

void Operators::forward(const Array3D<cfloat>& u, Array3D<cfloat>& d) const {
  Array3D<cfloat> u1(geom_.u1_shape());
  fu1d(u, u1);
  fu2d(u1, d);
  f2d(d, /*inverse=*/true);  // F*_2D maps frequency → detector space
}

void Operators::adjoint(const Array3D<cfloat>& d, Array3D<cfloat>& u) const {
  Array3D<cfloat> dhat = d;
  f2d(dhat, /*inverse=*/false);  // F_2D
  Array3D<cfloat> u1(geom_.u1_shape());
  fu2d_adj(dhat, u1);
  fu1d_adj(u1, u);
}

void Operators::forward_freq(const Array3D<cfloat>& u,
                             Array3D<cfloat>& dhat) const {
  Array3D<cfloat> u1(geom_.u1_shape());
  fu1d(u, u1);
  fu2d(u1, dhat);
}

void Operators::adjoint_freq(const Array3D<cfloat>& dhat,
                             Array3D<cfloat>& u) const {
  Array3D<cfloat> u1(geom_.u1_shape());
  fu2d_adj(dhat, u1);
  fu1d_adj(u1, u);
}

// --- cost model -----------------------------------------------------------

double Operators::fu1d_chunk_flops(i64 count) const {
  return double(count * geom_.n2) * nufft_z_->flops(geom_.h);
}

double Operators::fu2d_chunk_flops(i64 count) const {
  return double(count) * nufft_plane_->flops(geom_.ntheta * geom_.w);
}

double Operators::f2d_proj_flops() const {
  return double(geom_.h) * fft::fft_flops(geom_.w) +
         double(geom_.w) * fft::fft_flops(geom_.h);
}

}  // namespace mlr::lamino
