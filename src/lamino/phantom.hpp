// Synthetic laminography phantoms.
//
// The paper evaluates on a (downsampled) mouse-brain dataset and motivates
// IC / PCB inspection. None of those datasets are redistributable, so this
// module generates flat (laminar) synthetic samples with the same character:
// structure concentrated in a thin slab along z, smooth biological blobs or
// Manhattan-routed metal, which is exactly the regime laminography targets.
#pragma once

#include "common/array.hpp"
#include "common/rng.hpp"
#include "lamino/operators.hpp"

namespace mlr::lamino {

enum class PhantomKind {
  BrainTissue,        ///< smooth Gaussian-blob "tissue" in a thin slab
  IntegratedCircuit,  ///< 3 metal layers of Manhattan traces + vias
  Pcb,                ///< 2 layers of coarse pads and wide traces
};

/// Generate a phantom volume with values in [0, 1].
Array3D<float> make_phantom(Shape3 shape, PhantomKind kind, u64 seed = 1);

/// Promote a real volume to the complex array the operators consume.
Array3D<cfloat> to_complex(const Array3D<float>& real);
/// Real part of a complex volume (reconstruction output).
Array3D<float> real_part(const Array3D<cfloat>& c);

/// Simulate measured projections d = L·u + ε with Gaussian detector noise of
/// standard deviation `noise_sigma` relative to the data RMS.
Array3D<cfloat> simulate_projections(const Operators& ops,
                                     const Array3D<cfloat>& u,
                                     double noise_sigma, u64 seed = 7);

}  // namespace mlr::lamino
