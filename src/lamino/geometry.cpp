#include "lamino/geometry.hpp"

#include "fft/fft.hpp"

namespace mlr::lamino {

std::vector<double> Geometry::z_frequencies() const {
  std::vector<double> nu(static_cast<size_t>(h));
  const double s = std::sin(phi);
  for (i64 kv = 0; kv < h; ++kv) {
    // Centered detector-row frequency scaled into the object's n0-cycle units.
    const double kc = double(fft::to_centered(kv, h));
    nu[size_t(kv)] = kc * s * double(n0) / double(h);
  }
  return nu;
}

void Geometry::plane_frequencies(i64 kv, std::vector<double>& nu_row,
                                 std::vector<double>& nu_col) const {
  MLR_CHECK(kv >= 0 && kv < h);
  const auto npts = size_t(ntheta * w);
  nu_row.resize(npts);
  nu_col.resize(npts);
  const double cphi = std::cos(phi);
  const double kvc = double(fft::to_centered(kv, h));
  for (i64 t = 0; t < ntheta; ++t) {
    const double th = theta(t);
    const double ct = std::cos(th), st = std::sin(th);
    for (i64 ku = 0; ku < w; ++ku) {
      const double kuc = double(fft::to_centered(ku, w));
      // ξ_x = ku·cosθ − kv·cosφ·sinθ ; ξ_y = ku·sinθ + kv·cosφ·cosθ.
      const double fx = kuc * ct - kvc * cphi * st;
      const double fy = kuc * st + kvc * cphi * ct;
      const auto j = size_t(t * w + ku);
      // row axis = n1 (y), col axis = n2 (x); rescale detector cycles into
      // object-grid cycles.
      nu_row[j] = fy * double(n1) / double(w);
      nu_col[j] = fx * double(n2) / double(w);
    }
  }
}

}  // namespace mlr::lamino
