// Laminography acquisition geometry.
//
// A flat sample rotates about an axis tilted by the laminography angle φ
// relative to the beam; a detector of h×w pixels records nθ projections. By
// the Fourier-slice theorem the 2-D FFT of projection θ samples the 3-D FFT
// of the object on the tilted plane spanned by
//     e_u(θ) = ( cosθ,  sinθ, 0)
//     e_v(θ) = (−cosφ·sinθ, cosφ·cosθ, sinφ)
// so detector frequency (ku, kv) maps to the 3-D frequency point
//     ξ = ku·e_u + kv·e_v.
// The z-component kv·sinφ is independent of θ — that separability is what
// lets the paper factor the forward model into F_u1D (1-D transform along z
// to the nonuniform kv·sinφ grid) followed by F_u2D (2-D transform of each
// kv-plane to the in-plane nonuniform points) and F*_2D (uniform detector
// transform).
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlr::lamino {

/// Geometry of one laminography scan.
struct Geometry {
  i64 n1 = 0;       ///< object voxels along y (chunked axis)
  i64 n0 = 0;       ///< object voxels along z (vertical; maps to detector h)
  i64 n2 = 0;       ///< object voxels along x
  i64 ntheta = 0;   ///< number of projection angles
  i64 h = 0;        ///< detector rows
  i64 w = 0;        ///< detector columns
  double phi = 0.0; ///< laminography tilt angle (radians), 0 < φ ≤ π/2

  /// Cubic volume preset with matched detector, the configuration the paper
  /// evaluates (n³ volumes, detector n×n, nθ = n angles).
  static Geometry cube(i64 n, double phi_deg = 61.0) {
    Geometry g;
    g.n1 = g.n0 = g.n2 = n;
    g.ntheta = n;
    g.h = g.w = n;
    g.phi = phi_deg * std::numbers::pi / 180.0;
    return g;
  }

  void validate() const {
    MLR_CHECK(n1 >= 2 && n0 >= 2 && n2 >= 2);
    MLR_CHECK(ntheta >= 1 && h >= 2 && w >= 2);
    MLR_CHECK(phi > 0.0 && phi <= std::numbers::pi / 2 + 1e-9);
  }

  /// Rotation angle of projection t, uniform over [0, 2π).
  [[nodiscard]] double theta(i64 t) const {
    return 2.0 * std::numbers::pi * double(t) / double(ntheta);
  }

  /// Nonuniform z-frequencies ν_kv = k̃v·sinφ targeted by F_u1D (length h,
  /// storage order).
  [[nodiscard]] std::vector<double> z_frequencies() const;

  /// In-plane nonuniform frequency points for one detector row kv (length
  /// nθ·w pairs, ordered θ-major). ν_y = row coordinate (n1 axis),
  /// ν_x = column coordinate (n2 axis).
  void plane_frequencies(i64 kv, std::vector<double>& nu_row,
                         std::vector<double>& nu_col) const;

  [[nodiscard]] Shape3 object_shape() const { return {n1, n0, n2}; }
  [[nodiscard]] Shape3 data_shape() const { return {ntheta, h, w}; }
  /// Shape of the intermediate ũ1 = F_u1D·u array.
  [[nodiscard]] Shape3 u1_shape() const { return {n1, h, n2}; }
};

}  // namespace mlr::lamino
