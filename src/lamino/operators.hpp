// The laminography operator stack: F_u1D, F_u2D, F_2D and adjoints.
//
// Forward model (paper §2):   d = F*_2D · F_u2D · F_u1D · u
//   F_u1D : u[n1,n0,n2]   → ũ1[n1,h,n2]   1-D NUFFT along z (axis n0)
//   F_u2D : ũ1[n1,h,n2]   → ũ2[nθ,h,w]    2-D NUFFT of each kv-plane
//   F*_2D : ũ2[nθ,h,w]    → d[nθ,h,w]     inverse unitary detector FFT
//
// Chunked entry points mirror the paper's execution model: F_u1D chunks are
// slabs of n1 slices; F_u2D chunks are groups of detector rows kv (chunks
// "generated along different directions", §5.2). Each chunk call is
// independent, which is what makes both memoization (chunk = key/value) and
// multi-GPU distribution possible.
#pragma once

#include <memory>
#include <vector>

#include "common/array.hpp"
#include "common/scratch.hpp"
#include "fft/nufft.hpp"
#include "lamino/geometry.hpp"

namespace mlr::lamino {

/// Chunk descriptor: `count` consecutive indices starting at `begin` along
/// the partitioned dimension.
struct ChunkSpec {
  i64 index = 0;  ///< chunk location id (stable across iterations)
  i64 begin = 0;
  i64 count = 0;
};

/// Partition [0, total) into chunks of at most `chunk_size`.
std::vector<ChunkSpec> make_chunks(i64 total, i64 chunk_size);

/// Laminography operators bound to a fixed geometry. Thread-safe: all state
/// is immutable after construction.
class Operators {
 public:
  explicit Operators(Geometry g);

  [[nodiscard]] const Geometry& geometry() const { return geom_; }

  // --- whole-volume operators -------------------------------------------
  /// ũ1 = F_u1D·u.
  void fu1d(const Array3D<cfloat>& u, Array3D<cfloat>& u1) const;
  /// u += adjoint: u = F*_u1D·ũ1.
  void fu1d_adj(const Array3D<cfloat>& u1, Array3D<cfloat>& u) const;
  /// ũ2 = F_u2D·ũ1.
  void fu2d(const Array3D<cfloat>& u1, Array3D<cfloat>& u2) const;
  /// ũ1 = F*_u2D·ũ2.
  void fu2d_adj(const Array3D<cfloat>& u2, Array3D<cfloat>& u1) const;
  /// In-place unitary detector transform of every projection:
  /// inverse=false applies F_2D (space → frequency), true applies F*_2D.
  void f2d(Array3D<cfloat>& d, bool inverse) const;

  /// Full forward model d = F*_2D F_u2D F_u1D u.
  void forward(const Array3D<cfloat>& u, Array3D<cfloat>& d) const;
  /// Full adjoint u = F*_u1D F*_u2D F_2D d.
  void adjoint(const Array3D<cfloat>& d, Array3D<cfloat>& u) const;

  /// Frequency-domain forward d̂ = F_u2D F_u1D u (Algorithm 2 after
  /// operation cancellation — no detector FFT).
  void forward_freq(const Array3D<cfloat>& u, Array3D<cfloat>& dhat) const;
  /// Frequency-domain adjoint u = F*_u1D F*_u2D d̂.
  void adjoint_freq(const Array3D<cfloat>& dhat, Array3D<cfloat>& u) const;

  // --- chunked operators (the units that are memoized / distributed) -----
  /// F_u1D on a slab of `spec.count` n1-slices: in = count·n0·n2 values,
  /// out = count·h·n2 values.
  void fu1d_chunk(const ChunkSpec& spec, std::span<const cfloat> in,
                  std::span<cfloat> out) const;
  /// Adjoint slab: in = count·h·n2, out = count·n0·n2.
  void fu1d_adj_chunk(const ChunkSpec& spec, std::span<const cfloat> in,
                      std::span<cfloat> out) const;
  /// F_u2D for detector rows [spec.begin, spec.begin+count): in is the
  /// corresponding ũ1 rows packed (count·n1·n2), out packed (count·nθ·w,
  /// kv-major then θ-major).
  void fu2d_chunk(const ChunkSpec& spec, std::span<const cfloat> in,
                  std::span<cfloat> out) const;
  void fu2d_adj_chunk(const ChunkSpec& spec, std::span<const cfloat> in,
                      std::span<cfloat> out) const;
  /// Fused kernel of the paper §4.2: out = F_u2D(in) − ref for one kv-chunk.
  /// `ref` is the pre-mapped measured data d̂ for the same rows.
  void fu2d_chunk_fused_subtract(const ChunkSpec& spec,
                                 std::span<const cfloat> in,
                                 std::span<const cfloat> ref,
                                 std::span<cfloat> out) const;

  // --- packing helpers between whole arrays and kv-chunk layouts ---------
  /// Gather ũ1 rows [begin, begin+count) into a packed (count·n1·n2) buffer.
  void pack_u1_rows(const Array3D<cfloat>& u1, const ChunkSpec& spec,
                    std::span<cfloat> out) const;
  void unpack_u1_rows(std::span<const cfloat> in, const ChunkSpec& spec,
                      Array3D<cfloat>& u1) const;
  /// Gather d̂ rows for a kv-chunk into packed (count·nθ·w) layout.
  void pack_dhat_rows(const Array3D<cfloat>& dhat, const ChunkSpec& spec,
                      std::span<cfloat> out) const;
  void unpack_dhat_rows(std::span<const cfloat> in, const ChunkSpec& spec,
                        Array3D<cfloat>& dhat) const;

  // --- cost model inputs --------------------------------------------------
  /// FLOPs of one F_u1D chunk of `count` slices (forward or adjoint).
  [[nodiscard]] double fu1d_chunk_flops(i64 count) const;
  /// FLOPs of one F_u2D chunk of `count` detector rows.
  [[nodiscard]] double fu2d_chunk_flops(i64 count) const;
  /// FLOPs of one detector-plane F_2D (per projection angle).
  [[nodiscard]] double f2d_proj_flops() const;

 private:
  Geometry geom_;
  std::vector<double> znu_;                       // F_u1D target frequencies
  std::vector<std::vector<double>> plane_nu_row_; // per-kv in-plane points
  std::vector<std::vector<double>> plane_nu_col_;
  std::unique_ptr<fft::Nufft1D> nufft_z_;
  std::unique_ptr<fft::Nufft2D> nufft_plane_;
  // Per-thread column/row gather buffers for the chunked 1-D kernels, so a
  // miss-compute chunk performs zero heap allocations (see common/scratch).
  PerThreadScratch<cfloat> col_scratch_;
  PerThreadScratch<cfloat> res_scratch_;
  float scale_1d_, scale_2d_;
};

}  // namespace mlr::lamino
