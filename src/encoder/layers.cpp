#include "encoder/layers.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mlr::encoder {

Conv2D::Conv2D(i64 in_ch, i64 out_ch, i64 ksize, i64 stride, Rng& rng)
    : in_ch_(in_ch), out_ch_(out_ch), k_(ksize), stride_(stride),
      pad_(ksize / 2) {
  MLR_CHECK(in_ch >= 1 && out_ch >= 1 && ksize >= 1 && stride >= 1);
  const auto n = size_t(out_ch * in_ch * ksize * ksize);
  w.resize(n);
  gw.assign(n, 0.0f);
  b.assign(size_t(out_ch), 0.0f);
  gb.assign(size_t(out_ch), 0.0f);
  const double he = std::sqrt(2.0 / double(in_ch * ksize * ksize));
  for (auto& x : w) x = float(rng.normal(0.0, he));
}

FeatureMap Conv2D::forward(const FeatureMap& in) const {
  MLR_CHECK(in.c == in_ch_);
  FeatureMap out(out_ch_, out_h(in.h), out_w(in.w));
  for (i64 oc = 0; oc < out_ch_; ++oc) {
    for (i64 oy = 0; oy < out.h; ++oy) {
      for (i64 ox = 0; ox < out.w; ++ox) {
        double acc = b[size_t(oc)];
        const i64 iy0 = oy * stride_ - pad_;
        const i64 ix0 = ox * stride_ - pad_;
        for (i64 ic = 0; ic < in_ch_; ++ic) {
          for (i64 ky = 0; ky < k_; ++ky) {
            const i64 iy = iy0 + ky;
            if (iy < 0 || iy >= in.h) continue;
            for (i64 kx = 0; kx < k_; ++kx) {
              const i64 ix = ix0 + kx;
              if (ix < 0 || ix >= in.w) continue;
              acc += double(w[size_t(((oc * in_ch_ + ic) * k_ + ky) * k_ + kx)]) *
                     double(in.at(ic, iy, ix));
            }
          }
        }
        out.at(oc, oy, ox) = float(acc);
      }
    }
  }
  return out;
}

FeatureMap Conv2D::backward(const FeatureMap& in, const FeatureMap& dout) {
  MLR_CHECK(in.c == in_ch_ && dout.c == out_ch_);
  FeatureMap din(in.c, in.h, in.w);
  for (i64 oc = 0; oc < out_ch_; ++oc) {
    for (i64 oy = 0; oy < dout.h; ++oy) {
      for (i64 ox = 0; ox < dout.w; ++ox) {
        const float g = dout.at(oc, oy, ox);
        if (g == 0.0f) continue;
        gb[size_t(oc)] += g;
        const i64 iy0 = oy * stride_ - pad_;
        const i64 ix0 = ox * stride_ - pad_;
        for (i64 ic = 0; ic < in_ch_; ++ic) {
          for (i64 ky = 0; ky < k_; ++ky) {
            const i64 iy = iy0 + ky;
            if (iy < 0 || iy >= in.h) continue;
            for (i64 kx = 0; kx < k_; ++kx) {
              const i64 ix = ix0 + kx;
              if (ix < 0 || ix >= in.w) continue;
              const auto wi = size_t(((oc * in_ch_ + ic) * k_ + ky) * k_ + kx);
              gw[wi] += g * in.at(ic, iy, ix);
              din.at(ic, iy, ix) += g * w[wi];
            }
          }
        }
      }
    }
  }
  return din;
}

Dense::Dense(i64 in_dim, i64 out_dim, Rng& rng) : in_(in_dim), out_(out_dim) {
  MLR_CHECK(in_dim >= 1 && out_dim >= 1);
  w.resize(size_t(in_ * out_));
  gw.assign(w.size(), 0.0f);
  b.assign(size_t(out_), 0.0f);
  gb.assign(size_t(out_), 0.0f);
  const double xavier = std::sqrt(1.0 / double(in_));
  for (auto& x : w) x = float(rng.normal(0.0, xavier));
}

std::vector<float> Dense::forward(const std::vector<float>& in) const {
  MLR_CHECK(i64(in.size()) == in_);
  std::vector<float> out(static_cast<size_t>(out_));
  for (i64 o = 0; o < out_; ++o) {
    double acc = b[size_t(o)];
    const float* row = w.data() + size_t(o * in_);
    for (i64 i = 0; i < in_; ++i) acc += double(row[i]) * double(in[size_t(i)]);
    out[size_t(o)] = float(acc);
  }
  return out;
}

std::vector<float> Dense::backward(const std::vector<float>& in,
                                   const std::vector<float>& dout) {
  MLR_CHECK(i64(in.size()) == in_ && i64(dout.size()) == out_);
  std::vector<float> din(static_cast<size_t>(in_), 0.0f);
  for (i64 o = 0; o < out_; ++o) {
    const float g = dout[size_t(o)];
    gb[size_t(o)] += g;
    float* grow = gw.data() + size_t(o * in_);
    const float* row = w.data() + size_t(o * in_);
    for (i64 i = 0; i < in_; ++i) {
      grow[i] += g * in[size_t(i)];
      din[size_t(i)] += g * row[i];
    }
  }
  return din;
}

void relu_forward(std::vector<float>& v) {
  for (auto& x : v)
    if (x < 0) x = 0;
}

void relu_backward(const std::vector<float>& out, std::vector<float>& grad) {
  MLR_CHECK(out.size() == grad.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] <= 0.0f) grad[i] = 0.0f;
}

FeatureMap avgpool2(const FeatureMap& in) {
  FeatureMap out(in.c, in.h / 2, in.w / 2);
  for (i64 c = 0; c < in.c; ++c)
    for (i64 y = 0; y < out.h; ++y)
      for (i64 x = 0; x < out.w; ++x)
        out.at(c, y, x) = 0.25f * (in.at(c, 2 * y, 2 * x) +
                                   in.at(c, 2 * y + 1, 2 * x) +
                                   in.at(c, 2 * y, 2 * x + 1) +
                                   in.at(c, 2 * y + 1, 2 * x + 1));
  return out;
}

FeatureMap avgpool2_backward(const FeatureMap& in_shape_ref,
                             const FeatureMap& dout) {
  FeatureMap din(in_shape_ref.c, in_shape_ref.h, in_shape_ref.w);
  for (i64 c = 0; c < dout.c; ++c)
    for (i64 y = 0; y < dout.h; ++y)
      for (i64 x = 0; x < dout.w; ++x) {
        const float g = 0.25f * dout.at(c, y, x);
        din.at(c, 2 * y, 2 * x) += g;
        din.at(c, 2 * y + 1, 2 * x) += g;
        din.at(c, 2 * y, 2 * x + 1) += g;
        din.at(c, 2 * y + 1, 2 * x + 1) += g;
      }
  return din;
}

void Adam::step(std::vector<float>& param, std::vector<float>& grad) {
  MLR_CHECK(param.size() == m_.size() && grad.size() == m_.size());
  constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  ++t_;
  const double bc1 = 1.0 - std::pow(b1, double(t_));
  const double bc2 = 1.0 - std::pow(b2, double(t_));
  for (std::size_t i = 0; i < param.size(); ++i) {
    m_[i] = float(b1 * m_[i] + (1.0 - b1) * grad[i]);
    v_[i] = float(b2 * v_[i] + (1.0 - b2) * double(grad[i]) * grad[i]);
    const double mh = m_[i] / bc1;
    const double vh = v_[i] / bc2;
    param[i] -= float(lr_ * mh / (std::sqrt(vh) + eps));
    grad[i] = 0.0f;  // consume the accumulator
  }
}

}  // namespace mlr::encoder
