#include "encoder/encoder.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mlr::encoder {

std::vector<cfloat> average_slab(std::span<const cfloat> slab, i64 count,
                                 i64 rows, i64 cols) {
  MLR_CHECK(i64(slab.size()) == count * rows * cols && count >= 1);
  std::vector<cfloat> out(size_t(rows * cols), cfloat{});
  for (i64 s = 0; s < count; ++s)
    for (i64 i = 0; i < rows * cols; ++i)
      out[size_t(i)] += slab[size_t(s * rows * cols + i)];
  const float inv = 1.0f / float(count);
  for (auto& x : out) x *= inv;
  return out;
}

double chunk_l2(std::span<const cfloat> a, std::span<const cfloat> b) {
  MLR_CHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto d = a[i] - b[i];
    s += double(d.real()) * d.real() + double(d.imag()) * d.imag();
  }
  return std::sqrt(s);
}

CnnEncoder::CnnEncoder(EncoderConfig cfg, u64 seed)
    : cfg_(cfg),
      rng_(seed),
      conv1_(2, 32, 5, 2, rng_),
      conv2_(32, 64, 3, 1, rng_),
      fc_(64 * (cfg.input_hw / 8) * (cfg.input_hw / 8), cfg.embed_dim, rng_),
      opt_w1_(conv1_.w.size(), cfg.lr),
      opt_b1_(conv1_.b.size(), cfg.lr),
      opt_w2_(conv2_.w.size(), cfg.lr),
      opt_b2_(conv2_.b.size(), cfg.lr),
      opt_wf_(fc_.w.size(), cfg.lr),
      opt_bf_(fc_.b.size(), cfg.lr) {
  MLR_CHECK_MSG(cfg.input_hw % 8 == 0, "input_hw must be divisible by 8");
}

FeatureMap CnnEncoder::preprocess(const ChunkImage& chunk) const {
  MLR_CHECK(i64(chunk.data.size()) == chunk.rows * chunk.cols);
  const i64 hw = cfg_.input_hw;
  FeatureMap fm(2, hw, hw);
  // COMPLEX64 → (real, imag) channels with block-average resampling: every
  // source pixel lands in exactly one target cell, preserving total signal.
  std::vector<float> cnt(size_t(hw * hw), 0.0f);
  for (i64 y = 0; y < chunk.rows; ++y) {
    const i64 ty = std::min(hw - 1, y * hw / chunk.rows);
    for (i64 x = 0; x < chunk.cols; ++x) {
      const i64 tx = std::min(hw - 1, x * hw / chunk.cols);
      const cfloat v = chunk.data[size_t(y * chunk.cols + x)];
      fm.at(0, ty, tx) += v.real();
      fm.at(1, ty, tx) += v.imag();
      cnt[size_t(ty * hw + tx)] += 1.0f;
    }
  }
  for (i64 y = 0; y < hw; ++y)
    for (i64 x = 0; x < hw; ++x) {
      const float c = std::max(1.0f, cnt[size_t(y * hw + x)]);
      fm.at(0, y, x) /= c;
      fm.at(1, y, x) /= c;
    }
  return fm;
}

std::vector<float> CnnEncoder::forward(const FeatureMap& in,
                                       bool use_int8) const {
  // Dequantize-on-use when the INT8 path is requested: numerically identical
  // to an integer kernel with float accumulators.
  const Conv2D* c1 = &conv1_;
  const Conv2D* c2 = &conv2_;
  const Dense* fc = &fc_;
  Conv2D c1q = conv1_, c2q = conv2_;
  Dense fcq = fc_;
  if (use_int8 && quantized_) {
    for (std::size_t i = 0; i < c1q.w.size(); ++i)
      c1q.w[i] = float(q_w1_[i]) * s_w1_;
    for (std::size_t i = 0; i < c2q.w.size(); ++i)
      c2q.w[i] = float(q_w2_[i]) * s_w2_;
    for (std::size_t i = 0; i < fcq.w.size(); ++i)
      fcq.w[i] = float(q_wf_[i]) * s_wf_;
    c1 = &c1q;
    c2 = &c2q;
    fc = &fcq;
  }
  FeatureMap a = c1->forward(in);
  relu_forward(a.v);
  FeatureMap p1 = avgpool2(a);
  FeatureMap b = c2->forward(p1);
  relu_forward(b.v);
  FeatureMap p2 = avgpool2(b);
  return fc->forward(p2.v);
}

std::vector<float> CnnEncoder::encode(const ChunkImage& chunk) const {
  return forward(preprocess(chunk), /*use_int8=*/false);
}

std::vector<float> CnnEncoder::encode_quantized(const ChunkImage& chunk) const {
  return forward(preprocess(chunk), /*use_int8=*/true);
}

struct CnnEncoder::Trace {
  FeatureMap in, a, p1, b, p2;
  std::vector<float> z;
};

std::vector<float> CnnEncoder::forward_train(const FeatureMap& in,
                                             Trace& t) const {
  t.in = in;
  t.a = conv1_.forward(in);
  relu_forward(t.a.v);
  t.p1 = avgpool2(t.a);
  t.b = conv2_.forward(t.p1);
  relu_forward(t.b.v);
  t.p2 = avgpool2(t.b);
  t.z = fc_.forward(t.p2.v);
  return t.z;
}

void CnnEncoder::backward_from_embedding(const Trace& t,
                                         std::vector<float> dz) {
  auto dflat = fc_.backward(t.p2.v, dz);
  FeatureMap dp2(t.p2.c, t.p2.h, t.p2.w);
  dp2.v = std::move(dflat);
  FeatureMap db = avgpool2_backward(t.b, dp2);
  relu_backward(t.b.v, db.v);
  FeatureMap dp1 = conv2_.backward(t.p1, db);
  FeatureMap da = avgpool2_backward(t.a, dp1);
  relu_backward(t.a.v, da.v);
  (void)conv1_.backward(t.in, da);
}

double CnnEncoder::train_pair(const ChunkImage& a, const ChunkImage& b) {
  MLR_CHECK_MSG(!quantized_, "encoder already frozen to INT8");
  Trace ta, tb;
  forward_train(preprocess(a), ta);
  forward_train(preprocess(b), tb);
  const i64 d = cfg_.embed_dim;
  std::vector<float> diff(static_cast<size_t>(d));
  double zdist2 = 0;
  for (i64 i = 0; i < d; ++i) {
    diff[size_t(i)] = ta.z[size_t(i)] - tb.z[size_t(i)];
    zdist2 += double(diff[size_t(i)]) * diff[size_t(i)];
  }
  const double zdist = std::sqrt(zdist2) + 1e-12;
  const double gt = chunk_l2(a.data, b.data);
  const double loss = std::abs(zdist - gt);
  const double sign = (zdist - gt) >= 0 ? 1.0 : -1.0;
  // dL/dza = sign · (za − zb)/‖za − zb‖, dL/dzb = −dL/dza.
  std::vector<float> dza(static_cast<size_t>(d)), dzb(static_cast<size_t>(d));
  for (i64 i = 0; i < d; ++i) {
    dza[size_t(i)] = float(sign * diff[size_t(i)] / zdist);
    dzb[size_t(i)] = -dza[size_t(i)];
  }
  backward_from_embedding(ta, std::move(dza));
  backward_from_embedding(tb, std::move(dzb));
  opt_w1_.step(conv1_.w, conv1_.gw);
  opt_b1_.step(conv1_.b, conv1_.gb);
  opt_w2_.step(conv2_.w, conv2_.gw);
  opt_b2_.step(conv2_.b, conv2_.gb);
  opt_wf_.step(fc_.w, fc_.gw);
  opt_bf_.step(fc_.b, fc_.gb);
  return loss;
}

double CnnEncoder::train(const std::vector<std::vector<cfloat>>& samples,
                         i64 rows, i64 cols, int steps, u64 seed) {
  MLR_CHECK(samples.size() >= 2);
  Rng rng(seed);
  double tail_loss = 0;
  int tail_n = 0;
  for (int s = 0; s < steps; ++s) {
    const auto i = size_t(rng.uniform_int(0, i64(samples.size()) - 1));
    auto j = size_t(rng.uniform_int(0, i64(samples.size()) - 2));
    if (j >= i) ++j;
    const double loss =
        train_pair({rows, cols, samples[i]}, {rows, cols, samples[j]});
    if (s >= steps * 3 / 4) {
      tail_loss += loss;
      ++tail_n;
    }
  }
  return tail_n ? tail_loss / tail_n : 0.0;
}

namespace {
void quantize_tensor(const std::vector<float>& w, std::vector<std::int8_t>& q,
                     float& scale) {
  float mx = 1e-12f;
  for (float x : w) mx = std::max(mx, std::abs(x));
  scale = mx / 127.0f;
  q.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float r = std::round(w[i] / scale);
    q[i] = std::int8_t(std::clamp(r, -127.0f, 127.0f));
  }
}
}  // namespace

void CnnEncoder::quantize() {
  quantize_tensor(conv1_.w, q_w1_, s_w1_);
  quantize_tensor(conv2_.w, q_w2_, s_w2_);
  quantize_tensor(fc_.w, q_wf_, s_wf_);
  quantized_ = true;
}

double CnnEncoder::encode_flops() const {
  const i64 hw = cfg_.input_hw;
  const i64 h1 = hw / 2;  // conv1 stride 2
  const i64 h2 = hw / 4;  // after pool
  const double f1 = double(h1 * h1) * 32.0 * (2.0 * 25.0 * 2.0);
  const double f2 = double(h2 * h2) * 64.0 * (32.0 * 9.0 * 2.0);
  const double ff = double(fc_.in_dim()) * double(fc_.out_dim()) * 2.0;
  return f1 + f2 + ff;
}

// --- EncoderRegistry ---------------------------------------------------------

bool EncoderRegistry::add_sample(std::vector<cfloat> plane, i64 rows,
                                 i64 cols) {
  if (samples_.size() >= cap_) return false;
  samples_.push_back({std::move(plane), rows, cols});
  return true;
}

double EncoderRegistry::train_from_collected(int steps, bool quantize) {
  if (samples_.size() < 2) return 0.0;
  Rng rng(97);
  double tail = 0;
  int tail_n = 0;
  for (int s = 0; s < steps; ++s) {
    const auto i = size_t(rng.uniform_int(0, i64(samples_.size()) - 1));
    auto j = size_t(rng.uniform_int(0, i64(samples_.size()) - 2));
    if (j >= i) ++j;
    // Pairs must share a shape for the chunk-L2 ground truth; skip others.
    if (samples_[i].rows != samples_[j].rows ||
        samples_[i].cols != samples_[j].cols)
      continue;
    const double loss = enc_.train_pair(
        {samples_[i].rows, samples_[i].cols, samples_[i].plane},
        {samples_[j].rows, samples_[j].cols, samples_[j].plane});
    if (s >= steps * 3 / 4) {
      tail += loss;
      ++tail_n;
    }
  }
  if (quantize) enc_.quantize();
  return tail_n ? tail / tail_n : 0.0;
}

}  // namespace mlr::encoder
