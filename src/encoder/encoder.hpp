// The CNN key encoder of mLR (§4.3.1).
//
// Maps a COMPLEX64 chunk (the input of an F_u*D operation) to a 60-d float
// key used to search the memoization index. Matches the paper's design:
//   * COMPLEX64 input decomposed into real/imag channels,
//   * layer 1: 32 filters 5×5; layer 2: 64 filters 3×3; layer 3: FC → 60,
//   * trained with contrastive pairs: L = | ‖za−zb‖₂ − ‖Cha−Chb‖₂ |,
//   * deployed on the CPU with INT8-quantized weights.
// Arbitrary chunk shapes are average-pooled to a fixed 32×32 front-end so one
// encoder serves every operator's chunks.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "encoder/layers.hpp"

namespace mlr::encoder {

struct EncoderConfig {
  i64 input_hw = 32;    ///< pooled front-end resolution
  i64 embed_dim = 60;   ///< key dimensionality (paper's query example)
  double lr = 1e-3;
};

/// A chunk viewed as a rows×cols complex image (3-D slabs are pre-averaged
/// along the slab dimension by the caller or via from_slab()).
struct ChunkImage {
  i64 rows = 0, cols = 0;
  std::span<const cfloat> data;
};

/// Reduce a (count, rows, cols) slab to a single rows×cols plane by averaging
/// along the first axis; returns owned storage.
std::vector<cfloat> average_slab(std::span<const cfloat> slab, i64 count,
                                 i64 rows, i64 cols);

class CnnEncoder {
 public:
  explicit CnnEncoder(EncoderConfig cfg = {}, u64 seed = 2024);

  /// Float-precision forward pass.
  [[nodiscard]] std::vector<float> encode(const ChunkImage& chunk) const;
  /// INT8-weight inference path (the deployed configuration). Falls back to
  /// float weights until quantize() has been called.
  [[nodiscard]] std::vector<float> encode_quantized(const ChunkImage& chunk) const;

  /// One contrastive training step on a pair of chunks; returns the loss
  /// L = | ‖za−zb‖ − ‖Cha−Chb‖ |.
  double train_pair(const ChunkImage& a, const ChunkImage& b);

  /// Train on random pairs drawn from `samples`; returns mean loss of the
  /// final quarter of steps.
  double train(const std::vector<std::vector<cfloat>>& samples, i64 rows,
               i64 cols, int steps, u64 seed = 5);

  /// Freeze float weights into per-tensor symmetric INT8.
  void quantize();
  [[nodiscard]] bool quantized() const { return quantized_; }

  [[nodiscard]] const EncoderConfig& config() const { return cfg_; }
  /// FLOPs of one forward pass (cost-model input; <1 % of FFT cost).
  [[nodiscard]] double encode_flops() const;

 private:
  FeatureMap preprocess(const ChunkImage& chunk) const;
  std::vector<float> forward(const FeatureMap& in, bool use_int8) const;
  // Full forward keeping intermediates for backprop.
  struct Trace;
  std::vector<float> forward_train(const FeatureMap& in, Trace& t) const;
  void backward_from_embedding(const Trace& t, std::vector<float> dz);

  EncoderConfig cfg_;
  Rng rng_;
  Conv2D conv1_, conv2_;
  Dense fc_;
  Adam opt_w1_, opt_b1_, opt_w2_, opt_b2_, opt_wf_, opt_bf_;

  bool quantized_ = false;
  std::vector<std::int8_t> q_w1_, q_w2_, q_wf_;
  float s_w1_ = 1.0f, s_w2_ = 1.0f, s_wf_ = 1.0f;
};

/// L2 distance between two raw chunks (the contrastive ground-truth label).
double chunk_l2(std::span<const cfloat> a, std::span<const cfloat> b);

/// Shared ownership of one key encoder plus its contrastive training set.
///
/// Every device wrapper of a run (core::ExecutionContext, cluster::Cluster)
/// points at the same registry, so a multi-GPU run collects ONE training set
/// — deposited in global chunk order by the StageExecutor, the order a
/// single-GPU run would see — trains ONE encoder, and therefore produces the
/// same keys and the same DB/cache hit patterns as the single-GPU run.
/// A wrapper constructed without a registry creates a private one, keeping
/// standalone (test/bench) wrappers self-contained.
///
/// Thread safety: encode paths on the contained CnnEncoder are const and may
/// run concurrently from pool workers; sample collection and training are
/// serial by contract (the StageExecutor collects in its deterministic
/// serial pass, training happens between stages).
class EncoderRegistry {
 public:
  explicit EncoderRegistry(EncoderConfig cfg = {}, u64 seed = 2024)
      : enc_(cfg, seed) {}

  [[nodiscard]] CnnEncoder& encoder() { return enc_; }
  [[nodiscard]] const CnnEncoder& encoder() const { return enc_; }

  /// Toggle sample collection; `cap_total` bounds the training set size.
  void set_collect(bool on, std::size_t cap_total) {
    collect_ = on;
    cap_ = cap_total;
  }
  [[nodiscard]] bool collecting() const { return collect_; }
  /// True while collection is on and the set has room — callers gate the
  /// (non-trivial) plane pooling on this.
  [[nodiscard]] bool wants_samples() const {
    return collect_ && samples_.size() < cap_;
  }
  /// Deposit one (plane, rows, cols) sample; returns false once the set is
  /// full (collection for this registry is then finished).
  bool add_sample(std::vector<cfloat> plane, i64 rows, i64 cols);
  [[nodiscard]] std::size_t collected() const { return samples_.size(); }

  /// Contrastive-train on the collected set (pairs must share a shape) and
  /// optionally freeze to INT8. Returns mean tail loss; no-op (0) with
  /// fewer than 2 samples.
  double train_from_collected(int steps, bool quantize);

 private:
  struct Sample {
    std::vector<cfloat> plane;
    i64 rows, cols;
  };
  CnnEncoder enc_;
  std::vector<Sample> samples_;
  bool collect_ = false;
  std::size_t cap_ = 0;
};

}  // namespace mlr::encoder
