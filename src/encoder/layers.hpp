// Minimal neural-network layers with explicit forward/backward passes —
// enough to build and train the paper's 3-layer CNN key encoder without an
// external AI framework (the paper itself notes PyTorch/TensorFlow cannot
// consume COMPLEX64 inputs, hence the real/imag decomposition done here).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlr::encoder {

/// A [C][H][W] feature map stored flat, row-major within channel.
struct FeatureMap {
  i64 c = 0, h = 0, w = 0;
  std::vector<float> v;

  FeatureMap() = default;
  FeatureMap(i64 c_, i64 h_, i64 w_)
      : c(c_), h(h_), w(w_), v(size_t(c_ * h_ * w_), 0.0f) {}
  float& at(i64 ci, i64 y, i64 x) { return v[size_t((ci * h + y) * w + x)]; }
  [[nodiscard]] float at(i64 ci, i64 y, i64 x) const {
    return v[size_t((ci * h + y) * w + x)];
  }
  [[nodiscard]] i64 size() const { return c * h * w; }
};

/// 2-D convolution, 'same'-size semantics with stride, He-initialized.
class Conv2D {
 public:
  Conv2D(i64 in_ch, i64 out_ch, i64 ksize, i64 stride, Rng& rng);

  [[nodiscard]] FeatureMap forward(const FeatureMap& in) const;
  /// Backward: given dL/dout, accumulates dL/dw and dL/db into the gradient
  /// buffers and returns dL/din. `in` must be the forward input.
  FeatureMap backward(const FeatureMap& in, const FeatureMap& dout);

  [[nodiscard]] i64 out_h(i64 in_h) const { return (in_h + stride_ - 1) / stride_; }
  [[nodiscard]] i64 out_w(i64 in_w) const { return (in_w + stride_ - 1) / stride_; }

  std::vector<float> w;   ///< [out_ch][in_ch][k][k]
  std::vector<float> b;   ///< [out_ch]
  std::vector<float> gw;  ///< gradient accumulators
  std::vector<float> gb;

  [[nodiscard]] i64 in_ch() const { return in_ch_; }
  [[nodiscard]] i64 out_ch() const { return out_ch_; }
  [[nodiscard]] i64 ksize() const { return k_; }

 private:
  i64 in_ch_, out_ch_, k_, stride_, pad_;
};

/// Fully connected layer.
class Dense {
 public:
  Dense(i64 in_dim, i64 out_dim, Rng& rng);

  [[nodiscard]] std::vector<float> forward(const std::vector<float>& in) const;
  std::vector<float> backward(const std::vector<float>& in,
                              const std::vector<float>& dout);

  std::vector<float> w;  ///< [out][in]
  std::vector<float> b;
  std::vector<float> gw, gb;

  [[nodiscard]] i64 in_dim() const { return in_; }
  [[nodiscard]] i64 out_dim() const { return out_; }

 private:
  i64 in_, out_;
};

/// In-place ReLU; backward masks by the forward output.
void relu_forward(std::vector<float>& v);
void relu_backward(const std::vector<float>& out, std::vector<float>& grad);

/// 2×2 average pooling (floor semantics).
FeatureMap avgpool2(const FeatureMap& in);
FeatureMap avgpool2_backward(const FeatureMap& in_shape_ref,
                             const FeatureMap& dout);

/// Adam optimizer state for one parameter tensor.
class Adam {
 public:
  Adam(std::size_t n, double lr = 1e-3) : lr_(lr), m_(n, 0.0f), v_(n, 0.0f) {}
  void step(std::vector<float>& param, std::vector<float>& grad);

 private:
  double lr_;
  std::vector<float> m_, v_;
  i64 t_ = 0;
};

}  // namespace mlr::encoder
