#include "kvstore/kvstore.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"

namespace mlr::kvstore {

KvStore::KvStore(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {
  writer_ = std::thread([this] { writer_loop(); });
}

KvStore::~KvStore() {
  {
    std::lock_guard lk(q_mu_);
    stop_ = true;
  }
  q_cv_.notify_all();
  writer_.join();
}

void KvStore::put(u64 key, Blob value) {
  auto& sh = shard_of(key);
  std::lock_guard lk(sh.mu);
  auto it = sh.map.find(key);
  if (it != sh.map.end()) sh.bytes -= it->second.size();
  sh.bytes += value.size();
  sh.map[key] = std::move(value);
}

void KvStore::put_async(u64 key, Blob value) {
  {
    std::lock_guard lk(q_mu_);
    queue_.emplace(key, std::move(value));
  }
  q_cv_.notify_one();
}

void KvStore::drain() {
  std::unique_lock lk(q_mu_);
  q_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void KvStore::writer_loop() {
  for (;;) {
    std::pair<u64, Blob> item;
    {
      std::unique_lock lk(q_mu_);
      q_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    put(item.first, std::move(item.second));
    {
      std::lock_guard lk(q_mu_);
      --in_flight_;
    }
    q_idle_.notify_all();
  }
}

std::optional<Blob> KvStore::get(u64 key) const {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& sh = shard_of(key);
  std::optional<Blob> out;
  {
    std::lock_guard lk(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) out = it->second;
  }
  const auto dt = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  {
    std::lock_guard lk(lat_mu_);
    get_lat_.add(dt);
  }
  return out;
}

bool KvStore::contains(u64 key) const {
  const auto& sh = shard_of(key);
  std::lock_guard lk(sh.mu);
  return sh.map.contains(key);
}

bool KvStore::erase(u64 key) {
  auto& sh = shard_of(key);
  std::lock_guard lk(sh.mu);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  sh.bytes -= it->second.size();
  sh.map.erase(it);
  return true;
}

Samples KvStore::get_latencies() const {
  std::lock_guard lk(lat_mu_);
  return get_lat_;
}

std::size_t KvStore::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lk(sh.mu);
    n += sh.map.size();
  }
  return n;
}

std::size_t KvStore::bytes() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lk(sh.mu);
    n += sh.bytes;
  }
  return n;
}

Blob to_blob(std::span<const cfloat> data) {
  Blob b(data.size() * sizeof(cfloat));
  std::memcpy(b.data(), data.data(), b.size());
  return b;
}

std::vector<cfloat> from_blob(const Blob& blob) {
  MLR_CHECK(blob.size() % sizeof(cfloat) == 0);
  std::vector<cfloat> v(blob.size() / sizeof(cfloat));
  std::memcpy(v.data(), blob.data(), blob.size());
  return v;
}

}  // namespace mlr::kvstore
