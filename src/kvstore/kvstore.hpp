// In-memory key-value store — the repo's substitute for the Redis value
// database of the paper's distributed memoization system (§4.3.2).
//
// Provides the same semantics mLR relies on: binary values keyed by 64-bit
// ids, synchronous get, *asynchronous* put (the paper hides insertion
// overhead behind the next iteration's compute), sharding for concurrent
// access, and latency percentile accounting (the paper quotes P99 < 0.5 ms).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace mlr::kvstore {

using Blob = std::vector<std::byte>;

/// Sharded hash-map KV store with an async writer thread.
class KvStore {
 public:
  explicit KvStore(std::size_t shards = 8);
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Synchronous write.
  void put(u64 key, Blob value);
  /// Asynchronous write: enqueued to the writer thread, visible after drain.
  void put_async(u64 key, Blob value);
  /// Block until all queued async writes are applied.
  void drain();

  /// Synchronous read; nullopt when missing.
  [[nodiscard]] std::optional<Blob> get(u64 key) const;
  [[nodiscard]] bool contains(u64 key) const;
  bool erase(u64 key);

  [[nodiscard]] std::size_t size() const;
  /// Total bytes of stored values.
  [[nodiscard]] std::size_t bytes() const;
  /// Latency samples of get() calls in microseconds (host wall time — used
  /// for self-characterization tests, not the virtual clock). Returns a
  /// snapshot taken under the latency lock: concurrent get() calls keep
  /// appending samples, so handing out a reference would race the writers.
  [[nodiscard]] Samples get_latencies() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<u64, Blob> map;
    std::size_t bytes = 0;
  };

  Shard& shard_of(u64 key) { return shards_[key % shards_.size()]; }
  const Shard& shard_of(u64 key) const { return shards_[key % shards_.size()]; }
  void writer_loop();

  std::vector<Shard> shards_;
  mutable Samples get_lat_;
  mutable std::mutex lat_mu_;

  // Async writer state.
  std::thread writer_;
  std::mutex q_mu_;
  std::condition_variable q_cv_, q_idle_;
  std::queue<std::pair<u64, Blob>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Helpers to move typed payloads through the store.
Blob to_blob(std::span<const cfloat> data);
std::vector<cfloat> from_blob(const Blob& blob);

}  // namespace mlr::kvstore
