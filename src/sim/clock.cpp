#include "sim/clock.hpp"

#include <algorithm>

namespace mlr::sim {

void MemoryTracker::alloc(const std::string& name, double bytes, VTime t) {
  MLR_CHECK(bytes >= 0);
  for (auto& [n, b] : live_) {
    if (n == name) {
      current_ += bytes - b;
      b = bytes;
      peak_ = std::max(peak_, current_);
      samples_.push_back({t, current_});
      return;
    }
  }
  live_.emplace_back(name, bytes);
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  samples_.push_back({t, current_});
}

void MemoryTracker::release(const std::string& name, VTime t) {
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->first == name) {
      current_ -= it->second;
      live_.erase(it);
      samples_.push_back({t, current_});
      return;
    }
  }
  MLR_CHECK_MSG(false, "release of unknown variable: " + name);
}

double MemoryTracker::bytes_of(const std::string& name) const {
  for (const auto& [n, b] : live_) {
    if (n == name) return b;
  }
  return 0.0;
}

std::vector<std::pair<std::string, double>> MemoryTracker::breakdown() const {
  return live_;
}

}  // namespace mlr::sim
