#include "sim/device.hpp"

namespace mlr::sim {

Device::Device(int id, DeviceSpec spec)
    : id_(id),
      spec_(spec),
      compute_("gpu" + std::to_string(id) + ".compute"),
      h2d_("gpu" + std::to_string(id) + ".h2d"),
      d2h_("gpu" + std::to_string(id) + ".d2h") {}

VTime Device::run_kernel(VTime ready, double flops) {
  MLR_CHECK(flops >= 0);
  return compute_.schedule(ready, spec_.kernel_launch + flops / spec_.flops);
}

VTime Device::h2d(VTime ready, double bytes) {
  return h2d_.schedule(ready, bytes / spec_.h2d_bw);
}

VTime Device::d2h(VTime ready, double bytes) {
  return d2h_.schedule(ready, bytes / spec_.d2h_bw);
}

void Device::hbm_alloc(const std::string& name, double bytes, VTime t) {
  MLR_CHECK_MSG(hbm_.current() + bytes <= spec_.hbm_bytes,
                "GPU " + std::to_string(id_) + " HBM overflow allocating " +
                    name);
  hbm_.alloc(name, bytes, t);
}

void Device::hbm_free(const std::string& name, VTime t) {
  hbm_.release(name, t);
}

void Device::reset() {
  compute_.reset();
  h2d_.reset();
  d2h_.reset();
}

Interconnect::Interconnect(LinkSpec spec, u64 seed)
    : spec_(spec), link_("interconnect"), rng_(seed) {}

VTime Interconnect::transfer(VTime ready, double bytes) {
  MLR_CHECK(bytes >= 0);
  double dur = spec_.latency + bytes / spec_.bandwidth;
  if (spec_.jitter_mean > 0) dur += rng_.exponential(spec_.jitter_mean);
  return link_.schedule(ready, dur);
}

double Interconnect::payload_efficiency(double bytes) const {
  const double wire = bytes / spec_.bandwidth;
  return wire / (wire + spec_.latency);
}

VTime MemoryNode::serve_index_query(VTime ready, i64 batch) {
  MLR_CHECK(batch >= 1);
  // Batched lookups amortize the fixed traversal cost; multi-threaded DRAM
  // scanning adds only a marginal per-key term (paper §4.3.3).
  const double dur =
      spec_.base_query_s + double(batch - 1) * spec_.per_key_query_s;
  return cpu_.schedule(ready, dur);
}

VTime MemoryNode::serve_value(VTime ready, double bytes) {
  // Constant service latency plus a single-stream serialization term — a
  // Redis-like value store moves large values at a few GB/s, not wire speed.
  return cpu_.schedule(ready, spec_.value_serve_s + bytes / spec_.value_stream_bw);
}

}  // namespace mlr::sim
