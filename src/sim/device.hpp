// Simulated GPU and node hardware models, calibrated to the paper's platform
// (Polaris: 4×A100-40GB per node, PCIe/NVLink, dual Slingshot 11, local NVMe).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"

namespace mlr::sim {

/// Hardware characteristics of one modelled GPU.
struct DeviceSpec {
  double flops = 6.0e12;          ///< sustained FP32 FFT-pipeline FLOP/s (A100)
  double hbm_bytes = 40.0 * kGiB; ///< HBM2 capacity
  double h2d_bw = 22.0e9;         ///< effective host→device bytes/s (PCIe 4)
  double d2h_bw = 22.0e9;         ///< device→host bytes/s
  double kernel_launch = 6.0e-6;  ///< per-kernel launch latency (s)
};

/// One modelled GPU: a compute stream plus independent H2D/D2H copy engines,
/// with HBM capacity accounting. Copy/compute overlap falls out of the
/// separate timelines — the pipeline of Fig 1.
class Device {
 public:
  Device(int id, DeviceSpec spec = {});

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// Launch a kernel consuming `flops`; returns virtual completion time.
  VTime run_kernel(VTime ready, double flops);
  /// Enqueue a host→device transfer of `bytes`.
  VTime h2d(VTime ready, double bytes);
  /// Enqueue a device→host transfer of `bytes`.
  VTime d2h(VTime ready, double bytes);

  /// HBM accounting; throws when over capacity (the condition that forces
  /// chunked execution in the first place).
  void hbm_alloc(const std::string& name, double bytes, VTime t);
  void hbm_free(const std::string& name, VTime t);
  [[nodiscard]] const MemoryTracker& hbm() const { return hbm_; }

  [[nodiscard]] const Timeline& compute() const { return compute_; }
  [[nodiscard]] const Timeline& h2d_engine() const { return h2d_; }
  [[nodiscard]] const Timeline& d2h_engine() const { return d2h_; }
  void reset();

  /// Timeline-only snapshot (HBM tracker excluded: it is a diagnostic curve,
  /// not an input to scheduling) for serve-layer checkpoint/resume.
  struct ClockState {
    Timeline::State compute, h2d, d2h;
  };
  [[nodiscard]] ClockState clock_state() const {
    return {compute_.state(), h2d_.state(), d2h_.state()};
  }
  void restore_clock(const ClockState& s) {
    compute_.restore(s.compute);
    h2d_.restore(s.h2d);
    d2h_.restore(s.d2h);
  }

 private:
  int id_;
  DeviceSpec spec_;
  Timeline compute_, h2d_, d2h_;
  MemoryTracker hbm_;
};

/// Shared network link between compute node(s) and the memory node
/// (HPE Slingshot 11, 200 Gb/s bidirectional injection). All users contend
/// for the same timeline; latency jitter is optional failure injection.
struct LinkSpec {
  double bandwidth = 25.0e9;  ///< bytes/s (200 Gb/s)
  double latency = 2.0e-6;    ///< per-message base latency (s)
  double jitter_mean = 0.0;   ///< optional exponential jitter mean (s)
};

class Interconnect {
 public:
  explicit Interconnect(LinkSpec spec = {}, u64 seed = 99);

  /// Transfer `bytes` in one message; returns completion time.
  VTime transfer(VTime ready, double bytes);
  /// Effective achieved bandwidth fraction for a payload of `bytes`
  /// (small payloads waste the link on latency — the Fig 11 effect).
  [[nodiscard]] double payload_efficiency(double bytes) const;

  [[nodiscard]] const Timeline& link() const { return link_; }
  [[nodiscard]] double utilization(VTime horizon) const {
    return link_.utilization(horizon);
  }
  [[nodiscard]] const LinkSpec& spec() const { return spec_; }
  void set_jitter(double mean) { spec_.jitter_mean = mean; }
  void reset() { link_.reset(); }
  [[nodiscard]] Timeline::State clock_state() const { return link_.state(); }
  void restore_clock(const Timeline::State& s) { link_.restore(s); }

 private:
  LinkSpec spec_;
  Timeline link_;
  Rng rng_;
};

/// Local NVMe SSD model (a few GB/s — an order of magnitude below the
/// interconnect, which is why the memoization DB lives on a memory node and
/// only ADMM-Offload uses the SSD).
struct SsdSpec {
  double read_bw = 3.2e9;   ///< bytes/s
  double write_bw = 2.2e9;  ///< bytes/s
  double latency = 80.0e-6; ///< per-op latency
};

class Ssd {
 public:
  explicit Ssd(SsdSpec spec = {}) : spec_(spec), channel_("ssd") {}

  VTime read(VTime ready, double bytes) {
    return channel_.schedule(ready, spec_.latency + bytes / spec_.read_bw);
  }
  VTime write(VTime ready, double bytes) {
    return channel_.schedule(ready, spec_.latency + bytes / spec_.write_bw);
  }
  /// Pure duration (no queueing) — used by the offload planner's estimates.
  [[nodiscard]] double read_duration(double bytes) const {
    return spec_.latency + bytes / spec_.read_bw;
  }
  [[nodiscard]] double write_duration(double bytes) const {
    return spec_.latency + bytes / spec_.write_bw;
  }
  [[nodiscard]] const Timeline& channel() const { return channel_; }
  void reset() { channel_.reset(); }

 private:
  SsdSpec spec_;
  Timeline channel_;
};

/// The remote memory node hosting the memoization database: CPU memory
/// capacity, a service model for index queries (DRAM-bandwidth-bound batched
/// ANN lookups) and value fetches.
struct MemoryNodeSpec {
  double dram_bytes = 512.0 * kGiB;
  double base_query_s = 0.2e-3;     ///< ANN query at 1M×60-d (paper §4.3.2)
  double per_key_query_s = 20.0e-6; ///< marginal per additional key in batch
  double value_serve_s = 0.4e-3;    ///< value DB P99 < 0.5 ms (paper)
  double value_stream_bw = 2.0e9;   ///< value DB serialization throughput
};

class MemoryNode {
 public:
  explicit MemoryNode(MemoryNodeSpec spec = {}) : spec_(spec), cpu_("memnode") {}

  /// Serve a batched index lookup of `batch` keys.
  VTime serve_index_query(VTime ready, i64 batch);
  /// Serve one value retrieval of `bytes`.
  VTime serve_value(VTime ready, double bytes);
  [[nodiscard]] const MemoryNodeSpec& spec() const { return spec_; }
  [[nodiscard]] MemoryTracker& dram() { return dram_tracker_; }
  void reset() { cpu_.reset(); }
  [[nodiscard]] Timeline::State clock_state() const { return cpu_.state(); }
  void restore_clock(const Timeline::State& s) { cpu_.restore(s); }

 private:
  MemoryNodeSpec spec_;
  Timeline cpu_;
  MemoryTracker dram_tracker_;
};

}  // namespace mlr::sim
