// Virtual-time substrate.
//
// The paper's performance results come from Polaris (A100 GPUs, Slingshot 11,
// NVMe). This container has none of that hardware, so every performance-
// facing experiment runs real numerics under a *virtual clock*: each modelled
// resource (GPU compute stream, copy engine, network link, SSD channel) is a
// timeline that serializes the operations placed on it, and an operation's
// completion time is
//     start = max(input-ready time, resource.busy_until);  end = start + dur.
// Critical-path composition of those timelines reproduces pipeline overlap
// (Figs 1 and 3), transfer bottlenecks, and contention, without wall-clock
// dependence on this machine.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlr::sim {

/// Virtual timestamp in seconds.
using VTime = double;

/// A serially-used resource (one GPU stream, one DMA engine, one NIC...).
/// Tracks cumulative busy time so utilization can be reported.
class Timeline {
 public:
  explicit Timeline(std::string name = {}) : name_(std::move(name)) {}

  /// Schedule an operation that becomes eligible at `ready` and takes
  /// `duration` seconds. Returns its completion time.
  VTime schedule(VTime ready, double duration) {
    MLR_CHECK(duration >= 0.0);
    const VTime start = std::max(ready, busy_until_);
    busy_until_ = start + duration;
    busy_accum_ += duration;
    return busy_until_;
  }

  [[nodiscard]] VTime busy_until() const { return busy_until_; }
  /// Total busy seconds scheduled so far.
  [[nodiscard]] double busy_time() const { return busy_accum_; }
  /// Fraction of [0, horizon] this resource was busy.
  [[nodiscard]] double utilization(VTime horizon) const {
    return horizon > 0 ? std::min(1.0, busy_accum_ / horizon) : 0.0;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  void reset() {
    busy_until_ = 0;
    busy_accum_ = 0;
  }

  /// Snapshot of the mutable clock state, for checkpoint/resume of a
  /// session's virtual clocks (serve-layer preemption). Restoring on a
  /// freshly-constructed timeline reproduces subsequent schedule() results
  /// bit-identically.
  struct State {
    VTime busy_until = 0;
    double busy_accum = 0;
  };
  [[nodiscard]] State state() const { return {busy_until_, busy_accum_}; }
  void restore(const State& s) {
    busy_until_ = s.busy_until;
    busy_accum_ = s.busy_accum;
  }

 private:
  std::string name_;
  VTime busy_until_ = 0;
  double busy_accum_ = 0;
};

/// Named memory-consumption tracker sampling a (virtual time, bytes) curve —
/// drives the RSS plots of Fig 2 and Fig 13.
class MemoryTracker {
 public:
  struct Sample {
    VTime t;
    double bytes;
  };

  void alloc(const std::string& name, double bytes, VTime t);
  void release(const std::string& name, VTime t);
  [[nodiscard]] double current() const { return current_; }
  [[nodiscard]] double peak() const { return peak_; }
  [[nodiscard]] double bytes_of(const std::string& name) const;
  [[nodiscard]] const std::vector<Sample>& timeline() const { return samples_; }
  /// Live variable → bytes map (for the Fig 2 style breakdown).
  [[nodiscard]] std::vector<std::pair<std::string, double>> breakdown() const;

 private:
  std::vector<std::pair<std::string, double>> live_;
  std::vector<Sample> samples_;
  double current_ = 0, peak_ = 0;
};

}  // namespace mlr::sim
