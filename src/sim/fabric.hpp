// Shared memory-fabric model for cross-session traffic.
//
// The serving layer keeps its shared memo tier on N memory-node shards.
// Every session-level transfer — fetching the tier snapshot at dispatch,
// shipping a job's promoted entries back after drain — crosses two stages
// of the fabric:
//
//   * one *link per shard* (bandwidth `link_bandwidth`): the shards stream
//     their portions concurrently, each on its own timeline, and
//   * one *shared uplink* (bandwidth `uplink_bandwidth`): the whole payload
//     funnels through a single timeline that EVERY session of the service
//     contends on. This is the contention term: a transfer's uplink pass
//     starts at max(ready, uplink.busy_until), so concurrent sessions push
//     each other's virtual times back — they are no longer network-isolated.
//
// Stages are cut-through (a shard's stream and its uplink pass overlap), so
// one transfer completes at
//     max over shards(link_i pass) ∨ uplink pass,
// each pass = start + latency + bytes / bandwidth on its timeline.
//
// Determinism properties the serving tests pin down:
//   * All charging happens on the service's event-loop thread in dispatch
//     order — completions are exact, never sampled.
//   * When the uplink is the bottleneck (`link_bandwidth ≥
//     uplink_bandwidth`, the default), an *uncontended* transfer completes
//     at ready + latency + total_bytes / uplink_bandwidth regardless of how
//     the bytes split across shards — so single-session (one slot) clocks
//     reproduce the unsharded (1-shard) clock for every shard count.
//   * All durations are monotone in 1/bandwidth and Timeline::schedule is
//     monotone in ready times, so narrowing the uplink (more contention per
//     byte) can only push completions later — never earlier.
#pragma once

#include <span>
#include <vector>

#include "sim/clock.hpp"

namespace mlr::sim {

struct FabricSpec {
  bool enabled = true;            ///< false: transfers are free (legacy isolation)
  double link_bandwidth = 25.0e9;   ///< bytes/s per memory-node shard link
  double uplink_bandwidth = 25.0e9; ///< bytes/s of the shared uplink
  double latency = 2.0e-6;          ///< per-transfer base latency (s)
};

class Fabric {
 public:
  /// One link timeline per shard plus the shared uplink.
  Fabric(FabricSpec spec, int links);

  /// Charge one transfer whose payload splits as `shard_bytes[i]` onto link
  /// i (size must equal links()); returns its completion time. Zero-byte
  /// shards charge nothing; an all-zero transfer (or a disabled fabric)
  /// returns `ready` untouched. `total_bytes` drives the uplink pass; pass
  /// a canonically-computed total (< 0 → sum the shards here) when the
  /// completion must be bit-identical across shard splits — summing
  /// per-shard subsets reorders floating-point addition.
  VTime transfer(VTime ready, std::span<const double> shard_bytes,
                 double total_bytes = -1.0);

  [[nodiscard]] int links() const { return int(links_.size()); }
  [[nodiscard]] const Timeline& uplink() const { return uplink_; }
  [[nodiscard]] const Timeline& link(int i) const {
    return links_[std::size_t(i)];
  }
  [[nodiscard]] const FabricSpec& spec() const { return spec_; }

  /// Virtual seconds transfers spent queued behind other sessions' uplink
  /// passes — the observable contention the serving bench reports.
  [[nodiscard]] double contention_wait_s() const { return contention_wait_; }
  [[nodiscard]] double bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] u64 transfers() const { return transfers_; }

  void reset();

 private:
  FabricSpec spec_;
  Timeline uplink_;
  std::vector<Timeline> links_;
  double contention_wait_ = 0;
  double bytes_moved_ = 0;
  u64 transfers_ = 0;
};

}  // namespace mlr::sim
