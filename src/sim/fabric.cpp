#include "sim/fabric.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace mlr::sim {

Fabric::Fabric(FabricSpec spec, int links) : spec_(spec), uplink_("uplink") {
  MLR_CHECK(links >= 1);
  MLR_CHECK(spec_.link_bandwidth > 0 && spec_.uplink_bandwidth > 0);
  links_.reserve(std::size_t(links));
  for (int i = 0; i < links; ++i)
    links_.emplace_back("shard" + std::to_string(i));
}

VTime Fabric::transfer(VTime ready, std::span<const double> shard_bytes,
                       double total_bytes) {
  MLR_CHECK(shard_bytes.size() == links_.size());
  double total = total_bytes;
  if (total < 0) {
    total = 0;
    for (const double b : shard_bytes) {
      MLR_CHECK(b >= 0);
      total += b;
    }
  }
  if (!spec_.enabled || total <= 0) return ready;
  ++transfers_;
  bytes_moved_ += total;
  // Shard links stream their portions concurrently (one timeline each).
  VTime done = ready;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (shard_bytes[i] <= 0) continue;
    done = std::max(
        done, links_[i].schedule(
                  ready, spec_.latency + shard_bytes[i] / spec_.link_bandwidth));
  }
  // The whole payload funnels through the shared uplink — the one timeline
  // every session of a service queues on. Queueing delay behind other
  // sessions is the contention term.
  contention_wait_ += std::max(0.0, uplink_.busy_until() - ready);
  done = std::max(
      done,
      uplink_.schedule(ready, spec_.latency + total / spec_.uplink_bandwidth));
  return done;
}

void Fabric::reset() {
  uplink_.reset();
  for (auto& l : links_) l.reset();
  contention_wait_ = 0;
  bytes_moved_ = 0;
  transfers_ = 0;
}

}  // namespace mlr::sim
