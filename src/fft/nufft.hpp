// Non-uniform FFT (NUFFT), Dutt–Rokhlin / Greengard–Lee Gaussian gridding.
//
// The laminography operators F_u1D / F_u2D evaluate Fourier transforms on
// *unequally spaced* frequency grids (paper §2, refs [3,11]). This module
// provides the two required primitives:
//
//   type-2 ("uniform → nonuniform"):
//       F_j = Σ_k f_k · exp(sign·2πi · k̃ · ν_j / n),   k̃ = k − n/2 centered
//   type-1 ("nonuniform → uniform"), the exact transpose:
//       H_k = Σ_j q_j · exp(sign·2πi · k̃ · ν_j / n)
//
// so that type1(−sign) is the exact adjoint (conjugate transpose) of
// type2(sign) — the property the ADMM conjugate-gradient solver relies on.
//
// Accuracy: oversampling σ=2 and spreading half-width Msp=6 give ~1e-6
// relative error (single precision), verified against the naive NDFT in
// tests/fft_test.cpp.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/scratch.hpp"
#include "common/types.hpp"

namespace mlr::fft {

/// Gaussian spreading parameters shared by the 1-D and 2-D transforms.
struct GriddingParams {
  int msp = 6;        ///< spreading half-width in fine-grid points
  i64 sigma = 2;      ///< oversampling factor (fine grid m = sigma·n)
  [[nodiscard]] double tau() const;  ///< Gaussian width in fine-grid units²
};

/// 1-D NUFFT plan for a fixed uniform length n. The nonuniform frequencies
/// are passed per call (they are cheap; the expensive state is the FFT plan).
class Nufft1D {
 public:
  explicit Nufft1D(i64 n, GriddingParams params = {});

  [[nodiscard]] i64 n() const { return n_; }
  [[nodiscard]] i64 fine_size() const { return m_; }

  /// Uniform (length n) → nonuniform (length nu.size()).
  void type2(std::span<const double> nu, std::span<const cfloat> f,
             std::span<cfloat> out, int sign) const;
  /// Nonuniform (length nu.size()) → uniform (length n). Accumulates into
  /// `out` after zeroing it.
  void type1(std::span<const double> nu, std::span<const cfloat> q,
             std::span<cfloat> out, int sign) const;

  /// FLOP estimate for one type-2/type-1 call with `npts` targets (cost model
  /// input for the simulated GPU).
  [[nodiscard]] double flops(i64 npts) const;

 private:
  i64 n_, m_;
  GriddingParams params_;
  std::vector<float> deconv_;  // 1/ψ̂(k̃) for each uniform mode (storage order)
  // Plan1D execute() is const-thread-safe, so one fine-grid plan serves
  // every calling thread.
  std::shared_ptr<const class Plan1D> fine_plan_;
  // Per-thread fine-grid working buffer (length m): type1/type2 zero and
  // fill it per call instead of heap-allocating.
  PerThreadScratch<cfloat> grid_scratch_;
};

/// 2-D NUFFT plan over an (rows × cols) uniform grid; nonuniform points are
/// (ν_r, ν_c) pairs in cycles.
class Nufft2D {
 public:
  Nufft2D(i64 rows, i64 cols, GriddingParams params = {});

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }

  /// Uniform (rows·cols row-major) → nonuniform (nu_r.size() targets).
  void type2(std::span<const double> nu_r, std::span<const double> nu_c,
             std::span<const cfloat> f, std::span<cfloat> out,
             int sign) const;
  /// Nonuniform → uniform (rows·cols). Zeroes `out` first.
  void type1(std::span<const double> nu_r, std::span<const double> nu_c,
             std::span<const cfloat> q, std::span<cfloat> out,
             int sign) const;

  [[nodiscard]] double flops(i64 npts) const;

 private:
  i64 rows_, cols_, mr_, mc_;
  GriddingParams params_;
  std::vector<float> deconv_r_, deconv_c_;
  std::shared_ptr<const class Plan1D> fine_plan_r_, fine_plan_c_;
  // Per-thread working storage: the mr×mc fine grid and the column gather
  // buffer of fine_fft2d.
  PerThreadScratch<cfloat> grid_scratch_;
  PerThreadScratch<cfloat> col_scratch_;

  void fine_fft2d(std::span<cfloat> g, int sign) const;
};

/// Naive O(n·J) nonuniform DFT references used by tests and tiny problems.
void ndft1d_type2(std::span<const double> nu, std::span<const cfloat> f,
                  std::span<cfloat> out, int sign);
void ndft1d_type1(std::span<const double> nu, std::span<const cfloat> q,
                  std::span<cfloat> out, i64 n, int sign);
void ndft2d_type2(std::span<const double> nu_r, std::span<const double> nu_c,
                  i64 rows, i64 cols, std::span<const cfloat> f,
                  std::span<cfloat> out, int sign);
void ndft2d_type1(std::span<const double> nu_r, std::span<const double> nu_c,
                  i64 rows, i64 cols, std::span<const cfloat> q,
                  std::span<cfloat> out, int sign);

}  // namespace mlr::fft
