// From-scratch complex FFT library.
//
// The paper's reconstruction kernels (cuFFT on the authors' platform) are
// re-implemented here as portable CPU kernels:
//   * iterative radix-2 Cooley–Tukey for power-of-two lengths,
//   * Bluestein chirp-z for arbitrary lengths,
//   * batched / strided application and 2-D transforms on top.
//
// Convention: forward() computes X[k] = Σ_n x[n]·exp(−2πi·k·n/N) (no scale);
// inverse() computes the conjugate transform scaled by 1/N, so
// inverse(forward(x)) == x. unitary variants scale both sides by 1/√N.
#pragma once

#include <span>
#include <vector>

#include "common/array.hpp"
#include "common/scratch.hpp"
#include "common/types.hpp"

namespace mlr::fft {

/// Reusable 1-D transform plan for a fixed length. Thread-safe for concurrent
/// execute() calls; non-pow2 (Bluestein) and strided execution run out of
/// plan-owned per-thread scratch arenas, so a steady-state transform performs
/// zero heap allocations.
class Plan1D {
 public:
  explicit Plan1D(i64 n);

  [[nodiscard]] i64 size() const { return n_; }

  /// In-place forward transform of `n` contiguous elements.
  void forward(std::span<cfloat> data) const { execute(data, /*inverse=*/false); }
  /// In-place inverse transform (scaled by 1/n).
  void inverse(std::span<cfloat> data) const { execute(data, /*inverse=*/true); }
  void execute(std::span<cfloat> data, bool inverse) const;

  /// Strided in-place transform: elements data[offset + i*stride], i<n.
  void execute_strided(cfloat* data, i64 stride, bool inverse) const;

 private:
  void execute_pow2(std::span<cfloat> data, bool inverse) const;
  void execute_bluestein(std::span<cfloat> data, bool inverse) const;

  i64 n_ = 0;
  bool pow2_ = false;
  // Radix-2 machinery (twiddles for each stage), for pow2 sizes.
  std::vector<cfloat> twiddle_;       // e^{-2πi k/n}, k < n/2
  std::vector<u64> bitrev_;
  // Bluestein machinery for non-pow2 sizes.
  i64 m_ = 0;                          // pow2 convolution length >= 2n-1
  std::vector<cfloat> chirp_;          // e^{-iπ k²/n}
  std::vector<cfloat> chirp_fft_;      // FFT of the padded conjugate chirp
  std::vector<cfloat> mtw_;            // twiddles for the length-m FFT
  std::vector<u64> mbitrev_;
  // Per-thread working storage: the length-m Bluestein convolution buffer
  // and the gather/scatter temporary of execute_strided.
  PerThreadScratch<cfloat> bluestein_scratch_;
  PerThreadScratch<cfloat> strided_scratch_;
};

/// Per-thread cache of Plan1D instances keyed by length — for call sites
/// that transform many different row/column lengths without owning plans
/// (fft2d_span). Plans are built once per (thread, length) and reused, so
/// repeated 2-D transforms stop re-deriving twiddles and bit-reversal
/// tables on every call.
const Plan1D& thread_plan(i64 n);

/// Centered ("fftshift-ed") index helper: maps centered index k̃ ∈ [−n/2,n/2)
/// to storage index in [0, n).
inline i64 from_centered(i64 k_tilde, i64 n) {
  return (k_tilde % n + n) % n;
}
/// Storage index -> centered index in [−n/2, n/2).
inline i64 to_centered(i64 k, i64 n) { return k < (n + 1) / 2 ? k : k - n; }

/// Forward 2-D transform of a rows×cols array, in place, row-major.
void fft2d(Array2D<cfloat>& a, bool inverse);
/// Unitary 2-D transform (scaled by 1/√(rows·cols) both directions), the
/// convention used for the paper's F_2D / F*_2D detector transforms.
void fft2d_unitary(Array2D<cfloat>& a, bool inverse);
/// Same, operating on a raw row-major span.
void fft2d_span(std::span<cfloat> a, i64 rows, i64 cols, bool inverse,
                bool unitary);

/// fftshift in place (1-D).
void fftshift(std::span<cfloat> a);

/// Approximate FLOP count of one complex FFT of length n (5 n log2 n), used by
/// the simulated-GPU cost model.
double fft_flops(i64 n);

}  // namespace mlr::fft
