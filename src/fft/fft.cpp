#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <unordered_map>

#include "common/error.hpp"

namespace mlr::fft {

namespace {

constexpr double kPi = std::numbers::pi;

bool is_pow2(i64 n) { return n > 0 && (n & (n - 1)) == 0; }

i64 next_pow2(i64 n) {
  i64 p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<u64> make_bitrev(i64 n) {
  std::vector<u64> rev(static_cast<size_t>(n));
  int bits = 0;
  while ((i64(1) << bits) < n) ++bits;
  for (i64 i = 0; i < n; ++i) {
    u64 r = 0;
    for (int b = 0; b < bits; ++b)
      if (i & (i64(1) << b)) r |= u64(1) << (bits - 1 - b);
    rev[size_t(i)] = r;
  }
  return rev;
}

std::vector<cfloat> make_twiddles(i64 n) {
  std::vector<cfloat> tw(size_t(n / 2));
  for (i64 k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * kPi * double(k) / double(n);
    tw[size_t(k)] = cfloat(float(std::cos(ang)), float(std::sin(ang)));
  }
  return tw;
}

// Core iterative radix-2 Cooley–Tukey, decimation in time.
void fft_pow2_core(std::span<cfloat> a, const std::vector<cfloat>& tw,
                   const std::vector<u64>& rev, bool inverse) {
  const i64 n = i64(a.size());
  for (i64 i = 0; i < n; ++i) {
    const auto j = i64(rev[size_t(i)]);
    if (i < j) std::swap(a[size_t(i)], a[size_t(j)]);
  }
  for (i64 len = 2; len <= n; len <<= 1) {
    const i64 half = len / 2;
    const i64 step = n / len;  // twiddle stride
    for (i64 base = 0; base < n; base += len) {
      for (i64 k = 0; k < half; ++k) {
        cfloat w = tw[size_t(k * step)];
        if (inverse) w = std::conj(w);
        const cfloat u = a[size_t(base + k)];
        const cfloat t = a[size_t(base + k + half)] * w;
        a[size_t(base + k)] = u + t;
        a[size_t(base + k + half)] = u - t;
      }
    }
  }
  if (inverse) {
    const float inv = 1.0f / float(n);
    for (auto& x : a) x *= inv;
  }
}

}  // namespace

Plan1D::Plan1D(i64 n) : n_(n), pow2_(is_pow2(n)) {
  MLR_CHECK_MSG(n >= 1, "FFT length must be positive");
  if (n_ == 1) return;
  if (pow2_) {
    twiddle_ = make_twiddles(n_);
    bitrev_ = make_bitrev(n_);
    return;
  }
  // Bluestein setup: x[k]·chirp[k], convolve with conj chirp, multiply chirp.
  m_ = next_pow2(2 * n_ - 1);
  chirp_.resize(static_cast<size_t>(n_));
  for (i64 k = 0; k < n_; ++k) {
    // exp(-iπ k²/n); reduce k² mod 2n to keep the angle accurate for large k.
    const i64 k2 = (k * k) % (2 * n_);
    const double ang = -kPi * double(k2) / double(n_);
    chirp_[size_t(k)] = cfloat(float(std::cos(ang)), float(std::sin(ang)));
  }
  mtw_ = make_twiddles(m_);
  mbitrev_ = make_bitrev(m_);
  std::vector<cfloat> b(size_t(m_), cfloat{});
  b[0] = std::conj(chirp_[0]);
  for (i64 k = 1; k < n_; ++k) {
    b[size_t(k)] = std::conj(chirp_[size_t(k)]);
    b[size_t(m_ - k)] = std::conj(chirp_[size_t(k)]);
  }
  fft_pow2_core({b.data(), size_t(m_)}, mtw_, mbitrev_, /*inverse=*/false);
  chirp_fft_ = std::move(b);
}

void Plan1D::execute(std::span<cfloat> data, bool inverse) const {
  MLR_CHECK(i64(data.size()) == n_);
  if (n_ == 1) return;
  if (pow2_) {
    execute_pow2(data, inverse);
  } else {
    execute_bluestein(data, inverse);
  }
}

void Plan1D::execute_pow2(std::span<cfloat> data, bool inverse) const {
  fft_pow2_core(data, twiddle_, bitrev_, inverse);
}

void Plan1D::execute_bluestein(std::span<cfloat> data, bool inverse) const {
  // Inverse transform = conj(forward(conj(x)))/n.
  auto a = bluestein_scratch_.buffer(size_t(m_));
  std::fill(a.begin() + n_, a.end(), cfloat{});  // zero-pad [n, m)
  if (inverse) {
    for (i64 k = 0; k < n_; ++k)
      a[size_t(k)] = std::conj(data[size_t(k)]) * chirp_[size_t(k)];
  } else {
    for (i64 k = 0; k < n_; ++k)
      a[size_t(k)] = data[size_t(k)] * chirp_[size_t(k)];
  }
  fft_pow2_core({a.data(), size_t(m_)}, mtw_, mbitrev_, /*inverse=*/false);
  for (i64 k = 0; k < m_; ++k) a[size_t(k)] *= chirp_fft_[size_t(k)];
  fft_pow2_core({a.data(), size_t(m_)}, mtw_, mbitrev_, /*inverse=*/true);
  if (inverse) {
    const float inv = 1.0f / float(n_);
    for (i64 k = 0; k < n_; ++k)
      data[size_t(k)] =
          std::conj(a[size_t(k)] * chirp_[size_t(k)]) * inv;
  } else {
    for (i64 k = 0; k < n_; ++k)
      data[size_t(k)] = a[size_t(k)] * chirp_[size_t(k)];
  }
}

void Plan1D::execute_strided(cfloat* data, i64 stride, bool inverse) const {
  if (stride == 1) {
    execute({data, size_t(n_)}, inverse);
    return;
  }
  auto tmp = strided_scratch_.buffer(static_cast<size_t>(n_));
  for (i64 i = 0; i < n_; ++i) tmp[size_t(i)] = data[i * stride];
  execute(tmp, inverse);
  for (i64 i = 0; i < n_; ++i) data[i * stride] = tmp[size_t(i)];
}

const Plan1D& thread_plan(i64 n) {
  thread_local std::unordered_map<i64, std::unique_ptr<Plan1D>> plans;
  auto& slot = plans[n];
  if (slot == nullptr) slot = std::make_unique<Plan1D>(n);
  return *slot;
}

void fft2d_span(std::span<cfloat> a, i64 rows, i64 cols, bool inverse,
                bool unitary) {
  MLR_CHECK(i64(a.size()) == rows * cols);
  const Plan1D& row_plan = thread_plan(cols);
  const Plan1D& col_plan = thread_plan(rows);
  for (i64 r = 0; r < rows; ++r) {
    row_plan.execute(a.subspan(size_t(r * cols), size_t(cols)), inverse);
  }
  for (i64 c = 0; c < cols; ++c) {
    col_plan.execute_strided(a.data() + c, cols, inverse);
  }
  if (unitary) {
    // forward: multiply by 1/√N; inverse already divided by N, so restore √N.
    const double n = double(rows * cols);
    const float s = float(inverse ? std::sqrt(n) : 1.0 / std::sqrt(n));
    for (auto& x : a) x *= s;
  }
}

void fft2d(Array2D<cfloat>& a, bool inverse) {
  fft2d_span(a.span(), a.rows(), a.cols(), inverse, /*unitary=*/false);
}

void fft2d_unitary(Array2D<cfloat>& a, bool inverse) {
  fft2d_span(a.span(), a.rows(), a.cols(), inverse, /*unitary=*/true);
}

void fftshift(std::span<cfloat> a) {
  const auto n = i64(a.size());
  std::rotate(a.begin(), a.begin() + (n + 1) / 2, a.end());
}

double fft_flops(i64 n) {
  if (n <= 1) return 0.0;
  return 5.0 * double(n) * std::log2(double(n));
}

}  // namespace mlr::fft
