#include "fft/nufft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "fft/fft.hpp"

namespace mlr::fft {

namespace {

constexpr double kPi = std::numbers::pi;

// Wrap a real coordinate into [0, m).
inline double wrap(double x, double m) {
  x = std::fmod(x, m);
  if (x < 0) x += m;
  return x;
}

// Execute a length-m DFT with explicit sign: sign=-1 is the forward
// convention of Plan1D; sign=+1 is the unscaled conjugate transform.
void dft_sign(const Plan1D& plan, std::span<cfloat> a, int sign) {
  if (sign < 0) {
    plan.forward(a);
  } else {
    plan.inverse(a);
    const float m = float(a.size());
    for (auto& x : a) x *= m;
  }
}

// Evaluate the Gaussian spreading weights around point p on a grid of size m.
// Fills idx[0..cnt) with wrapped grid indices and w[0..cnt) with weights.
struct SpreadWindow {
  static constexpr int kMax = 32;
  i64 idx[kMax];
  float w[kMax];
  int cnt = 0;
};

SpreadWindow make_window(double p, i64 m, int msp, double tau) {
  SpreadWindow win;
  const i64 lo = i64(std::ceil(p - msp));
  const i64 hi = i64(std::floor(p + msp));
  const double inv4tau = 1.0 / (4.0 * tau);
  for (i64 u = lo; u <= hi && win.cnt < SpreadWindow::kMax; ++u) {
    const double d = double(u) - p;
    win.idx[win.cnt] = (u % m + m) % m;
    win.w[win.cnt] = float(std::exp(-d * d * inv4tau));
    ++win.cnt;
  }
  return win;
}

// 1/ψ̂ deconvolution factors in storage order for n uniform modes on a fine
// grid of size m. ψ̂(k̃) = √(4πτ)·exp(−τ(2πk̃/m)²).
std::vector<float> make_deconv(i64 n, i64 m, double tau) {
  std::vector<float> d(static_cast<size_t>(n));
  const double norm = std::sqrt(4.0 * kPi * tau);
  for (i64 k = 0; k < n; ++k) {
    const i64 kc = to_centered(k, n);
    const double w = 2.0 * kPi * double(kc) / double(m);
    d[size_t(k)] = float(1.0 / (norm * std::exp(-tau * w * w)));
  }
  return d;
}

}  // namespace

double GriddingParams::tau() const {
  // Greengard–Lee optimal width for oversampling σ: τ (in fine-grid units²)
  // = Msp·σ / (4π(σ−0.5)); for σ=2 this is Msp/(3π).
  return double(msp) * double(sigma) / (4.0 * kPi * (double(sigma) - 0.5));
}

Nufft1D::Nufft1D(i64 n, GriddingParams params)
    : n_(n), m_(params.sigma * n), params_(params) {
  MLR_CHECK(n >= 2);
  deconv_ = make_deconv(n_, m_, params_.tau());
  fine_plan_ = std::make_shared<Plan1D>(m_);
}

void Nufft1D::type2(std::span<const double> nu, std::span<const cfloat> f,
                    std::span<cfloat> out, int sign) const {
  MLR_CHECK(i64(f.size()) == n_);
  MLR_CHECK(out.size() == nu.size());
  const double tau = params_.tau();
  // 1) deconvolve and zero-pad into the fine grid (storage order: index
  //    k̃ mod m).
  auto g = grid_scratch_.buffer(size_t(m_));
  std::fill(g.begin(), g.end(), cfloat{});
  for (i64 k = 0; k < n_; ++k) {
    const i64 kc = to_centered(k, n_);
    g[size_t(from_centered(kc, m_))] = f[size_t(k)] * deconv_[size_t(k)];
  }
  // 2) fine-grid DFT from mode index to spatial index.
  dft_sign(*fine_plan_, {g.data(), size_t(m_)}, sign);
  // 3) interpolate at σ·ν_j.
  const auto sigma = double(params_.sigma);
  for (std::size_t j = 0; j < nu.size(); ++j) {
    const double p = wrap(sigma * nu[j], double(m_));
    const auto win = make_window(p, m_, params_.msp, tau);
    cfloat acc{};
    for (int t = 0; t < win.cnt; ++t) acc += g[size_t(win.idx[t])] * win.w[t];
    out[j] = acc;
  }
}

void Nufft1D::type1(std::span<const double> nu, std::span<const cfloat> q,
                    std::span<cfloat> out, int sign) const {
  MLR_CHECK(q.size() == nu.size());
  MLR_CHECK(i64(out.size()) == n_);
  const double tau = params_.tau();
  // 1) spread onto the fine grid.
  auto g = grid_scratch_.buffer(size_t(m_));
  std::fill(g.begin(), g.end(), cfloat{});
  const auto sigma = double(params_.sigma);
  for (std::size_t j = 0; j < nu.size(); ++j) {
    const double p = wrap(sigma * nu[j], double(m_));
    const auto win = make_window(p, m_, params_.msp, tau);
    for (int t = 0; t < win.cnt; ++t) g[size_t(win.idx[t])] += q[j] * win.w[t];
  }
  // 2) fine-grid DFT from spatial index to mode index.
  dft_sign(*fine_plan_, {g.data(), size_t(m_)}, sign);
  // 3) deconvolve, truncate to the n central modes.
  for (i64 k = 0; k < n_; ++k) {
    const i64 kc = to_centered(k, n_);
    out[size_t(k)] =
        g[size_t(from_centered(kc, m_))] * deconv_[size_t(k)];
  }
}

double Nufft1D::flops(i64 npts) const {
  return fft_flops(m_) + double(npts) * double(2 * params_.msp + 1) * 8.0 +
         double(n_) * 6.0;
}

Nufft2D::Nufft2D(i64 rows, i64 cols, GriddingParams params)
    : rows_(rows),
      cols_(cols),
      mr_(params.sigma * rows),
      mc_(params.sigma * cols),
      params_(params) {
  MLR_CHECK(rows >= 2 && cols >= 2);
  deconv_r_ = make_deconv(rows_, mr_, params_.tau());
  deconv_c_ = make_deconv(cols_, mc_, params_.tau());
  fine_plan_r_ = std::make_shared<Plan1D>(mr_);
  fine_plan_c_ = std::make_shared<Plan1D>(mc_);
}

void Nufft2D::fine_fft2d(std::span<cfloat> g, int sign) const {
  for (i64 r = 0; r < mr_; ++r)
    dft_sign(*fine_plan_c_, g.subspan(size_t(r * mc_), size_t(mc_)), sign);
  auto col = col_scratch_.buffer(static_cast<size_t>(mr_));
  for (i64 c = 0; c < mc_; ++c) {
    for (i64 r = 0; r < mr_; ++r) col[size_t(r)] = g[size_t(r * mc_ + c)];
    dft_sign(*fine_plan_r_, {col.data(), size_t(mr_)}, sign);
    for (i64 r = 0; r < mr_; ++r) g[size_t(r * mc_ + c)] = col[size_t(r)];
  }
}

void Nufft2D::type2(std::span<const double> nu_r,
                    std::span<const double> nu_c,
                    std::span<const cfloat> f, std::span<cfloat> out,
                    int sign) const {
  MLR_CHECK(i64(f.size()) == rows_ * cols_);
  MLR_CHECK(nu_r.size() == nu_c.size() && out.size() == nu_r.size());
  const double tau = params_.tau();
  auto g = grid_scratch_.buffer(size_t(mr_ * mc_));
  std::fill(g.begin(), g.end(), cfloat{});
  for (i64 r = 0; r < rows_; ++r) {
    const i64 rf = from_centered(to_centered(r, rows_), mr_);
    for (i64 c = 0; c < cols_; ++c) {
      const i64 cf = from_centered(to_centered(c, cols_), mc_);
      g[size_t(rf * mc_ + cf)] = f[size_t(r * cols_ + c)] *
                                 deconv_r_[size_t(r)] * deconv_c_[size_t(c)];
    }
  }
  fine_fft2d({g.data(), g.size()}, sign);
  const auto sigma = double(params_.sigma);
  for (std::size_t j = 0; j < nu_r.size(); ++j) {
    const double pr = wrap(sigma * nu_r[j], double(mr_));
    const double pc = wrap(sigma * nu_c[j], double(mc_));
    const auto wr = make_window(pr, mr_, params_.msp, tau);
    const auto wc = make_window(pc, mc_, params_.msp, tau);
    cfloat acc{};
    for (int a = 0; a < wr.cnt; ++a) {
      const cfloat* row = g.data() + wr.idx[a] * mc_;
      cfloat racc{};
      for (int b = 0; b < wc.cnt; ++b) racc += row[wc.idx[b]] * wc.w[b];
      acc += racc * wr.w[a];
    }
    out[j] = acc;
  }
}

void Nufft2D::type1(std::span<const double> nu_r,
                    std::span<const double> nu_c,
                    std::span<const cfloat> q, std::span<cfloat> out,
                    int sign) const {
  MLR_CHECK(nu_r.size() == nu_c.size() && q.size() == nu_r.size());
  MLR_CHECK(i64(out.size()) == rows_ * cols_);
  const double tau = params_.tau();
  auto g = grid_scratch_.buffer(size_t(mr_ * mc_));
  std::fill(g.begin(), g.end(), cfloat{});
  const auto sigma = double(params_.sigma);
  for (std::size_t j = 0; j < nu_r.size(); ++j) {
    const double pr = wrap(sigma * nu_r[j], double(mr_));
    const double pc = wrap(sigma * nu_c[j], double(mc_));
    const auto wr = make_window(pr, mr_, params_.msp, tau);
    const auto wc = make_window(pc, mc_, params_.msp, tau);
    for (int a = 0; a < wr.cnt; ++a) {
      cfloat* row = g.data() + wr.idx[a] * mc_;
      const cfloat qa = q[j] * wr.w[a];
      for (int b = 0; b < wc.cnt; ++b) row[wc.idx[b]] += qa * wc.w[b];
    }
  }
  fine_fft2d({g.data(), g.size()}, sign);
  for (i64 r = 0; r < rows_; ++r) {
    const i64 rf = from_centered(to_centered(r, rows_), mr_);
    for (i64 c = 0; c < cols_; ++c) {
      const i64 cf = from_centered(to_centered(c, cols_), mc_);
      out[size_t(r * cols_ + c)] = g[size_t(rf * mc_ + cf)] *
                                   deconv_r_[size_t(r)] *
                                   deconv_c_[size_t(c)];
    }
  }
}

double Nufft2D::flops(i64 npts) const {
  const double w = double(2 * params_.msp + 1);
  return double(mr_) * fft_flops(mc_) + double(mc_) * fft_flops(mr_) +
         double(npts) * w * w * 8.0 + double(rows_ * cols_) * 6.0;
}

// ---------------------------------------------------------------------------
// Naive references.

void ndft1d_type2(std::span<const double> nu, std::span<const cfloat> f,
                  std::span<cfloat> out, int sign) {
  const i64 n = i64(f.size());
  for (std::size_t j = 0; j < nu.size(); ++j) {
    cdouble acc{};
    for (i64 k = 0; k < n; ++k) {
      const double ang =
          double(sign) * 2.0 * kPi * double(to_centered(k, n)) * nu[j] /
          double(n);
      acc += cdouble(f[size_t(k)]) * std::polar(1.0, ang);
    }
    out[j] = cfloat(acc);
  }
}

void ndft1d_type1(std::span<const double> nu, std::span<const cfloat> q,
                  std::span<cfloat> out, i64 n, int sign) {
  for (i64 k = 0; k < n; ++k) {
    cdouble acc{};
    for (std::size_t j = 0; j < nu.size(); ++j) {
      const double ang =
          double(sign) * 2.0 * kPi * double(to_centered(k, n)) * nu[j] /
          double(n);
      acc += cdouble(q[j]) * std::polar(1.0, ang);
    }
    out[size_t(k)] = cfloat(acc);
  }
}

void ndft2d_type2(std::span<const double> nu_r, std::span<const double> nu_c,
                  i64 rows, i64 cols, std::span<const cfloat> f,
                  std::span<cfloat> out, int sign) {
  for (std::size_t j = 0; j < nu_r.size(); ++j) {
    cdouble acc{};
    for (i64 r = 0; r < rows; ++r) {
      for (i64 c = 0; c < cols; ++c) {
        const double ang = double(sign) * 2.0 * kPi *
                           (double(to_centered(r, rows)) * nu_r[j] / double(rows) +
                            double(to_centered(c, cols)) * nu_c[j] / double(cols));
        acc += cdouble(f[size_t(r * cols + c)]) * std::polar(1.0, ang);
      }
    }
    out[j] = cfloat(acc);
  }
}

void ndft2d_type1(std::span<const double> nu_r, std::span<const double> nu_c,
                  i64 rows, i64 cols, std::span<const cfloat> q,
                  std::span<cfloat> out, int sign) {
  for (i64 r = 0; r < rows; ++r) {
    for (i64 c = 0; c < cols; ++c) {
      cdouble acc{};
      for (std::size_t j = 0; j < nu_r.size(); ++j) {
        const double ang = double(sign) * 2.0 * kPi *
                           (double(to_centered(r, rows)) * nu_r[j] / double(rows) +
                            double(to_centered(c, cols)) * nu_c[j] / double(cols));
        acc += cdouble(q[j]) * std::polar(1.0, ang);
      }
      out[size_t(r * cols + c)] = cfloat(acc);
    }
  }
}

}  // namespace mlr::fft
