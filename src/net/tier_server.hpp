// net/tier_server — serves one serve::SharedTier over the memo wire
// protocol.
//
// The server owns the authoritative tier state (canonical snapshot order,
// per-shard occupancy, the dedup index) and handles the five request verbs
// byte-in/byte-out:
//
//   GET / GET_BATCH      value payloads by snapshot position
//   PUT                  fold one promotion batch; reply carries the
//                        PromotionOutcome and the post-fold tier stats
//   SNAPSHOT_EXPORT      the canonical snapshot (index-only or full) plus
//                        tier stats
//   SNAPSHOT_IMPORT      preload an EMPTY tier from a full snapshot
//                        (deployment handoff; decode-then-apply, so a
//                        truncated frame can never tear the tier)
//
// All virtual-clock charging stays on the *client* (net::TierClient mirrors
// the tier's per-shard byte accounting from the stats block every PUT /
// export reply carries, bit-exactly), so the server's own SharedTier runs
// with its fabric disabled and the wall clock is the only clock here.
//
// handle()/handle_frame() are mutex-serialized — fold order is whatever
// order requests arrive in, which the service already fixes (job-id order)
// before shipping. A request that fails to parse or execute produces an
// Error reply carrying the same request id; the connection stays usable.
//
// listen_and_serve() optionally serves the same handler over TCP on
// 127.0.0.1 (ephemeral port returned) with one handler thread per accepted
// connection — the socket backend of net/transport.hpp.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/wire.hpp"
#include "serve/shared_tier.hpp"

namespace mlr::net {

class TierServer {
 public:
  /// The fabric is forced off: remote charging is client-side by contract.
  explicit TierServer(serve::SharedTierConfig cfg);
  ~TierServer();

  TierServer(const TierServer&) = delete;
  TierServer& operator=(const TierServer&) = delete;

  /// Execute one decoded request; returns the reply payload. Throws
  /// WireError / std::exception on malformed or unservable requests —
  /// handle_frame() turns those into Error replies.
  std::vector<std::byte> handle(FrameType type,
                                std::span<const std::byte> payload);
  /// Byte-level entry point shared by the loopback and socket paths: one
  /// full request frame in, one full reply frame out (an Error frame when
  /// the request failed).
  std::vector<std::byte> handle_frame(std::span<const std::byte> frame);

  /// Start serving over TCP; returns the bound port. Defaults bind the
  /// loopback interface on an ephemeral port (the in-process test/bench
  /// setup); the standalone binary (examples/tier_server_main.cpp) passes a
  /// real host:port. `host` must be an IPv4 literal. Throws NetError when
  /// sockets are unavailable or the address does not bind.
  std::uint16_t listen_and_serve(const std::string& host = "127.0.0.1",
                                 std::uint16_t port = 0);
  void stop();

  [[nodiscard]] const serve::SharedTier& tier() const { return tier_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  serve::SharedTier tier_;
  std::mutex mu_;  ///< serializes handlers across connections

  // Socket serving state.
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace mlr::net
