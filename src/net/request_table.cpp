#include "net/request_table.hpp"

#include <chrono>

#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace mlr::net {

namespace {

struct TableMetrics {
  obs::Counter& requests;
  obs::Counter& timeouts;
  obs::Counter& stale_replies;
  obs::Gauge& in_flight_peak;
  obs::Histogram& wait_s;
  static TableMetrics& get() {
    static TableMetrics m{
        obs::metrics().counter("net.table.requests"),
        obs::metrics().counter("net.table.timeouts"),
        obs::metrics().counter("net.table.stale_replies"),
        obs::metrics().gauge("net.table.in_flight_peak"),
        obs::metrics().histogram("net.table.wait_s", obs::latency_edges_s()),
    };
    return m;
  }
};

}  // namespace

u64 RequestTable::next_id() {
  std::lock_guard lk(mu_);
  return next_++;
}

void RequestTable::expect(u64 id) {
  std::lock_guard lk(mu_);
  if (broken_) throw NetError(sticky_);
  slots_.emplace(id, Slot{});
  auto& tm = TableMetrics::get();
  tm.requests.add();
  tm.in_flight_peak.raise(double(slots_.size()));
}

void RequestTable::complete(u64 id, std::vector<std::byte> payload) {
  std::unique_lock lk(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    if (retry_mode_) {
      // A late duplicate: the waiter timed out per-request, or a replayed
      // frame's original reply survived the reconnect. Expected weather —
      // count it and move on.
      TableMetrics::get().stale_replies.add();
      return;
    }
    // Legacy regime: a reply for a request we never sent (or already
    // released) means frames are desynchronized — nothing received from
    // here on can be trusted.
    if (!broken_) {
      broken_ = true;
      sticky_ = "unsolicited reply for request id " + std::to_string(id);
      for (auto& [k, s] : slots_) {
        s.done = s.failed = true;
        s.error = sticky_;
      }
    }
    cv_.notify_all();
    return;
  }
  if (it->second.done) {
    // Duplicate reply to a slot already failed/completed (replay raced the
    // original reply). Keep the first outcome.
    if (retry_mode_) TableMetrics::get().stale_replies.add();
    return;
  }
  it->second.done = true;
  it->second.payload = std::move(payload);
  cv_.notify_all();
}

void RequestTable::fail(u64 id, const std::string& error, bool retryable) {
  std::lock_guard lk(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end() || it->second.done) return;
  it->second.done = it->second.failed = true;
  it->second.retryable = retryable;
  it->second.error = error;
  cv_.notify_all();
}

void RequestTable::fail_all(const std::string& error) {
  std::lock_guard lk(mu_);
  if (!broken_) {
    broken_ = true;
    sticky_ = error;
  }
  for (auto& [k, s] : slots_) {
    if (s.done) continue;
    s.done = s.failed = true;
    s.retryable = false;
    s.error = sticky_;
  }
  cv_.notify_all();
}

void RequestTable::forget(u64 id) {
  std::lock_guard lk(mu_);
  slots_.erase(id);
}

std::vector<std::byte> RequestTable::wait(u64 id, double timeout_s) {
  const WallTimer wt;
  std::unique_lock lk(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end())
    throw NetError(broken_ ? sticky_
                           : "wait for unregistered request id " +
                                 std::to_string(id));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (!it->second.done) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !it->second.done) {
      TableMetrics::get().timeouts.add();
      const std::string msg = "request " + std::to_string(id) +
                              " timed out after " + std::to_string(timeout_s) +
                              " s";
      if (retry_mode_) {
        // Per-request failure: the reply is merely late or lost; a stale
        // arrival later is dropped by complete(). The verb layer decides
        // whether to re-issue (RetryableError).
        it->second.done = it->second.failed = true;
        it->second.retryable = true;
        it->second.error = msg;
        cv_.notify_all();
        break;
      }
      // Legacy regime: the reply may still arrive after we stop listening —
      // it would then be unsolicited — so a timeout poisons the whole
      // transport.
      if (!broken_) {
        broken_ = true;
        sticky_ = msg;
      }
      for (auto& [k, s] : slots_) {
        if (s.done) continue;
        s.done = s.failed = true;
        s.error = sticky_;
      }
      cv_.notify_all();
      break;
    }
  }
  Slot slot = std::move(it->second);
  slots_.erase(it);
  TableMetrics::get().wait_s.observe(wt.seconds());
  if (slot.failed) {
    if (slot.retryable) throw RetryableError(slot.error);
    throw NetError(slot.error);
  }
  return std::move(slot.payload);
}

void RequestTable::set_retry_mode(bool on) {
  std::lock_guard lk(mu_);
  retry_mode_ = on;
}

bool RequestTable::broken() const {
  std::lock_guard lk(mu_);
  return broken_;
}

std::string RequestTable::error() const {
  std::lock_guard lk(mu_);
  return sticky_;
}

std::size_t RequestTable::in_flight() const {
  std::lock_guard lk(mu_);
  return slots_.size();
}

bool RequestTable::pending(u64 id) const {
  std::lock_guard lk(mu_);
  const auto it = slots_.find(id);
  return it != slots_.end() && !it->second.done;
}

}  // namespace mlr::net
