#include "net/request_table.hpp"

#include <chrono>

#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace mlr::net {

namespace {

struct TableMetrics {
  obs::Counter& requests;
  obs::Counter& timeouts;
  obs::Gauge& in_flight_peak;
  obs::Histogram& wait_s;
  static TableMetrics& get() {
    static TableMetrics m{
        obs::metrics().counter("net.table.requests"),
        obs::metrics().counter("net.table.timeouts"),
        obs::metrics().gauge("net.table.in_flight_peak"),
        obs::metrics().histogram("net.table.wait_s", obs::latency_edges_s()),
    };
    return m;
  }
};

}  // namespace

u64 RequestTable::next_id() {
  std::lock_guard lk(mu_);
  return next_++;
}

void RequestTable::expect(u64 id) {
  std::lock_guard lk(mu_);
  if (broken_) throw NetError(sticky_);
  slots_.emplace(id, Slot{});
  auto& tm = TableMetrics::get();
  tm.requests.add();
  tm.in_flight_peak.raise(double(slots_.size()));
}

void RequestTable::complete(u64 id, std::vector<std::byte> payload) {
  std::unique_lock lk(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    // A reply for a request we never sent (or already released): frames are
    // desynchronized, so nothing received from here on can be trusted.
    if (!broken_) {
      broken_ = true;
      sticky_ = "unsolicited reply for request id " + std::to_string(id);
      for (auto& [k, s] : slots_) {
        s.done = s.failed = true;
        s.error = sticky_;
      }
    }
    cv_.notify_all();
    return;
  }
  it->second.done = true;
  it->second.payload = std::move(payload);
  cv_.notify_all();
}

void RequestTable::fail(u64 id, const std::string& error) {
  std::lock_guard lk(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return;
  it->second.done = it->second.failed = true;
  it->second.error = error;
  cv_.notify_all();
}

void RequestTable::fail_all(const std::string& error) {
  std::lock_guard lk(mu_);
  if (!broken_) {
    broken_ = true;
    sticky_ = error;
  }
  for (auto& [k, s] : slots_) {
    if (s.done) continue;
    s.done = s.failed = true;
    s.error = sticky_;
  }
  cv_.notify_all();
}

std::vector<std::byte> RequestTable::wait(u64 id, double timeout_s) {
  const WallTimer wt;
  std::unique_lock lk(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end())
    throw NetError(broken_ ? sticky_
                           : "wait for unregistered request id " +
                                 std::to_string(id));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (!it->second.done) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !it->second.done) {
      // The reply may still arrive after we stop listening — it would then
      // be unsolicited — so a timeout poisons the whole transport.
      TableMetrics::get().timeouts.add();
      if (!broken_) {
        broken_ = true;
        sticky_ = "request " + std::to_string(id) + " timed out after " +
                  std::to_string(timeout_s) + " s";
      }
      for (auto& [k, s] : slots_) {
        if (s.done) continue;
        s.done = s.failed = true;
        s.error = sticky_;
      }
      cv_.notify_all();
      break;
    }
  }
  Slot slot = std::move(it->second);
  slots_.erase(it);
  TableMetrics::get().wait_s.observe(wt.seconds());
  if (slot.failed) throw NetError(slot.error);
  return std::move(slot.payload);
}

bool RequestTable::broken() const {
  std::lock_guard lk(mu_);
  return broken_;
}

std::string RequestTable::error() const {
  std::lock_guard lk(mu_);
  return sticky_;
}

std::size_t RequestTable::in_flight() const {
  std::lock_guard lk(mu_);
  return slots_.size();
}

}  // namespace mlr::net
