// net/request_table — the in-flight request table of the memo transport.
//
// Mirrors the pending-reply table of a production block-service dispatch
// loop: every outbound request gets a monotonically increasing id and a
// slot; the reply reader completes slots in whatever order replies arrive
// (out-of-order is fine — the id keys the slot, not the position); waiters
// block on their slot with a timeout.
//
// Failure is *sticky* by design: a transport-level fault (connection died,
// short read, unsolicited reply id, a waiter timed out) marks the whole
// table broken, fails every in-flight slot, and makes every future
// expect()/wait() throw immediately — once frames may have been lost there
// is no way to know which, so the session surfaces one NetError instead of
// hanging or silently computing with a torn tier view. A *per-request*
// server error (Error reply frame) fails only its own slot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace mlr::net {

/// Transport failure surfaced to the caller (sticky once raised).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RequestTable {
 public:
  /// Next request id (monotonically increasing from 1; 0 is never issued).
  u64 next_id();
  /// Register an in-flight slot for `id` before the frame is sent, so a
  /// reply can never race the registration. Throws NetError when broken.
  void expect(u64 id);
  /// Complete `id` with its reply payload. An unknown id is a protocol
  /// violation (the peer answered a request we never made, or answered one
  /// twice) and breaks the table.
  void complete(u64 id, std::vector<std::byte> payload);
  /// Fail `id` alone (per-request server error). Unknown ids are ignored.
  void fail(u64 id, const std::string& error);
  /// Break the table: every in-flight and future request fails with
  /// `error`. Idempotent (the first error wins — it is the root cause).
  void fail_all(const std::string& error);

  /// Block until `id` completes; returns the reply payload and releases the
  /// slot. Throws NetError on per-request failure, on a broken table, or
  /// after `timeout_s` seconds (a timeout breaks the table: the reply may
  /// still arrive later and would then be unsolicited).
  std::vector<std::byte> wait(u64 id, double timeout_s);

  [[nodiscard]] bool broken() const;
  [[nodiscard]] std::string error() const;
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Slot {
    bool done = false;
    bool failed = false;
    std::vector<std::byte> payload;
    std::string error;
  };
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<u64, Slot> slots_;
  u64 next_ = 1;
  bool broken_ = false;
  std::string sticky_;
};

}  // namespace mlr::net
