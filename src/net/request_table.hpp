// net/request_table — the in-flight request table of the memo transport.
//
// Mirrors the pending-reply table of a production block-service dispatch
// loop: every outbound request gets a monotonically increasing id and a
// slot; the reply reader completes slots in whatever order replies arrive
// (out-of-order is fine — the id keys the slot, not the position); waiters
// block on their slot with a timeout.
//
// The table runs in one of two failure regimes:
//
//   * Legacy (retry mode OFF, the default): failure is *sticky* by design.
//     A transport-level fault (connection died, short read, unsolicited
//     reply id, a waiter timed out) marks the whole table broken, fails
//     every in-flight slot, and makes every future expect()/wait() throw
//     immediately — once frames may have been lost there is no way to know
//     which, so the session surfaces one NetError instead of hanging or
//     silently computing with a torn tier view.
//   * Retry mode ON (the transport has a reconnect budget,
//     Transport::set_retry): transient events become *per-request*
//     failures. A wait() timeout fails only its own slot — with a
//     RetryableError, because the read-class verbs are idempotent and the
//     caller may re-issue — and an unknown-id reply is dropped and counted
//     (net.table.stale_replies) instead of breaking the table: after a
//     per-request timeout or a replay, a late duplicate reply is expected
//     weather, not desynchronization. fail_all still exists and is still
//     sticky — the transport calls it once its reconnect budget is
//     exhausted (the tier is declared down).
//
// A *per-request* server error (Error reply frame) fails only its own slot
// in both regimes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace mlr::net {

/// Transport failure surfaced to the caller (sticky once raised via
/// fail_all; per-request otherwise).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A transiently failed request: the transport is (or may be) healthy
/// again, only this request's outcome was lost. Safe to handle at a level
/// that knows the verb's idempotency — read verbs re-issue, at-most-once
/// verbs (PUT / SNAPSHOT_IMPORT) surface it to the caller.
class RetryableError : public NetError {
 public:
  using NetError::NetError;
};

class RequestTable {
 public:
  /// Next request id (monotonically increasing from 1; 0 is never issued).
  u64 next_id();
  /// Register an in-flight slot for `id` before the frame is sent, so a
  /// reply can never race the registration. Throws NetError when broken.
  void expect(u64 id);
  /// Complete `id` with its reply payload. An unknown id is a protocol
  /// violation in the legacy regime (the peer answered a request we never
  /// made, or answered one twice) and breaks the table; in retry mode it is
  /// dropped and counted as a stale reply (late duplicate after a
  /// per-request timeout or a replay).
  void complete(u64 id, std::vector<std::byte> payload);
  /// Fail `id` alone (per-request failure). Unknown ids are ignored.
  /// `retryable` marks the failure transient: wait() throws RetryableError.
  void fail(u64 id, const std::string& error, bool retryable = false);
  /// Break the table: every in-flight and future request fails with
  /// `error`. Idempotent (the first error wins — it is the root cause).
  void fail_all(const std::string& error);
  /// Drop `id`'s slot if its waiter will never run (send-side throw after
  /// expect). Unknown ids are ignored.
  void forget(u64 id);

  /// Block until `id` completes; returns the reply payload and releases the
  /// slot. Throws RetryableError on a retryable per-request failure,
  /// NetError on any other failure or a broken table, or after `timeout_s`
  /// seconds. A timeout breaks the table in the legacy regime (the reply
  /// may still arrive later and would then be unsolicited); in retry mode
  /// it fails only this slot, retryably (stale replies are tolerated).
  std::vector<std::byte> wait(u64 id, double timeout_s);

  /// Switch failure regimes (see the header comment). Flipped by
  /// Transport::set_retry, before any traffic.
  void set_retry_mode(bool on);

  [[nodiscard]] bool broken() const;
  [[nodiscard]] std::string error() const;
  [[nodiscard]] std::size_t in_flight() const;
  /// Slot registered and still awaiting its reply?
  [[nodiscard]] bool pending(u64 id) const;

 private:
  struct Slot {
    bool done = false;
    bool failed = false;
    bool retryable = false;
    std::vector<std::byte> payload;
    std::string error;
  };
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<u64, Slot> slots_;
  u64 next_ = 1;
  bool broken_ = false;
  bool retry_mode_ = false;
  std::string sticky_;
};

}  // namespace mlr::net
