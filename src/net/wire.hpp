// net/wire — the length-prefixed binary wire format for memo-tier traffic.
//
// Every message is one *frame*: a fixed 24-byte header followed by
// `payload_bytes` of payload. All integers and floats are explicit
// little-endian (floats/doubles as the LE bytes of their IEEE-754 bit
// patterns), so a frame means the same thing on every host and a recorded
// frame is a stable golden artifact (tests/data/snapshot_frame.golden).
//
//   offset  size  field
//   0       4     magic   "MLRW" (0x4D4C5257, LE on the wire)
//   4       2     version (kWireVersion; a mismatch is a hard decode error)
//   6       1     type    (FrameType)
//   7       1     flags   (bit 0: reply; requests have it clear)
//   8       8     request_id (echoed verbatim in the reply)
//   16      8     payload_bytes
//
// Frame types carry the five memo-tier verbs (GET / GET_BATCH / PUT /
// SNAPSHOT_EXPORT / SNAPSHOT_IMPORT) plus an Error reply whose payload is a
// status code and a human-readable message. Snapshot and PUT payloads reuse
// the MemoDb snapshot unit — encode_entries/decode_entries over
// memo::MemoDb::Entry — as the payload serialization, in the tier's
// canonical order; `with_values=false` produces the *index-only* form
// (key/norm/probe/value length, no value bytes) a remote session seeds from
// before lazily fetching values with GET/GET_BATCH.
//
// Decoding is bounds-checked everywhere: a truncated or corrupt frame
// raises WireError before any state is touched (a torn snapshot import is
// impossible — decode fully, then apply).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "memo/memo_db.hpp"

namespace mlr::net {

inline constexpr u32 kWireMagic = 0x4D4C5257;  // "MLRW"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Hard cap on payload_bytes, enforced in decode_header: a header from a
/// hostile or desynchronized peer must not be able to wrap
/// kHeaderBytes + payload_bytes (out-of-bounds write into the frame buffer)
/// or demand a multi-GiB allocation before any payload byte arrives.
inline constexpr u64 kMaxFramePayload = u64(1) << 30;  // 1 GiB

/// Request verbs (and the Error reply). The reply to a request carries the
/// same type with the reply flag set.
enum class FrameType : std::uint8_t {
  Get = 1,             ///< one value by snapshot position
  GetBatch = 2,        ///< many values by snapshot position (one per shard)
  Put = 3,             ///< offer a promotion batch (charge/fold's fold half)
  SnapshotExport = 4,  ///< fetch the tier snapshot (index-only or full)
  SnapshotImport = 5,  ///< preload an empty tier from a full snapshot
  Error = 6,           ///< reply-only: request failed server-side
};
const char* frame_type_name(FrameType t);

inline constexpr std::uint8_t kFlagReply = 0x01;

struct FrameHeader {
  u32 magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::Get;
  std::uint8_t flags = 0;
  u64 request_id = 0;
  u64 payload_bytes = 0;
  [[nodiscard]] bool is_reply() const { return (flags & kFlagReply) != 0; }
};

/// Decode failure: truncated frame, bad magic/version, or a payload that
/// does not parse. Always raised before any receiver state changes.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(std::byte(v)); }
  void u16(std::uint16_t v);
  void u32(mlr::u32 v);
  void u64(mlr::u64 v);
  void f32(float v);
  void f64(double v);
  void bytes(std::span<const std::byte> b);
  [[nodiscard]] const std::vector<std::byte>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Every read
/// past the end throws WireError.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> buf) : buf_(buf) {}
  std::uint8_t u8();
  std::uint16_t u16();
  mlr::u32 u32();
  mlr::u64 u64();
  float f32();
  double f64();
  std::span<const std::byte> bytes(std::size_t n);
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const;
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

/// Encode one full frame (header + payload).
std::vector<std::byte> encode_frame(FrameType type, std::uint8_t flags,
                                    u64 request_id,
                                    std::span<const std::byte> payload);
/// Decode and validate a frame header (exactly kHeaderBytes); the payload
/// follows in the stream. Throws WireError on bad magic/version/length.
FrameHeader decode_header(std::span<const std::byte> buf);

// --- Snapshot payload codec --------------------------------------------------

/// Encode entries in their given (canonical) order. With `with_values` the
/// value payload travels too (PUT / SNAPSHOT_IMPORT / full export);
/// without, only its cfloat length does (the index-only seed form — the
/// decoded Entry has an empty `value` and `value_cf` set, and the session
/// fetches the payload lazily via GET/GET_BATCH).
void encode_entries(WireWriter& w,
                    std::span<const memo::MemoDb::Entry> entries,
                    bool with_values);
std::vector<memo::MemoDb::Entry> decode_entries(WireReader& r);

/// Error-reply payload.
struct ErrorInfo {
  u32 code = 0;  ///< 1 = malformed frame, 2 = bad request, 3 = internal
  std::string message;
};
void encode_error(WireWriter& w, const ErrorInfo& e);
ErrorInfo decode_error(WireReader& r);

}  // namespace mlr::net
