#include "net/transport.hpp"

#include "common/error.hpp"
#include "net/tier_server.hpp"

namespace mlr::net {

void Transport::route_reply(std::span<const std::byte> frame) {
  FrameHeader h;
  try {
    h = decode_header(frame);
  } catch (const WireError& e) {
    table_.fail_all(std::string("undecodable reply frame: ") + e.what());
    return;
  }
  if (!h.is_reply() || frame.size() != kHeaderBytes + h.payload_bytes) {
    table_.fail_all("malformed reply frame (direction or length)");
    return;
  }
  const auto payload = frame.subspan(kHeaderBytes);
  if (h.type == FrameType::Error) {
    // Per-request server failure: only this slot fails; the stream is fine.
    std::string msg = "server error";
    try {
      WireReader r(payload);
      msg = decode_error(r).message;
    } catch (const WireError&) {
    }
    table_.fail(h.request_id, msg);
    return;
  }
  table_.complete(h.request_id,
                  std::vector<std::byte>(payload.begin(), payload.end()));
}

LoopbackTransport::LoopbackTransport(TierServer* server, int channels)
    : server_(server), channels_(channels) {
  MLR_CHECK(server != nullptr && channels >= 1);
}

void LoopbackTransport::send(int channel, FrameType type, u64 request_id,
                             std::span<const std::byte> payload) {
  MLR_CHECK(channel >= 0 && channel < channels_);
  std::lock_guard lk(mu_);
  // Encode the full frame and walk the bytes through the same
  // decode→handle→encode path a socket would: byte-identical frames, just
  // no file descriptor in the middle.
  const auto frame = encode_frame(type, /*flags=*/0, request_id, payload);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  auto reply = server_->handle_frame(frame);
  if (drop_) return;  // fault: the reply vanishes; the waiter times out
  if (truncate_at_ >= 0 && std::size_t(truncate_at_) < reply.size())
    reply.resize(std::size_t(truncate_at_));
  if (hold_) {
    held_.push_back(std::move(reply));
    return;
  }
  route_reply(reply);
}

void LoopbackTransport::deliver_held(bool reverse) {
  std::vector<std::vector<std::byte>> held;
  {
    std::lock_guard lk(mu_);
    held.swap(held_);
  }
  if (reverse) {
    for (auto it = held.rbegin(); it != held.rend(); ++it) route_reply(*it);
  } else {
    for (const auto& f : held) route_reply(f);
  }
}

}  // namespace mlr::net
