#include "net/transport.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "net/tier_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mlr::net {

namespace {

/// Client-side recovery instruments: successful reopens, frames re-issued,
/// failed reopen attempts, and the wall-clock cost of a whole recovery
/// (fault detection → last replayed frame back on the wire).
struct RecoveryMetrics {
  obs::Counter& reconnects;
  obs::Counter& replays;
  obs::Counter& reconnect_failures;
  obs::Histogram& recovery_s;
  static RecoveryMetrics& get() {
    static RecoveryMetrics m{
        obs::metrics().counter("net.client.reconnects"),
        obs::metrics().counter("net.client.replays"),
        obs::metrics().counter("net.client.reconnect_failures"),
        obs::metrics().histogram("net.client.recovery_s",
                                 obs::latency_edges_s()),
    };
    return m;
  }
};

}  // namespace

Transport::~Transport() = default;

void Transport::set_retry(RetrySpec spec) {
  MLR_CHECK(spec.retry_max >= 0 && spec.backoff_ms >= 0.0);
  retry_ = spec;
  table_.set_retry_mode(spec.enabled());
}

u64 Transport::generation(int channel) const {
  std::lock_guard lk(stash_mu_);
  auto& gens = const_cast<std::vector<u64>&>(gens_);
  if (std::size_t(channel) >= gens.size())
    gens.resize(std::size_t(channel) + 1, 0);
  return gens_[std::size_t(channel)];
}

void Transport::send(int channel, FrameType type, u64 request_id,
                     std::span<const std::byte> payload) {
  const auto frame = encode_frame(type, /*flags=*/0, request_id, payload);
  const bool replay_ok = retry_.enabled() && replayable_verb(type);
  if (retry_.enabled()) {
    // Register before the write: a recovery racing this send must see the
    // frame (read-class: so it can replay it; at-most-once: so it can fail
    // the slot) no matter where the write was when the carrier died.
    std::lock_guard lk(stash_mu_);
    PendingFrame pf;
    pf.channel = channel;
    pf.type = type;
    if (replay_ok)
      pf.frame.assign(frame.begin(), frame.end());
    stash_[request_id] = std::move(pf);
  }
  for (;;) {
    const u64 g = generation(channel);
    if (retry_.enabled()) {
      std::lock_guard lk(stash_mu_);
      const auto it = stash_.find(request_id);
      // Erased: the reply already landed (a recovery replayed it and the
      // reply won the race). Same generation: the recovery re-sent it.
      if (it == stash_.end() || it->second.sent_gen == g) return;
    }
    try {
      write_frame(channel, type, frame);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
      if (retry_.enabled()) {
        std::lock_guard lk(stash_mu_);
        const auto it = stash_.find(request_id);
        if (it != stash_.end()) it->second.sent_gen = g;
      }
      return;
    } catch (const TransportFault& fault) {
      if (!recover_channel(channel, g, fault.what()))
        throw NetError(table_.error());
      if (!replay_ok) {
        // At-most-once verb on a recovered carrier: the frame may or may
        // not have reached the server before the fault — it must not be
        // re-sent. The caller owns the ambiguity.
        table_.forget(request_id);
        {
          std::lock_guard lk(stash_mu_);
          stash_.erase(request_id);
        }
        throw RetryableError(std::string(frame_type_name(type)) +
                             " interrupted by carrier fault: " + fault.what());
      }
      // Read-class: loop — either the recovery already replayed the frame
      // (checked at the top) or this iteration re-sends it.
    }
  }
}

bool Transport::recover_channel(int channel, u64 gen_seen,
                                const std::string& why) {
  if (!retry_.enabled()) {
    // Legacy sticky contract: any carrier fault poisons the table.
    table_.fail_all(why);
    return false;
  }
  std::lock_guard rec(rec_mu_);
  if (generation(channel) != gen_seen) {
    // Another thread observed the same fault first and already ran the
    // ladder; its outcome is ours.
    return !table_.broken();
  }
  if (table_.broken()) return false;
  MLR_TRACE_SPAN("net.reconnect", "net", u64(channel));
  const WallTimer wt;
  auto& rm = RecoveryMetrics::get();
  const bool shared = channels_share_fate();
  {
    // In-flight at-most-once requests on the downed carrier cannot be
    // re-sent; fail them retryably NOW so their waiters unblock at
    // recovery speed instead of at the request timeout.
    std::lock_guard lk(stash_mu_);
    for (auto it = stash_.begin(); it != stash_.end();) {
      if ((shared || it->second.channel == channel) &&
          it->second.frame.empty()) {
        table_.fail(it->first,
                    "at-most-once request interrupted by carrier fault: " +
                        why,
                    /*retryable=*/true);
        it = stash_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (int attempt = 0; attempt < retry_.retry_max; ++attempt) {
    if (attempt > 0 && retry_.backoff_ms > 0) {
      // Bounded exponential backoff: backoff_ms · 2^(attempt-1), capped at
      // 32× so a generous budget cannot stall a drain for minutes.
      const double mult = double(u64(1) << std::min(attempt - 1, 5));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(retry_.backoff_ms * mult));
    }
    if (!reopen(channel)) {
      rm.reconnect_failures.add();
      continue;
    }
    {
      // Generation bump: racing reports of the old carrier's fault — the
      // reader and a sender usually both notice — coalesce into this one
      // recovery and return through the stale-generation fast path.
      std::lock_guard lk(stash_mu_);
      if (std::size_t(channels()) > gens_.size())
        gens_.resize(std::size_t(channels()), 0);
      if (shared) {
        for (auto& g : gens_) ++g;
      } else {
        ++gens_[std::size_t(channel)];
      }
    }
    on_recovered(channel);
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    rm.reconnects.add();
    // Re-issue the stashed read-class frames still awaiting replies, in id
    // order (canonical — replay traffic is as deterministic as the original
    // sends). Ids are collected first: a loopback reply completes
    // synchronously inside write_frame and prunes the stash under us.
    std::vector<u64> ids;
    {
      std::lock_guard lk(stash_mu_);
      for (const auto& [id, pf] : stash_)
        if ((shared || pf.channel == channel) && !pf.frame.empty() &&
            table_.pending(id))
          ids.push_back(id);
    }
    bool replayed_all = true;
    for (const u64 id : ids) {
      int ch = 0;
      FrameType ty{};
      std::vector<std::byte> bytes;
      {
        std::lock_guard lk(stash_mu_);
        const auto it = stash_.find(id);
        if (it == stash_.end()) continue;  // reply landed meanwhile
        ch = it->second.channel;
        ty = it->second.type;
        bytes = it->second.frame;
      }
      try {
        write_frame(ch, ty, bytes);
      } catch (const TransportFault&) {
        // Carrier dropped again mid-replay: next attempt redials and
        // re-replays whatever is still pending.
        replayed_all = false;
        break;
      }
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
      replays_.fetch_add(1, std::memory_order_relaxed);
      rm.replays.add();
      // Generation read OUTSIDE the stash lock (generation() locks it too);
      // exact because gens only move under rec_mu_, which we hold.
      const u64 gen_now = generation(ch);
      std::lock_guard lk(stash_mu_);
      const auto it = stash_.find(id);
      if (it != stash_.end()) it->second.sent_gen = gen_now;
    }
    if (replayed_all) {
      rm.recovery_s.observe(wt.seconds());
      return true;
    }
  }
  table_.fail_all(why + " (reconnect budget of " +
                  std::to_string(retry_.retry_max) +
                  " attempt(s) exhausted)");
  return false;
}

void Transport::route_reply(std::span<const std::byte> frame) {
  FrameHeader h;
  try {
    h = decode_header(frame);
  } catch (const WireError& e) {
    table_.fail_all(std::string("undecodable reply frame: ") + e.what());
    return;
  }
  if (!h.is_reply() || frame.size() != kHeaderBytes + h.payload_bytes) {
    // A decodable header carrying nonsense is a protocol violation, not a
    // carrier blip — sticky in both regimes (a reconnect would not fix a
    // peer that speaks the protocol wrong).
    table_.fail_all("malformed reply frame (direction or length)");
    return;
  }
  const auto payload = frame.subspan(kHeaderBytes);
  if (h.type == FrameType::Error) {
    // Per-request server failure: only this slot fails; the stream is fine.
    std::string msg = "server error";
    try {
      WireReader r(payload);
      msg = decode_error(r).message;
    } catch (const WireError&) {
    }
    table_.fail(h.request_id, msg);
  } else {
    table_.complete(h.request_id,
                    std::vector<std::byte>(payload.begin(), payload.end()));
  }
  if (retry_.enabled()) {
    std::lock_guard lk(stash_mu_);
    stash_.erase(h.request_id);
  }
}

LoopbackTransport::LoopbackTransport(TierServer* server, int channels)
    : server_(server), channels_(channels) {
  MLR_CHECK(server != nullptr && channels >= 1);
}

void LoopbackTransport::write_frame(int channel, FrameType type,
                                    const std::vector<std::byte>& frame) {
  MLR_CHECK(channel >= 0 && channel < channels_);
  std::lock_guard lk(mu_);
  // Scripted carrier faults first: a downed carrier loses the frame before
  // the server ever sees it, exactly like a dead TCP connection.
  if (down_) throw TransportFault("loopback carrier down (scripted)");
  if (disconnect_on_put_ && type == FrameType::Put) {
    disconnect_on_put_ = false;
    down_ = true;
    throw TransportFault("scripted disconnect on PUT (frame lost)");
  }
  if (disconnect_in_ >= 0) {
    if (disconnect_in_ == 0) {
      disconnect_in_ = -1;
      down_ = true;
      throw TransportFault("scripted disconnect (frame lost)");
    }
    --disconnect_in_;
  }
  // Walk the bytes through the same decode→handle→encode path a socket
  // would: byte-identical frames, just no file descriptor in the middle.
  auto reply = server_->handle_frame(frame);
  if (drop_next_ > 0) {  // fault: this reply vanishes; the waiter times out
    --drop_next_;
    return;
  }
  if (drop_) return;
  if (truncate_at_ >= 0 && std::size_t(truncate_at_) < reply.size())
    reply.resize(std::size_t(truncate_at_));
  if (hold_) {
    held_.push_back(std::move(reply));
    return;
  }
  route_reply(reply);
}

bool LoopbackTransport::reopen(int /*channel*/) {
  std::lock_guard lk(mu_);
  if (!down_) return true;
  if (reconnect_after_ > 0) {
    --reconnect_after_;
    return false;
  }
  down_ = false;
  return true;
}

bool LoopbackTransport::carrier_down() const {
  std::lock_guard lk(mu_);
  return down_;
}

void LoopbackTransport::deliver_held(bool reverse) {
  std::vector<std::vector<std::byte>> held;
  {
    std::lock_guard lk(mu_);
    held.swap(held_);
  }
  if (reverse) {
    for (auto it = held.rbegin(); it != held.rend(); ++it) route_reply(*it);
  } else {
    for (const auto& f : held) route_reply(f);
  }
}

}  // namespace mlr::net
