#include "net/tier_client.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mlr::net {

namespace {

/// Per-verb client counters + latency: frames and payload bytes out/in, one
/// wall-clock latency histogram per verb.
struct VerbMetrics {
  obs::Counter& frames;
  obs::Counter& bytes_out;
  obs::Counter& bytes_in;
  obs::Histogram& latency_s;
};

VerbMetrics make_verb_metrics(const char* side, FrameType t) {
  const std::string base =
      std::string("net.") + side + "." + frame_type_name(t);
  auto& m = obs::metrics();
  return {m.counter(base + ".frames"), m.counter(base + ".bytes_out"),
          m.counter(base + ".bytes_in"),
          m.histogram(base + ".latency_s", obs::latency_edges_s())};
}

VerbMetrics& client_verb_metrics(FrameType t) {
  static VerbMetrics m[] = {
      make_verb_metrics("client", FrameType::Get),
      make_verb_metrics("client", FrameType::GetBatch),
      make_verb_metrics("client", FrameType::Put),
      make_verb_metrics("client", FrameType::SnapshotExport),
      make_verb_metrics("client", FrameType::SnapshotImport),
      make_verb_metrics("client", FrameType::Error),
  };
  const int idx = std::clamp(int(t) - 1, 0, 5);
  return m[idx];
}

/// Trace span / async-pair names, one static literal per verb.
const char* verb_span_name(FrameType t) {
  switch (t) {
    case FrameType::Get: return "net.get";
    case FrameType::GetBatch: return "net.get_batch";
    case FrameType::Put: return "net.put";
    case FrameType::SnapshotExport: return "net.snapshot_export";
    case FrameType::SnapshotImport: return "net.snapshot_import";
    case FrameType::Error: return "net.error";
  }
  return "net.?";
}

}  // namespace

TierClient::TierClient(std::unique_ptr<Transport> transport,
                       sim::FabricSpec fabric, int shard_count,
                       double timeout_s, RetrySpec retry)
    : transport_(std::move(transport)),
      fabric_(fabric, shard_count),
      shard_count_(shard_count),
      timeout_s_(timeout_s),
      retry_(retry),
      shard_entries_(std::size_t(shard_count), 0),
      shard_bytes_(std::size_t(shard_count), 0.0),
      queued_(std::size_t(shard_count)) {
  MLR_CHECK(transport_ != nullptr && shard_count >= 1 && timeout_s > 0.0);
  // GET/GET_BATCH ride channel = shard; the transport must cover them all.
  MLR_CHECK(transport_->channels() >= shard_count);
  transport_->set_retry(retry_);
}

void TierClient::reconnect(std::unique_ptr<Transport> transport) {
  MLR_CHECK(transport != nullptr && transport->channels() >= shard_count_);
  transport->set_retry(retry_);
  transport_ = std::move(transport);
  // A client-level reconnect (fresh transport after the old one's budget
  // died) counts on the same ladder observable as an in-transport reopen.
  obs::metrics().counter("net.client.reconnects").add();
  // The lazy fetch state is keyed by request ids of the dead table; reset
  // it (positions re-request against the new carrier as needed). The stats
  // mirror and the fabric survive — they model the tier, not the carrier.
  std::lock_guard lk(vmu_);
  vstate_.clear();
  batch_pos_.clear();
  batch_claimed_.clear();
  batch_retry_.clear();
  for (auto& q : queued_) q.clear();
}

std::vector<std::byte> TierClient::call(int channel, FrameType type,
                                        std::span<const std::byte> payload) {
  auto& table = transport_->table();
  const u64 id = table.next_id();
  table.expect(id);
  auto& vm = client_verb_metrics(type);
  vm.frames.add();
  vm.bytes_out.add(kHeaderBytes + payload.size());
  const WallTimer wt;
  MLR_TRACE_SPAN(verb_span_name(type), "net", id);
  transport_->send(channel, type, id, payload);
  auto reply = table.wait(id, timeout_s_);
  vm.latency_s.observe(wt.seconds());
  vm.bytes_in.add(kHeaderBytes + reply.size());
  return reply;
}

void TierClient::adopt_stats(WireReader& r) {
  size_ = std::size_t(r.u64());
  const auto n = r.u32();
  if (int(n) != shard_count_)
    throw NetError("tier stats shard count " + std::to_string(n) +
                   " != configured " + std::to_string(shard_count_));
  for (u32 s = 0; s < n; ++s) {
    shard_entries_[s] = std::size_t(r.u64());
    shard_bytes_[s] = r.f64();
  }
  total_bytes_ = r.f64();
}

u64 TierClient::begin_seed() {
  auto& table = transport_->table();
  const u64 id = table.next_id();
  table.expect(id);
  WireWriter w;
  w.u8(0);  // index-only: values arrive lazily via GET_BATCH
  auto& vm = client_verb_metrics(FrameType::SnapshotExport);
  vm.frames.add();
  vm.bytes_out.add(kHeaderBytes + w.size());
  obs::trace_async_begin("net.snapshot_export", "net", id);
  transport_->send(0, FrameType::SnapshotExport, id, w.data());
  return id;
}

serve::TierSeed TierClient::end_seed(
    u64 ticket, std::vector<memo::MemoDb::Entry>& storage) {
  const WallTimer wt;
  const auto payload = transport_->table().wait(ticket, timeout_s_);
  obs::trace_async_end("net.snapshot_export", "net", ticket);
  auto& vm = client_verb_metrics(FrameType::SnapshotExport);
  vm.latency_s.observe(wt.seconds());
  vm.bytes_in.add(kHeaderBytes + payload.size());
  WireReader r(payload);
  adopt_stats(r);
  storage = decode_entries(r);
  if (storage.size() != size_)
    throw NetError("snapshot export size disagrees with its stats block");
  pos_shard_.resize(storage.size());
  for (std::size_t i = 0; i < storage.size(); ++i)
    pos_shard_[i] = memo::entry_shard(storage[i], shard_count_);
  {
    // New session, new snapshot positions: prior fetch state is stale.
    std::lock_guard lk(vmu_);
    vstate_.clear();
    batch_pos_.clear();
    batch_claimed_.clear();
    batch_retry_.clear();
    for (auto& q : queued_) q.clear();
  }
  return {&storage, this};
}

sim::VTime TierClient::charge_fetch(sim::VTime ready, double scale) {
  // Same math as SharedTier::charge_fetch on the mirrored occupancy: the
  // remote tier's bytes, the client's clock.
  std::vector<double> wire(shard_bytes_);
  for (double& b : wire) b *= scale;
  return fabric_.transfer(ready, wire, total_bytes_ * scale);
}

sim::VTime TierClient::charge_store(
    const std::vector<memo::MemoDb::Entry>& entries, sim::VTime ready,
    double scale) {
  double total = 0;
  const auto wire = serve::promotion_wire(entries, shard_count_, scale, &total);
  return fabric_.transfer(ready, wire, total);
}

serve::PromotionOutcome TierClient::fold(
    std::vector<memo::MemoDb::Entry> entries) {
  WireWriter w;
  encode_entries(w, entries, /*with_values=*/true);
  const auto payload = call(0, FrameType::Put, w.data());
  WireReader r(payload);
  serve::PromotionOutcome out;
  out.promoted = r.u64();
  out.dedup_drops = r.u64();
  out.cap_drops = r.u64();
  adopt_stats(r);
  return out;
}

void TierClient::request(u64 pos) {
  MLR_CHECK(std::size_t(pos) < pos_shard_.size());
  std::lock_guard lk(vmu_);
  if (vstate_.count(pos) != 0) return;  // queued, in flight, or already here
  vstate_[pos];                         // Queued
  queued_[std::size_t(pos_shard_[std::size_t(pos)])].push_back(pos);
}

void TierClient::flush() {
  auto& table = transport_->table();
  std::lock_guard lk(vmu_);
  for (int shard = 0; shard < shard_count_; ++shard) {
    auto& q = queued_[std::size_t(shard)];
    if (q.empty()) continue;
    // Sort the positions: request() call order depends on pool-worker
    // interleaving, the frame on the wire must not.
    std::sort(q.begin(), q.end());
    const u64 id = table.next_id();
    table.expect(id);
    WireWriter w;
    w.u32(u32(q.size()));
    for (const u64 pos : q) {
      w.u64(pos);
      auto& vs = vstate_[pos];
      vs.state = VState::Pending;
      vs.batch_id = id;
    }
    batch_pos_[id] = std::move(q);
    q.clear();
    auto& vm = client_verb_metrics(FrameType::GetBatch);
    vm.frames.add();
    vm.bytes_out.add(kHeaderBytes + w.size());
    // Async pair: the begin here and the end at the harvesting fetch() put
    // the in-flight round trip on the trace, overlapping whatever local
    // compute runs meanwhile (stage.miss_fft on a healthy overlap).
    obs::trace_async_begin("net.get_batch", "net", id);
    transport_->send(shard, FrameType::GetBatch, id, w.data());
  }
}

std::vector<cfloat> TierClient::fetch(u64 pos) {
  std::unique_lock lk(vmu_);
  auto it = vstate_.find(pos);
  if (it == vstate_.end()) {
    // Never batched (e.g. a straggler materialize after state reset): one
    // synchronous GET.
    MLR_CHECK(std::size_t(pos) < pos_shard_.size());
    const int shard = pos_shard_[std::size_t(pos)];
    lk.unlock();
    WireWriter w;
    w.u64(pos);
    const auto payload = call(shard, FrameType::Get, w.data());
    WireReader r(payload);
    const auto n = r.u32();
    std::vector<cfloat> v;
    v.reserve(n);
    for (u32 i = 0; i < n; ++i) {
      const float re = r.f32();
      const float im = r.f32();
      v.emplace_back(re, im);
    }
    return v;
  }
  if (it->second.state == VState::Queued) {
    // fetch before flush (barriered engine path): ship this shard's queue
    // now so the wait below has a frame to wait on.
    lk.unlock();
    flush();
    lk.lock();
    it = vstate_.find(pos);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_s_));
  for (;;) {
    if (it->second.state == VState::Ready) return it->second.value;
    if (it->second.state == VState::Failed)
      throw NetError(it->second.error);
    const u64 batch = it->second.batch_id;
    if (!batch_claimed_[batch]) {
      // First fetcher of this batch harvests its reply for everyone.
      batch_claimed_[batch] = true;
      lk.unlock();
      std::vector<std::byte> payload;
      std::string err;
      bool retryable = false;
      const WallTimer wt;
      try {
        payload = transport_->table().wait(batch, timeout_s_);
      } catch (const RetryableError& e) {
        err = e.what();
        retryable = true;
      } catch (const NetError& e) {
        err = e.what();
      }
      obs::trace_async_end("net.get_batch", "net", batch);
      auto& vm = client_verb_metrics(FrameType::GetBatch);
      vm.latency_s.observe(wt.seconds());
      vm.bytes_in.add(kHeaderBytes + payload.size());
      lk.lock();
      if (retryable && batch_retry_[batch] < retry_.retry_max) {
        // One slow or lost slice must not break the table (the old
        // fail_all behavior): re-issue JUST this batch under a fresh id.
        // The positions are already sorted — the retry frame is canonical.
        auto& table = transport_->table();
        const u64 fresh = table.next_id();
        table.expect(fresh);
        const int tried = batch_retry_[batch];
        auto positions = std::move(batch_pos_[batch]);
        batch_pos_.erase(batch);
        batch_claimed_.erase(batch);
        batch_retry_.erase(batch);
        WireWriter w;
        w.u32(u32(positions.size()));
        for (const u64 p : positions) {
          w.u64(p);
          auto& vs = vstate_[p];
          vs.state = VState::Pending;
          vs.batch_id = fresh;
        }
        const int shard = pos_shard_[std::size_t(positions.front())];
        batch_retry_[fresh] = tried + 1;
        batch_pos_[fresh] = std::move(positions);
        obs::metrics().counter("net.table.retries").add();
        vm.frames.add();
        vm.bytes_out.add(kHeaderBytes + w.size());
        obs::trace_async_begin("net.get_batch", "net", fresh);
        try {
          transport_->send(shard, FrameType::GetBatch, fresh, w.data());
        } catch (const NetError& e) {
          // Reconnect budget exhausted mid-retry: fail this batch's
          // positions so no fetcher waits forever, then surface the error.
          for (const u64 p : batch_pos_[fresh]) {
            auto& vs = vstate_[p];
            vs.state = VState::Failed;
            vs.error = e.what();
          }
          vcv_.notify_all();
          throw;
        }
        vcv_.notify_all();
        it = vstate_.find(pos);
        continue;  // this thread claims the fresh batch next iteration
      }
      if (err.empty()) {
        try {
          WireReader r(payload);
          const auto n = r.u32();
          for (u32 i = 0; i < n; ++i) {
            const u64 p = r.u64();
            const auto cf = r.u32();
            std::vector<cfloat> v;
            v.reserve(cf);
            for (u32 c = 0; c < cf; ++c) {
              const float re = r.f32();
              const float im = r.f32();
              v.emplace_back(re, im);
            }
            auto vit = vstate_.find(p);
            if (vit == vstate_.end() || vit->second.batch_id != batch)
              throw WireError("GET_BATCH reply names an unrequested position");
            vit->second.state = VState::Ready;
            vit->second.value = std::move(v);
          }
        } catch (const WireError& e) {
          err = std::string("bad GET_BATCH reply: ") + e.what();
        }
      }
      // Anything of this batch not published above (reply failed, or the
      // reply skipped it) fails — a fetcher must never wait forever.
      for (const u64 p : batch_pos_[batch]) {
        auto& vs = vstate_[p];
        if (vs.state == VState::Pending) {
          vs.state = VState::Failed;
          vs.error = err.empty() ? "position missing from GET_BATCH reply"
                                 : err;
        }
      }
      vcv_.notify_all();
      it = vstate_.find(pos);
      continue;
    }
    if (vcv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      if (retry_.enabled())
        // Per-request failure regime: only this fetch gives up; the
        // harvester (and the table) may still be making progress.
        throw NetError("GET_BATCH fetch timed out");
      transport_->table().fail_all("GET_BATCH fetch timed out");
      throw NetError(transport_->table().error());
    }
    it = vstate_.find(pos);
  }
}

}  // namespace mlr::net
