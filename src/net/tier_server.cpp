#include "net/tier_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "net/request_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mlr::net {

namespace {

/// Per-verb server-side counters + handle latency.
struct ServerVerbMetrics {
  obs::Counter& frames;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Histogram& handle_s;
};

ServerVerbMetrics make_server_verb(FrameType t) {
  const std::string base = std::string("net.server.") + frame_type_name(t);
  auto& m = obs::metrics();
  return {m.counter(base + ".frames"), m.counter(base + ".bytes_in"),
          m.counter(base + ".bytes_out"),
          m.histogram(base + ".handle_s", obs::latency_edges_s())};
}

ServerVerbMetrics& server_verb_metrics(FrameType t) {
  static ServerVerbMetrics m[] = {
      make_server_verb(FrameType::Get),
      make_server_verb(FrameType::GetBatch),
      make_server_verb(FrameType::Put),
      make_server_verb(FrameType::SnapshotExport),
      make_server_verb(FrameType::SnapshotImport),
      make_server_verb(FrameType::Error),
  };
  const int idx = std::clamp(int(t) - 1, 0, 5);
  return m[idx];
}

/// Stats block appended to PUT / SNAPSHOT_EXPORT / SNAPSHOT_IMPORT replies:
/// the tier occupancy a remote client mirrors for its client-side fabric
/// charges. Doubles travel as IEEE-754 bits, so the mirror is bit-exact.
void encode_tier_stats(WireWriter& w, const serve::SharedTier& tier) {
  w.u64(tier.size());
  w.u32(u32(tier.shard_count()));
  for (int s = 0; s < tier.shard_count(); ++s) {
    w.u64(tier.shard_entries(s));
    w.f64(tier.shard_bytes(s));
  }
  w.f64(tier.total_bytes());
}

bool read_full(int fd, std::byte* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const auto r = ::read(fd, buf + got, n - got);
    if (r <= 0) return false;
    got += std::size_t(r);
  }
  return true;
}

bool write_full(int fd, const std::byte* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a client that died mid-reply must surface as a write
    // error on this connection, not a process-wide SIGPIPE.
    const auto r = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (r <= 0) return false;
    put += std::size_t(r);
  }
  return true;
}

}  // namespace

TierServer::TierServer(serve::SharedTierConfig cfg)
    : tier_([&] {
        // Client-side charging contract (shared_tier.hpp): the server's own
        // tier never touches a virtual clock.
        cfg.fabric.enabled = false;
        return cfg;
      }()) {}

TierServer::~TierServer() { stop(); }

std::vector<std::byte> TierServer::handle(FrameType type,
                                          std::span<const std::byte> payload) {
  std::lock_guard lk(mu_);
  WireReader r(payload);
  WireWriter w;
  switch (type) {
    case FrameType::Get: {
      const u64 pos = r.u64();
      if (pos >= tier_.size())
        throw WireError("GET position " + std::to_string(pos) +
                        " beyond tier size " + std::to_string(tier_.size()));
      const auto& v = tier_.snapshot()[std::size_t(pos)].value;
      w.u32(u32(v.size()));
      for (const auto& c : v) {
        w.f32(c.real());
        w.f32(c.imag());
      }
      break;
    }
    case FrameType::GetBatch: {
      const auto n = r.u32();
      w.u32(n);
      for (u32 i = 0; i < n; ++i) {
        const u64 pos = r.u64();
        if (pos >= tier_.size())
          throw WireError("GET_BATCH position " + std::to_string(pos) +
                          " beyond tier size " +
                          std::to_string(tier_.size()));
        const auto& v = tier_.snapshot()[std::size_t(pos)].value;
        w.u64(pos);
        w.u32(u32(v.size()));
        for (const auto& c : v) {
          w.f32(c.real());
          w.f32(c.imag());
        }
      }
      break;
    }
    case FrameType::Put: {
      auto entries = decode_entries(r);
      const auto out = tier_.fold(std::move(entries));
      w.u64(out.promoted);
      w.u64(out.dedup_drops);
      w.u64(out.cap_drops);
      encode_tier_stats(w, tier_);
      break;
    }
    case FrameType::SnapshotExport: {
      const bool with_values = r.u8() != 0;
      encode_tier_stats(w, tier_);
      encode_entries(w, tier_.snapshot(), with_values);
      break;
    }
    case FrameType::SnapshotImport: {
      // Decode fully before applying: a truncated frame throws here and the
      // tier is untouched — a torn import is impossible.
      auto entries = decode_entries(r);
      tier_.import_snapshot(std::move(entries));
      w.u64(tier_.size());
      encode_tier_stats(w, tier_);
      break;
    }
    case FrameType::Error:
      throw WireError("ERROR is reply-only");
  }
  return w.take();
}

std::vector<std::byte> TierServer::handle_frame(
    std::span<const std::byte> frame) {
  // An unparseable header means the byte stream itself is unusable — throw
  // to the caller (which drops the connection). A request that parses but
  // fails to execute answers with an Error frame and the stream stays good.
  const auto h = decode_header(frame);
  if (h.is_reply()) throw WireError("received a reply frame as a request");
  if (frame.size() != kHeaderBytes + h.payload_bytes)
    throw WireError("frame length disagrees with header payload_bytes");
  const auto payload = frame.subspan(kHeaderBytes);
  auto& vm = server_verb_metrics(h.type);
  vm.frames.add();
  vm.bytes_in.add(frame.size());
  const WallTimer wt;
  MLR_TRACE_SPAN("net.serve", "net", h.request_id);
  try {
    const auto reply = handle(h.type, payload);
    auto out = encode_frame(h.type, kFlagReply, h.request_id, reply);
    vm.handle_s.observe(wt.seconds());
    vm.bytes_out.add(out.size());
    return out;
  } catch (const std::exception& e) {
    WireWriter w;
    encode_error(w, {/*code=*/2, e.what()});
    auto out =
        encode_frame(FrameType::Error, kFlagReply, h.request_id, w.data());
    vm.handle_s.observe(wt.seconds());
    vm.bytes_out.add(out.size());
    server_verb_metrics(FrameType::Error).frames.add();
    return out;
  }
}

std::uint16_t TierServer::listen_and_serve(const std::string& host,
                                           std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw NetError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError("listen address is not a valid IPv4 literal: " + host);
  }
  addr.sin_port = htons(port);  // 0 = ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError("bind/listen on " + host + ":" + std::to_string(port) +
                   " failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  acceptor_ = std::thread([this] { accept_loop(); });
  return ntohs(addr.sin_port);
}

void TierServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // listen socket closed by stop()
    if (stopping_.load(std::memory_order_acquire)) {
      // Raced with stop(): the connection landed before the listen socket
      // closed. Refuse it rather than spawn a handler stop() already swept.
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TierServer::serve_connection(int fd) {
  std::vector<std::byte> frame;
  for (;;) {
    frame.resize(kHeaderBytes);
    if (!read_full(fd, frame.data(), kHeaderBytes)) break;
    std::vector<std::byte> reply;
    try {
      // decode_header enforces kMaxFramePayload, so the resize below can
      // neither wrap kHeaderBytes + payload_bytes nor be driven to an
      // absurd size by a hostile header.
      const auto h = decode_header(frame);
      frame.resize(kHeaderBytes + h.payload_bytes);
      if (!read_full(fd, frame.data() + kHeaderBytes, h.payload_bytes)) break;
      reply = handle_frame(frame);
    } catch (const std::exception&) {
      // Desynchronized stream, reply-as-request, or allocation failure:
      // drop this connection, never the process.
      break;
    }
    if (!write_full(fd, reply.data(), reply.size())) break;
  }
  ::shutdown(fd, SHUT_RDWR);
}

void TierServer::stop() {
  if (stopping_.exchange(true)) {
    // Second call (destructor after explicit stop): nothing left to do.
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    std::lock_guard lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // After the acceptor exited no new connections appear — but it may have
  // registered one between the shutdown pass above and observing the closed
  // listen socket. Shut every fd down again (idempotent) so no handler
  // thread can sit in read_full forever and block the joins below.
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
    fds.swap(conn_fds_);
  }
  for (auto& t : threads) t.join();
  for (const int fd : fds) ::close(fd);
  listen_fd_ = -1;
}

}  // namespace mlr::net
