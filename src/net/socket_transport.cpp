#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace mlr::net {

namespace {

bool read_full(int fd, std::byte* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const auto r = ::read(fd, buf + got, n - got);
    if (r <= 0) return false;
    got += std::size_t(r);
  }
  return true;
}

}  // namespace

std::unique_ptr<SocketTransport> SocketTransport::connect_tcp(
    const std::string& host, std::uint16_t port, int channels) {
  MLR_CHECK(channels >= 1);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw NetError("unparseable tier address host: " + host);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  for (int c = 0; c < channels; ++c) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw NetError("socket() failed (sockets unavailable)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      throw NetError("connect to " + host + ":" + std::to_string(port) +
                     " failed");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    t->conns_.push_back(std::move(conn));
  }
  // Start readers only after every connect succeeded (a failed construction
  // has no threads to unwind).
  for (std::size_t c = 0; c < t->conns_.size(); ++c) {
    auto* self = t.get();
    t->conns_[c]->reader = std::thread([self, c] { self->reader_loop(c); });
  }
  return t;
}

SocketTransport::~SocketTransport() {
  for (auto& conn : conns_)
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : conns_)
    if (conn->reader.joinable()) conn->reader.join();
  for (auto& conn : conns_)
    if (conn->fd >= 0) ::close(conn->fd);
}

void SocketTransport::send(int channel, FrameType type, u64 request_id,
                           std::span<const std::byte> payload) {
  MLR_CHECK(channel >= 0 && channel < int(conns_.size()));
  auto& conn = *conns_[std::size_t(channel)];
  const auto frame = encode_frame(type, /*flags=*/0, request_id, payload);
  std::lock_guard lk(conn.write_mu);
  std::size_t put = 0;
  while (put < frame.size()) {
    const auto r = ::write(conn.fd, frame.data() + put, frame.size() - put);
    if (r <= 0) {
      table_.fail_all("connection write failed on channel " +
                      std::to_string(channel));
      throw NetError(table_.error());
    }
    put += std::size_t(r);
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
}

void SocketTransport::reader_loop(std::size_t conn) {
  const int fd = conns_[conn]->fd;
  std::vector<std::byte> frame;
  for (;;) {
    frame.resize(kHeaderBytes);
    if (!read_full(fd, frame.data(), kHeaderBytes)) {
      table_.fail_all("connection closed (EOF or short read mid-header)");
      return;
    }
    FrameHeader h;
    try {
      // decode_header enforces kMaxFramePayload, so a corrupt or
      // desynchronized reply stream cannot wrap the resize below or drive
      // it to an absurd size; any residual allocation failure becomes the
      // sticky error, not a process-terminating escape from this thread.
      h = decode_header(frame);
      frame.resize(kHeaderBytes + h.payload_bytes);
    } catch (const std::exception& e) {
      table_.fail_all(std::string("undecodable reply header: ") + e.what());
      return;
    }
    if (!read_full(fd, frame.data() + kHeaderBytes, h.payload_bytes)) {
      table_.fail_all("connection closed mid-reply (truncated payload)");
      return;
    }
    route_reply(frame);
  }
}

}  // namespace mlr::net
