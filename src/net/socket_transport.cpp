#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace mlr::net {

namespace {

bool read_full(int fd, std::byte* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const auto r = ::read(fd, buf + got, n - got);
    if (r <= 0) return false;
    got += std::size_t(r);
  }
  return true;
}

}  // namespace

std::unique_ptr<SocketTransport> SocketTransport::connect_tcp(
    const std::string& host, std::uint16_t port, int channels) {
  MLR_CHECK(channels >= 1);
  sockaddr_in addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw NetError("unparseable tier address host: " + host);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  t->host_ = host;
  t->port_ = port;
  for (int c = 0; c < channels; ++c) {
    const int fd = t->dial();
    if (fd < 0)
      throw NetError("connect to " + host + ":" + std::to_string(port) +
                     " failed (sockets unavailable)");
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    t->conns_.push_back(std::move(conn));
  }
  // Start readers only after every connect succeeded (a failed construction
  // has no threads to unwind). Each reader is pinned to the (fd, generation)
  // it was spawned for; a reconnect retires it and spawns a fresh one.
  for (std::size_t c = 0; c < t->conns_.size(); ++c) {
    auto* self = t.get();
    const int fd = t->conns_[c]->fd;
    const u64 gen = t->generation(int(c));
    t->conns_[c]->reader =
        std::thread([self, c, fd, gen] { self->reader_loop(c, fd, gen); });
  }
  return t;
}

SocketTransport::~SocketTransport() {
  // Stop first: a reader noticing the shutdown below must exit, not run the
  // recovery ladder against a perfectly healthy server forever.
  closing_.store(true, std::memory_order_relaxed);
  for (auto& conn : conns_)
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : conns_)
    if (conn->reader.joinable()) conn->reader.join();
  std::vector<std::thread> retired;
  std::vector<int> rfds;
  {
    std::lock_guard lk(retire_mu_);
    retired.swap(retired_readers_);
    rfds.swap(retired_fds_);
  }
  for (auto& th : retired)
    if (th.joinable()) th.join();
  for (const int fd : rfds) ::close(fd);
  for (auto& conn : conns_)
    if (conn->fd >= 0) ::close(conn->fd);
}

int SocketTransport::dial() const {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void SocketTransport::write_frame(int channel, FrameType /*type*/,
                                  const std::vector<std::byte>& frame) {
  MLR_CHECK(channel >= 0 && channel < int(conns_.size()));
  auto& conn = *conns_[std::size_t(channel)];
  std::lock_guard lk(conn.write_mu);
  std::size_t put = 0;
  while (put < frame.size()) {
    // MSG_NOSIGNAL: a peer that died between frames must surface as EPIPE
    // (→ the recovery ladder), not as a process-killing SIGPIPE.
    const auto r = ::send(conn.fd, frame.data() + put, frame.size() - put,
                          MSG_NOSIGNAL);
    if (r <= 0)
      throw TransportFault("connection write failed on channel " +
                           std::to_string(channel));
    put += std::size_t(r);
  }
}

bool SocketTransport::reopen(int channel) {
  const int nfd = dial();
  if (nfd < 0) return false;
  auto& conn = *conns_[std::size_t(channel)];
  std::lock_guard lk(conn.write_mu);
  // Retire the dead carrier: shutdown unblocks its reader (which exits on
  // the stale generation), the fd and thread are reaped at destruction.
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
  {
    std::lock_guard rl(retire_mu_);
    if (conn.reader.joinable())
      retired_readers_.push_back(std::move(conn.reader));
    if (conn.fd >= 0) retired_fds_.push_back(conn.fd);
  }
  conn.fd = nfd;
  return true;
}

void SocketTransport::on_recovered(int channel) {
  auto& conn = *conns_[std::size_t(channel)];
  const int fd = conn.fd;
  const u64 gen = generation(channel);
  conn.reader = std::thread(
      [this, channel, fd, gen] { reader_loop(std::size_t(channel), fd, gen); });
}

void SocketTransport::reader_loop(std::size_t conn, int fd, u64 gen) {
  std::vector<std::byte> frame;
  for (;;) {
    std::string fault;
    frame.resize(kHeaderBytes);
    if (!read_full(fd, frame.data(), kHeaderBytes)) {
      fault = "connection closed (EOF or short read mid-header)";
    } else {
      FrameHeader h{};
      try {
        // decode_header enforces kMaxFramePayload, so a corrupt or
        // desynchronized reply stream cannot wrap the resize below or drive
        // it to an absurd size; any residual allocation failure becomes a
        // carrier fault, not a process-terminating escape from this thread.
        h = decode_header(frame);
        frame.resize(kHeaderBytes + h.payload_bytes);
      } catch (const std::exception& e) {
        fault = std::string("undecodable reply header: ") + e.what();
      }
      if (fault.empty() &&
          !read_full(fd, frame.data() + kHeaderBytes, h.payload_bytes))
        fault = "connection closed mid-reply (truncated payload)";
    }
    if (!fault.empty()) {
      // This reader is done either way: destruction, a recovery that
      // already superseded this carrier, a successful recovery (which
      // spawned a new reader on the new connection), or a broken table.
      if (!closing_.load(std::memory_order_relaxed))
        recover_channel(int(conn), gen, fault);
      return;
    }
    route_reply(frame);
  }
}

}  // namespace mlr::net
