// net/tier_client — the remote serve::TierBackend: speaks the memo wire
// protocol to a TierServer over a Transport and mirrors the tier's byte
// accounting so ALL virtual-clock charging stays client-side (the contract
// of serve/shared_tier.hpp).
//
// How each backend verb maps to wire traffic:
//
//   begin_seed()    → one SNAPSHOT_EXPORT (index-only) request, issued
//                     non-blocking; the service overlaps the round-trip
//                     with per-job setup and completes it in end_seed().
//   end_seed()      → wait for the export reply; decode the index-only
//                     snapshot into the caller's storage, refresh the stats
//                     mirror and the position→shard map, reset the lazy
//                     value-fetch state. Returns the snapshot plus `this`
//                     as the session's memo::ValueFetcher.
//   fold()          → one PUT with full payloads; the reply carries the
//                     PromotionOutcome and the post-fold tier stats the
//                     mirror adopts bit-exactly (doubles travel as IEEE-754
//                     bits), so the next charge_fetch is bit-identical to
//                     an in-process tier's.
//   charge_fetch/charge_store → pure local math on the mirror + the
//                     client's own sim::Fabric — promotion_wire() is shared
//                     with SharedTier, so the charges cannot drift.
//
// The ValueFetcher half (the wall-clock overlap win): score_requests calls
// request(pos) per remote hit and flush() per scored slice; flush ships ONE
// GET_BATCH per shard (positions sorted — canonical frames), routed on that
// shard's transport channel. fetch(pos) blocks on the batch's reply — by
// then the engine has already issued the slice's miss FFTs, so the
// round-trip hid under local compute. The first fetcher of a batch parses
// the reply and publishes every position it carried; concurrent fetchers of
// other positions in the same batch just wait on the condition variable.
// Transport faults surface as sticky NetError from fetch()/end_seed()/
// fold() — never a hang (every wait carries the configured timeout).
//
// With a reconnect budget (RetrySpec, retry_max > 0) faults stop being
// sticky: a slow or lost GET_BATCH reply fails per-request and the
// harvesting fetch() re-issues that one batch (counted as
// net.table.retries) up to retry_max times before giving up; a PUT
// interrupted by a reconnect surfaces RetryableError from fold() — the
// service buffers the promotion and re-ships it on recovery (the tier's
// dedup probe absorbs the duplicate if the original did land).
//
// Sessions of one service run sequentially on the wall clock (slots are
// virtual), so one client serves them all; within a session, request/flush/
// fetch run on pool workers and are fully locked.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "net/transport.hpp"
#include "serve/shared_tier.hpp"

namespace mlr::net {

class TierClient final : public serve::TierBackend, public memo::ValueFetcher {
 public:
  /// `fabric` is the client-side charging model (the one the in-process
  /// tier would own); `timeout_s` bounds every wire wait; `retry` is the
  /// transport's reconnect budget (default: legacy sticky).
  TierClient(std::unique_ptr<Transport> transport, sim::FabricSpec fabric,
             int shard_count, double timeout_s, RetrySpec retry = {});

  // --- serve::TierBackend ---------------------------------------------------
  u64 begin_seed() override;
  serve::TierSeed end_seed(u64 ticket,
                           std::vector<memo::MemoDb::Entry>& storage) override;
  sim::VTime charge_fetch(sim::VTime ready, double scale) override;
  sim::VTime charge_store(const std::vector<memo::MemoDb::Entry>& entries,
                          sim::VTime ready, double scale) override;
  serve::PromotionOutcome fold(
      std::vector<memo::MemoDb::Entry> entries) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] int shard_count() const override { return shard_count_; }
  [[nodiscard]] std::size_t shard_entries(int shard) const override {
    return shard_entries_[std::size_t(shard)];
  }
  [[nodiscard]] double shard_bytes(int shard) const override {
    return shard_bytes_[std::size_t(shard)];
  }
  [[nodiscard]] double total_bytes() const override { return total_bytes_; }
  [[nodiscard]] const sim::Fabric& fabric() const override { return fabric_; }
  /// The tier is reachable as far as this client knows: the transport's
  /// table has not been broken (reconnect budget not exhausted). A false
  /// here is what flips the service into degraded cold-session mode.
  [[nodiscard]] bool healthy() const override {
    return !transport_->table().broken();
  }

  // --- memo::ValueFetcher ---------------------------------------------------
  void request(u64 pos) override;
  void flush() override;
  std::vector<cfloat> fetch(u64 pos) override;

  [[nodiscard]] const Transport& transport() const { return *transport_; }
  [[nodiscard]] Transport& transport_mut() { return *transport_; }

  /// Swap in a freshly connected transport after the old one's budget was
  /// exhausted (the service's recovery probe). Keeps the fabric and the
  /// stats mirror — the tier's accounting survived the outage server-side
  /// (or was restored from a checkpoint); only the carrier is new. Lazy
  /// fetch state is reset (its request ids belong to the dead table).
  void reconnect(std::unique_ptr<Transport> transport);

 private:
  /// Send one request on `channel` and block for its reply payload.
  std::vector<std::byte> call(int channel, FrameType type,
                              std::span<const std::byte> payload);
  /// Adopt a stats block (size / per-shard occupancy / total) from a reply.
  void adopt_stats(WireReader& r);

  std::unique_ptr<Transport> transport_;
  sim::Fabric fabric_;
  int shard_count_;
  double timeout_s_;
  RetrySpec retry_{};

  // Mirror of the server tier's accounting, adopted bit-exactly from reply
  // stats blocks. Mutated only between sessions (end_seed / fold), read by
  // the service's serial event loop — no lock needed.
  std::size_t size_ = 0;
  std::vector<std::size_t> shard_entries_;
  std::vector<double> shard_bytes_;
  double total_bytes_ = 0;

  // Seed map: snapshot position → shard (routing for GET/GET_BATCH).
  std::vector<int> pos_shard_;

  // Lazy value-fetch state (locked: pool workers).
  struct VState {
    enum { Queued, Pending, Ready, Failed } state = Queued;
    u64 batch_id = 0;           ///< request id of the batch carrying it
    std::vector<cfloat> value;  ///< Ready: the payload (kept until reset)
    std::string error;          ///< Failed: what went wrong
  };
  std::mutex vmu_;
  std::condition_variable vcv_;
  std::map<u64, VState> vstate_;                  ///< by snapshot position
  std::vector<std::vector<u64>> queued_;          ///< per shard, unshipped
  std::map<u64, std::vector<u64>> batch_pos_;     ///< batch id → positions
  std::map<u64, bool> batch_claimed_;             ///< a harvester exists
  std::map<u64, int> batch_retry_;                ///< re-issues so far
};

}  // namespace mlr::net
