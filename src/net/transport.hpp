// net/transport — how request frames reach a TierServer and replies come
// back.
//
// A Transport owns the in-flight RequestTable and moves whole frames; the
// TierClient above it speaks the verbs. Two backends:
//
//   * LoopbackTransport — deterministic in-process backend (CI and the
//     determinism matrix). send() encodes the full frame bytes, walks them
//     through TierServer::handle_frame and routes the reply bytes back
//     through the same decode path the socket reader uses — frames are
//     byte-identical to the socket path, only the carrier differs. Replies
//     complete synchronously (wall clock only; the virtual clock never sees
//     transport at all — see shared_tier.hpp's client-side charging
//     contract). Fault injection hooks simulate a truncated reply, a
//     dropped reply (→ the waiter's timeout breaks the table) and held-back
//     (reordered) delivery, so the sticky-error paths are testable without
//     a real socket.
//
//   * SocketTransport — per-shard TCP connections to a TierServer on
//     localhost (or any host): one writer mutex per connection (frames
//     never interleave), one reply-reader thread per connection that
//     completes the request table in arrival order. Any transport-level
//     fault — connect failure, short read, EOF mid-frame, unparseable
//     header — calls RequestTable::fail_all: every in-flight and future
//     request surfaces one sticky NetError instead of hanging.
//
// Channel = connection index. The TierClient routes GET/GET_BATCH by shard
// (channel = shard) so value fetches ride per-shard connections; verbs that
// touch the whole tier (PUT, snapshots) ride channel 0.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/request_table.hpp"
#include "net/wire.hpp"

namespace mlr::net {

class TierServer;

class Transport {
 public:
  virtual ~Transport() = default;
  /// Send one request frame on `channel`. The reply lands in table() —
  /// synchronously for loopback, from the reader thread for sockets.
  virtual void send(int channel, FrameType type, u64 request_id,
                    std::span<const std::byte> payload) = 0;
  [[nodiscard]] virtual int channels() const = 0;
  /// One human-readable word for stats/JSON ("loopback", "socket").
  [[nodiscard]] virtual const char* name() const = 0;

  [[nodiscard]] RequestTable& table() { return table_; }
  [[nodiscard]] u64 frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 protected:
  /// Route one received reply frame into the table — the ONE reply path
  /// both backends share: decode the header, then complete/fail the slot
  /// (Error frames fail their own request; undecodable bytes are the
  /// caller's fault to escalate).
  void route_reply(std::span<const std::byte> frame);

  RequestTable table_;
  std::atomic<u64> frames_sent_{0};
  std::atomic<u64> bytes_sent_{0};
};

/// Deterministic in-memory backend over an in-process TierServer.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(TierServer* server, int channels);

  void send(int channel, FrameType type, u64 request_id,
            std::span<const std::byte> payload) override;
  [[nodiscard]] int channels() const override { return channels_; }
  [[nodiscard]] const char* name() const override { return "loopback"; }

  // --- Fault injection (tests) ----------------------------------------------
  /// Deliver only the first `n` bytes of every subsequent reply frame.
  void fault_truncate_replies(std::size_t n) { truncate_at_ = i64(n); }
  /// Silently drop every subsequent reply (waiters hit their timeout).
  void fault_drop_replies(bool on) { drop_ = on; }
  /// Hold replies instead of delivering; deliver_held() releases them.
  void fault_hold_replies(bool on) { hold_ = on; }
  /// Deliver held replies, optionally in reverse (out-of-order) order.
  void deliver_held(bool reverse);

 private:
  TierServer* server_;
  int channels_;
  std::mutex mu_;  ///< serializes send + fault state (callers are pool workers)
  i64 truncate_at_ = -1;
  bool drop_ = false;
  bool hold_ = false;
  std::vector<std::vector<std::byte>> held_;
};

/// Per-shard TCP connections to a TierServer (localhost or remote).
class SocketTransport final : public Transport {
 public:
  /// Connect `channels` sockets to host:port. Throws NetError on failure
  /// (callers treat that as "sockets unavailable" and may skip).
  static std::unique_ptr<SocketTransport> connect_tcp(
      const std::string& host, std::uint16_t port, int channels);
  ~SocketTransport() override;

  void send(int channel, FrameType type, u64 request_id,
            std::span<const std::byte> payload) override;
  [[nodiscard]] int channels() const override { return int(conns_.size()); }
  [[nodiscard]] const char* name() const override { return "socket"; }

 private:
  SocketTransport() = default;
  void reader_loop(std::size_t conn);

  struct Conn {
    int fd = -1;
    std::mutex write_mu;  ///< one frame at a time; frames never interleave
    std::thread reader;
  };
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace mlr::net
