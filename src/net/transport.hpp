// net/transport — how request frames reach a TierServer and replies come
// back.
//
// A Transport owns the in-flight RequestTable and moves whole frames; the
// TierClient above it speaks the verbs. Two backends:
//
//   * LoopbackTransport — deterministic in-process backend (CI and the
//     determinism matrix). Each frame's bytes walk through
//     TierServer::handle_frame and the reply bytes come back through the
//     same decode path the socket reader uses — frames are byte-identical
//     to the socket path, only the carrier differs. Replies complete
//     synchronously (wall clock only; the virtual clock never sees
//     transport at all — see shared_tier.hpp's client-side charging
//     contract). Fault injection hooks simulate a truncated reply, a
//     dropped reply, held-back (reordered) delivery, and — for the
//     reconnect ladder — a scripted carrier loss (disconnect after N more
//     frames, or on the first PUT) whose reopen succeeds only after K
//     failed attempts, so every recovery path is testable without a real
//     socket.
//
//   * SocketTransport — per-shard TCP connections to a TierServer on
//     localhost (or any host): one writer mutex per connection (frames
//     never interleave), one reply-reader thread per connection that
//     completes the request table in arrival order.
//
// Fault handling is shared by both backends and runs in one of two regimes
// (RetrySpec):
//
//   * retry_max == 0 (legacy, the default): any transport-level fault —
//     connect failure, write failure, short read, EOF mid-frame,
//     unparseable header — calls RequestTable::fail_all. Every in-flight
//     and future request surfaces one sticky NetError instead of hanging.
//   * retry_max > 0: the base class supervises each channel. send() stashes
//     the encoded frame of every *read-class* verb (GET / GET_BATCH /
//     SNAPSHOT_EXPORT — their replies are byte-for-byte idempotent, so a
//     re-issue is indistinguishable from the original). On a fault,
//     recover_channel() runs the ladder: fail the channel's in-flight
//     at-most-once requests (PUT / SNAPSHOT_IMPORT — their frame may be
//     lost and must not be re-sent; callers get RetryableError), then
//     reconnect with bounded exponential backoff (backoff_ms · 2^k, capped)
//     and re-issue the stashed read-class frames in id order. Only an
//     exhausted budget breaks the table — the sticky contract survives as
//     the floor of the ladder. Counted: net.client.reconnects / replays /
//     reconnect_failures, plus a net.reconnect trace span per recovery.
//
// Channel = connection index. The TierClient routes GET/GET_BATCH by shard
// (channel = shard) so value fetches ride per-shard connections; verbs that
// touch the whole tier (PUT, snapshots) ride channel 0.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/request_table.hpp"
#include "net/wire.hpp"

namespace mlr::net {

class TierServer;

/// Reconnect budget of a transport (plumbed from ServiceConfig's
/// net_retry_max / net_backoff_ms): up to `retry_max` reopen attempts per
/// fault, sleeping backoff_ms · 2^attempt (capped at 32×) between attempts.
/// retry_max == 0 preserves the legacy sticky contract.
struct RetrySpec {
  int retry_max = 0;
  double backoff_ms = 10.0;
  [[nodiscard]] bool enabled() const { return retry_max > 0; }
};

/// Read-class verbs: byte-for-byte idempotent replies (asserted by the
/// replay-equivalence test), safe to re-issue after a reconnect. PUT and
/// SNAPSHOT_IMPORT mutate the tier and stay at-most-once.
[[nodiscard]] constexpr bool replayable_verb(FrameType t) {
  return t == FrameType::Get || t == FrameType::GetBatch ||
         t == FrameType::SnapshotExport;
}

/// Internal carrier fault raised by write_frame (connection died mid-write,
/// scripted loopback disconnect). Never escapes Transport::send — it is
/// translated into recovery, RetryableError or the sticky NetError.
class TransportFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Transport {
 public:
  virtual ~Transport();
  /// Send one request frame on `channel`. The reply lands in table() —
  /// synchronously for loopback, from the reader thread for sockets. With a
  /// retry budget, a carrier fault triggers the recovery ladder; without
  /// one it breaks the table (sticky NetError).
  void send(int channel, FrameType type, u64 request_id,
            std::span<const std::byte> payload);
  [[nodiscard]] virtual int channels() const = 0;
  /// One human-readable word for stats/JSON ("loopback", "socket").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Install the reconnect budget (and flip the table's failure regime).
  /// Call before any traffic.
  void set_retry(RetrySpec spec);
  [[nodiscard]] const RetrySpec& retry() const { return retry_; }

  [[nodiscard]] RequestTable& table() { return table_; }
  [[nodiscard]] u64 frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  /// Successful channel recoveries / frames re-issued by them.
  [[nodiscard]] u64 reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 replays() const {
    return replays_.load(std::memory_order_relaxed);
  }

 protected:
  Transport() = default;

  /// Deliver one encoded request frame on `channel`, or throw
  /// TransportFault if the carrier failed (without touching the table —
  /// send()/recover_channel own the consequences). `type` is the frame's
  /// verb (already encoded inside `frame`; passed for fault scripts).
  virtual void write_frame(int channel, FrameType type,
                           const std::vector<std::byte>& frame) = 0;
  /// Re-establish `channel`'s carrier after a fault; false = not possible
  /// (yet). Default: no reconnect support.
  virtual bool reopen(int channel) { return false; }
  /// Called once per successful recovery, after the generation bump and
  /// before the replay (sockets start the new reply reader here).
  virtual void on_recovered(int channel) {}
  /// True when one carrier fault downs every channel at once (loopback's
  /// in-process "connection" is shared); recovery then reopens, fails and
  /// replays across all channels.
  [[nodiscard]] virtual bool channels_share_fate() const { return false; }

  /// Carrier generation of `channel` — bumped by every successful recovery.
  /// Fault reporters capture it before the faulting operation so racing
  /// reports of the same fault coalesce into one recovery.
  [[nodiscard]] u64 generation(int channel) const;

  /// The recovery ladder (see the header comment). `gen_seen` is the
  /// generation the caller observed before the fault; a stale generation
  /// means another thread already recovered (returns true immediately
  /// unless the table broke meanwhile). Returns false — after fail_all —
  /// when the budget is exhausted or retries are disabled.
  bool recover_channel(int channel, u64 gen_seen, const std::string& why);

  /// Route one received reply frame into the table — the ONE reply path
  /// both backends share: decode the header, then complete/fail the slot
  /// (Error frames fail their own request; undecodable bytes are the
  /// caller's fault to escalate). Prunes the replay stash.
  void route_reply(std::span<const std::byte> frame);

  RequestTable table_;
  std::atomic<u64> frames_sent_{0};
  std::atomic<u64> bytes_sent_{0};
  std::atomic<u64> reconnects_{0};
  std::atomic<u64> replays_{0};

 private:
  /// One in-flight request the recovery ladder may need to act on: the
  /// frame bytes for read-class verbs (re-issued after reconnect), just the
  /// membership for at-most-once verbs (failed retryably on a fault).
  struct PendingFrame {
    int channel = 0;
    FrameType type{};
    u64 sent_gen = u64(-1);         ///< generation it last went out on
    std::vector<std::byte> frame;   ///< empty for at-most-once verbs
  };

  RetrySpec retry_{};
  mutable std::mutex stash_mu_;     ///< guards stash_ + gens_
  std::map<u64, PendingFrame> stash_;  ///< id-ordered (replay order)
  std::vector<u64> gens_;
  std::mutex rec_mu_;               ///< serializes recoveries
};

/// Deterministic in-memory backend over an in-process TierServer.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(TierServer* server, int channels);

  [[nodiscard]] int channels() const override { return channels_; }
  [[nodiscard]] const char* name() const override { return "loopback"; }

  // --- Fault injection (tests) ----------------------------------------------
  /// Deliver only the first `n` bytes of every subsequent reply frame.
  void fault_truncate_replies(std::size_t n) { truncate_at_ = i64(n); }
  /// Silently drop every subsequent reply (waiters hit their timeout).
  void fault_drop_replies(bool on) { drop_ = on; }
  /// Silently drop the next `n` replies, then deliver normally (retry-mode
  /// per-request timeout + re-issue tests).
  void fault_drop_next(int n) { drop_next_ = n; }
  /// Hold replies instead of delivering; deliver_held() releases them.
  void fault_hold_replies(bool on) { hold_ = on; }
  /// Deliver held replies, optionally in reverse (out-of-order) order.
  void deliver_held(bool reverse);
  /// Scripted carrier loss: after `n` more delivered frames the carrier
  /// drops — the (n+1)-th frame is LOST and every send faults until a
  /// reopen succeeds. 0 = the very next frame.
  void fault_disconnect_after(i64 n) { disconnect_in_ = n; }
  /// Scripted carrier loss keyed on verb instead of count: the first PUT
  /// request drops the carrier (and is lost) — deterministic regardless of
  /// how many reads preceded it.
  void fault_disconnect_on_put(bool on) { disconnect_on_put_ = on; }
  /// The next `k` reopen attempts fail before one succeeds (pass a huge `k`
  /// for "never reconnects"). Default: the first reopen succeeds.
  void fault_reconnect_after(i64 k) { reconnect_after_ = k; }
  [[nodiscard]] bool carrier_down() const;

 protected:
  void write_frame(int channel, FrameType type,
                   const std::vector<std::byte>& frame) override;
  bool reopen(int channel) override;
  /// The in-process carrier is one shared "connection": a scripted
  /// disconnect downs every channel together.
  [[nodiscard]] bool channels_share_fate() const override { return true; }

 private:
  TierServer* server_;
  int channels_;
  mutable std::mutex mu_;  ///< serializes send + fault state (pool workers)
  i64 truncate_at_ = -1;
  bool drop_ = false;
  int drop_next_ = 0;
  bool hold_ = false;
  std::vector<std::vector<std::byte>> held_;
  bool down_ = false;
  i64 disconnect_in_ = -1;
  bool disconnect_on_put_ = false;
  i64 reconnect_after_ = 0;
};

/// Per-shard TCP connections to a TierServer (localhost or remote).
class SocketTransport final : public Transport {
 public:
  /// Connect `channels` sockets to host:port. Throws NetError on failure
  /// (callers treat that as "sockets unavailable" and may skip).
  static std::unique_ptr<SocketTransport> connect_tcp(
      const std::string& host, std::uint16_t port, int channels);
  ~SocketTransport() override;

  [[nodiscard]] int channels() const override { return int(conns_.size()); }
  [[nodiscard]] const char* name() const override { return "socket"; }

 protected:
  void write_frame(int channel, FrameType type,
                   const std::vector<std::byte>& frame) override;
  bool reopen(int channel) override;
  void on_recovered(int channel) override;

 private:
  SocketTransport() = default;
  /// Dial one TCP connection to the stored address; -1 on failure.
  [[nodiscard]] int dial() const;
  void reader_loop(std::size_t conn, int fd, u64 gen);

  struct Conn {
    int fd = -1;
    std::mutex write_mu;  ///< one frame at a time; frames never interleave
    std::thread reader;
  };
  std::vector<std::unique_ptr<Conn>> conns_;
  std::string host_;
  std::uint16_t port_ = 0;
  // Readers and fds retired by reconnects; joined/closed at destruction
  // (a reader blocked on a dead fd exits promptly after its shutdown()).
  std::mutex retire_mu_;
  std::vector<std::thread> retired_readers_;
  std::vector<int> retired_fds_;
  /// Set by the destructor before the shutdown(): readers must exit, not
  /// treat the teardown as a fault to recover from.
  std::atomic<bool> closing_{false};
};

}  // namespace mlr::net
