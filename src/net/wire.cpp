#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace mlr::net {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Get: return "GET";
    case FrameType::GetBatch: return "GET_BATCH";
    case FrameType::Put: return "PUT";
    case FrameType::SnapshotExport: return "SNAPSHOT_EXPORT";
    case FrameType::SnapshotImport: return "SNAPSHOT_IMPORT";
    case FrameType::Error: return "ERROR";
  }
  return "?";
}

void WireWriter::u16(std::uint16_t v) {
  u8(std::uint8_t(v & 0xff));
  u8(std::uint8_t(v >> 8));
}

void WireWriter::u32(mlr::u32 v) {
  for (int i = 0; i < 4; ++i) u8(std::uint8_t((v >> (8 * i)) & 0xff));
}

void WireWriter::u64(mlr::u64 v) {
  for (int i = 0; i < 8; ++i) u8(std::uint8_t((v >> (8 * i)) & 0xff));
}

void WireWriter::f32(float v) { u32(std::bit_cast<mlr::u32>(v)); }

void WireWriter::f64(double v) { u64(std::bit_cast<mlr::u64>(v)); }

void WireWriter::bytes(std::span<const std::byte> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void WireReader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n)
    throw WireError("truncated frame: wanted " + std::to_string(n) +
                    " bytes, " + std::to_string(buf_.size() - pos_) +
                    " remain");
}

std::uint8_t WireReader::u8() {
  need(1);
  return std::uint8_t(buf_[pos_++]);
}

std::uint16_t WireReader::u16() {
  const auto lo = u8();
  return std::uint16_t(lo | (std::uint16_t(u8()) << 8));
}

mlr::u32 WireReader::u32() {
  need(4);
  mlr::u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= mlr::u32(std::uint8_t(buf_[pos_ + std::size_t(i)])) << (8 * i);
  pos_ += 4;
  return v;
}

mlr::u64 WireReader::u64() {
  need(8);
  mlr::u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= mlr::u64(std::uint8_t(buf_[pos_ + std::size_t(i)])) << (8 * i);
  pos_ += 8;
  return v;
}

float WireReader::f32() { return std::bit_cast<float>(u32()); }

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::span<const std::byte> WireReader::bytes(std::size_t n) {
  need(n);
  auto out = buf_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::byte> encode_frame(FrameType type, std::uint8_t flags,
                                    u64 request_id,
                                    std::span<const std::byte> payload) {
  WireWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u8(std::uint8_t(type));
  w.u8(flags);
  w.u64(request_id);
  w.u64(payload.size());
  w.bytes(payload);
  return w.take();
}

FrameHeader decode_header(std::span<const std::byte> buf) {
  if (buf.size() < kHeaderBytes)
    throw WireError("truncated frame header: " + std::to_string(buf.size()) +
                    " of " + std::to_string(kHeaderBytes) + " bytes");
  WireReader r(buf.first(kHeaderBytes));
  FrameHeader h;
  h.magic = r.u32();
  if (h.magic != kWireMagic) throw WireError("bad frame magic");
  h.version = r.u16();
  if (h.version != kWireVersion)
    throw WireError("wire version mismatch: got " +
                    std::to_string(h.version) + ", want " +
                    std::to_string(kWireVersion));
  const auto t = r.u8();
  if (t < std::uint8_t(FrameType::Get) || t > std::uint8_t(FrameType::Error))
    throw WireError("unknown frame type " + std::to_string(t));
  h.type = FrameType(t);
  h.flags = r.u8();
  h.request_id = r.u64();
  h.payload_bytes = r.u64();
  if (h.payload_bytes > kMaxFramePayload)
    throw WireError("frame payload_bytes " + std::to_string(h.payload_bytes) +
                    " exceeds cap " + std::to_string(kMaxFramePayload));
  return h;
}

void encode_entries(WireWriter& w,
                    std::span<const memo::MemoDb::Entry> entries,
                    bool with_values) {
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u8(std::uint8_t(int(e.kind)));
    w.u32(mlr::u32(e.key.size()));
    for (const float k : e.key) w.f32(k);
    w.f64(e.norm);
    w.u32(mlr::u32(e.probe.size()));
    for (const auto& p : e.probe) {
      w.f32(p.real());
      w.f32(p.imag());
    }
    // The full value length always travels (a seeded session gates hit
    // shapes on it before the payload exists locally); the payload itself
    // only in the with_values form.
    const auto vcf = e.value.empty() ? e.value_cf : e.value.size();
    w.u32(mlr::u32(vcf));
    w.u8(with_values && !e.value.empty() ? 1 : 0);
    if (with_values && !e.value.empty()) {
      for (const auto& v : e.value) {
        w.f32(v.real());
        w.f32(v.imag());
      }
    }
  }
}

std::vector<memo::MemoDb::Entry> decode_entries(WireReader& r) {
  const auto n = r.u64();
  // Every wire-controlled count is checked against the bytes actually left
  // in the frame BEFORE any reserve/resize: a tiny corrupt frame must throw
  // WireError, never demand a multi-gigabyte allocation. The minimum entry
  // encoding is kind(1) + key_len(4) + norm(8) + probe_len(4) +
  // value_cf(4) + has_value(1) = 22 bytes.
  constexpr u64 kMinEntryBytes = 22;
  if (n > r.remaining() / kMinEntryBytes)
    throw WireError("entry count " + std::to_string(n) +
                    " cannot fit in " + std::to_string(r.remaining()) +
                    " remaining bytes");
  std::vector<memo::MemoDb::Entry> out;
  out.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    memo::MemoDb::Entry e;
    const auto kind = r.u8();
    if (kind >= memo::kNumOpKinds)
      throw WireError("entry kind out of range: " + std::to_string(kind));
    e.kind = memo::OpKind(kind);
    const auto kn = r.u32();
    if (kn > r.remaining() / sizeof(float))
      throw WireError("entry key length " + std::to_string(kn) +
                      " exceeds remaining frame bytes");
    e.key.resize(kn);
    for (auto& k : e.key) k = r.f32();
    e.norm = r.f64();
    const auto pn = r.u32();
    if (pn > r.remaining() / (2 * sizeof(float)))
      throw WireError("entry probe length " + std::to_string(pn) +
                      " exceeds remaining frame bytes");
    e.probe.resize(pn);
    for (auto& p : e.probe) {
      const float re = r.f32();
      const float im = r.f32();
      p = cfloat(re, im);
    }
    e.value_cf = r.u32();
    const auto has_value = r.u8();
    if (has_value != 0) {
      if (e.value_cf > r.remaining() / (2 * sizeof(float)))
        throw WireError("entry value length " + std::to_string(e.value_cf) +
                        " exceeds remaining frame bytes");
      e.value.resize(e.value_cf);
      for (auto& v : e.value) {
        const float re = r.f32();
        const float im = r.f32();
        v = cfloat(re, im);
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

void encode_error(WireWriter& w, const ErrorInfo& e) {
  w.u32(e.code);
  w.u32(mlr::u32(e.message.size()));
  w.bytes(std::as_bytes(std::span<const char>(e.message)));
}

ErrorInfo decode_error(WireReader& r) {
  ErrorInfo e;
  e.code = r.u32();
  const auto n = r.u32();
  const auto b = r.bytes(n);
  e.message.assign(reinterpret_cast<const char*>(b.data()), b.size());
  return e;
}

}  // namespace mlr::net
