#include "offload/offload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mlr::offload {

namespace {
// Iteration phases in execution order (Init excluded).
constexpr std::array<Phase, 4> kIterPhases{Phase::Lsp, Phase::Rsp,
                                           Phase::LambdaUpdate,
                                           Phase::PenaltyUpdate};
int phase_pos(Phase p) {
  for (std::size_t i = 0; i < kIterPhases.size(); ++i)
    if (kIterPhases[i] == p) return int(i);
  return -1;
}
}  // namespace

std::optional<Phase> Trace::next_accessor(const std::string& var,
                                          Phase p) const {
  auto it = access.find(var);
  if (it == access.end()) return std::nullopt;
  const int pos = phase_pos(p);
  if (pos < 0) return std::nullopt;
  for (int step = 1; step <= int(kIterPhases.size()); ++step) {
    const Phase q = kIterPhases[size_t((pos + step) % kIterPhases.size())];
    if (it->second[size_t(int(q))].accessed) return q;
  }
  return std::nullopt;
}

double Trace::mpd(const std::string& var, Phase p) const {
  auto it = access.find(var);
  if (it == access.end()) return 0.0;
  const auto& pa = it->second[size_t(int(p))];
  if (!pa.accessed) return 0.0;
  auto q = next_accessor(var, p);
  if (!q.has_value()) {
    // Sole accessor: the window is the rest of the iteration plus the run-up
    // to the same phase next iteration.
    return iteration_s;
  }
  const auto& qa = it->second[size_t(int(*q))];
  double gap = qa.first - pa.last;
  if (gap < 0) gap += iteration_s;  // next access is in the following iteration
  return gap;
}

void TraceProfiler::phase_begin(Phase p, sim::VTime t) {
  current_ = p;
  if (p == Phase::Lsp) {
    // New iteration: archive the previous one.
    if (in_iteration_) {
      building_.iteration_s = t - building_.phase_begin[size_t(int(Phase::Lsp))];
      last_ = building_;
      building_ = Trace{};
    }
    in_iteration_ = true;
  }
  if (in_iteration_) building_.phase_begin[size_t(int(p))] = t;
}

sim::VTime TraceProfiler::on_access(const std::string& var, sim::VTime t) {
  if (in_iteration_) {
    auto& pa = building_.access[var][size_t(int(current_))];
    if (!pa.accessed) {
      pa.accessed = true;
      pa.first = t;
    }
    pa.last = t;
    ++pa.count;
  }
  return t;
}

void TraceProfiler::phase_end(Phase p, sim::VTime t) {
  if (in_iteration_) building_.phase_end[size_t(int(p))] = t;
  if (in_iteration_ && p == Phase::PenaltyUpdate) {
    building_.iteration_s =
        t - building_.phase_begin[size_t(int(Phase::Lsp))];
    last_ = building_;
    building_ = Trace{};
    in_iteration_ = false;
  }
}

// --- Planner ----------------------------------------------------------------

Planner::Planner(Trace trace, std::vector<VariableInfo> candidates,
                 sim::SsdSpec ssd)
    : trace_(std::move(trace)), candidates_(std::move(candidates)), ssd_(ssd) {
  MLR_CHECK(trace_.iteration_s > 0);
}

bool Planner::feasible(const VariableInfo& var, Phase p) const {
  auto it = trace_.access.find(var.name);
  if (it == trace_.access.end()) return false;
  if (!it->second[size_t(int(p))].accessed) return false;
  const double mpd = trace_.mpd(var.name, p);
  // Constraint (2): PD > 0 — a next access in the same phase window with no
  // gap disables offloading.
  if (mpd <= 0) return false;
  // Constraint (3): offload (write) must fit inside the MPD window; the
  // prefetch (read) must too, since it happens after the offload
  // (constraint 1).
  const sim::Ssd dev(ssd_);
  const double off_s = dev.write_duration(var.bytes);
  const double pre_s = dev.read_duration(var.bytes);
  return off_s + pre_s < mpd;
}

std::vector<Plan> Planner::enumerate() const {
  // Per-variable options: not offloaded, or offloaded after any feasible
  // phase (prefetch target = next accessor), each with eager or just-in-time
  // prefetch. The cross-product is small (≤3 variables in practice).
  struct Option {
    std::optional<PlanEntry> entry;  // nullopt = keep resident
  };
  std::vector<std::vector<Option>> per_var;
  for (const auto& v : candidates_) {
    std::vector<Option> opts;
    opts.push_back({std::nullopt});
    for (Phase p : kIterPhases) {
      if (!feasible(v, p)) continue;
      auto q = trace_.next_accessor(v.name, p);
      if (!q.has_value()) q = p;  // sole accessor: back before the same phase
      for (bool eager : {false, true}) {
        opts.push_back({PlanEntry{v.name, v.bytes, p, *q, eager}});
      }
    }
    per_var.push_back(std::move(opts));
  }
  std::vector<Plan> plans;
  std::vector<std::size_t> pick(per_var.size(), 0);
  for (;;) {
    Plan plan;
    for (std::size_t i = 0; i < per_var.size(); ++i) {
      const auto& o = per_var[i][pick[i]];
      if (o.entry.has_value()) plan.entries.push_back(*o.entry);
    }
    score(plan);
    plans.push_back(std::move(plan));
    // Odometer increment.
    std::size_t i = 0;
    for (; i < pick.size(); ++i) {
      if (++pick[i] < per_var[i].size()) break;
      pick[i] = 0;
    }
    if (i == pick.size()) break;
    if (plans.size() > 4096) break;  // combinatorial safety valve
  }
  return plans;
}

void Planner::score(Plan& plan) const {
  // Baseline peak = all candidates resident.
  double total = 0;
  for (const auto& v : candidates_) total += v.bytes;
  if (total <= 0 || plan.entries.empty()) {
    plan.memory_saving_bytes = 0;
    plan.memory_saving_frac = 0;
    plan.perf_loss_frac = 0;
    return;
  }
  const sim::Ssd dev(ssd_);
  // A variable is absent from (last access in the offload phase + write
  // time) until (first access in the prefetch phase), cyclically. Peak RSS
  // is evaluated at every access instant of every candidate, which covers
  // the iteration's residency extremes.
  auto absent_at = [&](const PlanEntry& e, double t) {
    const auto& pa = trace_.access.at(e.var)[size_t(int(e.offload_after))];
    const auto& qa = trace_.access.at(e.var)[size_t(int(e.prefetch_for))];
    const double from = pa.last + dev.write_duration(e.bytes);
    const double to = qa.first;
    if (from <= to) return t > from && t < to;
    return t > from || t < to;  // window wraps into the next iteration
  };
  // Probe instants: every access time plus phase boundaries/midpoints (the
  // program's true RSS peak sits mid-LSP where the solver workspaces live,
  // so the relevant question is how much is absent *then*).
  std::vector<double> probes;
  for (const auto& [name, phases] : trace_.access) {
    for (const auto& pa : phases) {
      if (!pa.accessed) continue;
      probes.push_back(pa.first);
      probes.push_back(pa.last);
    }
  }
  for (Phase p : kIterPhases) {
    const double b = trace_.phase_begin[size_t(int(p))];
    const double e = trace_.phase_end[size_t(int(p))];
    probes.push_back(b);
    probes.push_back(0.5 * (b + e));
  }
  // Memory saving = the largest simultaneous absence the plan achieves —
  // the peak-RSS reduction when the program peak falls inside that window
  // (LSP dominates the iteration, so it does).
  double best_absent = 0;
  for (double t : probes) {
    double absent = 0;
    for (const auto& e : plan.entries) {
      if (absent_at(e, t)) absent += e.bytes;
    }
    best_absent = std::max(best_absent, absent);
  }
  plan.memory_saving_bytes = best_absent;
  plan.memory_saving_frac = best_absent / total;
  // Performance loss: exposed prefetch time — max(0, read − slack), where
  // slack is the window after the offload completes; plus a queueing share
  // for the shared SSD channel when several variables move.
  double exposed = 0;
  for (const auto& e : plan.entries) {
    const double mpd = trace_.mpd(e.var, e.offload_after);
    const double off_s = dev.write_duration(e.bytes);
    const double pre_s = dev.read_duration(e.bytes);
    const double slack = mpd - off_s;
    exposed += std::max(0.0, pre_s - slack);
    exposed += 0.1 * (off_s + pre_s) * double(plan.entries.size() - 1);
  }
  plan.perf_loss_frac = exposed / trace_.iteration_s;
}

Plan Planner::best() const {
  auto plans = enumerate();
  MLR_CHECK(!plans.empty());
  const Plan* best = &plans.front();
  for (const auto& p : plans) {
    if (p.entries.empty()) continue;
    if (best->entries.empty() || p.mt() > best->mt()) best = &p;
  }
  return *best;
}

// --- AdmmOffloadPolicy --------------------------------------------------------

AdmmOffloadPolicy::AdmmOffloadPolicy(Plan plan, Trace trace, sim::SsdSpec ssd)
    : plan_(std::move(plan)), trace_(std::move(trace)), ssd_(ssd) {
  for (const auto& e : plan_.entries) {
    vars_[e.var] = VarState{&e, /*resident=*/true, 0, false};
  }
  // Re-point entry pointers at our stored copy (vector may have moved).
  for (auto& [name, st] : vars_) {
    for (const auto& e : plan_.entries) {
      if (e.var == name) st.entry = &e;
    }
  }
}

void AdmmOffloadPolicy::record(sim::VTime t) {
  double off = 0;
  for (const auto& [name, st] : vars_) {
    if (!st.resident) off += st.entry->bytes;
  }
  stats_.offloaded_timeline.push_back({t, off});
}

void AdmmOffloadPolicy::do_offload(VarState& st, sim::VTime t) {
  const sim::VTime written = ssd_.write(t, st.entry->bytes);
  st.resident = false;
  st.prefetch_issued = false;
  ++stats_.offloads;
  record(t);
  if (st.entry->eager_prefetch) {
    st.ready_at = ssd_.read(written, st.entry->bytes);
    st.prefetch_issued = true;
    ++stats_.prefetches;
  }
}

void AdmmOffloadPolicy::phase_begin(Phase p, sim::VTime t) {
  current_ = p;
  access_count_.clear();
  // Just-in-time prefetches for variables needed by this phase are issued at
  // the previous phase boundary; issue any still-pending ones now (worst
  // case: fully exposed at first access).
  for (auto& [name, st] : vars_) {
    if (st.resident || st.prefetch_issued) continue;
    if (st.entry->prefetch_for == p) {
      st.ready_at = ssd_.read(t, st.entry->bytes);
      st.prefetch_issued = true;
      ++stats_.prefetches;
    }
  }
}

sim::VTime AdmmOffloadPolicy::on_access(const std::string& var, sim::VTime t) {
  auto it = vars_.find(var);
  if (it == vars_.end()) return t;
  auto& st = it->second;
  if (st.resident) return after_access(var, st, t);
  // Constraint (4): the phase must wait for the prefetch.
  if (!st.prefetch_issued) {
    st.ready_at = ssd_.read(t, st.entry->bytes);
    st.prefetch_issued = true;
    ++stats_.demand_fetches;
  }
  const sim::VTime ready = std::max(t, st.ready_at);
  stats_.exposed_stall_s += ready - t;
  st.resident = true;
  st.prefetch_issued = false;
  record(ready);
  return after_access(var, st, ready);
}

sim::VTime AdmmOffloadPolicy::after_access(const std::string& var,
                                           VarState& st, sim::VTime t) {
  // Intra-phase offload: once the traced number of accesses for this phase
  // has happened, the variable is dead until its prefetch phase.
  if (st.entry->offload_after != current_) return t;
  auto it = trace_.access.find(var);
  if (it == trace_.access.end()) return t;
  const int traced = it->second[size_t(int(current_))].count;
  if (traced > 0 && ++access_count_[var] >= traced && st.resident) {
    do_offload(st, t);
  }
  return t;
}

void AdmmOffloadPolicy::phase_end(Phase p, sim::VTime t) {
  // Backstop: anything the intra-phase path did not offload (e.g. when no
  // trace counts are available) goes out at the phase boundary.
  for (auto& [name, st] : vars_) {
    if (!st.resident) continue;
    if (st.entry->offload_after == p) do_offload(st, t);
  }
}

// --- GreedyOffloadPolicy --------------------------------------------------------

GreedyOffloadPolicy::GreedyOffloadPolicy(std::vector<VariableInfo> vars,
                                         sim::SsdSpec ssd)
    : ssd_(ssd) {
  for (const auto& v : vars) vars_[v.name] = {v.bytes, true, false};
}

void GreedyOffloadPolicy::record(sim::VTime t) {
  double off = 0;
  for (const auto& [name, st] : vars_) {
    if (!st.resident) off += st.bytes;
  }
  stats_.offloaded_timeline.push_back({t, off});
}

sim::VTime GreedyOffloadPolicy::on_access(const std::string& var,
                                          sim::VTime t) {
  auto it = vars_.find(var);
  if (it == vars_.end()) return t;
  auto& st = it->second;
  st.touched_this_phase = true;
  sim::VTime ready = t;
  if (!st.resident) {
    // Demand fetch, fully exposed.
    ready = ssd_.read(t, st.bytes);
    stats_.exposed_stall_s += ready - t;
    ++stats_.demand_fetches;
  }
  // "Immediately offloads … upon generation": write the variable straight
  // back out after this use; the write is exposed on the critical path too.
  const sim::VTime written = ssd_.write(ready, st.bytes);
  stats_.exposed_stall_s += written - ready;
  ++stats_.offloads;
  st.resident = false;
  record(written);
  return written;
}

void GreedyOffloadPolicy::phase_end(Phase p, sim::VTime t) {
  // Variables generated but never touched this phase are flushed at the
  // boundary (covers the initial state after allocation).
  for (auto& [name, st] : vars_) {
    if (st.resident) {
      (void)ssd_.write(t, st.bytes);
      st.resident = false;
      ++stats_.offloads;
    }
    st.touched_this_phase = false;
  }
  record(t);
}

// --- LruOffloadPolicy ------------------------------------------------------------

LruOffloadPolicy::LruOffloadPolicy(std::vector<VariableInfo> vars,
                                   double budget_bytes, sim::SsdSpec ssd)
    : ssd_(ssd), budget_(budget_bytes) {
  for (const auto& v : vars) vars_[v.name] = {v.bytes, false, 0};
}

void LruOffloadPolicy::record(sim::VTime t) {
  double off = 0;
  for (const auto& [name, st] : vars_) {
    if (!st.resident) off += st.bytes;
  }
  stats_.offloaded_timeline.push_back({t, off});
}

sim::VTime LruOffloadPolicy::on_access(const std::string& var, sim::VTime t) {
  auto it = vars_.find(var);
  if (it == vars_.end()) return t;
  auto& st = it->second;
  sim::VTime now = t;
  if (!st.resident) {
    // Evict LRU residents until the fetch fits the budget.
    while (resident_bytes_ + st.bytes > budget_) {
      VarState* lru = nullptr;
      for (auto& [n, s] : vars_) {
        if (!s.resident || &s == &st) continue;
        if (lru == nullptr || s.last_used < lru->last_used) lru = &s;
      }
      if (lru == nullptr) break;  // nothing evictable; exceed budget
      now = ssd_.write(now, lru->bytes);  // eviction write is exposed too
      lru->resident = false;
      resident_bytes_ -= lru->bytes;
      ++stats_.offloads;
    }
    now = ssd_.read(now, st.bytes);
    stats_.exposed_stall_s += now - t;
    ++stats_.demand_fetches;
    st.resident = true;
    resident_bytes_ += st.bytes;
    record(now);
  }
  st.last_used = now;
  return now;
}

// --- curve combination ------------------------------------------------------------

std::vector<sim::MemoryTracker::Sample> apply_offload_to_rss(
    const std::vector<sim::MemoryTracker::Sample>& base,
    const std::vector<sim::MemoryTracker::Sample>& offloaded) {
  std::vector<sim::MemoryTracker::Sample> out;
  std::size_t bi = 0, oi = 0;
  double cur_base = 0, cur_off = 0;
  while (bi < base.size() || oi < offloaded.size()) {
    const double tb =
        bi < base.size() ? base[bi].t : std::numeric_limits<double>::max();
    const double to = oi < offloaded.size()
                          ? offloaded[oi].t
                          : std::numeric_limits<double>::max();
    double t;
    if (tb <= to) {
      cur_base = base[bi++].bytes;
      t = tb;
    } else {
      cur_off = offloaded[oi++].bytes;
      t = to;
    }
    out.push_back({t, std::max(0.0, cur_base - cur_off)});
  }
  return out;
}

}  // namespace mlr::offload
