// ADMM-Offload (paper §5.1): save CPU memory by moving the big ADMM
// variables (ψ, λ, g) to SSD between the phases that touch them.
//
// Components:
//  * TraceProfiler     — observes one profiled iteration and records, per
//                        variable, which phases access it (the "first/last
//                        access" data the paper gathers from one iteration).
//  * Planner           — enumerates offload/prefetch plans subject to the
//                        paper's four constraints and scores them with
//                        MT = memory-saving × 1/performance-loss, returning
//                        the argmax plan.
//  * AdmmOffloadPolicy — executes a plan at run time: offload at the chosen
//                        phase boundary, prefetch so the next consumer phase
//                        (usually) does not stall; stalls that do happen are
//                        exposed via delayed on_access times.
//  * GreedyOffloadPolicy — baseline: offload immediately after every use,
//                        fetch on demand (fully exposed reads).
//  * LruOffloadPolicy  — baseline: capacity-budget eviction of the least-
//                        recently-used variable, fetch on demand.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "admm/solver.hpp"
#include "sim/device.hpp"

namespace mlr::offload {

using admm::Phase;
using admm::kNumPhases;

/// An offloadable (alias-free, paper §5.1) variable.
struct VariableInfo {
  std::string name;
  double bytes = 0;
};

/// Which phases touch a variable, from the profiled iteration.
struct PhaseAccess {
  bool accessed = false;
  sim::VTime first = 0, last = 0;  ///< absolute vtimes within the profile
  int count = 0;                   ///< number of accesses in the phase
};

/// Access trace of one ADMM iteration.
struct Trace {
  std::map<std::string, std::array<PhaseAccess, kNumPhases>> access;
  std::array<sim::VTime, kNumPhases> phase_begin{};
  std::array<sim::VTime, kNumPhases> phase_end{};
  double iteration_s = 0;  ///< duration of the profiled iteration

  /// Next phase (cyclically, skipping Init) accessing `var` strictly after
  /// phase `p`; nullopt when no other phase touches it.
  [[nodiscard]] std::optional<Phase> next_accessor(const std::string& var,
                                                   Phase p) const;
  /// Maximum prefetch distance of `var` w.r.t. offloading after phase `p`:
  /// the gap between its last access in `p` and its first access in the next
  /// accessor phase (wrapping adds the remaining iteration time).
  [[nodiscard]] double mpd(const std::string& var, Phase p) const;
};

/// PhaseObserver that records the trace during one profiled iteration.
class TraceProfiler : public admm::PhaseObserver {
 public:
  void phase_begin(Phase p, sim::VTime t) override;
  sim::VTime on_access(const std::string& var, sim::VTime t) override;
  void phase_end(Phase p, sim::VTime t) override;

  /// Finish profiling (call after ≥1 full iteration) and return the trace of
  /// the *last complete* iteration.
  [[nodiscard]] Trace trace() const { return last_; }

 private:
  Phase current_ = Phase::Init;
  Trace building_, last_;
  bool in_iteration_ = false;
};

/// One variable's offload/prefetch decision inside a plan.
struct PlanEntry {
  std::string var;
  double bytes = 0;
  Phase offload_after{};   ///< write to SSD once this phase's last use ends
  Phase prefetch_for{};    ///< must be resident again when this phase starts
  bool eager_prefetch = false;  ///< prefetch right after offload completes
};

struct Plan {
  std::vector<PlanEntry> entries;
  double memory_saving_bytes = 0;  ///< estimated peak-RSS reduction
  double memory_saving_frac = 0;   ///< M (fraction of baseline peak)
  double perf_loss_frac = 0;       ///< T (fraction of iteration time)
  /// MT = M · (1/T); higher is better (paper §5.1).
  [[nodiscard]] double mt() const {
    return perf_loss_frac > 1e-9 ? memory_saving_frac / perf_loss_frac
                                 : memory_saving_frac * 1e9;
  }
};

/// Enumerates candidate plans under the four constraints and returns the one
/// with the largest MT.
class Planner {
 public:
  Planner(Trace trace, std::vector<VariableInfo> candidates,
          sim::SsdSpec ssd = {});

  /// All feasible plans (constraints 1–4 satisfied), including the empty one.
  [[nodiscard]] std::vector<Plan> enumerate() const;
  /// argmax MT over enumerate(), excluding the empty plan unless nothing
  /// else is feasible.
  [[nodiscard]] Plan best() const;

  /// Feasibility of offloading `var` after phase `p` (constraints 2 and 3).
  [[nodiscard]] bool feasible(const VariableInfo& var, Phase p) const;

 private:
  void score(Plan& plan) const;

  Trace trace_;
  std::vector<VariableInfo> candidates_;
  sim::SsdSpec ssd_;
};

/// Runtime statistics common to all offload policies.
struct OffloadStats {
  double exposed_stall_s = 0;  ///< prefetch/fetch time on the critical path
  u64 offloads = 0, prefetches = 0, demand_fetches = 0;
  /// (vtime, offloaded bytes) curve; subtract from the baseline RSS curve to
  /// obtain the policy's RSS (Fig 13).
  std::vector<sim::MemoryTracker::Sample> offloaded_timeline;
  [[nodiscard]] double current_offloaded() const {
    return offloaded_timeline.empty() ? 0.0 : offloaded_timeline.back().bytes;
  }
};

/// Plan-driven policy (the paper's ADMM-Offload).
class AdmmOffloadPolicy : public admm::PhaseObserver {
 public:
  /// `trace` enables intra-phase offloading: a variable is written out right
  /// after its traced last access in the offload phase instead of waiting
  /// for the phase boundary (Fig 7's behaviour).
  AdmmOffloadPolicy(Plan plan, Trace trace = {}, sim::SsdSpec ssd = {});

  void phase_begin(Phase p, sim::VTime t) override;
  sim::VTime on_access(const std::string& var, sim::VTime t) override;
  void phase_end(Phase p, sim::VTime t) override;

  [[nodiscard]] const OffloadStats& stats() const { return stats_; }
  [[nodiscard]] const Plan& plan() const { return plan_; }

 private:
  struct VarState {
    const PlanEntry* entry = nullptr;
    bool resident = true;
    sim::VTime ready_at = 0;  ///< when a pending prefetch lands
    bool prefetch_issued = false;
  };
  void record(sim::VTime t);
  void do_offload(VarState& st, sim::VTime t);
  sim::VTime after_access(const std::string& var, VarState& st, sim::VTime t);

  Plan plan_;
  Trace trace_;
  sim::Ssd ssd_;
  Phase current_ = Phase::Init;
  std::map<std::string, int> access_count_;
  std::map<std::string, VarState> vars_;
  OffloadStats stats_;
};

/// Baseline: offload every tracked variable the moment its phase ends, fetch
/// on demand with the read fully exposed.
class GreedyOffloadPolicy : public admm::PhaseObserver {
 public:
  GreedyOffloadPolicy(std::vector<VariableInfo> vars, sim::SsdSpec ssd = {});

  sim::VTime on_access(const std::string& var, sim::VTime t) override;
  void phase_end(Phase p, sim::VTime t) override;

  [[nodiscard]] const OffloadStats& stats() const { return stats_; }

 private:
  void record(sim::VTime t);
  struct VarState {
    double bytes = 0;
    bool resident = true;
    bool touched_this_phase = false;
  };
  sim::Ssd ssd_;
  std::map<std::string, VarState> vars_;
  OffloadStats stats_;
};

/// Baseline: LRU under a residency budget; eviction happens only when a
/// fetch would exceed the budget (the policy the paper argues against: it
/// decides *when to offload* but never *when to prefetch*).
class LruOffloadPolicy : public admm::PhaseObserver {
 public:
  LruOffloadPolicy(std::vector<VariableInfo> vars, double budget_bytes,
                   sim::SsdSpec ssd = {});

  sim::VTime on_access(const std::string& var, sim::VTime t) override;

  [[nodiscard]] const OffloadStats& stats() const { return stats_; }

 private:
  void record(sim::VTime t);
  struct VarState {
    double bytes = 0;
    bool resident = false;   ///< variables materialize on first access
    sim::VTime last_used = 0;
  };
  sim::Ssd ssd_;
  double budget_;
  double resident_bytes_ = 0;
  std::map<std::string, VarState> vars_;
  OffloadStats stats_;
};

/// Combine a baseline RSS curve with a policy's offloaded-bytes curve:
/// rss(t) = base(t) − offloaded(t). Returns a merged step curve.
std::vector<sim::MemoryTracker::Sample> apply_offload_to_rss(
    const std::vector<sim::MemoryTracker::Sample>& base,
    const std::vector<sim::MemoryTracker::Sample>& offloaded);

}  // namespace mlr::offload
