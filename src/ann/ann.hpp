// Approximate nearest-neighbour indexes — the repo's substitute for Faiss.
//
// The paper's index database organizes encoder keys for similarity search
// (§4.3.2). It uses Faiss' *cluster-based* IVF index because it supports
// dynamic insertion cheaply, explicitly rejecting graph indexes (HNSW) whose
// insertions are expensive. This module implements both options from scratch
// so that design choice can be reproduced (bench_ablation_ann):
//   * FlatIndex     — exact scan, ground truth for recall measurements
//   * IvfFlatIndex  — k-means coarse quantizer + inverted lists, nprobe search
//   * NswIndex      — navigable-small-world graph, greedy beam search
// All indexes count distance computations so insert/search cost can be
// compared architecture-to-architecture.
#pragma once

#include <atomic>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlr {
class ThreadPool;
}

namespace mlr::ann {

struct Neighbor {
  u64 id = 0;
  float dist = 0.0f;  ///< L2 distance
};

/// Common interface: ids are caller-assigned, vectors have fixed dimension.
class Index {
 public:
  explicit Index(i64 dim) : dim_(dim) {}
  virtual ~Index() = default;

  virtual void add(u64 id, std::span<const float> vec) = 0;
  /// k nearest neighbours, ascending distance.
  [[nodiscard]] virtual std::vector<Neighbor> search(std::span<const float> q,
                                                     i64 k) const = 0;
  /// Batched search over `nq = queries.size() / dim()` vectors stored
  /// contiguously (Faiss layout). Result i is bit-identical to
  /// search(queries[i], k); when `pool` is non-null the queries fan out
  /// across its workers. Safe to call concurrently with other searches but
  /// not with add(): the caller serializes insertion against search rounds
  /// (the MemoDb defers a stage's insertions until its queries finished).
  /// Distance evaluations are accumulated per query and folded into
  /// distance_evals() with one atomic add each, so reported counts match
  /// the looped-search total for any pool width. Virtual so an index can
  /// pick a finer fan-out than whole queries (IvfFlatIndex splits a single
  /// query's inverted-list scan across workers above a size threshold);
  /// every override must keep results and counts identical to the base.
  [[nodiscard]] virtual std::vector<std::vector<Neighbor>> search_batch(
      std::span<const float> queries, i64 k, ThreadPool* pool = nullptr) const;
  /// Convenience single-nearest.
  [[nodiscard]] std::optional<Neighbor> nearest(std::span<const float> q) const {
    auto r = search(q, 1);
    if (r.empty()) return std::nullopt;
    return r.front();
  }

  [[nodiscard]] i64 dim() const { return dim_; }
  [[nodiscard]] virtual std::size_t size() const = 0;
  /// Cumulative number of vector-distance evaluations (insert + search).
  [[nodiscard]] u64 distance_evals() const {
    return dist_evals_.load(std::memory_order_relaxed);
  }

 protected:
  float l2(std::span<const float> a, std::span<const float> b) const;

  /// RAII: route this thread's count_dist() increments into `*local` while
  /// alive, then fold them into the shared counter with ONE atomic add.
  /// Pool workers are long-lived, so the pointer is reset even when the
  /// scoped search throws — otherwise the next search on that worker would
  /// write through a dangling stack address.
  class DistAccScope {
   public:
    DistAccScope(const Index& idx, u64* local) : idx_(idx), local_(local) {
      tl_dist_acc_ = local;
    }
    ~DistAccScope() {
      tl_dist_acc_ = nullptr;
      idx_.dist_evals_.fetch_add(*local_, std::memory_order_relaxed);
    }
    DistAccScope(const DistAccScope&) = delete;
    DistAccScope& operator=(const DistAccScope&) = delete;

   private:
    const Index& idx_;
    u64* local_;
  };

  i64 dim_;

 private:
  /// Count `n` distance evaluations. Searches run concurrently on the pool
  /// (the const search paths share this counter), so the total lives in an
  /// atomic; search_batch() redirects its workers into a per-query local
  /// accumulator first so the hot loop stays free of shared-cacheline
  /// traffic.
  void count_dist(u64 n) const {
    if (tl_dist_acc_ != nullptr) {
      *tl_dist_acc_ += n;
    } else {
      dist_evals_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  mutable std::atomic<u64> dist_evals_{0};
  static thread_local u64* tl_dist_acc_;
};

/// Exact exhaustive index.
class FlatIndex : public Index {
 public:
  explicit FlatIndex(i64 dim) : Index(dim) {}
  void add(u64 id, std::span<const float> vec) override;
  [[nodiscard]] std::vector<Neighbor> search(std::span<const float> q,
                                             i64 k) const override;
  [[nodiscard]] std::size_t size() const override { return ids_.size(); }

 private:
  std::vector<u64> ids_;
  std::vector<float> data_;  // size() * dim_
};

/// IVF-Flat: k-means coarse quantizer, inverted lists, nprobe-limited search.
/// Insertion is O(nlist) distance evals (assign to nearest centroid + append)
/// — the "minimal overhead dynamic insertion" property the paper wants.
struct IvfParams {
  i64 nlist = 16;      ///< number of coarse clusters
  i64 nprobe = 4;      ///< clusters scanned per query
  i64 train_size = 0;  ///< auto-train after this many adds (0 → 8·nlist)
  int kmeans_iters = 8;
  /// search_batch splits ONE query's inverted-list scan across pool workers
  /// once its probed candidate count reaches this (intra-query parallelism
  /// for large lists / large k). 0 disables the split; results and distance
  /// counts are identical either way.
  i64 split_min = 4096;
};

class IvfFlatIndex : public Index {
 public:
  using Params = IvfParams;

  IvfFlatIndex(i64 dim, Params p = {}, u64 seed = 1234);

  void add(u64 id, std::span<const float> vec) override;
  [[nodiscard]] std::vector<Neighbor> search(std::span<const float> q,
                                             i64 k) const override;
  /// Batched search with intra-query parallelism: a query whose probed
  /// inverted lists hold ≥ params.split_min candidates has its distance
  /// scan split across pool workers (the ROADMAP follow-up for large lists)
  /// instead of riding one worker. Candidates are gathered and ranked in
  /// exactly the serial scan order, so neighbours and distance_evals()
  /// match search() / the base search_batch() bit-for-bit.
  [[nodiscard]] std::vector<std::vector<Neighbor>> search_batch(
      std::span<const float> queries, i64 k,
      ThreadPool* pool = nullptr) const override;
  [[nodiscard]] std::size_t size() const override { return total_; }

  /// Explicitly train the coarse quantizer on the vectors seen so far
  /// (otherwise training happens automatically once train_size adds arrive).
  void train();
  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] i64 nlist() const { return params_.nlist; }

 private:
  struct ListEntry {
    u64 id;
    u64 offset;  // into data_
  };

  i64 assign_list(std::span<const float> vec) const;
  void kmeans();

  Params params_;
  Rng rng_;
  bool trained_ = false;
  std::size_t total_ = 0;
  std::vector<float> centroids_;              // nlist * dim
  std::vector<std::vector<ListEntry>> lists_; // inverted lists
  std::vector<float> data_;                   // all vectors, append-only
  // Pre-training holding area (scanned exhaustively until trained).
  std::vector<u64> pending_ids_;
};

/// Navigable-small-world graph index (single layer HNSW-lite). Insertion
/// performs a beam search over the existing graph — cost grows with index
/// size, which is exactly why the paper avoids graph indexes for a database
/// that grows every iteration.
struct NswParams {
  i64 m = 8;    ///< neighbours kept per node
  i64 ef = 24;  ///< beam width for search/insert
};

class NswIndex : public Index {
 public:
  using Params = NswParams;

  NswIndex(i64 dim, Params p = {}, u64 seed = 4321);

  void add(u64 id, std::span<const float> vec) override;
  [[nodiscard]] std::vector<Neighbor> search(std::span<const float> q,
                                             i64 k) const override;
  [[nodiscard]] std::size_t size() const override { return ids_.size(); }

 private:
  // Internal beam search returning node indexes.
  [[nodiscard]] std::vector<std::pair<float, i64>> beam_search(
      std::span<const float> q, i64 ef) const;
  std::span<const float> vec_of(i64 node) const {
    return {data_.data() + size_t(node) * size_t(dim_), size_t(dim_)};
  }

  Params params_;
  Rng rng_;
  std::vector<u64> ids_;
  std::vector<float> data_;
  std::vector<std::vector<i64>> edges_;
};

}  // namespace mlr::ann
