#include "ann/ann.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace mlr::ann {

thread_local u64* Index::tl_dist_acc_ = nullptr;

float Index::l2(std::span<const float> a, std::span<const float> b) const {
  MLR_CHECK(i64(a.size()) == dim_ && i64(b.size()) == dim_);
  count_dist(1);
  double s = 0;
  for (i64 i = 0; i < dim_; ++i) {
    const double d = double(a[size_t(i)]) - double(b[size_t(i)]);
    s += d * d;
  }
  return float(std::sqrt(s));
}

std::vector<std::vector<Neighbor>> Index::search_batch(
    std::span<const float> queries, i64 k, ThreadPool* pool) const {
  MLR_CHECK(dim_ >= 1 && i64(queries.size()) % dim_ == 0);
  const i64 nq = i64(queries.size()) / dim_;
  std::vector<std::vector<Neighbor>> out(static_cast<size_t>(nq));
  auto search_one = [&](i64 i) {
    std::span<const float> q{queries.data() + size_t(i) * size_t(dim_),
                             size_t(dim_)};
    u64 local = 0;
    DistAccScope scope(*this, &local);
    out[size_t(i)] = search(q, k);
  };
  if (pool != nullptr) {
    parallel_for(*pool, 0, nq, search_one);
  } else {
    for (i64 i = 0; i < nq; ++i) search_one(i);
  }
  return out;
}

// --- FlatIndex ---------------------------------------------------------------

void FlatIndex::add(u64 id, std::span<const float> vec) {
  MLR_CHECK(i64(vec.size()) == dim_);
  ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
}

std::vector<Neighbor> FlatIndex::search(std::span<const float> q,
                                        i64 k) const {
  std::vector<Neighbor> all;
  all.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    std::span<const float> v{data_.data() + i * size_t(dim_), size_t(dim_)};
    all.push_back({ids_[i], l2(q, v)});
  }
  const auto kk = std::min<std::size_t>(size_t(std::max<i64>(k, 0)), all.size());
  std::partial_sort(all.begin(), all.begin() + i64(kk), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.dist < b.dist;
                    });
  all.resize(kk);
  return all;
}

// --- IvfFlatIndex -------------------------------------------------------------

IvfFlatIndex::IvfFlatIndex(i64 dim, Params p, u64 seed)
    : Index(dim), params_(p), rng_(seed) {
  MLR_CHECK(p.nlist >= 1 && p.nprobe >= 1);
  if (params_.train_size == 0) params_.train_size = 8 * params_.nlist;
  lists_.resize(size_t(params_.nlist));
}

void IvfFlatIndex::add(u64 id, std::span<const float> vec) {
  MLR_CHECK(i64(vec.size()) == dim_);
  const u64 offset = data_.size();
  data_.insert(data_.end(), vec.begin(), vec.end());
  ++total_;
  if (!trained_) {
    pending_ids_.push_back(id);
    if (i64(pending_ids_.size()) >= params_.train_size) train();
    return;
  }
  const i64 list = assign_list(vec);
  lists_[size_t(list)].push_back({id, offset});
}

i64 IvfFlatIndex::assign_list(std::span<const float> vec) const {
  i64 best = 0;
  float bd = std::numeric_limits<float>::max();
  for (i64 c = 0; c < params_.nlist; ++c) {
    std::span<const float> cen{centroids_.data() + size_t(c) * size_t(dim_),
                               size_t(dim_)};
    const float d = l2(vec, cen);
    if (d < bd) {
      bd = d;
      best = c;
    }
  }
  return best;
}

void IvfFlatIndex::kmeans() {
  const i64 n = i64(total_);
  const i64 k = std::min<i64>(params_.nlist, n);
  // Seed centroids with distinct random vectors.
  centroids_.assign(size_t(params_.nlist) * size_t(dim_), 0.0f);
  std::vector<i64> perm(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) perm[size_t(i)] = i;
  std::shuffle(perm.begin(), perm.end(), rng_.engine());
  for (i64 c = 0; c < k; ++c) {
    const float* src = data_.data() + size_t(perm[size_t(c)]) * size_t(dim_);
    std::copy(src, src + dim_, centroids_.begin() + i64(size_t(c) * size_t(dim_)));
  }
  std::vector<i64> assign(static_cast<size_t>(n), 0);
  std::vector<double> sums;
  std::vector<i64> counts;
  for (int iter = 0; iter < params_.kmeans_iters; ++iter) {
    for (i64 i = 0; i < n; ++i) {
      std::span<const float> v{data_.data() + size_t(i) * size_t(dim_),
                               size_t(dim_)};
      assign[size_t(i)] = assign_list(v);
    }
    sums.assign(size_t(params_.nlist) * size_t(dim_), 0.0);
    counts.assign(size_t(params_.nlist), 0);
    for (i64 i = 0; i < n; ++i) {
      const i64 c = assign[size_t(i)];
      ++counts[size_t(c)];
      const float* v = data_.data() + size_t(i) * size_t(dim_);
      for (i64 d = 0; d < dim_; ++d)
        sums[size_t(c) * size_t(dim_) + size_t(d)] += v[d];
    }
    for (i64 c = 0; c < params_.nlist; ++c) {
      if (counts[size_t(c)] == 0) continue;  // keep old centroid
      for (i64 d = 0; d < dim_; ++d)
        centroids_[size_t(c) * size_t(dim_) + size_t(d)] =
            float(sums[size_t(c) * size_t(dim_) + size_t(d)] /
                  double(counts[size_t(c)]));
    }
  }
}

void IvfFlatIndex::train() {
  if (trained_ || total_ == 0) return;
  kmeans();
  trained_ = true;
  // Route the held-back vectors into their lists.
  for (std::size_t i = 0; i < pending_ids_.size(); ++i) {
    std::span<const float> v{data_.data() + i * size_t(dim_), size_t(dim_)};
    const i64 list = assign_list(v);
    lists_[size_t(list)].push_back({pending_ids_[i], u64(i * size_t(dim_))});
  }
  pending_ids_.clear();
}

std::vector<Neighbor> IvfFlatIndex::search(std::span<const float> q,
                                           i64 k) const {
  std::vector<Neighbor> cand;
  if (!trained_) {
    // Exhaustive over the holding buffer.
    for (std::size_t i = 0; i < pending_ids_.size(); ++i) {
      std::span<const float> v{data_.data() + i * size_t(dim_), size_t(dim_)};
      cand.push_back({pending_ids_[i], l2(q, v)});
    }
  } else {
    // Rank centroids, scan the nprobe nearest lists.
    std::vector<std::pair<float, i64>> cd(static_cast<size_t>(params_.nlist));
    for (i64 c = 0; c < params_.nlist; ++c) {
      std::span<const float> cen{centroids_.data() + size_t(c) * size_t(dim_),
                                 size_t(dim_)};
      cd[size_t(c)] = {l2(q, cen), c};
    }
    const i64 nprobe = std::min(params_.nprobe, params_.nlist);
    std::partial_sort(cd.begin(), cd.begin() + nprobe, cd.end());
    for (i64 p = 0; p < nprobe; ++p) {
      for (const auto& e : lists_[size_t(cd[size_t(p)].second)]) {
        std::span<const float> v{data_.data() + e.offset, size_t(dim_)};
        cand.push_back({e.id, l2(q, v)});
      }
    }
  }
  const auto kk = std::min<std::size_t>(size_t(std::max<i64>(k, 0)), cand.size());
  std::partial_sort(cand.begin(), cand.begin() + i64(kk), cand.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.dist < b.dist;
                    });
  cand.resize(kk);
  return cand;
}

std::vector<std::vector<Neighbor>> IvfFlatIndex::search_batch(
    std::span<const float> queries, i64 k, ThreadPool* pool) const {
  MLR_CHECK(dim_ >= 1 && i64(queries.size()) % dim_ == 0);
  const i64 nq = i64(queries.size()) / dim_;
  // The split only pays off (and is only well-defined) on the trained,
  // list-organized index with real workers available.
  if (pool == nullptr || pool->size() <= 1 || !trained_ ||
      params_.split_min <= 0 || nq == 0) {
    return Index::search_batch(queries, k, pool);
  }
  // No query can probe split_min candidates when the whole index holds fewer
  // — the common MemoDb case; skip the plan machinery (and its two extra
  // pool barriers) entirely.
  if (i64(total_) < params_.split_min)
    return Index::search_batch(queries, k, pool);
  auto query_of = [&](i64 i) {
    return std::span<const float>{queries.data() + size_t(i) * size_t(dim_),
                                  size_t(dim_)};
  };

  // Phase A (parallel over queries): rank centroids and gather each query's
  // candidates in the exact order the serial scan visits them (nprobe-nearest
  // lists by centroid distance, entries in list order).
  struct Plan {
    std::vector<const ListEntry*> cand;
    std::vector<float> dist;  // filled in phase B, candidate order
  };
  std::vector<Plan> plans(static_cast<size_t>(nq));
  parallel_for(*pool, 0, nq, [&](i64 i) {
    u64 local = 0;
    DistAccScope scope(*this, &local);
    const auto q = query_of(i);
    std::vector<std::pair<float, i64>> cd(static_cast<size_t>(params_.nlist));
    for (i64 c = 0; c < params_.nlist; ++c) {
      std::span<const float> cen{centroids_.data() + size_t(c) * size_t(dim_),
                                 size_t(dim_)};
      cd[size_t(c)] = {l2(q, cen), c};
    }
    const i64 nprobe = std::min(params_.nprobe, params_.nlist);
    std::partial_sort(cd.begin(), cd.begin() + nprobe, cd.end());
    auto& pl = plans[size_t(i)];
    for (i64 p = 0; p < nprobe; ++p)
      for (const auto& e : lists_[size_t(cd[size_t(p)].second)])
        pl.cand.push_back(&e);
    pl.dist.resize(pl.cand.size());
  });

  // Phase B: distance evaluation as a flat task list — one task per
  // ≤ split_min candidates, so a query with a big probed set becomes several
  // tasks sharing its scan while small queries stay one task each.
  struct Task {
    i64 q;
    std::size_t begin, end;
  };
  std::vector<Task> tasks;
  const auto split = std::size_t(params_.split_min);
  for (i64 i = 0; i < nq; ++i) {
    const std::size_t n = plans[size_t(i)].cand.size();
    if (n == 0) continue;
    const std::size_t pieces = n >= split ? (n + split - 1) / split : 1;
    const std::size_t per = (n + pieces - 1) / pieces;
    for (std::size_t b = 0; b < n; b += per)
      tasks.push_back({i, b, std::min(n, b + per)});
  }
  parallel_for(*pool, 0, i64(tasks.size()), [&](i64 t) {
    u64 local = 0;
    DistAccScope scope(*this, &local);
    const auto& tk = tasks[size_t(t)];
    const auto q = query_of(tk.q);
    auto& pl = plans[size_t(tk.q)];
    for (std::size_t c = tk.begin; c < tk.end; ++c) {
      std::span<const float> v{data_.data() + pl.cand[c]->offset,
                               size_t(dim_)};
      pl.dist[c] = l2(q, v);
    }
  });

  // Phase C (parallel over queries): the same top-k selection search() runs,
  // over the same candidate sequence — identical neighbours, identical ties.
  std::vector<std::vector<Neighbor>> out(static_cast<size_t>(nq));
  parallel_for(*pool, 0, nq, [&](i64 i) {
    auto& pl = plans[size_t(i)];
    std::vector<Neighbor> cand(pl.cand.size());
    for (std::size_t c = 0; c < pl.cand.size(); ++c)
      cand[c] = {pl.cand[c]->id, pl.dist[c]};
    const auto kk =
        std::min<std::size_t>(size_t(std::max<i64>(k, 0)), cand.size());
    std::partial_sort(cand.begin(), cand.begin() + i64(kk), cand.end(),
                      [](const Neighbor& a, const Neighbor& b) {
                        return a.dist < b.dist;
                      });
    cand.resize(kk);
    out[size_t(i)] = std::move(cand);
  });
  return out;
}

// --- NswIndex -----------------------------------------------------------------

NswIndex::NswIndex(i64 dim, Params p, u64 seed)
    : Index(dim), params_(p), rng_(seed) {
  MLR_CHECK(p.m >= 1 && p.ef >= 1);
}

std::vector<std::pair<float, i64>> NswIndex::beam_search(
    std::span<const float> q, i64 ef) const {
  std::vector<std::pair<float, i64>> result;
  if (ids_.empty()) return result;
  const i64 entry = 0;
  std::unordered_set<i64> visited{entry};
  // min-heap of candidates, max-heap (as sorted vector) of best ef results.
  using Cand = std::pair<float, i64>;
  std::priority_queue<Cand, std::vector<Cand>, std::greater<>> frontier;
  const float d0 = l2(q, vec_of(entry));
  frontier.push({d0, entry});
  result.push_back({d0, entry});
  auto worst = [&] { return result.back().first; };
  while (!frontier.empty()) {
    auto [d, node] = frontier.top();
    frontier.pop();
    if (d > worst() && i64(result.size()) >= ef) break;
    for (i64 nb : edges_[size_t(node)]) {
      if (!visited.insert(nb).second) continue;
      const float dn = l2(q, vec_of(nb));
      if (i64(result.size()) < ef || dn < worst()) {
        frontier.push({dn, nb});
        result.push_back({dn, nb});
        std::sort(result.begin(), result.end());
        if (i64(result.size()) > ef) result.pop_back();
      }
    }
  }
  return result;
}

void NswIndex::add(u64 id, std::span<const float> vec) {
  MLR_CHECK(i64(vec.size()) == dim_);
  const i64 node = i64(ids_.size());
  // Beam-search the existing graph for attachment points (this is the
  // expensive, size-dependent part of graph-index insertion).
  auto near = beam_search(vec, params_.ef);
  ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
  edges_.emplace_back();
  const i64 m = std::min<i64>(params_.m, i64(near.size()));
  for (i64 i = 0; i < m; ++i) {
    const i64 nb = near[size_t(i)].second;
    edges_[size_t(node)].push_back(nb);
    edges_[size_t(nb)].push_back(node);  // undirected; allow degree growth
  }
}

std::vector<Neighbor> NswIndex::search(std::span<const float> q,
                                       i64 k) const {
  auto beam = beam_search(q, std::max(params_.ef, k));
  std::vector<Neighbor> out;
  const i64 kk = std::min<i64>(k, i64(beam.size()));
  out.reserve(size_t(kk));
  for (i64 i = 0; i < kk; ++i)
    out.push_back({ids_[size_t(beam[size_t(i)].second)], beam[size_t(i)].first});
  return out;
}

}  // namespace mlr::ann
