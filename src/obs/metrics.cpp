#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/log.hpp"

namespace mlr::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    // Metric names are plain identifiers; escape just enough to keep the
    // output valid JSON if one ever isn't.
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::invalid_argument("histogram needs edges");
  for (std::size_t i = 1; i < edges_.size(); ++i)
    if (!(edges_[i - 1] < edges_[i]))
      throw std::invalid_argument("histogram edges must strictly increase");
  counts_ = std::make_unique<std::atomic<u64>[]>(edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto idx = std::size_t(it - edges_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out(edges_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= edges_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_edges(double lo, double hi, int n) {
  if (!(lo > 0.0) || !(hi > lo) || n < 2)
    throw std::invalid_argument("exponential_edges needs 0 < lo < hi, n >= 2");
  std::vector<double> edges(static_cast<std::size_t>(n));
  const double step = std::log(hi / lo) / double(n - 1);
  for (int i = 0; i < n; ++i) edges[std::size_t(i)] = lo * std::exp(step * i);
  edges.back() = hi;  // pin the top edge exactly
  return edges;
}

const std::vector<double>& latency_edges_s() {
  static const std::vector<double> e =
      Histogram::exponential_edges(1e-6, 10.0, 29);
  return e;
}

const std::vector<double>& vtime_edges_s() {
  static const std::vector<double> e =
      Histogram::exponential_edges(1e-2, 1e6, 33);
  return e;
}

// --- Snapshot ----------------------------------------------------------------

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(count);
  u64 seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const u64 c = counts[i];
    if (c == 0) continue;
    if (double(seen + c) >= target) {
      const double lo = i == 0 ? edges.front() : edges[i - 1];
      const double hi = i < edges.size() ? edges[i] : edges.back();
      const double frac =
          c ? std::clamp((target - double(seen)) / double(c), 0.0, 1.0) : 0.0;
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return edges.back();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  const auto merge_pairs = [](auto& mine, const auto& theirs, auto combine) {
    for (const auto& [name, v] : theirs) {
      const auto it = std::lower_bound(
          mine.begin(), mine.end(), name,
          [](const auto& p, const std::string& n) { return p.first < n; });
      if (it != mine.end() && it->first == name)
        it->second = combine(it->second, v);
      else
        mine.insert(it, {name, v});
    }
  };
  merge_pairs(counters, other.counters,
              [](u64 a, u64 b) { return a + b; });
  merge_pairs(gauges, other.gauges,
              [](double a, double b) { return std::max(a, b); });
  for (const auto& h : other.histograms) {
    const auto it = std::lower_bound(
        histograms.begin(), histograms.end(), h.name,
        [](const HistogramSnapshot& a, const std::string& n) {
          return a.name < n;
        });
    if (it != histograms.end() && it->name == h.name) {
      if (it->edges != h.edges)
        throw std::invalid_argument("histogram edge mismatch merging " +
                                    h.name);
      for (std::size_t i = 0; i < it->counts.size(); ++i)
        it->counts[i] += h.counts[i];
      it->count += h.count;
      it->sum += h.sum;
    } else {
      histograms.insert(it, h);
    }
  }
}

u64 MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [n, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, n);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [n, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, n);
    out += ':';
    append_double(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count) + ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"edges\":[";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i) out += ',';
      append_double(out, h.edges[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

// --- Registry ----------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& edges) {
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(edges))
             .first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard lk(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [n, c] : counters_) snap.counters.emplace_back(n, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [n, g] : gauges_) snap.gauges.emplace_back(n, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [n, h] : histograms_) {
      HistogramSnapshot hs;
      hs.name = n;
      hs.edges = h->edges();
      hs.counts = h->bucket_counts();
      hs.count = h->count();
      hs.sum = h->sum();
      snap.histograms.push_back(std::move(hs));
    }
  }
  u64 events = 0;
  for (const auto& [n, v] : snap.counters) events += v;
  MLR_LOG(Debug) << "obs snapshot: " << snap.counters.size() << " counters ("
                 << events << " events), " << snap.gauges.size()
                 << " gauges, " << snap.histograms.size() << " histograms";
  return snap;
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [n, c] : counters_) c->reset();
  for (auto& [n, g] : gauges_) g->reset();
  for (auto& [n, h] : histograms_) h->reset();
}

Registry& metrics() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

}  // namespace mlr::obs
