// obs/trace — per-thread ring-buffered trace recorder with Chrome-trace /
// Perfetto JSON export.
//
// Event model (Chrome trace event format):
//
//   MLR_TRACE_SPAN("name")            RAII complete event ('X') on this
//                                     thread's track — nest freely, Perfetto
//                                     renders the stack as a flame
//   trace_async_begin/end(name, id)   async pair ('b'/'e') — spans that
//                                     start on one thread/time and end on
//                                     another (GET_BATCH in flight, seed
//                                     export), correlated by `id`
//   trace_instant(name, id)           point event ('i')
//   trace_counter(name, value)        counter sample ('C') — the second
//                                     clock domain rides here: the sim
//                                     virtual clock is exported as counter
//                                     tracks ("vclock.service",
//                                     "vclock.session") against the wall-
//                                     clock x-axis, so a trace shows both
//                                     what the host did and what the
//                                     simulated Polaris timeline thought
//
// Recording is process-global and off by default. The hard hot-path
// contract: with recording disabled every emit — including constructing and
// destroying a TraceSpan — is a couple of relaxed atomic loads and nothing
// else (no clock read, no allocation, no branch into buffer code).
// Enabling tracing never feeds back into computation, so the bit-identity
// determinism matrix (outputs, records, cache fingerprints, virtual times)
// is invariant under trace on/off — asserted by Concurrency.TraceOnOff*
// and ReconService.TraceOnOff* tests.
//
// Storage: each thread owns a fixed-capacity ring (newest events win; drops
// are counted and exported as metadata). Buffers register themselves in a
// global list on first use; write_json() locks each ring briefly, merges,
// sorts by timestamp, and emits `traceEvents` JSON. Draining while worker
// threads still emit is safe (per-ring mutex) but callers normally drain at
// a quiescent point (after ThreadPool::wait_idle / service drain).
//
// Names and categories must be string literals (or otherwise outlive the
// recorder) — events store the pointer, not a copy.
#pragma once

#include <atomic>
#include <string>

#include "common/types.hpp"

namespace mlr::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// True when the process-global recorder is recording.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Start recording. The first enable() pins the wall-clock epoch all
  /// timestamps are relative to.
  void enable();
  void disable();
  /// Drop all buffered events and drop counts (rings stay registered).
  /// Call at a quiescent point.
  void clear();

  /// Nanoseconds since the recorder epoch (steady clock).
  [[nodiscard]] u64 now_ns() const;

  // Emitters. All no-ops when disabled.
  void complete(const char* name, const char* cat, u64 ts_ns, u64 dur_ns,
                u64 id);
  void instant(const char* name, const char* cat, u64 id);
  void async_begin(const char* name, const char* cat, u64 id);
  void async_end(const char* name, const char* cat, u64 id);
  void counter(const char* name, double value);

  /// Merge + sort all rings into Chrome-trace JSON ({"traceEvents": [...]}).
  [[nodiscard]] std::string json() const;
  /// json() to a file; returns false (and logs) on I/O failure.
  bool write_json(const std::string& path) const;

  /// Total events currently buffered across rings (drained or droppable).
  [[nodiscard]] u64 buffered_events() const;
  /// Events lost to ring wrap since the last clear().
  [[nodiscard]] u64 dropped_events() const;

 private:
  TraceRecorder() = default;
};

/// RAII complete-event span. With tracing disabled, construction and
/// destruction are one relaxed atomic load each.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "app", u64 id = 0);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  u64 id_;
  u64 t0_;
  bool active_;
};

inline void trace_instant(const char* name, const char* cat = "app",
                          u64 id = 0) {
  if (trace_enabled()) TraceRecorder::instance().instant(name, cat, id);
}
inline void trace_async_begin(const char* name, const char* cat, u64 id) {
  if (trace_enabled()) TraceRecorder::instance().async_begin(name, cat, id);
}
inline void trace_async_end(const char* name, const char* cat, u64 id) {
  if (trace_enabled()) TraceRecorder::instance().async_end(name, cat, id);
}
inline void trace_counter(const char* name, double value) {
  if (trace_enabled()) TraceRecorder::instance().counter(name, value);
}

#define MLR_OBS_CAT2(a, b) a##b
#define MLR_OBS_CAT(a, b) MLR_OBS_CAT2(a, b)
/// MLR_TRACE_SPAN("stage.encode_probe", "engine") — scoped span on this
/// thread's track. Name/category must be string literals.
#define MLR_TRACE_SPAN(...) \
  ::mlr::obs::TraceSpan MLR_OBS_CAT(mlr_trace_span_, __LINE__)(__VA_ARGS__)

}  // namespace mlr::obs
