#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/log.hpp"
#include "common/thread_id.hpp"

namespace mlr::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  const char* name;
  const char* cat;
  char ph;     // 'X', 'i', 'b', 'e', 'C'
  u32 tid;
  u64 ts_ns;
  u64 dur_ns;  // 'X' only
  u64 id;      // async correlation id / span arg
  double value;  // 'C' only
};

/// Per-thread fixed-capacity ring: newest events win, drops are counted.
/// 64 Ki events ≈ 4 MiB per recording thread.
constexpr std::size_t kRingCapacity = std::size_t(1) << 16;

struct ThreadRing {
  std::mutex mu;
  std::vector<Event> events;
  std::size_t head = 0;  // next overwrite slot once full
  u64 total = 0;         // pushes since last clear
  u32 tid = 0;

  void push(const Event& e) {
    std::lock_guard lk(mu);
    if (events.size() < kRingCapacity) {
      events.push_back(e);
    } else {
      events[head] = e;
      head = (head + 1) % kRingCapacity;
    }
    ++total;
  }
};

std::mutex g_rings_mu;
// Rings are leaked deliberately: a pool thread can exit while the recorder
// still holds its events for a later drain.
std::vector<ThreadRing*>& rings() {
  static std::vector<ThreadRing*>* v = new std::vector<ThreadRing*>();
  return *v;
}

ThreadRing& my_ring() {
  thread_local ThreadRing* r = [] {
    auto* ring = new ThreadRing();
    ring->tid = mlr::thread_index();
    ring->events.reserve(1024);
    std::lock_guard lk(g_rings_mu);
    rings().push_back(ring);
    return ring;
  }();
  return *r;
}

i64 steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// Epoch as raw steady-clock nanoseconds so now_ns() is lock-free.
std::atomic<i64> g_epoch_ns{-1};

void pin_epoch() {
  i64 expected = -1;
  const i64 now = steady_ns();
  g_epoch_ns.compare_exchange_strong(expected, now,
                                     std::memory_order_relaxed);
}

void append_ts_us(std::string& out, u64 ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* r = new TraceRecorder();
  return *r;
}

void TraceRecorder::enable() {
  pin_epoch();  // pin the wall epoch before the first event
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  std::lock_guard lk(g_rings_mu);
  for (auto* r : rings()) {
    std::lock_guard rlk(r->mu);
    r->events.clear();
    r->head = 0;
    r->total = 0;
  }
}

u64 TraceRecorder::now_ns() const {
  const i64 e = g_epoch_ns.load(std::memory_order_relaxed);
  if (e < 0) return 0;
  const i64 d = steady_ns() - e;
  return d > 0 ? u64(d) : 0;
}

void TraceRecorder::complete(const char* name, const char* cat, u64 ts_ns,
                             u64 dur_ns, u64 id) {
  if (!trace_enabled()) return;
  my_ring().push(
      {name, cat, 'X', mlr::thread_index(), ts_ns, dur_ns, id, 0.0});
}

void TraceRecorder::instant(const char* name, const char* cat, u64 id) {
  if (!trace_enabled()) return;
  my_ring().push(
      {name, cat, 'i', mlr::thread_index(), now_ns(), 0, id, 0.0});
}

void TraceRecorder::async_begin(const char* name, const char* cat, u64 id) {
  if (!trace_enabled()) return;
  my_ring().push(
      {name, cat, 'b', mlr::thread_index(), now_ns(), 0, id, 0.0});
}

void TraceRecorder::async_end(const char* name, const char* cat, u64 id) {
  if (!trace_enabled()) return;
  my_ring().push(
      {name, cat, 'e', mlr::thread_index(), now_ns(), 0, id, 0.0});
}

void TraceRecorder::counter(const char* name, double value) {
  if (!trace_enabled()) return;
  my_ring().push(
      {name, "counter", 'C', mlr::thread_index(), now_ns(), 0, 0, value});
}

u64 TraceRecorder::buffered_events() const {
  std::lock_guard lk(g_rings_mu);
  u64 n = 0;
  for (auto* r : rings()) {
    std::lock_guard rlk(r->mu);
    n += r->events.size();
  }
  return n;
}

u64 TraceRecorder::dropped_events() const {
  std::lock_guard lk(g_rings_mu);
  u64 n = 0;
  for (auto* r : rings()) {
    std::lock_guard rlk(r->mu);
    n += r->total - r->events.size();
  }
  return n;
}

std::string TraceRecorder::json() const {
  // Merge every ring in chronological push order, then sort globally.
  std::vector<Event> all;
  std::vector<std::pair<u32, u64>> drops;  // (tid, dropped)
  {
    std::lock_guard lk(g_rings_mu);
    for (auto* r : rings()) {
      std::lock_guard rlk(r->mu);
      const std::size_t n = r->events.size();
      all.reserve(all.size() + n);
      for (std::size_t i = 0; i < n; ++i)
        all.push_back(r->events[(r->head + i) % std::max<std::size_t>(n, 1)]);
      if (r->total > n) drops.emplace_back(r->tid, r->total - n);
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.tid < b.tid;
  });

  std::string out;
  out.reserve(128 + all.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"mlr\"}}";
  // Thread-name metadata for every track that recorded.
  std::vector<u32> tids;
  for (const auto& e : all) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const u32 tid : tids) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"thread-" +
           std::to_string(tid) + "\"}}";
  }
  for (const auto& [tid, n] : drops) {
    out += ",\n{\"name\":\"trace.dropped\",\"cat\":\"obs\",\"ph\":\"i\","
           "\"s\":\"g\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"ts\":0,\"args\":{\"count\":" +
           std::to_string(n) + "}}";
  }
  for (const auto& e : all) {
    out += ",\n{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.cat;
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_ts_us(out, e.ts_ns);
    switch (e.ph) {
      case 'X':
        out += ",\"dur\":";
        append_ts_us(out, e.dur_ns);
        if (e.id) out += ",\"args\":{\"id\":" + std::to_string(e.id) + "}";
        break;
      case 'i':
        out += ",\"s\":\"t\"";
        if (e.id) out += ",\"args\":{\"id\":" + std::to_string(e.id) + "}";
        break;
      case 'b':
      case 'e':
        out += ",\"id\":" + std::to_string(e.id);
        break;
      case 'C': {
        char buf[48];
        std::snprintf(buf, sizeof buf, ",\"args\":{\"v\":%.9g}", e.value);
        out += buf;
        break;
      }
      default:
        break;
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
  const std::string body = json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    MLR_LOG(Warn) << "trace: cannot open " << path << " for writing";
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok)
    MLR_LOG(Warn) << "trace: short write to " << path;
  else
    MLR_LOG(Info) << "trace: wrote " << body.size() << " bytes to " << path;
  return ok;
}

TraceSpan::TraceSpan(const char* name, const char* cat, u64 id)
    : name_(name), cat_(cat), id_(id), t0_(0), active_(trace_enabled()) {
  if (active_) t0_ = TraceRecorder::instance().now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_ || !trace_enabled()) return;
  auto& r = TraceRecorder::instance();
  r.complete(name_, cat_, t0_, r.now_ns() - t0_, id_);
}

}  // namespace mlr::obs
