// obs/metrics — deterministic process-wide metrics registry.
//
// Three instrument kinds, all lock-free on the update path:
//
//   Counter    monotonically increasing u64 (relaxed fetch_add)
//   Gauge      last-write / monotone-max double (CAS)
//   Histogram  fixed-bucket distribution with *deterministic* bucket edges
//              (the edge vector is part of the instrument's identity; a
//              re-registration with different edges is a contract error)
//
// Instruments are registered by name in a Registry and live for the life of
// the registry: lookup returns a stable reference, reset() zeroes values
// but never invalidates references, so hot paths can cache
//
//   static auto& c = obs::metrics().counter("memo.cache_hit");
//
// once and pay one relaxed atomic op per event afterwards.
//
// snapshot() produces a MetricsSnapshot: plain sorted-by-name data that can
// be merged across registries/processes (counters add, gauges take max,
// histograms add bucket-wise — edges must match) and dumped as JSON. Merge
// is deterministic: the result depends only on the multiset of inputs, not
// the merge order. Each snapshot also routes a one-line summary through
// MLR_LOG(Debug) so `--verbose --verbose` surfaces the registry without any
// extra plumbing.
//
// Determinism contract: metrics never feed back into computation — enabling
// or reading them cannot perturb outputs, records, cache fingerprints, or
// virtual times. Histogram `sum` is a CAS-accumulated double, so its last
// bits may vary with thread interleaving; bucket counts and `count` are
// exact integers.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace mlr::obs {

class Counter {
 public:
  void add(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Monotone raise: keeps the max of all observed values since reset.
  void raise(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  /// `edges` must be strictly increasing; bucket i counts values in
  /// (edges[i-1], edges[i]], bucket edges.size() is the overflow bucket.
  explicit Histogram(std::vector<double> edges);

  void observe(double v);
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] u64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<u64> bucket_counts() const;
  void reset();

  /// Deterministic exponential edge ladder: n edges from lo to hi with a
  /// constant ratio, computed in fixed order so every process derives the
  /// same bits (bucket-edge golden in tests/obs_test.cpp).
  static std::vector<double> exponential_edges(double lo, double hi, int n);

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<u64>[]> counts_;  // edges_.size() + 1 slots
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Shared latency ladder for wall-clock durations: 1 µs .. 10 s.
const std::vector<double>& latency_edges_s();
/// Shared ladder for virtual-clock durations: 10 ms .. 1e6 s.
const std::vector<double>& vtime_edges_s();

// --- Snapshot ---------------------------------------------------------------

struct HistogramSnapshot {
  std::string name;
  std::vector<double> edges;
  std::vector<u64> counts;  // edges.size() + 1, overflow last
  u64 count = 0;
  double sum = 0.0;
  /// Quantile estimate by linear interpolation inside the owning bucket
  /// (underflow clamps to edges.front(), overflow to edges.back()).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const { return count ? sum / double(count) : 0.0; }
};

struct MetricsSnapshot {
  // All three sorted by name.
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Deterministic union: counters add, gauges take the max, histograms add
  /// bucket-wise. Mismatched histogram edges for the same name are a
  /// contract violation (throws).
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] u64 counter_value(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;

  /// Compact JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{edges,counts,count,sum}}}.
  [[nodiscard]] std::string to_json() const;
};

// --- Registry ---------------------------------------------------------------

class Registry {
 public:
  /// Get-or-create by name. References stay valid for the registry's life.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `edges` is consulted only on first registration; a later caller naming
  /// the same histogram with different edges gets the original (edges are
  /// part of the metric's contract, pinned by the first registration).
  Histogram& histogram(std::string_view name, const std::vector<double>& edges);

  /// Sorted, mergeable copy of everything; logs a Debug one-liner.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero all values. Instruments stay registered, references stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every subsystem reports into.
Registry& metrics();

}  // namespace mlr::obs
