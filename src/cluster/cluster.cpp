#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mlr::cluster {

Cluster::Cluster(const lamino::Operators& ops, ClusterSpec spec,
                 memo::MemoConfig memo_cfg, memo::MemoDbConfig db_cfg)
    : ops_(ops),
      spec_(spec),
      fabric_(spec.fabric),
      memnode_(spec.memory_node),
      nvlink_("nvlink") {
  MLR_CHECK(spec.gpus >= 1 && spec.gpus_per_node >= 1);
  if (memo_cfg.enable) {
    db_ = std::make_unique<memo::MemoDb>(db_cfg, &fabric_, &memnode_);
    if (spec_.db_seed != nullptr)
      db_->import_entries(*spec_.db_seed, spec_.db_values);
  }
  // All GPUs key through one shared encoder (see core::ExecutionContext):
  // cluster hit patterns match the single-GPU run for any gpu count. A
  // serving session shares the service's registry across every job instead.
  auto registry = spec_.registry != nullptr
                      ? spec_.registry
                      : std::make_shared<encoder::EncoderRegistry>(
                            encoder::EncoderConfig{
                                .input_hw = memo_cfg.encoder_hw,
                                .embed_dim = memo_cfg.key_dim});
  for (int g = 0; g < spec_.gpus; ++g) {
    devices_.push_back(std::make_unique<sim::Device>(g, spec_.device));
    wrappers_.push_back(std::make_unique<memo::MemoizedLamino>(
        ops_, memo_cfg, devices_.back().get(), db_.get(), registry));
  }
  std::vector<memo::MemoizedLamino*> ptrs;
  ptrs.reserve(wrappers_.size());
  for (auto& w : wrappers_) ptrs.push_back(w.get());
  exec_ = std::make_unique<memo::StageExecutor>(std::move(ptrs));
}

memo::StageReport Cluster::run_stage(memo::OpKind kind,
                                     std::span<memo::StageChunk> chunks,
                                     sim::VTime ready) {
  return exec_->run_stage(kind, chunks, ready);
}

sim::VTime Cluster::redistribute(double total_bytes, sim::VTime ready) {
  const int G = spec_.gpus;
  if (G <= 1 || total_bytes <= 0) return ready;
  const int nodes = num_nodes();
  const double per_gpu = total_bytes / double(G);
  // Each GPU must gather the other GPUs' shares. Split the traffic into the
  // portion that stays inside a node (NVLink) and the portion that crosses
  // nodes (shared fabric, contending with memoization traffic).
  const int peers_intra = std::min(G, spec_.gpus_per_node) - 1;
  const int peers_inter = G - 1 - peers_intra;
  sim::VTime done = ready;
  if (peers_intra > 0) {
    const double intra_bytes = per_gpu * double(peers_intra) * double(G);
    done = std::max(done, nvlink_.schedule(ready, intra_bytes / spec_.nvlink_bw /
                                                      double(nodes)));
  }
  if (peers_inter > 0) {
    const double inter_bytes = per_gpu * double(peers_inter) * double(G);
    done = std::max(done, fabric_.transfer(ready, inter_bytes));
  }
  return done;
}

sim::VTime Cluster::forward_adjoint_pass(const Array3D<cfloat>& u,
                                         const Array3D<cfloat>& dhat,
                                         i64 chunk_size, sim::VTime ready,
                                         std::vector<double>* per_op_s) {
  const auto& g = ops_.geometry();
  const double ws = wrappers_.front()->config().work_scale;
  Array3D<cfloat> u1(g.u1_shape());
  Array3D<cfloat> r(g.data_shape());
  Array3D<cfloat> w1(g.u1_shape());
  Array3D<cfloat> grad(g.object_shape());
  if (per_op_s != nullptr) per_op_s->assign(4, 0.0);
  sim::VTime t = ready;

  // Stage 1: F_u1D over n1 chunks.
  {
    auto chunks = lamino::make_chunks(g.n1, chunk_size);
    std::vector<memo::StageChunk> work;
    for (const auto& spec : chunks)
      work.push_back({spec, u.slices(spec.begin, spec.count),
                      u1.slices(spec.begin, spec.count)});
    auto rep = run_stage(memo::OpKind::Fu1D, work, t);
    if (per_op_s != nullptr) (*per_op_s)[0] = rep.done - t;
    t = rep.done;
  }
  // Redistribution: n1 partitioning → h partitioning.
  t = redistribute(double(u1.bytes()) * ws, t);
  // Stage 2: fused F_u2D over h chunks.
  {
    auto chunks = lamino::make_chunks(g.h, chunk_size);
    const std::size_t n = chunks.size();
    std::vector<std::vector<cfloat>> ins(n), outs(n), refs(n);
    std::vector<memo::StageChunk> work;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& spec = chunks[i];
      ins[i].resize(size_t(spec.count * g.n1 * g.n2));
      refs[i].resize(size_t(spec.count * g.ntheta * g.w));
      outs[i].resize(size_t(spec.count * g.ntheta * g.w));
      ops_.pack_u1_rows(u1, spec, ins[i]);
      ops_.pack_dhat_rows(dhat, spec, refs[i]);
      work.push_back({spec, ins[i], outs[i], refs[i]});
    }
    const sim::VTime t0 = t;
    auto rep = run_stage(memo::OpKind::Fu2D, work, t);
    if (per_op_s != nullptr) (*per_op_s)[1] = rep.done - t0;
    t = rep.done;
    for (std::size_t i = 0; i < n; ++i)
      ops_.unpack_dhat_rows(outs[i], chunks[i], r);
  }
  // Stage 3: adjoint F*_u2D over h chunks.
  {
    auto chunks = lamino::make_chunks(g.h, chunk_size);
    const std::size_t n = chunks.size();
    std::vector<std::vector<cfloat>> ins(n), outs(n);
    std::vector<memo::StageChunk> work;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& spec = chunks[i];
      ins[i].resize(size_t(spec.count * g.ntheta * g.w));
      outs[i].resize(size_t(spec.count * g.n1 * g.n2));
      ops_.pack_dhat_rows(r, spec, ins[i]);
      work.push_back({spec, ins[i], outs[i]});
    }
    const sim::VTime t0 = t;
    auto rep = run_stage(memo::OpKind::Fu2DAdj, work, t);
    if (per_op_s != nullptr) (*per_op_s)[2] = rep.done - t0;
    t = rep.done;
    for (std::size_t i = 0; i < n; ++i)
      ops_.unpack_u1_rows(outs[i], chunks[i], w1);
  }
  // Redistribution back: h partitioning → n1 partitioning.
  t = redistribute(double(w1.bytes()) * ws, t);
  // Stage 4: adjoint F*_u1D over n1 chunks.
  {
    auto chunks = lamino::make_chunks(g.n1, chunk_size);
    std::vector<memo::StageChunk> work;
    for (const auto& spec : chunks)
      work.push_back({spec, w1.slices(spec.begin, spec.count),
                      grad.slices(spec.begin, spec.count)});
    const sim::VTime t0 = t;
    auto rep = run_stage(memo::OpKind::Fu1DAdj, work, t);
    if (per_op_s != nullptr) (*per_op_s)[3] = rep.done - t0;
    t = rep.done;
  }
  return t;
}

}  // namespace mlr::cluster
