// Multi-GPU / multi-node execution (paper §5.2).
//
// mLR distributes chunks evenly across GPUs within and across nodes; the
// F_u1D chunks partition along n1 and the F_u2D chunks along detector rows,
// so consecutive stages require a redistribution (all-gather) of the
// intermediate ũ1 array. Within a node that traffic rides NVLink; across
// nodes it rides the same Slingshot fabric that carries memoization traffic
// to the memory node — the contention behind the paper's Fig 14 (diminishing
// returns past 4 GPUs), Fig 15 (fabric saturation) and Fig 16 (query-latency
// tail).
//
// Numerics are real: every chunk is computed (or memoized) exactly once by
// the wrapper that owns it, so the distributed result is bit-identical to
// single-device execution regardless of the GPU count.
#pragma once

#include <memory>
#include <vector>

#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"

namespace mlr::cluster {

struct ClusterSpec {
  int gpus = 1;
  int gpus_per_node = 4;            ///< Polaris: 4×A100 per node
  double nvlink_bw = 150.0e9;       ///< intra-node all-gather bytes/s
  sim::DeviceSpec device{};
  sim::LinkSpec fabric{};           ///< Slingshot: inter-node + memory node
  sim::MemoryNodeSpec memory_node{};
  /// Shared-memo session wiring (see ExecutionOptions): a serving job that
  /// spans several GPUs runs on a Cluster seeded with the service's shared
  /// tier and keying through the service's one cross-job encoder.
  std::shared_ptr<encoder::EncoderRegistry> registry{};
  const std::vector<memo::MemoDb::Entry>* db_seed = nullptr;
  /// Lazy value fetcher for an index-only db_seed (remote tier) — see
  /// ExecutionOptions::db_values.
  memo::ValueFetcher* db_values = nullptr;
};

/// A set of simulated GPUs plus the shared fabric and memory node, executing
/// chunk stages round-robin across devices.
class Cluster {
 public:
  Cluster(const lamino::Operators& ops, ClusterSpec spec,
          memo::MemoConfig memo_cfg, memo::MemoDbConfig db_cfg = {});

  [[nodiscard]] int num_gpus() const { return spec_.gpus; }
  [[nodiscard]] int num_nodes() const {
    return (spec_.gpus + spec_.gpus_per_node - 1) / spec_.gpus_per_node;
  }
  [[nodiscard]] int node_of(int gpu) const { return gpu / spec_.gpus_per_node; }

  /// Execute one operator stage: chunks are assigned round-robin to GPUs;
  /// the stage completes when the slowest GPU finishes. Returns the stage's
  /// per-chunk records merged in chunk order. Delegates to the shared
  /// StageExecutor engine (same code path as core::Reconstructor).
  memo::StageReport run_stage(memo::OpKind kind,
                              std::span<memo::StageChunk> chunks,
                              sim::VTime ready);

  /// The multi-device engine executing the stages.
  [[nodiscard]] memo::StageExecutor& executor() { return *exec_; }

  /// Model the redistribution between n1-partitioned and h-partitioned
  /// stages: every GPU exchanges (G−1)/G of `total_bytes` — NVLink within a
  /// node, the shared fabric across nodes. Returns the completion time.
  sim::VTime redistribute(double total_bytes, sim::VTime ready);

  /// Virtual time of one forward+adjoint pass (the four F_u stages plus the
  /// two redistributions), using real numerics on `u`.
  sim::VTime forward_adjoint_pass(const Array3D<cfloat>& u,
                                  const Array3D<cfloat>& dhat, i64 chunk_size,
                                  sim::VTime ready,
                                  std::vector<double>* per_op_s = nullptr);

  [[nodiscard]] sim::Interconnect& fabric() { return fabric_; }
  [[nodiscard]] sim::MemoryNode& memory_node() { return memnode_; }
  [[nodiscard]] memo::MemoDb& db() { return *db_; }
  [[nodiscard]] memo::MemoizedLamino& wrapper(int gpu) {
    return *wrappers_[size_t(gpu)];
  }
  [[nodiscard]] const lamino::Operators& ops() const { return ops_; }

 private:
  const lamino::Operators& ops_;
  ClusterSpec spec_;
  sim::Interconnect fabric_;
  sim::MemoryNode memnode_;
  std::unique_ptr<memo::MemoDb> db_;
  std::vector<std::unique_ptr<sim::Device>> devices_;
  std::vector<std::unique_ptr<memo::MemoizedLamino>> wrappers_;
  std::unique_ptr<memo::StageExecutor> exec_;
  sim::Timeline nvlink_;
};

}  // namespace mlr::cluster
