#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite.
#   ./scripts/check.sh          release build + ctest
#   ./scripts/check.sh tsan     ThreadSanitizer build + ctest (concurrency
#                               tests under TSan; slower)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-}"
if [[ "$preset" == "tsan" ]]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan -j "$(nproc)"
else
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi
