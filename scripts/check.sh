#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite, then smoke the
# serving path (bench_serve_traffic exits non-zero if job outputs are not
# bit-identical across scheduling policies).
#   ./scripts/check.sh          release build + ctest + serving smoke
#   ./scripts/check.sh tsan     ThreadSanitizer build + ctest + serving
#                               smoke (concurrency tests under TSan; slower)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-}"
if [[ "$preset" == "tsan" ]]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan -j "$(nproc)"
  ./build-tsan/bench_serve_traffic --jobs 8 --n small
else
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")
  ./build/bench_serve_traffic --jobs 8 --n small
fi
