#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite, then smoke the
# hot paths —
#   * bench_serve_traffic exits non-zero if job outputs are not
#     bit-identical across scheduling policies (and, with MLR_BUILD_NET,
#     across tier transports — the loopback/socket smokes below),
#   * bench_stage_scaling exits non-zero if barrier/overlap/pipelined modes
#     resolve different memo outcomes, and emits the BENCH_*.json
#     perf-trajectory point,
#   * a trace-enabled serve replay (--trace over the loopback transport)
#     must produce a non-empty, parseable Chrome-trace JSON while staying
#     in the bench's own output-identity gate (trace on/off bit-identity),
#   * the preemption smoke (--preempt --jobs 32) replays the FIFO point
#     with stage-boundary preemption on and exits non-zero unless the
#     preempted outputs are bit-identical to the uninterrupted baseline
#     AND at least one job actually yielded.
# The serving layer alone (service/scheduler matrices, workload contracts,
# tier wire protocol) can be run via its CTest label: `ctest -L serve`.
# The TSan preset additionally re-runs the cross-stage determinism matrix
# (now threads x overlap x depth x tail-lanes), the trace-on/off identity
# matrix (recorder rings hammered from pool + drainer threads), the obs
# unit suite, the fused elementwise-kernel suite (tiled reductions racing
# on the shared partial buffer is exactly where a combine-order bug would
# hide), the serve shard matrix (shards x policies x threads x
# pipeline_depth), the remote-tier loopback matrix (same workload rehosted
# on the wire protocol), the transport fault-injection suite
# (reply-reader threads + the in-flight request table are exactly where a
# completion race would hide) and the reconnect/degradation suites
# (LoopbackReconnect.* + ReconServiceFaults.* — recovery ladder vs the
# reply reader, replay vs racing senders) explicitly before the smokes.
# Both presets also run the chaos smoke: a TCP tier killed mid-run and
# restarted from a snapshot, gated on "surviving jobs bit-identical,
# service exits 0". Socket smokes skip gracefully where sockets are
# unavailable.
#   ./scripts/check.sh          release build + ctest + smokes
#   ./scripts/check.sh tsan     ThreadSanitizer build + ctest + matrix +
#                               smokes (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

# Trace smoke: $1 = trace file written by a --trace run. Non-empty and (when
# python3 exists) parseable JSON with a non-empty traceEvents array.
check_trace() {
  local trace="$1"
  [[ -s "$trace" ]] || { echo "trace smoke: $trace empty or missing"; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    t = json.load(f)
ev = t["traceEvents"]
assert len(ev) > 0, "traceEvents empty"
print(f"trace smoke: {sys.argv[1]} OK ({len(ev)} events)")
EOF
  fi
}

preset="${1:-}"
if [[ "$preset" == "tsan" ]]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan -j "$(nproc)"
  ./build-tsan/obs_test
  ./build-tsan/concurrency_test \
    --gtest_filter='Concurrency.PipelinedCrossStageDeterminismMatrix:Concurrency.StageExecutorDeterministic*:Concurrency.TraceOnOffBitIdentityMatrix'
  ./build-tsan/ew_test --gtest_filter='Ew.*'
  ./build-tsan/serve_test \
    --gtest_filter='ReconService.OutputsIdenticalAcrossPipelineDepths:ReconService.SharedTierShardMatrix:ReconService.LoopbackTransportMatrix:ReconService.TraceOnOffBitIdentity:ReconService.PreemptionDeterminismMatrix:ReconService.PreemptedJobResumesOnDifferentSlot:ReconService.AdmissionDecisionInvarianceMatrix'
  ./build-tsan/workload_test
  if [[ -x ./build-tsan/net_test ]]; then
    ./build-tsan/net_test \
      --gtest_filter='RequestTable.*:TierClientFaults.*:TierServerFaults.*:SocketTransport.*:LoopbackReconnect.*'
    ./build-tsan/serve_test --gtest_filter='ReconServiceFaults.*'
  fi
  ./build-tsan/bench_stage_scaling --n 12 --reps 2 --threads 2 \
    --tail-lanes 2 --json /tmp/BENCH_stage_scaling.tsan.json
  ./build-tsan/bench_serve_traffic --jobs 8 --n small
  ./build-tsan/bench_serve_traffic --preempt --jobs 32 --n small
  ./build-tsan/bench_serve_traffic --jobs 8 --n small --transport loopback \
    --trace /tmp/mlr_trace.tsan.json
  check_trace /tmp/mlr_trace.tsan.json
  ./build-tsan/bench_serve_traffic --jobs 8 --n small --transport socket
  ./build-tsan/bench_serve_traffic --jobs 8 --n small --transport socket \
    --chaos kill-tier-at-job=3
else
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")
  ./build/bench_stage_scaling --n 12 --reps 2 --threads 2 \
    --json /tmp/BENCH_stage_scaling.smoke.json
  ./build/bench_serve_traffic --jobs 8 --n small \
    --json /tmp/BENCH_serve_traffic.smoke.json
  ./build/bench_serve_traffic --preempt --jobs 32 --n small \
    --json /tmp/BENCH_serve_traffic.preempt.json
  ./build/bench_serve_traffic --jobs 8 --n small --transport loopback \
    --trace /tmp/mlr_trace.smoke.json \
    --json /tmp/BENCH_serve_traffic.loopback.json
  check_trace /tmp/mlr_trace.smoke.json
  ./build/bench_serve_traffic --jobs 8 --n small --transport socket \
    --json /tmp/BENCH_serve_traffic.socket.json
  ./build/bench_serve_traffic --jobs 8 --n small --transport socket \
    --chaos kill-tier-at-job=3 \
    --json /tmp/BENCH_serve_traffic.chaos.json
  ./build/bench_serve_traffic --jobs 8 --n small --transport socket \
    --chaos blip-tier-at-job=3
fi
