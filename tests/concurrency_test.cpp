// Concurrency tests for the batched stage-execution engine's shared state:
// the memoization caches and the KvStore are hammered from many threads and
// must neither lose counter updates nor corrupt entries; the StageExecutor
// must produce bit-identical results, records, cache contents and virtual
// times for any pool width AND any overlap_slices setting (the async sliced
// MemoDb service); ann::Index::search_batch must match looped search.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ann/ann.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"
#include "lamino/phantom.hpp"
#include "memo/memo_cache.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"
#include "obs/trace.hpp"

namespace mlr::memo {
namespace {

std::vector<float> unit_key(i64 dim, i64 hot) {
  std::vector<float> k(static_cast<size_t>(dim), 0.0f);
  k[size_t(hot % dim)] = 1.0f;
  return k;
}

std::vector<cfloat> random_value(i64 n, u64 seed) {
  Rng rng(seed);
  std::vector<cfloat> v(static_cast<size_t>(n));
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

// N threads × M rounds of lookup+insert against one cache; every counter
// update must survive (atomic counters, no lost updates) and every lookup
// that returns a value must return an intact, internally-consistent entry.
void hammer_cache(MemoCache& cache, int threads, int rounds, i64 locations) {
  std::atomic<u64> expected_lookups{0};
  std::atomic<u64> torn_values{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(u64(1000 + t));
      for (int r = 0; r < rounds; ++r) {
        const i64 loc = rng.uniform_int(0, locations - 1);
        const auto kind = OpKind(int(rng.uniform_int(0, kNumOpKinds - 1)));
        // Key and value both derive from hot = loc mod dim, so locations
        // sharing a key (GlobalCache cross-location hits) also share the
        // expected value — any mismatch is a genuinely torn/corrupt entry.
        const i64 hot = loc % 16;
        if (rng.uniform() < 0.5) {
          // Value encodes its own key id in every element so a torn read
          // (mixed entries) is detectable.
          std::vector<cfloat> v(32, cfloat(float(hot), float(hot)));
          cache.insert(kind, loc, unit_key(16, hot), v, 1.0);
        } else {
          auto got = cache.lookup(kind, loc, unit_key(16, hot), 0.9, 1.0);
          expected_lookups.fetch_add(1);
          if (got.has_value()) {
            for (const auto& x : *got) {
              if (x != cfloat(float(hot), float(hot))) {
                torn_values.fetch_add(1);
                break;
              }
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(torn_values.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, expected_lookups.load());  // no lost updates
  EXPECT_LE(stats.hits, stats.lookups);
  EXPECT_GE(stats.hit_rate(), 0.0);
  EXPECT_LE(stats.hit_rate(), 1.0);
}

TEST(Concurrency, PrivateCacheParallelLookupInsert) {
  PrivateCache cache(64);
  hammer_cache(cache, 8, 2000, 64);
}

TEST(Concurrency, GlobalCacheParallelLookupInsert) {
  GlobalCache cache(64);
  hammer_cache(cache, 8, 2000, 64);
}

TEST(Concurrency, ShardedGlobalCacheParallelLookupInsert) {
  GlobalCache cache(64, /*shards=*/8);
  EXPECT_EQ(cache.shards(), 8);
  hammer_cache(cache, 8, 2000, 64);
}

TEST(Concurrency, ShardedGlobalCacheKeepsSameLocationSharing) {
  // Sharding must not break the contract that a location can re-hit the
  // entry it inserted.
  GlobalCache cache(64, /*shards=*/8);
  for (i64 loc = 0; loc < 32; ++loc)
    cache.insert(OpKind::Fu2D, loc, unit_key(16, loc),
                 random_value(8, u64(loc)), 1.0);
  for (i64 loc = 0; loc < 32; ++loc)
    EXPECT_TRUE(
        cache.lookup(OpKind::Fu2D, loc, unit_key(16, loc), 0.9).has_value())
        << "location " << loc;
}

TEST(Concurrency, KvStoreParallelGetAsyncPut) {
  kvstore::KvStore store(8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 1000;
  std::vector<std::thread> workers;
  std::atomic<u64> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(u64(7 + t));
      for (int r = 0; r < kRounds; ++r) {
        const u64 key = u64(rng.uniform_int(0, 255));
        if (rng.uniform() < 0.5) {
          // Every blob for `key` holds key-derived bytes — torn or
          // cross-keyed reads are detectable.
          kvstore::Blob b(64, std::byte(key & 0xff));
          store.put_async(key, std::move(b));
        } else {
          auto got = store.get(key);
          if (got.has_value()) {
            for (const auto byte : *got) {
              if (byte != std::byte(key & 0xff)) {
                mismatches.fetch_add(1);
                break;
              }
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  store.drain();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(store.size(), 256u);
  // bytes() must agree with the surviving entries (no double counting).
  EXPECT_EQ(store.bytes(), store.size() * 64u);
}

TEST(Concurrency, PoolScopedParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 0, 1000, [&](i64 i) { touched[size_t(i)]++; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

// The engine contract: identical numerics AND identical virtual-clock
// schedule for any pool width.
TEST(Concurrency, StageExecutorDeterministicAcrossPoolWidths) {
  lamino::Operators ops{lamino::Geometry::cube(8)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 9));
  auto chunks = lamino::make_chunks(g.n1, 2);

  auto run_with_pool = [&](unsigned threads, Array3D<cfloat>& out1,
                           Array3D<cfloat>& out2) {
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    MemoDb db{{.key_dim = 16, .tau = 0.92,
               .ivf = {.nlist = 2, .train_size = 8}},
              &net, &node};
    MemoizedLamino ml(ops, {.enable = true, .tau = 0.92, .key_dim = 16,
                            .encoder_hw = 16},
                      &dev, &db);
    ThreadPool pool(threads);
    ml.executor().set_pool(&pool);
    auto make_work = [&](Array3D<cfloat>& dst) {
      std::vector<StageChunk> w;
      for (const auto& spec : chunks)
        w.push_back({spec, u.slices(spec.begin, spec.count),
                     dst.slices(spec.begin, spec.count)});
      return w;
    };
    auto w1 = make_work(out1);
    auto rep1 = ml.run_stage(OpKind::Fu1D, w1, 0.0);  // all misses
    auto w2 = make_work(out2);
    auto rep2 = ml.run_stage(OpKind::Fu1D, w2, rep1.done);  // all hits
    return std::pair{rep1.done, rep2.done};
  };

  Array3D<cfloat> s1(g.u1_shape()), s2(g.u1_shape());
  Array3D<cfloat> p1(g.u1_shape()), p2(g.u1_shape());
  const auto [s_done1, s_done2] = run_with_pool(1, s1, s2);
  const auto [p_done1, p_done2] = run_with_pool(4, p1, p2);
  // Bit-identical outputs…
  for (i64 i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1.data()[i], p1.data()[i]);
    ASSERT_EQ(s2.data()[i], p2.data()[i]);
  }
  // …and bit-identical virtual times.
  EXPECT_EQ(s_done1, p_done1);
  EXPECT_EQ(s_done2, p_done2);
}

// The async-service contract: for every overlap_slices setting and pool
// width, outputs, per-chunk records, cache FIFO contents and virtual times
// are bit-identical to the barriered overlap_slices = 0 path.
TEST(Concurrency, StageExecutorDeterministicAcrossOverlapSlices) {
  // cube(10) with chunk size 2 yields 5 chunks → 5 DB requests: a count
  // that does NOT divide evenly into 2, 4 or 8 slices, so the ragged-tail
  // partition (ceil-sized slices leaving trailing cuts empty) is exercised.
  lamino::Operators ops{lamino::Geometry::cube(10)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 9));
  // Churn volume: odd chunks of the second pass read from here, so that
  // pass mixes DB hits (even chunks) with misses (odd chunks) — the
  // workload the sliced pipeline actually reorders in wall-clock time.
  Array3D<cfloat> churn(g.u1_shape());
  {
    Rng rng(77);
    for (i64 i = 0; i < churn.size(); ++i)
      churn.data()[i] = cfloat(float(rng.normal()), float(rng.normal()));
  }
  auto chunks = lamino::make_chunks(g.n1, 2);

  struct Run {
    Array3D<cfloat> out1, out2;
    std::vector<ChunkRecord> rec1, rec2;
    sim::VTime done1 = 0, done2 = 0;
    u64 cache_fp = 0;
    u64 db_entries = 0;
  };
  auto run_cfg = [&](unsigned threads, i64 overlap) {
    Run run{Array3D<cfloat>(g.u1_shape()), Array3D<cfloat>(g.u1_shape()),
            {}, {}, 0, 0, 0, 0};
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    MemoDb db{{.key_dim = 16, .tau = 0.92, .overlap_slices = overlap,
               .ivf = {.nlist = 2, .train_size = 8}},
              &net, &node};
    MemoizedLamino ml(ops, {.enable = true, .tau = 0.92, .key_dim = 16,
                            .encoder_hw = 16},
                      &dev, &db);
    ThreadPool pool(threads);
    ml.executor().set_pool(&pool);
    auto make_work = [&](Array3D<cfloat>& dst, bool mixed) {
      std::vector<StageChunk> w;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        const auto& spec = chunks[c];
        const auto& src = (mixed && c % 2 == 1) ? churn : u;
        w.push_back({spec, src.slices(spec.begin, spec.count),
                     dst.slices(spec.begin, spec.count)});
      }
      return w;
    };
    auto w1 = make_work(run.out1, false);
    auto rep1 = ml.run_stage(OpKind::Fu1D, w1, 0.0);  // all misses
    auto w2 = make_work(run.out2, true);
    auto rep2 = ml.run_stage(OpKind::Fu1D, w2, rep1.done);  // hit/miss mix
    run.rec1 = rep1.records;
    run.rec2 = rep2.records;
    run.done1 = rep1.done;
    run.done2 = rep2.done;
    run.cache_fp = ml.cache() != nullptr ? ml.cache()->fingerprint() : 0;
    run.db_entries = db.total_entries();
    return run;
  };

  const Run ref = run_cfg(1, 0);  // serial, barriered — the legacy path
  // The mixed pass must really mix outcomes or the overlap test is vacuous.
  u64 hits = 0, misses = 0;
  for (const auto& r : ref.rec2) {
    hits += r.outcome == MemoOutcome::DbHit || r.outcome == MemoOutcome::CacheHit;
    misses += r.outcome == MemoOutcome::Miss;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);

  auto expect_same_records = [](const std::vector<ChunkRecord>& a,
                                const std::vector<ChunkRecord>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(int(a[i].kind), int(b[i].kind)) << i;
      EXPECT_EQ(int(a[i].outcome), int(b[i].outcome)) << i;
      EXPECT_EQ(a[i].location, b[i].location) << i;
      EXPECT_EQ(a[i].encode_s, b[i].encode_s) << i;
      EXPECT_EQ(a[i].db_s, b[i].db_s) << i;
      EXPECT_EQ(a[i].compute_s, b[i].compute_s) << i;
      EXPECT_EQ(a[i].copy_s, b[i].copy_s) << i;
    }
  };
  for (const unsigned threads : {1u, 4u}) {
    for (const i64 overlap : {i64(0), i64(2), i64(4), i64(8)}) {
      const Run got = run_cfg(threads, overlap);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " overlap=" + std::to_string(overlap));
      for (i64 i = 0; i < ref.out1.size(); ++i) {
        ASSERT_EQ(ref.out1.data()[i], got.out1.data()[i]);
        ASSERT_EQ(ref.out2.data()[i], got.out2.data()[i]);
      }
      expect_same_records(ref.rec1, got.rec1);
      expect_same_records(ref.rec2, got.rec2);
      EXPECT_EQ(ref.done1, got.done1);
      EXPECT_EQ(ref.done2, got.done2);
      EXPECT_EQ(ref.cache_fp, got.cache_fp);
      EXPECT_EQ(ref.db_entries, got.db_entries);
    }
  }
}

// The cross-stage pipeline contract: outputs, per-chunk records, cache FIFO
// contents, DB entry counts and virtual times are bit-identical to the
// serial / barriered / per-stage-barrier reference for EVERY pipeline_depth
// × overlap_slices × threads × gpus combination. The stage sequence
// alternates operator kinds (Fu1D / Fu1DAdj) like the real ADMM loop —
// exactly the adjacency whose tail/probe overlap the pipeline exploits —
// and the mixed passes interleave DB hits with fresh-churn misses.
TEST(Concurrency, PipelinedCrossStageDeterminismMatrix) {
  lamino::Operators ops{lamino::Geometry::cube(10)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 9));
  Array3D<cfloat> base_u1(g.u1_shape());
  Array3D<cfloat> churn_obj(g.object_shape()), churn_u1(g.u1_shape());
  {
    Rng rng(77);
    auto fill = [&rng](Array3D<cfloat>& a) {
      for (i64 i = 0; i < a.size(); ++i)
        a.data()[i] = cfloat(float(rng.normal()), float(rng.normal()));
    };
    fill(base_u1);
    fill(churn_obj);
    fill(churn_u1);
  }
  auto chunks = lamino::make_chunks(g.n1, 2);  // 5 chunks: ragged slices

  struct Run {
    std::vector<Array3D<cfloat>> outs;
    std::vector<std::vector<ChunkRecord>> recs;
    std::vector<sim::VTime> dones;
    u64 cache_fp = 0;
    u64 db_entries = 0;
    MemoCounters counters;
  };
  auto run_cfg = [&](unsigned threads, i64 overlap, i64 depth, int gpus,
                     CacheKind cache_kind, i64 lanes) {
    Run run;
    sim::Interconnect net;
    sim::MemoryNode node;
    MemoDb db{{.key_dim = 16, .tau = 0.92, .overlap_slices = overlap,
               .ivf = {.nlist = 2, .train_size = 8}},
              &net, &node};
    // Wrappers share ONE registry (the multi-GPU configuration) so keys —
    // and therefore hit patterns — match the single-GPU run.
    auto reg = std::make_shared<encoder::EncoderRegistry>(
        encoder::EncoderConfig{.input_hw = 16, .embed_dim = 16});
    std::vector<std::unique_ptr<sim::Device>> devs;
    std::vector<std::unique_ptr<MemoizedLamino>> mls;
    std::vector<MemoizedLamino*> ptrs;
    for (int d = 0; d < gpus; ++d) {
      devs.push_back(std::make_unique<sim::Device>(d));
      mls.push_back(std::make_unique<MemoizedLamino>(
          ops,
          MemoConfig{.enable = true, .tau = 0.92, .cache = cache_kind,
                     .key_dim = 16, .encoder_hw = 16},
          devs.back().get(), &db, reg));
      ptrs.push_back(mls.back().get());
    }
    StageExecutor exec(ptrs);
    ThreadPool pool(threads);
    exec.set_pool(&pool);
    exec.set_pipeline_depth(depth);
    exec.set_tail_lanes(lanes);
    auto make_work = [&](OpKind kind, Array3D<cfloat>& dst, bool mixed) {
      const bool adj = kind == OpKind::Fu1DAdj;
      const Array3D<cfloat>& src = adj ? base_u1 : u;
      const Array3D<cfloat>& alt = adj ? churn_u1 : churn_obj;
      std::vector<StageChunk> w;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        const auto& spec = chunks[c];
        const auto& in = (mixed && c % 2 == 1) ? alt : src;
        w.push_back({spec, in.slices(spec.begin, spec.count),
                     dst.slices(spec.begin, spec.count)});
      }
      return w;
    };
    // Kind-alternating sequence: miss pass per kind, then mixed passes.
    const struct {
      OpKind kind;
      bool mixed;
    } passes[] = {{OpKind::Fu1D, false},
                  {OpKind::Fu1DAdj, false},
                  {OpKind::Fu1D, true},
                  {OpKind::Fu1DAdj, true},
                  {OpKind::Fu1D, true}};
    sim::VTime t = 0;
    for (const auto& p : passes) {
      run.outs.emplace_back(p.kind == OpKind::Fu1DAdj ? g.object_shape()
                                                      : g.u1_shape());
      auto w = make_work(p.kind, run.outs.back(), p.mixed);
      auto rep = exec.run_stage(p.kind, w, t);
      t = rep.done;
      run.recs.push_back(std::move(rep.records));
      run.dones.push_back(t);
    }
    exec.settle();  // close the pipelined round before reading shared state
    u64 fp = kFnvOffsetBasis;
    for (const auto& ml : mls)
      if (ml->cache() != nullptr) fp ^= ml->cache()->fingerprint();
    run.cache_fp = fp;
    run.db_entries = db.total_entries();
    run.counters = exec.counters();
    return run;
  };

  auto expect_same = [](const Run& a, const Run& b) {
    ASSERT_EQ(a.outs.size(), b.outs.size());
    for (std::size_t p = 0; p < a.outs.size(); ++p) {
      for (i64 i = 0; i < a.outs[p].size(); ++i)
        ASSERT_EQ(a.outs[p].data()[i], b.outs[p].data()[i]) << "pass " << p;
      ASSERT_EQ(a.recs[p].size(), b.recs[p].size());
      for (std::size_t i = 0; i < a.recs[p].size(); ++i) {
        EXPECT_EQ(int(a.recs[p][i].outcome), int(b.recs[p][i].outcome));
        EXPECT_EQ(a.recs[p][i].encode_s, b.recs[p][i].encode_s);
        EXPECT_EQ(a.recs[p][i].db_s, b.recs[p][i].db_s);
        EXPECT_EQ(a.recs[p][i].compute_s, b.recs[p][i].compute_s);
        EXPECT_EQ(a.recs[p][i].copy_s, b.recs[p][i].copy_s);
      }
      EXPECT_EQ(a.dones[p], b.dones[p]);
    }
    EXPECT_EQ(a.cache_fp, b.cache_fp);
    EXPECT_EQ(a.db_entries, b.db_entries);
    EXPECT_EQ(a.counters.miss, b.counters.miss);
    EXPECT_EQ(a.counters.db_hit, b.counters.db_hit);
    EXPECT_EQ(a.counters.cache_hit, b.counters.cache_hit);
  };

  for (const int gpus : {1, 2}) {
    const Run ref = run_cfg(1, 0, 0, gpus, CacheKind::Private, 1);
    // The mixed passes must really mix outcomes or the matrix is vacuous.
    u64 hits = 0, misses = 0;
    for (const auto& recs : ref.recs)
      for (const auto& r : recs) {
        hits += r.outcome == MemoOutcome::DbHit ||
                r.outcome == MemoOutcome::CacheHit;
        misses += r.outcome == MemoOutcome::Miss;
      }
    EXPECT_GT(hits, 0u);
    EXPECT_GT(misses, 0u);
    for (const unsigned threads : {1u, 4u}) {
      for (const i64 overlap : {i64(0), i64(4)}) {
        for (const i64 depth : {i64(0), i64(2), i64(4)}) {
          // Tail lanes only matter when the pipeline defers tails; depth 0
          // drains inline, so one lane value suffices there.
          for (const i64 lanes : depth == 0 ? std::vector<i64>{1}
                                            : std::vector<i64>{1, 2, 4}) {
            SCOPED_TRACE("gpus=" + std::to_string(gpus) +
                         " threads=" + std::to_string(threads) +
                         " overlap=" + std::to_string(overlap) +
                         " depth=" + std::to_string(depth) +
                         " lanes=" + std::to_string(lanes));
            expect_same(ref, run_cfg(threads, overlap, depth, gpus,
                                     CacheKind::Private, lanes));
          }
        }
      }
    }
  }

  // Kind-coupled cache (GlobalCache FIFO eviction crosses kinds): the
  // engine must fall back to a full settle at stage entry AND pin every
  // tail to lane 0 (cross-kind FIFO order) — bit-identical for every depth
  // and every configured lane count.
  {
    const Run ref = run_cfg(1, 0, 0, 1, CacheKind::Global, 1);
    for (const i64 depth : {i64(0), i64(3)}) {
      for (const i64 lanes : {i64(1), i64(4)}) {
        SCOPED_TRACE("global-cache depth=" + std::to_string(depth) +
                     " lanes=" + std::to_string(lanes));
        expect_same(ref, run_cfg(4, 4, depth, 1, CacheKind::Global, lanes));
      }
    }
  }
}

// Tracing joins the bit-identity matrix: enabling the obs trace recorder
// (rings filling from every pool/drainer thread) must not perturb outputs,
// per-chunk records, cache fingerprints, DB entry counts or virtual times
// for any threads × lanes combination. Runs with recording ON are compared
// against the untraced serial reference — under TSan this also hammers the
// recorder's ring registration/push/drain paths from the worker threads.
TEST(Concurrency, TraceOnOffBitIdentityMatrix) {
  lamino::Operators ops{lamino::Geometry::cube(10)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 9));
  Array3D<cfloat> base_u1(g.u1_shape());
  Array3D<cfloat> churn_obj(g.object_shape()), churn_u1(g.u1_shape());
  {
    Rng rng(78);
    auto fill = [&rng](Array3D<cfloat>& a) {
      for (i64 i = 0; i < a.size(); ++i)
        a.data()[i] = cfloat(float(rng.normal()), float(rng.normal()));
    };
    fill(base_u1);
    fill(churn_obj);
    fill(churn_u1);
  }
  auto chunks = lamino::make_chunks(g.n1, 2);

  struct Run {
    std::vector<Array3D<cfloat>> outs;
    std::vector<std::vector<ChunkRecord>> recs;
    std::vector<sim::VTime> dones;
    u64 cache_fp = 0;
    u64 db_entries = 0;
  };
  auto run_cfg = [&](unsigned threads, i64 lanes, bool traced) {
    auto& rec = obs::TraceRecorder::instance();
    if (traced) rec.enable();
    Run run;
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    MemoDb db{{.key_dim = 16, .tau = 0.92, .overlap_slices = 4,
               .ivf = {.nlist = 2, .train_size = 8}},
              &net, &node};
    MemoizedLamino ml(ops, {.enable = true, .tau = 0.92, .key_dim = 16,
                            .encoder_hw = 16},
                      &dev, &db);
    ThreadPool pool(threads);
    ml.executor().set_pool(&pool);
    ml.executor().set_pipeline_depth(2);
    ml.executor().set_tail_lanes(lanes);
    auto make_work = [&](OpKind kind, Array3D<cfloat>& dst, bool mixed) {
      const bool adj = kind == OpKind::Fu1DAdj;
      const Array3D<cfloat>& src = adj ? base_u1 : u;
      const Array3D<cfloat>& alt = adj ? churn_u1 : churn_obj;
      std::vector<StageChunk> w;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        const auto& spec = chunks[c];
        const auto& in = (mixed && c % 2 == 1) ? alt : src;
        w.push_back({spec, in.slices(spec.begin, spec.count),
                     dst.slices(spec.begin, spec.count)});
      }
      return w;
    };
    const struct {
      OpKind kind;
      bool mixed;
    } passes[] = {{OpKind::Fu1D, false},
                  {OpKind::Fu1DAdj, false},
                  {OpKind::Fu1D, true},
                  {OpKind::Fu1DAdj, true}};
    sim::VTime t = 0;
    for (const auto& p : passes) {
      run.outs.emplace_back(p.kind == OpKind::Fu1DAdj ? g.object_shape()
                                                      : g.u1_shape());
      auto w = make_work(p.kind, run.outs.back(), p.mixed);
      auto rep = ml.executor().run_stage(p.kind, w, t);
      t = rep.done;
      run.recs.push_back(std::move(rep.records));
      run.dones.push_back(t);
    }
    ml.executor().settle();
    run.cache_fp = ml.cache() != nullptr ? ml.cache()->fingerprint() : 0;
    run.db_entries = db.total_entries();
    if (traced) {
      rec.disable();
      rec.clear();
    }
    return run;
  };

  const Run ref = run_cfg(1, 1, /*traced=*/false);
  for (const unsigned threads : {1u, 4u}) {
    for (const i64 lanes : {i64(1), i64(4)}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " lanes=" + std::to_string(lanes));
      const Run got = run_cfg(threads, lanes, /*traced=*/true);
      ASSERT_EQ(ref.outs.size(), got.outs.size());
      for (std::size_t p = 0; p < ref.outs.size(); ++p) {
        for (i64 i = 0; i < ref.outs[p].size(); ++i)
          ASSERT_EQ(ref.outs[p].data()[i], got.outs[p].data()[i])
              << "pass " << p;
        ASSERT_EQ(ref.recs[p].size(), got.recs[p].size());
        for (std::size_t i = 0; i < ref.recs[p].size(); ++i) {
          EXPECT_EQ(int(ref.recs[p][i].outcome), int(got.recs[p][i].outcome));
          EXPECT_EQ(ref.recs[p][i].encode_s, got.recs[p][i].encode_s);
          EXPECT_EQ(ref.recs[p][i].db_s, got.recs[p][i].db_s);
          EXPECT_EQ(ref.recs[p][i].compute_s, got.recs[p][i].compute_s);
          EXPECT_EQ(ref.recs[p][i].copy_s, got.recs[p][i].copy_s);
        }
        EXPECT_EQ(ref.dones[p], got.dones[p]);
      }
      EXPECT_EQ(ref.cache_fp, got.cache_fp);
      EXPECT_EQ(ref.db_entries, got.db_entries);
    }
  }
}

// search_batch must be result- and count-equivalent to looping search, for
// every index type and any pool width.
TEST(Concurrency, SearchBatchMatchesLoopedSearch) {
  constexpr i64 kDim = 12;
  constexpr i64 kAdds = 200;
  constexpr i64 kQueries = 64;
  constexpr i64 kK = 3;
  auto fill = [&](ann::Index& idx, u64 seed) {
    Rng rng(seed);
    for (i64 i = 0; i < kAdds; ++i) {
      std::vector<float> v(static_cast<size_t>(kDim));
      for (auto& x : v) x = float(rng.normal());
      idx.add(u64(i), v);
    }
  };
  std::vector<float> queries(static_cast<size_t>(kQueries * kDim));
  {
    Rng rng(55);
    for (auto& x : queries) x = float(rng.normal());
  }
  ThreadPool pool(4);
  auto check = [&](ann::Index& a, ann::Index& b, const char* name) {
    SCOPED_TRACE(name);
    fill(a, 7);
    fill(b, 7);
    ASSERT_EQ(a.distance_evals(), b.distance_evals());
    auto batched = a.search_batch(queries, kK, &pool);
    std::vector<std::vector<ann::Neighbor>> looped;
    for (i64 q = 0; q < kQueries; ++q)
      looped.push_back(b.search(
          {queries.data() + size_t(q * kDim), size_t(kDim)}, kK));
    ASSERT_EQ(batched.size(), looped.size());
    for (std::size_t q = 0; q < batched.size(); ++q) {
      ASSERT_EQ(batched[q].size(), looped[q].size()) << q;
      for (std::size_t j = 0; j < batched[q].size(); ++j) {
        EXPECT_EQ(batched[q][j].id, looped[q][j].id) << q;
        EXPECT_EQ(batched[q][j].dist, looped[q][j].dist) << q;
      }
    }
    // Per-query accumulation must not lose or double-count evaluations.
    EXPECT_EQ(a.distance_evals(), b.distance_evals());
  };
  {
    ann::FlatIndex a(kDim), b(kDim);
    check(a, b, "flat");
  }
  {
    ann::IvfFlatIndex a(kDim, {.nlist = 4, .train_size = 32});
    ann::IvfFlatIndex b(kDim, {.nlist = 4, .train_size = 32});
    check(a, b, "ivf");
  }
  {
    ann::NswIndex a(kDim), b(kDim);
    check(a, b, "nsw");
  }
}

// Concurrent batched searches against one shared index: the satellite data
// race on dist_evals_ (mutated from const search paths) is fixed — counts
// must survive exactly.
TEST(Concurrency, SharedIndexParallelSearchCountsEveryEval) {
  constexpr i64 kDim = 8;
  ann::FlatIndex idx(kDim);
  Rng rng(3);
  for (i64 i = 0; i < 64; ++i) {
    std::vector<float> v(static_cast<size_t>(kDim));
    for (auto& x : v) x = float(rng.normal());
    idx.add(u64(i), v);
  }
  const u64 before = idx.distance_evals();
  std::vector<float> queries(size_t(128 * kDim));
  for (auto& x : queries) x = float(rng.normal());
  ThreadPool pool(8);
  (void)idx.search_batch(queries, 1, &pool);
  // Flat search evaluates every resident vector once per query.
  EXPECT_EQ(idx.distance_evals() - before, u64(128 * 64));
}

}  // namespace
}  // namespace mlr::memo
