// Concurrency tests for the batched stage-execution engine's shared state:
// the memoization caches and the KvStore are hammered from many threads and
// must neither lose counter updates nor corrupt entries; the StageExecutor
// must produce bit-identical results and virtual times for any pool width.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"
#include "lamino/phantom.hpp"
#include "memo/memo_cache.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"

namespace mlr::memo {
namespace {

std::vector<float> unit_key(i64 dim, i64 hot) {
  std::vector<float> k(static_cast<size_t>(dim), 0.0f);
  k[size_t(hot % dim)] = 1.0f;
  return k;
}

std::vector<cfloat> random_value(i64 n, u64 seed) {
  Rng rng(seed);
  std::vector<cfloat> v(static_cast<size_t>(n));
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

// N threads × M rounds of lookup+insert against one cache; every counter
// update must survive (atomic counters, no lost updates) and every lookup
// that returns a value must return an intact, internally-consistent entry.
void hammer_cache(MemoCache& cache, int threads, int rounds, i64 locations) {
  std::atomic<u64> expected_lookups{0};
  std::atomic<u64> torn_values{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(u64(1000 + t));
      for (int r = 0; r < rounds; ++r) {
        const i64 loc = rng.uniform_int(0, locations - 1);
        const auto kind = OpKind(int(rng.uniform_int(0, kNumOpKinds - 1)));
        // Key and value both derive from hot = loc mod dim, so locations
        // sharing a key (GlobalCache cross-location hits) also share the
        // expected value — any mismatch is a genuinely torn/corrupt entry.
        const i64 hot = loc % 16;
        if (rng.uniform() < 0.5) {
          // Value encodes its own key id in every element so a torn read
          // (mixed entries) is detectable.
          std::vector<cfloat> v(32, cfloat(float(hot), float(hot)));
          cache.insert(kind, loc, unit_key(16, hot), v, 1.0);
        } else {
          auto got = cache.lookup(kind, loc, unit_key(16, hot), 0.9, 1.0);
          expected_lookups.fetch_add(1);
          if (got.has_value()) {
            for (const auto& x : *got) {
              if (x != cfloat(float(hot), float(hot))) {
                torn_values.fetch_add(1);
                break;
              }
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(torn_values.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, expected_lookups.load());  // no lost updates
  EXPECT_LE(stats.hits, stats.lookups);
  EXPECT_GE(stats.hit_rate(), 0.0);
  EXPECT_LE(stats.hit_rate(), 1.0);
}

TEST(Concurrency, PrivateCacheParallelLookupInsert) {
  PrivateCache cache(64);
  hammer_cache(cache, 8, 2000, 64);
}

TEST(Concurrency, GlobalCacheParallelLookupInsert) {
  GlobalCache cache(64);
  hammer_cache(cache, 8, 2000, 64);
}

TEST(Concurrency, ShardedGlobalCacheParallelLookupInsert) {
  GlobalCache cache(64, /*shards=*/8);
  EXPECT_EQ(cache.shards(), 8);
  hammer_cache(cache, 8, 2000, 64);
}

TEST(Concurrency, ShardedGlobalCacheKeepsSameLocationSharing) {
  // Sharding must not break the contract that a location can re-hit the
  // entry it inserted.
  GlobalCache cache(64, /*shards=*/8);
  for (i64 loc = 0; loc < 32; ++loc)
    cache.insert(OpKind::Fu2D, loc, unit_key(16, loc),
                 random_value(8, u64(loc)), 1.0);
  for (i64 loc = 0; loc < 32; ++loc)
    EXPECT_TRUE(
        cache.lookup(OpKind::Fu2D, loc, unit_key(16, loc), 0.9).has_value())
        << "location " << loc;
}

TEST(Concurrency, KvStoreParallelGetAsyncPut) {
  kvstore::KvStore store(8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 1000;
  std::vector<std::thread> workers;
  std::atomic<u64> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(u64(7 + t));
      for (int r = 0; r < kRounds; ++r) {
        const u64 key = u64(rng.uniform_int(0, 255));
        if (rng.uniform() < 0.5) {
          // Every blob for `key` holds key-derived bytes — torn or
          // cross-keyed reads are detectable.
          kvstore::Blob b(64, std::byte(key & 0xff));
          store.put_async(key, std::move(b));
        } else {
          auto got = store.get(key);
          if (got.has_value()) {
            for (const auto byte : *got) {
              if (byte != std::byte(key & 0xff)) {
                mismatches.fetch_add(1);
                break;
              }
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  store.drain();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(store.size(), 256u);
  // bytes() must agree with the surviving entries (no double counting).
  EXPECT_EQ(store.bytes(), store.size() * 64u);
}

TEST(Concurrency, PoolScopedParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 0, 1000, [&](i64 i) { touched[size_t(i)]++; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

// The engine contract: identical numerics AND identical virtual-clock
// schedule for any pool width.
TEST(Concurrency, StageExecutorDeterministicAcrossPoolWidths) {
  lamino::Operators ops{lamino::Geometry::cube(8)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 9));
  auto chunks = lamino::make_chunks(g.n1, 2);

  auto run_with_pool = [&](unsigned threads, Array3D<cfloat>& out1,
                           Array3D<cfloat>& out2) {
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    MemoDb db{{.key_dim = 16, .tau = 0.92,
               .ivf = {.nlist = 2, .train_size = 8}},
              &net, &node};
    MemoizedLamino ml(ops, {.enable = true, .tau = 0.92, .key_dim = 16,
                            .encoder_hw = 16},
                      &dev, &db);
    ThreadPool pool(threads);
    ml.executor().set_pool(&pool);
    auto make_work = [&](Array3D<cfloat>& dst) {
      std::vector<StageChunk> w;
      for (const auto& spec : chunks)
        w.push_back({spec, u.slices(spec.begin, spec.count),
                     dst.slices(spec.begin, spec.count)});
      return w;
    };
    auto w1 = make_work(out1);
    auto rep1 = ml.run_stage(OpKind::Fu1D, w1, 0.0);  // all misses
    auto w2 = make_work(out2);
    auto rep2 = ml.run_stage(OpKind::Fu1D, w2, rep1.done);  // all hits
    return std::pair{rep1.done, rep2.done};
  };

  Array3D<cfloat> s1(g.u1_shape()), s2(g.u1_shape());
  Array3D<cfloat> p1(g.u1_shape()), p2(g.u1_shape());
  const auto [s_done1, s_done2] = run_with_pool(1, s1, s2);
  const auto [p_done1, p_done2] = run_with_pool(4, p1, p2);
  // Bit-identical outputs…
  for (i64 i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1.data()[i], p1.data()[i]);
    ASSERT_EQ(s2.data()[i], p2.data()[i]);
  }
  // …and bit-identical virtual times.
  EXPECT_EQ(s_done1, p_done1);
  EXPECT_EQ(s_done2, p_done2);
}

}  // namespace
}  // namespace mlr::memo
