// Unit tests for src/obs: the metrics registry (counter/gauge/histogram
// semantics, deterministic bucket edges, order-independent snapshot merge,
// JSON dumps) and the trace recorder (span emission, ring bounds, the
// disabled-path no-op contract, Chrome-trace JSON well-formedness and the
// required-span schema).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mlr::obs {
namespace {

// --- Minimal JSON well-formedness checker -----------------------------------
// Recursive-descent validator (no tree built): enough to assert that the
// metrics and trace dumps are parseable JSON, without a JSON dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(unsigned(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string_view sv(lit);
    if (s_.compare(pos_, sv.size(), sv) != 0) return false;
    pos_ += sv.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(unsigned(s_[pos_])) != 0) ++pos_;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Instruments -------------------------------------------------------------

TEST(Metrics, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndRaise) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.raise(2.0);  // lower: no-op
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.raise(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, ExponentialEdgesGolden) {
  // The shared latency ladder is part of every histogram's identity: the
  // exact bits must never drift, or cross-process merges start throwing.
  const auto e = Histogram::exponential_edges(1e-6, 10.0, 29);
  ASSERT_EQ(e.size(), 29u);
  EXPECT_DOUBLE_EQ(e[0], 9.9999999999999995e-07);
  EXPECT_DOUBLE_EQ(e[1], 1.7782794100389229e-06);
  EXPECT_DOUBLE_EQ(e[7], 5.6234132519034914e-05);
  EXPECT_DOUBLE_EQ(e[14], 0.0031622776601683803);
  EXPECT_DOUBLE_EQ(e[28], 10.0);  // back() pinned to hi exactly
  for (std::size_t i = 1; i < e.size(); ++i) EXPECT_LT(e[i - 1], e[i]);
  // Re-derivation is bit-identical (fixed evaluation order).
  EXPECT_EQ(Histogram::exponential_edges(1e-6, 10.0, 29), e);

  const auto& v = vtime_edges_s();
  ASSERT_EQ(v.size(), 33u);
  EXPECT_DOUBLE_EQ(v.front(), 0.01);
  EXPECT_DOUBLE_EQ(v[16], 100.0000000000001);
  EXPECT_DOUBLE_EQ(v.back(), 1e6);
}

TEST(Metrics, HistogramBucketingAndQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_THROW(Histogram({2.0, 2.0}), std::exception);  // not increasing
  h.observe(0.5);   // bucket 0: (-inf, 1]
  h.observe(1.0);   // bucket 0 (right-closed)
  h.observe(1.5);   // bucket 1
  h.observe(3.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);

  HistogramSnapshot snap{"h", h.edges(), counts, h.count(), h.sum()};
  EXPECT_DOUBLE_EQ(snap.mean(), 106.0 / 5);
  // p100 clamps to the last finite edge; p0 to the first.
  EXPECT_LE(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 4.0);
  const double p50 = snap.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
}

TEST(Metrics, RegistryReferencesSurviveReset) {
  Registry reg;
  auto& c = reg.counter("a.count");
  auto& g = reg.gauge("a.peak");
  auto& h = reg.histogram("a.lat", {1.0, 2.0});
  c.add(5);
  g.raise(2.5);
  h.observe(1.5);
  reg.reset();
  // Same instruments, zeroed — the cached-reference hot-path pattern.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("a.count").value(), 1u);
  EXPECT_EQ(&reg.counter("a.count"), &c);
  EXPECT_EQ(&reg.histogram("a.lat", {9.0}), &h);  // edges pinned by first reg
}

TEST(Metrics, SnapshotMergeIsOrderIndependent) {
  Registry a, b;
  a.counter("x").add(3);
  a.gauge("g").raise(1.0);
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  b.counter("x").add(4);
  b.counter("y").add(1);
  b.gauge("g").raise(5.0);
  b.histogram("h", {1.0, 2.0}).observe(1.5);

  auto ab = a.snapshot();
  ab.merge(b.snapshot());
  auto ba = b.snapshot();
  ba.merge(a.snapshot());

  EXPECT_EQ(ab.counter_value("x"), 7u);
  EXPECT_EQ(ab.counter_value("y"), 1u);
  EXPECT_EQ(ab.counter_value("x"), ba.counter_value("x"));
  ASSERT_NE(ab.histogram("h"), nullptr);
  EXPECT_EQ(ab.histogram("h")->count, 2u);
  EXPECT_EQ(ab.histogram("h")->counts, ba.histogram("h")->counts);
  // The whole dump is identical either way: merge depends only on the
  // multiset of inputs.
  EXPECT_EQ(ab.to_json(), ba.to_json());
  // Gauges take the max.
  double g_ab = 0;
  for (const auto& [n, v] : ab.gauges)
    if (n == "g") g_ab = v;
  EXPECT_DOUBLE_EQ(g_ab, 5.0);
}

TEST(Metrics, MergeRejectsMismatchedEdges) {
  Registry a, b;
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  b.histogram("h", {1.0, 3.0}).observe(0.5);
  auto sa = a.snapshot();
  EXPECT_THROW(sa.merge(b.snapshot()), std::exception);
}

TEST(Metrics, SnapshotJsonIsWellFormed) {
  Registry reg;
  reg.counter("a\"quoted\\name").add(1);
  reg.gauge("g").set(0.25);
  reg.histogram("h", Histogram::exponential_edges(1e-6, 10.0, 5)).observe(1.0);
  const std::string js = reg.snapshot().to_json();
  JsonChecker chk(js);
  EXPECT_TRUE(chk.valid()) << js;
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"histograms\""), std::string::npos);
}

// --- Trace recorder ----------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tr = TraceRecorder::instance();
    tr.disable();
    tr.clear();
  }
  void TearDown() override {
    auto& tr = TraceRecorder::instance();
    tr.disable();
    tr.clear();
  }
};

TEST_F(TraceTest, DisabledRecorderBuffersNothing) {
  auto& tr = TraceRecorder::instance();
  const u64 before = tr.buffered_events();
  {
    MLR_TRACE_SPAN("obs_test.noop", "test");
    trace_instant("obs_test.i", "test");
    trace_async_begin("obs_test.a", "test", 1);
    trace_async_end("obs_test.a", "test", 1);
    trace_counter("obs_test.c", 1.0);
  }
  EXPECT_EQ(tr.buffered_events(), before);
}

TEST_F(TraceTest, JsonIsWellFormedAndCarriesAllEventKinds) {
  auto& tr = TraceRecorder::instance();
  tr.enable();
  {
    MLR_TRACE_SPAN("obs_test.span", "test", 7);
    trace_instant("obs_test.instant", "test");
    trace_async_begin("obs_test.async", "test", 42);
    trace_async_end("obs_test.async", "test", 42);
    trace_counter("obs_test.vclock", 123.5);
  }
  tr.disable();
  EXPECT_GE(tr.buffered_events(), 5u);
  const std::string js = tr.json();
  JsonChecker chk(js);
  EXPECT_TRUE(chk.valid()) << js;
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  for (const char* needle :
       {"obs_test.span", "obs_test.instant", "obs_test.async",
        "obs_test.vclock", "\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"b\"",
        "\"ph\":\"e\"", "\"ph\":\"C\"", "process_name"})
    EXPECT_NE(js.find(needle), std::string::npos) << needle;
}

TEST_F(TraceTest, SpanStartedWhileEnabledSurvivesDisable) {
  auto& tr = TraceRecorder::instance();
  tr.enable();
  const u64 before = tr.buffered_events();
  {
    MLR_TRACE_SPAN("obs_test.cross", "test");
    tr.disable();
  }  // dtor runs with recording off — must not emit, must not crash
  EXPECT_EQ(tr.buffered_events(), before);
}

TEST_F(TraceTest, RingIsBoundedAndCountsDrops) {
  auto& tr = TraceRecorder::instance();
  tr.enable();
  // Overflow one thread's ring: capacity is 1<<16 events.
  constexpr int kEvents = (1 << 16) + 500;
  for (int i = 0; i < kEvents; ++i) tr.instant("obs_test.flood", "test", u64(i));
  tr.disable();
  EXPECT_LE(tr.buffered_events(), u64(1) << 16);
  EXPECT_GE(tr.dropped_events(), 500u);
  // Drop count is exported in the JSON as a per-track marker.
  const std::string js = tr.json();
  EXPECT_NE(js.find("trace.dropped"), std::string::npos);
}

TEST_F(TraceTest, ThreadsGetDistinctTracks) {
  auto& tr = TraceRecorder::instance();
  tr.enable();
  trace_instant("obs_test.main", "test");
  std::thread([] { trace_instant("obs_test.worker", "test"); }).join();
  tr.disable();
  const std::string js = tr.json();
  JsonChecker chk(js);
  EXPECT_TRUE(chk.valid());
  EXPECT_NE(js.find("obs_test.main"), std::string::npos);
  EXPECT_NE(js.find("obs_test.worker"), std::string::npos);
}

}  // namespace
}  // namespace mlr::obs
