// Tests for the distributed memoization system: DB insert/query semantics,
// τ gating, coalescing, private vs global cache behaviour, and the memoized
// operator wrapper (exactness on miss, genuine reuse on hit).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lamino/phantom.hpp"
#include "memo/memo_cache.hpp"
#include "memo/memo_db.hpp"
#include "memo/memoized_ops.hpp"

namespace mlr::memo {
namespace {

std::vector<float> unit_key(i64 dim, i64 hot) {
  std::vector<float> k(static_cast<size_t>(dim), 0.0f);
  k[size_t(hot % dim)] = 1.0f;
  return k;
}

std::vector<cfloat> random_value(i64 n, u64 seed) {
  Rng rng(seed);
  std::vector<cfloat> v(static_cast<size_t>(n));
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

struct DbFixture {
  sim::Interconnect net;
  sim::MemoryNode node;
  MemoDb db;
  explicit DbFixture(MemoDbConfig cfg = {.key_dim = 8,
                                         .tau = 0.9,
                                         .ivf = {.nlist = 2, .train_size = 4}})
      : db(cfg, &net, &node) {}
};

TEST(MemoDb, MissOnEmpty) {
  DbFixture f;
  QueryRequest rq{OpKind::Fu1D, unit_key(8, 0)};
  auto replies = f.db.query_batch(std::vector<QueryRequest>{rq}, 0.0);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].hit);
  EXPECT_GT(replies[0].value_ready, 0.0);  // lookup latency still charged
}

TEST(MemoDb, InsertThenExactHit) {
  DbFixture f;
  auto key = unit_key(8, 3);
  auto value = random_value(64, 1);
  f.db.insert(OpKind::Fu1D, key, value, 0.0);
  auto replies = f.db.query_batch(
      std::vector<QueryRequest>{{OpKind::Fu1D, key}}, 1.0);
  ASSERT_TRUE(replies[0].hit);
  EXPECT_NEAR(replies[0].cosine, 1.0, 1e-6);
  ASSERT_EQ(replies[0].value.size(), value.size());
  for (std::size_t i = 0; i < value.size(); ++i)
    EXPECT_EQ(replies[0].value[i], value[i]);
}

TEST(MemoDb, TauGatesDissimilarKeys) {
  DbFixture f;
  f.db.insert(OpKind::Fu1D, unit_key(8, 0), random_value(16, 2), 0.0);
  // Orthogonal key: cosine 0 < τ → miss even though a nearest neighbour
  // exists.
  auto replies = f.db.query_batch(
      std::vector<QueryRequest>{{OpKind::Fu1D, unit_key(8, 1)}}, 1.0);
  EXPECT_FALSE(replies[0].hit);
}

TEST(MemoDb, OpKindsAreIsolated) {
  DbFixture f;
  auto key = unit_key(8, 2);
  f.db.insert(OpKind::Fu1D, key, random_value(16, 3), 0.0);
  auto replies = f.db.query_batch(
      std::vector<QueryRequest>{{OpKind::Fu2D, key}}, 1.0);
  EXPECT_FALSE(replies[0].hit);
  EXPECT_EQ(f.db.entries(OpKind::Fu1D), 1u);
  EXPECT_EQ(f.db.entries(OpKind::Fu2D), 0u);
}

TEST(MemoDb, NearDuplicateKeyHits) {
  DbFixture f;
  auto key = unit_key(8, 0);
  f.db.insert(OpKind::Fu2D, key, random_value(16, 4), 0.0);
  auto probe = key;
  probe[1] = 0.05f;  // tiny perturbation, cosine ≈ 0.9988
  auto replies = f.db.query_batch(
      std::vector<QueryRequest>{{OpKind::Fu2D, probe}}, 1.0);
  ASSERT_TRUE(replies[0].hit);
  EXPECT_GT(replies[0].cosine, 0.99);
}

TEST(MemoDb, CoalescingReducesMessageCount) {
  MemoDbConfig with{.key_dim = 60, .tau = 0.9, .coalesce = true};
  MemoDbConfig without{.key_dim = 60, .tau = 0.9, .coalesce = false};
  sim::Interconnect net1, net2;
  sim::MemoryNode n1, n2;
  MemoDb a(with, &net1, &n1), b(without, &net2, &n2);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 32; ++i) reqs.push_back({OpKind::Fu1D, unit_key(60, i)});
  (void)a.query_batch(reqs, 0.0);
  (void)b.query_batch(reqs, 0.0);
  // 60-d float keys = 240 B → 17 keys per 4 KB message → 2 messages vs 32.
  EXPECT_LT(a.messages_sent(), 4u);
  EXPECT_EQ(b.messages_sent(), 32u);
}

TEST(MemoDb, TimingAccumulates) {
  DbFixture f;
  f.db.insert(OpKind::Fu1D, unit_key(8, 0), random_value(512, 5), 0.0);
  (void)f.db.query_batch(
      std::vector<QueryRequest>{{OpKind::Fu1D, unit_key(8, 0)}}, 1.0);
  EXPECT_GT(f.db.timing().search_s, 0.0);
  EXPECT_GT(f.db.timing().comm_s, 0.0);
  EXPECT_GT(f.db.timing().value_serve_s, 0.0);
  EXPECT_EQ(f.db.timing().query_latency_us.count(), 1u);
}

TEST(MemoDb, AsyncInsertDoesNotBlock) {
  DbFixture f;
  // Insert returns immediately in host terms; the value must still become
  // visible for subsequent queries.
  for (int i = 0; i < 10; ++i)
    f.db.insert(OpKind::Fu1D, unit_key(8, i), random_value(32, u64(i)), 0.0);
  EXPECT_EQ(f.db.entries(OpKind::Fu1D), 10u);
  EXPECT_EQ(f.db.total_entries(), 10u);
}

// ---------------------------------------------------------------------------
// Caches.

TEST(PrivateCache, OneComparisonPerLookup) {
  PrivateCache cache(16);
  auto key = unit_key(8, 0);
  auto val = random_value(8, 6);
  cache.insert(OpKind::Fu2D, 3, key, val);
  (void)cache.lookup(OpKind::Fu2D, 3, key, 0.9);
  EXPECT_EQ(cache.stats().comparisons, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Lookup at an empty location costs zero comparisons.
  (void)cache.lookup(OpKind::Fu2D, 4, key, 0.9);
  EXPECT_EQ(cache.stats().comparisons, 1u);
}

TEST(PrivateCache, LocationIsolation) {
  PrivateCache cache(8);
  cache.insert(OpKind::Fu1D, 0, unit_key(8, 0), random_value(4, 7));
  EXPECT_FALSE(cache.lookup(OpKind::Fu1D, 1, unit_key(8, 0), 0.9).has_value());
  EXPECT_TRUE(cache.lookup(OpKind::Fu1D, 0, unit_key(8, 0), 0.9).has_value());
}

TEST(PrivateCache, FifoReplacement) {
  PrivateCache cache(4);
  auto k1 = unit_key(8, 0), k2 = unit_key(8, 1);
  cache.insert(OpKind::Fu1D, 2, k1, random_value(4, 8));
  cache.insert(OpKind::Fu1D, 2, k2, random_value(4, 9));  // replaces
  EXPECT_FALSE(cache.lookup(OpKind::Fu1D, 2, k1, 0.9).has_value());
  EXPECT_TRUE(cache.lookup(OpKind::Fu1D, 2, k2, 0.9).has_value());
}

TEST(PrivateCache, TauGates) {
  PrivateCache cache(4);
  cache.insert(OpKind::Fu1D, 0, unit_key(8, 0), random_value(4, 10));
  auto probe = unit_key(8, 0);
  probe[1] = 1.0f;  // key cosine ≈ 0.707, estimated chunk cosine = 0.5
  EXPECT_FALSE(cache.lookup(OpKind::Fu1D, 0, probe, 0.9).has_value());
  EXPECT_TRUE(cache.lookup(OpKind::Fu1D, 0, probe, 0.45).has_value());
}

TEST(PrivateCache, KindIsolation) {
  PrivateCache cache(4);
  cache.insert(OpKind::Fu1D, 0, unit_key(8, 0), random_value(4, 11));
  EXPECT_FALSE(cache.lookup(OpKind::Fu2D, 0, unit_key(8, 0), 0.9).has_value());
}

TEST(GlobalCache, ScansAllResidentEntries) {
  GlobalCache cache(16);
  for (i64 loc = 0; loc < 8; ++loc)
    cache.insert(OpKind::Fu2D, loc, unit_key(8, loc), random_value(4, u64(loc)));
  (void)cache.lookup(OpKind::Fu2D, 0, unit_key(8, 0), 0.9);
  // One lookup compared against all 8 entries — the 64× overhead the paper
  // measured on its 1K³ dataset scales the same way.
  EXPECT_EQ(cache.stats().comparisons, 8u);
}

TEST(GlobalCache, CrossLocationSharing) {
  GlobalCache cache(16);
  cache.insert(OpKind::Fu2D, 0, unit_key(8, 5), random_value(4, 12));
  // A different location can reuse the entry — the global cache's one upside.
  EXPECT_TRUE(cache.lookup(OpKind::Fu2D, 7, unit_key(8, 5), 0.9).has_value());
}

TEST(GlobalCache, FifoEvictionAtCapacity) {
  GlobalCache cache(2);
  cache.insert(OpKind::Fu1D, 0, unit_key(8, 0), random_value(4, 13));
  cache.insert(OpKind::Fu1D, 1, unit_key(8, 1), random_value(4, 14));
  cache.insert(OpKind::Fu1D, 2, unit_key(8, 2), random_value(4, 15));
  EXPECT_FALSE(cache.lookup(OpKind::Fu1D, 0, unit_key(8, 0), 0.9).has_value());
  EXPECT_TRUE(cache.lookup(OpKind::Fu1D, 2, unit_key(8, 2), 0.9).has_value());
}

// ---------------------------------------------------------------------------
// MemoizedLamino.

struct WrapperFixture {
  lamino::Operators ops{lamino::Geometry::cube(8)};
  sim::Device dev{0};
  sim::Interconnect net;
  sim::MemoryNode node;
  MemoDb db{{.key_dim = 16, .tau = 0.92, .ivf = {.nlist = 2, .train_size = 8}},
            &net, &node};
};

TEST(MemoizedLamino, DisabledPathMatchesPlainOperators) {
  WrapperFixture f;
  MemoizedLamino ml(f.ops, {.enable = false}, &f.dev, nullptr);
  const auto& g = f.ops.geometry();
  auto u = lamino::to_complex(
      lamino::make_phantom(g.object_shape(), lamino::PhantomKind::BrainTissue, 1));
  Array3D<cfloat> want(g.u1_shape()), got(g.u1_shape());
  f.ops.fu1d(u, want);
  auto chunks = lamino::make_chunks(g.n1, 4);
  std::vector<StageChunk> work;
  for (const auto& spec : chunks)
    work.push_back({spec, u.slices(spec.begin, spec.count),
                    got.slices(spec.begin, spec.count)});
  auto report = ml.run_stage(OpKind::Fu1D, work, 0.0);
  EXPECT_LT(relative_error<cfloat>(want.span(), got.span()), 1e-5);
  EXPECT_GT(report.done, 0.0);
  for (const auto& r : report.records)
    EXPECT_EQ(r.outcome, MemoOutcome::Computed);
}

TEST(MemoizedLamino, FirstPassMissesSecondPassHits) {
  WrapperFixture f;
  MemoizedLamino ml(f.ops, {.enable = true, .tau = 0.92, .key_dim = 16,
                            .encoder_hw = 16},
                    &f.dev, &f.db);
  const auto& g = f.ops.geometry();
  auto u = lamino::to_complex(
      lamino::make_phantom(g.object_shape(), lamino::PhantomKind::BrainTissue, 2));
  Array3D<cfloat> out1(g.u1_shape()), out2(g.u1_shape());
  auto chunks = lamino::make_chunks(g.n1, 4);
  auto make_work = [&](Array3D<cfloat>& dst) {
    std::vector<StageChunk> w;
    for (const auto& spec : chunks)
      w.push_back({spec, u.slices(spec.begin, spec.count),
                   dst.slices(spec.begin, spec.count)});
    return w;
  };
  auto w1 = make_work(out1);
  auto rep1 = ml.run_stage(OpKind::Fu1D, w1, 0.0);
  for (const auto& r : rep1.records) EXPECT_EQ(r.outcome, MemoOutcome::Miss);
  // Identical input again: the private cache serves every chunk.
  auto w2 = make_work(out2);
  auto rep2 = ml.run_stage(OpKind::Fu1D, w2, rep1.done);
  for (const auto& r : rep2.records)
    EXPECT_EQ(r.outcome, MemoOutcome::CacheHit);
  // Reused values are the stored exact results.
  EXPECT_LT(relative_error<cfloat>(out1.span(), out2.span()), 1e-6);
  // And the reuse pass is much faster in virtual time.
  EXPECT_LT(rep2.done - rep1.done, 0.5 * rep1.done);
}

TEST(MemoizedLamino, DbServesWhenCacheDisabled) {
  WrapperFixture f;
  MemoizedLamino ml(f.ops, {.enable = true, .tau = 0.92,
                            .cache = CacheKind::None, .key_dim = 16,
                            .encoder_hw = 16},
                    &f.dev, &f.db);
  const auto& g = f.ops.geometry();
  auto u = lamino::to_complex(
      lamino::make_phantom(g.object_shape(), lamino::PhantomKind::Pcb, 3));
  Array3D<cfloat> out1(g.u1_shape()), out2(g.u1_shape());
  auto chunks = lamino::make_chunks(g.n1, 4);
  std::vector<StageChunk> w1, w2;
  for (const auto& spec : chunks) {
    w1.push_back({spec, u.slices(spec.begin, spec.count),
                  out1.slices(spec.begin, spec.count)});
    w2.push_back({spec, u.slices(spec.begin, spec.count),
                  out2.slices(spec.begin, spec.count)});
  }
  auto rep1 = ml.run_stage(OpKind::Fu1D, w1, 0.0);
  auto rep2 = ml.run_stage(OpKind::Fu1D, w2, rep1.done);
  for (const auto& r : rep2.records) EXPECT_EQ(r.outcome, MemoOutcome::DbHit);
  EXPECT_LT(relative_error<cfloat>(out1.span(), out2.span()), 1e-6);
}

TEST(MemoizedLamino, CountersTrackOutcomes) {
  WrapperFixture f;
  MemoizedLamino ml(f.ops, {.enable = true, .key_dim = 16, .encoder_hw = 16},
                    &f.dev, &f.db);
  const auto& g = f.ops.geometry();
  auto u = lamino::to_complex(
      lamino::make_phantom(g.object_shape(), lamino::PhantomKind::BrainTissue, 4));
  Array3D<cfloat> out(g.u1_shape());
  auto chunks = lamino::make_chunks(g.n1, 4);
  std::vector<StageChunk> w;
  for (const auto& spec : chunks)
    w.push_back({spec, u.slices(spec.begin, spec.count),
                 out.slices(spec.begin, spec.count)});
  (void)ml.run_stage(OpKind::Fu1D, w, 0.0);
  (void)ml.run_stage(OpKind::Fu1D, w, 1.0);
  EXPECT_EQ(ml.counters().miss, chunks.size());
  EXPECT_EQ(ml.counters().cache_hit, chunks.size());
  EXPECT_EQ(ml.counters().total(), 2 * chunks.size());
}

TEST(MemoizedLamino, EncoderTrainingImprovesAndFreezes) {
  WrapperFixture f;
  MemoizedLamino ml(f.ops, {.enable = true, .key_dim = 16, .encoder_hw = 16},
                    &f.dev, &f.db);
  Rng rng(5);
  std::vector<std::vector<cfloat>> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(random_value(8 * 8, u64(i)));
  const double tail = ml.train_encoder(samples, 8, 8, 60);
  EXPECT_GE(tail, 0.0);
  EXPECT_TRUE(ml.key_encoder().quantized());
}

TEST(MemoizedLamino, Fu2dFusedStageMemoizes) {
  WrapperFixture f;
  MemoizedLamino ml(f.ops, {.enable = true, .key_dim = 16, .encoder_hw = 16},
                    &f.dev, &f.db);
  const auto& g = f.ops.geometry();
  Rng rng(6);
  Array3D<cfloat> u1(g.u1_shape());
  for (auto& x : u1) x = cfloat(float(rng.normal()), float(rng.normal()));
  Array3D<cfloat> dhat(g.data_shape());
  for (auto& x : dhat) x = cfloat(float(rng.normal()), float(rng.normal()));
  auto chunks = lamino::make_chunks(g.h, 4);
  // Pack inputs/refs per chunk.
  std::vector<std::vector<cfloat>> ins(chunks.size()), refs(chunks.size()),
      outs1(chunks.size()), outs2(chunks.size());
  auto run = [&](std::vector<std::vector<cfloat>>& outs, sim::VTime t0) {
    std::vector<StageChunk> w;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const auto& spec = chunks[i];
      ins[i].resize(size_t(spec.count * g.n1 * g.n2));
      refs[i].resize(size_t(spec.count * g.ntheta * g.w));
      outs[i].resize(size_t(spec.count * g.ntheta * g.w));
      f.ops.pack_u1_rows(u1, spec, ins[i]);
      f.ops.pack_dhat_rows(dhat, spec, refs[i]);
      w.push_back({spec, ins[i], outs[i], refs[i]});
    }
    return ml.run_stage(OpKind::Fu2D, w, t0);
  };
  auto rep1 = run(outs1, 0.0);
  auto rep2 = run(outs2, rep1.done);
  for (const auto& r : rep2.records)
    EXPECT_EQ(r.outcome, MemoOutcome::CacheHit);
  for (std::size_t i = 0; i < chunks.size(); ++i)
    EXPECT_LT(relative_error<cfloat>(outs1[i], outs2[i]), 1e-6);
}

TEST(KeyCosine, BasicProperties) {
  std::vector<float> a{1, 0}, b{0, 1}, c{3, 0};
  EXPECT_NEAR(key_cosine(a, b), 0.0, 1e-12);
  EXPECT_NEAR(key_cosine(a, c), 1.0, 1e-12);
  EXPECT_NEAR(key_cosine(a, a), 1.0, 1e-12);
}

}  // namespace
}  // namespace mlr::memo
