// Tests for the public mlr::Reconstructor facade.
#include <gtest/gtest.h>

#include "core/mlr.hpp"

namespace mlr {
namespace {

ReconstructionConfig tiny(bool memoize) {
  ReconstructionConfig cfg;
  cfg.dataset = Dataset::small(10);
  cfg.iters = 4;
  cfg.inner_iters = 2;
  cfg.chunk_size = 4;
  cfg.memoize = memoize;
  return cfg;
}

TEST(Dataset, PresetsScaleToPaperSizes) {
  auto s = Dataset::small();
  auto m = Dataset::medium();
  auto l = Dataset::large();
  EXPECT_EQ(s.paper_n, 1024);
  EXPECT_EQ(m.paper_n, 1536);
  EXPECT_EQ(l.paper_n, 2048);
  EXPECT_GT(s.work_scale(), 1.0);
  EXPECT_GT(l.work_scale(), s.work_scale() * 0.9);
}

TEST(Reconstructor, BaselineRunProducesReport) {
  Reconstructor rec(tiny(false));
  auto rep = rec.run();
  EXPECT_GT(rep.vtime_s, 0.0);
  EXPECT_GT(rep.real_seconds, 0.0);
  EXPECT_LT(rep.error_vs_truth, 1.0);
  EXPECT_EQ(rep.memo.miss + rep.memo.db_hit + rep.memo.cache_hit, 0u);
  EXPECT_GT(rep.memo.computed, 0u);
  EXPECT_GT(rep.peak_rss_bytes, 0.0);
}

TEST(Reconstructor, MemoizedRunFasterThanBaseline) {
  Reconstructor base(tiny(false));
  auto rb = base.run();
  Reconstructor memo_rec(tiny(true));
  auto rm = memo_rec.run();
  EXPECT_GT(rm.memo.cache_hit + rm.memo.db_hit, 0u);
  EXPECT_LT(rm.vtime_s, rb.vtime_s);
  // Reconstructions remain close (both approach the same phantom).
  EXPECT_LT(rm.error_vs_truth, rb.error_vs_truth + 0.35);
}

TEST(Reconstructor, OffloadReducesPeakRss) {
  auto cfg = tiny(false);
  cfg.offload = OffloadMode::Planned;
  Reconstructor rec(cfg);
  auto rep = rec.run();
  EXPECT_FALSE(rep.offload_plan.entries.empty());
  EXPECT_GT(rep.offload_plan.memory_saving_frac, 0.0);
  EXPECT_GT(rep.offload_plan.mt(), 0.0);
}

TEST(Reconstructor, GreedyOffloadStallsMore) {
  auto planned_cfg = tiny(false);
  planned_cfg.offload = OffloadMode::Planned;
  Reconstructor planned(planned_cfg);
  auto rp = planned.run();
  auto greedy_cfg = tiny(false);
  greedy_cfg.offload = OffloadMode::Greedy;
  Reconstructor greedy(greedy_cfg);
  auto rg = greedy.run();
  EXPECT_GT(rg.exposed_stall_s, rp.exposed_stall_s);
  EXPECT_GT(rg.vtime_s, rp.vtime_s);
}

TEST(Reconstructor, PrepareIsIdempotent) {
  Reconstructor rec(tiny(false));
  rec.prepare();
  const auto* d1 = rec.projections().data();
  rec.prepare();
  EXPECT_EQ(rec.projections().data(), d1);
}

TEST(MemoryBreakdown, MatchesPaperShape) {
  // Fig 2: ψ and λ equal (12 % each), g + G_prev about double ψ, LSP
  // workspaces present.
  auto b = admm_memory_breakdown(Dataset::medium());
  EXPECT_DOUBLE_EQ(b.psi, b.lambda);
  EXPECT_GT(b.g + b.g_prev, 1.2 * b.psi);
  EXPECT_GT(b.total(), b.psi * 4);
  // Medium dataset ≈ the paper's 300 GB ADMM footprint (±2×).
  EXPECT_GT(b.total(), 150.0 * kGiB);
  EXPECT_LT(b.total(), 600.0 * kGiB);
}

}  // namespace
}  // namespace mlr
