// Tests for the laminography geometry, operators and phantoms.
// The load-bearing properties: adjoint consistency <Lu, d> == <u, L*d>
// (CG correctness), the F_2D·F*_2D = I cancellation identity, chunked ==
// whole-volume equality, and phantom sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "lamino/geometry.hpp"
#include "lamino/operators.hpp"
#include "lamino/phantom.hpp"

namespace mlr::lamino {
namespace {

Array3D<cfloat> random_volume(Shape3 s, u64 seed) {
  Array3D<cfloat> v(s);
  Rng rng(seed);
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

cdouble inner(std::span<const cfloat> a, std::span<const cfloat> b) {
  cdouble acc{};
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += cdouble(a[i]) * std::conj(cdouble(b[i]));
  return acc;
}

TEST(Geometry, CubePresetShapes) {
  auto g = Geometry::cube(16);
  g.validate();
  EXPECT_EQ(g.object_shape(), (Shape3{16, 16, 16}));
  EXPECT_EQ(g.data_shape(), (Shape3{16, 16, 16}));
  EXPECT_EQ(g.u1_shape(), (Shape3{16, 16, 16}));
}

TEST(Geometry, ValidateRejectsBadConfig) {
  Geometry g = Geometry::cube(8);
  g.phi = 0.0;
  EXPECT_THROW(g.validate(), Error);
  g = Geometry::cube(8);
  g.n0 = 1;
  EXPECT_THROW(g.validate(), Error);
}

TEST(Geometry, ZFrequenciesScaleWithPhi) {
  auto g90 = Geometry::cube(16, 90.0);  // sinφ = 1
  auto g30 = Geometry::cube(16, 30.0);  // sinφ = 0.5
  auto z90 = g90.z_frequencies();
  auto z30 = g30.z_frequencies();
  for (std::size_t i = 0; i < z90.size(); ++i)
    EXPECT_NEAR(z30[i], 0.5 * z90[i], 1e-9);
}

TEST(Geometry, PlaneFrequenciesCenterRowIsRing) {
  // kv = 0 (center frequency): points are ku·(cosθ, sinθ) — radius |ku|.
  auto g = Geometry::cube(16);
  std::vector<double> nr, nc;
  g.plane_frequencies(0, nr, nc);
  ASSERT_EQ(nr.size(), size_t(g.ntheta * g.w));
  for (i64 t = 0; t < g.ntheta; ++t) {
    for (i64 ku = 0; ku < g.w; ++ku) {
      const auto j = size_t(t * g.w + ku);
      const double r = std::hypot(nr[j], nc[j]);
      const double kuc = std::abs(double(fft::to_centered(ku, g.w)));
      EXPECT_NEAR(r, kuc, 1e-9);
    }
  }
}

TEST(Geometry, ThetaUniform) {
  auto g = Geometry::cube(8);
  EXPECT_DOUBLE_EQ(g.theta(0), 0.0);
  EXPECT_NEAR(g.theta(4), std::numbers::pi, 1e-12);
}

TEST(Chunks, PartitionCoversRange) {
  auto chunks = make_chunks(20, 6);
  ASSERT_EQ(chunks.size(), 4u);
  i64 covered = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].index, i64(i));
    EXPECT_EQ(chunks[i].begin, covered);
    covered += chunks[i].count;
  }
  EXPECT_EQ(covered, 20);
  EXPECT_EQ(chunks.back().count, 2);
}

TEST(Chunks, ExactDivision) {
  auto chunks = make_chunks(16, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.count, 4);
}

// ---------------------------------------------------------------------------
// Operator adjointness — the property CG depends on.

class OperatorAdjointness : public ::testing::TestWithParam<i64> {};

TEST_P(OperatorAdjointness, Fu1dPair) {
  const i64 n = GetParam();
  Operators ops(Geometry::cube(n));
  auto u = random_volume(ops.geometry().object_shape(), 1);
  auto y = random_volume(ops.geometry().u1_shape(), 2);
  Array3D<cfloat> Au(ops.geometry().u1_shape());
  Array3D<cfloat> Aty(ops.geometry().object_shape());
  ops.fu1d(u, Au);
  ops.fu1d_adj(y, Aty);
  const auto lhs = inner(Au.span(), y.span());
  const auto rhs = inner(u.span(), Aty.span());
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 2e-4) << "n=" << n;
}

TEST_P(OperatorAdjointness, Fu2dPair) {
  const i64 n = GetParam();
  Operators ops(Geometry::cube(n));
  auto u1 = random_volume(ops.geometry().u1_shape(), 3);
  auto y = random_volume(ops.geometry().data_shape(), 4);
  Array3D<cfloat> Au(ops.geometry().data_shape());
  Array3D<cfloat> Aty(ops.geometry().u1_shape());
  ops.fu2d(u1, Au);
  ops.fu2d_adj(y, Aty);
  const auto lhs = inner(Au.span(), y.span());
  const auto rhs = inner(u1.span(), Aty.span());
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 2e-4) << "n=" << n;
}

TEST_P(OperatorAdjointness, FullForwardAdjointPair) {
  const i64 n = GetParam();
  Operators ops(Geometry::cube(n));
  auto u = random_volume(ops.geometry().object_shape(), 5);
  auto y = random_volume(ops.geometry().data_shape(), 6);
  Array3D<cfloat> Lu(ops.geometry().data_shape());
  Array3D<cfloat> Lty(ops.geometry().object_shape());
  ops.forward(u, Lu);
  ops.adjoint(y, Lty);
  const auto lhs = inner(Lu.span(), y.span());
  const auto rhs = inner(u.span(), Lty.span());
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 3e-4) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, OperatorAdjointness,
                         ::testing::Values<i64>(8, 12, 16));

TEST(Operators, CancellationIdentity) {
  // F_2D(F*_2D(x)) == x on detector data — the algebra behind Algorithm 2.
  Operators ops(Geometry::cube(12));
  auto d = random_volume(ops.geometry().data_shape(), 7);
  auto d2 = d;
  ops.f2d(d2, /*inverse=*/true);
  ops.f2d(d2, /*inverse=*/false);
  EXPECT_LT(relative_error<cfloat>(d.span(), d2.span()), 1e-4);
}

TEST(Operators, FreqDomainForwardEqualsSpatialPlusF2d) {
  // forward_freq == F_2D ∘ forward — i.e. cancellation changes nothing.
  Operators ops(Geometry::cube(12));
  auto u = random_volume(ops.geometry().object_shape(), 8);
  Array3D<cfloat> d(ops.geometry().data_shape());
  ops.forward(u, d);
  ops.f2d(d, /*inverse=*/false);  // back to frequency domain
  Array3D<cfloat> dhat(ops.geometry().data_shape());
  ops.forward_freq(u, dhat);
  EXPECT_LT(relative_error<cfloat>(dhat.span(), d.span()), 1e-4);
}

TEST(Operators, ChunkedFu1dMatchesWhole) {
  Operators ops(Geometry::cube(12));
  const auto& g = ops.geometry();
  auto u = random_volume(g.object_shape(), 9);
  Array3D<cfloat> whole(g.u1_shape());
  ops.fu1d(u, whole);
  Array3D<cfloat> chunked(g.u1_shape());
  for (const auto& spec : make_chunks(g.n1, 5)) {
    ops.fu1d_chunk(spec, u.slices(spec.begin, spec.count),
                   chunked.slices(spec.begin, spec.count));
  }
  EXPECT_LT(relative_error<cfloat>(whole.span(), chunked.span()), 1e-5);
}

TEST(Operators, ChunkedFu2dMatchesWhole) {
  Operators ops(Geometry::cube(12));
  const auto& g = ops.geometry();
  auto u1 = random_volume(g.u1_shape(), 10);
  Array3D<cfloat> whole(g.data_shape());
  ops.fu2d(u1, whole);
  Array3D<cfloat> chunked(g.data_shape());
  for (const auto& spec : make_chunks(g.h, 5)) {
    std::vector<cfloat> in(static_cast<size_t>(spec.count * g.n1 * g.n2));
    std::vector<cfloat> out(static_cast<size_t>(spec.count * g.ntheta * g.w));
    ops.pack_u1_rows(u1, spec, in);
    ops.fu2d_chunk(spec, in, out);
    ops.unpack_dhat_rows(out, spec, chunked);
  }
  EXPECT_LT(relative_error<cfloat>(whole.span(), chunked.span()), 1e-5);
}

TEST(Operators, FusedSubtractMatchesSeparate) {
  Operators ops(Geometry::cube(8));
  const auto& g = ops.geometry();
  auto u1 = random_volume(g.u1_shape(), 11);
  auto ref = random_volume(g.data_shape(), 12);
  ChunkSpec spec{0, 0, g.h};
  std::vector<cfloat> in(static_cast<size_t>(g.h * g.n1 * g.n2));
  std::vector<cfloat> refp(static_cast<size_t>(g.h * g.ntheta * g.w));
  std::vector<cfloat> fused(refp.size()), separate(refp.size());
  ops.pack_u1_rows(u1, spec, in);
  ops.pack_dhat_rows(ref, spec, refp);
  ops.fu2d_chunk_fused_subtract(spec, in, refp, fused);
  ops.fu2d_chunk(spec, in, separate);
  for (std::size_t i = 0; i < fused.size(); ++i)
    separate[i] -= refp[i];
  EXPECT_LT(relative_error<cfloat>(separate, fused), 1e-6);
}

TEST(Operators, PackUnpackRoundtrip) {
  Operators ops(Geometry::cube(8));
  const auto& g = ops.geometry();
  auto u1 = random_volume(g.u1_shape(), 13);
  Array3D<cfloat> out(g.u1_shape());
  for (const auto& spec : make_chunks(g.h, 3)) {
    std::vector<cfloat> buf(static_cast<size_t>(spec.count * g.n1 * g.n2));
    ops.pack_u1_rows(u1, spec, buf);
    ops.unpack_u1_rows(buf, spec, out);
  }
  EXPECT_LT(relative_error<cfloat>(u1.span(), out.span()), 1e-12);
}

TEST(Operators, FlopModelsPositiveMonotone) {
  Operators ops(Geometry::cube(16));
  EXPECT_GT(ops.fu1d_chunk_flops(1), 0.0);
  EXPECT_GT(ops.fu1d_chunk_flops(4), ops.fu1d_chunk_flops(1));
  EXPECT_GT(ops.fu2d_chunk_flops(2), ops.fu2d_chunk_flops(1));
  EXPECT_GT(ops.f2d_proj_flops(), 0.0);
}

// ---------------------------------------------------------------------------
// Phantoms.

class PhantomKinds : public ::testing::TestWithParam<PhantomKind> {};

TEST_P(PhantomKinds, ValuesInRangeAndNonTrivial) {
  auto v = make_phantom({24, 24, 24}, GetParam(), 3);
  float mx = 0, mn = 1e9f;
  double sum = 0;
  for (float x : v) {
    mx = std::max(mx, x);
    mn = std::min(mn, x);
    sum += x;
  }
  EXPECT_GE(mn, 0.0f);
  EXPECT_LE(mx, 1.0f + 1e-5f);
  EXPECT_GT(sum, 0.0);  // not empty
}

TEST_P(PhantomKinds, ConcentratedInCentralSlab) {
  // Laminography targets flat samples: mass near z-center should dominate
  // mass at the z-extremes.
  auto v = make_phantom({24, 24, 24}, GetParam(), 4);
  double central = 0, edges = 0;
  for (i64 i1 = 0; i1 < v.n1(); ++i1)
    for (i64 i0 = 0; i0 < v.n0(); ++i0)
      for (i64 i2 = 0; i2 < v.n2(); ++i2) {
        if (std::abs(i0 - v.n0() / 2) < v.n0() / 5)
          central += v(i1, i0, i2);
        else if (std::abs(i0 - v.n0() / 2) > v.n0() * 2 / 5)
          edges += v(i1, i0, i2);
      }
  EXPECT_GT(central, 10.0 * std::max(edges, 1e-9));
}

TEST_P(PhantomKinds, DeterministicAcrossCalls) {
  auto a = make_phantom({16, 16, 16}, GetParam(), 5);
  auto b = make_phantom({16, 16, 16}, GetParam(), 5);
  EXPECT_LT(relative_error<float>(a.span(), b.span()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PhantomKinds,
                         ::testing::Values(PhantomKind::BrainTissue,
                                           PhantomKind::IntegratedCircuit,
                                           PhantomKind::Pcb));

TEST(Phantom, ComplexRoundtrip) {
  auto v = make_phantom({8, 8, 8}, PhantomKind::BrainTissue, 6);
  auto c = to_complex(v);
  auto r = real_part(c);
  EXPECT_LT(relative_error<float>(v.span(), r.span()), 1e-12);
}

TEST(Phantom, SimulateProjectionsNoiseless) {
  Operators ops(Geometry::cube(8));
  auto u = to_complex(make_phantom(ops.geometry().object_shape(),
                                   PhantomKind::BrainTissue, 7));
  auto d0 = simulate_projections(ops, u, 0.0);
  Array3D<cfloat> want(ops.geometry().data_shape());
  ops.forward(u, want);
  EXPECT_LT(relative_error<cfloat>(want.span(), d0.span()), 1e-12);
}

TEST(Phantom, SimulateProjectionsNoisePerturbsByRightAmount) {
  Operators ops(Geometry::cube(8));
  auto u = to_complex(make_phantom(ops.geometry().object_shape(),
                                   PhantomKind::BrainTissue, 8));
  auto clean = simulate_projections(ops, u, 0.0);
  auto noisy = simulate_projections(ops, u, 0.05);
  const double rel = relative_error<cfloat>(clean.span(), noisy.span());
  EXPECT_GT(rel, 0.01);
  EXPECT_LT(rel, 0.2);
}

}  // namespace
}  // namespace mlr::lamino
