// Tests for the multi-tenant reconstruction service: scheduler policies
// against hand-computed orders, the service event loop's schedule equations,
// admission control, deadline accounting, shared-tier cross-job reuse,
// sharded-tier promotion (dedup + cap accounting), the fabric-contention
// model, and the acceptance property of the serving model — per-job outputs
// and run vtimes are bit-identical across scheduling policies, thread
// counts, overlap settings, pipeline depths, shard counts and (for a fixed
// gpus_per_job) session width.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "obs/trace.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "serve/shared_tier.hpp"
#include "serve/workload.hpp"
#ifdef MLR_HAS_NET
#include "net/request_table.hpp"
#include "net/tier_client.hpp"
#include "net/tier_server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#endif

namespace mlr::serve {
namespace {

JobRequest make_req(u64 id, sim::VTime arrival, int priority = 1,
                    std::string tenant = "default", double weight = 1.0) {
  JobRequest r;
  r.id = id;
  r.arrival = arrival;
  r.priority = priority;
  r.tenant = std::move(tenant);
  r.tenant_weight = weight;
  return r;
}

std::vector<QueuedJob> views(const std::vector<JobRequest>& reqs) {
  std::vector<QueuedJob> v;
  // queued_at = arrival, as drain() sets it for fresh jobs.
  for (const auto& r : reqs) v.push_back({&r, r.arrival, false});
  return v;
}

// --- Scheduler unit tests (hand-computed pick orders) -----------------------

TEST(Scheduler, FifoPicksEarliestArrivalThenId) {
  FifoScheduler s;
  const std::vector<JobRequest> reqs = {make_req(3, 5.0), make_req(1, 2.0),
                                        make_req(2, 2.0)};
  auto w = views(reqs);
  EXPECT_EQ(s.pick(w, 10.0), 1u);  // arrival 2.0, id 1
  w.erase(w.begin() + 1);
  EXPECT_EQ(s.pick(w, 10.0), 1u);  // arrival 2.0, id 2
  w.erase(w.begin() + 1);
  EXPECT_EQ(s.pick(w, 10.0), 0u);
}

TEST(Scheduler, PriorityClassesThenFifoWithin) {
  PriorityScheduler s;
  const std::vector<JobRequest> reqs = {
      make_req(1, 0.0, /*priority=*/1), make_req(2, 1.0, /*priority=*/3),
      make_req(3, 0.5, /*priority=*/3), make_req(4, 0.0, /*priority=*/2)};
  auto w = views(reqs);
  // Highest class first; within class 3 the earlier arrival (id 3) wins.
  EXPECT_EQ(s.pick(w, 10.0), 2u);
  w.erase(w.begin() + 2);
  EXPECT_EQ(s.pick(w, 10.0), 1u);  // id 2 (class 3)
  w.erase(w.begin() + 1);
  EXPECT_EQ(s.pick(w, 10.0), 1u);  // id 4 (class 2)
  w.erase(w.begin() + 1);
  EXPECT_EQ(s.pick(w, 10.0), 0u);  // id 1
}

TEST(Scheduler, FairShareStrideAccounting) {
  // Tenants A (weight 1) and B (weight 3), all jobs arrive at 0, equal run
  // vtime 9. Hand-computed virtual runtimes:
  //   dispatch A1 → vrun(A)=9; B jobs run at cost 9/3=3 each, so B2, B4, B6
  //   run before A's vruntime is matched; then the (arrival, id) tie-break
  //   resumes A3, A5.
  FairShareScheduler s;
  std::vector<JobRequest> reqs = {
      make_req(1, 0, 1, "A", 1.0), make_req(2, 0, 1, "B", 3.0),
      make_req(3, 0, 1, "A", 1.0), make_req(4, 0, 1, "B", 3.0),
      make_req(5, 0, 1, "A", 1.0), make_req(6, 0, 1, "B", 3.0)};
  auto w = views(reqs);
  std::vector<u64> order;
  while (!w.empty()) {
    const auto i = s.pick(w, 0.0);
    order.push_back(w[i].req->id);
    s.on_dispatch(*w[i].req, 0.0, 9.0);
    w.erase(w.begin() + i64(i));
  }
  EXPECT_EQ(order, (std::vector<u64>{1, 2, 4, 6, 3, 5}));
  EXPECT_DOUBLE_EQ(s.tenant_vruntime("A"), 27.0);
  EXPECT_DOUBLE_EQ(s.tenant_vruntime("B"), 9.0);
  EXPECT_DOUBLE_EQ(s.tenant_vruntime("never-seen"), 0.0);
}

// --- Service-level scheduling ------------------------------------------------

ServiceConfig tiny_config(SchedulerPolicy policy, int slots = 1) {
  ServiceConfig sc;
  sc.n = 10;
  sc.chunk_size = 4;
  sc.slots = slots;
  sc.threads = 1;
  sc.overlap_slices = 0;
  sc.iters_cap = 2;
  sc.encoder_train_steps = 40;
  sc.policy = policy;
  return sc;
}

std::vector<JobRequest> warm_set() {
  JobRequest w;
  w.scenario = Scenario::BrainScan;
  w.seed = 200;  // object 0 of the brain pool (see WorkloadGenerator)
  return {w};
}

TEST(ReconService, FifoScheduleMatchesRecurrence) {
  // One slot, FIFO: start_i = max(arrival_i, finish_{i-1}) in arrival
  // order, and finish = start + seed fetch (the charged fabric time) + run.
  // run_vtime is policy-invariant, so the whole schedule is exactly
  // recomputable from the observed fetch + run times.
  ReconService svc(tiny_config(SchedulerPolicy::Fifo));
  auto warm = warm_set();
  svc.prime(warm);
  for (int j = 0; j < 4; ++j) {
    JobRequest r;
    r.arrival = 50.0 * j;
    r.scenario = Scenario::BrainScan;
    r.seed = 200 + u64(j % 2);
    svc.submit(r);
  }
  const auto stats = svc.drain();
  ASSERT_EQ(stats.size(), 4u);
  sim::VTime prev_finish = 0;
  for (const auto& st : stats) {
    EXPECT_TRUE(st.admitted);
    EXPECT_DOUBLE_EQ(st.start, std::max(st.arrival, prev_finish));
    EXPECT_GT(st.seed_fetch_s, 0.0);  // the tier is primed, the fabric on
    EXPECT_DOUBLE_EQ(st.finish, st.start + st.seed_fetch_s + st.run_vtime);
    prev_finish = st.finish;
  }
  EXPECT_GT(svc.stats().fabric_fetch_s, 0.0);
}

TEST(ReconService, StartNeverPrecedesArrival) {
  // Regression for the event loop: with several slots idle and jobs
  // arriving simultaneously, the second slot used to dispatch a queued job
  // at the slot's free time (0) instead of the job's arrival instant.
  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  ReconService svc(cfg);
  auto warm = warm_set();
  svc.prime(warm);
  for (int j = 0; j < 3; ++j) {
    JobRequest r;
    r.arrival = 100.0;  // all at once, both slots idle
    r.scenario = Scenario::BrainScan;
    r.seed = 200;
    svc.submit(r);
  }
  for (const auto& st : svc.drain()) {
    EXPECT_GE(st.start, st.arrival);
    EXPECT_GE(st.queue_wait(), 0.0);
  }
}

TEST(ReconService, PriorityPolicyRunsHighClassFirst) {
  ReconService svc(tiny_config(SchedulerPolicy::Priority));
  auto warm = warm_set();
  svc.prime(warm);
  // All arrive at 0; priorities 1..4 submitted in increasing-priority order.
  std::map<u64, int> prio_of;
  for (int p = 1; p <= 4; ++p) {
    JobRequest r;
    r.arrival = 0;
    r.priority = p;
    r.scenario = Scenario::BrainScan;
    r.seed = 200;
    prio_of[svc.submit(r)] = p;
  }
  auto stats = svc.drain();
  ASSERT_EQ(stats.size(), 4u);
  std::sort(stats.begin(), stats.end(),
            [](const JobStats& a, const JobStats& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 1; i < stats.size(); ++i)
    EXPECT_LT(prio_of[stats[i].id], prio_of[stats[i - 1].id]);
}

TEST(ReconService, AdmissionRejectsBeyondBacklogCap) {
  auto cfg = tiny_config(SchedulerPolicy::Fifo);
  cfg.max_queue = 1;
  ReconService svc(cfg);
  auto warm = warm_set();
  svc.prime(warm);
  // Job 1 runs long; job 2 queues; jobs 3 and 4 arrive while the single
  // queue slot is taken and are rejected at arrival.
  for (int j = 0; j < 4; ++j) {
    JobRequest r;
    r.arrival = 10.0 * j;
    r.scenario = Scenario::BrainScan;
    r.seed = 200;
    svc.submit(r);
  }
  const auto stats = svc.drain();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_TRUE(stats[0].admitted);
  EXPECT_TRUE(stats[1].admitted);
  EXPECT_FALSE(stats[2].admitted);
  EXPECT_FALSE(stats[3].admitted);
  EXPECT_EQ(svc.stats().completed, 2u);
  EXPECT_EQ(svc.stats().rejected, 2u);
}

TEST(ReconService, DeadlineAccounting) {
  ReconService svc(tiny_config(SchedulerPolicy::Fifo));
  auto warm = warm_set();
  svc.prime(warm);
  JobRequest relaxed;
  relaxed.scenario = Scenario::BrainScan;
  relaxed.seed = 200;
  relaxed.deadline = 1e12;
  JobRequest impossible = relaxed;
  impossible.deadline = 1e-6;
  svc.submit(relaxed);
  svc.submit(impossible);
  const auto stats = svc.drain();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].deadline_met);
  EXPECT_FALSE(stats[1].deadline_met);
  EXPECT_EQ(svc.stats().deadline_missed, 1u);
}

TEST(ReconService, DrainWithoutPrimeThrowsWhenMemoized) {
  ReconService svc(tiny_config(SchedulerPolicy::Fifo));
  JobRequest r;
  r.scenario = Scenario::BrainScan;
  svc.submit(r);
  EXPECT_THROW(svc.drain(), mlr::Error);
}

// --- Shared-memo sessions ----------------------------------------------------

TEST(ReconService, SharedTierServesCrossJobHits) {
  ReconService svc(tiny_config(SchedulerPolicy::Fifo));
  auto warm = warm_set();
  svc.prime(warm);
  const auto seeded = svc.shared_entries();
  EXPECT_GT(seeded, 0u);
  JobRequest r;
  r.scenario = Scenario::BrainScan;
  r.seed = 200;  // the primed object: maximal similarity
  svc.submit(r);
  const auto stats = svc.drain();
  ASSERT_EQ(stats.size(), 1u);
  // The job reuses another job's work (the priming pass) …
  EXPECT_GT(stats[0].memo.db_hit_shared, 0u);
  EXPECT_LE(stats[0].memo.db_hit_shared, stats[0].memo.db_hit);
  EXPECT_GT(svc.stats().cross_job_hit_rate(), 0.0);
  // … and its own insertions are promoted for the next epoch.
  EXPECT_GT(svc.shared_entries(), seeded);
}

TEST(ReconService, PromotionRespectsCap) {
  auto cfg = tiny_config(SchedulerPolicy::Fifo);
  cfg.max_shared_entries = 4;
  cfg.tau_dedup = 0.0;  // isolate the cap from the dedup probe
  ReconService svc(cfg);
  auto warm = warm_set();
  const auto primed = svc.prime(warm);
  EXPECT_EQ(svc.shared_entries(), 4u);
  EXPECT_GT(svc.stats().shared_cap_drops, 0u);
  EXPECT_EQ(svc.stats().shared_dedup_drops, 0u);
  // The warm job's own record carries its drop split.
  ASSERT_EQ(primed.size(), 1u);
  EXPECT_EQ(primed[0].memo.shared_cap_drops, svc.stats().shared_cap_drops);
  EXPECT_EQ(primed[0].promoted, 4u);
}

// --- Sharded tier: promotion dedup + fabric ---------------------------------

memo::MemoDb::Entry tier_entry(std::vector<float> key, double norm = 1.0,
                               std::size_t value_size = 8) {
  memo::MemoDb::Entry e;
  e.kind = memo::OpKind::Fu1D;
  e.key = std::move(key);
  e.norm = norm;
  e.value.assign(value_size, cfloat(1.0f, 0.0f));
  return e;
}

TEST(SharedTier, DedupAndCapDropsCountedSeparately) {
  SharedTierConfig tc;
  tc.shard_count = 2;
  tc.max_entries = 3;
  tc.tau_dedup = 0.99;
  tc.key_dim = 4;
  SharedTier tier(tc);
  std::vector<memo::MemoDb::Entry> batch;
  batch.push_back(tier_entry({1, 0, 0, 0}));  // accepted
  batch.push_back(tier_entry({1, 0, 0, 0}));  // exact dup -> dedup drop
  batch.push_back(tier_entry({0, 1, 0, 0}));  // accepted (orthogonal)
  batch.push_back(tier_entry({0, 0, 1, 0}));  // accepted
  batch.push_back(tier_entry({0, 0, 0, 1}));  // cap (3 entries) -> cap drop
  const auto out = tier.promote(std::move(batch), 5.0);
  EXPECT_EQ(out.promoted, 3u);
  EXPECT_EQ(out.dedup_drops, 1u);
  EXPECT_EQ(out.cap_drops, 1u);
  EXPECT_EQ(tier.size(), 3u);
  EXPECT_GT(out.done, 5.0);  // the batch crossed the fabric
  EXPECT_EQ(tier.shard_entries(0) + tier.shard_entries(1), 3u);
}

TEST(SharedTier, DedupNeverCrossesValueShapesAndSnapshotOrderIsShardFree) {
  // A same-key entry with a different value length is never a duplicate
  // (never a valid answer for the same query), and the canonical snapshot
  // order is identical for every shard count — sharding is placement only.
  std::vector<memo::MemoDb::Entry> batch;
  batch.push_back(tier_entry({1, 0, 0, 0}, 1.0, /*value_size=*/8));
  batch.push_back(tier_entry({1, 0, 0, 0}, 1.0, /*value_size=*/6));
  batch.push_back(tier_entry({0, 1, 0, 0}));
  std::vector<std::vector<float>> snap1, snap4;
  for (const int shards : {1, 4}) {
    SharedTierConfig tc;
    tc.shard_count = shards;
    tc.tau_dedup = 0.99;
    tc.key_dim = 4;
    SharedTier tier(tc);
    auto copy = batch;
    const auto out = tier.promote(std::move(copy), 0.0);
    EXPECT_EQ(out.promoted, 3u);
    EXPECT_EQ(out.dedup_drops, 0u);
    auto& snap = shards == 1 ? snap1 : snap4;
    for (const auto& e : tier.snapshot()) snap.push_back(e.key);
  }
  EXPECT_EQ(snap1, snap4);
}

TEST(ReconService, DedupCompactsTierAndIsCountedPerJob) {
  // An aggressive τ_dedup drops near-duplicate promotions that a dedup-free
  // tier keeps, and the per-job drop fields sum to the service counters.
  struct Outcome {
    u64 prime_promoted = 0, prime_dedup = 0, total_dedup = 0;
  };
  auto run = [](double tau_dedup) {
    auto cfg = tiny_config(SchedulerPolicy::Fifo);
    cfg.tau_dedup = tau_dedup;
    ReconService svc(cfg);
    auto warm = warm_set();
    auto primed = svc.prime(warm);
    for (int j = 0; j < 2; ++j) {
      JobRequest r;
      r.arrival = 50.0 * j;
      r.scenario = Scenario::BrainScan;
      r.seed = 200;  // the primed object: maximal near-duplicate pressure
      svc.submit(r);
    }
    auto stats = svc.drain();
    u64 job_dedup = 0, job_cap = 0, job_promoted = 0;
    for (const auto* set : {&primed, &stats}) {
      for (const auto& st : *set) {
        job_dedup += st.memo.shared_dedup_drops;
        job_cap += st.memo.shared_cap_drops;
        job_promoted += st.promoted;
      }
    }
    EXPECT_EQ(job_dedup, svc.stats().shared_dedup_drops);
    EXPECT_EQ(job_cap, svc.stats().shared_cap_drops);
    EXPECT_EQ(job_promoted, svc.stats().promoted);
    EXPECT_EQ(svc.shared_entries(), svc.stats().promoted);
    Outcome o;
    o.prime_promoted = primed[0].promoted;
    o.prime_dedup = primed[0].memo.shared_dedup_drops;
    o.total_dedup = svc.stats().shared_dedup_drops;
    return o;
  };
  const Outcome keep = run(0.0);
  const Outcome dedup = run(0.35);
  EXPECT_EQ(keep.total_dedup, 0u);
  EXPECT_GT(dedup.total_dedup, 0u);
  // The priming job always runs on an empty tier, so both runs offer the
  // SAME batch: what dedup dropped there is exactly what it kept fewer.
  EXPECT_GT(dedup.prime_dedup, 0u);
  EXPECT_EQ(keep.prime_promoted, dedup.prime_promoted + dedup.prime_dedup);
}

// --- The acceptance property -------------------------------------------------

struct RunSummary {
  std::map<u64, u64> fingerprint;
  std::map<u64, u64> cache_fp;
  std::map<u64, double> run_vtime;
  std::map<u64, double> queue_wait;
  std::map<u64, double> seed_fetch;
  std::map<u64, double> finish;
  std::map<u64, u64> preemptions;
  std::map<u64, std::vector<int>> slots;
  /// Memo outcome digest {computed, miss, db_hit, cache_hit, db_hit_shared}
  /// — the per-job "records" half of the bit-identity contract.
  std::map<u64, std::vector<u64>> memo;
};

RunSummary run_workload(ServiceConfig cfg,
                        const std::vector<JobRequest>& jobs,
                        const std::vector<JobRequest>& warm) {
  ReconService svc(cfg);
  svc.prime(warm);
  for (const auto& j : jobs) svc.submit(j);
  RunSummary out;
  for (const auto& st : svc.drain()) {
    out.fingerprint[st.id] = st.output_fingerprint;
    out.cache_fp[st.id] = st.cache_fingerprint;
    out.run_vtime[st.id] = st.run_vtime;
    out.queue_wait[st.id] = st.queue_wait();
    out.seed_fetch[st.id] = st.seed_fetch_s;
    out.finish[st.id] = st.finish;
    out.preemptions[st.id] = st.preemptions;
    out.slots[st.id] = st.slots_visited;
    out.memo[st.id] = {st.memo.computed, st.memo.miss, st.memo.db_hit,
                       st.memo.cache_hit, st.memo.db_hit_shared};
  }
  return out;
}

TEST(ReconService, OutputsIdenticalAcrossPoliciesAndEngineKnobs) {
  WorkloadConfig wc;
  wc.jobs = 5;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  wc.tenants = {{"A", 1.0, 1, 1.0}, {"B", 2.0, 2, 1.0}};
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto fifo = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  auto prio = tiny_config(SchedulerPolicy::Priority, /*slots=*/2);
  prio.threads = 3;        // engine knobs must not change anything either
  prio.overlap_slices = 4;
  auto fair = tiny_config(SchedulerPolicy::FairShare, /*slots=*/2);
  fair.threads = 2;

  const auto a = run_workload(fifo, jobs, warm);
  const auto b = run_workload(prio, jobs, warm);
  const auto c = run_workload(fair, jobs, warm);

  // Hermetic sessions: outputs and run vtimes are bit-identical for every
  // policy / thread count / overlap setting; only queue waits may differ.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_EQ(a.run_vtime, b.run_vtime);
  EXPECT_EQ(a.run_vtime, c.run_vtime);

  // Same policy + same knobs ⇒ the whole schedule reproduces bit-identically
  // (the latency-CDF reproducibility claim).
  auto fifo2 = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  fifo2.threads = 2;
  fifo2.overlap_slices = 4;
  const auto a2 = run_workload(fifo2, jobs, warm);
  EXPECT_EQ(a.fingerprint, a2.fingerprint);
  EXPECT_EQ(a.run_vtime, a2.run_vtime);
  EXPECT_EQ(a.queue_wait, a2.queue_wait);
}

// Tracing joins the serving bit-identity property: a run that records a
// trace (ServiceConfig::trace_path) must reproduce the untraced schedule
// bit-for-bit — fingerprints, run vtimes, queue waits and finish times —
// while the trace file itself comes out non-empty and carries the per-job
// span taxonomy.
TEST(ReconService, TraceOnOffBitIdentity) {
  WorkloadConfig wc;
  wc.jobs = 4;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  wc.tenants = {{"A", 1.0, 1, 1.0}, {"B", 2.0, 2, 1.0}};
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  cfg.threads = 2;
  cfg.overlap_slices = 4;
  const auto off = run_workload(cfg, jobs, warm);

  auto traced = cfg;
  traced.trace_path = ::testing::TempDir() + "mlr_serve_trace_test.json";
  const auto on = run_workload(traced, jobs, warm);
  auto& rec = obs::TraceRecorder::instance();
  rec.disable();
  rec.clear();

  EXPECT_EQ(off.fingerprint, on.fingerprint);
  EXPECT_EQ(off.run_vtime, on.run_vtime);
  EXPECT_EQ(off.queue_wait, on.queue_wait);
  EXPECT_EQ(off.seed_fetch, on.seed_fetch);
  EXPECT_EQ(off.finish, on.finish);

  std::ifstream f(traced.trace_path);
  ASSERT_TRUE(f.good()) << traced.trace_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string js = ss.str();
  EXPECT_GT(js.size(), 100u);
  for (const char* needle :
       {"\"traceEvents\"", "\"job\"", "job.solve", "job.session_build",
        "job.export", "service.drain", "vclock.service", "vclock.session"})
    EXPECT_NE(js.find(needle), std::string::npos) << needle;
  std::remove(traced.trace_path.c_str());
}

TEST(ReconService, OutputsIdenticalAcrossPipelineDepths) {
  // Hermetic sessions must stay hermetic under cross-stage pipelining: job
  // outputs AND run vtimes (therefore the whole schedule and the promoted
  // shared tier) are bit-identical for every pipeline_depth, including
  // depths deep enough to span several stages.
  WorkloadConfig wc;
  wc.jobs = 4;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto barrier = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  barrier.pipeline_depth = 0;  // the legacy per-stage barrier
  auto shallow = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  shallow.threads = 3;
  shallow.overlap_slices = 4;
  shallow.pipeline_depth = 2;
  auto deep = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  deep.threads = 2;
  deep.pipeline_depth = 5;

  const auto a = run_workload(barrier, jobs, warm);
  const auto b = run_workload(shallow, jobs, warm);
  const auto c = run_workload(deep, jobs, warm);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_EQ(a.run_vtime, b.run_vtime);
  EXPECT_EQ(a.run_vtime, c.run_vtime);
  EXPECT_EQ(a.queue_wait, b.queue_wait);
  EXPECT_EQ(a.queue_wait, c.queue_wait);
}

TEST(ReconService, SharedTierShardMatrix) {
  // The sharding acceptance property: job outputs, per-job records AND the
  // whole virtual-clock schedule are bit-identical for every shard count ×
  // scheduling policy × threads × pipeline_depth combination — sharding
  // decides which link carries which bytes, never what a session sees, and
  // with the default link ≥ uplink bandwidths the uplink pass (shard-count
  // invariant) dominates every fabric charge.
  WorkloadConfig wc;
  wc.jobs = 4;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  wc.tenants = {{"A", 1.0, 1, 1.0}, {"B", 2.0, 2, 1.0}};
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  struct Knobs {
    int shards;
    unsigned threads;
    i64 depth;
    i64 overlap;
  };
  const Knobs knobs[] = {{1, 1, 0, 0}, {2, 3, 2, 4}, {4, 2, 5, 0}};
  const SchedulerPolicy policies[] = {SchedulerPolicy::Fifo,
                                     SchedulerPolicy::FairShare};
  const RunSummary* global_ref = nullptr;
  RunSummary first;
  for (const auto policy : policies) {
    RunSummary policy_ref;
    bool have_policy_ref = false;
    for (const auto& k : knobs) {
      auto cfg = tiny_config(policy, /*slots=*/2);
      cfg.shard_count = k.shards;
      cfg.threads = k.threads;
      cfg.pipeline_depth = k.depth;
      cfg.overlap_slices = k.overlap;
      const auto r = run_workload(cfg, jobs, warm);
      if (global_ref == nullptr) {
        first = r;
        global_ref = &first;
      }
      // Outputs + run vtimes: identical across EVERYTHING.
      EXPECT_EQ(r.fingerprint, global_ref->fingerprint);
      EXPECT_EQ(r.run_vtime, global_ref->run_vtime);
      // Schedule (queue waits, fetches, finishes): identical across shard
      // counts and engine knobs for a fixed policy.
      if (!have_policy_ref) {
        policy_ref = r;
        have_policy_ref = true;
      } else {
        EXPECT_EQ(r.queue_wait, policy_ref.queue_wait);
        EXPECT_EQ(r.seed_fetch, policy_ref.seed_fetch);
        EXPECT_EQ(r.finish, policy_ref.finish);
      }
    }
  }
}

TEST(ReconService, FabricContentionShiftsOnlyConcurrentClocks) {
  // The fabric acceptance property, both halves. (a) Single-slot runs
  // reproduce the unsharded clock: with no concurrency there is no uplink
  // queueing, so the schedule is identical for every shard count. (b) With
  // two slots and a burst of simultaneous arrivals, sessions contend on the
  // uplink: every virtual time with the fabric enabled is >= its
  // network-isolated (disabled) counterpart, and narrowing the uplink can
  // only push clocks further — fabric-charge monotonicity.
  WorkloadConfig wc;
  wc.jobs = 4;
  wc.mean_interarrival = 1.0;
  wc.bursty = true;
  wc.burst_size = 4;  // jobs == one burst: maximal fetch overlap
  wc.mix = {{Scenario::PcbInspection, 1.0}};
  wc.distinct_objects = 2;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  // (a) one slot: shards 1 vs 4, full schedule identical.
  auto solo1 = tiny_config(SchedulerPolicy::Fifo, /*slots=*/1);
  auto solo4 = solo1;
  solo4.shard_count = 4;
  const auto s1 = run_workload(solo1, jobs, warm);
  const auto s4 = run_workload(solo4, jobs, warm);
  EXPECT_EQ(s1.finish, s4.finish);
  EXPECT_EQ(s1.seed_fetch, s4.seed_fetch);

  // (b) two slots: isolated vs contended vs a 10x narrower uplink.
  auto isolated = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  isolated.fabric.enabled = false;
  auto contended = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  auto narrow = contended;
  narrow.fabric.uplink_bandwidth = contended.fabric.uplink_bandwidth / 10.0;
  narrow.fabric.link_bandwidth = contended.fabric.link_bandwidth;
  const auto off = run_workload(isolated, jobs, warm);
  const auto on = run_workload(contended, jobs, warm);
  const auto slow = run_workload(narrow, jobs, warm);
  EXPECT_EQ(off.fingerprint, on.fingerprint);  // the fabric moves time only
  EXPECT_EQ(on.fingerprint, slow.fingerprint);
  double contended_shift = 0;
  for (const auto& [id, fin] : on.finish) {
    EXPECT_GE(fin, off.finish.at(id));
    EXPECT_LE(fin, slow.finish.at(id));
    EXPECT_GE(on.seed_fetch.at(id), 0.0);
    EXPECT_GE(slow.seed_fetch.at(id), on.seed_fetch.at(id));
    contended_shift += fin - off.finish.at(id);
  }
  EXPECT_GT(contended_shift, 0.0);  // concurrent sessions really interfere
}

TEST(ReconService, ClusterSessionsIdenticalAcrossPolicies) {
  // gpus_per_job > 1 routes sessions through cluster::Cluster; the identity
  // guarantee must hold there too.
  WorkloadConfig wc;
  wc.jobs = 3;
  wc.mean_interarrival = 30.0;
  wc.mix = {{Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 1;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto fifo = tiny_config(SchedulerPolicy::Fifo);
  fifo.gpus_per_job = 2;
  auto fair = tiny_config(SchedulerPolicy::FairShare);
  fair.gpus_per_job = 2;
  fair.threads = 2;
  const auto a = run_workload(fifo, jobs, warm);
  const auto b = run_workload(fair, jobs, warm);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.run_vtime, b.run_vtime);
}

// --- Remote-tier transports (net/) -------------------------------------------

#ifdef MLR_HAS_NET

TEST(ReconService, LoopbackTransportMatrix) {
  // The transport acceptance property (loopback half): rehosting the shared
  // tier on the wire protocol's deterministic in-process backend changes
  // NOTHING a session can observe — outputs, per-job records and the whole
  // virtual-clock schedule are bit-identical to the in-process tier, across
  // shard counts × policies × threads × pipeline_depth × tail_lanes. Wire
  // frames charge no virtual time (client-side charging contract) and the
  // index-only seed + lazy value fetch reproduces every hit decision.
  WorkloadConfig wc;
  wc.jobs = 3;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  wc.tenants = {{"A", 1.0, 1, 1.0}, {"B", 2.0, 2, 1.0}};
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  struct Knobs {
    int shards;
    unsigned threads;
    i64 depth;
    i64 overlap;
    i64 tail_lanes;  // 0 = the automatic default
  };
  const Knobs knobs[] = {{1, 1, 0, 0, 1}, {2, 3, 2, 4, 2}, {4, 2, 5, 0, 0}};
  const SchedulerPolicy policies[] = {SchedulerPolicy::Fifo,
                                      SchedulerPolicy::FairShare};
  const RunSummary* global_ref = nullptr;
  RunSummary first;
  for (const auto policy : policies) {
    for (const auto& k : knobs) {
      auto cfg = tiny_config(policy, /*slots=*/2);
      cfg.shard_count = k.shards;
      cfg.threads = k.threads;
      cfg.pipeline_depth = k.depth;
      cfg.overlap_slices = k.overlap;
      cfg.tail_lanes = k.tail_lanes;
      const auto inproc = run_workload(cfg, jobs, warm);
      cfg.transport = TierTransport::Loopback;
      const auto loop = run_workload(cfg, jobs, warm);
      // Same knobs, different carrier: the FULL schedule reproduces.
      EXPECT_EQ(loop.fingerprint, inproc.fingerprint);
      EXPECT_EQ(loop.run_vtime, inproc.run_vtime);
      EXPECT_EQ(loop.queue_wait, inproc.queue_wait);
      EXPECT_EQ(loop.seed_fetch, inproc.seed_fetch);
      EXPECT_EQ(loop.finish, inproc.finish);
      // And outputs + run vtimes are one global identity across everything.
      if (global_ref == nullptr) {
        first = inproc;
        global_ref = &first;
      }
      EXPECT_EQ(loop.fingerprint, global_ref->fingerprint);
      EXPECT_EQ(loop.run_vtime, global_ref->run_vtime);
    }
  }
}

TEST(ReconService, SocketTransportMatchesInproc) {
  // The transport acceptance property (socket half): the same workload
  // served through real TCP connections to a localhost TierServer produces
  // bit-identical outputs and virtual clocks — only wall time differs.
  // Environments without sockets (sandboxes) skip.
  WorkloadConfig wc;
  wc.jobs = 3;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  cfg.shard_count = 2;
  cfg.threads = 2;
  cfg.pipeline_depth = 2;
  const auto inproc = run_workload(cfg, jobs, warm);
  cfg.transport = TierTransport::Socket;
  try {
    const auto sock = run_workload(cfg, jobs, warm);
    EXPECT_EQ(sock.fingerprint, inproc.fingerprint);
    EXPECT_EQ(sock.run_vtime, inproc.run_vtime);
    EXPECT_EQ(sock.finish, inproc.finish);
  } catch (const net::NetError& e) {
    GTEST_SKIP() << "socket transport unavailable: " << e.what();
  }
}

TEST(ReconService, MalformedTierAddressIsRejectedBeforeConnecting) {
  // A bad host:port must fail the MLR_CHECK conventions (mlr::Error with
  // the offending address), not leak a raw std::invalid_argument from stoi
  // or silently truncate an out-of-range port through the uint16_t cast.
  for (const char* addr :
       {"no-port-separator", "host:", "host:abc", "host:0", "host:65536",
        "host:99999999999"}) {
    auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/1);
    cfg.transport = TierTransport::Socket;
    cfg.tier_address = addr;
    EXPECT_THROW(ReconService{cfg}, mlr::Error) << addr;
  }
}

// --- Fault tolerance: degradation and recovery -------------------------------

TEST(ReconServiceFaults, ColdPromotionsBufferedAndReshippedOnRecovery) {
  // The degradation ladder's tier leg: the carrier dies on the first
  // promotion PUT (frame lost, sticky in the legacy regime), the service
  // flips to degraded, buffers every fold locally, and the next dispatch's
  // recovery probe re-ships the buffer through a fresh transport before the
  // job runs — so the tier ends up with everything and the job seeds warm.
  WorkloadConfig wc;
  wc.jobs = 3;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/1);
  cfg.transport = TierTransport::Loopback;
  ReconService svc(cfg);
  svc.prime(warm);
  const auto primed = svc.shared_entries();
  auto* client = dynamic_cast<net::TierClient*>(&svc.tier_mut());
  ASSERT_NE(client, nullptr);
  auto* lb = dynamic_cast<net::LoopbackTransport*>(&client->transport_mut());
  ASSERT_NE(lb, nullptr);
  lb->fault_disconnect_on_put(true);

  svc.submit(jobs[0]);
  svc.submit(jobs[1]);
  for (const auto& st : svc.drain()) {
    // The fault strikes at fold time, after both sessions ran: the jobs
    // themselves complete, warm.
    EXPECT_EQ(st.outcome, JobOutcome::Completed);
    EXPECT_FALSE(st.degraded);
  }
  EXPECT_TRUE(svc.degraded());
  EXPECT_EQ(svc.stats().degraded_spans, 1u);
  EXPECT_EQ(svc.stats().jobs_failed, 0u);
  EXPECT_EQ(svc.shared_entries(), primed);  // nothing landed during the span

  svc.submit(jobs[2]);
  const auto res = svc.drain();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].outcome, JobOutcome::Completed);
  // Recovery runs before the cold decision: this job is NOT degraded.
  EXPECT_FALSE(res[0].degraded);
  EXPECT_FALSE(svc.degraded());
  EXPECT_EQ(svc.stats().degraded_spans, 1u);  // one span, closed
  EXPECT_GT(svc.shared_entries(), primed);    // the buffer was re-shipped
}

TEST(ReconServiceFaults, SocketTierKillRestartDegradesAndRecovers) {
  // End-to-end over real TCP: the external tier server dies mid-service.
  // Exactly the struck job fails (budget exhausted), the service degrades
  // instead of crashing, and once a snapshot-restored server is back on the
  // same port the next dispatch reconnects and completes warm.
  // Environments without sockets skip.
  WorkloadConfig wc;
  wc.jobs = 3;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}};
  wc.distinct_objects = 1;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  SharedTierConfig stc;
  stc.shard_count = 1;
  stc.tau_dedup = ServiceConfig{}.tau_dedup;
  stc.key_dim = memo::MemoConfig{}.key_dim;
  auto server = std::make_unique<net::TierServer>(stc);
  std::uint16_t port = 0;
  try {
    port = server->listen_and_serve();
  } catch (const net::NetError& e) {
    GTEST_SKIP() << "sockets unavailable: " << e.what();
  }

  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/1);
  cfg.transport = TierTransport::Socket;
  cfg.tier_address = "127.0.0.1:" + std::to_string(port);
  cfg.net_retry_max = 2;
  cfg.net_backoff_ms = 1.0;
  std::unique_ptr<ReconService> svc;
  try {
    svc = std::make_unique<ReconService>(cfg);
  } catch (const net::NetError& e) {
    GTEST_SKIP() << "connect failed: " << e.what();
  }
  svc->prime(warm);
  svc->submit(jobs[0]);
  {
    const auto r = svc->drain();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].outcome, JobOutcome::Completed);
  }

  const auto checkpoint = server->tier().snapshot();
  server.reset();  // the tier dies between drains
  svc->submit(jobs[1]);
  {
    const auto r = svc->drain();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].outcome, JobOutcome::Failed);
    EXPECT_FALSE(r[0].failure.empty());
  }
  EXPECT_TRUE(svc->degraded());
  EXPECT_EQ(svc->stats().jobs_failed, 1u);

  server = std::make_unique<net::TierServer>(stc);
  {
    net::WireWriter w;
    net::encode_entries(w, checkpoint, /*with_values=*/true);
    server->handle_frame(
        net::encode_frame(net::FrameType::SnapshotImport, 0, 1, w.data()));
  }
  try {
    server->listen_and_serve("127.0.0.1", port);
  } catch (const net::NetError& e) {
    GTEST_SKIP() << "same-port rebind unavailable: " << e.what();
  }
  svc->submit(jobs[2]);
  {
    const auto r = svc->drain();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].outcome, JobOutcome::Completed);
    EXPECT_FALSE(r[0].degraded);  // the recovery probe beat the dispatch
  }
  EXPECT_FALSE(svc->degraded());
  EXPECT_EQ(svc->stats().jobs_failed, 1u);  // no new casualties
}

#endif  // MLR_HAS_NET

// --- Fault tolerance: per-job isolation (transport-independent) --------------

TEST(ReconServiceFaults, SessionThrowIsIsolatedPerJob) {
  // ANY exception out of one job's session marks that one job Failed (with
  // the message preserved), frees its slot, and leaves every other job's
  // output and run vtime bit-identical to a fault-free run.
  WorkloadConfig wc;
  wc.jobs = 3;
  wc.mean_interarrival = 40.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  const auto base = run_workload(cfg, jobs, warm);

  // prime() consumes job ids for the warm set, so the victim id is not
  // knowable up front — capture it from submit() and let the hook read it.
  u64 victim = ~u64{0};
  cfg.dispatch_hook = [&victim](const JobRequest& r) {
    if (r.id == victim) throw std::runtime_error("injected session fault");
  };
  ReconService svc(cfg);
  svc.prime(warm);
  std::vector<u64> ids;
  for (const auto& j : jobs) ids.push_back(svc.submit(j));
  victim = ids[1];
  int failed = 0;
  for (const auto& st : svc.drain()) {
    if (st.id == victim) {
      EXPECT_EQ(st.outcome, JobOutcome::Failed);
      EXPECT_NE(st.failure.find("injected session fault"), std::string::npos);
      EXPECT_EQ(st.output_fingerprint, 0u);
      ++failed;
      continue;
    }
    EXPECT_EQ(st.outcome, JobOutcome::Completed);
    EXPECT_EQ(st.output_fingerprint, base.fingerprint.at(st.id));
    EXPECT_EQ(st.run_vtime, base.run_vtime.at(st.id));
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(svc.stats().jobs_failed, 1u);
  EXPECT_EQ(svc.stats().completed, 2u);
}

// --- Stage-boundary preemption: the determinism matrix -----------------------

TEST(ReconService, PreemptionDeterminismMatrix) {
  // The preemption acceptance property: forcing a job to yield at EVERY
  // stage boundary (checkpoint → requeue → rebuild on whatever slot frees,
  // re-import the seed + its own entries + cache + clocks → continue) must
  // reproduce the uninterrupted run bit-for-bit — outputs, memo records,
  // cache fingerprints AND run vtimes — across threads × pipeline_depth ×
  // shards. Preemption is schedule-shaped only.
  WorkloadConfig wc;
  wc.jobs = 4;
  wc.mean_interarrival = 10.0;
  wc.mix = {{Scenario::PcbInspection, 1.0}, {Scenario::BrainScan, 1.0}};
  wc.distinct_objects = 2;
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  const auto warm = gen.priming_set();

  struct Knobs {
    unsigned threads;
    i64 depth;
    int shards;
  };
  const Knobs knobs[] = {{1, 0, 1}, {3, 2, 2}, {2, 5, 4}};
  for (const auto& k : knobs) {
    auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
    cfg.iters_cap = 3;  // three outer iterations → two yield points per job
    cfg.threads = k.threads;
    cfg.pipeline_depth = k.depth;
    cfg.shard_count = k.shards;
    const auto base = run_workload(cfg, jobs, warm);

    auto pre = cfg;
    pre.preempt_force = true;  // yield at every eligible boundary
    const auto p = run_workload(pre, jobs, warm);

    EXPECT_EQ(p.fingerprint, base.fingerprint);
    EXPECT_EQ(p.cache_fp, base.cache_fp);
    EXPECT_EQ(p.run_vtime, base.run_vtime);
    EXPECT_EQ(p.memo, base.memo);
    // The baseline never preempted; the forced run preempted every job at
    // both boundaries.
    for (const auto& [id, n] : base.preemptions) EXPECT_EQ(n, 0u);
    for (const auto& [id, n] : p.preemptions) EXPECT_EQ(n, 2u) << id;
  }
}

TEST(ReconService, PreemptedJobResumesOnDifferentSlot) {
  // One job, two slots, forced yields: the job runs its first segment on
  // slot 0; at the yield, slot 1 (free since 0) is the earliest-free slot,
  // so the resumed segment provably rebuilds the session on DIFFERENT
  // hardware — and still matches the uninterrupted run bit-for-bit.
  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  cfg.iters_cap = 3;
  JobRequest r;
  r.scenario = Scenario::BrainScan;
  r.seed = 200;
  auto warm = warm_set();

  ReconService base(cfg);
  base.prime(warm);
  base.submit(r);
  const auto base_st = base.drain();
  ASSERT_EQ(base_st.size(), 1u);

  auto pre = cfg;
  pre.preempt_force = true;
  ReconService svc(pre);
  svc.prime(warm);
  svc.submit(r);
  const auto st = svc.drain();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].preemptions, 2u);
  ASSERT_EQ(st[0].slots_visited, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(st[0].slot, 0);  // the last segment's slot
  EXPECT_EQ(svc.stats().preemptions, 2u);

  EXPECT_EQ(st[0].output_fingerprint, base_st[0].output_fingerprint);
  EXPECT_EQ(st[0].cache_fingerprint, base_st[0].cache_fingerprint);
  EXPECT_EQ(st[0].run_vtime, base_st[0].run_vtime);
  EXPECT_EQ(st[0].memo.db_hit, base_st[0].memo.db_hit);
  EXPECT_EQ(st[0].memo.db_hit_shared, base_st[0].memo.db_hit_shared);
  EXPECT_EQ(st[0].memo.cache_hit, base_st[0].memo.cache_hit);
  EXPECT_EQ(st[0].memo.miss, base_st[0].memo.miss);
  // Each re-dispatch re-fetches the seed: the fetch total grows, and only
  // turnaround absorbs it.
  EXPECT_GT(st[0].seed_fetch_s, base_st[0].seed_fetch_s);
  EXPECT_DOUBLE_EQ(st[0].finish - st[0].start,
                   st[0].seed_fetch_s + st[0].run_vtime);
  // Promotion after the preempted run matches the uninterrupted tier.
  EXPECT_EQ(svc.shared_entries(), base.shared_entries());
}

TEST(ReconService, QuantumPreemptionLetsShortJobOvertake) {
  // The scheduling payoff: one slot, a long MemoryConstrained job running
  // when a short interactive job arrives. Without preemption the short job
  // waits out the long one; with a quantum it overtakes at the next stage
  // boundary — and both jobs' outputs and run vtimes stay bit-identical.
  WorkloadConfig wc;
  wc.jobs = 1;
  wc.mix = {{Scenario::MemoryConstrained, 1.0}};
  wc.distinct_objects = 1;
  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/1);
  cfg.iters_cap = 4;

  JobRequest long_job;
  long_job.scenario = Scenario::MemoryConstrained;
  long_job.seed = 300;
  long_job.arrival = 0.0;
  JobRequest short_job;
  short_job.scenario = Scenario::PcbInspection;
  short_job.seed = 0;
  short_job.slo = SloClass::Interactive;

  std::vector<JobRequest> warm;
  {
    JobRequest w1 = long_job, w2 = short_job;
    warm = {w1, w2};
  }

  auto run_pair = [&](double quantum) {
    auto c = cfg;
    c.preempt_quantum_s = quantum;
    ReconService svc(c);
    svc.prime(warm);
    JobRequest lj = long_job, sj = short_job;
    const u64 long_id = svc.submit(lj);
    // The short job arrives mid-flight of the long one's first iteration.
    sj.arrival = 1.0;
    const u64 short_id = svc.submit(sj);
    std::map<u64, JobStats> by_id;
    for (auto& st : svc.drain()) by_id.emplace(st.id, std::move(st));
    return std::make_tuple(by_id.at(long_id), by_id.at(short_id));
  };

  const auto [long_np, short_np] = run_pair(0.0);
  // Quantum between the short job's WHOLE runtime and the long job's first
  // stage boundary (~a quarter of its run, 8× the short one at these work
  // scales): the long job yields at its first boundary with the short job
  // waiting; the short job completes inside one quantum and never yields
  // back. Run vtimes are policy-invariant, so the baseline's are exact.
  const double quantum = short_np.run_vtime * 1.5;
  ASSERT_LT(quantum, long_np.run_vtime / 4.0);
  const auto [long_p, short_p] = run_pair(quantum);

  EXPECT_EQ(short_np.preemptions + long_np.preemptions, 0u);
  EXPECT_EQ(long_p.preemptions, 1u);
  EXPECT_EQ(short_p.preemptions, 0u);  // the short job never yields
  // Overtake: the short job finishes strictly earlier than without
  // preemption; the long job pays (its finish moves later).
  EXPECT_LT(short_p.finish, short_np.finish);
  EXPECT_GT(long_p.finish, long_np.finish);
  // Bit-identity is untouched by the schedule change.
  EXPECT_EQ(long_p.output_fingerprint, long_np.output_fingerprint);
  EXPECT_EQ(short_p.output_fingerprint, short_np.output_fingerprint);
  EXPECT_EQ(long_p.run_vtime, long_np.run_vtime);
  EXPECT_EQ(short_p.run_vtime, short_np.run_vtime);
}

// --- Deadline admission: decision invariance ---------------------------------

TEST(ReconService, AdmissionDecisionInvarianceMatrix) {
  // The admission acceptance property: the admitted / rejected / downgraded
  // id sets are identical across scheduler policy × threads × transport —
  // decisions read only the arrival-ordered stream, the learned estimates
  // and the controller's private slot model. Rejected jobs never touch a
  // slot or charge the fabric.
  auto warm = warm_set();

  struct Decision {
    std::set<u64> admitted, rejected;
    double fabric_fetch = 0;
  };
  auto run_with = [&](SchedulerPolicy policy, unsigned threads,
                      TierTransport transport, AdmissionMode mode) {
    auto cfg = tiny_config(policy, /*slots=*/1);
    cfg.threads = threads;
    cfg.transport = transport;
    cfg.admission = mode;
    ReconService svc(cfg);
    const auto primed = svc.prime(warm);
    // Deadlines in units of the learned estimate: generous for the first
    // two, then tight enough that the booked slot model (est_start grows by
    // est_fetch + est_run per admitted job) rules the later ones out.
    const double er = primed[0].run_vtime;
    const double ks[] = {10.0, 10.0, 1.2, 1.2, 0.5, 0.5};
    for (const double k : ks) {
      JobRequest r;
      r.scenario = Scenario::BrainScan;
      r.seed = 200;
      r.arrival = 0.0;
      r.deadline = k * er;
      svc.submit(r);
    }
    Decision d;
    for (const auto& st : svc.drain()) {
      if (st.admitted) {
        d.admitted.insert(st.id);
      } else {
        d.rejected.insert(st.id);
        // Never dispatched: no slot, no fetch, no compute, no fabric.
        EXPECT_EQ(st.outcome, JobOutcome::Rejected);
        EXPECT_EQ(st.reject_reason, "deadline-infeasible");
        EXPECT_EQ(st.slot, -1);
        EXPECT_TRUE(st.slots_visited.empty());
        EXPECT_EQ(st.seed_fetch_s, 0.0);
        EXPECT_EQ(st.run_vtime, 0.0);
        EXPECT_EQ(st.output_fingerprint, 0u);
      }
    }
    d.fabric_fetch = svc.stats().fabric_fetch_s;
    EXPECT_EQ(svc.stats().admission_rejected, d.rejected.size());
    return d;
  };

  const auto ref = run_with(SchedulerPolicy::Fifo, 1, TierTransport::Inproc,
                            AdmissionMode::Reject);
  EXPECT_FALSE(ref.admitted.empty());
  EXPECT_FALSE(ref.rejected.empty());

  const SchedulerPolicy policies[] = {SchedulerPolicy::Fifo,
                                      SchedulerPolicy::Priority,
                                      SchedulerPolicy::FairShare};
  std::vector<TierTransport> transports = {TierTransport::Inproc};
#ifdef MLR_HAS_NET
  transports.push_back(TierTransport::Loopback);
#endif
  for (const auto policy : policies)
    for (const unsigned threads : {1u, 3u})
      for (const auto transport : transports) {
        const auto d = run_with(policy, threads, transport,
                                AdmissionMode::Reject);
        EXPECT_EQ(d.admitted, ref.admitted);
        EXPECT_EQ(d.rejected, ref.rejected);
        // Rejected jobs charged nothing: every run moved the same bytes.
        EXPECT_DOUBLE_EQ(d.fabric_fetch, ref.fabric_fetch);
      }
}

TEST(ReconService, DowngradeModeRunsInfeasibleJobsAsBestEffort) {
  // Downgrade shares Reject's decision function exactly: the downgraded id
  // set equals Reject's rejected set, but the jobs run (as BestEffort).
  auto warm = warm_set();
  auto run_mode = [&](AdmissionMode mode) {
    auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/1);
    cfg.admission = mode;
    ReconService svc(cfg);
    const auto primed = svc.prime(warm);
    const double er = primed[0].run_vtime;
    const double ks[] = {10.0, 10.0, 0.5, 0.5};
    for (const double k : ks) {
      JobRequest r;
      r.scenario = Scenario::BrainScan;
      r.seed = 200;
      r.arrival = 0.0;
      r.deadline = k * er;
      svc.submit(r);
    }
    return std::make_pair(svc.drain(), svc.stats());
  };

  const auto [rej_st, rej_stats] = run_mode(AdmissionMode::Reject);
  const auto [dwn_st, dwn_stats] = run_mode(AdmissionMode::Downgrade);
  std::set<u64> rejected, downgraded;
  for (const auto& st : rej_st)
    if (!st.admitted) rejected.insert(st.id);
  for (const auto& st : dwn_st) {
    EXPECT_TRUE(st.admitted);  // downgrade never rejects on deadline
    EXPECT_EQ(st.outcome, JobOutcome::Completed);
    if (st.downgraded) {
      downgraded.insert(st.id);
      EXPECT_EQ(int(st.slo), int(SloClass::BestEffort));
    }
  }
  EXPECT_EQ(downgraded, rejected);
  EXPECT_FALSE(downgraded.empty());
  EXPECT_EQ(dwn_stats.admission_downgraded, downgraded.size());
  EXPECT_EQ(dwn_stats.admission_rejected, 0u);
  EXPECT_EQ(rej_stats.admission_rejected, rejected.size());
}

TEST(ReconService, AdmissionCanRejectEveryArrivalInABatch) {
  // Regression: a batch whose every member is deadline-rejected leaves the
  // dispatch queue empty — drain() must skip dispatching (not assert in the
  // scheduler) and later arrivals must still run normally.
  auto warm = warm_set();
  auto cfg = tiny_config(SchedulerPolicy::Fifo, /*slots=*/2);
  cfg.admission = AdmissionMode::Reject;
  ReconService svc(cfg);
  const auto primed = svc.prime(warm);
  const double er = primed[0].run_vtime;
  // Three simultaneous arrivals, all infeasible; one feasible straggler.
  for (int i = 0; i < 3; ++i) {
    JobRequest r;
    r.scenario = Scenario::BrainScan;
    r.seed = 200;
    r.arrival = 0.0;
    r.deadline = 0.01 * er;
    svc.submit(r);
  }
  JobRequest late;
  late.scenario = Scenario::BrainScan;
  late.seed = 200;
  late.arrival = 5.0;
  late.deadline = 5.0 + 10.0 * er;
  svc.submit(late);

  const auto out = svc.drain();
  ASSERT_EQ(out.size(), 4u);
  u64 rejected = 0, completed = 0;
  for (const auto& st : out) {
    if (st.admitted) {
      ++completed;
      EXPECT_EQ(st.outcome, JobOutcome::Completed);
      EXPECT_GE(st.start, 5.0);
    } else {
      ++rejected;
      EXPECT_EQ(st.reject_reason, "deadline-infeasible");
    }
  }
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(completed, 1u);
  EXPECT_EQ(svc.stats().admission_rejected, 3u);
}

// --- Workload generation -----------------------------------------------------

TEST(WorkloadGenerator, DeterministicAndShaped) {
  WorkloadConfig wc;
  wc.jobs = 64;
  wc.seed = 42;
  wc.bursty = true;
  wc.burst_size = 4;
  wc.deadline_slack = 100.0;
  WorkloadGenerator g1(wc), g2(wc);
  const auto a = g1.generate(), b = g2.generate();
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(int(a[i].scenario), int(b[i].scenario));
    EXPECT_DOUBLE_EQ(a[i].deadline, a[i].arrival + 100.0);
  }
  // Bursts: members of one burst share an arrival instant.
  for (std::size_t i = 0; i < a.size(); i += 4)
    for (std::size_t j = 1; j < 4; ++j)
      EXPECT_EQ(a[i].arrival, a[i + j].arrival);
  // Arrivals are non-decreasing.
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_GE(a[i].arrival, a[i - 1].arrival);
}

}  // namespace
}  // namespace mlr::serve
