// Tests for the fused elementwise kernel layer (common/ew.hpp +
// admm/kernels.hpp): bit-exactness of every fused chain against the naive
// loop sequence it replaced, bit-identical reductions for any pool width
// (the deterministic tile partition), allocation-free steady state, and the
// pass/byte accounting the fusion acceptance criterion reads.
#include <gtest/gtest.h>

#include <cmath>

#include "admm/kernels.hpp"
#include "admm/tv.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/scratch.hpp"

namespace mlr::admm {
namespace {

// Big enough that both the flat and the row partitions produce several
// tiles (volume() = 55296 > 3 * kEwTileElems).
constexpr Shape3 kShape{24, 24, 96};

Array3D<cfloat> random_volume(Shape3 s, u64 seed) {
  Array3D<cfloat> v(s);
  Rng rng(seed);
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

VectorField random_field(Shape3 s, u64 seed) {
  VectorField f(s);
  for (int c = 0; c < 3; ++c) {
    Rng rng(seed + u64(c));
    for (auto& x : f.c[c]) x = cfloat(float(rng.normal()), float(rng.normal()));
  }
  return f;
}

void expect_bitwise_eq(const Array3D<cfloat>& a, const Array3D<cfloat>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (i64 i = 0; i < a.size(); ++i) ASSERT_EQ(a.data()[i], b.data()[i]);
}

void expect_bitwise_eq(const VectorField& a, const VectorField& b) {
  for (int c = 0; c < 3; ++c) expect_bitwise_eq(a.c[c], b.c[c]);
}

// The naive loop chains the kernels replaced — copied from the pre-fusion
// solver (tv.cpp is still the reference TV implementation).

void naive_g_update(VectorField& g, const VectorField& psi,
                    const VectorField& lambda, double rho) {
  for (int c = 0; c < 3; ++c)
    for (i64 i = 0; i < g.c[c].size(); ++i)
      g.c[c].data()[i] =
          psi.c[c].data()[i] - lambda.c[c].data()[i] / float(rho);
}

void naive_lsp_combine(const Array3D<cfloat>& u, const VectorField& g,
                       const Array3D<cfloat>& grad_data, double rho,
                       Array3D<cfloat>& G) {
  VectorField gu(u.shape());
  tv_grad(u, gu);
  for (int c = 0; c < 3; ++c)
    for (i64 i = 0; i < gu.c[c].size(); ++i)
      gu.c[c].data()[i] -= g.c[c].data()[i];
  Array3D<cfloat> reg(u.shape());
  tv_grad_adjoint(gu, reg);
  for (i64 i = 0; i < G.size(); ++i)
    G.data()[i] = grad_data.data()[i] + float(rho) * reg.data()[i];
}

double naive_dot_re(std::span<const cfloat> a, std::span<const cfloat> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += double(a[i].real()) * b[i].real() + double(a[i].imag()) * b[i].imag();
  return s;
}

void naive_cg_update(const Array3D<cfloat>& G, bool first, double beta,
                     double step, Array3D<cfloat>& p, Array3D<cfloat>& u) {
  if (first) {
    for (i64 i = 0; i < p.size(); ++i) p.data()[i] = -G.data()[i];
  } else {
    for (i64 i = 0; i < p.size(); ++i)
      p.data()[i] = -G.data()[i] + float(beta) * p.data()[i];
  }
  for (i64 i = 0; i < u.size(); ++i)
    u.data()[i] += float(step) * p.data()[i];
}

double naive_rsp_shrink(const Array3D<cfloat>& u, const VectorField& lambda,
                        double rho, double thr, VectorField& psi,
                        VectorField& gu) {
  VectorField psi_prev = psi;
  tv_grad(u, gu);
  for (int c = 0; c < 3; ++c)
    for (i64 i = 0; i < psi.c[c].size(); ++i)
      psi.c[c].data()[i] =
          gu.c[c].data()[i] + lambda.c[c].data()[i] / float(rho);
  soft_threshold(psi, thr);
  double s2 = 0;
  for (int c = 0; c < 3; ++c)
    for (i64 i = 0; i < psi.c[c].size(); ++i)
      s2 += std::norm(psi.c[c].data()[i] - psi_prev.c[c].data()[i]);
  return s2;
}

double naive_lambda_update(VectorField& lambda, const VectorField& gu,
                           const VectorField& psi, double rho) {
  double r2 = 0;
  for (int c = 0; c < 3; ++c)
    for (i64 i = 0; i < lambda.c[c].size(); ++i) {
      lambda.c[c].data()[i] +=
          float(rho) * (gu.c[c].data()[i] - psi.c[c].data()[i]);
      r2 += std::norm(gu.c[c].data()[i] - psi.c[c].data()[i]);
    }
  return r2;
}

TEST(Ew, TilePartitionIsSizeBased) {
  EXPECT_EQ(ew_num_tiles(0), 0);
  EXPECT_EQ(ew_num_tiles(1), 1);
  EXPECT_EQ(ew_num_tiles(kEwTileElems), 1);
  EXPECT_EQ(ew_num_tiles(kEwTileElems + 1), 2);
  // Row tiles keep whole rows together and only depend on the shape.
  EXPECT_EQ(ew_num_row_tiles(kShape.n1 * kShape.n0, kShape.n2), 4);
}

TEST(Ew, GUpdateMatchesNaiveLoops) {
  const auto psi = random_field(kShape, 1);
  const auto lambda = random_field(kShape, 5);
  VectorField want(kShape), got(kShape);
  naive_g_update(want, psi, lambda, 0.7);
  for (unsigned workers : {1u, 4u}) {
    ThreadPool pool(workers);
    SolverKernels knl;
    knl.set_pool(&pool);
    knl.g_update(got, psi, lambda, 0.7);
    expect_bitwise_eq(want, got);
  }
}

TEST(Ew, LspCombineMatchesNaiveChain) {
  const auto u = random_volume(kShape, 11);
  const auto g = random_field(kShape, 17);
  const auto grad_data = random_volume(kShape, 23);
  const auto G_prev = random_volume(kShape, 29);
  Array3D<cfloat> want(kShape);
  naive_lsp_combine(u, g, grad_data, 0.7, want);
  const double want_gg = naive_dot_re(want.span(), want.span());
  const double want_gp = naive_dot_re(want.span(), G_prev.span());
  SolverKernels::Dots ref{};
  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    SolverKernels knl;
    knl.set_pool(&pool);
    Array3D<cfloat> got(kShape);
    const auto dots =
        knl.lsp_combine(u, g, grad_data, 0.7, G_prev, /*has_prev=*/true, got);
    expect_bitwise_eq(want, got);  // the map half is bit-exact
    // Reductions: tolerance vs the serial reference, bit-identical across
    // pool widths (fixed tile combine order).
    EXPECT_NEAR(dots.gg, want_gg, 1e-9 * std::abs(want_gg));
    EXPECT_NEAR(dots.gp, want_gp,
                1e-9 * std::max(1.0, std::abs(want_gp)));
    if (workers == 1u) {
      ref = dots;
    } else {
      EXPECT_EQ(dots.gg, ref.gg);
      EXPECT_EQ(dots.gp, ref.gp);
    }
  }
}

TEST(Ew, CgUpdateMatchesNaiveLoops) {
  const auto G = random_volume(kShape, 31);
  for (const bool first : {true, false}) {
    auto p_want = random_volume(kShape, 37);
    auto u_want = random_volume(kShape, 41);
    auto p_got = p_want;
    auto u_got = u_want;
    naive_cg_update(G, first, 0.37, 0.05, p_want, u_want);
    ThreadPool pool(4);
    SolverKernels knl;
    knl.set_pool(&pool);
    knl.cg_update(G, first, 0.37, 0.05, p_got, u_got);
    expect_bitwise_eq(p_want, p_got);
    expect_bitwise_eq(u_want, u_got);
  }
}

TEST(Ew, RspShrinkMatchesNaiveChain) {
  const auto u = random_volume(kShape, 43);
  const auto lambda = random_field(kShape, 47);
  auto psi_want = random_field(kShape, 53);
  VectorField gu_want(kShape);
  const double s2_want =
      naive_rsp_shrink(u, lambda, 0.7, 1e-3 / 0.7, psi_want, gu_want);
  double s2_ref = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    SolverKernels knl;
    knl.set_pool(&pool);
    auto psi_got = random_field(kShape, 53);
    VectorField gu_got(kShape);
    const double s2 = knl.rsp_shrink(u, lambda, 0.7, 1e-3 / 0.7, psi_got,
                                     gu_got, /*want_s2=*/true);
    expect_bitwise_eq(psi_want, psi_got);
    expect_bitwise_eq(gu_want, gu_got);
    EXPECT_NEAR(s2, s2_want, 1e-9 * std::max(1.0, s2_want));
    if (workers == 1u) {
      s2_ref = s2;
    } else {
      EXPECT_EQ(s2, s2_ref);
    }
  }
}

TEST(Ew, LambdaUpdateMatchesNaiveLoops) {
  const auto gu = random_field(kShape, 59);
  const auto psi = random_field(kShape, 61);
  auto lambda_want = random_field(kShape, 67);
  const double r2_want = naive_lambda_update(lambda_want, gu, psi, 0.7);
  double r2_ref = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    SolverKernels knl;
    knl.set_pool(&pool);
    auto lambda_got = random_field(kShape, 67);
    const double r2 =
        knl.lambda_update(lambda_got, gu, psi, 0.7, /*want_r2=*/true);
    expect_bitwise_eq(lambda_want, lambda_got);
    EXPECT_NEAR(r2, r2_want, 1e-9 * std::max(1.0, r2_want));
    if (workers == 1u) {
      r2_ref = r2;
    } else {
      EXPECT_EQ(r2, r2_ref);
    }
  }
}

TEST(Ew, ResidualNormMatchesNaiveLoops) {
  const auto d = random_volume(kShape, 71);
  auto r_want = random_volume(kShape, 73);
  for (i64 i = 0; i < r_want.size(); ++i) r_want.data()[i] -= d.data()[i];
  double norm_want = 0;
  for (const auto& x : r_want) norm_want += std::norm(x);
  double norm_ref = 0;
  for (unsigned workers : {1u, 4u}) {
    ThreadPool pool(workers);
    SolverKernels knl;
    knl.set_pool(&pool);
    auto r_got = random_volume(kShape, 73);
    const double n2 = knl.residual_norm_sq(r_got, d);
    expect_bitwise_eq(r_want, r_got);
    EXPECT_NEAR(n2, norm_want, 1e-9 * norm_want);
    if (workers == 1u) {
      norm_ref = n2;
    } else {
      EXPECT_EQ(n2, norm_ref);
    }
  }
}

TEST(Ew, NormalizeAndNormsMatchNaive) {
  const auto src = random_volume(kShape, 79);
  double nv = 0;
  for (const auto& x : src) nv += std::norm(x);
  nv = std::sqrt(nv);
  auto want = src;
  for (auto& x : want) x *= float(1.0 / nv);
  const auto field = random_field(kShape, 83);
  const double tvn_want = tv_norm(field);
  double n_ref = 0, tvn_ref = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    SolverKernels knl;
    knl.set_pool(&pool);
    const double n = knl.l2_norm(src.span());
    EXPECT_NEAR(n, nv, 1e-9 * nv);
    auto got = src;
    knl.normalize(got, n);  // naive scale uses the same float(1.0/n) factor
    const double tvn = knl.tv_norm(field);
    EXPECT_NEAR(tvn, tvn_want, 1e-9 * tvn_want);
    if (workers == 1u) {
      n_ref = n;
      tvn_ref = tvn;
      auto want_n = src;
      for (auto& x : want_n) x *= float(1.0 / n);
      expect_bitwise_eq(want_n, got);
    } else {
      EXPECT_EQ(n, n_ref);
      EXPECT_EQ(tvn, tvn_ref);
    }
  }
  // The serial reference norm and the tiled norm agree closely enough that
  // the normalized volumes match the naive two-pass result bitwise when the
  // norms are bit-equal; verified above for each width via n_ref.
  (void)want;
}

TEST(Ew, SteadyStateAllocsPerOpIsZero) {
  ThreadPool pool(4);
  SolverKernels knl;
  knl.set_pool(&pool);
  const auto u = random_volume(kShape, 89);
  const auto lambda = random_field(kShape, 97);
  auto psi = random_field(kShape, 101);
  VectorField gu(kShape);
  auto lam = lambda;
  // Warm up every reduction kernel once so the per-tile scratch slots and
  // the pool's internal state reach steady state.
  (void)knl.rsp_shrink(u, lambda, 0.7, 1e-3, psi, gu, true);
  (void)knl.lambda_update(lam, gu, psi, 0.7, true);
  (void)knl.norm_sq(u.span());
  (void)knl.tv_norm(gu);
  const u64 allocs0 = scratch_heap_allocs();
  for (int it = 0; it < 20; ++it) {
    (void)knl.rsp_shrink(u, lambda, 0.7, 1e-3, psi, gu, true);
    (void)knl.lambda_update(lam, gu, psi, 0.7, true);
    (void)knl.norm_sq(u.span());
    (void)knl.tv_norm(gu);
  }
  EXPECT_EQ(scratch_heap_allocs() - allocs0, 0u);
}

TEST(Ew, StatsCountFusedAndNaivePasses) {
  SolverKernels knl;  // serial: accounting must not depend on the pool
  const auto u = random_volume(kShape, 103);
  const auto lambda = random_field(kShape, 107);
  auto psi = random_field(kShape, 109);
  VectorField gu(kShape);
  (void)knl.rsp_shrink(u, lambda, 0.7, 1e-3, psi, gu, /*want_s2=*/true);
  EXPECT_EQ(knl.stats().kernels, 1u);
  EXPECT_EQ(knl.stats().passes, 13u);
  EXPECT_EQ(knl.stats().naive_passes, 28u);
  auto lam = lambda;
  (void)knl.lambda_update(lam, gu, psi, 0.7, /*want_r2=*/true);
  EXPECT_EQ(knl.stats().kernels, 2u);
  EXPECT_EQ(knl.stats().passes, 13u + 12u);
  EXPECT_EQ(knl.stats().naive_passes, 28u + 18u);
  EXPECT_GT(knl.stats().fusion_ratio(), 1.5);
  EXPECT_DOUBLE_EQ(knl.stats().bytes,
                   double(knl.stats().passes) * double(u.size()) *
                       sizeof(cfloat));
}

}  // namespace
}  // namespace mlr::admm
