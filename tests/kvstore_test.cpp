// Tests for the in-memory KV store (Redis substitute).
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace mlr::kvstore {
namespace {

Blob blob_of(std::string_view s) {
  Blob b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(KvStore, PutGetRoundtrip) {
  KvStore kv;
  kv.put(1, blob_of("hello"));
  auto v = kv.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 5u);
  EXPECT_FALSE(kv.get(2).has_value());
}

TEST(KvStore, OverwriteUpdatesBytes) {
  KvStore kv;
  kv.put(1, Blob(100));
  EXPECT_EQ(kv.bytes(), 100u);
  kv.put(1, Blob(40));
  EXPECT_EQ(kv.bytes(), 40u);
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, Erase) {
  KvStore kv;
  kv.put(7, Blob(10));
  EXPECT_TRUE(kv.erase(7));
  EXPECT_FALSE(kv.erase(7));
  EXPECT_EQ(kv.size(), 0u);
  EXPECT_EQ(kv.bytes(), 0u);
}

TEST(KvStore, AsyncPutVisibleAfterDrain) {
  KvStore kv;
  for (u64 k = 0; k < 100; ++k) kv.put_async(k, Blob(8));
  kv.drain();
  EXPECT_EQ(kv.size(), 100u);
  for (u64 k = 0; k < 100; ++k) EXPECT_TRUE(kv.contains(k));
}

TEST(KvStore, ShardingDistributesKeys) {
  KvStore kv(4);
  for (u64 k = 0; k < 64; ++k) kv.put(k, Blob(1));
  EXPECT_EQ(kv.size(), 64u);
  EXPECT_EQ(kv.bytes(), 64u);
}

TEST(KvStore, ConcurrentReadersAndWriters) {
  KvStore kv;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&kv, t] {
      for (u64 k = 0; k < 200; ++k) {
        kv.put(u64(t) * 1000 + k, Blob(16));
        (void)kv.get(u64(t) * 1000 + (k / 2));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(kv.size(), 800u);
}

TEST(KvStore, LatencyStatsRecorded) {
  KvStore kv;
  kv.put(1, Blob(64));
  for (int i = 0; i < 50; ++i) (void)kv.get(1);
  EXPECT_EQ(kv.get_latencies().count(), 50u);
  EXPECT_GE(kv.get_latencies().percentile(0.99), 0.0);
}

TEST(KvStore, LatencySnapshotIsolatedFromLaterGets) {
  // get_latencies() returns a copy taken under the latency lock — a reader
  // holding the snapshot must not observe (or race) samples appended by
  // concurrent get() calls afterwards.
  KvStore kv;
  kv.put(1, Blob(16));
  for (int i = 0; i < 10; ++i) (void)kv.get(1);
  const Samples snap = kv.get_latencies();
  EXPECT_EQ(snap.count(), 10u);
  std::vector<std::thread> ts;
  for (int w = 0; w < 4; ++w)
    ts.emplace_back([&kv] {
      for (int i = 0; i < 200; ++i) (void)kv.get(1);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(snap.count(), 10u);  // snapshot unchanged
  EXPECT_EQ(kv.get_latencies().count(), 810u);
}

TEST(KvStoreBlob, ComplexRoundtrip) {
  Rng rng(5);
  std::vector<cfloat> v(33);
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  auto blob = to_blob(v);
  EXPECT_EQ(blob.size(), v.size() * sizeof(cfloat));
  auto back = from_blob(blob);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(back[i], v[i]);
}

TEST(KvStoreBlob, FromBlobRejectsMisaligned) {
  Blob b(7);
  EXPECT_THROW(from_blob(b), mlr::Error);
}

}  // namespace
}  // namespace mlr::kvstore
