// Tests for the net/ remote-memo transport: wire primitives and the
// snapshot codec (including the checked-in golden frame — the wire format
// is a compatibility surface), the in-flight RequestTable's out-of-order
// completion and sticky-failure semantics, the TierClient ↔ TierServer
// round trip over loopback (mirror accounting bit-exact against a direct
// SharedTier, index-only seed + lazy value fetch), fault injection on every
// transport failure mode (truncated reply, dropped reply → timeout,
// reordered delivery, unsolicited id, torn snapshot import), and the real
// TCP socket backend (round trip + disconnect → sticky error, never a
// hang). Environments without sockets skip the TCP cases.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "net/request_table.hpp"
#include "net/tier_client.hpp"
#include "net/tier_server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "serve/shared_tier.hpp"

namespace mlr::net {
namespace {

// --- Fixtures ----------------------------------------------------------------

memo::MemoDb::Entry entry(memo::OpKind kind, std::vector<float> key,
                          std::vector<cfloat> value, double norm = 1.0) {
  memo::MemoDb::Entry e;
  e.kind = kind;
  e.key = std::move(key);
  e.norm = norm;
  e.value = std::move(value);
  e.value_cf = e.value.size();
  return e;
}

/// A small, fully deterministic snapshot exercising every codec branch:
/// several kinds, distinct value lengths, a non-unit norm and one entry
/// carrying an oracle probe.
std::vector<memo::MemoDb::Entry> fixture_entries() {
  std::vector<memo::MemoDb::Entry> v;
  v.push_back(entry(memo::OpKind::Fu1D, {1.0f, 0.0f, 0.0f, 0.0f},
                    {{1.0f, -2.0f}, {0.5f, 0.25f}}));
  v.push_back(entry(memo::OpKind::Fu1D, {0.0f, 1.0f, 0.0f, 0.0f},
                    {{-0.125f, 8.0f}, {3.0f, 0.0f}, {0.0f, -1.0f}}, 2.0));
  auto probed = entry(memo::OpKind::Fu2D, {0.0f, 0.0f, 1.0f, 0.0f},
                      {{4.0f, 4.0f}}, 0.5);
  probed.probe = {{0.75f, -0.75f}, {-1.5f, 2.5f}};
  v.push_back(probed);
  return v;
}

serve::SharedTierConfig tier_config(int shards = 2) {
  serve::SharedTierConfig tc;
  tc.shard_count = shards;
  tc.tau_dedup = 0.99;
  tc.key_dim = 4;
  return tc;
}

std::vector<std::byte> import_frame(const std::vector<memo::MemoDb::Entry>& v,
                                    u64 request_id) {
  WireWriter w;
  encode_entries(w, v, /*with_values=*/true);
  return encode_frame(FrameType::SnapshotImport, 0, request_id, w.data());
}

// --- Wire primitives ---------------------------------------------------------

TEST(Wire, PrimitivesRoundTripLittleEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(-1.5f);
  w.f64(3.141592653589793);
  // The encoding is explicit LE, not host order: check the first bytes.
  ASSERT_GE(w.size(), 7u);
  EXPECT_EQ(std::to_integer<unsigned>(w.data()[0]), 0xABu);
  EXPECT_EQ(std::to_integer<unsigned>(w.data()[1]), 0x34u);  // u16 low byte
  EXPECT_EQ(std::to_integer<unsigned>(w.data()[2]), 0x12u);
  EXPECT_EQ(std::to_integer<unsigned>(w.data()[3]), 0xEFu);  // u32 low byte
  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), -1.5f);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), WireError);  // past the end
}

TEST(Wire, FrameHeaderRoundTripAndValidation) {
  const std::vector<std::byte> payload(5, std::byte{0x7F});
  const auto frame = encode_frame(FrameType::GetBatch, kFlagReply, 42, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + 5);
  const auto h = decode_header(frame);
  EXPECT_EQ(h.magic, kWireMagic);
  EXPECT_EQ(h.version, kWireVersion);
  EXPECT_EQ(h.type, FrameType::GetBatch);
  EXPECT_TRUE(h.is_reply());
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.payload_bytes, 5u);

  // Truncated header / bad magic / wrong version are hard decode errors.
  EXPECT_THROW(decode_header(std::span(frame).first(kHeaderBytes - 1)),
               WireError);
  auto bad = frame;
  bad[0] = std::byte{0x00};
  EXPECT_THROW(decode_header(bad), WireError);
  auto vers = frame;
  vers[4] = std::byte{0xFF};
  EXPECT_THROW(decode_header(vers), WireError);
}

TEST(Wire, HostilePayloadSizeIsRejectedAtHeaderDecode) {
  // A peer-controlled payload_bytes near 2^64 would wrap
  // kHeaderBytes + payload_bytes into a tiny buffer (out-of-bounds write in
  // the frame readers); a merely huge one would bad_alloc. Both must die in
  // decode_header as WireError, before any resize.
  const auto header_with_payload_bytes = [](u64 payload_bytes) {
    WireWriter w;
    w.u32(kWireMagic);
    w.u16(kWireVersion);
    w.u8(std::uint8_t(FrameType::Get));
    w.u8(0);
    w.u64(/*request_id=*/1);
    w.u64(payload_bytes);
    return w.take();
  };
  EXPECT_THROW(decode_header(header_with_payload_bytes(kMaxFramePayload + 1)),
               WireError);
  EXPECT_THROW(
      decode_header(header_with_payload_bytes(~u64{0} - kHeaderBytes + 1)),
      WireError);
  EXPECT_NO_THROW(decode_header(header_with_payload_bytes(kMaxFramePayload)));
}

TEST(Wire, CorruptEntryCountsThrowBeforeAllocating) {
  // Wire-controlled counts (entry count, key/probe/value lengths) must be
  // checked against the bytes actually left in the frame before any
  // reserve/resize — a tiny corrupt frame throws WireError instead of
  // demanding a multi-gigabyte allocation.
  {
    WireWriter w;
    w.u64(~u64{0});  // entry count a 8-byte frame cannot possibly hold
    WireReader r(w.data());
    EXPECT_THROW(decode_entries(r), WireError);
  }
  {
    WireWriter w;
    w.u64(1);
    w.u8(0);             // kind
    w.u32(0xFFFFFFFFu);  // key length beyond the frame
    WireReader r(w.data());
    EXPECT_THROW(decode_entries(r), WireError);
  }
  {
    WireWriter w;
    w.u64(1);
    w.u8(0);             // kind
    w.u32(0);            // key length
    w.f64(1.0);          // norm
    w.u32(0xFFFFFFFFu);  // probe length beyond the frame
    WireReader r(w.data());
    EXPECT_THROW(decode_entries(r), WireError);
  }
  {
    WireWriter w;
    w.u64(1);
    w.u8(0);             // kind
    w.u32(0);            // key length
    w.f64(1.0);          // norm
    w.u32(0);            // probe length
    w.u32(0xFFFFFFFFu);  // value_cf beyond the frame...
    w.u8(1);             // ...with the value payload claimed present
    WireReader r(w.data());
    EXPECT_THROW(decode_entries(r), WireError);
  }
}

TEST(Wire, EntriesRoundTripFullAndIndexOnly) {
  const auto ref = fixture_entries();
  for (const bool with_values : {true, false}) {
    WireWriter w;
    encode_entries(w, ref, with_values);
    WireReader r(w.data());
    const auto out = decode_entries(r);
    EXPECT_TRUE(r.done());
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(int(out[i].kind), int(ref[i].kind));
      EXPECT_EQ(out[i].key, ref[i].key);
      EXPECT_EQ(out[i].norm, ref[i].norm);
      EXPECT_EQ(out[i].probe, ref[i].probe);
      // The full value length always travels; the payload only when asked —
      // the index-only seed form a remote session fetches lazily.
      EXPECT_EQ(out[i].value_cf, ref[i].value.size());
      if (with_values)
        EXPECT_EQ(out[i].value, ref[i].value);
      else
        EXPECT_TRUE(out[i].value.empty());
    }
  }
}

TEST(Wire, ErrorPayloadRoundTrip) {
  WireWriter w;
  encode_error(w, {3, "backend exploded"});
  WireReader r(w.data());
  const auto e = decode_error(r);
  EXPECT_EQ(e.code, 3u);
  EXPECT_EQ(e.message, "backend exploded");
}

TEST(Wire, SnapshotFrameMatchesGoldenBytes) {
  // The wire format is a compatibility surface: the SNAPSHOT_EXPORT reply
  // (stats block + full entry codec) for the fixture tier must reproduce
  // the checked-in golden frame byte for byte. Regenerate deliberately with
  // MLR_WRITE_GOLDEN=1 after an intentional format (version) change.
  TierServer server(tier_config(2));
  server.handle_frame(import_frame(fixture_entries(), 1));
  const auto request = [] {
    WireWriter w;
    w.u8(1);  // with_values
    return encode_frame(FrameType::SnapshotExport, 0, /*request_id=*/7,
                        w.data());
  }();
  const auto reply = server.handle_frame(request);
  ASSERT_GE(reply.size(), kHeaderBytes);
  EXPECT_EQ(decode_header(reply).type, FrameType::SnapshotExport);

  const std::string path =
      std::string(MLR_TEST_DATA_DIR) + "/snapshot_frame.golden";
  if (std::getenv("MLR_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(reply.data()),
              std::streamsize(reply.size()));
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    GTEST_SKIP() << "golden frame regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with MLR_WRITE_GOLDEN=1)";
  std::vector<char> golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  ASSERT_EQ(golden.size(), reply.size());
  EXPECT_EQ(0, std::memcmp(golden.data(), reply.data(), reply.size()));

  // And the golden bytes round-trip: decoding them reproduces the fixture.
  WireReader r(std::span<const std::byte>(reply).subspan(kHeaderBytes));
  r.u64();                    // stats: size
  const auto sn = r.u32();    // stats: shard count
  for (u32 s = 0; s < sn; ++s) {
    r.u64();
    r.f64();
  }
  r.f64();                    // stats: total bytes
  const auto out = decode_entries(r);
  const auto ref = fixture_entries();
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(out[i].key, ref[i].key);
    EXPECT_EQ(out[i].value, ref[i].value);
    EXPECT_EQ(out[i].probe, ref[i].probe);
  }
}

// --- RequestTable ------------------------------------------------------------

TEST(RequestTable, CompletesOutOfOrderByRequestId) {
  RequestTable t;
  const u64 a = t.next_id(), b = t.next_id();
  EXPECT_LT(a, b);
  t.expect(a);
  t.expect(b);
  EXPECT_EQ(t.in_flight(), 2u);
  t.complete(b, {std::byte{2}});  // replies arrive in reverse order
  t.complete(a, {std::byte{1}});
  EXPECT_EQ(std::to_integer<int>(t.wait(a, 1.0)[0]), 1);
  EXPECT_EQ(std::to_integer<int>(t.wait(b, 1.0)[0]), 2);
  EXPECT_EQ(t.in_flight(), 0u);
  EXPECT_FALSE(t.broken());
}

TEST(RequestTable, PerRequestFailureIsNotSticky) {
  RequestTable t;
  const u64 a = t.next_id(), b = t.next_id();
  t.expect(a);
  t.expect(b);
  t.fail(a, "server said no");  // an Error reply fails only its own slot
  EXPECT_THROW(t.wait(a, 1.0), NetError);
  EXPECT_FALSE(t.broken());
  t.complete(b, {});
  EXPECT_NO_THROW(t.wait(b, 1.0));
}

TEST(RequestTable, FailAllIsStickyAndFirstErrorWins) {
  RequestTable t;
  const u64 a = t.next_id();
  t.expect(a);
  t.fail_all("connection reset");
  t.fail_all("second fault");  // idempotent: the root cause wins
  EXPECT_TRUE(t.broken());
  EXPECT_NE(t.error().find("connection reset"), std::string::npos);
  EXPECT_THROW(t.wait(a, 1.0), NetError);
  EXPECT_THROW(t.expect(t.next_id()), NetError);  // future requests too
}

TEST(RequestTable, TimeoutBreaksTheTable) {
  RequestTable t;
  const u64 a = t.next_id();
  t.expect(a);
  EXPECT_THROW(t.wait(a, 0.05), NetError);
  // The reply may still arrive later and would then be unsolicited — the
  // table is broken, not just the one slot.
  EXPECT_TRUE(t.broken());
}

TEST(RequestTable, UnsolicitedReplyBreaksTheTable) {
  RequestTable t;
  const u64 a = t.next_id();
  t.expect(a);
  t.complete(999, {});  // the peer answered a request we never made
  EXPECT_TRUE(t.broken());
  EXPECT_THROW(t.wait(a, 1.0), NetError);
}

// --- TierClient over loopback ------------------------------------------------

TEST(TierClient, MirrorsTierAccountingBitExactly) {
  const auto tc = tier_config(2);
  TierServer server(tc);
  TierClient client(std::make_unique<LoopbackTransport>(&server, 2), tc.fabric,
                    2, /*timeout_s=*/5.0);
  serve::SharedTier direct(tc);  // the in-process reference

  EXPECT_EQ(client.size(), 0u);
  auto batch = fixture_entries();
  const auto remote = client.fold(batch);
  const auto local = direct.fold(std::move(batch));
  EXPECT_EQ(remote.promoted, local.promoted);
  EXPECT_EQ(remote.dedup_drops, local.dedup_drops);
  EXPECT_EQ(remote.cap_drops, local.cap_drops);

  // The stats block carried doubles as IEEE-754 bits: the mirror is
  // bit-exact, so client-side fabric charges cannot drift from in-process.
  ASSERT_EQ(client.size(), direct.size());
  ASSERT_EQ(client.shard_count(), direct.shard_count());
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(client.shard_entries(s), direct.shard_entries(s));
    EXPECT_EQ(client.shard_bytes(s), direct.shard_bytes(s));
  }
  EXPECT_EQ(client.total_bytes(), direct.total_bytes());
  EXPECT_EQ(client.charge_fetch(3.0, 1.5), direct.charge_fetch(3.0, 1.5));
  const auto more = fixture_entries();
  EXPECT_EQ(client.charge_store(more, 7.0, 2.0),
            direct.charge_store(more, 7.0, 2.0));
}

TEST(TierClient, IndexOnlySeedThenLazyValueFetch) {
  const auto tc = tier_config(2);
  TierServer server(tc);
  auto transport = std::make_unique<LoopbackTransport>(&server, 2);
  TierClient client(std::move(transport), tc.fabric, 2, /*timeout_s=*/5.0);
  const auto ref = fixture_entries();
  client.fold(ref);

  // begin_seed is non-blocking (the service overlaps the round trip with
  // job setup); end_seed lands the index-only snapshot in caller storage.
  const u64 ticket = client.begin_seed();
  std::vector<memo::MemoDb::Entry> storage;
  const auto seed = client.end_seed(ticket, storage);
  ASSERT_EQ(seed.entries, &storage);
  ASSERT_EQ(seed.values, &client);
  ASSERT_EQ(storage.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(storage[i].value.empty());
    EXPECT_EQ(storage[i].value_cf, ref[i].value.size());
    EXPECT_EQ(storage[i].key, ref[i].key);
  }

  // Batched path: request() + flush() then fetch() — one GET_BATCH per
  // shard; every position lands.
  client.request(0);
  client.request(2);
  client.request(2);  // idempotent
  client.flush();
  EXPECT_EQ(client.fetch(0), server.tier().snapshot()[0].value);
  EXPECT_EQ(client.fetch(2), server.tier().snapshot()[2].value);
  // Unbatched path: a cold fetch() falls back to one synchronous GET.
  EXPECT_EQ(client.fetch(1), server.tier().snapshot()[1].value);
}

// --- Fault injection ---------------------------------------------------------

TEST(TierClientFaults, TruncatedReplyIsStickyNotTorn) {
  const auto tc = tier_config(1);
  TierServer server(tc);
  auto transport = std::make_unique<LoopbackTransport>(&server, 1);
  auto* lb = transport.get();
  TierClient client(std::move(transport), tc.fabric, 1, /*timeout_s=*/1.0);
  client.fold(fixture_entries());
  std::vector<memo::MemoDb::Entry> storage;
  client.end_seed(client.begin_seed(), storage);

  lb->fault_truncate_replies(10);  // shorter than a frame header
  EXPECT_THROW(client.fold(fixture_entries()), NetError);
  // Sticky: the table is broken, later verbs fail fast instead of hanging.
  EXPECT_THROW(client.begin_seed(), NetError);
  EXPECT_THROW(client.fetch(0), NetError);
}

TEST(TierClientFaults, DroppedReplyTimesOutSticky) {
  const auto tc = tier_config(1);
  TierServer server(tc);
  auto transport = std::make_unique<LoopbackTransport>(&server, 1);
  auto* lb = transport.get();
  TierClient client(std::move(transport), tc.fabric, 1, /*timeout_s=*/0.1);
  client.fold(fixture_entries());
  std::vector<memo::MemoDb::Entry> storage;
  client.end_seed(client.begin_seed(), storage);

  lb->fault_drop_replies(true);
  EXPECT_THROW(client.fetch(0), NetError);  // waits 0.1 s, then breaks
  lb->fault_drop_replies(false);
  EXPECT_THROW(client.fold(fixture_entries()), NetError);  // still broken
}

TEST(TierClientFaults, ReorderedRepliesCompleteTheRightSlots) {
  // Out-of-order replies are legal: the request id keys the slot. Hold two
  // GET replies and deliver them reversed; both fetches get their own
  // value, not each other's.
  const auto tc = tier_config(2);
  TierServer server(tc);
  auto transport = std::make_unique<LoopbackTransport>(&server, 2);
  auto* lb = transport.get();
  auto& table = transport->table();
  server.handle_frame(import_frame(fixture_entries(), 1));

  lb->fault_hold_replies(true);
  const u64 a = table.next_id(), b = table.next_id();
  const auto get = [](u64 pos) {
    WireWriter w;
    w.u64(pos);
    return w.take();
  };
  table.expect(a);
  lb->send(0, FrameType::Get, a, get(0));
  table.expect(b);
  lb->send(1, FrameType::Get, b, get(2));
  EXPECT_EQ(table.in_flight(), 2u);
  lb->fault_hold_replies(false);
  lb->deliver_held(/*reverse=*/true);

  const std::pair<u64, u64> cases[] = {{a, 0}, {b, 2}};
  for (const auto& [id, pos] : cases) {
    const auto payload = table.wait(id, 1.0);
    WireReader r(payload);
    const auto n = r.u32();
    std::vector<cfloat> v;
    for (u32 i = 0; i < n; ++i) {
      const float re = r.f32(), im = r.f32();
      v.emplace_back(re, im);
    }
    EXPECT_EQ(v, server.tier().snapshot()[std::size_t(pos)].value);
  }
  EXPECT_FALSE(table.broken());
}

TEST(TierClientFaults, ServerErrorReplyFailsOnlyItsRequest) {
  // A GET past the tier draws an Error reply: a per-request failure that
  // fails its own slot, but the stream (and every later request) stays
  // usable — unlike a transport fault, nothing turns sticky.
  TierServer server(tier_config(1));
  LoopbackTransport lb(&server, 1);
  auto& table = lb.table();
  server.handle_frame(import_frame(fixture_entries(), 1));

  const auto get = [](u64 pos) {
    WireWriter w;
    w.u64(pos);
    return w.take();
  };
  const u64 bad = table.next_id();
  table.expect(bad);
  lb.send(0, FrameType::Get, bad, get(999));
  EXPECT_THROW(table.wait(bad, 1.0), NetError);
  EXPECT_FALSE(table.broken());

  const u64 good = table.next_id();
  table.expect(good);
  lb.send(0, FrameType::Get, good, get(0));
  const auto payload = table.wait(good, 1.0);
  WireReader r(payload);
  EXPECT_EQ(r.u32(), server.tier().snapshot()[0].value.size());
}

TEST(TierServerFaults, TruncatedImportCannotTearTheTier) {
  // decode-then-apply: a snapshot import whose payload is cut mid-entry
  // produces an Error reply and leaves the tier exactly as it was.
  TierServer server(tier_config(2));
  WireWriter w;
  encode_entries(w, fixture_entries(), /*with_values=*/true);
  auto payload = w.take();
  payload.resize(payload.size() - 4);  // tear the last value
  const auto reply = server.handle_frame(
      encode_frame(FrameType::SnapshotImport, 0, 9, payload));
  const auto h = decode_header(reply);
  EXPECT_EQ(h.type, FrameType::Error);
  EXPECT_EQ(h.request_id, 9u);
  WireReader r(std::span<const std::byte>(reply).subspan(kHeaderBytes));
  EXPECT_EQ(decode_error(r).code, 2u);
  EXPECT_EQ(server.tier().size(), 0u);  // untouched
}

// --- Socket backend ----------------------------------------------------------

TEST(SocketTransport, RoundTripOverLocalhost) {
  const auto tc = tier_config(2);
  TierServer server(tc);
  std::uint16_t port = 0;
  try {
    port = server.listen_and_serve();
  } catch (const NetError& e) {
    GTEST_SKIP() << "sockets unavailable: " << e.what();
  }
  std::unique_ptr<Transport> transport;
  try {
    transport = SocketTransport::connect_tcp("127.0.0.1", port, 2);
  } catch (const NetError& e) {
    GTEST_SKIP() << "connect failed: " << e.what();
  }
  TierClient client(std::move(transport), tc.fabric, 2, /*timeout_s=*/10.0);
  const auto ref = fixture_entries();
  const auto out = client.fold(ref);
  EXPECT_EQ(out.promoted, server.tier().size());
  std::vector<memo::MemoDb::Entry> storage;
  client.end_seed(client.begin_seed(), storage);
  ASSERT_EQ(storage.size(), server.tier().size());
  for (u64 pos = 0; pos < storage.size(); ++pos) {
    client.request(pos);
  }
  client.flush();
  for (u64 pos = 0; pos < storage.size(); ++pos)
    EXPECT_EQ(client.fetch(pos), server.tier().snapshot()[pos].value);
  server.stop();
}

TEST(SocketTransport, DisconnectSurfacesStickyErrorNeverHangs) {
  const auto tc = tier_config(1);
  auto server = std::make_unique<TierServer>(tc);
  std::uint16_t port = 0;
  try {
    port = server->listen_and_serve();
  } catch (const NetError& e) {
    GTEST_SKIP() << "sockets unavailable: " << e.what();
  }
  std::unique_ptr<Transport> transport;
  try {
    transport = SocketTransport::connect_tcp("127.0.0.1", port, 1);
  } catch (const NetError& e) {
    GTEST_SKIP() << "connect failed: " << e.what();
  }
  TierClient client(std::move(transport), tc.fabric, 1, /*timeout_s=*/5.0);
  client.fold(fixture_entries());
  std::vector<memo::MemoDb::Entry> storage;
  client.end_seed(client.begin_seed(), storage);

  // Kill the server between requests: the reader thread sees EOF, breaks
  // the table, and every later verb surfaces one sticky NetError — bounded
  // by the timeout, never a hang.
  server->stop();
  EXPECT_THROW(client.fetch(0), NetError);
  EXPECT_THROW(client.fold(fixture_entries()), NetError);
}

// --- Reconnect + idempotent replay -------------------------------------------

TEST(Wire, ReadVerbRepliesAreReplayEquivalent) {
  // The contract replay rests on: handling the SAME read-class request frame
  // twice yields byte-for-byte identical replies (a re-issue after a
  // reconnect is indistinguishable from the original), while PUT mutates —
  // which is why it stays at-most-once.
  TierServer server(tier_config(2));
  server.handle_frame(import_frame(fixture_entries(), 1));

  WireWriter get;
  get.u64(0);
  WireWriter batch;
  batch.u32(2);
  batch.u64(0);
  batch.u64(2);
  WireWriter exp;
  exp.u8(0);  // index-only snapshot export
  const std::pair<FrameType, std::vector<std::byte>> reads[] = {
      {FrameType::Get, get.take()},
      {FrameType::GetBatch, batch.take()},
      {FrameType::SnapshotExport, exp.take()},
  };
  for (const auto& [type, payload] : reads) {
    ASSERT_TRUE(replayable_verb(type));
    const auto frame = encode_frame(type, 0, 7, payload);
    const auto first = server.handle_frame(frame);
    const auto second = server.handle_frame(frame);
    EXPECT_EQ(first, second) << frame_type_name(type);
  }

  // PUT is not replay-equivalent: the second application sees its own
  // entries already in the tier and dedups them — a re-send would double
  // count. The verb classifier must say so.
  EXPECT_FALSE(replayable_verb(FrameType::Put));
  EXPECT_FALSE(replayable_verb(FrameType::SnapshotImport));
  const std::vector<memo::MemoDb::Entry> fresh = {
      entry(memo::OpKind::Fu1D, {0.0f, 0.0f, 0.0f, 1.0f}, {{9.0f, 9.0f}})};
  WireWriter put;
  encode_entries(put, fresh, /*with_values=*/true);
  const auto put_frame = encode_frame(FrameType::Put, 0, 8, put.take());
  const auto size_before = server.tier().size();
  const auto first = server.handle_frame(put_frame);   // promotes the entry
  const auto second = server.handle_frame(put_frame);  // dedup-drops it
  EXPECT_NE(first, second);
  EXPECT_EQ(server.tier().size(), size_before + 1);
}

TEST(RequestTable, RetryModeTimeoutFailsOnlyThatRequest) {
  RequestTable t;
  t.set_retry_mode(true);
  const u64 a = t.next_id(), b = t.next_id();
  t.expect(a);
  t.expect(b);
  // The timeout is a per-request, retryable failure — not a table break.
  EXPECT_THROW(t.wait(a, 0.05), RetryableError);
  EXPECT_FALSE(t.broken());
  t.complete(b, {std::byte{7}});
  EXPECT_EQ(std::to_integer<int>(t.wait(b, 1.0)[0]), 7);
  // The late reply to the timed-out slot is stale weather, not a protocol
  // violation: dropped, table stays healthy.
  t.complete(a, {std::byte{9}});
  EXPECT_FALSE(t.broken());
  EXPECT_NO_THROW(t.expect(t.next_id()));
}

TEST(RequestTable, RetryModeDropsStaleReplies) {
  RequestTable t;
  t.set_retry_mode(true);
  t.complete(999, {});  // unknown id: dropped (legacy regime would break)
  EXPECT_FALSE(t.broken());
  const u64 a = t.next_id();
  t.expect(a);
  t.complete(a, {std::byte{1}});
  t.complete(a, {std::byte{2}});  // duplicate after a replay: first wins
  EXPECT_FALSE(t.broken());
  EXPECT_EQ(std::to_integer<int>(t.wait(a, 1.0)[0]), 1);
}

TEST(LoopbackReconnect, ReplayAfterScriptedDisconnect) {
  // Carrier drops mid-send: the frame is lost, the recovery ladder reopens
  // on the first attempt and replays the stashed GET — the waiter gets its
  // value with no caller-visible error.
  TierServer server(tier_config(1));
  server.handle_frame(import_frame(fixture_entries(), 1));
  LoopbackTransport lb(&server, 1);
  lb.set_retry({/*retry_max=*/3, /*backoff_ms=*/0.0});
  auto& table = lb.table();

  lb.fault_disconnect_after(0);  // the very next frame is lost
  const u64 a = table.next_id();
  table.expect(a);
  WireWriter w;
  w.u64(0);
  lb.send(0, FrameType::Get, a, w.data());
  const auto payload = table.wait(a, 1.0);
  WireReader r(payload);
  EXPECT_EQ(r.u32(), server.tier().snapshot()[0].value.size());
  EXPECT_FALSE(table.broken());
  EXPECT_FALSE(lb.carrier_down());
  EXPECT_EQ(lb.reconnects(), 1u);
  EXPECT_EQ(lb.replays(), 1u);
}

TEST(LoopbackReconnect, AtMostOncePutSurfacesRetryableError) {
  // The carrier dies on the first PUT: the frame may or may not have
  // reached the server (here: lost), so it must NOT be re-sent. The ladder
  // recovers the carrier, the PUT's waiter gets a RetryableError, and the
  // tier was not mutated.
  TierServer server(tier_config(1));
  LoopbackTransport lb(&server, 1);
  lb.set_retry({/*retry_max=*/3, /*backoff_ms=*/0.0});
  auto& table = lb.table();

  lb.fault_disconnect_on_put(true);
  const u64 a = table.next_id();
  table.expect(a);
  WireWriter w;
  encode_entries(w, fixture_entries(), /*with_values=*/true);
  EXPECT_THROW(lb.send(0, FrameType::Put, a, w.data()), RetryableError);
  EXPECT_EQ(server.tier().size(), 0u);  // the lost frame was never applied
  // The carrier is healthy again: the same PUT re-issued by the CALLER (who
  // owns the at-most-once ambiguity) lands.
  EXPECT_FALSE(lb.carrier_down());
  EXPECT_FALSE(table.broken());
  const u64 b = table.next_id();
  table.expect(b);
  WireWriter w2;
  encode_entries(w2, fixture_entries(), /*with_values=*/true);
  lb.send(0, FrameType::Put, b, w2.data());
  EXPECT_NO_THROW(table.wait(b, 1.0));
  EXPECT_EQ(server.tier().size(), fixture_entries().size());
}

TEST(LoopbackReconnect, ExhaustedBudgetIsSticky) {
  // Every reopen attempt fails: the ladder's floor is the legacy sticky
  // contract — fail_all with the root fault plus the budget diagnosis.
  TierServer server(tier_config(1));
  LoopbackTransport lb(&server, 1);
  lb.set_retry({/*retry_max=*/2, /*backoff_ms=*/0.0});
  auto& table = lb.table();

  lb.fault_disconnect_after(0);
  lb.fault_reconnect_after(1 << 20);  // never reconnects
  const u64 a = table.next_id();
  table.expect(a);
  WireWriter w;
  w.u64(0);
  EXPECT_THROW(lb.send(0, FrameType::Get, a, w.data()), NetError);
  EXPECT_TRUE(table.broken());
  EXPECT_NE(table.error().find("reconnect budget of 2 attempt(s) exhausted"),
            std::string::npos);
  EXPECT_THROW(table.expect(table.next_id()), NetError);
  EXPECT_EQ(lb.reconnects(), 0u);
}

TEST(LoopbackReconnect, RetryDisabledPreservesStickyContract) {
  // net_retry_max == 0 must behave exactly like before the ladder existed:
  // the first carrier fault breaks the table, no reopen is attempted.
  TierServer server(tier_config(1));
  LoopbackTransport lb(&server, 1);  // no set_retry: legacy regime
  auto& table = lb.table();

  lb.fault_disconnect_after(0);
  const u64 a = table.next_id();
  table.expect(a);
  WireWriter w;
  w.u64(0);
  EXPECT_THROW(lb.send(0, FrameType::Get, a, w.data()), NetError);
  EXPECT_TRUE(table.broken());
  EXPECT_TRUE(lb.carrier_down());  // nobody tried to reopen
  EXPECT_EQ(lb.reconnects(), 0u);
}

TEST(TierClientFaults, SlowBatchRetriesBeforeBreakingTable) {
  // A single lost GET_BATCH reply used to poison the whole table (the PR-7
  // sticky contract). With a retry budget the harvester re-issues that one
  // batch under a fresh id and every waiter gets its value.
  const auto tc = tier_config(1);
  TierServer server(tc);
  auto transport = std::make_unique<LoopbackTransport>(&server, 1);
  auto* lb = transport.get();
  TierClient client(std::move(transport), tc.fabric, 1, /*timeout_s=*/0.2,
                    RetrySpec{/*retry_max=*/2, /*backoff_ms=*/1.0});
  client.fold(fixture_entries());
  std::vector<memo::MemoDb::Entry> storage;
  client.end_seed(client.begin_seed(), storage);

  lb->fault_drop_next(1);  // the first GET_BATCH reply vanishes
  client.request(0);
  client.request(2);
  client.flush();
  EXPECT_EQ(client.fetch(0), server.tier().snapshot()[0].value);
  EXPECT_EQ(client.fetch(2), server.tier().snapshot()[2].value);
  EXPECT_FALSE(client.transport_mut().table().broken());
  EXPECT_TRUE(client.healthy());
}

TEST(SocketTransport, ReconnectReplaysAcrossServerRestart) {
  // Real-socket half of the reconnect matrix: kill the TCP server under a
  // retry-budgeted transport, restart it on the same port, and verify the
  // next verb round-trips (the reader detected the fault, the ladder
  // redialed). Environments without sockets skip.
  const auto tc = tier_config(1);
  auto server = std::make_unique<TierServer>(tc);
  std::uint16_t port = 0;
  try {
    port = server->listen_and_serve();
  } catch (const NetError& e) {
    GTEST_SKIP() << "sockets unavailable: " << e.what();
  }
  std::unique_ptr<Transport> transport;
  try {
    transport = SocketTransport::connect_tcp("127.0.0.1", port, 1);
  } catch (const NetError& e) {
    GTEST_SKIP() << "connect failed: " << e.what();
  }
  transport->set_retry({/*retry_max=*/40, /*backoff_ms=*/25.0});
  auto* raw = transport.get();
  TierClient client(std::move(transport), tc.fabric, 1, /*timeout_s=*/20.0,
                    RetrySpec{/*retry_max=*/40, /*backoff_ms=*/25.0});
  const auto ref = fixture_entries();
  client.fold(ref);
  const auto snapshot = server->tier().snapshot();

  // Kill + restart on the same port. The restart runs concurrently with
  // the client's redial loop — exactly the chaos-bench "blip" shape.
  server.reset();
  server = std::make_unique<TierServer>(tc);
  {
    WireWriter w;
    encode_entries(w, snapshot, /*with_values=*/true);
    server->handle_frame(encode_frame(FrameType::SnapshotImport, 0, 1,
                                      w.data()));
  }
  try {
    server->listen_and_serve("127.0.0.1", port);
  } catch (const NetError& e) {
    GTEST_SKIP() << "same-port rebind unavailable: " << e.what();
  }

  // The next verb may fault once (the old connection is dead) and must
  // come back through the ladder with the right bytes.
  std::vector<memo::MemoDb::Entry> storage;
  client.end_seed(client.begin_seed(), storage);
  ASSERT_EQ(storage.size(), ref.size());
  for (u64 pos = 0; pos < storage.size(); ++pos)
    EXPECT_EQ(client.fetch(pos), server->tier().snapshot()[pos].value);
  EXPECT_TRUE(client.healthy());
  EXPECT_GE(raw->reconnects(), 1u);
}

}  // namespace
}  // namespace mlr::net
