// Unit tests for src/common: arrays, stats, parallel_for, RNG, error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "common/array.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace mlr {
namespace {

TEST(Array2D, ShapeAndIndexing) {
  Array2D<float> a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.size(), 12);
  a(2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(a(2, 3), 7.0f);
  EXPECT_FLOAT_EQ(a.data()[2 * 4 + 3], 7.0f);
}

TEST(Array2D, ZeroInitialized) {
  Array2D<cfloat> a(5, 5);
  for (const auto& x : a) EXPECT_EQ(x, cfloat{});
}

TEST(Array2D, DeepCopy) {
  Array2D<int> a(2, 2);
  a(0, 0) = 1;
  Array2D<int> b = a;
  b(0, 0) = 2;
  EXPECT_EQ(a(0, 0), 1);
  EXPECT_EQ(b(0, 0), 2);
}

TEST(Array2D, RowSpan) {
  Array2D<int> a(3, 4);
  std::iota(a.begin(), a.end(), 0);
  auto r1 = a.row(1);
  ASSERT_EQ(r1.size(), 4u);
  EXPECT_EQ(r1[0], 4);
  EXPECT_EQ(r1[3], 7);
}

TEST(Array2D, AtBoundsCheck) {
  Array2D<int> a(2, 2);
  EXPECT_THROW(a.at(2, 0), Error);
  EXPECT_THROW(a.at(0, -1), Error);
}

TEST(Array3D, ShapeAndIndexing) {
  Array3D<float> a(2, 3, 4);
  EXPECT_EQ(a.shape(), (Shape3{2, 3, 4}));
  EXPECT_EQ(a.size(), 24);
  a(1, 2, 3) = 9.0f;
  EXPECT_FLOAT_EQ(a.data()[(1 * 3 + 2) * 4 + 3], 9.0f);
}

TEST(Array3D, SlicesView) {
  Array3D<int> a(4, 2, 3);
  std::iota(a.begin(), a.end(), 0);
  auto s = a.slices(1, 2);
  ASSERT_EQ(s.size(), size_t(2 * 2 * 3));
  EXPECT_EQ(s[0], 6);  // first element of slice 1
  EXPECT_THROW(a.slices(3, 2), Error);
}

TEST(Array3D, MoveLeavesSourceEmpty) {
  Array3D<int> a(2, 2, 2);
  a(0, 0, 0) = 5;
  Array3D<int> b = std::move(a);
  EXPECT_EQ(b(0, 0, 0), 5);
}

TEST(Array3D, AlignedStorage) {
  Array3D<cfloat> a(3, 3, 3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u);
}

TEST(Norms, L2Norm) {
  std::vector<float> v{3.0f, 4.0f};
  EXPECT_NEAR(l2_norm<float>(v), 5.0, 1e-12);
  std::vector<cfloat> c{{3.0f, 4.0f}};
  EXPECT_NEAR(l2_norm<cfloat>(c), 5.0, 1e-6);
}

TEST(Norms, RelativeErrorZeroForIdentical) {
  std::vector<float> a{1, 2, 3}, b{1, 2, 3};
  EXPECT_DOUBLE_EQ(relative_error<float>(a, b), 0.0);
}

TEST(Norms, RelativeErrorScale) {
  std::vector<float> a{1, 0, 0}, b{0, 0, 0};
  EXPECT_DOUBLE_EQ(relative_error<float>(a, b), 1.0);
}

TEST(Norms, CosineSimilarity) {
  std::vector<float> a{1, 0}, b{0, 1}, c{2, 0};
  EXPECT_NEAR(cosine_similarity<float>(a, b), 0.0, 1e-12);
  EXPECT_NEAR(cosine_similarity<float>(a, c), 1.0, 1e-12);
}

TEST(Norms, CosineSimilarityComplex) {
  std::vector<cfloat> a{{1, 1}}, b{{2, 2}};
  EXPECT_NEAR(cosine_similarity<cfloat>(a, b), 1.0, 1e-6);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(double(i));
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 0.05);
}

TEST(Samples, AddAfterPercentileKeepsOrderCorrect) {
  // percentile() sorts the reservoir lazily; a later add() must invalidate
  // the sorted flag or an out-of-order sample would corrupt percentiles.
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_NEAR(s.percentile(1.0), 5.0, 1e-12);
  s.add(3.0);
  EXPECT_NEAR(s.percentile(0.5), 3.0, 1e-12);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
}

TEST(Samples, MergeAndSummarize) {
  Samples a, b;
  for (int i = 1; i <= 50; ++i) a.add(double(i));
  for (int i = 51; i <= 100; ++i) b.add(double(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  const auto sum = summarize(a);
  EXPECT_EQ(sum.n, 100u);
  EXPECT_NEAR(sum.mean, 50.5, 1e-9);
  EXPECT_NEAR(sum.p50, 50.5, 1e-9);
  EXPECT_NEAR(sum.max, 100.0, 1e-12);
  const auto empty = summarize(Samples{});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(Samples, CdfMonotone) {
  Samples s;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) s.add(rng.normal());
  auto cdf = s.cdf(16);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LE(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_NEAR(s.cdf_at(s.percentile(0.5)), 0.5, 0.05);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(AsciiBar, Bounds) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10).size(), 10u);
}

TEST(ParallelFor, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, [&](i64 i) { hits[size_t(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](i64) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 10,
                   [&](i64 i) {
                     if (i == 3) throw Error("boom");
                   }),
      Error);
}

TEST(ParallelForRanges, RangesPartitionDomain) {
  std::atomic<i64> total{0};
  parallel_for_ranges(10, 1000, [&](i64 lo, i64 hi) { total += hi - lo; });
  EXPECT_EQ(total.load(), 990);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkIndependent) {
  Rng a(42);
  Rng c = a.fork();
  EXPECT_NE(a.uniform(), c.uniform());
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 200; ++i) {
    i64 v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(ErrorMacros, CheckThrowsWithMessage) {
  try {
    MLR_CHECK_MSG(1 == 2, "context");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(WallTimer, MeasuresNonNegative) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 1000; ++i) x += i;
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace mlr
