// Tests for the ANN indexes (Faiss substitute): exactness of FlatIndex,
// IVF recall and cheap insertion, NSW graph behaviour, and the
// cluster-vs-graph insert-cost property the paper's design argues from.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "ann/ann.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace mlr::ann {
namespace {

std::vector<float> random_vec(i64 dim, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(dim));
  for (auto& x : v) x = float(rng.normal());
  return v;
}

// Clustered dataset: `nclusters` Gaussian clusters in `dim` dimensions.
std::vector<std::vector<float>> clustered_data(i64 n, i64 dim, i64 nclusters,
                                               Rng& rng) {
  std::vector<std::vector<float>> centers;
  for (i64 c = 0; c < nclusters; ++c) {
    auto v = random_vec(dim, rng);
    for (auto& x : v) x *= 10.0f;
    centers.push_back(std::move(v));
  }
  std::vector<std::vector<float>> data;
  for (i64 i = 0; i < n; ++i) {
    const auto& c = centers[size_t(rng.uniform_int(0, nclusters - 1))];
    auto v = random_vec(dim, rng);
    for (i64 d = 0; d < dim; ++d) v[size_t(d)] += c[size_t(d)];
    data.push_back(std::move(v));
  }
  return data;
}

TEST(FlatIndex, ExactNearest) {
  FlatIndex idx(4);
  idx.add(1, std::vector<float>{0, 0, 0, 0});
  idx.add(2, std::vector<float>{1, 0, 0, 0});
  idx.add(3, std::vector<float>{5, 5, 5, 5});
  auto n = idx.nearest(std::vector<float>{0.9f, 0, 0, 0});
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->id, 2u);
  EXPECT_NEAR(n->dist, 0.1f, 1e-5);
}

TEST(FlatIndex, TopKOrdering) {
  FlatIndex idx(2);
  for (int i = 0; i < 10; ++i)
    idx.add(u64(i), std::vector<float>{float(i), 0});
  auto r = idx.search(std::vector<float>{3.2f, 0}, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 3u);
  EXPECT_LE(r[0].dist, r[1].dist);
  EXPECT_LE(r[1].dist, r[2].dist);
}

TEST(FlatIndex, EmptyIndexReturnsNothing) {
  FlatIndex idx(3);
  EXPECT_FALSE(idx.nearest(std::vector<float>{1, 2, 3}).has_value());
  EXPECT_TRUE(idx.search(std::vector<float>{1, 2, 3}, 5).empty());
}

TEST(FlatIndex, DimensionMismatchThrows) {
  FlatIndex idx(3);
  EXPECT_THROW(idx.add(1, std::vector<float>{1, 2}), mlr::Error);
}

TEST(IvfFlat, UntrainedFallsBackToExact) {
  IvfFlatIndex idx(2, {.nlist = 4});
  idx.add(1, std::vector<float>{0, 0});
  idx.add(2, std::vector<float>{3, 3});
  EXPECT_FALSE(idx.trained());
  auto n = idx.nearest(std::vector<float>{2.8f, 3.1f});
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->id, 2u);
}

TEST(IvfFlat, AutoTrainsAfterThreshold) {
  IvfFlatIndex idx(4, {.nlist = 4, .train_size = 32});
  Rng rng(1);
  for (u64 i = 0; i < 32; ++i) idx.add(i, random_vec(4, rng));
  EXPECT_TRUE(idx.trained());
  EXPECT_EQ(idx.size(), 32u);
}

TEST(IvfFlat, HighRecallOnClusteredData) {
  const i64 dim = 8, n = 400;
  Rng rng(3);
  auto data = clustered_data(n, dim, 8, rng);
  IvfFlatIndex ivf(dim, {.nlist = 8, .nprobe = 3});
  FlatIndex flat(dim);
  for (i64 i = 0; i < n; ++i) {
    ivf.add(u64(i), data[size_t(i)]);
    flat.add(u64(i), data[size_t(i)]);
  }
  ivf.train();
  int hit = 0;
  const int queries = 50;
  for (int q = 0; q < queries; ++q) {
    auto probe = data[size_t(rng.uniform_int(0, n - 1))];
    for (auto& x : probe) x += float(rng.normal(0.0, 0.05));
    auto want = flat.nearest(probe);
    auto got = ivf.nearest(probe);
    if (got && want && got->id == want->id) ++hit;
  }
  EXPECT_GE(hit, int(queries * 0.85));  // ≥85 % recall@1 with nprobe=3/8
}

TEST(IvfFlat, InsertCostIsConstantInIndexSize) {
  // IVF insert = nlist centroid distances, independent of how many vectors
  // are already stored (the dynamic-insertion property, §4.3.2).
  const i64 dim = 8;
  Rng rng(5);
  IvfFlatIndex idx(dim, {.nlist = 8, .train_size = 64});
  for (u64 i = 0; i < 64; ++i) idx.add(i, random_vec(dim, rng));
  ASSERT_TRUE(idx.trained());
  const u64 before_small = idx.distance_evals();
  idx.add(1000, random_vec(dim, rng));
  const u64 cost_early = idx.distance_evals() - before_small;
  for (u64 i = 0; i < 500; ++i) idx.add(2000 + i, random_vec(dim, rng));
  const u64 before_big = idx.distance_evals();
  idx.add(9999, random_vec(dim, rng));
  const u64 cost_late = idx.distance_evals() - before_big;
  EXPECT_EQ(cost_early, cost_late);
  EXPECT_EQ(cost_late, u64(idx.nlist()));
}

TEST(IvfFlat, EmptySearchSafe) {
  IvfFlatIndex idx(4);
  EXPECT_TRUE(idx.search(std::vector<float>{0, 0, 0, 0}, 3).empty());
}

TEST(IvfFlat, IntraQuerySplitMatchesSerialSearch) {
  // search_batch with a tiny split_min forces one query's inverted-list scan
  // across several pool workers; neighbours (ids, distances, tie order) and
  // the distance-eval count must match the serial scan exactly.
  const i64 dim = 8;
  Rng rng(17);
  IvfFlatIndex split(dim, {.nlist = 4, .nprobe = 4, .train_size = 64,
                           .split_min = 8});
  IvfFlatIndex serial(dim, {.nlist = 4, .nprobe = 4, .train_size = 64,
                            .split_min = 8});
  auto data = clustered_data(400, dim, 4, rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    split.add(u64(i), data[i]);
    serial.add(u64(i), data[i]);
  }
  ASSERT_TRUE(split.trained());
  const i64 nq = 6, k = 5;
  std::vector<float> queries;
  for (i64 i = 0; i < nq; ++i) {
    auto q = random_vec(dim, rng);
    queries.insert(queries.end(), q.begin(), q.end());
  }
  ThreadPool pool(4);
  const u64 split_before = split.distance_evals();
  auto batched = split.search_batch(queries, k, &pool);
  const u64 split_cost = split.distance_evals() - split_before;
  u64 serial_cost = 0;
  ASSERT_EQ(batched.size(), std::size_t(nq));
  for (i64 i = 0; i < nq; ++i) {
    const u64 before = serial.distance_evals();
    auto want = serial.search(
        std::span<const float>{queries.data() + size_t(i * dim), size_t(dim)},
        k);
    serial_cost += serial.distance_evals() - before;
    ASSERT_EQ(batched[size_t(i)].size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(batched[size_t(i)][j].id, want[j].id);
      EXPECT_EQ(batched[size_t(i)][j].dist, want[j].dist);
    }
  }
  EXPECT_EQ(split_cost, serial_cost);
}

TEST(IvfFlat, SplitDisabledMatchesBaseBatch) {
  // split_min = 0 must take the base whole-query fan-out and still agree.
  const i64 dim = 6;
  Rng rng(23);
  IvfFlatIndex off(dim, {.nlist = 4, .train_size = 48, .split_min = 0});
  IvfFlatIndex on(dim, {.nlist = 4, .train_size = 48, .split_min = 4});
  auto data = clustered_data(200, dim, 4, rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    off.add(u64(i), data[i]);
    on.add(u64(i), data[i]);
  }
  std::vector<float> queries;
  for (i64 i = 0; i < 4; ++i) {
    auto q = random_vec(dim, rng);
    queries.insert(queries.end(), q.begin(), q.end());
  }
  ThreadPool pool(3);
  auto a = off.search_batch(queries, 3, &pool);
  auto b = on.search_batch(queries, 3, &pool);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].id, b[i][j].id);
      EXPECT_EQ(a[i][j].dist, b[i][j].dist);
    }
  }
}

TEST(Nsw, ExactOnTinyIndex) {
  NswIndex idx(2);
  idx.add(10, std::vector<float>{0, 0});
  idx.add(20, std::vector<float>{1, 1});
  idx.add(30, std::vector<float>{-4, 2});
  auto n = idx.nearest(std::vector<float>{0.9f, 0.9f});
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->id, 20u);
}

TEST(Nsw, GoodRecallOnClusteredData) {
  const i64 dim = 8, n = 300;
  Rng rng(7);
  auto data = clustered_data(n, dim, 6, rng);
  NswIndex nsw(dim, {.m = 8, .ef = 32});
  FlatIndex flat(dim);
  for (i64 i = 0; i < n; ++i) {
    nsw.add(u64(i), data[size_t(i)]);
    flat.add(u64(i), data[size_t(i)]);
  }
  int hit = 0;
  const int queries = 40;
  for (int q = 0; q < queries; ++q) {
    auto probe = data[size_t(rng.uniform_int(0, n - 1))];
    for (auto& x : probe) x += float(rng.normal(0.0, 0.05));
    auto want = flat.nearest(probe);
    auto got = nsw.nearest(probe);
    if (got && want && got->id == want->id) ++hit;
  }
  EXPECT_GE(hit, int(queries * 0.8));
}

TEST(Nsw, InsertCostGrowsWithIndexSize) {
  // The property that disqualifies graph indexes for mLR's growing DB:
  // inserting into a big graph costs much more than into a small one.
  const i64 dim = 8;
  Rng rng(9);
  NswIndex idx(dim, {.m = 8, .ef = 32});
  for (u64 i = 0; i < 10; ++i) idx.add(i, random_vec(dim, rng));
  const u64 b0 = idx.distance_evals();
  idx.add(100, random_vec(dim, rng));
  const u64 cost_small = idx.distance_evals() - b0;
  for (u64 i = 0; i < 500; ++i) idx.add(200 + i, random_vec(dim, rng));
  const u64 b1 = idx.distance_evals();
  idx.add(9999, random_vec(dim, rng));
  const u64 cost_big = idx.distance_evals() - b1;
  EXPECT_GT(cost_big, 2 * cost_small);
}

TEST(AnnComparison, IvfInsertMuchCheaperThanNswAtScale) {
  // Head-to-head version of the paper's design argument.
  const i64 dim = 8, n = 400;
  Rng rng(11);
  IvfFlatIndex ivf(dim, {.nlist = 16, .train_size = 64});
  NswIndex nsw(dim, {.m = 8, .ef = 32});
  for (u64 i = 0; i < u64(n); ++i) {
    auto v = random_vec(dim, rng);
    ivf.add(i, v);
    nsw.add(i, v);
  }
  const u64 ivf_before = ivf.distance_evals();
  const u64 nsw_before = nsw.distance_evals();
  auto v = random_vec(dim, rng);
  ivf.add(5000, v);
  nsw.add(5000, v);
  EXPECT_LT(ivf.distance_evals() - ivf_before,
            (nsw.distance_evals() - nsw_before) / 2);
}

}  // namespace
}  // namespace mlr::ann
