// Tests for multi-GPU chunk distribution: result equivalence across GPU
// counts, speedup within a node, redistribution cost across nodes, fabric
// utilization and query-latency contention.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "lamino/phantom.hpp"

namespace mlr::cluster {
namespace {

struct Fixture {
  lamino::Geometry geom = lamino::Geometry::cube(12);
  lamino::Operators ops{geom};
  Array3D<cfloat> u, dhat;
  Fixture() {
    u = lamino::to_complex(lamino::make_phantom(
        geom.object_shape(), lamino::PhantomKind::BrainTissue, 21));
    dhat = Array3D<cfloat>(geom.data_shape());
    ops.forward_freq(u, dhat);
  }
  ClusterSpec spec(int gpus) {
    ClusterSpec s;
    s.gpus = gpus;
    return s;
  }
};

TEST(Cluster, NodeTopology) {
  Fixture f;
  Cluster c(f.ops, f.spec(10), {.enable = false});
  EXPECT_EQ(c.num_gpus(), 10);
  EXPECT_EQ(c.num_nodes(), 3);  // 4 + 4 + 2
  EXPECT_EQ(c.node_of(0), 0);
  EXPECT_EQ(c.node_of(4), 1);
  EXPECT_EQ(c.node_of(9), 2);
}

TEST(Cluster, StageResultIndependentOfGpuCount) {
  // Distribution must not change numerics: same output for 1, 2, 5 GPUs.
  Fixture f;
  const auto& g = f.geom;
  auto run = [&](int gpus) {
    Cluster c(f.ops, f.spec(gpus), {.enable = false});
    Array3D<cfloat> u1(g.u1_shape());
    auto chunks = lamino::make_chunks(g.n1, 3);
    std::vector<memo::StageChunk> work;
    for (const auto& spec : chunks)
      work.push_back({spec, f.u.slices(spec.begin, spec.count),
                      u1.slices(spec.begin, spec.count)});
    (void)c.run_stage(memo::OpKind::Fu1D, work, 0.0);
    return u1;
  };
  auto r1 = run(1), r2 = run(2), r5 = run(5);
  EXPECT_LT(relative_error<cfloat>(r1.span(), r2.span()), 1e-12);
  EXPECT_LT(relative_error<cfloat>(r1.span(), r5.span()), 1e-12);
}

TEST(Cluster, MoreGpusFasterWithinNode) {
  Fixture f;
  auto time_for = [&](int gpus) {
    Cluster c(f.ops, f.spec(gpus), {.enable = false, .work_scale = 1.0e6});
    return c.forward_adjoint_pass(f.u, f.dhat, 1, 0.0);
  };
  const double t1 = time_for(1), t2 = time_for(2), t4 = time_for(4);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
  // Sub-linear: speedup below ideal due to redistribution.
  EXPECT_GT(t4, t1 / 4.0);
}

TEST(Cluster, CrossNodeScalingDiminishes) {
  // 4 → 8 GPUs crosses a node boundary: the redistribution moves to the
  // fabric and the marginal gain collapses (Fig 14's plateau).
  Fixture f;
  auto time_for = [&](int gpus) {
    Cluster c(f.ops, f.spec(gpus), {.enable = false, .work_scale = 1.0e6});
    return c.forward_adjoint_pass(f.u, f.dhat, 1, 0.0);
  };
  const double t2 = time_for(2), t4 = time_for(4), t8 = time_for(8);
  const double gain_24 = t2 / t4;
  const double gain_48 = t4 / t8;
  EXPECT_LT(gain_48, gain_24);
}

TEST(Cluster, RedistributionCostsGrowAcrossNodes) {
  Fixture f;
  Cluster intra(f.ops, f.spec(4), {.enable = false});
  Cluster inter(f.ops, f.spec(8), {.enable = false});
  const double bytes = 1.0e9;
  const double t_intra = intra.redistribute(bytes, 0.0);
  const double t_inter = inter.redistribute(bytes, 0.0);
  EXPECT_GT(t_inter, t_intra);
}

TEST(Cluster, SingleGpuRedistributionFree) {
  Fixture f;
  Cluster c(f.ops, f.spec(1), {.enable = false});
  EXPECT_DOUBLE_EQ(c.redistribute(1.0e9, 5.0), 5.0);
}

TEST(Cluster, MemoizedClusterSharesOneDatabase) {
  Fixture f;
  Cluster c(f.ops, f.spec(2),
            {.enable = true, .tau = 0.9, .key_dim = 16, .encoder_hw = 16},
            {.key_dim = 16, .tau = 0.9, .ivf = {.nlist = 2, .train_size = 8}});
  const auto& g = f.geom;
  Array3D<cfloat> u1(g.u1_shape());
  auto chunks = lamino::make_chunks(g.n1, 3);
  std::vector<memo::StageChunk> work;
  for (const auto& spec : chunks)
    work.push_back({spec, f.u.slices(spec.begin, spec.count),
                    u1.slices(spec.begin, spec.count)});
  (void)c.run_stage(memo::OpKind::Fu1D, work, 0.0);
  // Every chunk either inserted into the shared DB or served from it,
  // regardless of which GPU owned it.
  u64 hits = 0;
  for (int g = 0; g < 2; ++g)
    hits += c.wrapper(g).counters().db_hit + c.wrapper(g).counters().cache_hit;
  EXPECT_EQ(c.db().entries(memo::OpKind::Fu1D) + hits, chunks.size());
}

TEST(Cluster, GpusShareOneEncoderRegistry) {
  // Every wrapper keys (and trains) through the same EncoderRegistry, so a
  // multi-GPU run trains ONE encoder and reproduces single-GPU hit
  // patterns: collected samples pool in one place and training on any
  // wrapper quantizes the encoder every other wrapper sees.
  Fixture f;
  Cluster c(f.ops, f.spec(3),
            {.enable = true, .tau = 0.9, .key_dim = 16, .encoder_hw = 16},
            {.key_dim = 16, .tau = 0.9, .ivf = {.nlist = 2, .train_size = 8}});
  for (int g = 1; g < 3; ++g)
    EXPECT_EQ(&c.wrapper(0).key_encoder(), &c.wrapper(g).key_encoder());

  c.executor().set_bypass(true);
  c.executor().set_collect_samples(true, 64);
  const auto& geom = f.geom;
  Array3D<cfloat> u1(geom.u1_shape());
  auto chunks = lamino::make_chunks(geom.n1, 2);
  std::vector<memo::StageChunk> work;
  for (const auto& spec : chunks)
    work.push_back({spec, f.u.slices(spec.begin, spec.count),
                    u1.slices(spec.begin, spec.count)});
  (void)c.run_stage(memo::OpKind::Fu1D, work, 0.0);
  // Collection is global-chunk-ordered into the one registry: each wrapper
  // reports the same pooled count — the whole stage, not a per-GPU share.
  EXPECT_EQ(c.wrapper(0).collected_samples(), chunks.size());
  EXPECT_EQ(c.wrapper(1).collected_samples(), chunks.size());
  c.executor().set_collect_samples(false);
  (void)c.executor().train_encoder_from_collected(8);
  for (int g = 0; g < 3; ++g)
    EXPECT_TRUE(c.wrapper(g).key_encoder().quantized());
}

TEST(Cluster, FabricUtilizationGrowsWithGpus) {
  // More GPUs → more memoization + redistribution traffic on the shared
  // fabric (Fig 15).
  Fixture f;
  auto util = [&](int gpus) {
    Cluster c(f.ops, f.spec(gpus),
              {.enable = false, .work_scale = 1.0e6});
    const double done = c.forward_adjoint_pass(f.u, f.dhat, 1, 0.0);
    return c.fabric().utilization(done);
  };
  EXPECT_GT(util(8), util(4));
  EXPECT_GT(util(16), util(8));
}

}  // namespace
}  // namespace mlr::cluster
