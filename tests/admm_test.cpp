// Tests for the ADMM-FFT solver: TV operator correctness (adjointness,
// shrinkage), convergence on phantoms, Algorithm 1 ≡ Algorithm 2 numerics,
// memoized-vs-plain accuracy, and phase observation hooks.
#include <gtest/gtest.h>

#include <cmath>

#include "admm/solver.hpp"
#include "admm/tv.hpp"
#include "common/rng.hpp"
#include "lamino/phantom.hpp"

namespace mlr::admm {
namespace {

Array3D<cfloat> random_volume(Shape3 s, u64 seed) {
  Array3D<cfloat> v(s);
  Rng rng(seed);
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

TEST(Tv, GradientOfConstantIsZero) {
  Array3D<cfloat> u(4, 4, 4);
  u.fill(cfloat(3.0f, -1.0f));
  VectorField g(u.shape());
  tv_grad(u, g);
  for (int c = 0; c < 3; ++c)
    for (const auto& v : g.c[c]) EXPECT_EQ(v, cfloat{});
}

TEST(Tv, GradientOfLinearRamp) {
  Array3D<cfloat> u(4, 4, 4);
  for (i64 i1 = 0; i1 < 4; ++i1)
    for (i64 i0 = 0; i0 < 4; ++i0)
      for (i64 i2 = 0; i2 < 4; ++i2) u(i1, i0, i2) = cfloat(float(i1), 0.0f);
  VectorField g(u.shape());
  tv_grad(u, g);
  // d/di1 = 1 except at the boundary.
  for (i64 i1 = 0; i1 < 3; ++i1) EXPECT_EQ(g.c[0](i1, 2, 2), cfloat(1.0f, 0.0f));
  EXPECT_EQ(g.c[0](3, 2, 2), cfloat{});
  for (const auto& v : g.c[1]) EXPECT_EQ(v, cfloat{});
  for (const auto& v : g.c[2]) EXPECT_EQ(v, cfloat{});
}

TEST(Tv, AdjointConsistency) {
  // <∇u, g> == <u, ∇ᵀg> — required for the CG gradient to be exact.
  auto u = random_volume({6, 5, 4}, 1);
  VectorField g({6, 5, 4});
  for (int c = 0; c < 3; ++c) {
    Rng rng(10 + u64(c));
    for (auto& v : g.c[c]) v = cfloat(float(rng.normal()), float(rng.normal()));
  }
  VectorField gu(u.shape());
  tv_grad(u, gu);
  Array3D<cfloat> adj(u.shape());
  tv_grad_adjoint(g, adj);
  cdouble lhs{}, rhs{};
  for (int c = 0; c < 3; ++c)
    for (i64 i = 0; i < gu.c[c].size(); ++i)
      lhs += cdouble(gu.c[c].data()[i]) * std::conj(cdouble(g.c[c].data()[i]));
  for (i64 i = 0; i < u.size(); ++i)
    rhs += cdouble(u.data()[i]) * std::conj(cdouble(adj.data()[i]));
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 1e-4);
}

TEST(Tv, SoftThresholdShrinksAndZeroes) {
  VectorField x({2, 2, 2});
  x.c[0](0, 0, 0) = cfloat(3.0f, 4.0f);   // |v| = 5
  x.c[1](0, 0, 0) = cfloat(0.3f, 0.0f);   // |v| = 0.3 < t
  soft_threshold(x, 1.0);
  EXPECT_NEAR(std::abs(x.c[0](0, 0, 0)), 4.0, 1e-5);     // 5 − 1
  EXPECT_NEAR(std::arg(x.c[0](0, 0, 0)), std::atan2(4, 3), 1e-5);  // phase kept
  EXPECT_EQ(x.c[1](0, 0, 0), cfloat{});
}

TEST(Tv, NormAndAxpy) {
  VectorField a({2, 2, 2}), b({2, 2, 2});
  a.c[0](0, 0, 0) = cfloat(1.0f, 0.0f);
  b.c[0](0, 0, 0) = cfloat(2.0f, 0.0f);
  axpy(a, 0.5, b);
  EXPECT_NEAR(std::abs(a.c[0](0, 0, 0)), 2.0, 1e-6);
  EXPECT_NEAR(tv_norm(a), 2.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Solver fixtures.

struct SolverFixture {
  lamino::Geometry geom = lamino::Geometry::cube(12);
  lamino::Operators ops{geom};
  sim::Device dev{0};
  sim::Interconnect net;
  sim::MemoryNode node;
  memo::MemoDb db{{.key_dim = 16, .tau = 0.92,
                   .ivf = {.nlist = 4, .train_size = 16}},
                  &net, &node};
  Array3D<cfloat> u_true;
  Array3D<cfloat> d;

  SolverFixture() {
    u_true = lamino::to_complex(lamino::make_phantom(
        geom.object_shape(), lamino::PhantomKind::BrainTissue, 3));
    d = lamino::simulate_projections(ops, u_true, 0.0);
  }

  memo::MemoizedLamino plain() {
    return memo::MemoizedLamino(ops, {.enable = false}, &dev, nullptr);
  }
  memo::MemoizedLamino memoized(double tau = 0.92,
                                double work_scale = 1.0e5) {
    // Encoder left untrained: the Solver's warmup iteration collects real
    // stage chunks (all four operator kinds) and trains it.
    return memo::MemoizedLamino(
        ops,
        {.enable = true, .tau = tau, .key_dim = 16, .encoder_hw = 16,
         .work_scale = work_scale},
        &dev, &db);
  }
  /// Contrastive-train the key encoder on phantom slabs, as mLR does before
  /// reconstruction starts.
  void train(memo::MemoizedLamino& ml) {
    std::vector<std::vector<cfloat>> samples;
    for (i64 i1 = 0; i1 < geom.n1; ++i1) {
      auto s = u_true.slices(i1, 1);
      samples.emplace_back(s.begin(), s.end());
    }
    ml.train_encoder(samples, geom.n0, geom.n2, 80);
  }
};

TEST(Solver, LossDecreasesOnPhantom) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 8, .inner_iters = 4, .chunk_size = 4});
  auto res = solver.solve(f.d);
  ASSERT_EQ(res.iterations.size(), 8u);
  EXPECT_LT(res.iterations.back().loss, 0.5 * res.iterations.front().loss);
  EXPECT_GT(res.total_vtime, 0.0);
}

TEST(Solver, ReconstructionApproachesGroundTruth) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 12, .inner_iters = 4, .alpha = 1e-4,
                     .chunk_size = 4});
  auto res = solver.solve(f.d);
  // Zero-init error is 1.0 by definition; reconstruction must do far better.
  const double err = relative_error<cfloat>(f.u_true.span(), res.u.span());
  EXPECT_LT(err, 0.55);
}

TEST(Solver, Algorithm1AndAlgorithm2AgreeNumerically) {
  // Operation cancellation must not change results (only timing).
  SolverFixture f;
  auto ml1 = f.plain();
  Solver s1(ml1, {.outer_iters = 4, .inner_iters = 2, .chunk_size = 4,
                  .use_cancellation = false, .use_fusion = false});
  auto r1 = s1.solve(f.d);
  auto ml2 = f.plain();
  Solver s2(ml2, {.outer_iters = 4, .inner_iters = 2, .chunk_size = 4,
                  .use_cancellation = true, .use_fusion = true});
  auto r2 = s2.solve(f.d);
  EXPECT_LT(relative_error<cfloat>(r1.u.span(), r2.u.span()), 5e-3);
}

TEST(Solver, CancellationReducesTransferTime) {
  // The 1/3 CPU↔GPU transfer reduction of §4.2 (two F_2D stages per inner
  // iteration disappear).
  SolverFixture f;
  sim::Device dev1(1), dev2(2);
  memo::MemoizedLamino ml1(f.ops, {.enable = false}, &dev1, nullptr);
  Solver s1(ml1, {.outer_iters = 2, .inner_iters = 2, .chunk_size = 4,
                  .use_cancellation = false, .use_fusion = false});
  (void)s1.solve(f.d);
  memo::MemoizedLamino ml2(f.ops, {.enable = false}, &dev2, nullptr);
  Solver s2(ml2, {.outer_iters = 2, .inner_iters = 2, .chunk_size = 4,
                  .use_cancellation = true, .use_fusion = true});
  (void)s2.solve(f.d);
  EXPECT_LT(ml2.device_transfer_busy(), ml1.device_transfer_busy());
}

TEST(Solver, FusionRequiresCancellation) {
  SolverFixture f;
  auto ml = f.plain();
  EXPECT_THROW(Solver(ml, {.use_cancellation = false, .use_fusion = true}),
               mlr::Error);
}

TEST(Solver, MemoizedSolveStaysAccurate) {
  SolverFixture f;
  auto ml_ref = f.plain();
  Solver ref(ml_ref, {.outer_iters = 8, .inner_iters = 3, .chunk_size = 4});
  auto rref = ref.solve(f.d);
  auto ml_memo = f.memoized(0.97);
  Solver ms(ml_memo, {.outer_iters = 8, .inner_iters = 3, .chunk_size = 4});
  auto rmemo = ms.solve(f.d);
  // Memoization fired and accuracy stays in the high-τ regime of Table 1
  // (the absolute value depends on convergence depth; bench_table1_accuracy
  // sweeps the full τ range).
  EXPECT_GT(ml_memo.counters().cache_hit + ml_memo.counters().db_hit, 0u);
  EXPECT_GT(reconstruction_accuracy(rref.u, rmemo.u), 0.8);
}

TEST(Solver, MemoizationReducesVirtualTime) {
  SolverFixture f;
  sim::Device dev1(3), dev2(4);
  memo::MemoizedLamino ml1(f.ops, {.enable = false, .work_scale = 1.0e5},
                           &dev1, nullptr);
  Solver s1(ml1, {.outer_iters = 6, .inner_iters = 3, .chunk_size = 4,
                  .work_scale = 1.0e5});
  auto r1 = s1.solve(f.d);
  sim::Interconnect net2;
  sim::MemoryNode node2;
  memo::MemoDb db2({.key_dim = 16, .tau = 0.9, .value_scale = 1.0e5,
                    .ivf = {.nlist = 4, .train_size = 16}},
                   &net2, &node2);
  memo::MemoizedLamino ml2(
      f.ops, {.enable = true, .tau = 0.9, .key_dim = 16, .encoder_hw = 16,
              .work_scale = 1.0e5},
      &dev2, &db2);
  f.train(ml2);
  Solver s2(ml2, {.outer_iters = 6, .inner_iters = 3, .chunk_size = 4,
                  .work_scale = 1.0e5});
  auto r2 = s2.solve(f.d);
  EXPECT_GT(ml2.counters().cache_hit + ml2.counters().db_hit, 0u);
  EXPECT_LT(r2.total_vtime, r1.total_vtime);
}

TEST(Solver, IterationStatsPopulated) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 3, .inner_iters = 2, .chunk_size = 4});
  auto res = solver.solve(f.d);
  for (const auto& st : res.iterations) {
    EXPECT_GT(st.lsp_s, 0.0);
    EXPECT_GE(st.rsp_s, 0.0);
    EXPECT_GT(st.loss, 0.0);
    EXPECT_GT(st.memo_delta.computed, 0u);
  }
  // LSP dominates the iteration (paper: >67 %).
  const auto& st = res.iterations[1];
  const double total = st.lsp_s + st.rsp_s + st.lambda_s + st.penalty_s;
  EXPECT_GT(st.lsp_s / total, 0.6);
}

TEST(Solver, MemoryTrackerSeesAdmmVariables) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 2, .inner_iters = 2, .chunk_size = 4});
  (void)solver.solve(f.d);
  const auto& mem = solver.memory();
  EXPECT_GT(mem.peak(), 0.0);
  // ψ and λ are same-sized (the Fig 2 12 %-each pair).
  // After solve all released:
  EXPECT_DOUBLE_EQ(mem.current(), 0.0);
}

struct RecordingObserver : PhaseObserver {
  std::vector<Phase> begins;
  std::vector<std::string> accesses;
  void phase_begin(Phase p, sim::VTime) override { begins.push_back(p); }
  sim::VTime on_access(const std::string& var, sim::VTime t) override {
    accesses.push_back(var);
    return t;
  }
};

TEST(Solver, PhaseObserverSeesPhasesAndVariables) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 2, .inner_iters = 1, .chunk_size = 4});
  RecordingObserver obs;
  solver.set_observer(&obs);
  (void)solver.solve(f.d);
  // Init + 4 phases × 2 iterations.
  ASSERT_EQ(obs.begins.size(), 1u + 8u);
  EXPECT_EQ(obs.begins[0], Phase::Init);
  EXPECT_EQ(obs.begins[1], Phase::Lsp);
  EXPECT_EQ(obs.begins[2], Phase::Rsp);
  // psi, lambda, g and u all observed.
  auto has = [&](const char* v) {
    return std::find(obs.accesses.begin(), obs.accesses.end(), v) !=
           obs.accesses.end();
  };
  EXPECT_TRUE(has("psi"));
  EXPECT_TRUE(has("lambda"));
  EXPECT_TRUE(has("g"));
  EXPECT_TRUE(has("u"));
}

TEST(Solver, IterationHookFires) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 3, .inner_iters = 1, .chunk_size = 4});
  int calls = 0;
  solver.set_iteration_hook(
      [&](int iter, const Array3D<cfloat>& u) {
        EXPECT_EQ(iter, calls);
        EXPECT_EQ(u.shape(), f.geom.object_shape());
        ++calls;
      });
  (void)solver.solve(f.d);
  EXPECT_EQ(calls, 3);
}

TEST(Solver, AccuracyMetricMatchesDefinition) {
  auto a = random_volume({4, 4, 4}, 5);
  EXPECT_NEAR(reconstruction_accuracy(a, a), 1.0, 1e-7);
  Array3D<cfloat> zero(a.shape());
  EXPECT_NEAR(reconstruction_accuracy(a, zero), 0.0, 1e-7);
}

TEST(Solver, AdaptiveRhoStaysPositive) {
  SolverFixture f;
  auto ml = f.plain();
  Solver solver(ml, {.outer_iters = 6, .inner_iters = 2, .chunk_size = 4,
                     .adaptive_rho = true});
  auto res = solver.solve(f.d);
  for (const auto& st : res.iterations) EXPECT_GT(st.rho, 0.0);
}

}  // namespace
}  // namespace mlr::admm
