// Tests for ADMM-Offload: trace profiling, the four planning constraints,
// MT scoring, and the three runtime policies (planned / greedy / LRU),
// including end-to-end runs against the real solver.
#include <gtest/gtest.h>

#include "lamino/phantom.hpp"
#include "offload/offload.hpp"

namespace mlr::offload {
namespace {

// A hand-built trace: one iteration of 10 s; phases Lsp [0,6), Rsp [6,8),
// Lambda [8,9), Penalty [9,10).
Trace synthetic_trace() {
  Trace t;
  t.iteration_s = 10.0;
  auto set_phase = [&](Phase p, double b, double e) {
    t.phase_begin[size_t(int(p))] = b;
    t.phase_end[size_t(int(p))] = e;
  };
  set_phase(Phase::Lsp, 0, 6);
  set_phase(Phase::Rsp, 6, 8);
  set_phase(Phase::LambdaUpdate, 8, 9);
  set_phase(Phase::PenaltyUpdate, 9, 10);
  auto touch = [&](const char* var, Phase p, double first, double last) {
    auto& pa = t.access[var][size_t(int(p))];
    pa.accessed = true;
    pa.first = first;
    pa.last = last;
  };
  // psi: read at LSP start, written in RSP, read in lambda update.
  touch("psi", Phase::Lsp, 0.1, 0.2);
  touch("psi", Phase::Rsp, 7.5, 7.9);
  touch("psi", Phase::LambdaUpdate, 8.1, 8.3);
  // lambda: LSP start, RSP, lambda update.
  touch("lambda", Phase::Lsp, 0.1, 0.3);
  touch("lambda", Phase::Rsp, 7.0, 7.2);
  touch("lambda", Phase::LambdaUpdate, 8.2, 8.8);
  // g: only inside LSP.
  touch("g", Phase::Lsp, 0.4, 5.5);
  return t;
}

TEST(Trace, NextAccessorCyclic) {
  auto t = synthetic_trace();
  EXPECT_EQ(t.next_accessor("psi", Phase::Lsp), Phase::Rsp);
  EXPECT_EQ(t.next_accessor("psi", Phase::LambdaUpdate), Phase::Lsp);  // wraps
  EXPECT_EQ(t.next_accessor("g", Phase::Lsp), Phase::Lsp);  // sole accessor
  EXPECT_FALSE(t.next_accessor("unknown", Phase::Lsp).has_value());
}

TEST(Trace, MpdComputation) {
  auto t = synthetic_trace();
  // psi after LSP: last access 0.2, next first access 7.5 → 7.3 s window.
  EXPECT_NEAR(t.mpd("psi", Phase::Lsp), 7.3, 1e-9);
  // psi after lambda-update wraps to LSP next iteration:
  // gap = 0.1 − 8.3 + 10 = 1.8.
  EXPECT_NEAR(t.mpd("psi", Phase::LambdaUpdate), 1.8, 1e-9);
  // g sole accessor: window wraps from its last access (5.5) to its first
  // access next iteration (0.4 + 10).
  EXPECT_NEAR(t.mpd("g", Phase::Lsp), 4.9, 1e-9);
}

TEST(Planner, ConstraintsRejectTightWindows) {
  auto t = synthetic_trace();
  sim::SsdSpec slow;  // 2.2/3.2 GB/s defaults
  Planner planner(t, {{"psi", 8.0e9}, {"lambda", 8.0e9}}, slow);
  // 8 GB: write 3.6 s + read 2.5 s = 6.1 s. psi@Lsp window 7.3 s → feasible;
  // psi@LambdaUpdate window 1.8 s → infeasible.
  EXPECT_TRUE(planner.feasible({"psi", 8.0e9}, Phase::Lsp));
  EXPECT_FALSE(planner.feasible({"psi", 8.0e9}, Phase::LambdaUpdate));
  // Variable never accessed in the phase → infeasible.
  EXPECT_FALSE(planner.feasible({"g", 8.0e9}, Phase::Rsp));
}

TEST(Planner, EnumerationIncludesEmptyPlan) {
  auto t = synthetic_trace();
  Planner planner(t, {{"psi", 1.0e9}});
  auto plans = planner.enumerate();
  ASSERT_GE(plans.size(), 2u);
  bool has_empty = false;
  for (const auto& p : plans) has_empty |= p.entries.empty();
  EXPECT_TRUE(has_empty);
}

TEST(Planner, BestPlanHasPositiveMt) {
  auto t = synthetic_trace();
  Planner planner(t, {{"psi", 1.0e9}, {"lambda", 1.0e9}, {"g", 2.0e9}});
  auto plan = planner.best();
  EXPECT_FALSE(plan.entries.empty());
  EXPECT_GT(plan.memory_saving_frac, 0.0);
  EXPECT_GT(plan.mt(), 0.0);
}

TEST(Planner, LargerMemorySavingWinsWhenHidden) {
  // When prefetches are fully hidden, MT favours the plan that offloads more.
  auto t = synthetic_trace();
  Planner planner(t, {{"psi", 1.0e8}, {"lambda", 1.0e8}, {"g", 2.0e8}});
  auto plan = planner.best();
  double bytes = 0;
  for (const auto& e : plan.entries) bytes += e.bytes;
  EXPECT_GE(bytes, 2.0e8);  // at least g gets offloaded
}

TEST(Planner, MtMetricDefinition) {
  Plan p;
  p.memory_saving_frac = 0.42;
  p.perf_loss_frac = 0.815;
  EXPECT_NEAR(p.mt(), 0.515, 0.01);  // the paper's greedy example
  Plan q;
  q.memory_saving_frac = 0.29;
  q.perf_loss_frac = 0.21;
  EXPECT_NEAR(q.mt(), 1.38, 0.01);  // the paper's ADMM-Offload example
  EXPECT_GT(q.mt(), p.mt());
}

TEST(TraceProfiler, CapturesPhasesAndAccesses) {
  TraceProfiler prof;
  prof.phase_begin(Phase::Lsp, 0.0);
  (void)prof.on_access("psi", 0.5);
  (void)prof.on_access("psi", 1.5);
  prof.phase_end(Phase::Lsp, 2.0);
  prof.phase_begin(Phase::Rsp, 2.0);
  (void)prof.on_access("psi", 2.5);
  prof.phase_end(Phase::Rsp, 3.0);
  prof.phase_begin(Phase::LambdaUpdate, 3.0);
  prof.phase_end(Phase::LambdaUpdate, 3.5);
  prof.phase_begin(Phase::PenaltyUpdate, 3.5);
  prof.phase_end(Phase::PenaltyUpdate, 4.0);
  auto t = prof.trace();
  EXPECT_NEAR(t.iteration_s, 4.0, 1e-9);
  const auto& pa = t.access.at("psi")[size_t(int(Phase::Lsp))];
  EXPECT_TRUE(pa.accessed);
  EXPECT_NEAR(pa.first, 0.5, 1e-9);
  EXPECT_NEAR(pa.last, 1.5, 1e-9);
}

TEST(AdmmOffloadPolicy, HiddenPrefetchCausesNoStall) {
  // Plenty of slack: offload after Lsp, prefetch for Rsp, tiny variable.
  Plan plan;
  plan.entries.push_back({"psi", 1.0e6, Phase::Lsp, Phase::Rsp, true});
  AdmmOffloadPolicy pol(plan);
  pol.phase_begin(Phase::Lsp, 0.0);
  EXPECT_DOUBLE_EQ(pol.on_access("psi", 0.1), 0.1);
  pol.phase_end(Phase::Lsp, 5.0);  // offload + eager prefetch issued here
  pol.phase_begin(Phase::Rsp, 6.0);
  const double t = pol.on_access("psi", 6.1);
  EXPECT_NEAR(t, 6.1, 1e-6);  // prefetch landed long before
  EXPECT_DOUBLE_EQ(pol.stats().exposed_stall_s, 0.0);
  EXPECT_EQ(pol.stats().offloads, 1u);
  EXPECT_EQ(pol.stats().prefetches, 1u);
}

TEST(AdmmOffloadPolicy, LatePrefetchExposesStall) {
  // Big variable, prefetch issued only at the consuming phase boundary.
  Plan plan;
  plan.entries.push_back({"psi", 3.2e9, Phase::Lsp, Phase::Rsp, false});
  AdmmOffloadPolicy pol(plan);
  pol.phase_begin(Phase::Lsp, 0.0);
  pol.phase_end(Phase::Lsp, 1.0);
  pol.phase_begin(Phase::Rsp, 1.0);      // JIT prefetch issued now (1 s read)
  const double t = pol.on_access("psi", 1.05);
  EXPECT_GT(t, 1.5);                     // stalled waiting for the read
  EXPECT_GT(pol.stats().exposed_stall_s, 0.4);
}

TEST(AdmmOffloadPolicy, OffloadedTimelineTracksResidency) {
  Plan plan;
  plan.entries.push_back({"psi", 100.0, Phase::Lsp, Phase::Rsp, false});
  AdmmOffloadPolicy pol(plan);
  pol.phase_begin(Phase::Lsp, 0.0);
  pol.phase_end(Phase::Lsp, 1.0);
  EXPECT_DOUBLE_EQ(pol.stats().current_offloaded(), 100.0);
  pol.phase_begin(Phase::Rsp, 1.0);
  (void)pol.on_access("psi", 1.1);
  EXPECT_DOUBLE_EQ(pol.stats().current_offloaded(), 0.0);
}

TEST(GreedyOffloadPolicy, OffloadsEverythingAndFetchesOnDemand) {
  GreedyOffloadPolicy pol({{"psi", 3.2e9}, {"lambda", 3.2e9}});
  // First use writes the variable straight back out ("offload upon
  // generation") — ~1.45 s write exposed.
  const double t0 = pol.on_access("psi", 0.1);
  EXPECT_GT(t0, 1.0);
  EXPECT_EQ(pol.stats().offloads, 1u);
  pol.phase_end(Phase::Lsp, 2.0);  // flushes the untouched lambda too
  EXPECT_EQ(pol.stats().offloads, 2u);
  // Next use pays a fully exposed demand read (1 s) plus the writeback.
  const double t = pol.on_access("psi", 4.0);
  EXPECT_GT(t, 5.0);
  EXPECT_EQ(pol.stats().demand_fetches, 1u);
}

TEST(LruOffloadPolicy, EvictsLeastRecentlyUsed) {
  // Budget fits two of three equally-sized variables.
  LruOffloadPolicy pol({{"a", 100}, {"b", 100}, {"c", 100}}, 200.0);
  (void)pol.on_access("a", 1.0);
  (void)pol.on_access("b", 2.0);
  (void)pol.on_access("c", 3.0);  // evicts a
  EXPECT_EQ(pol.stats().offloads, 1u);
  (void)pol.on_access("a", 4.0);  // evicts b, fetches a
  EXPECT_EQ(pol.stats().offloads, 2u);
  EXPECT_GE(pol.stats().demand_fetches, 4u);  // every first access fetches
}

TEST(ApplyOffload, CombinesCurves) {
  std::vector<sim::MemoryTracker::Sample> base{{0, 100}, {2, 200}, {4, 150}};
  std::vector<sim::MemoryTracker::Sample> off{{1, 50}, {3, 0}};
  auto rss = apply_offload_to_rss(base, off);
  ASSERT_EQ(rss.size(), 5u);
  EXPECT_DOUBLE_EQ(rss[0].bytes, 100);  // t=0
  EXPECT_DOUBLE_EQ(rss[1].bytes, 50);   // t=1, offload kicks in
  EXPECT_DOUBLE_EQ(rss[2].bytes, 150);  // t=2, base grows
  EXPECT_DOUBLE_EQ(rss[3].bytes, 200);  // t=3, prefetched back
  EXPECT_DOUBLE_EQ(rss[4].bytes, 150);  // t=4
}

// ---------------------------------------------------------------------------
// End-to-end with the real solver.

struct E2E {
  lamino::Geometry geom = lamino::Geometry::cube(10);
  lamino::Operators ops{geom};
  sim::Device dev{0};
  Array3D<cfloat> d;
  E2E() {
    auto u = lamino::to_complex(lamino::make_phantom(
        geom.object_shape(), lamino::PhantomKind::BrainTissue, 5));
    d = lamino::simulate_projections(ops, u, 0.0);
  }
  admm::AdmmConfig cfg() {
    return {.outer_iters = 3, .inner_iters = 2, .chunk_size = 4,
            .work_scale = 1.0e6};
  }
};

TEST(OffloadE2E, ProfiledTraceMatchesSolverPhases) {
  E2E f;
  memo::MemoizedLamino ml(f.ops, {.enable = false, .work_scale = 1.0e6},
                          &f.dev, nullptr);
  admm::Solver solver(ml, f.cfg());
  TraceProfiler prof;
  solver.set_observer(&prof);
  (void)solver.solve(f.d);
  auto tr = prof.trace();
  EXPECT_GT(tr.iteration_s, 0.0);
  // The solver touches psi/lambda/g in LSP and psi/lambda in the updates.
  EXPECT_TRUE(tr.access.at("psi")[size_t(int(Phase::Lsp))].accessed);
  EXPECT_TRUE(tr.access.at("lambda")[size_t(int(Phase::LambdaUpdate))].accessed);
  EXPECT_TRUE(tr.access.at("g")[size_t(int(Phase::Lsp))].accessed);
}

TEST(OffloadE2E, PlannedPolicyBeatsGreedyOnMt) {
  E2E f;
  const double var_bytes = double(f.geom.object_shape().volume()) * 3 * 8 *
                           1.0e6;  // scaled ψ/λ/g size
  std::vector<VariableInfo> vars{
      {"psi", var_bytes}, {"lambda", var_bytes}, {"g", var_bytes}};

  // Profile.
  memo::MemoizedLamino ml0(f.ops, {.enable = false, .work_scale = 1.0e6},
                           &f.dev, nullptr);
  admm::Solver s0(ml0, f.cfg());
  TraceProfiler prof;
  s0.set_observer(&prof);
  auto base = s0.solve(f.d);
  auto tr = prof.trace();

  // Planned policy.
  Planner planner(tr, vars);
  auto plan = planner.best();
  sim::Device dev1(1);
  memo::MemoizedLamino ml1(f.ops, {.enable = false, .work_scale = 1.0e6},
                           &dev1, nullptr);
  admm::Solver s1(ml1, f.cfg());
  AdmmOffloadPolicy planned(plan);
  s1.set_observer(&planned);
  auto r1 = s1.solve(f.d);

  // Greedy policy.
  sim::Device dev2(2);
  memo::MemoizedLamino ml2(f.ops, {.enable = false, .work_scale = 1.0e6},
                           &dev2, nullptr);
  admm::Solver s2(ml2, f.cfg());
  GreedyOffloadPolicy greedy(vars);
  s2.set_observer(&greedy);
  auto r2 = s2.solve(f.d);

  // Greedy stalls far more than the planned policy.
  EXPECT_GT(greedy.stats().exposed_stall_s,
            planned.stats().exposed_stall_s);
  // Both slow the solve down relative to baseline; planned much less.
  EXPECT_GE(r1.total_vtime, base.total_vtime * 0.99);
  EXPECT_GT(r2.total_vtime, r1.total_vtime);
  // MT comparison using measured losses.
  const double t_planned =
      (r1.total_vtime - base.total_vtime) / base.total_vtime;
  const double t_greedy =
      (r2.total_vtime - base.total_vtime) / base.total_vtime;
  const double total = 3 * var_bytes;
  double saved_planned = plan.memory_saving_bytes;
  const double mt_planned = (saved_planned / total) / std::max(t_planned, 1e-6);
  const double mt_greedy = 1.0 / std::max(t_greedy, 1e-6);  // saves all 3 vars
  EXPECT_GT(mt_planned, 0.0);
  (void)mt_greedy;
}

TEST(OffloadE2E, SolverResultUnchangedByOffload) {
  // Offloading moves bytes, never values: reconstruction must be identical.
  E2E f;
  memo::MemoizedLamino ml0(f.ops, {.enable = false}, &f.dev, nullptr);
  admm::Solver s0(ml0, f.cfg());
  auto base = s0.solve(f.d);
  sim::Device dev1(1);
  memo::MemoizedLamino ml1(f.ops, {.enable = false}, &dev1, nullptr);
  admm::Solver s1(ml1, f.cfg());
  GreedyOffloadPolicy greedy(
      {{"psi", 1e9}, {"lambda", 1e9}, {"g", 1e9}});
  s1.set_observer(&greedy);
  auto r1 = s1.solve(f.d);
  EXPECT_LT(relative_error<cfloat>(base.u.span(), r1.u.span()), 1e-12);
}

}  // namespace
}  // namespace mlr::offload
