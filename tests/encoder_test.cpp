// Tests for the CNN key encoder: numerical gradient checks of every layer,
// contrastive training convergence, INT8 quantization fidelity, and the
// metric property the memoization system needs (similar chunks → nearby keys).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "encoder/encoder.hpp"
#include "encoder/layers.hpp"

namespace mlr::encoder {
namespace {

FeatureMap random_fm(i64 c, i64 h, i64 w, Rng& rng) {
  FeatureMap fm(c, h, w);
  for (auto& x : fm.v) x = float(rng.normal());
  return fm;
}

// Scalar loss = sum of elements; checks dL/dw by finite differences.
TEST(Conv2D, WeightGradientMatchesFiniteDifference) {
  Rng rng(1);
  Conv2D conv(2, 3, 3, 1, rng);
  auto in = random_fm(2, 6, 6, rng);
  auto out = conv.forward(in);
  FeatureMap dout(out.c, out.h, out.w);
  for (auto& x : dout.v) x = 1.0f;  // L = sum(out)
  (void)conv.backward(in, dout);
  const double eps = 1e-3;
  for (std::size_t wi : {0ul, 7ul, 25ul, conv.w.size() - 1}) {
    const float orig = conv.w[wi];
    conv.w[wi] = orig + float(eps);
    auto op = conv.forward(in);
    conv.w[wi] = orig - float(eps);
    auto om = conv.forward(in);
    conv.w[wi] = orig;
    double lp = 0, lm = 0;
    for (auto v : op.v) lp += v;
    for (auto v : om.v) lm += v;
    const double want = (lp - lm) / (2 * eps);
    EXPECT_NEAR(conv.gw[wi], want, 1e-2 * std::max(1.0, std::abs(want)))
        << "w index " << wi;
  }
}

TEST(Conv2D, InputGradientMatchesFiniteDifference) {
  Rng rng(2);
  Conv2D conv(1, 2, 3, 1, rng);
  auto in = random_fm(1, 5, 5, rng);
  auto out = conv.forward(in);
  FeatureMap dout(out.c, out.h, out.w);
  for (auto& x : dout.v) x = 1.0f;
  auto din = conv.backward(in, dout);
  const double eps = 1e-3;
  for (std::size_t ii : {0ul, 12ul, 24ul}) {
    const float orig = in.v[ii];
    in.v[ii] = orig + float(eps);
    auto op = conv.forward(in);
    in.v[ii] = orig - float(eps);
    auto om = conv.forward(in);
    in.v[ii] = orig;
    double lp = 0, lm = 0;
    for (auto v : op.v) lp += v;
    for (auto v : om.v) lm += v;
    EXPECT_NEAR(din.v[ii], (lp - lm) / (2 * eps), 1e-2);
  }
}

TEST(Conv2D, StrideReducesOutput) {
  Rng rng(3);
  Conv2D conv(1, 1, 3, 2, rng);
  auto in = random_fm(1, 8, 8, rng);
  auto out = conv.forward(in);
  EXPECT_EQ(out.h, 4);
  EXPECT_EQ(out.w, 4);
}

TEST(Dense, GradientsMatchFiniteDifference) {
  Rng rng(4);
  Dense fc(6, 4, rng);
  std::vector<float> in(6);
  for (auto& x : in) x = float(rng.normal());
  std::vector<float> dout(4, 1.0f);
  (void)fc.backward(in, dout);
  const double eps = 1e-3;
  for (std::size_t wi : {0ul, 11ul, 23ul}) {
    const float orig = fc.w[wi];
    fc.w[wi] = orig + float(eps);
    auto op = fc.forward(in);
    fc.w[wi] = orig - float(eps);
    auto om = fc.forward(in);
    fc.w[wi] = orig;
    double lp = 0, lm = 0;
    for (auto v : op) lp += v;
    for (auto v : om) lm += v;
    EXPECT_NEAR(fc.gw[wi], (lp - lm) / (2 * eps), 1e-2);
  }
}

TEST(Relu, ForwardBackwardMask) {
  std::vector<float> v{-1.0f, 2.0f, -0.5f, 3.0f};
  relu_forward(v);
  EXPECT_EQ(v, (std::vector<float>{0, 2, 0, 3}));
  std::vector<float> g{1, 1, 1, 1};
  relu_backward(v, g);
  EXPECT_EQ(g, (std::vector<float>{0, 1, 0, 1}));
}

TEST(AvgPool, ForwardAndBackwardConserveMass) {
  Rng rng(5);
  auto in = random_fm(2, 4, 4, rng);
  auto out = avgpool2(in);
  EXPECT_EQ(out.h, 2);
  double sin = 0, sout = 0;
  for (auto v : in.v) sin += v;
  for (auto v : out.v) sout += v;
  EXPECT_NEAR(sout * 4.0, sin, 1e-4);
  FeatureMap dout(out.c, out.h, out.w);
  for (auto& x : dout.v) x = 1.0f;
  auto din = avgpool2_backward(in, dout);
  double sdin = 0;
  for (auto v : din.v) sdin += v;
  EXPECT_NEAR(sdin, double(out.size()), 1e-4);  // each out grad spreads to 4×0.25
}

TEST(Adam, DecreasesQuadratic) {
  // Minimize f(x) = x² from x=5.
  std::vector<float> x{5.0f};
  std::vector<float> g(1);
  Adam opt(1, 0.1);
  for (int i = 0; i < 200; ++i) {
    g[0] = 2.0f * x[0];
    opt.step(x, g);
    EXPECT_EQ(g[0], 0.0f);  // gradient accumulator consumed
  }
  EXPECT_LT(std::abs(x[0]), 0.3f);
}

// ---------------------------------------------------------------------------
// Encoder end-to-end.

std::vector<cfloat> random_chunk(i64 n, Rng& rng) {
  std::vector<cfloat> v(static_cast<size_t>(n));
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

TEST(CnnEncoder, OutputDimensionAndDeterminism) {
  CnnEncoder enc;
  Rng rng(6);
  auto chunk = random_chunk(16 * 16, rng);
  auto z1 = enc.encode({16, 16, chunk});
  auto z2 = enc.encode({16, 16, chunk});
  ASSERT_EQ(z1.size(), 60u);
  EXPECT_EQ(z1, z2);
}

TEST(CnnEncoder, HandlesArbitraryChunkShapes) {
  CnnEncoder enc;
  Rng rng(7);
  for (auto [r, c] : {std::pair<i64, i64>{8, 8}, {12, 40}, {64, 64}, {5, 7}}) {
    auto chunk = random_chunk(r * c, rng);
    auto z = enc.encode({r, c, chunk});
    EXPECT_EQ(z.size(), 60u);
  }
}

TEST(CnnEncoder, IdenticalChunksEncodeIdentically) {
  CnnEncoder enc;
  Rng rng(8);
  auto chunk = random_chunk(32 * 32, rng);
  auto za = enc.encode({32, 32, chunk});
  auto zb = enc.encode({32, 32, chunk});
  double d = 0;
  for (std::size_t i = 0; i < za.size(); ++i)
    d += double(za[i] - zb[i]) * (za[i] - zb[i]);
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(CnnEncoder, ContrastiveTrainingReducesLoss) {
  CnnEncoder enc({.input_hw = 16, .embed_dim = 16, .lr = 3e-4});
  Rng rng(9);
  std::vector<std::vector<cfloat>> samples;
  for (int i = 0; i < 12; ++i) samples.push_back(random_chunk(16 * 16, rng));
  // Loss of first steps vs trained tail.
  double first = 0;
  Rng prng(10);
  for (int s = 0; s < 8; ++s) {
    const auto i = size_t(prng.uniform_int(0, 10));
    first += enc.train_pair({16, 16, samples[i]}, {16, 16, samples[i + 1]});
  }
  first /= 8;
  const double tail = enc.train(samples, 16, 16, 150, 11);
  EXPECT_LT(tail, first);
}

TEST(CnnEncoder, TrainedEncoderPreservesSimilarityOrdering) {
  // After training, a near-duplicate chunk must embed closer than an
  // unrelated chunk — the property the τ threshold relies on.
  CnnEncoder enc({.input_hw = 16, .embed_dim = 16, .lr = 3e-4});
  Rng rng(12);
  std::vector<std::vector<cfloat>> samples;
  for (int i = 0; i < 10; ++i) samples.push_back(random_chunk(16 * 16, rng));
  enc.train(samples, 16, 16, 200, 13);
  auto base = samples[0];
  auto near = base;
  for (auto& x : near) x += cfloat(float(rng.normal(0, 0.01)), 0);
  const auto& far = samples[5];
  auto zb = enc.encode({16, 16, base});
  auto zn = enc.encode({16, 16, near});
  auto zf = enc.encode({16, 16, far});
  auto dist = [](const std::vector<float>& a, const std::vector<float>& b) {
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
      s += double(a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(s);
  };
  EXPECT_LT(dist(zb, zn), dist(zb, zf));
}

TEST(CnnEncoder, QuantizationPreservesEmbeddingsApproximately) {
  CnnEncoder enc({.input_hw = 16, .embed_dim = 16});
  Rng rng(14);
  auto chunk = random_chunk(16 * 16, rng);
  auto zf = enc.encode({16, 16, chunk});
  enc.quantize();
  ASSERT_TRUE(enc.quantized());
  auto zq = enc.encode_quantized({16, 16, chunk});
  double num = 0, den = 0;
  for (std::size_t i = 0; i < zf.size(); ++i) {
    num += double(zf[i] - zq[i]) * (zf[i] - zq[i]);
    den += double(zf[i]) * zf[i];
  }
  EXPECT_LT(std::sqrt(num / std::max(den, 1e-12)), 0.05);  // <5 % relative
}

TEST(CnnEncoder, TrainAfterQuantizeRejected) {
  CnnEncoder enc({.input_hw = 16, .embed_dim = 8});
  enc.quantize();
  Rng rng(15);
  auto a = random_chunk(16 * 16, rng), b = random_chunk(16 * 16, rng);
  EXPECT_THROW(enc.train_pair({16, 16, a}, {16, 16, b}), mlr::Error);
}

TEST(CnnEncoder, EncodeFlopsTinyVsFft) {
  CnnEncoder enc;
  // Paper: CNN inference <1 % of total time. Sanity: a few MFLOPs.
  EXPECT_LT(enc.encode_flops(), 2.0e7);
  EXPECT_GT(enc.encode_flops(), 1.0e5);
}

TEST(AverageSlab, ReducesAlongFirstAxis) {
  Rng rng(16);
  auto slab = random_chunk(3 * 4 * 5, rng);
  auto avg = average_slab(slab, 3, 4, 5);
  ASSERT_EQ(avg.size(), 20u);
  for (i64 i = 0; i < 20; ++i) {
    cfloat want{};
    for (i64 s = 0; s < 3; ++s) want += slab[size_t(s * 20 + i)];
    want /= 3.0f;
    EXPECT_NEAR(std::abs(avg[size_t(i)] - want), 0.0, 1e-5);
  }
}

TEST(ChunkL2, MatchesDefinition) {
  std::vector<cfloat> a{{1, 0}, {0, 0}}, b{{0, 0}, {0, 1}};
  EXPECT_NEAR(chunk_l2(a, b), std::sqrt(2.0), 1e-9);
}

}  // namespace
}  // namespace mlr::encoder
