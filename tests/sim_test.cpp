// Tests for the virtual-time hardware models: timeline serialization,
// pipeline overlap (the Fig 1/3 property), HBM capacity enforcement,
// interconnect contention and payload efficiency, SSD and memory node.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/device.hpp"
#include "sim/fabric.hpp"

namespace mlr::sim {
namespace {

TEST(Timeline, SerializesOperations) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.schedule(0.0, 1.0), 1.0);
  // Second op ready at 0 but resource busy until 1.
  EXPECT_DOUBLE_EQ(t.schedule(0.0, 0.5), 1.5);
  // Op ready later than busy_until starts at its ready time.
  EXPECT_DOUBLE_EQ(t.schedule(10.0, 0.25), 10.25);
  EXPECT_DOUBLE_EQ(t.busy_time(), 1.75);
}

TEST(Timeline, UtilizationFraction) {
  Timeline t;
  t.schedule(0.0, 2.0);
  EXPECT_DOUBLE_EQ(t.utilization(4.0), 0.5);
  EXPECT_DOUBLE_EQ(t.utilization(0.0), 0.0);
}

TEST(Timeline, ResetClearsState) {
  Timeline t;
  t.schedule(0.0, 5.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.busy_until(), 0.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 0.0);
}

TEST(Timeline, RejectsNegativeDuration) {
  Timeline t;
  EXPECT_THROW(t.schedule(0.0, -1.0), Error);
}

TEST(MemoryTracker, AllocFreePeak) {
  MemoryTracker m;
  m.alloc("psi", 100, 0.0);
  m.alloc("lambda", 50, 1.0);
  EXPECT_DOUBLE_EQ(m.current(), 150);
  m.release("psi", 2.0);
  EXPECT_DOUBLE_EQ(m.current(), 50);
  EXPECT_DOUBLE_EQ(m.peak(), 150);
  EXPECT_EQ(m.timeline().size(), 3u);
}

TEST(MemoryTracker, ReallocUpdatesInPlace) {
  MemoryTracker m;
  m.alloc("g", 10, 0.0);
  m.alloc("g", 30, 1.0);  // resize
  EXPECT_DOUBLE_EQ(m.current(), 30);
  EXPECT_DOUBLE_EQ(m.bytes_of("g"), 30);
  EXPECT_EQ(m.breakdown().size(), 1u);
}

TEST(MemoryTracker, ReleaseUnknownThrows) {
  MemoryTracker m;
  EXPECT_THROW(m.release("nope", 0.0), Error);
}

TEST(Device, KernelCostScalesWithFlops) {
  Device d(0);
  const VTime t1 = d.run_kernel(0.0, 6.0e12);  // 1 second of FLOPs
  EXPECT_NEAR(t1, 1.0, 1e-3);
  const VTime t2 = d.run_kernel(0.0, 6.0e12);
  EXPECT_NEAR(t2, 2.0, 2e-3);  // serialized on the compute stream
}

TEST(Device, CopyComputeOverlap) {
  // The Fig 1 pipeline: while chunk i computes, chunk i+1 transfers. With
  // separate engines the total time is max(compute, transfer) + one stage,
  // not the sum of all stages.
  Device d(0);
  const double chunk_bytes = 22.0e9 * 0.1;  // 0.1 s per H2D transfer
  const double kernel_flops = 6.0e12 * 0.2; // 0.2 s per kernel
  VTime in_ready = 0.0;
  VTime done = 0.0;
  for (int c = 0; c < 4; ++c) {
    in_ready = d.h2d(0.0, chunk_bytes);       // next transfer queues freely
    done = d.run_kernel(in_ready, kernel_flops);
  }
  // Perfect overlap: 0.1 (first transfer) + 4·0.2 = 0.9; serial would be 1.2.
  EXPECT_LT(done, 1.0);
  EXPECT_GT(done, 0.85);
}

TEST(Device, HbmCapacityEnforced) {
  DeviceSpec spec;
  spec.hbm_bytes = 100.0;
  Device d(1, spec);
  d.hbm_alloc("a", 60, 0.0);
  EXPECT_THROW(d.hbm_alloc("b", 50, 1.0), Error);
  d.hbm_free("a", 2.0);
  d.hbm_alloc("b", 90, 3.0);  // fits now
  EXPECT_DOUBLE_EQ(d.hbm().current(), 90.0);
}

TEST(Interconnect, BandwidthAndLatency) {
  LinkSpec spec;
  spec.bandwidth = 1.0e9;
  spec.latency = 1.0e-3;
  Interconnect net(spec);
  const VTime t = net.transfer(0.0, 1.0e9);
  EXPECT_NEAR(t, 1.001, 1e-9);
}

TEST(Interconnect, ContentionSerializes) {
  Interconnect net;
  // Two clients both ready at t=0 share the link.
  const VTime a = net.transfer(0.0, 25.0e9);  // 1 s wire time
  const VTime b = net.transfer(0.0, 25.0e9);
  EXPECT_GT(b, a);
  EXPECT_NEAR(b, 2.0, 0.01);
}

TEST(Interconnect, PayloadEfficiencyGrowsWithSize) {
  Interconnect net;
  const double small = net.payload_efficiency(512);     // sub-KB keys
  const double big = net.payload_efficiency(4 * 1024);  // coalesced 4 KB
  EXPECT_LT(small, big);
  EXPECT_GT(big, 0.0);
  EXPECT_LE(big, 1.0);
}

TEST(Interconnect, CoalescedPayloadReaches95PercentAt4KB) {
  // The paper picks 4 KB because it achieves ~95 % utilization on Slingshot.
  LinkSpec spec;
  spec.bandwidth = 25.0e9;
  spec.latency = 8.0e-9;  // per-message overhead on the NIC fast path
  Interconnect net(spec);
  EXPECT_GT(net.payload_efficiency(4 * 1024), 0.95);
  EXPECT_LT(net.payload_efficiency(256), 0.60);
}

TEST(Interconnect, JitterInjection) {
  LinkSpec spec;
  spec.jitter_mean = 0.01;
  Interconnect a(spec, 1), b(spec, 1);
  // Deterministic across same-seed instances.
  EXPECT_DOUBLE_EQ(a.transfer(0.0, 1000), b.transfer(0.0, 1000));
  // And strictly larger than the no-jitter duration.
  Interconnect c(LinkSpec{}, 1);
  EXPECT_GT(a.link().busy_time(), c.link().busy_time());
  (void)c.transfer(0.0, 1000);
}

TEST(Ssd, ReadWriteAsymmetry) {
  Ssd ssd;
  EXPECT_LT(ssd.read_duration(1.0e9), ssd.write_duration(1.0e9));
  const VTime r = ssd.read(0.0, 3.2e9);
  EXPECT_NEAR(r, 1.0, 0.01);
}

TEST(Ssd, ChannelSerializes) {
  Ssd ssd;
  (void)ssd.write(0.0, 2.2e9);             // 1 s
  const VTime t = ssd.read(0.0, 3.2e9);    // queued behind the write
  EXPECT_GT(t, 1.9);
}

TEST(MemoryNode, BatchedQueryAmortizes) {
  MemoryNode node;
  const VTime one = node.serve_index_query(0.0, 1);
  node.reset();
  const VTime batch8 = node.serve_index_query(0.0, 8);
  // 8 keys in one batch is far cheaper than 8 separate base costs.
  EXPECT_LT(batch8, 8.0 * one);
  EXPECT_GT(batch8, one);
}

TEST(MemoryNode, ValueServeBelowP99Target) {
  MemoryNode node;
  // A key-sized payload stays below the paper's 0.5 ms Redis P99; large
  // values add single-stream serialization time on top.
  const VTime t = node.serve_value(0.0, 64.0 * 1024);
  EXPECT_LT(t, 0.5e-3);
  node.reset();
  EXPECT_GT(node.serve_value(0.0, 1.0 * kGiB), 0.4);
}

TEST(Ssd, SlowerThanInterconnect) {
  // The premise of distributed memoization (§4.3.2): remote memory over the
  // fabric beats local SSD.
  Ssd ssd;
  Interconnect net;
  const double bytes = 1.0e9;
  EXPECT_GT(ssd.read_duration(bytes),
            bytes / net.spec().bandwidth + net.spec().latency);
}

// --- Fabric: shard links + contended shared uplink ---------------------------

TEST(Fabric, DisabledOrEmptyTransfersAreFree) {
  FabricSpec spec;
  spec.enabled = false;
  Fabric off(spec, 2);
  const double some[] = {100.0, 200.0};
  EXPECT_DOUBLE_EQ(off.transfer(3.0, some), 3.0);
  Fabric on(FabricSpec{}, 2);
  const double none[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(on.transfer(3.0, none), 3.0);
  EXPECT_EQ(on.transfers(), 0u);
}

TEST(Fabric, UncontendedTransferIsShardSplitInvariant) {
  // With link bandwidth >= uplink bandwidth, the uplink pass (latency +
  // total/uplink_bw) dominates any shard's link pass, so an uncontended
  // transfer completes at the same instant no matter how the bytes split —
  // the property that makes single-session clocks shard-count invariant.
  const FabricSpec spec;  // defaults: equal link/uplink bandwidth
  const double total = 4.0e9;
  Fabric one(spec, 1), four(spec, 4);
  const double whole[] = {total};
  const double split[] = {total / 2, total / 4, total / 8, total / 8};
  const VTime t1 = one.transfer(1.0, whole);
  const VTime t4 = four.transfer(1.0, split);
  EXPECT_DOUBLE_EQ(t1, t4);
  EXPECT_DOUBLE_EQ(t1, 1.0 + spec.latency + total / spec.uplink_bandwidth);
}

TEST(Fabric, ConcurrentTransfersQueueOnTheUplink) {
  Fabric fab(FabricSpec{}, 2);
  const double a[] = {1.0e9, 1.0e9};  // ~0.08 s on the uplink
  const double b[] = {0.0, 1.0e9};
  const VTime ta = fab.transfer(0.0, a);
  const VTime tb = fab.transfer(0.0, b);  // same ready: queues behind a
  EXPECT_GT(tb, ta);
  EXPECT_NEAR(fab.contention_wait_s(), ta, 1e-12);
  EXPECT_DOUBLE_EQ(fab.bytes_moved(), 3.0e9);
  EXPECT_EQ(fab.transfers(), 2u);
  fab.reset();
  EXPECT_DOUBLE_EQ(fab.contention_wait_s(), 0.0);
  EXPECT_DOUBLE_EQ(fab.uplink().busy_until(), 0.0);
}

TEST(Fabric, NarrowerUplinkNeverCompletesEarlier) {
  // Fabric-charge monotonicity: more contention per byte (a slower shared
  // uplink) can only push completions later.
  FabricSpec wide, narrow;
  narrow.uplink_bandwidth = wide.uplink_bandwidth / 8;
  Fabric fw(wide, 2), fn(narrow, 2);
  const double bytes[] = {2.0e9, 1.0e9};
  VTime done_w = 0, done_n = 0;
  for (int i = 0; i < 3; ++i) {
    done_w = fw.transfer(0.1 * double(i), bytes);
    done_n = fn.transfer(0.1 * double(i), bytes);
    EXPECT_GE(done_n, done_w);
  }
  EXPECT_GT(fn.contention_wait_s(), fw.contention_wait_s());
}

}  // namespace
}  // namespace mlr::sim
