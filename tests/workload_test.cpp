// Workload-generator contracts (serve/workload): seeded streams reproduce
// bit-for-bit, heavy-tailed scenario mixes hit their configured proportions
// within tolerance, SLO-class assignment is a deterministic function of the
// tenant, diurnal modulation shapes arrivals without breaking monotonicity,
// and the canonical scaled_workload() config scales to hundreds of jobs.
#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "serve/workload.hpp"

namespace mlr::serve {
namespace {

TEST(Workload, SeededStreamsReproduceBitForBit) {
  for (const u64 seed : {u64(1), u64(7), u64(12345)}) {
    auto wc = scaled_workload(/*jobs=*/200, seed);
    WorkloadGenerator g1(wc), g2(wc);
    const auto a = g1.generate(), b = g2.generate();
    ASSERT_EQ(a.size(), 200u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival, b[i].arrival);  // exact, not approximate
      EXPECT_EQ(a[i].deadline, b[i].deadline);
      EXPECT_EQ(a[i].tenant, b[i].tenant);
      EXPECT_EQ(a[i].seed, b[i].seed);
      EXPECT_EQ(int(a[i].scenario), int(b[i].scenario));
      EXPECT_EQ(int(a[i].slo), int(b[i].slo));
      EXPECT_EQ(a[i].priority, b[i].priority);
    }
    // A different seed must actually change the stream.
    auto wc2 = wc;
    wc2.seed = seed + 1;
    const auto c = WorkloadGenerator(wc2).generate();
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
      differs = a[i].arrival != c[i].arrival || a[i].seed != c[i].seed;
    EXPECT_TRUE(differs);
  }
}

TEST(Workload, HeavyTailMixHitsConfiguredProportions) {
  // 8:4:2:1 across pcb/ic/brain/memcon. With 3000 draws the observed share
  // of each scenario should sit within a few points of its target (binomial
  // σ ≈ 0.9 points at the largest share).
  auto wc = scaled_workload(/*jobs=*/3000, /*seed=*/11);
  const auto jobs = WorkloadGenerator(wc).generate();
  std::map<int, double> count;
  for (const auto& j : jobs) count[int(j.scenario)] += 1.0;
  const auto mix = heavy_tail_mix();
  double total_share = 0;
  for (const auto& [sc, w] : mix) total_share += w;
  for (const auto& [sc, w] : mix) {
    const double want = w / total_share;
    const double got = count[int(sc)] / double(jobs.size());
    EXPECT_NEAR(got, want, 0.04)
        << scenario_name(sc) << ": want " << want << " got " << got;
  }
  // The tail really is a tail: memcon is the rarest class but present.
  EXPECT_GT(count[int(Scenario::MemoryConstrained)], 0.0);
  EXPECT_LT(count[int(Scenario::MemoryConstrained)],
            count[int(Scenario::PcbInspection)]);
}

TEST(Workload, SloClassAssignmentIsDeterministicPerTenant) {
  auto wc = scaled_workload(/*jobs=*/400, /*seed=*/3);
  const auto jobs = WorkloadGenerator(wc).generate();
  // Every tenant maps to exactly one SLO class, and the mapping matches the
  // spec table.
  std::map<std::string, SloClass> want;
  for (const auto& t : wc.tenants) want[t.name] = t.slo;
  std::map<std::string, std::set<int>> seen;
  for (const auto& j : jobs) {
    seen[j.tenant].insert(int(j.slo));
    ASSERT_TRUE(want.count(j.tenant)) << j.tenant;
    EXPECT_EQ(int(j.slo), int(want[j.tenant])) << j.tenant;
  }
  for (const auto& [tenant, classes] : seen)
    EXPECT_EQ(classes.size(), 1u) << tenant;
  // All three classes are present in the canonical population.
  std::set<int> classes;
  for (const auto& j : jobs) classes.insert(int(j.slo));
  EXPECT_EQ(classes.size(), 3u);
}

TEST(Workload, DeadlinesScaleWithSloClass) {
  auto wc = scaled_workload(/*jobs=*/300, /*seed=*/5);
  const auto jobs = WorkloadGenerator(wc).generate();
  for (const auto& j : jobs) {
    const double slack = wc.deadline_slack * slo_slack_factor(j.slo);
    if (j.slo == SloClass::BestEffort) {
      EXPECT_EQ(j.deadline, 0.0);  // best-effort jobs carry no deadline
    } else {
      EXPECT_DOUBLE_EQ(j.deadline, j.arrival + slack);
      EXPECT_GT(j.deadline, j.arrival);
    }
  }
  // Interactive deadlines are strictly tighter than standard ones.
  EXPECT_LT(slo_slack_factor(SloClass::Interactive),
            slo_slack_factor(SloClass::Standard));
}

TEST(Workload, DiurnalModulationShapesArrivalsMonotonically) {
  WorkloadConfig flat;
  flat.jobs = 600;
  flat.seed = 21;
  flat.mean_interarrival = 10.0;
  WorkloadConfig diurnal = flat;
  diurnal.diurnal_period = 1500.0;
  diurnal.diurnal_amplitude = 0.9;
  const auto a = WorkloadGenerator(flat).generate();
  const auto b = WorkloadGenerator(diurnal).generate();
  // Monotone arrivals in both regimes.
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    EXPECT_GE(b[i].arrival, b[i - 1].arrival);
  }
  // Modulation actually changes the trace...
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a[i].arrival != b[i].arrival;
  EXPECT_TRUE(differs);
  // ...and concentrates arrivals: the per-gap spread grows when the rate
  // swings (peak gaps shrink, trough gaps stretch).
  auto gap_variance = [](const std::vector<JobRequest>& v) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < v.size(); ++i)
      gaps.push_back(v[i].arrival - v[i - 1].arrival);
    double mean = 0;
    for (const double g : gaps) mean += g;
    mean /= double(gaps.size());
    double var = 0;
    for (const double g : gaps) var += (g - mean) * (g - mean);
    return var / double(gaps.size());
  };
  EXPECT_GT(gap_variance(b), gap_variance(a));
}

TEST(Workload, ScaledWorkloadCoversHundredsOfJobsAndPrimesEveryScenario) {
  auto wc = scaled_workload(/*jobs=*/500, /*seed=*/9);
  WorkloadGenerator gen(wc);
  const auto jobs = gen.generate();
  ASSERT_EQ(jobs.size(), 500u);
  // Bursty: at least one shared-instant pair exists.
  bool burst = false;
  for (std::size_t i = 1; i < jobs.size() && !burst; ++i)
    burst = jobs[i].arrival == jobs[i - 1].arrival;
  EXPECT_TRUE(burst);
  // The priming set covers every scenario in the mix exactly once.
  const auto warm = gen.priming_set();
  std::set<int> primed;
  for (const auto& w : warm) primed.insert(int(w.scenario));
  EXPECT_EQ(primed.size(), heavy_tail_mix().size());
  EXPECT_EQ(warm.size(), heavy_tail_mix().size());
}

}  // namespace
}  // namespace mlr::serve
