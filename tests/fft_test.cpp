// Tests for the FFT / NUFFT stack: correctness against naive O(n²) DFTs,
// roundtrips, Parseval, adjointness of NUFFT type-1/type-2 pairs.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/nufft.hpp"

namespace mlr::fft {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<cfloat> random_signal(i64 n, u64 seed) {
  Rng rng(seed);
  std::vector<cfloat> v(static_cast<size_t>(n));
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

// Naive forward DFT reference.
std::vector<cfloat> naive_dft(const std::vector<cfloat>& x, bool inverse) {
  const i64 n = i64(x.size());
  std::vector<cfloat> out(static_cast<size_t>(n));
  const double sign = inverse ? 1.0 : -1.0;
  for (i64 k = 0; k < n; ++k) {
    cdouble acc{};
    for (i64 t = 0; t < n; ++t) {
      acc += cdouble(x[size_t(t)]) *
             std::polar(1.0, sign * 2.0 * kPi * double(k * t) / double(n));
    }
    if (inverse) acc /= double(n);
    out[size_t(k)] = cfloat(acc);
  }
  return out;
}

double max_abs_diff(const std::vector<cfloat>& a,
                    const std::vector<cfloat>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, double(std::abs(a[i] - b[i])));
  return m;
}

double max_abs(const std::vector<cfloat>& a) {
  double m = 0;
  for (const auto& x : a) m = std::max(m, double(std::abs(x)));
  return std::max(m, 1e-30);
}

// ---------------------------------------------------------------------------
// Plan1D over a sweep of sizes including non-powers-of-two (Bluestein).

class FftSizes : public ::testing::TestWithParam<i64> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const i64 n = GetParam();
  auto x = random_signal(n, 11 + u64(n));
  auto want = naive_dft(x, false);
  Plan1D plan(n);
  auto got = x;
  plan.forward(got);
  EXPECT_LT(max_abs_diff(got, want) / max_abs(want), 2e-4) << "n=" << n;
}

TEST_P(FftSizes, InverseRoundtrip) {
  const i64 n = GetParam();
  auto x = random_signal(n, 17 + u64(n));
  auto y = x;
  Plan1D plan(n);
  plan.forward(y);
  plan.inverse(y);
  EXPECT_LT(max_abs_diff(x, y) / max_abs(x), 1e-4) << "n=" << n;
}

TEST_P(FftSizes, ParsevalHolds) {
  const i64 n = GetParam();
  auto x = random_signal(n, 23 + u64(n));
  double e_time = 0;
  for (auto v : x) e_time += std::norm(v);
  Plan1D plan(n);
  auto y = x;
  plan.forward(y);
  double e_freq = 0;
  for (auto v : y) e_freq += std::norm(v);
  EXPECT_NEAR(e_freq / double(n), e_time, 1e-3 * std::max(1.0, e_time))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values<i64>(1, 2, 3, 4, 5, 7, 8, 12, 16,
                                                27, 31, 32, 48, 64, 100, 128,
                                                255, 256, 500, 512));

TEST(Plan1D, DeltaGivesFlatSpectrum) {
  const i64 n = 64;
  std::vector<cfloat> x(static_cast<size_t>(n), cfloat{});
  x[0] = 1.0f;
  Plan1D plan(n);
  plan.forward(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-5);
}

TEST(Plan1D, LinearityHolds) {
  const i64 n = 48;
  auto a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<cfloat> sum(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i)
    sum[size_t(i)] = 2.0f * a[size_t(i)] + 3.0f * b[size_t(i)];
  Plan1D plan(n);
  auto fa = a, fb = b, fs = sum;
  plan.forward(fa);
  plan.forward(fb);
  plan.forward(fs);
  for (i64 i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(fs[size_t(i)] -
                         (2.0f * fa[size_t(i)] + 3.0f * fb[size_t(i)])),
                0.0, 1e-3);
  }
}

TEST(Plan1D, StridedMatchesContiguous) {
  const i64 n = 32, stride = 3;
  auto x = random_signal(n * stride, 5);
  std::vector<cfloat> col(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) col[size_t(i)] = x[size_t(i * stride)];
  Plan1D plan(n);
  plan.execute_strided(x.data(), stride, false);
  plan.forward(col);
  for (i64 i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[size_t(i * stride)] - col[size_t(i)]), 0.0, 1e-5);
}

TEST(Fft2D, MatchesSeparableNaive) {
  const i64 r = 8, c = 12;
  Array2D<cfloat> a(r, c);
  Rng rng(3);
  for (auto& v : a) v = cfloat(float(rng.normal()), float(rng.normal()));
  // Naive 2-D DFT.
  Array2D<cfloat> want(r, c);
  for (i64 kr = 0; kr < r; ++kr)
    for (i64 kc = 0; kc < c; ++kc) {
      cdouble acc{};
      for (i64 ir = 0; ir < r; ++ir)
        for (i64 ic = 0; ic < c; ++ic)
          acc += cdouble(a(ir, ic)) *
                 std::polar(1.0, -2.0 * kPi *
                                     (double(kr * ir) / r + double(kc * ic) / c));
      want(kr, kc) = cfloat(acc);
    }
  fft2d(a, false);
  for (i64 i = 0; i < r * c; ++i)
    EXPECT_NEAR(std::abs(a.data()[i] - want.data()[i]), 0.0,
                1e-3 * std::max(1.0, double(std::abs(want.data()[i]))));
}

TEST(Fft2D, UnitaryRoundtripAndIdentity) {
  // F_2D · F*_2D = I — the identity the paper's operation cancellation uses.
  Array2D<cfloat> a(16, 16);
  Rng rng(9);
  for (auto& v : a) v = cfloat(float(rng.normal()), float(rng.normal()));
  Array2D<cfloat> orig = a;
  fft2d_unitary(a, false);   // F_2D
  fft2d_unitary(a, true);    // F*_2D
  for (i64 i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a.data()[i] - orig.data()[i]), 0.0, 1e-4);
}

TEST(Fft2D, UnitaryPreservesEnergy) {
  Array2D<cfloat> a(8, 8);
  Rng rng(13);
  for (auto& v : a) v = cfloat(float(rng.normal()), float(rng.normal()));
  double e0 = 0;
  for (auto& v : a) e0 += std::norm(v);
  fft2d_unitary(a, false);
  double e1 = 0;
  for (auto& v : a) e1 += std::norm(v);
  EXPECT_NEAR(e0, e1, 1e-3 * e0);
}

TEST(CenteredIndex, RoundTrips) {
  for (i64 n : {4, 5, 8, 9}) {
    for (i64 k = 0; k < n; ++k) {
      const i64 kc = to_centered(k, n);
      EXPECT_GE(kc, -(n + 1) / 2);
      EXPECT_LT(kc, (n + 1) / 2);
      EXPECT_EQ(from_centered(kc, n), k);
    }
  }
}

// ---------------------------------------------------------------------------
// NUFFT 1-D: accuracy vs naive NDFT across random frequency sets, both signs.

class Nufft1DSign : public ::testing::TestWithParam<int> {};

TEST_P(Nufft1DSign, Type2MatchesNaive) {
  const int sign = GetParam();
  const i64 n = 64, j = 100;
  Rng rng(31);
  std::vector<double> nu(static_cast<size_t>(j));
  for (auto& v : nu) v = rng.uniform(-double(n) / 2, double(n) / 2);
  auto f = random_signal(n, 37);
  std::vector<cfloat> got(static_cast<size_t>(j)), want(static_cast<size_t>(j));
  Nufft1D plan(n);
  plan.type2(nu, f, got, sign);
  ndft1d_type2(nu, f, want, sign);
  EXPECT_LT(max_abs_diff(got, want) / max_abs(want), 2e-5);
}

TEST_P(Nufft1DSign, Type1MatchesNaive) {
  const int sign = GetParam();
  const i64 n = 64, j = 100;
  Rng rng(41);
  std::vector<double> nu(static_cast<size_t>(j));
  for (auto& v : nu) v = rng.uniform(-double(n) / 2, double(n) / 2);
  auto q = random_signal(j, 43);
  std::vector<cfloat> got(static_cast<size_t>(n)), want(static_cast<size_t>(n));
  Nufft1D plan(n);
  plan.type1(nu, q, got, sign);
  ndft1d_type1(nu, q, want, n, sign);
  EXPECT_LT(max_abs_diff(got, want) / max_abs(want), 2e-5);
}

INSTANTIATE_TEST_SUITE_P(Signs, Nufft1DSign, ::testing::Values(-1, 1));

TEST(Nufft1D, AdjointnessHolds) {
  // <type2(f), q> == <f, type1(q, +sign)> with conjugated exponent.
  const i64 n = 32, j = 50;
  Rng rng(51);
  std::vector<double> nu(static_cast<size_t>(j));
  for (auto& v : nu) v = rng.uniform(-double(n) / 2, double(n) / 2);
  auto f = random_signal(n, 52);
  auto q = random_signal(j, 53);
  Nufft1D plan(n);
  std::vector<cfloat> Bf(static_cast<size_t>(j)), Bq(static_cast<size_t>(n));
  plan.type2(nu, f, Bf, -1);
  plan.type1(nu, q, Bq, +1);  // adjoint of type2(−1)
  cdouble lhs{}, rhs{};
  for (i64 i = 0; i < j; ++i)
    lhs += cdouble(Bf[size_t(i)]) * std::conj(cdouble(q[size_t(i)]));
  for (i64 i = 0; i < n; ++i)
    rhs += cdouble(f[size_t(i)]) * std::conj(cdouble(Bq[size_t(i)]));
  EXPECT_NEAR(std::abs(lhs - rhs) / std::abs(lhs), 0.0, 1e-4);
}

TEST(Nufft1D, UniformFrequenciesReduceToDft) {
  // With ν_j = centered integers the type-2 NUFFT is an exact (shifted) DFT.
  const i64 n = 16;
  std::vector<double> nu(static_cast<size_t>(n));
  for (i64 k = 0; k < n; ++k) nu[size_t(k)] = double(to_centered(k, n));
  auto f = random_signal(n, 61);
  std::vector<cfloat> got(static_cast<size_t>(n)), want(static_cast<size_t>(n));
  Nufft1D plan(n);
  plan.type2(nu, f, got, -1);
  ndft1d_type2(nu, f, want, -1);
  EXPECT_LT(max_abs_diff(got, want) / max_abs(want), 1e-5);
}

// ---------------------------------------------------------------------------
// NUFFT 2-D.

TEST(Nufft2D, Type2MatchesNaive) {
  const i64 r = 16, c = 12, j = 80;
  Rng rng(71);
  std::vector<double> nr(static_cast<size_t>(j)), nc(static_cast<size_t>(j));
  for (i64 i = 0; i < j; ++i) {
    nr[size_t(i)] = rng.uniform(-double(r) / 2, double(r) / 2);
    nc[size_t(i)] = rng.uniform(-double(c) / 2, double(c) / 2);
  }
  auto f = random_signal(r * c, 73);
  std::vector<cfloat> got(static_cast<size_t>(j)), want(static_cast<size_t>(j));
  Nufft2D plan(r, c);
  plan.type2(nr, nc, f, got, -1);
  ndft2d_type2(nr, nc, r, c, f, want, -1);
  EXPECT_LT(max_abs_diff(got, want) / max_abs(want), 3e-5);
}

TEST(Nufft2D, Type1MatchesNaive) {
  const i64 r = 12, c = 16, j = 80;
  Rng rng(81);
  std::vector<double> nr(static_cast<size_t>(j)), nc(static_cast<size_t>(j));
  for (i64 i = 0; i < j; ++i) {
    nr[size_t(i)] = rng.uniform(-double(r) / 2, double(r) / 2);
    nc[size_t(i)] = rng.uniform(-double(c) / 2, double(c) / 2);
  }
  auto q = random_signal(j, 83);
  std::vector<cfloat> got(static_cast<size_t>(r * c)), want(static_cast<size_t>(r * c));
  Nufft2D plan(r, c);
  plan.type1(nr, nc, q, got, +1);
  ndft2d_type1(nr, nc, r, c, q, want, +1);
  EXPECT_LT(max_abs_diff(got, want) / max_abs(want), 3e-5);
}

TEST(Nufft2D, AdjointnessHolds) {
  const i64 r = 8, c = 8, j = 40;
  Rng rng(91);
  std::vector<double> nr(static_cast<size_t>(j)), nc(static_cast<size_t>(j));
  for (i64 i = 0; i < j; ++i) {
    nr[size_t(i)] = rng.uniform(-double(r) / 2, double(r) / 2);
    nc[size_t(i)] = rng.uniform(-double(c) / 2, double(c) / 2);
  }
  auto f = random_signal(r * c, 92);
  auto q = random_signal(j, 93);
  Nufft2D plan(r, c);
  std::vector<cfloat> Bf(static_cast<size_t>(j)), Bq(static_cast<size_t>(r * c));
  plan.type2(nr, nc, f, Bf, -1);
  plan.type1(nr, nc, q, Bq, +1);
  cdouble lhs{}, rhs{};
  for (i64 i = 0; i < j; ++i)
    lhs += cdouble(Bf[size_t(i)]) * std::conj(cdouble(q[size_t(i)]));
  for (i64 i = 0; i < r * c; ++i)
    rhs += cdouble(f[size_t(i)]) * std::conj(cdouble(Bq[size_t(i)]));
  EXPECT_NEAR(std::abs(lhs - rhs) / std::abs(lhs), 0.0, 1e-4);
}

TEST(Nufft, FlopsPositiveAndMonotone) {
  Nufft1D p1(64);
  EXPECT_GT(p1.flops(10), 0.0);
  EXPECT_GT(p1.flops(100), p1.flops(10));
  Nufft2D p2(32, 32);
  EXPECT_GT(p2.flops(100), 0.0);
  EXPECT_GT(fft_flops(1024), fft_flops(64));
}

}  // namespace
}  // namespace mlr::fft
