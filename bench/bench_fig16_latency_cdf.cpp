// Fig 16: cumulative distribution of memoization-database query latency
// under contention from 1–16 GPUs sharing one memory node. Paper: the CDF
// shifts right with more GPUs; at 16 GPUs 43 % of queries exceed 100 ms.
#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  const int passes = int(args.get_i64("--passes", 3));
  WallTimer wall;
  bench::header("Fig 16 — memo-DB query latency CDF under contention",
                "paper Fig 16 (distribution shifts right; heavy tail at 16)",
                "more GPUs => higher percentiles / longer tail");

  auto geom = lamino::Geometry::cube(n);
  lamino::Operators ops(geom);
  auto u = lamino::to_complex(lamino::make_phantom(
      geom.object_shape(), lamino::PhantomKind::BrainTissue, 5));
  Array3D<cfloat> dhat(geom.data_shape());
  ops.forward_freq(u, dhat);
  const double s = 1024.0 / double(n);
  const double ws = s * s * s;

  std::printf("query latency percentiles (us):\n\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s %-12s\n", "GPUs", "p25", "p50",
              "p90", "p99", ">100ms (%)");
  for (int gpus : {1, 2, 4, 8, 16}) {
    cluster::ClusterSpec spec;
    spec.gpus = gpus;
    cluster::Cluster c(ops, spec,
                       {.enable = true, .tau = 0.5, .key_dim = 16,
                        .encoder_hw = 16, .work_scale = ws,
                        .oracle_similarity = false},
                       {.key_dim = 16, .tau = 0.5, .value_scale = ws});
    sim::VTime t = 0;
    for (int p = 0; p < passes; ++p)
      t = c.forward_adjoint_pass(u, dhat, 1, t);
    const auto& lat = c.db().timing().query_latency_us;
    if (lat.count() == 0) continue;
    std::printf("%-6d %-10.0f %-10.0f %-10.0f %-10.0f %.0f\n", gpus,
                lat.percentile(0.25), lat.percentile(0.50),
                lat.percentile(0.90), lat.percentile(0.99),
                100.0 * (1.0 - lat.cdf_at(100000.0)));
  }
  std::printf("\nCDF (16 GPUs): value(us) -> cumulative fraction\n");
  {
    cluster::ClusterSpec spec;
    spec.gpus = 16;
    cluster::Cluster c(ops, spec,
                       {.enable = true, .tau = 0.5, .key_dim = 16,
                        .encoder_hw = 16, .work_scale = ws,
                        .oracle_similarity = false},
                       {.key_dim = 16, .tau = 0.5, .value_scale = ws});
    sim::VTime t = 0;
    for (int p = 0; p < passes; ++p)
      t = c.forward_adjoint_pass(u, dhat, 1, t);
    for (const auto& [v, q] : c.db().timing().query_latency_us.cdf(8))
      std::printf("  %10.0f us -> %.2f\n", v, q);
  }
  bench::footer(wall.seconds());
  return 0;
}
