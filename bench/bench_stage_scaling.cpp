// Stage-throughput microbench for the StageExecutor engine: memoized
// operator stages executed with increasing worker-pool widths, with the
// MemoDb driven in three modes at every width —
//
//   barrier   — legacy path (one serially-scored query_batch per stage,
//               then all miss FFTs, inserts inline at stage end)
//   overlap   — PR-2 async sliced service (parallel ANN scoring, slice
//               k+1's scoring under slice k's miss FFTs), per-stage barrier
//   pipelined — overlap PLUS cross-stage pipelining (--pipeline ≥ 2):
//               stage s's DB insertions and cache refills drain on a
//               single serial tail runner underneath stage s+1's encode/
//               probe/score phases (--tail-lanes 1, the legacy drainer)
//   laned     — pipelined PLUS per-OpKind tail lanes (--tail-lanes N,
//               default one lane per kind): tails of different kinds drain
//               on independent drainer lanes
//
// The workload alternates operator kinds per pass (Fu1D / Fu1DAdj — the
// adjacency the cross-stage pipeline exploits, exactly like the ADMM loop)
// and alternates hit and miss chunks within each pass (even chunks re-use
// the base volumes — DB hits whose round-trip is hidden — and odd chunks
// carry fresh churn planes whose FFTs and insertions are the local work to
// hide it behind). Host wall time is measured; the virtual clock is
// bit-identical across all three modes and every width (asserted by
// tests/concurrency_test.cpp). Expect pipelined ≥ overlap ≥ barrier on a
// multi-core host; a 1-core container degrades gracefully to ~1×.
//
// A closing section runs one small reference ADMM solve and prints the
// fused elementwise-kernel profile per solver phase (passes vs what the
// pre-fusion loop chains would have streamed — the ≥2× pass-reduction
// contract lives here and in the JSON).
//
//   ./bench_stage_scaling [--n 20] [--chunk 1] [--reps 6] [--threads 8]
//                         [--overlap 4] [--pipeline 2] [--tail-lanes 4]
//                         [--json BENCH_stage_scaling.json]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/mlr.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "lamino/phantom.hpp"
#include "memo/memo_db.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"
#include "obs/trace.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 20);
  const i64 chunk = args.get_i64("--chunk", 1);
  const i64 reps = args.get_i64("--reps", 6);
  const i64 max_threads = std::max<i64>(1, args.get_i64("--threads", 8));
  // Honored as-is per the shared flag contracts: --overlap 0/1 makes the
  // overlap column barriered too; --pipeline 0/1 makes the pipelined column
  // equal to the overlap column.
  const i64 overlap = args.overlap();
  const i64 pipeline = args.pipeline();
  const i64 tail_lanes = args.tail_lanes();

  lamino::Operators ops{lamino::Geometry::cube(n)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 21));
  auto chunks = lamino::make_chunks(g.n1, chunk);

  // Base + per-pass churn volumes for BOTH kinds: chunks with odd index
  // read from the rep's churn volume instead of the base, so every pass
  // after the warm-up pair mixes DB hits (even chunks) with misses (odd
  // chunks). Identical across modes/widths by construction.
  Array3D<cfloat> base_u1(g.u1_shape());
  std::vector<Array3D<cfloat>> churn_obj, churn_u1;
  {
    Rng rng(99);
    for (i64 i = 0; i < base_u1.size(); ++i)
      base_u1.data()[i] = cfloat(float(rng.normal()), float(rng.normal()));
  }
  for (i64 r = 0; r < reps; ++r) {
    churn_obj.emplace_back(g.object_shape());
    churn_u1.emplace_back(g.u1_shape());
    Rng rng(u64(100 + r));
    for (i64 i = 0; i < churn_obj.back().size(); ++i)
      churn_obj.back().data()[i] =
          cfloat(float(rng.normal()), float(rng.normal()));
    for (i64 i = 0; i < churn_u1.back().size(); ++i)
      churn_u1.back().data()[i] =
          cfloat(float(rng.normal()), float(rng.normal()));
  }

  std::printf(
      "stage-execution engine scaling — %lld^3 volume, %zu chunks/stage, "
      "kind-alternating Fu1D/Fu1DAdj, %lld mixed pass pairs after 1 miss "
      "pair, %lld slices, depth %lld, %lld tail lanes\n\n",
      (long long)n, chunks.size(), (long long)reps, (long long)overlap,
      (long long)pipeline, (long long)tail_lanes);
  std::printf("%-9s %-11s %-11s %-11s %-11s %-9s %-9s %-9s\n", "threads",
              "barrier(s)", "overlap(s)", "pipeline(s)", "laned(s)",
              "overlapx", "lanex", "vs-1thr");

  // One full measurement: a miss pass per kind on the base volumes, then
  // `reps` mixed kind-alternating pass pairs. overlap_slices selects
  // barriered vs async sliced scoring; depth selects per-stage barrier vs
  // cross-stage pipelined tails.
  auto run_mode = [&](i64 threads, i64 overlap_slices, i64 depth, i64 lanes) {
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    memo::MemoDb db{{.tau = 0.92,
                     .overlap_slices = overlap_slices,
                     .ivf = {.nlist = 4, .train_size = 16}},
                    &net, &node};
    // No local cache: every chunk queries the DB each pass, keeping the
    // DB round-trip on the measured path.
    memo::MemoizedLamino ml(
        ops, {.enable = true, .tau = 0.92, .cache = memo::CacheKind::None},
        &dev, &db);
    ThreadPool pool{unsigned(threads)};
    ml.executor().set_pool(&pool);
    ml.executor().set_pipeline_depth(depth);
    ml.executor().set_tail_lanes(lanes);

    Array3D<cfloat> out_u1(g.u1_shape()), out_obj(g.object_shape());
    auto make_work = [&](memo::OpKind kind, const Array3D<cfloat>* alt) {
      const bool adj = kind == memo::OpKind::Fu1DAdj;
      const Array3D<cfloat>& src = adj ? base_u1 : u;
      Array3D<cfloat>& dst = adj ? out_obj : out_u1;
      std::vector<memo::StageChunk> w;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        const auto& spec = chunks[c];
        const auto& in = (alt != nullptr && c % 2 == 1) ? *alt : src;
        w.push_back({spec, in.slices(spec.begin, spec.count),
                     dst.slices(spec.begin, spec.count)});
      }
      return w;
    };

    WallTimer wall;
    sim::VTime t = 0;
    for (const auto kind : {memo::OpKind::Fu1D, memo::OpKind::Fu1DAdj}) {
      auto w = make_work(kind, nullptr);
      t = ml.executor().run_stage(kind, w, t).done;
    }
    for (i64 r = 0; r < reps; ++r) {
      auto wa = make_work(memo::OpKind::Fu1D, &churn_obj[size_t(r)]);
      t = ml.executor().run_stage(memo::OpKind::Fu1D, wa, t).done;
      auto wb = make_work(memo::OpKind::Fu1DAdj, &churn_u1[size_t(r)]);
      t = ml.executor().run_stage(memo::OpKind::Fu1DAdj, wb, t).done;
    }
    ml.executor().settle();  // close the pipelined round inside the timing
    return std::pair{wall.seconds(), ml.counters()};
  };

  bench::JsonObject json;
  json.set("bench", "stage_scaling");
  json.set("n", n);
  json.set("chunk", chunk);
  json.set("chunks_per_stage", i64(chunks.size()));
  json.set("reps", reps);
  json.set("overlap_slices", overlap);
  json.set("pipeline_depth", pipeline);
  json.set("tail_lanes", tail_lanes);

  double t1_laned = 0;
  memo::MemoCounters counters;
  bool mismatch = false;
  for (i64 threads = 1; threads <= max_threads; threads *= 2) {
    const auto [barrier_s, cb] = run_mode(threads, 0, 0, 1);
    const auto [overlap_s, co] = run_mode(threads, overlap, 0, 1);
    const auto [pipe_s, cp] = run_mode(threads, overlap, pipeline, 1);
    const auto [laned_s, cl] = run_mode(threads, overlap, pipeline, tail_lanes);
    if (threads == 1) t1_laned = laned_s;
    counters = cl;
    if (cb.db_hit != co.db_hit || cb.miss != co.miss ||
        cb.db_hit != cp.db_hit || cb.miss != cp.miss ||
        cb.db_hit != cl.db_hit || cb.miss != cl.miss) {
      std::printf("!! outcome mismatch between modes\n");
      mismatch = true;
    }
    char r_ov[16], r_lane[16], scale[16];
    std::snprintf(r_ov, sizeof r_ov, "%.2fx", barrier_s / overlap_s);
    std::snprintf(r_lane, sizeof r_lane, "%.2fx", barrier_s / laned_s);
    std::snprintf(scale, sizeof scale, "%.2fx", t1_laned / laned_s);
    std::printf("%-9lld %-11.3f %-11.3f %-11.3f %-11.3f %-9s %-9s %-9s\n",
                (long long)threads, barrier_s, overlap_s, pipe_s, laned_s,
                r_ov, r_lane, scale);
    auto& row = json.row("rows");
    row.set("threads", threads);
    row.set("barrier_s", barrier_s);
    row.set("overlap_s", overlap_s);
    row.set("pipelined_s", pipe_s);
    row.set("laned_s", laned_s);
  }

  std::printf(
      "\nmemo outcomes per mode: %llu db hits, %llu misses — overlapx is\n"
      "the async sliced DB service vs the legacy barriered query; lanex\n"
      "adds cross-stage tails on per-kind drainer lanes (stage s inserts\n"
      "under stage s+1 encode/probe/score, kinds draining concurrently).\n",
      (unsigned long long)counters.db_hit, (unsigned long long)counters.miss);

  json.set("db_hits", counters.db_hit);
  json.set("misses", counters.miss);

  // Fused-kernel profile of one reference ADMM solve: per solver phase, the
  // streaming passes the fused kernels made vs what the pre-fusion loop
  // chains would have made over the same operands. The solve is fixed
  // (small dataset, laned engine defaults) so the pass counts are a stable
  // contract: total naive/fused must stay ≥ 2.
  {
    ReconstructionConfig rc;
    rc.dataset = Dataset::small(14);
    rc.iters = 4;
    rc.threads = unsigned(max_threads);
    rc.pipeline_depth = pipeline;
    rc.tail_lanes = tail_lanes;
    Reconstructor rec(rc);
    const auto rep = rec.run();
    const auto& res = rep.result;
    std::printf(
        "\nfused elementwise kernels, reference solve (%lld^3, %d outer "
        "iters):\n%-10s %-9s %-9s %-13s %-8s %-9s\n",
        (long long)rc.dataset.n, rc.iters, "phase", "kernels", "passes",
        "naive-passes", "fusionx", "wall(s)");
    for (int p = 0; p < admm::kNumPhases; ++p) {
      const auto& ph = res.phases[size_t(p)];
      std::printf("%-10s %-9llu %-9llu %-13llu %-8.2f %-9.3f\n",
                  admm::phase_name(admm::Phase(p)),
                  (unsigned long long)ph.ew.kernels,
                  (unsigned long long)ph.ew.passes,
                  (unsigned long long)ph.ew.naive_passes,
                  ph.ew.fusion_ratio(), ph.wall_s);
      auto& row = json.row("solver_phases");
      row.set("phase", admm::phase_name(admm::Phase(p)));
      row.set("kernels", ph.ew.kernels);
      row.set("passes", ph.ew.passes);
      row.set("naive_passes", ph.ew.naive_passes);
      row.set("wall_s", ph.wall_s);
    }
    std::printf("%-10s %-9llu %-9llu %-13llu %-8.2f\n", "total",
                (unsigned long long)res.ew_total.kernels,
                (unsigned long long)res.ew_total.passes,
                (unsigned long long)res.ew_total.naive_passes,
                res.ew_total.fusion_ratio());
    json.set("ew_passes", res.ew_total.passes);
    json.set("ew_naive_passes", res.ew_total.naive_passes);
    json.set("ew_fusion_ratio", res.ew_total.fusion_ratio());
    if (res.ew_total.fusion_ratio() < 2.0) {
      std::printf("!! fusion ratio below the 2x contract\n");
      mismatch = true;
    }
  }

  // Disabled-path trace overhead: the obs contract is "a couple of relaxed
  // atomic loads per MLR_TRACE_SPAN when recording is off". Measure it here
  // so BENCH.md anchors the number the instrumented hot paths pay.
  {
    constexpr int kSpans = 1'000'000;
    WallTimer ot;
    for (int i = 0; i < kSpans; ++i) {
      MLR_TRACE_SPAN("bench.noop", "bench");
    }
    const double ns_per_span = ot.seconds() * 1e9 / kSpans;
    std::printf("\ndisabled-path trace overhead: %.2f ns per MLR_TRACE_SPAN "
                "(%d spans, recording off)\n",
                ns_per_span, kSpans);
    json.set("trace_disabled_ns_per_span", ns_per_span);
  }
  // Engine + solver instrument dump (stage phase timings, memo outcomes).
  bench::append_obs(json, obs::metrics().snapshot());
  json.set("outcome_mismatch", mismatch);
  if (!bench::write_json(args.json_path(), json)) return 1;
  return mismatch ? 1 : 0;
}
