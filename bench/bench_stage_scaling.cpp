// Stage-throughput microbench for the StageExecutor engine: one memoized
// operator stage executed with increasing worker-pool widths.
//
// Measures host wall time (the virtual clock is bit-identical for every
// width — that is asserted by tests/concurrency_test.cpp); the speedup
// column is what the batched parallel phases (key encoding, cache probing,
// miss FFTs, value copies) buy on this machine. Expect ≥2× at --threads 4
// on a ≥4-core host; a 1-core container degrades gracefully to ~1×.
//
//   ./bench_stage_scaling [--n 20] [--chunk 1] [--reps 6] [--threads 8]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "lamino/phantom.hpp"
#include "memo/memo_db.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 20);
  const i64 chunk = args.get_i64("--chunk", 1);
  const i64 reps = args.get_i64("--reps", 6);
  const i64 max_threads = std::max<i64>(1, args.get_i64("--threads", 8));

  lamino::Operators ops{lamino::Geometry::cube(n)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 21));
  auto chunks = lamino::make_chunks(g.n1, chunk);

  std::printf("stage-execution engine scaling — %lld^3 volume, %zu chunks, "
              "%lld hit passes after 1 miss pass\n\n",
              (long long)n, chunks.size(), (long long)reps);
  std::printf("%-9s %-12s %-12s %-10s %-9s\n", "threads", "miss pass",
              "hit passes", "total (s)", "speedup");

  double t1 = 0;
  double hit_rate = 0;
  for (i64 threads = 1; threads <= max_threads; threads *= 2) {
    // Fresh fixture per width so every configuration does identical work.
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    memo::MemoDb db{{.tau = 0.92, .ivf = {.nlist = 4, .train_size = 16}},
                    &net, &node};
    memo::MemoizedLamino ml(ops, {.enable = true, .tau = 0.92}, &dev, &db);
    ThreadPool pool{unsigned(threads)};
    ml.executor().set_pool(&pool);

    Array3D<cfloat> out(g.u1_shape());
    auto make_work = [&] {
      std::vector<memo::StageChunk> w;
      for (const auto& spec : chunks)
        w.push_back({spec, u.slices(spec.begin, spec.count),
                     out.slices(spec.begin, spec.count)});
      return w;
    };

    WallTimer wall;
    auto w0 = make_work();
    auto rep = ml.run_stage(memo::OpKind::Fu1D, w0, 0.0);
    const double miss_s = wall.seconds();
    for (i64 r = 0; r < reps; ++r) {
      auto w = make_work();
      rep = ml.run_stage(memo::OpKind::Fu1D, w, rep.done);
    }
    const double total_s = wall.seconds();
    if (threads == 1) t1 = total_s;
    if (ml.cache() != nullptr) hit_rate = ml.cache()->stats().hit_rate();
    std::printf("%-9lld %-12.3f %-12.3f %-10.3f %.2fx\n", (long long)threads,
                miss_s, total_s - miss_s, total_s, t1 / total_s);
  }

  std::printf("\ncache hit rate %.2f — hit passes time the parallel "
              "encode+probe+copy path,\nthe miss pass the parallel FFT "
              "compute path.\n",
              hit_rate);
  return 0;
}
