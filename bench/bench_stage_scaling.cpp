// Stage-throughput microbench for the StageExecutor engine: memoized
// operator stages executed with increasing worker-pool widths, with the
// MemoDb driven in barriered (--overlap 0 semantics) AND overlapped (async
// sliced) mode at every width.
//
// The workload alternates hit and miss chunks per pass (half of each stage's
// chunks re-use the base phantom — DB hits whose scoring/value fetch is the
// round-trip to hide — and half carry fresh churn planes whose FFTs are the
// local work to hide it behind). Host wall time is measured; the virtual
// clock is bit-identical between the two modes and across widths — that is
// asserted by tests/concurrency_test.cpp. The `overlapx` column is what the
// async sliced service (parallel ANN scoring + slice/compute pipelining)
// buys over the legacy barriered path on this machine: expect ≥1.2× at
// --threads 8 on a ≥8-core host (the legacy path scores its ANN batch
// serially); a 1-core container degrades gracefully to ~1×.
//
//   ./bench_stage_scaling [--n 20] [--chunk 1] [--reps 6] [--threads 8]
//                         [--overlap 4]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "lamino/phantom.hpp"
#include "memo/memo_db.hpp"
#include "memo/memoized_ops.hpp"
#include "memo/stage_executor.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 20);
  const i64 chunk = args.get_i64("--chunk", 1);
  const i64 reps = args.get_i64("--reps", 6);
  const i64 max_threads = std::max<i64>(1, args.get_i64("--threads", 8));
  // Honored as-is per the shared --overlap contract: 0/1 makes the second
  // column barriered too (overlapx ~1.0 by construction).
  const i64 overlap = args.overlap();

  lamino::Operators ops{lamino::Geometry::cube(n)};
  const auto& g = ops.geometry();
  auto u = lamino::to_complex(lamino::make_phantom(
      g.object_shape(), lamino::PhantomKind::BrainTissue, 21));
  auto chunks = lamino::make_chunks(g.n1, chunk);

  // Per-pass churn volumes: chunks with odd index read from these instead of
  // the base phantom, so every pass after the first mixes DB hits (even
  // chunks) with misses (odd chunks) — the workload the sliced pipeline is
  // built for. Identical across modes/widths by construction.
  std::vector<Array3D<cfloat>> churn;
  for (i64 r = 0; r < reps; ++r) {
    churn.emplace_back(g.u1_shape());
    Rng rng(u64(100 + r));
    for (i64 i = 0; i < churn.back().size(); ++i)
      churn.back().data()[i] =
          cfloat(float(rng.normal()), float(rng.normal()));
  }

  std::printf("stage-execution engine scaling — %lld^3 volume, %zu chunks, "
              "%lld mixed hit/miss passes after 1 miss pass, %lld slices\n\n",
              (long long)n, chunks.size(), (long long)reps,
              (long long)overlap);
  std::printf("%-9s %-12s %-12s %-10s %-9s\n", "threads", "barrier(s)",
              "overlap(s)", "overlapx", "vs-1thr");

  // One full measurement: miss pass on the base phantom, then `reps` mixed
  // passes. overlap_slices selects barriered vs async sliced execution.
  auto run_mode = [&](i64 threads, i64 overlap_slices) {
    sim::Device dev{0};
    sim::Interconnect net;
    sim::MemoryNode node;
    memo::MemoDb db{{.tau = 0.92,
                     .overlap_slices = overlap_slices,
                     .ivf = {.nlist = 4, .train_size = 16}},
                    &net, &node};
    // No local cache: every chunk queries the DB each pass, keeping the
    // DB round-trip on the measured path.
    memo::MemoizedLamino ml(
        ops, {.enable = true, .tau = 0.92, .cache = memo::CacheKind::None},
        &dev, &db);
    ThreadPool pool{unsigned(threads)};
    ml.executor().set_pool(&pool);

    Array3D<cfloat> out(g.u1_shape());
    auto make_work = [&](const Array3D<cfloat>* alt) {
      std::vector<memo::StageChunk> w;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        const auto& spec = chunks[c];
        const auto& src = (alt != nullptr && c % 2 == 1) ? *alt : u;
        w.push_back({spec, src.slices(spec.begin, spec.count),
                     out.slices(spec.begin, spec.count)});
      }
      return w;
    };

    WallTimer wall;
    auto w0 = make_work(nullptr);
    auto rep = ml.executor().run_stage(memo::OpKind::Fu1D, w0, 0.0);
    for (i64 r = 0; r < reps; ++r) {
      auto w = make_work(&churn[size_t(r)]);
      rep = ml.executor().run_stage(memo::OpKind::Fu1D, w, rep.done);
    }
    return std::pair{wall.seconds(), ml.counters()};
  };

  double t1_overlap = 0;
  memo::MemoCounters counters;
  for (i64 threads = 1; threads <= max_threads; threads *= 2) {
    const auto [barrier_s, cb] = run_mode(threads, 0);
    const auto [overlap_s, co] = run_mode(threads, overlap);
    if (threads == 1) t1_overlap = overlap_s;
    counters = co;
    if (cb.db_hit != co.db_hit || cb.miss != co.miss)
      std::printf("!! outcome mismatch between modes\n");
    char ratio[16], scale[16];
    std::snprintf(ratio, sizeof ratio, "%.2fx", barrier_s / overlap_s);
    std::snprintf(scale, sizeof scale, "%.2fx", t1_overlap / overlap_s);
    std::printf("%-9lld %-12.3f %-12.3f %-10s %-9s\n", (long long)threads,
                barrier_s, overlap_s, ratio, scale);
  }

  std::printf("\nmemo outcomes per mode: %llu db hits, %llu misses — the\n"
              "overlapx column is the async sliced DB service (parallel ANN\n"
              "scoring, slice k+1 scoring under slice k miss FFTs) vs the\n"
              "legacy barriered query.\n",
              (unsigned long long)counters.db_hit,
              (unsigned long long)counters.miss);
  return 0;
}
