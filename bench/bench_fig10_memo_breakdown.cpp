// Fig 10: memoization breakdown per operator (F_u1D, F*_u1D, F_u2D, F*_u2D):
// mean per-chunk time for (1) original computation, (2) failed memoization
// (miss: lookup + compute + async insert), (3) successful memoization served
// by the remote DB, (4) served by the local cache.
// Paper shape: fail ≈ orig (≤2.5 % overhead); DB hit ≈ 10–50 % of orig
// (bigger ops gain more: 88 % for F_u2D, 55 % for F_u1D); cache hit another
// ~85 % below DB hit. Also reports the §6.4 case distribution (53/19/28 %).
#include <map>

#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  const int iters = int(args.get_i64("--iters", 14));
  WallTimer wall;
  bench::header("Fig 10 — memoization breakdown per FFT operator",
                "paper Fig 10 + case distribution 53/19/28 % (§6.4)",
                "fail ~ orig; DB hit far below orig (F_u2D gains most); "
                "cache hit below DB hit");

  ReconstructionConfig cfg;
  cfg.threads = args.threads();
  cfg.overlap_slices = args.overlap();
  cfg.pipeline_depth = args.pipeline();
  cfg.dataset = Dataset::medium(n);
  cfg.iters = iters;
  cfg.memoize = true;
  cfg.tau = 0.94;
  Reconstructor rec(cfg);
  rec.prepare();
  std::vector<memo::ChunkRecord> records;
  rec.wrapper().set_record_sink(&records);
  (void)rec.run();

  // Mean per-chunk total time by (op kind, outcome).
  struct Cell {
    double sum = 0;
    int n = 0;
    [[nodiscard]] double mean() const { return n ? sum / n : 0.0; }
  };
  std::map<std::pair<int, int>, Cell> cells;
  u64 miss = 0, db = 0, cache = 0;
  for (const auto& r : records) {
    if (r.outcome == memo::MemoOutcome::Computed) continue;  // warmup pass
    cells[{int(r.kind), int(r.outcome)}].sum += r.total_s();
    cells[{int(r.kind), int(r.outcome)}].n += 1;
    if (r.outcome == memo::MemoOutcome::Miss) ++miss;
    if (r.outcome == memo::MemoOutcome::DbHit) ++db;
    if (r.outcome == memo::MemoOutcome::CacheHit) ++cache;
  }
  // "Original computation" reference: the warmup (bypass) records.
  std::map<int, Cell> orig;
  for (const auto& r : records) {
    if (r.outcome == memo::MemoOutcome::Computed) {
      orig[int(r.kind)].sum += r.total_s();
      orig[int(r.kind)].n += 1;
    }
  }

  std::printf("mean per-chunk time (virtual s):\n\n");
  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "op", "orig comp", "fail memo",
              "suc memo", "memo w/cache");
  for (int k = 0; k < memo::kNumOpKinds; ++k) {
    const double o = orig[k].mean();
    const double f = cells[{k, int(memo::MemoOutcome::Miss)}].mean();
    const double s = cells[{k, int(memo::MemoOutcome::DbHit)}].mean();
    const double c = cells[{k, int(memo::MemoOutcome::CacheHit)}].mean();
    std::printf("%-8s %-12.3f %-12.3f %-12.3f %-12.3f\n",
                memo::op_kind_name(memo::OpKind(k)), o, f, s, c);
  }
  std::printf("\nratios vs original (per op):\n");
  for (int k = 0; k < memo::kNumOpKinds; ++k) {
    const double o = std::max(orig[k].mean(), 1e-12);
    std::printf("  %-8s fail %.2fx   db-hit %.2fx   cache-hit %.2fx\n",
                memo::op_kind_name(memo::OpKind(k)),
                cells[{k, int(memo::MemoOutcome::Miss)}].mean() / o,
                cells[{k, int(memo::MemoOutcome::DbHit)}].mean() / o,
                cells[{k, int(memo::MemoOutcome::CacheHit)}].mean() / o);
  }
  const double total = double(miss + db + cache);
  std::printf("\ncase distribution: miss %.0f%%, db-hit %.0f%%, cache-hit "
              "%.0f%%  (paper: 53/19/28)\n",
              100.0 * miss / total, 100.0 * db / total, 100.0 * cache / total);
  bench::footer(wall.seconds());
  return 0;
}
