// Fig 4: number of τ-similar chunks found in prior iterations, per chunk
// location, across ADMM iterations (τ = 0.93 in the paper's study).
// Expectation: similar chunks appear commonly; the count grows with the
// iteration index (4–9 matches after ~30 iterations at 1K³).
#include <vector>

#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  const int iters = int(args.get_i64("--iters", 24));
  const double tau = args.get_double("--tau", 0.93);
  WallTimer wall;
  bench::header("Fig 4 — chunk similarity across ADMM iterations",
                "paper Fig 4 (tau = 0.93, 1K^3, 75 iterations)",
                "matches appear in most iterations and accumulate over time");

  ReconstructionConfig cfg;
  cfg.threads = args.threads();
  cfg.overlap_slices = args.overlap();
  cfg.pipeline_depth = args.pipeline();
  cfg.dataset = Dataset::small(n);
  cfg.iters = iters;
  cfg.memoize = false;  // observe the raw chunk stream, no interference
  Reconstructor rec(cfg);
  rec.prepare();
  const auto& geom = rec.ops().geometry();
  const i64 chunk = cfg.chunk_size;
  const std::vector<i64> locations{0, geom.n1 / chunk / 2,
                                   geom.n1 / chunk - 1};
  const char* names[3] = {"top", "middle", "bottom"};

  // History of pooled chunk planes per probed location.
  std::vector<std::vector<std::vector<cfloat>>> history(locations.size());
  std::vector<std::vector<int>> matches(locations.size());
  rec.solver().set_iteration_hook([&](int iter, const Array3D<cfloat>& u) {
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const i64 begin = locations[li] * chunk;
      auto slab = u.slices(begin, chunk);
      std::vector<cfloat> cur(slab.begin(), slab.end());
      int found = 0;
      for (const auto& prev : history[li]) {
        if (cosine_similarity<cfloat>(cur, prev) > tau) ++found;
      }
      matches[li].push_back(found);
      history[li].push_back(std::move(cur));
    }
  });
  (void)rec.run();

  std::printf("similar chunks found in prior iterations (tau=%.2f):\n\n", tau);
  std::printf("%-6s %-10s %-10s %-10s\n", "iter", "top", "middle", "bottom");
  for (int it = 0; it < iters; ++it) {
    std::printf("%-6d %-10d %-10d %-10d\n", it, matches[0][size_t(it)],
                matches[1][size_t(it)], matches[2][size_t(it)]);
  }
  int with_match = 0;
  for (int it = 0; it < iters; ++it)
    if (matches[0][size_t(it)] + matches[1][size_t(it)] +
            matches[2][size_t(it)] >
        0)
      ++with_match;
  std::printf("\niterations with at least one similar prior chunk: %d/%d "
              "(paper: ~70%%)\n",
              with_match, iters);
  std::printf("matches in final iteration: %d/%d/%d (growing over time)\n",
              matches[0].back(), matches[1].back(), matches[2].back());
  bench::footer(wall.seconds());
  return 0;
}
