// Table 1: reconstruction accuracy (Eq 5: A = 1 − ‖R_comp − R_mLR‖/‖R_comp‖)
// as a function of the similarity threshold τ, with a fixed iteration count.
// Paper (1K³, 60 iters): 0.691 / 0.808 / 0.901 / 0.946 / 0.958 / 0.973 for
// τ = 0.86 … 0.96 — monotone increasing, ≥0.94 for τ ≥ 0.92.
#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 14);
  const int iters = int(args.get_i64("--iters", 12));
  WallTimer wall;
  bench::header("Table 1 — accuracy vs similarity threshold tau",
                "paper Table 1 (0.691 → 0.973 over tau 0.86 → 0.96)",
                "accuracy monotone increasing in tau");

  // Reference reconstruction (no memoization).
  ReconstructionConfig base;
  base.threads = args.threads();
  base.overlap_slices = args.overlap();
  base.pipeline_depth = args.pipeline();
  base.dataset = Dataset::small(n);
  base.dataset.noise = 0.02;
  base.iters = iters;
  base.chunk_size = 2;  // finer chunks: per-chunk reuse errors average out
  base.memoize = false;
  Reconstructor ref(base);
  auto rref = ref.run();

  const double taus[6] = {0.86, 0.88, 0.90, 0.92, 0.94, 0.96};
  double acc[6];
  std::printf("%-12s", "tau");
  for (double t : taus) std::printf(" %8.2f", t);
  std::printf("\n%-12s", "accuracy");
  for (int i = 0; i < 6; ++i) {
    auto cfg = base;
    cfg.memoize = true;
    cfg.tau = taus[i];
    Reconstructor rec(cfg);
    auto rep = rec.run();
    acc[i] =
        admm::reconstruction_accuracy(rref.result.u, rep.result.u);
    std::printf(" %8.3f", acc[i]);
    std::fflush(stdout);
  }
  std::printf("\n%-12s", "paper");
  const double paper[6] = {0.691, 0.808, 0.901, 0.946, 0.958, 0.973};
  for (double p : paper) std::printf(" %8.3f", p);
  int monotone = 0;
  for (int i = 1; i < 6; ++i)
    if (acc[i] >= acc[i - 1] - 0.02) ++monotone;
  std::printf("\n\nmonotone (within 0.02 tolerance) in %d/5 steps; "
              "tight tau recovers the reference reconstruction.\n",
              monotone);
  bench::footer(wall.seconds());
  return 0;
}
