// Fig 8: overall performance of mLR vs original ADMM-FFT on the three
// datasets. Paper: normalized times 0.654 (1K³), 0.414 (1.5K³), 0.363 (2K³)
// — 52.8 % average improvement; larger datasets benefit more.
#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 14);
  const int iters = int(args.get_i64("--iters", 8));
  WallTimer wall;
  bench::header("Fig 8 — overall performance on three datasets",
                "paper Fig 8 (normalized 0.654 / 0.414 / 0.363)",
                "mLR < original on every dataset; bigger dataset => bigger win");

  Dataset sets[3] = {Dataset::small(n), Dataset::medium(n + 4),
                     Dataset::large(n + 8)};
  std::printf("%-18s %-14s %-14s %-12s %-10s\n", "dataset", "original(s)",
              "mLR(s)", "normalized", "improve");
  double sum_impr = 0;
  for (const auto& ds : sets) {
    ReconstructionConfig base;
    base.threads = args.threads();
    base.overlap_slices = args.overlap();
    base.pipeline_depth = args.pipeline();
    base.dataset = ds;
    base.iters = iters;
    base.memoize = false;
    base.cancellation = false;
    base.fusion = false;
    Reconstructor b(base);
    auto rb = b.run();

    auto opt = base;
    opt.memoize = true;
    opt.cancellation = true;
    opt.fusion = true;
    Reconstructor m(opt);
    auto rm = m.run();

    const double norm = rm.vtime_s / rb.vtime_s;
    sum_impr += 1.0 - norm;
    std::printf("%-18s %-14.1f %-14.1f %-12.3f %.1f%%\n", ds.label.c_str(),
                rb.vtime_s, rm.vtime_s, norm, 100.0 * (1.0 - norm));
  }
  std::printf("\naverage improvement: %.1f%%  (paper: 52.8%% avg, up to 65.4%%)\n",
              100.0 * sum_impr / 3.0);
  bench::footer(wall.seconds());
  return 0;
}
