// bench_serve_traffic — the serving-layer characterization: one mixed-
// scenario, multi-tenant workload replayed through ReconService under each
// scheduling policy (FIFO / priority / weighted fair share).
//
// Reports per policy: completion/rejection/deadline counts, queue-wait and
// turnaround percentiles (virtual time), slot utilization, and the
// cross-job memo hit rate (lookups served by the shared tier — the paper's
// reuse economics across *jobs* instead of across iterations). Exits
// non-zero if any job's output fingerprint differs between policies: the
// hermetic-session guarantee this layer is built on, also asserted by
// tests/serve_test.cpp, so the CI smoke run (`--jobs 8 --n small`) exercises
// it end to end.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace {

using namespace mlr;
using namespace mlr::serve;

i64 parse_n(const char* s) {
  if (std::strcmp(s, "small") == 0) return 12;
  if (std::strcmp(s, "medium") == 0) return 16;
  if (std::strcmp(s, "large") == 0) return 20;
  return std::atoll(s);
}

struct PolicyResult {
  std::string name;
  ServiceStats stats;
  std::map<u64, u64> fingerprints;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  WallTimer wall;

  const i64 n = parse_n(args.get_str("--n", "small"));
  const i64 jobs = args.get_i64("--jobs", 32);
  const int slots = int(args.get_i64("--slots", 2));
  const int gpus_per_job = int(args.get_i64("--gpus-per-job", 1));
  const int iters_cap = int(args.get_i64("--iters-cap", 3));
  const double interarrival = args.get_double("--interarrival", 60.0);
  const bool bursty = args.has("--bursty");
  const double slack = args.get_double("--deadline-slack", 2500.0);
  const u64 seed = u64(args.get_i64("--seed", 7));

  bench::header(
      "serve: multi-tenant traffic through ReconService, per policy",
      "north star: serving heavy traffic; paper §4 reuse economics across jobs",
      "fair-share evens tenant waits; cross-job hits well above 0; outputs "
      "identical for every policy");
  std::printf(
      "workload: %lld jobs, n=%lld^3, %d slot(s) x %d gpu(s), mean "
      "interarrival %.0f s%s, 3 tenants (weights 1/2/4)\n\n",
      (long long)jobs, (long long)n, slots, gpus_per_job, interarrival,
      bursty ? ", bursty x4" : " (Poisson)");

  WorkloadConfig wc;
  wc.seed = seed;
  wc.jobs = std::size_t(jobs);
  wc.mean_interarrival = interarrival;
  wc.bursty = bursty;
  wc.deadline_slack = slack;
  wc.tenants = {{"bronze", 1.0, 1, 2.0},   // bulk of the traffic, low weight
                {"silver", 2.0, 2, 1.0},
                {"gold", 4.0, 3, 0.5}};    // sparse but heavily weighted
  WorkloadGenerator gen(wc);
  const auto traffic = gen.generate();
  const auto warm = gen.priming_set();

  const SchedulerPolicy policies[] = {SchedulerPolicy::Fifo,
                                      SchedulerPolicy::Priority,
                                      SchedulerPolicy::FairShare};
  std::vector<PolicyResult> results;
  for (const auto policy : policies) {
    ServiceConfig sc;
    sc.n = n;
    sc.slots = slots;
    sc.gpus_per_job = gpus_per_job;
    sc.threads = args.threads();
    sc.overlap_slices = args.overlap();
    sc.pipeline_depth = args.pipeline();
    sc.iters_cap = iters_cap;
    sc.policy = policy;
    ReconService svc(sc);
    svc.prime(warm);
    for (const auto& j : traffic) svc.submit(j);
    PolicyResult pr;
    pr.name = policy_name(policy);
    for (const auto& st : svc.drain())
      if (st.admitted) pr.fingerprints[st.id] = st.output_fingerprint;
    pr.stats = svc.stats();
    results.push_back(std::move(pr));
  }

  std::printf("%-9s %5s %4s %5s | %24s | %24s | %5s %6s\n", "policy", "done",
              "rej", "ddl%", "queue wait p50/p90/p99 (s)",
              "turnaround p50/p90/p99 (s)", "util%", "xjob%");
  for (const auto& pr : results) {
    const auto& st = pr.stats;
    const auto qw = summarize(st.queue_wait);
    const auto ta = summarize(st.turnaround);
    const double ddl =
        st.completed > 0
            ? 100.0 * double(st.completed - st.deadline_missed) /
                  double(st.completed)
            : 0.0;
    std::printf(
        "%-9s %5llu %4llu %5.0f | %7.0f %7.0f %8.0f | %7.0f %7.0f %8.0f | "
        "%5.0f %6.1f\n",
        pr.name.c_str(), (unsigned long long)st.completed,
        (unsigned long long)st.rejected, ddl, qw.p50, qw.p90, qw.p99, ta.p50,
        ta.p90, ta.p99, 100.0 * st.utilization(slots),
        100.0 * st.cross_job_hit_rate());
  }

  std::printf("\nper-tenant busy share under %s (weights 1/2/4):\n",
              results.back().name.c_str());
  const auto& fair = results.back().stats;
  for (const auto& [tenant, ts] : fair.tenants) {
    std::printf("  %-8s jobs=%3llu  busy=%8.0f s  wait p50=%7.0f s\n",
                tenant.c_str(), (unsigned long long)ts.jobs, ts.busy_s,
                ts.queue_wait.count() > 0 ? ts.queue_wait.percentile(0.5)
                                          : 0.0);
  }

  // Hermetic-session guarantee: identical outputs under every policy. The
  // admitted *set* can legitimately differ once admission control rejects
  // (queue dynamics are policy-dependent), so compare over the union: every
  // job two or more policies both ran must agree bit-for-bit.
  bool identical = true;
  std::map<u64, u64> agreed;
  for (const auto& pr : results)
    for (const auto& [id, fp] : pr.fingerprints) {
      const auto [it, fresh] = agreed.emplace(id, fp);
      if (!fresh && it->second != fp) identical = false;
    }
  std::printf("\noutput identity across policies: %s\n",
              identical ? "OK (bit-identical)" : "MISMATCH");
  std::printf("shared tier: %llu promoted, cross-job hit rate %.1f%% (fifo)\n",
              (unsigned long long)results[0].stats.promoted,
              100.0 * results[0].stats.cross_job_hit_rate());

  // Machine-readable trajectory point: configuration, per-policy wall/virtual
  // results and memo outcome counts (--json BENCH_serve_traffic.json).
  bench::JsonObject json;
  json.set("bench", "serve_traffic");
  json.set("n", n);
  json.set("jobs", jobs);
  json.set("slots", i64(slots));
  json.set("gpus_per_job", i64(gpus_per_job));
  json.set("threads", i64(args.threads()));
  json.set("overlap_slices", args.overlap());
  json.set("pipeline_depth", args.pipeline());
  json.set("identical_outputs", identical);
  for (const auto& pr : results) {
    const auto& st = pr.stats;
    const auto qw = summarize(st.queue_wait);
    const auto ta = summarize(st.turnaround);
    auto& row = json.row("policies");
    row.set("policy", pr.name);
    row.set("completed", st.completed);
    row.set("rejected", st.rejected);
    row.set("deadline_missed", st.deadline_missed);
    row.set("queue_wait_p50_s", qw.p50);
    row.set("queue_wait_p99_s", qw.p99);
    row.set("turnaround_p50_s", ta.p50);
    row.set("turnaround_p99_s", ta.p99);
    row.set("utilization", st.utilization(slots));
    row.set("lookups", st.lookups);
    row.set("cache_hits", st.cache_hits);
    row.set("db_hits", st.db_hits);
    row.set("shared_hits", st.shared_hits);
    row.set("misses", st.misses);
  }
  json.set("wall_s", wall.seconds());
  if (!bench::write_json(args.json_path(), json)) return 1;
  bench::footer(wall.seconds());
  return identical ? 0 : 1;
}
